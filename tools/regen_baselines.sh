#!/usr/bin/env bash
# Regenerates the committed BENCH_*.json perf baselines from the
# current build. Run from the repo root after an intentional perf
# change, review the diff, and commit the updated baselines together
# with the change that moved them.
#
#   tools/regen_baselines.sh [build-dir]    (default: build)
#
# The virtual-clock measurements are deterministic, so reruns on the
# same source reproduce them exactly; the embedded "host" blocks
# (wall_ms, events/sec, alloc/copy counters) and the micro-kernel
# ns/op baseline are host measurements and WILL differ between runs
# and machines — their bench-gate bands are wide and report-only
# (warn), so that drift never fails CI.
set -euo pipefail

BUILD_DIR="${1:-build}"
cd "$(dirname "$0")/.."

BENCHES=(bench_fault_sweep bench_fig12_rebuild
         bench_fig10_gc_timeseries bench_micro_kernels bench_waf)

if [ ! -d "$BUILD_DIR/bench" ]; then
    echo "error: $BUILD_DIR/bench not found." >&2
    echo "Configure and build the bench binaries first:" >&2
    echo "  cmake -B $BUILD_DIR -S ." >&2
    echo "  cmake --build $BUILD_DIR -j --target ${BENCHES[*]}" >&2
    exit 1
fi
for b in "${BENCHES[@]}"; do
    if [ ! -x "$BUILD_DIR/bench/$b" ]; then
        echo "error: $BUILD_DIR/bench/$b missing (build it with:" \
             "cmake --build $BUILD_DIR -j --target $b)" >&2
        exit 1
    fi
done

echo "== bench_fault_sweep -> BENCH_fault_sweep.json"
"$BUILD_DIR/bench/bench_fault_sweep" > /dev/null

echo "== bench_fig12_rebuild -> BENCH_rebuild_mttr.json"
"$BUILD_DIR/bench/bench_fig12_rebuild" > /dev/null

echo "== bench_fig10_gc_timeseries -> BENCH_fig10_collapse.json"
"$BUILD_DIR/bench/bench_fig10_gc_timeseries" > /dev/null

echo "== bench_micro_kernels -> BENCH_host_kernels.json"
"$BUILD_DIR/bench/bench_micro_kernels" \
    --host-baseline BENCH_host_kernels.json > /dev/null

# Also refreshes the per-volume WAF breakdown / zone-churn heatmap
# CSVs next to the JSON (waf_breakdown_<vol>.csv, waf_heatmap_<vol>.csv,
# uncommitted CI artifacts).
echo "== bench_waf -> BENCH_waf.json"
"$BUILD_DIR/bench/bench_waf" > /dev/null

echo "== self-testing the gate on the fresh baselines"
python3 tools/bench_gate.py self-test \
    BENCH_fault_sweep.json \
    BENCH_rebuild_mttr.json \
    BENCH_fig10_collapse.json \
    BENCH_host_kernels.json \
    BENCH_waf.json

git --no-pager diff --stat -- 'BENCH_*.json' || true
echo "done; review the diff above before committing."
