#!/usr/bin/env python3
"""Perf-regression gate over BENCH_*.json baselines.

Every bench emits a JSON result file that embeds its own acceptance
policy under a top-level "tolerance" object mapping field name ->
{"rel": R, "abs": A} (either key optional, missing = 0).  A candidate
value passes iff

    |new - base| <= A + R * |base|

Fields NOT named in the tolerance map must match exactly: the benches
run on a deterministic virtual clock, so any untoleranced drift is a
real behavior change, not noise.  Structure is compared recursively;
records inside a "points" array are matched by the tuple of their
string/bool fields (the identity columns), so reordering points is
fine but adding/dropping one is a failure.

A band may also carry "warn": true, marking it report-only: a
violation prints a WARN line but does not fail the compare.  This is
for host-clock measurements (wall_ms, events_per_sec, ns_per_op, ...)
which depend on the machine running the bench -- the bands are wide
and informational until the optimisation work they exist to watch
lands, at which point they can be tightened and the warn flag
dropped.  The self-test still requires warn-band perturbations to be
*detected* (as warnings), so report-only bands cannot silently rot.

Modes:
    bench_gate.py compare <baseline.json> <candidate.json> [...]
        Pairwise compare; exits 1 on any hard violation.
    bench_gate.py self-test <baseline.json> [...]
    bench_gate.py --self-test <baseline.json> [...]
        Perturbs each toleranced field by ~2.5x its band and checks
        the comparison trips (error, or WARN for report-only bands)
        -- proves the gate can actually detect a regression.
"""

import copy
import json
import sys

# Keys that are bench configuration, not measurements: a config
# mismatch means you are comparing different experiments, which is
# reported as its own error rather than a value regression.
CONFIG_KEYS = {"config"}


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def identity_of(record):
    """Identity tuple of a points-array record: its string/bool fields."""
    return tuple(
        (k, v)
        for k, v in sorted(record.items())
        if isinstance(v, (str, bool))
    )


def check_value(path, base, new, band, errors, warnings):
    """One leaf value. `band` is the tolerance entry or None."""
    if is_number(base) and is_number(new):
        rel = band.get("rel", 0.0) if band else 0.0
        absol = band.get("abs", 0.0) if band else 0.0
        limit = absol + rel * abs(base)
        if abs(new - base) > limit:
            kind = "tolerance" if band else "exact-match"
            msg = (
                f"{path}: {base} -> {new} "
                f"(|delta|={abs(new - base):.6g} > {kind} "
                f"limit {limit:.6g})"
            )
            if band and band.get("warn"):
                warnings.append(msg)
            else:
                errors.append(msg)
    elif base != new:
        errors.append(f"{path}: {base!r} -> {new!r}")


def check_node(path, base, new, tolerance, errors, warnings):
    if isinstance(base, dict) and isinstance(new, dict):
        for k in sorted(set(base) | set(new)):
            sub = f"{path}.{k}" if path else k
            if k == "tolerance" and not path:
                continue  # the policy itself is not a measurement
            if k not in new:
                errors.append(f"{sub}: missing from candidate")
            elif k not in base:
                errors.append(f"{sub}: not in baseline (new field)")
            else:
                check_node(sub, base[k], new[k], tolerance, errors,
                           warnings)
    elif isinstance(base, list) and isinstance(new, list):
        if base and all(isinstance(r, dict) for r in base):
            match_records(path, base, new, tolerance, errors, warnings)
        else:
            if len(base) != len(new):
                errors.append(
                    f"{path}: length {len(base)} -> {len(new)}"
                )
                return
            for i, (b, n) in enumerate(zip(base, new)):
                check_node(f"{path}[{i}]", b, n, tolerance, errors,
                           warnings)
    else:
        # Leaf: the field name (last path component) selects the band.
        field = path.rsplit(".", 1)[-1].split("[")[0]
        band = tolerance.get(field)
        if path.split(".", 1)[0] in CONFIG_KEYS:
            band = None  # config always exact
        check_value(path, base, new, band, errors, warnings)


def match_records(path, base, new, tolerance, errors, warnings):
    """Records matched by string/bool identity, order-independent."""
    new_by_id = {}
    for r in new:
        new_by_id.setdefault(identity_of(r), []).append(r)
    for b in base:
        ident = identity_of(b)
        bucket = new_by_id.get(ident)
        label = ", ".join(f"{k}={v}" for k, v in ident) or "<anonymous>"
        if not bucket:
            errors.append(f"{path}: record [{label}] missing "
                          f"from candidate")
            continue
        n = bucket.pop(0)
        check_node(f"{path}[{label}]", b, n, tolerance, errors, warnings)
    for ident, leftover in new_by_id.items():
        for _ in leftover:
            label = ", ".join(f"{k}={v}" for k, v in ident)
            errors.append(f"{path}: unexpected extra record [{label}]")


def compare(base, new):
    """Returns (errors, warnings) lists of violation strings."""
    tolerance = base.get("tolerance", {})
    errors = []
    warnings = []
    check_node("", base, new, tolerance, errors, warnings)
    return errors, warnings


def perturbations(base):
    """Yields (description, mutated-copy) pairs, one per toleranced
    numeric field occurrence, each pushed ~2.5x outside its band."""
    tolerance = base.get("tolerance", {})

    def visit(node, path):
        if isinstance(node, dict):
            for k, v in node.items():
                if k == "tolerance" and not path:
                    continue
                yield from visit(v, f"{path}.{k}" if path else k)
        elif isinstance(node, list):
            for i, v in enumerate(node):
                yield from visit(v, f"{path}[{i}]")
        elif is_number(node):
            field = path.rsplit(".", 1)[-1].split("[")[0]
            band = tolerance.get(field)
            if band is None or path.split(".", 1)[0] in CONFIG_KEYS:
                return
            limit = band.get("abs", 0.0) + band.get("rel", 0.0) * abs(node)
            # 2.5x the band, and at least 1 so zero-band integer
            # fields (e.g. {"abs": 0}) still move.
            yield path, node + max(2.5 * limit, 1.0)

    for path, bad in visit(base, ""):
        mutated = copy.deepcopy(base)
        cursor = mutated
        parts = []
        for piece in path.split("."):
            while "[" in piece:
                head, rest = piece.split("[", 1)
                if head:
                    parts.append(head)
                parts.append(int(rest.split("]", 1)[0]))
                piece = rest.split("]", 1)[1]
            if piece:
                parts.append(piece)
        for p in parts[:-1]:
            cursor = cursor[p]
        cursor[parts[-1]] = bad
        yield path, mutated


def cmd_compare(pairs):
    failed = False
    for base_path, new_path in pairs:
        with open(base_path) as fh:
            base = json.load(fh)
        with open(new_path) as fh:
            new = json.load(fh)
        errors, warnings = compare(base, new)
        for w in warnings:
            print(f"WARN {base_path} vs {new_path}: {w}")
        if errors:
            failed = True
            print(f"FAIL {base_path} vs {new_path}:")
            for e in errors:
                print(f"  {e}")
        else:
            print(f"ok   {base_path} vs {new_path}"
                  + (f" ({len(warnings)} warning(s))" if warnings else ""))
    return 1 if failed else 0


def cmd_self_test(paths):
    """The gate must trip on every out-of-band perturbation (error, or
    warning for report-only bands) and stay quiet on an identical copy;
    otherwise the gate itself is broken."""
    failed = False
    for base_path in paths:
        with open(base_path) as fh:
            base = json.load(fh)
        errors, warnings = compare(base, copy.deepcopy(base))
        if errors or warnings:
            print(f"FAIL {base_path}: identical copy did not pass")
            failed = True
            continue
        n = 0
        for path, mutated in perturbations(base):
            n += 1
            errors, warnings = compare(base, mutated)
            if not errors and not warnings:
                print(f"FAIL {base_path}: perturbing {path} 2.5x out "
                      f"of band was not detected")
                failed = True
        if n == 0:
            print(f"FAIL {base_path}: no toleranced numeric fields to "
                  f"perturb (missing tolerance map?)")
            failed = True
        else:
            print(f"ok   {base_path}: identical copy passes, all {n} "
                  f"out-of-band perturbations detected")
    return 1 if failed else 0


def main(argv):
    if len(argv) >= 4 and argv[1] == "compare" and len(argv) % 2 == 0:
        pairs = list(zip(argv[2::2], argv[3::2]))
        return cmd_compare(pairs)
    if len(argv) >= 3 and argv[1] in ("self-test", "--self-test"):
        return cmd_self_test(argv[2:])
    print(__doc__.strip(), file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
