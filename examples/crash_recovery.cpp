/**
 * @file
 * Crash-consistency walkthrough: reproduces the paper's Fig. 1
 * scenario. A stripe is only partially persisted before power loss;
 * on remount RAIZN detects the stripe hole, repairs it from parity
 * when possible, and otherwise rolls the zone back and remaps future
 * conflicting writes into the metadata zone.
 *
 *   $ ./build/examples/crash_recovery
 */
#include <cstdio>

#include "raizn/volume.h"
#include "sim/event_loop.h"
#include "zns/zns_device.h"

using namespace raizn;

namespace {

struct World {
    std::unique_ptr<EventLoop> loop;
    std::vector<std::unique_ptr<ZnsDevice>> devices;
    std::unique_ptr<RaiznVolume> vol;

    void
    boot()
    {
        loop = std::make_unique<EventLoop>();
        std::vector<BlockDevice *> ptrs;
        for (int i = 0; i < 5; ++i) {
            ZnsDeviceConfig cfg;
            cfg.nzones = 8;
            cfg.zone_size = 512;
            cfg.name = "zns" + std::to_string(i);
            devices.push_back(
                std::make_unique<ZnsDevice>(loop.get(), cfg));
            ptrs.push_back(devices.back().get());
        }
        auto res = RaiznVolume::create(loop.get(), ptrs, RaiznConfig{});
        vol = std::move(res).value();
    }

    /// Power loss: volatile caches drop, host reboots, array remounts.
    bool
    crash_and_remount()
    {
        for (auto &d : devices)
            d->power_cut({PowerLossSpec::Policy::kDropCache, 1});
        vol.reset();
        loop = std::make_unique<EventLoop>();
        std::vector<BlockDevice *> ptrs;
        for (auto &d : devices) {
            d->reattach(loop.get());
            ptrs.push_back(d.get());
        }
        auto res = RaiznVolume::mount(loop.get(), ptrs);
        if (!res.is_ok()) {
            std::printf("mount failed: %s\n",
                        res.status().to_string().c_str());
            return false;
        }
        vol = std::move(res).value();
        return true;
    }

    void
    write(uint64_t lba, uint32_t n, uint64_t seed, bool fua = false)
    {
        bool done = false;
        WriteFlags flags;
        flags.fua = fua;
        vol->write(lba, pattern_data(n, seed), flags,
                   [&](IoResult r) {
                       if (!r.status.is_ok())
                           std::printf("  write@%llu failed: %s\n",
                                       (unsigned long long)lba,
                                       r.status.to_string().c_str());
                       done = true;
                   });
        loop->run_until_pred([&] { return done; });
    }

    bool
    verify(uint64_t lba, uint32_t n, uint64_t seed)
    {
        bool done = false, ok = false;
        vol->read(lba, n, [&](IoResult r) {
            ok = r.status.is_ok() && r.data == pattern_data(n, seed);
            done = true;
        });
        loop->run_until_pred([&] { return done; });
        return ok;
    }
};

} // namespace

int
main()
{
    World w;
    w.boot();
    std::printf("== Scenario 1: clean crash after flush ==\n");
    w.write(0, 64, 1);
    bool done = false;
    w.vol->flush([&](IoResult) { done = true; });
    w.loop->run_until_pred([&] { return done; });
    w.write(64, 64, 2); // never flushed: may vanish
    if (!w.crash_and_remount())
        return 1;
    std::printf("  zone 0 wp after remount: %llu (flushed prefix >= 64)\n",
                (unsigned long long)w.vol->zone_info(0).value().wp);
    std::printf("  flushed stripe intact: %s\n",
                w.verify(0, 64, 1) ? "yes" : "NO");

    std::printf("\n== Scenario 2: stripe hole repaired from parity ==\n");
    // Write a stripe, flush all devices except one: that device's
    // stripe unit is lost in the crash, but parity reconstructs it.
    uint64_t wp = w.vol->zone_info(0).value().wp;
    w.write(wp, 64, 3);
    uint32_t victim = w.vol->layout().data_dev(0, wp / 64, 0);
    for (uint32_t d = 0; d < 5; ++d) {
        if (d == victim)
            continue;
        submit_sync(*w.loop, *w.devices[d], IoRequest::flush());
    }
    if (!w.crash_and_remount())
        return 1;
    std::printf("  holes repaired in place: %llu\n",
                (unsigned long long)w.vol->stats()
                    .holes_repaired_in_place);
    std::printf("  stripe readable after repair: %s\n",
                w.verify(wp, 64, 3) ? "yes" : "NO");

    std::printf("\n== Scenario 3: FUA write survives any crash ==\n");
    wp = w.vol->zone_info(0).value().wp;
    w.write(wp, 8, 4, /*fua=*/true);
    if (!w.crash_and_remount())
        return 1;
    std::printf("  FUA data intact: %s (wp=%llu)\n",
                w.verify(wp, 8, 4) ? "yes" : "NO",
                (unsigned long long)w.vol->zone_info(0).value().wp);

    std::printf("\n== Scenario 4: partial zone reset completed by WAL ==\n");
    done = false;
    w.vol->reset_zone(0, [&](IoResult) { done = true; });
    // Crash mid-reset: run only a few events so some devices reset.
    w.loop->run_events(8);
    if (!w.crash_and_remount())
        return 1;
    auto zi = w.vol->zone_info(0).value();
    std::printf("  zone 0 after remount: state=%s wp=%llu "
                "(reset completed: %s)\n",
                std::string(to_string(zi.state)).c_str(),
                (unsigned long long)zi.wp,
                zi.wp == 0 ? "yes" : "no, data retained");
    std::printf("  partial resets completed: %llu\n",
                (unsigned long long)w.vol->stats()
                    .partial_zone_resets_completed);

    std::printf("\nAll scenarios complete.\n");
    return 0;
}
