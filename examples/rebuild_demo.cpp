/**
 * @file
 * Fault-tolerance walkthrough (paper §4.2): a device fails mid-
 * operation; reads continue degraded by reconstructing from parity;
 * the device is replaced and RAIZN rebuilds it zone by zone — copying
 * only valid data — after which redundancy is fully restored.
 *
 *   $ ./build/examples/rebuild_demo
 */
#include <cstdio>

#include "raizn/volume.h"
#include "sim/event_loop.h"
#include "zns/zns_device.h"

using namespace raizn;

int
main()
{
    EventLoop loop;
    std::vector<std::unique_ptr<ZnsDevice>> devices;
    std::vector<BlockDevice *> ptrs;
    for (int i = 0; i < 5; ++i) {
        ZnsDeviceConfig cfg;
        cfg.nzones = 19; // 16 logical zones
        cfg.zone_size = 1024; // 4 MiB
        cfg.name = "zns" + std::to_string(i);
        devices.push_back(std::make_unique<ZnsDevice>(&loop, cfg));
        ptrs.push_back(devices.back().get());
    }
    auto res = RaiznVolume::create(&loop, ptrs, RaiznConfig{});
    auto vol = std::move(res).value();

    auto sync_write = [&](uint64_t lba, uint32_t n, uint64_t seed) {
        bool done = false;
        vol->write(lba, pattern_data(n, seed), {},
                   [&](IoResult) { done = true; });
        loop.run_until_pred([&] { return done; });
    };
    auto verify = [&](uint64_t lba, uint32_t n, uint64_t seed) {
        bool done = false, ok = false;
        vol->read(lba, n, [&](IoResult r) {
            ok = r.status.is_ok() && r.data == pattern_data(n, seed);
            done = true;
        });
        loop.run_until_pred([&] { return done; });
        return ok;
    };

    // Fill 4 of 16 zones with data.
    std::printf("filling 4 of %u logical zones...\n", vol->num_zones());
    uint64_t zc = vol->zone_capacity();
    for (uint32_t z = 0; z < 4; ++z) {
        for (uint64_t off = 0; off < zc; off += 64)
            sync_write(z * zc + off, 64, z * 1000 + off);
    }
    bool done = false;
    vol->flush([&](IoResult) { done = true; });
    loop.run_until_pred([&] { return done; });

    // Device 2 dies.
    std::printf("\ndevice 2 fails\n");
    vol->mark_device_failed(2);
    std::printf("degraded read of zone 1: %s\n",
                verify(zc, 64, 1000) ? "correct (reconstructed)"
                                     : "WRONG");
    std::printf("degraded reads so far: %llu\n",
                (unsigned long long)vol->stats().degraded_reads);

    // Writes still work in degraded mode.
    std::printf("degraded write to zone 4: ");
    sync_write(4 * zc, 64, 9999);
    std::printf("ok; read back %s\n",
                verify(4 * zc, 64, 9999) ? "correct" : "WRONG");

    // Replace and rebuild.
    std::printf("\nreplacing device 2 and rebuilding...\n");
    devices[2]->replace();
    Tick start = loop.now();
    done = false;
    Status st;
    vol->rebuild_device(
        2,
        [&](uint64_t z, uint64_t total) {
            std::printf("  rebuilt zone %llu/%llu\n",
                        (unsigned long long)z,
                        (unsigned long long)total);
        },
        [&](Status s) {
            st = s;
            done = true;
        });
    loop.run_until_pred([&] { return done; });
    std::printf("rebuild: %s in %.2f ms virtual time "
                "(%llu stripes; only written zones copied)\n",
                st.to_string().c_str(),
                static_cast<double>(loop.now() - start) / kNsPerMs,
                (unsigned long long)vol->stats().stripes_rebuilt);

    // Redundancy restored: a different device can now fail safely.
    std::printf("\nfailing device 0 to prove redundancy is back\n");
    vol->mark_device_failed(0);
    std::printf("read of zone 0: %s\n",
                verify(0, 64, 0) ? "correct (reconstructed again)"
                                 : "WRONG");
    return 0;
}
