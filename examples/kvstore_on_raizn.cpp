/**
 * @file
 * Full-stack example (paper §6.3's software stack in miniature): an
 * LSM key-value store on a zoned, append-only file environment on a
 * RAIZN array of emulated ZNS SSDs. Shows flushes, compactions, and
 * how the LSM's file deletions translate into free zone resets
 * instead of device-side garbage collection.
 *
 *   $ ./build/examples/kvstore_on_raizn
 */
#include <cstdio>

#include "env/zoned_env.h"
#include "kv/db.h"
#include "wkld/setup.h"

using namespace raizn;

int
main()
{
    BenchScale scale;
    scale.zones_per_device = 16;
    scale.zone_cap_sectors = 1024; // 4 MiB zones
    scale.data_mode = DataMode::kStore;
    RaiznArray arr = make_raizn_array(scale);

    ZonedEnv env(arr.loop.get(), arr.vol.get());
    DbOptions opt;
    opt.memtable_bytes = 1 * kMiB;
    opt.target_file_bytes = 1 * kMiB;
    opt.l1_bytes = 4 * kMiB;
    auto db_res = Db::open(&env, opt);
    if (!db_res.is_ok()) {
        std::fprintf(stderr, "open failed\n");
        return 1;
    }
    auto db = std::move(db_res).value();

    std::printf("loading 5000 keys (1 KiB values)...\n");
    std::string value(1024, 'v');
    for (int i = 0; i < 5000; ++i) {
        char key[32];
        std::snprintf(key, sizeof(key), "user%06d", i);
        if (!db->put(key, value)) {
            std::fprintf(stderr, "put failed\n");
            return 1;
        }
    }
    db->flush_all();

    // Point lookups.
    auto v = db->get("user001234");
    std::printf("get(user001234): %s (%zu bytes)\n",
                v.is_ok() ? "found" : "missing",
                v.is_ok() ? v.value().size() : 0);
    v = db->get("user999999");
    std::printf("get(user999999): %s\n",
                v.is_ok() ? "found" : "not found");

    // Overwrite churn triggers compaction; dead SSTs free whole zones.
    std::printf("\noverwriting 10000 random keys...\n");
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        char key[32];
        std::snprintf(key, sizeof(key), "user%06llu",
                      (unsigned long long)rng.next_below(5000));
        db->put(key, value);
    }
    db->flush_all();

    const DbStats &ds = db->stats();
    auto levels = db->level_file_counts();
    std::printf("\nLSM: %llu flushes, %llu compactions "
                "(%.1f MiB compacted)\n",
                (unsigned long long)ds.memtable_flushes,
                (unsigned long long)ds.compactions,
                static_cast<double>(ds.compaction_bytes_written) / kMiB);
    std::printf("levels:");
    for (size_t l = 0; l < levels.size(); ++l)
        std::printf(" L%zu=%zu", l, levels[l]);
    std::printf("\n");

    const EnvStats &es = env.stats();
    std::printf("env: %llu files created, %llu deleted, %llu zones "
                "reclaimed by reset, %.1f MiB cleaner traffic\n",
                (unsigned long long)es.files_created,
                (unsigned long long)es.files_deleted,
                (unsigned long long)es.zones_reclaimed,
                static_cast<double>(es.gc_relocated_bytes) / kMiB);
    const VolumeStats &vs = arr.vol->stats();
    std::printf("raizn: %llu zone resets, %llu partial parity logs, "
                "no device-side GC by construction\n",
                (unsigned long long)vs.zone_resets,
                (unsigned long long)vs.partial_parity_logs);
    std::printf("virtual time: %.1f ms\n",
                static_cast<double>(arr.loop->now()) / kNsPerMs);
    return 0;
}
