/**
 * @file
 * Quickstart: create a 5-device RAIZN array, write and read back data
 * through the logical zoned interface, inspect zones and statistics.
 *
 *   $ ./build/examples/quickstart
 */
#include <cstdio>

#include "raizn/volume.h"
#include "sim/event_loop.h"
#include "zns/zns_device.h"

using namespace raizn;

int
main()
{
    // One event loop drives the emulated devices and the volume.
    EventLoop loop;

    // Five emulated ZNS SSDs: 16 zones x 8 MiB, storing real bytes.
    std::vector<std::unique_ptr<ZnsDevice>> devices;
    std::vector<BlockDevice *> ptrs;
    for (int i = 0; i < 5; ++i) {
        ZnsDeviceConfig cfg;
        cfg.nzones = 16;
        cfg.zone_size = 2048; // 8 MiB
        cfg.name = "zns" + std::to_string(i);
        devices.push_back(std::make_unique<ZnsDevice>(&loop, cfg));
        ptrs.push_back(devices.back().get());
    }

    // mkfs + mount a RAIZN volume: RAID-5-style striping with 64 KiB
    // stripe units, 3 metadata zones per device.
    RaiznConfig cfg;
    auto vol_res = RaiznVolume::create(&loop, ptrs, cfg);
    if (!vol_res.is_ok()) {
        std::fprintf(stderr, "create failed: %s\n",
                     vol_res.status().to_string().c_str());
        return 1;
    }
    auto vol = std::move(vol_res).value();

    std::printf("RAIZN volume: %u logical zones x %llu MiB = %llu MiB\n",
                vol->num_zones(),
                (unsigned long long)(vol->zone_capacity() * kSectorSize /
                                     kMiB),
                (unsigned long long)(vol->capacity() * kSectorSize /
                                     kMiB));

    // Sequential zone write (the only kind ZNS allows), then read.
    auto payload = pattern_data(64, /*seed=*/42); // one full stripe
    bool done = false;
    vol->write(0, payload, {}, [&](IoResult r) {
        std::printf("write:  %s (%u sectors at LBA 0)\n",
                    r.status.to_string().c_str(), 64);
        done = true;
    });
    loop.run_until_pred([&] { return done; });

    done = false;
    vol->read(0, 64, [&](IoResult r) {
        bool match = r.data == payload;
        std::printf("read:   %s (%s)\n", r.status.to_string().c_str(),
                    match ? "data matches" : "DATA MISMATCH");
        done = true;
    });
    loop.run_until_pred([&] { return done; });

    // A small unaligned write: RAIZN logs partial parity (Sec 5.1).
    done = false;
    vol->write(64, pattern_data(4, 7), {}, [&](IoResult r) {
        std::printf("write:  %s (16 KiB partial stripe)\n",
                    r.status.to_string().c_str());
        done = true;
    });
    loop.run_until_pred([&] { return done; });

    // FUA write: completes only once all preceding LBAs in the zone
    // are durable (Sec 5.3).
    WriteFlags fua;
    fua.fua = true;
    done = false;
    vol->write(68, pattern_data(4, 8), fua, [&](IoResult r) {
        std::printf("fua:    %s\n", r.status.to_string().c_str());
        done = true;
    });
    loop.run_until_pred([&] { return done; });

    auto zi = vol->zone_info(0).value();
    std::printf("zone 0: state=%s wp=%llu\n",
                std::string(to_string(zi.state)).c_str(),
                (unsigned long long)zi.wp);

    // Reset the zone and write again.
    done = false;
    vol->reset_zone(0, [&](IoResult r) {
        std::printf("reset:  %s\n", r.status.to_string().c_str());
        done = true;
    });
    loop.run_until_pred([&] { return done; });

    const VolumeStats &st = vol->stats();
    std::printf("\nstats: %llu writes, %llu full-parity writes, "
                "%llu partial-parity logs, %llu dependency flushes, "
                "%llu zone resets\n",
                (unsigned long long)st.logical_writes,
                (unsigned long long)st.full_parity_writes,
                (unsigned long long)st.partial_parity_logs,
                (unsigned long long)st.fua_dependency_flushes,
                (unsigned long long)st.zone_resets);
    std::printf("virtual time elapsed: %.3f ms\n",
                static_cast<double>(loop.now()) / kNsPerMs);
    return 0;
}
