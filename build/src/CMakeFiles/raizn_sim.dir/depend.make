# Empty dependencies file for raizn_sim.
# This may be replaced when dependencies are built.
