file(REMOVE_RECURSE
  "libraizn_sim.a"
)
