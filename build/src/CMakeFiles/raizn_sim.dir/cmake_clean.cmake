file(REMOVE_RECURSE
  "CMakeFiles/raizn_sim.dir/sim/event_loop.cc.o"
  "CMakeFiles/raizn_sim.dir/sim/event_loop.cc.o.d"
  "libraizn_sim.a"
  "libraizn_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raizn_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
