# Empty compiler generated dependencies file for raizn_mdraid.
# This may be replaced when dependencies are built.
