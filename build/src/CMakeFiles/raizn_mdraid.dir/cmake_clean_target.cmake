file(REMOVE_RECURSE
  "libraizn_mdraid.a"
)
