
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mdraid/md_volume.cc" "src/CMakeFiles/raizn_mdraid.dir/mdraid/md_volume.cc.o" "gcc" "src/CMakeFiles/raizn_mdraid.dir/mdraid/md_volume.cc.o.d"
  "/root/repo/src/mdraid/resync.cc" "src/CMakeFiles/raizn_mdraid.dir/mdraid/resync.cc.o" "gcc" "src/CMakeFiles/raizn_mdraid.dir/mdraid/resync.cc.o.d"
  "/root/repo/src/mdraid/stripe_cache.cc" "src/CMakeFiles/raizn_mdraid.dir/mdraid/stripe_cache.cc.o" "gcc" "src/CMakeFiles/raizn_mdraid.dir/mdraid/stripe_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/raizn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raizn_zns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raizn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raizn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
