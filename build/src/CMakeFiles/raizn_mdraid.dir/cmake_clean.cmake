file(REMOVE_RECURSE
  "CMakeFiles/raizn_mdraid.dir/mdraid/md_volume.cc.o"
  "CMakeFiles/raizn_mdraid.dir/mdraid/md_volume.cc.o.d"
  "CMakeFiles/raizn_mdraid.dir/mdraid/resync.cc.o"
  "CMakeFiles/raizn_mdraid.dir/mdraid/resync.cc.o.d"
  "CMakeFiles/raizn_mdraid.dir/mdraid/stripe_cache.cc.o"
  "CMakeFiles/raizn_mdraid.dir/mdraid/stripe_cache.cc.o.d"
  "libraizn_mdraid.a"
  "libraizn_mdraid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raizn_mdraid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
