file(REMOVE_RECURSE
  "libraizn_common.a"
)
