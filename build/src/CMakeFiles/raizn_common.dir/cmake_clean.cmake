file(REMOVE_RECURSE
  "CMakeFiles/raizn_common.dir/common/crc32.cc.o"
  "CMakeFiles/raizn_common.dir/common/crc32.cc.o.d"
  "CMakeFiles/raizn_common.dir/common/histogram.cc.o"
  "CMakeFiles/raizn_common.dir/common/histogram.cc.o.d"
  "CMakeFiles/raizn_common.dir/common/logging.cc.o"
  "CMakeFiles/raizn_common.dir/common/logging.cc.o.d"
  "CMakeFiles/raizn_common.dir/common/rng.cc.o"
  "CMakeFiles/raizn_common.dir/common/rng.cc.o.d"
  "libraizn_common.a"
  "libraizn_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raizn_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
