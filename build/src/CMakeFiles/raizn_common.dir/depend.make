# Empty dependencies file for raizn_common.
# This may be replaced when dependencies are built.
