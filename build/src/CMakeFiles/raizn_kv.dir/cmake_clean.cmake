file(REMOVE_RECURSE
  "CMakeFiles/raizn_kv.dir/kv/bloom.cc.o"
  "CMakeFiles/raizn_kv.dir/kv/bloom.cc.o.d"
  "CMakeFiles/raizn_kv.dir/kv/db.cc.o"
  "CMakeFiles/raizn_kv.dir/kv/db.cc.o.d"
  "CMakeFiles/raizn_kv.dir/kv/sstable.cc.o"
  "CMakeFiles/raizn_kv.dir/kv/sstable.cc.o.d"
  "libraizn_kv.a"
  "libraizn_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raizn_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
