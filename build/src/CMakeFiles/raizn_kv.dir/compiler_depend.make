# Empty compiler generated dependencies file for raizn_kv.
# This may be replaced when dependencies are built.
