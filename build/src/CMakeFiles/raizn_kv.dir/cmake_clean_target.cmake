file(REMOVE_RECURSE
  "libraizn_kv.a"
)
