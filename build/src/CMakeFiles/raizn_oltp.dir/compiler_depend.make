# Empty compiler generated dependencies file for raizn_oltp.
# This may be replaced when dependencies are built.
