file(REMOVE_RECURSE
  "CMakeFiles/raizn_oltp.dir/oltp/sysbench.cc.o"
  "CMakeFiles/raizn_oltp.dir/oltp/sysbench.cc.o.d"
  "CMakeFiles/raizn_oltp.dir/oltp/table.cc.o"
  "CMakeFiles/raizn_oltp.dir/oltp/table.cc.o.d"
  "libraizn_oltp.a"
  "libraizn_oltp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raizn_oltp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
