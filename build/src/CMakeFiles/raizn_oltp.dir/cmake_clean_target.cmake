file(REMOVE_RECURSE
  "libraizn_oltp.a"
)
