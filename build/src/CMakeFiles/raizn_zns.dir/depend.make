# Empty dependencies file for raizn_zns.
# This may be replaced when dependencies are built.
