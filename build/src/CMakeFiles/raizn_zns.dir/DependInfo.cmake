
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zns/block_device.cc" "src/CMakeFiles/raizn_zns.dir/zns/block_device.cc.o" "gcc" "src/CMakeFiles/raizn_zns.dir/zns/block_device.cc.o.d"
  "/root/repo/src/zns/conv_device.cc" "src/CMakeFiles/raizn_zns.dir/zns/conv_device.cc.o" "gcc" "src/CMakeFiles/raizn_zns.dir/zns/conv_device.cc.o.d"
  "/root/repo/src/zns/ftl.cc" "src/CMakeFiles/raizn_zns.dir/zns/ftl.cc.o" "gcc" "src/CMakeFiles/raizn_zns.dir/zns/ftl.cc.o.d"
  "/root/repo/src/zns/timing_model.cc" "src/CMakeFiles/raizn_zns.dir/zns/timing_model.cc.o" "gcc" "src/CMakeFiles/raizn_zns.dir/zns/timing_model.cc.o.d"
  "/root/repo/src/zns/zns_device.cc" "src/CMakeFiles/raizn_zns.dir/zns/zns_device.cc.o" "gcc" "src/CMakeFiles/raizn_zns.dir/zns/zns_device.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/raizn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raizn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
