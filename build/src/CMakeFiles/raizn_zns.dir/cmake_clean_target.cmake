file(REMOVE_RECURSE
  "libraizn_zns.a"
)
