file(REMOVE_RECURSE
  "CMakeFiles/raizn_zns.dir/zns/block_device.cc.o"
  "CMakeFiles/raizn_zns.dir/zns/block_device.cc.o.d"
  "CMakeFiles/raizn_zns.dir/zns/conv_device.cc.o"
  "CMakeFiles/raizn_zns.dir/zns/conv_device.cc.o.d"
  "CMakeFiles/raizn_zns.dir/zns/ftl.cc.o"
  "CMakeFiles/raizn_zns.dir/zns/ftl.cc.o.d"
  "CMakeFiles/raizn_zns.dir/zns/timing_model.cc.o"
  "CMakeFiles/raizn_zns.dir/zns/timing_model.cc.o.d"
  "CMakeFiles/raizn_zns.dir/zns/zns_device.cc.o"
  "CMakeFiles/raizn_zns.dir/zns/zns_device.cc.o.d"
  "libraizn_zns.a"
  "libraizn_zns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raizn_zns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
