file(REMOVE_RECURSE
  "CMakeFiles/raizn_wkld.dir/wkld/job.cc.o"
  "CMakeFiles/raizn_wkld.dir/wkld/job.cc.o.d"
  "CMakeFiles/raizn_wkld.dir/wkld/runner.cc.o"
  "CMakeFiles/raizn_wkld.dir/wkld/runner.cc.o.d"
  "CMakeFiles/raizn_wkld.dir/wkld/sampler.cc.o"
  "CMakeFiles/raizn_wkld.dir/wkld/sampler.cc.o.d"
  "CMakeFiles/raizn_wkld.dir/wkld/setup.cc.o"
  "CMakeFiles/raizn_wkld.dir/wkld/setup.cc.o.d"
  "libraizn_wkld.a"
  "libraizn_wkld.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raizn_wkld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
