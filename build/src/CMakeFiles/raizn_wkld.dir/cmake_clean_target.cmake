file(REMOVE_RECURSE
  "libraizn_wkld.a"
)
