# Empty dependencies file for raizn_wkld.
# This may be replaced when dependencies are built.
