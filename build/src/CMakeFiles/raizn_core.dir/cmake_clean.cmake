file(REMOVE_RECURSE
  "CMakeFiles/raizn_core.dir/raizn/gen_counter.cc.o"
  "CMakeFiles/raizn_core.dir/raizn/gen_counter.cc.o.d"
  "CMakeFiles/raizn_core.dir/raizn/layout.cc.o"
  "CMakeFiles/raizn_core.dir/raizn/layout.cc.o.d"
  "CMakeFiles/raizn_core.dir/raizn/md_manager.cc.o"
  "CMakeFiles/raizn_core.dir/raizn/md_manager.cc.o.d"
  "CMakeFiles/raizn_core.dir/raizn/metadata.cc.o"
  "CMakeFiles/raizn_core.dir/raizn/metadata.cc.o.d"
  "CMakeFiles/raizn_core.dir/raizn/rebuild.cc.o"
  "CMakeFiles/raizn_core.dir/raizn/rebuild.cc.o.d"
  "CMakeFiles/raizn_core.dir/raizn/recovery.cc.o"
  "CMakeFiles/raizn_core.dir/raizn/recovery.cc.o.d"
  "CMakeFiles/raizn_core.dir/raizn/relocation.cc.o"
  "CMakeFiles/raizn_core.dir/raizn/relocation.cc.o.d"
  "CMakeFiles/raizn_core.dir/raizn/stripe_buffer.cc.o"
  "CMakeFiles/raizn_core.dir/raizn/stripe_buffer.cc.o.d"
  "CMakeFiles/raizn_core.dir/raizn/superblock.cc.o"
  "CMakeFiles/raizn_core.dir/raizn/superblock.cc.o.d"
  "CMakeFiles/raizn_core.dir/raizn/volume.cc.o"
  "CMakeFiles/raizn_core.dir/raizn/volume.cc.o.d"
  "libraizn_core.a"
  "libraizn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raizn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
