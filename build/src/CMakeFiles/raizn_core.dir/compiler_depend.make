# Empty compiler generated dependencies file for raizn_core.
# This may be replaced when dependencies are built.
