
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/raizn/gen_counter.cc" "src/CMakeFiles/raizn_core.dir/raizn/gen_counter.cc.o" "gcc" "src/CMakeFiles/raizn_core.dir/raizn/gen_counter.cc.o.d"
  "/root/repo/src/raizn/layout.cc" "src/CMakeFiles/raizn_core.dir/raizn/layout.cc.o" "gcc" "src/CMakeFiles/raizn_core.dir/raizn/layout.cc.o.d"
  "/root/repo/src/raizn/md_manager.cc" "src/CMakeFiles/raizn_core.dir/raizn/md_manager.cc.o" "gcc" "src/CMakeFiles/raizn_core.dir/raizn/md_manager.cc.o.d"
  "/root/repo/src/raizn/metadata.cc" "src/CMakeFiles/raizn_core.dir/raizn/metadata.cc.o" "gcc" "src/CMakeFiles/raizn_core.dir/raizn/metadata.cc.o.d"
  "/root/repo/src/raizn/rebuild.cc" "src/CMakeFiles/raizn_core.dir/raizn/rebuild.cc.o" "gcc" "src/CMakeFiles/raizn_core.dir/raizn/rebuild.cc.o.d"
  "/root/repo/src/raizn/recovery.cc" "src/CMakeFiles/raizn_core.dir/raizn/recovery.cc.o" "gcc" "src/CMakeFiles/raizn_core.dir/raizn/recovery.cc.o.d"
  "/root/repo/src/raizn/relocation.cc" "src/CMakeFiles/raizn_core.dir/raizn/relocation.cc.o" "gcc" "src/CMakeFiles/raizn_core.dir/raizn/relocation.cc.o.d"
  "/root/repo/src/raizn/stripe_buffer.cc" "src/CMakeFiles/raizn_core.dir/raizn/stripe_buffer.cc.o" "gcc" "src/CMakeFiles/raizn_core.dir/raizn/stripe_buffer.cc.o.d"
  "/root/repo/src/raizn/superblock.cc" "src/CMakeFiles/raizn_core.dir/raizn/superblock.cc.o" "gcc" "src/CMakeFiles/raizn_core.dir/raizn/superblock.cc.o.d"
  "/root/repo/src/raizn/volume.cc" "src/CMakeFiles/raizn_core.dir/raizn/volume.cc.o" "gcc" "src/CMakeFiles/raizn_core.dir/raizn/volume.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/raizn_zns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raizn_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/raizn_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
