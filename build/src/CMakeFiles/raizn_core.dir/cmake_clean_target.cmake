file(REMOVE_RECURSE
  "libraizn_core.a"
)
