# Empty dependencies file for raizn_env.
# This may be replaced when dependencies are built.
