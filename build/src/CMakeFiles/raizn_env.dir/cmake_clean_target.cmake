file(REMOVE_RECURSE
  "libraizn_env.a"
)
