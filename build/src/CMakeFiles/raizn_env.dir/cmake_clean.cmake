file(REMOVE_RECURSE
  "CMakeFiles/raizn_env.dir/env/block_env.cc.o"
  "CMakeFiles/raizn_env.dir/env/block_env.cc.o.d"
  "CMakeFiles/raizn_env.dir/env/zoned_env.cc.o"
  "CMakeFiles/raizn_env.dir/env/zoned_env.cc.o.d"
  "libraizn_env.a"
  "libraizn_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/raizn_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
