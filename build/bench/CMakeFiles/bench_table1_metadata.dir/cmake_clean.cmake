file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_metadata.dir/bench_table1_metadata.cc.o"
  "CMakeFiles/bench_table1_metadata.dir/bench_table1_metadata.cc.o.d"
  "bench_table1_metadata"
  "bench_table1_metadata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_metadata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
