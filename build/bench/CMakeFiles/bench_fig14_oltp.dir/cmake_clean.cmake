file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_oltp.dir/bench_fig14_oltp.cc.o"
  "CMakeFiles/bench_fig14_oltp.dir/bench_fig14_oltp.cc.o.d"
  "bench_fig14_oltp"
  "bench_fig14_oltp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_oltp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
