file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_gc_timeseries.dir/bench_fig10_gc_timeseries.cc.o"
  "CMakeFiles/bench_fig10_gc_timeseries.dir/bench_fig10_gc_timeseries.cc.o.d"
  "bench_fig10_gc_timeseries"
  "bench_fig10_gc_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_gc_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
