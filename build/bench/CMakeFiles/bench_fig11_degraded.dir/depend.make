# Empty dependencies file for bench_fig11_degraded.
# This may be replaced when dependencies are built.
