file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_degraded.dir/bench_fig11_degraded.cc.o"
  "CMakeFiles/bench_fig11_degraded.dir/bench_fig11_degraded.cc.o.d"
  "bench_fig11_degraded"
  "bench_fig11_degraded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_degraded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
