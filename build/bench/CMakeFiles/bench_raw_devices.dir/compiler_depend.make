# Empty compiler generated dependencies file for bench_raw_devices.
# This may be replaced when dependencies are built.
