file(REMOVE_RECURSE
  "CMakeFiles/bench_raw_devices.dir/bench_raw_devices.cc.o"
  "CMakeFiles/bench_raw_devices.dir/bench_raw_devices.cc.o.d"
  "bench_raw_devices"
  "bench_raw_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_raw_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
