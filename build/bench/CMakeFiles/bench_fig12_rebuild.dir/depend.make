# Empty dependencies file for bench_fig12_rebuild.
# This may be replaced when dependencies are built.
