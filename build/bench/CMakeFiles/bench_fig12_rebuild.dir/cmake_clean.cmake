file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_rebuild.dir/bench_fig12_rebuild.cc.o"
  "CMakeFiles/bench_fig12_rebuild.dir/bench_fig12_rebuild.cc.o.d"
  "bench_fig12_rebuild"
  "bench_fig12_rebuild.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_rebuild.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
