file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_rocksdb.dir/bench_fig13_rocksdb.cc.o"
  "CMakeFiles/bench_fig13_rocksdb.dir/bench_fig13_rocksdb.cc.o.d"
  "bench_fig13_rocksdb"
  "bench_fig13_rocksdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_rocksdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
