# Empty dependencies file for bench_fig13_rocksdb.
# This may be replaced when dependencies are built.
