file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_compare.dir/bench_fig9_compare.cc.o"
  "CMakeFiles/bench_fig9_compare.dir/bench_fig9_compare.cc.o.d"
  "bench_fig9_compare"
  "bench_fig9_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
