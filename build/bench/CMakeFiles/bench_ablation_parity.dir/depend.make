# Empty dependencies file for bench_ablation_parity.
# This may be replaced when dependencies are built.
