file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_parity.dir/bench_ablation_parity.cc.o"
  "CMakeFiles/bench_ablation_parity.dir/bench_ablation_parity.cc.o.d"
  "bench_ablation_parity"
  "bench_ablation_parity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_parity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
