file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_raizn_stripe.dir/bench_fig8_raizn_stripe.cc.o"
  "CMakeFiles/bench_fig8_raizn_stripe.dir/bench_fig8_raizn_stripe.cc.o.d"
  "bench_fig8_raizn_stripe"
  "bench_fig8_raizn_stripe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_raizn_stripe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
