# Empty dependencies file for bench_fig8_raizn_stripe.
# This may be replaced when dependencies are built.
