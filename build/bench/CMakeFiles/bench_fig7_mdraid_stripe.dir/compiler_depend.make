# Empty compiler generated dependencies file for bench_fig7_mdraid_stripe.
# This may be replaced when dependencies are built.
