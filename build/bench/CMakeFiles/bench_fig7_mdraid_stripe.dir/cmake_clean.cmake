file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_mdraid_stripe.dir/bench_fig7_mdraid_stripe.cc.o"
  "CMakeFiles/bench_fig7_mdraid_stripe.dir/bench_fig7_mdraid_stripe.cc.o.d"
  "bench_fig7_mdraid_stripe"
  "bench_fig7_mdraid_stripe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_mdraid_stripe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
