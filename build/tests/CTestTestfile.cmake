# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/event_loop_test[1]_include.cmake")
include("/root/repo/build/tests/zns_device_test[1]_include.cmake")
include("/root/repo/build/tests/conv_device_test[1]_include.cmake")
include("/root/repo/build/tests/layout_test[1]_include.cmake")
include("/root/repo/build/tests/metadata_test[1]_include.cmake")
include("/root/repo/build/tests/volume_test[1]_include.cmake")
include("/root/repo/build/tests/crash_test[1]_include.cmake")
include("/root/repo/build/tests/fault_test[1]_include.cmake")
include("/root/repo/build/tests/mdraid_test[1]_include.cmake")
include("/root/repo/build/tests/wkld_test[1]_include.cmake")
include("/root/repo/build/tests/env_test[1]_include.cmake")
include("/root/repo/build/tests/kv_test[1]_include.cmake")
include("/root/repo/build/tests/oltp_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/md_manager_test[1]_include.cmake")
include("/root/repo/build/tests/timing_model_test[1]_include.cmake")
