file(REMOVE_RECURSE
  "CMakeFiles/conv_device_test.dir/conv_device_test.cc.o"
  "CMakeFiles/conv_device_test.dir/conv_device_test.cc.o.d"
  "conv_device_test"
  "conv_device_test.pdb"
  "conv_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conv_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
