# Empty compiler generated dependencies file for mdraid_test.
# This may be replaced when dependencies are built.
