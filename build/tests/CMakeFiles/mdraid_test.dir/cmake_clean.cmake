file(REMOVE_RECURSE
  "CMakeFiles/mdraid_test.dir/mdraid_test.cc.o"
  "CMakeFiles/mdraid_test.dir/mdraid_test.cc.o.d"
  "mdraid_test"
  "mdraid_test.pdb"
  "mdraid_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdraid_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
