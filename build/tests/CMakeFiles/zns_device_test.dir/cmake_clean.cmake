file(REMOVE_RECURSE
  "CMakeFiles/zns_device_test.dir/zns_device_test.cc.o"
  "CMakeFiles/zns_device_test.dir/zns_device_test.cc.o.d"
  "zns_device_test"
  "zns_device_test.pdb"
  "zns_device_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zns_device_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
