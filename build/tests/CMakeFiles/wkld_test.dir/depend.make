# Empty dependencies file for wkld_test.
# This may be replaced when dependencies are built.
