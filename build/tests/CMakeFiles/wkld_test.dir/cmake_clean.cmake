file(REMOVE_RECURSE
  "CMakeFiles/wkld_test.dir/wkld_test.cc.o"
  "CMakeFiles/wkld_test.dir/wkld_test.cc.o.d"
  "wkld_test"
  "wkld_test.pdb"
  "wkld_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wkld_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
