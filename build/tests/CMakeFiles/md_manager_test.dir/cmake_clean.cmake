file(REMOVE_RECURSE
  "CMakeFiles/md_manager_test.dir/md_manager_test.cc.o"
  "CMakeFiles/md_manager_test.dir/md_manager_test.cc.o.d"
  "md_manager_test"
  "md_manager_test.pdb"
  "md_manager_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/md_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
