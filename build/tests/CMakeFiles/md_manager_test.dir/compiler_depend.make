# Empty compiler generated dependencies file for md_manager_test.
# This may be replaced when dependencies are built.
