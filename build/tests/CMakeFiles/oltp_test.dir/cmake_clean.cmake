file(REMOVE_RECURSE
  "CMakeFiles/oltp_test.dir/oltp_test.cc.o"
  "CMakeFiles/oltp_test.dir/oltp_test.cc.o.d"
  "oltp_test"
  "oltp_test.pdb"
  "oltp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oltp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
