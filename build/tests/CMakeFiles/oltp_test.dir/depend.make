# Empty dependencies file for oltp_test.
# This may be replaced when dependencies are built.
