# Empty dependencies file for kvstore_on_raizn.
# This may be replaced when dependencies are built.
