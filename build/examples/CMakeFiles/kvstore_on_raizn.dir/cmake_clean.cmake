file(REMOVE_RECURSE
  "CMakeFiles/kvstore_on_raizn.dir/kvstore_on_raizn.cpp.o"
  "CMakeFiles/kvstore_on_raizn.dir/kvstore_on_raizn.cpp.o.d"
  "kvstore_on_raizn"
  "kvstore_on_raizn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_on_raizn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
