file(REMOVE_RECURSE
  "CMakeFiles/rebuild_demo.dir/rebuild_demo.cpp.o"
  "CMakeFiles/rebuild_demo.dir/rebuild_demo.cpp.o.d"
  "rebuild_demo"
  "rebuild_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rebuild_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
