# Empty compiler generated dependencies file for rebuild_demo.
# This may be replaced when dependencies are built.
