/**
 * @file
 * §6.1 raw device microbenchmark: sequential write then sequential
 * read on a single ZNS SSD vs a single conventional SSD, over a block
 * size sweep. The paper reports the ZNS device within 2% (write) and
 * 4% (read) of the conventional device.
 */
#include <cstdio>

#include "bench_util.h"
#include "zns/conv_device.h"
#include "zns/zns_device.h"

using namespace raizn;
using namespace raizn::bench;

namespace {

struct RawPoint {
    double write_mibs;
    double read_mibs;
};

RawPoint
run_device(bool zns, uint32_t bs)
{
    EventLoop loop;
    std::unique_ptr<BlockDevice> dev;
    if (zns) {
        ZnsDeviceConfig cfg;
        cfg.nzones = 24;
        cfg.zone_size = 8192; // 32 MiB
        cfg.data_mode = DataMode::kNone;
        dev = std::make_unique<ZnsDevice>(&loop, cfg);
    } else {
        ConvDeviceConfig cfg;
        cfg.nsectors = 24ull * 8192;
        cfg.data_mode = DataMode::kNone;
        dev = std::make_unique<ConvDevice>(&loop, cfg);
    }
    DeviceTarget target(dev.get());
    WorkloadRunner runner(&loop, &target);

    // Sequential write of the whole device (one job, QD 32).
    JobSpec w;
    w.mode = RwMode::kSeqWrite;
    w.block_sectors = bs;
    w.queue_depth = 32;
    w.region_len = target.capacity();
    auto wres = runner.run_merged({w});

    JobSpec r = w;
    r.mode = RwMode::kSeqRead;
    auto rres = runner.run_merged({r});
    return {wres.throughput_mibs(), rres.throughput_mibs()};
}

} // namespace

int
main()
{
    print_header("Raw device microbenchmark (paper Sec 6.1)");
    std::printf("%-6s %14s %14s %14s %14s %9s %9s\n", "bs",
                "conv_wr_MiBs", "zns_wr_MiBs", "conv_rd_MiBs",
                "zns_rd_MiBs", "wr_ratio", "rd_ratio");
    for (uint32_t bs : kBlockSweep) {
        RawPoint conv = run_device(false, bs);
        RawPoint zns = run_device(true, bs);
        std::printf("%-6s %14.0f %14.0f %14.0f %14.0f %9.3f %9.3f\n",
                    block_label(bs).c_str(), conv.write_mibs,
                    zns.write_mibs, conv.read_mibs, zns.read_mibs,
                    zns.write_mibs / conv.write_mibs,
                    zns.read_mibs / conv.read_mibs);
    }
    std::printf("\nPaper: ZNS write 2%% and read 4%% below conventional "
                "(firmware maturity); max write 1052 MiB/s, read 3265 "
                "MiB/s per ZNS device.\n");
    return 0;
}
