/**
 * @file
 * google-benchmark microbenchmarks of RAIZN's hot CPU kernels: XOR
 * parity, partial-parity delta computation, metadata entry
 * encode/decode, latency histogram insertion, and event-loop dispatch.
 */
#include <benchmark/benchmark.h>

#include "common/histogram.h"
#include "common/rng.h"
#include "raizn/metadata.h"
#include "raizn/stripe_buffer.h"
#include "sim/event_loop.h"
#include "zns/block_device.h"

namespace raizn {
namespace {

void
BM_XorParity64K(benchmark::State &state)
{
    std::vector<uint8_t> dst(64 * kKiB, 0xaa);
    std::vector<uint8_t> src(64 * kKiB, 0x55);
    for (auto _ : state) {
        xor_bytes(dst.data(), src.data(), dst.size());
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(dst.size()));
}
BENCHMARK(BM_XorParity64K);

void
BM_FullStripeParity(benchmark::State &state)
{
    StripeBuffer buf(4, 16, false);
    buf.assign(0);
    auto data = pattern_data(64, 1);
    buf.fill(0, data.data(), 64);
    for (auto _ : state) {
        auto parity = buf.full_parity();
        benchmark::DoNotOptimize(parity.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            64 * kSectorSize);
}
BENCHMARK(BM_FullStripeParity);

void
BM_ParityDelta4K(benchmark::State &state)
{
    StripeBuffer buf(4, 16, false);
    buf.assign(0);
    auto data = pattern_data(1, 1);
    buf.fill(0, data.data(), 1);
    for (auto _ : state) {
        uint64_t lo, hi;
        auto delta = buf.parity_delta(0, 1, &lo, &hi);
        benchmark::DoNotOptimize(delta.data());
    }
}
BENCHMARK(BM_ParityDelta4K);

void
BM_MdEntryEncode(benchmark::State &state)
{
    MdHeader h;
    h.type = MdType::kPartialParity;
    h.start_lba = 123;
    h.end_lba = 456;
    h.generation = 7;
    auto payload = pattern_data(16, 9);
    std::vector<uint8_t> inl(12, 0);
    for (auto _ : state) {
        auto bytes = encode_md_entry(h, inl, payload);
        benchmark::DoNotOptimize(bytes.data());
    }
}
BENCHMARK(BM_MdEntryEncode);

void
BM_MdEntryDecode(benchmark::State &state)
{
    MdHeader h;
    h.type = MdType::kPartialParity;
    auto bytes = encode_md_entry(h, std::vector<uint8_t>(12, 0),
                                 pattern_data(16, 9));
    for (auto _ : state) {
        auto entry = decode_md_entry(bytes, 0);
        benchmark::DoNotOptimize(&entry);
    }
}
BENCHMARK(BM_MdEntryDecode);

void
BM_HistogramAdd(benchmark::State &state)
{
    Histogram h;
    Rng rng(1);
    for (auto _ : state)
        h.add(rng.next_below(1u << 24));
    benchmark::DoNotOptimize(&h);
}
BENCHMARK(BM_HistogramAdd);

void
BM_EventLoopDispatch(benchmark::State &state)
{
    EventLoop loop;
    uint64_t count = 0;
    for (auto _ : state) {
        loop.schedule_after(1, [&count] { count++; });
        loop.run_events(1);
    }
    benchmark::DoNotOptimize(count);
}
BENCHMARK(BM_EventLoopDispatch);

} // namespace
} // namespace raizn

BENCHMARK_MAIN();
