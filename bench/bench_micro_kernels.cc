/**
 * @file
 * google-benchmark microbenchmarks of RAIZN's hot CPU kernels: XOR
 * parity, partial-parity delta computation, metadata entry
 * encode/decode, latency histogram insertion, and event-loop dispatch.
 *
 * `--host-baseline <path>` additionally writes the per-kernel results
 * (ns/op and bytes/s) as a bench-gate JSON with wide, report-only
 * tolerance bands — the committed BENCH_host_kernels.json wall-clock
 * regression baseline. The bands are warn-only because host timings
 * depend on the machine; the value of the baseline is the trend line
 * CI prints, not a hard gate.
 */
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "raizn/metadata.h"
#include "raizn/stripe_buffer.h"
#include "sim/event_loop.h"
#include "zns/block_device.h"

namespace raizn {
namespace {

void
BM_XorParity64K(benchmark::State &state)
{
    std::vector<uint8_t> dst(64 * kKiB, 0xaa);
    std::vector<uint8_t> src(64 * kKiB, 0x55);
    for (auto _ : state) {
        xor_bytes(dst.data(), src.data(), dst.size());
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            static_cast<int64_t>(dst.size()));
}
BENCHMARK(BM_XorParity64K);

void
BM_FullStripeParity(benchmark::State &state)
{
    StripeBuffer buf(4, 16, false);
    buf.assign(0);
    auto data = pattern_data(64, 1);
    buf.fill(0, data.data(), 64);
    for (auto _ : state) {
        auto parity = buf.full_parity();
        benchmark::DoNotOptimize(parity.data());
    }
    state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                            64 * kSectorSize);
}
BENCHMARK(BM_FullStripeParity);

void
BM_ParityDelta4K(benchmark::State &state)
{
    StripeBuffer buf(4, 16, false);
    buf.assign(0);
    auto data = pattern_data(1, 1);
    buf.fill(0, data.data(), 1);
    for (auto _ : state) {
        uint64_t lo, hi;
        auto delta = buf.parity_delta(0, 1, &lo, &hi);
        benchmark::DoNotOptimize(delta.data());
    }
}
BENCHMARK(BM_ParityDelta4K);

void
BM_MdEntryEncode(benchmark::State &state)
{
    MdHeader h;
    h.type = MdType::kPartialParity;
    h.start_lba = 123;
    h.end_lba = 456;
    h.generation = 7;
    auto payload = pattern_data(16, 9);
    std::vector<uint8_t> inl(12, 0);
    for (auto _ : state) {
        auto bytes = encode_md_entry(h, inl, payload);
        benchmark::DoNotOptimize(bytes.data());
    }
}
BENCHMARK(BM_MdEntryEncode);

void
BM_MdEntryDecode(benchmark::State &state)
{
    MdHeader h;
    h.type = MdType::kPartialParity;
    auto bytes = encode_md_entry(h, std::vector<uint8_t>(12, 0),
                                 pattern_data(16, 9));
    for (auto _ : state) {
        auto entry = decode_md_entry(bytes, 0);
        benchmark::DoNotOptimize(&entry);
    }
}
BENCHMARK(BM_MdEntryDecode);

void
BM_HistogramAdd(benchmark::State &state)
{
    Histogram h;
    Rng rng(1);
    for (auto _ : state)
        h.add(rng.next_below(1u << 24));
    benchmark::DoNotOptimize(&h);
}
BENCHMARK(BM_HistogramAdd);

void
BM_EventLoopDispatch(benchmark::State &state)
{
    EventLoop loop;
    uint64_t count = 0;
    for (auto _ : state) {
        loop.schedule_after(1, [&count] { count++; });
        loop.run_events(1);
    }
    benchmark::DoNotOptimize(count);
}
BENCHMARK(BM_EventLoopDispatch);

/// ConsoleReporter that also collects one row per benchmark run, so
/// the normal table still prints while --host-baseline gets data.
class CollectingReporter : public benchmark::ConsoleReporter
{
  public:
    struct Row {
        std::string name;
        double ns_per_op = 0;
        double bytes_per_second = 0; ///< 0 when the kernel sets no rate
    };
    std::vector<Row> rows;

    void
    ReportRuns(const std::vector<Run> &report) override
    {
        for (const Run &run : report) {
            if (run.run_type != Run::RT_Iteration || run.error_occurred)
                continue;
            Row row;
            row.name = run.benchmark_name();
            row.ns_per_op = run.GetAdjustedRealTime();
            auto it = run.counters.find("bytes_per_second");
            if (it != run.counters.end())
                row.bytes_per_second = it->second;
            rows.push_back(std::move(row));
        }
        ConsoleReporter::ReportRuns(report);
    }
};

int
write_host_baseline(const std::string &path,
                    const std::vector<CollectingReporter::Row> &rows)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"points\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const auto &r = rows[i];
        std::fprintf(f,
                     "    {\"name\": \"%s\", \"ns_per_op\": %.1f, "
                     "\"bytes_per_second\": %.0f}%s\n",
                     r.name.c_str(), r.ns_per_op, r.bytes_per_second,
                     i + 1 < rows.size() ? "," : "");
    }
    // Host-clock measurements: wide and report-only. A 10x band still
    // catches an accidentally quadratic kernel while ignoring machine
    // and scheduler noise.
    std::fprintf(f,
                 "  ],\n"
                 "  \"tolerance\": {\n"
                 "    \"ns_per_op\": {\"rel\": 10.0, \"abs\": 100, "
                 "\"warn\": true},\n"
                 "    \"bytes_per_second\": {\"rel\": 10.0, "
                 "\"abs\": 1000000, \"warn\": true}\n"
                 "  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s (%zu kernels)\n", path.c_str(), rows.size());
    return 0;
}

} // namespace
} // namespace raizn

int
main(int argc, char **argv)
{
    // Peel off --host-baseline before benchmark sees the arg list.
    std::string baseline_path;
    std::vector<char *> bargv;
    for (int i = 0; i < argc; ++i) {
        if (std::string(argv[i]) == "--host-baseline" && i + 1 < argc) {
            baseline_path = argv[++i];
            continue;
        }
        bargv.push_back(argv[i]);
    }
    int bargc = static_cast<int>(bargv.size());
    benchmark::Initialize(&bargc, bargv.data());
    if (benchmark::ReportUnrecognizedArguments(bargc, bargv.data()))
        return 1;
    raizn::CollectingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    if (!baseline_path.empty())
        return raizn::write_host_baseline(baseline_path, reporter.rows);
    return 0;
}
