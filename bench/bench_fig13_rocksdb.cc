/**
 * @file
 * Fig. 13: RocksDB-style db_bench workloads (fillseq, fillrandom,
 * overwrite, readwhilewriting) on the LSM store over F2FS-style envs:
 * ZonedEnv-on-RAIZN vs BlockEnv-on-mdraid, value sizes 4000 and 8000
 * bytes. The paper reports RAIZN within 10% of mdraid on throughput
 * and p99 latency; we report the same normalized comparison.
 *
 * Scaled: the paper runs 100M operations on 2TB arrays; we run tens
 * of thousands on the scaled arrays (shape, not magnitude).
 */
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "common/logging.h"
#include "env/block_env.h"
#include "env/zoned_env.h"
#include "kv/db.h"

using namespace raizn;
using namespace raizn::bench;

namespace {

constexpr uint64_t kNumKeys = 6000;
constexpr uint64_t kOps = 12000;

std::string
make_key(uint64_t k)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llu", (unsigned long long)k);
    return buf;
}

struct BenchPoint {
    double kops = 0; ///< operations per virtual second / 1000
    double p99_us = 0;
};

struct Harness {
    RaiznArray rz;
    MdArray md;
    std::unique_ptr<Env> env;
    std::unique_ptr<Db> db;
    EventLoop *loop = nullptr;

    void
    build(bool zoned, uint32_t value_size)
    {
        BenchScale scale;
        scale.zones_per_device = 24;
        scale.zone_cap_sectors = 1536; // 6 MiB zones
        scale.data_mode = DataMode::kStore;
        DbOptions opt;
        opt.memtable_bytes = 4 * kMiB;
        opt.target_file_bytes = 4 * kMiB;
        opt.l1_bytes = 16 * kMiB;
        if (zoned) {
            rz = make_raizn_array(scale);
            loop = rz.loop.get();
            env = std::make_unique<ZonedEnv>(loop, rz.vol.get());
        } else {
            md = make_mdraid_array(scale);
            loop = md.loop.get();
            env = std::make_unique<BlockEnv>(loop, md.vol.get());
        }
        auto d = Db::open(env.get(), opt);
        if (!d.is_ok())
            RAIZN_PANIC("db open failed");
        db = std::move(d).value();
        (void)value_size;
    }
};

BenchPoint
run_workload(Harness &h, const std::string &wl, uint32_t value_size,
             bool prefilled)
{
    Rng rng(11);
    std::string value(value_size, 'v');
    Histogram lat;
    Tick start = h.loop->now();
    uint64_t ops = 0;

    auto timed = [&](const std::function<Status()> &op) {
        Tick t0 = h.loop->now();
        Status st = op();
        if (!st.is_ok())
            RAIZN_PANIC("op failed: %s", st.to_string().c_str());
        lat.add(h.loop->now() - t0);
        ops++;
    };

    if (wl == "fillseq") {
        for (uint64_t k = 0; k < kNumKeys; ++k)
            timed([&] { return h.db->put(make_key(k), value); });
    } else if (wl == "fillrandom") {
        for (uint64_t i = 0; i < kNumKeys; ++i) {
            timed([&] {
                return h.db->put(make_key(rng.next_below(kNumKeys)),
                                 value);
            });
        }
    } else if (wl == "overwrite") {
        for (uint64_t i = 0; i < kOps; ++i) {
            timed([&] {
                return h.db->put(make_key(rng.next_below(kNumKeys)),
                                 value);
            });
        }
    } else if (wl == "readwhilewriting") {
        // 8 reads interleaved per write (paper: 8 reader threads +
        // 1 writer; serialized interleave at the same ratio).
        for (uint64_t i = 0; i < kOps / 9; ++i) {
            timed([&] {
                return h.db->put(make_key(rng.next_below(kNumKeys)),
                                 value);
            });
            for (int r = 0; r < 8; ++r) {
                timed([&] {
                    auto v = h.db->get(make_key(
                        rng.next_below(kNumKeys)));
                    if (!v.is_ok() &&
                        v.status().code() != StatusCode::kNotFound)
                        return v.status();
                    return Status::ok();
                });
            }
        }
    }
    (void)prefilled;
    Tick elapsed = h.loop->now() - start;
    BenchPoint out;
    out.kops = static_cast<double>(ops) /
        (static_cast<double>(elapsed) / kNsPerSec) / 1000.0;
    out.p99_us = static_cast<double>(lat.p99()) / 1e3;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    ObsOptions oo;
    if (!parse_obs_args(argc, argv, &oo))
        return 2;
    print_header("Fig 13: RocksDB-style db_bench, RAIZN vs mdraid");
    for (uint32_t vs : {4000u, 8000u}) {
        std::printf("\n-- value size %u B --\n", vs);
        std::printf("%-18s %10s %10s %8s %12s %12s %10s\n", "workload",
                    "md_kops", "rz_kops", "rz/md", "md_p99us",
                    "rz_p99us", "p99_ratio");
        // Paper protocol: fillseq on a fresh array; reset; then
        // fillrandom, overwrite, readwhilewriting run in succession.
        Harness md_seq, rz_seq;
        md_seq.build(false, vs);
        rz_seq.build(true, vs);
        auto md_fill = run_workload(md_seq, "fillseq", vs, false);
        auto rz_fill = run_workload(rz_seq, "fillseq", vs, false);
        std::printf("%-18s %10.1f %10.1f %8.2f %12.0f %12.0f %10.2f\n",
                    "fillseq", md_fill.kops, rz_fill.kops,
                    rz_fill.kops / md_fill.kops, md_fill.p99_us,
                    rz_fill.p99_us, rz_fill.p99_us / md_fill.p99_us);

        Harness md_h, rz_h;
        md_h.build(false, vs);
        rz_h.build(true, vs);
        for (const char *wl :
             {"fillrandom", "overwrite", "readwhilewriting"}) {
            auto mdp = run_workload(md_h, wl, vs, true);
            auto rzp = run_workload(rz_h, wl, vs, true);
            std::printf(
                "%-18s %10.1f %10.1f %8.2f %12.0f %12.0f %10.2f\n", wl,
                mdp.kops, rzp.kops, rzp.kops / mdp.kops, mdp.p99_us,
                rzp.p99_us, rzp.p99_us / mdp.p99_us);
        }

        // Env-level GC accounting: the zoned env relocates live data to
        // reclaim zones, the block env just overwrites in place.
        std::printf("env gc (zoned): %s\n",
                    obs::render_stats(rz_h.env->stats()).c_str());
        std::printf("env gc (block): %s\n",
                    obs::render_stats(md_h.env->stats()).c_str());
        if (vs == 8000 && !oo.metrics_out.empty()) {
            // Export the last point's env + volume counters through the
            // unified registry ("env.zoned.*", "env.block.*", ...).
            obs::MetricsRegistry reg;
            obs::link_stats(reg, "env.zoned", rz_h.env->stats());
            obs::link_stats(reg, "env.block", md_h.env->stats());
            obs::link_stats(reg, "raizn", rz_h.rz.vol->stats());
            obs::link_stats(reg, "mdraid", md_h.md.vol->stats());
            Status s = reg.write_json(oo.metrics_out);
            std::printf("metrics json: %s%s\n", oo.metrics_out.c_str(),
                        s.is_ok() ? ""
                                  : (" FAILED: " + s.to_string()).c_str());
        }
    }
    std::printf("\nPaper shape: RAIZN within 10%% of mdraid on "
                "throughput and p99 for all four workloads (steady "
                "state, before conventional-SSD GC).\n");
    return 0;
}
