/**
 * @file
 * Fig. 12: time-to-repair (TTR) a replaced device vs the amount of
 * valid data on the volume. mdraid resyncs the entire address space
 * (constant TTR); RAIZN rebuilds only written stripes, so TTR scales
 * linearly with valid data. Both are bottlenecked by the replacement
 * device's write throughput.
 */
#include <cstdio>

#include "bench_util.h"

using namespace raizn;
using namespace raizn::bench;

namespace {

double
raizn_ttr(double fill_fraction)
{
    BenchScale scale;
    auto arr = make_raizn_array(scale);
    RaiznTarget target(arr.vol.get());
    uint64_t fill = static_cast<uint64_t>(
        static_cast<double>(arr.vol->capacity()) * fill_fraction);
    // Whole zones, as user data would be laid out.
    fill = fill / arr.vol->zone_capacity() * arr.vol->zone_capacity();
    if (fill > 0)
        prime_target(arr.loop.get(), &target, fill);

    arr.vol->mark_device_failed(0);
    arr.devs[0]->replace();
    Tick start = arr.loop->now();
    Status st;
    bool done = false;
    arr.vol->rebuild_device(0, nullptr, [&](Status s) {
        st = s;
        done = true;
    });
    arr.loop->run_until_pred([&] { return done; });
    if (!st)
        std::fprintf(stderr, "rebuild failed: %s\n",
                     st.to_string().c_str());
    return static_cast<double>(arr.loop->now() - start) / kNsPerSec;
}

double
mdraid_ttr(double fill_fraction)
{
    BenchScale scale;
    auto arr = make_mdraid_array(scale);
    MdTarget target(arr.vol.get());
    uint64_t fill = static_cast<uint64_t>(
        static_cast<double>(arr.vol->capacity()) * fill_fraction);
    if (fill > 0)
        prime_target(arr.loop.get(), &target, fill);

    arr.vol->mark_device_failed(0);
    arr.devs[0]->replace();
    Tick start = arr.loop->now();
    Status st;
    bool done = false;
    arr.vol->resync_device(0, nullptr, [&](Status s) {
        st = s;
        done = true;
    });
    arr.loop->run_until_pred([&] { return done; });
    if (!st)
        std::fprintf(stderr, "resync failed: %s\n",
                     st.to_string().c_str());
    return static_cast<double>(arr.loop->now() - start) / kNsPerSec;
}

} // namespace

int
main()
{
    print_header("Fig 12: time-to-repair vs valid data");
    std::printf("%-10s %14s %14s\n", "fill", "mdraid_TTR_s",
                "raizn_TTR_s");
    const double fills[] = {0.066, 0.125, 0.25, 0.5, 0.75, 1.0};
    double md_full = 0, rz_min = 1e18, rz_max = 0;
    for (double f : fills) {
        double md = mdraid_ttr(f);
        double rz = raizn_ttr(f);
        std::printf("%8.0f%% %14.2f %14.2f\n", f * 100, md, rz);
        md_full = md;
        rz_min = std::min(rz_min, rz);
        rz_max = std::max(rz_max, rz);
    }
    std::printf("\nmdraid TTR is flat (full address-space resync); "
                "RAIZN scales %.1fx from emptiest to full, converging "
                "to mdraid's TTR (%.2fs) at 100%% fill.\n",
                rz_max / rz_min, md_full);
    std::printf("Paper shape: identical — linear RAIZN TTR, constant "
                "mdraid TTR, equal when the volume is full.\n");
    return 0;
}
