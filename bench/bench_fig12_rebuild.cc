/**
 * @file
 * Fig. 12: time-to-repair (TTR) a replaced device vs the amount of
 * valid data on the volume. mdraid resyncs the entire address space
 * (constant TTR); RAIZN rebuilds only written stripes, so TTR scales
 * linearly with valid data. Both are bottlenecked by the replacement
 * device's write throughput.
 *
 * Second section: MTTR vs foreground service under concurrent load at
 * three rebuild throttle settings (unthrottled, fixed-rate token
 * bucket, adaptive). An online rebuild competes with foreground writes
 * for device bandwidth; the throttle trades longer MTTR for a
 * foreground throughput floor. Emits BENCH_rebuild_mttr.json. The
 * fixed-throttle run is telemetry-instrumented: --timeseries-out
 * exports the per-interval CSV (rebuild write rate vs foreground
 * rate, throttle stalls, per-device utilization).
 *
 *   bench_fig12_rebuild [--smoke] [--timeseries-out f.csv]
 */
#include <cstdio>

#include "bench_util.h"

using namespace raizn;
using namespace raizn::bench;

namespace {

double
raizn_ttr(double fill_fraction)
{
    BenchScale scale;
    auto arr = make_raizn_array(scale);
    RaiznTarget target(arr.vol.get());
    uint64_t fill = static_cast<uint64_t>(
        static_cast<double>(arr.vol->capacity()) * fill_fraction);
    // Whole zones, as user data would be laid out.
    fill = fill / arr.vol->zone_capacity() * arr.vol->zone_capacity();
    if (fill > 0)
        prime_target(arr.loop.get(), &target, fill);

    arr.vol->mark_device_failed(0);
    arr.devs[0]->replace();
    Tick start = arr.loop->now();
    Status st;
    bool done = false;
    arr.vol->rebuild_device(0, nullptr, [&](Status s) {
        st = s;
        done = true;
    });
    arr.loop->run_until_pred([&] { return done; });
    if (!st)
        std::fprintf(stderr, "rebuild failed: %s\n",
                     st.to_string().c_str());
    return static_cast<double>(arr.loop->now() - start) / kNsPerSec;
}

double
mdraid_ttr(double fill_fraction)
{
    BenchScale scale;
    auto arr = make_mdraid_array(scale);
    MdTarget target(arr.vol.get());
    uint64_t fill = static_cast<uint64_t>(
        static_cast<double>(arr.vol->capacity()) * fill_fraction);
    if (fill > 0)
        prime_target(arr.loop.get(), &target, fill);

    arr.vol->mark_device_failed(0);
    arr.devs[0]->replace();
    Tick start = arr.loop->now();
    Status st;
    bool done = false;
    arr.vol->resync_device(0, nullptr, [&](Status s) {
        st = s;
        done = true;
    });
    arr.loop->run_until_pred([&] { return done; });
    if (!st)
        std::fprintf(stderr, "resync failed: %s\n",
                     st.to_string().c_str());
    return static_cast<double>(arr.loop->now() - start) / kNsPerSec;
}

// ---- MTTR vs foreground service under a throttled online rebuild ----

/// Pipelined (QD 4) sequential writer into the unprimed tail of the
/// volume; counts acked sectors so foreground throughput during the
/// rebuild window can be computed.
struct FgLoad {
    RaiznVolume *vol = nullptr;
    uint64_t next_lba = 0;
    uint64_t end_lba = 0;
    uint32_t bs = 64;
    uint64_t acked_sectors = 0;
    bool stop = false;

    void
    issue()
    {
        if (stop || next_lba + bs > end_lba)
            return;
        uint64_t lba = next_lba;
        next_lba += bs;
        vol->write_len(lba, bs, {}, [this](IoResult r) {
            if (r.status.is_ok())
                acked_sectors += bs;
            issue();
        });
    }
};

struct MttrRecord {
    std::string setting;
    uint64_t rate = 0; ///< sectors/s (0 = unthrottled)
    bool adaptive = false;
    double mttr_s = 0;
    double fg_mibs = 0;
    uint64_t throttle_stalls = 0;
    uint64_t zones_rebuilt = 0;
    uint64_t rebuilt_sectors = 0; ///< written to the replacement
};

MttrRecord
run_mttr(const BenchScale &scale, const char *setting, uint64_t rate,
         bool adaptive, const ObsOptions *oo = nullptr)
{
    MttrRecord rec;
    rec.setting = setting;
    rec.rate = rate;
    rec.adaptive = adaptive;

    auto arr = make_raizn_array(scale);
    RaiznTarget target(arr.vol.get());
    uint64_t zc = arr.vol->zone_capacity();
    uint64_t fill = arr.vol->capacity() / 2 / zc * zc;
    prime_target(arr.loop.get(), &target, fill);

    // Telemetry on the throttled online rebuild: the timeline starts
    // after priming so the CSV window is the rebuild itself.
    obs::MetricsRegistry reg;
    std::unique_ptr<obs::Timeline> tl;
    if (oo != nullptr) {
        arr.vol->attach_observability(&reg, nullptr);
        tl = make_timeline(*oo, arr.loop.get(), &reg);
        arr.vol->install_timeline(tl.get());
        tl->start();
    }

    arr.vol->mark_device_failed(0);
    arr.devs[0]->replace();
    RaiznVolume::LifecycleConfig lc;
    lc.throttle.rate_sectors_per_sec = rate;
    lc.throttle.adaptive = adaptive;
    arr.vol->set_lifecycle(lc);

    FgLoad fg;
    fg.vol = arr.vol.get();
    fg.next_lba = fill;
    fg.end_lba = arr.vol->capacity();

    uint64_t replaced_before = arr.devs[0]->stats().sectors_written;
    Tick start = arr.loop->now();
    Status st;
    bool done = false;
    arr.vol->rebuild_device(0, nullptr, [&](Status s) {
        st = s;
        done = true;
    });
    for (int q = 0; q < 4; ++q)
        fg.issue();
    arr.loop->run_until_pred([&] { return done; });
    fg.stop = true;
    if (!st)
        std::fprintf(stderr, "rebuild (%s) failed: %s\n", setting,
                     st.to_string().c_str());

    rec.mttr_s =
        static_cast<double>(arr.loop->now() - start) / kNsPerSec;
    rec.fg_mibs = rec.mttr_s > 0
        ? static_cast<double>(fg.acked_sectors) * kSectorSize /
            static_cast<double>(kMiB) / rec.mttr_s
        : 0;
    rec.throttle_stalls = arr.vol->stats().rebuild_throttle_stalls;
    rec.zones_rebuilt = arr.vol->stats().zones_rebuilt;
    rec.rebuilt_sectors =
        arr.devs[0]->stats().sectors_written - replaced_before;
    if (oo != nullptr && tl != nullptr)
        finish_timeline(*oo, tl.get(), std::string("mttr_") + setting);
    return rec;
}

/// Same foreground load on a healthy array for `duration_ns`: the
/// throughput floor the throttled rebuild is supposed to preserve.
double
fg_baseline_mibs(const BenchScale &scale, uint64_t duration_ns)
{
    auto arr = make_raizn_array(scale);
    RaiznTarget target(arr.vol.get());
    uint64_t zc = arr.vol->zone_capacity();
    uint64_t fill = arr.vol->capacity() / 2 / zc * zc;
    prime_target(arr.loop.get(), &target, fill);

    FgLoad fg;
    fg.vol = arr.vol.get();
    fg.next_lba = fill;
    fg.end_lba = arr.vol->capacity();
    Tick start = arr.loop->now();
    for (int q = 0; q < 4; ++q)
        fg.issue();
    arr.loop->run_until_pred(
        [&] { return arr.loop->now() - start >= duration_ns; });
    fg.stop = true;
    double secs = static_cast<double>(arr.loop->now() - start) / kNsPerSec;
    return secs > 0 ? static_cast<double>(fg.acked_sectors) *
            kSectorSize / static_cast<double>(kMiB) / secs
                    : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ObsOptions oo;
    if (!parse_obs_args(argc, argv, &oo))
        return 2;
    bool smoke = oo.smoke;
    HostMeter meter;

    print_header("Fig 12: time-to-repair vs valid data");
    std::printf("%-10s %14s %14s\n", "fill", "mdraid_TTR_s",
                "raizn_TTR_s");
    const std::vector<double> fills = smoke
        ? std::vector<double>{0.125, 0.5}
        : std::vector<double>{0.066, 0.125, 0.25, 0.5, 0.75, 1.0};
    double md_full = 0, rz_min = 1e18, rz_max = 0;
    for (double f : fills) {
        double md = mdraid_ttr(f);
        double rz = raizn_ttr(f);
        std::printf("%8.0f%% %14.2f %14.2f\n", f * 100, md, rz);
        md_full = md;
        rz_min = std::min(rz_min, rz);
        rz_max = std::max(rz_max, rz);
    }
    std::printf("\nmdraid TTR is flat (full address-space resync); "
                "RAIZN scales %.1fx from emptiest to full, converging "
                "to mdraid's TTR (%.2fs) at 100%% fill.\n",
                rz_max / rz_min, md_full);
    std::printf("Paper shape: identical — linear RAIZN TTR, constant "
                "mdraid TTR, equal when the volume is full.\n");

    print_header("MTTR vs foreground service (online rebuild, 50% fill)");
    BenchScale scale;
    if (smoke)
        scale.zones_per_device = 12;

    // Calibrate the throttle from the unthrottled run: the fixed and
    // adaptive settings cap rebuild traffic at a quarter of the
    // bandwidth an unconstrained rebuild achieved under this load.
    MttrRecord unthrottled =
        run_mttr(scale, "unthrottled", 0, false);
    uint64_t rebuild_bw = unthrottled.mttr_s > 0
        ? static_cast<uint64_t>(
              static_cast<double>(unthrottled.rebuilt_sectors) /
              unthrottled.mttr_s)
        : 0;
    uint64_t capped = rebuild_bw > 4 ? rebuild_bw / 4 : 1;
    MttrRecord fixed = run_mttr(scale, "fixed", capped, false, &oo);
    MttrRecord adaptive = run_mttr(scale, "adaptive", capped, true);
    double baseline = fg_baseline_mibs(
        scale,
        static_cast<uint64_t>(unthrottled.mttr_s * kNsPerSec) + 1);

    std::printf("%-12s %10s %10s %10s %10s\n", "setting", "MTTR_s",
                "fg_MiBs", "stalls", "zones");
    for (const MttrRecord *r : {&unthrottled, &fixed, &adaptive}) {
        std::printf("%-12s %10.3f %10.1f %10llu %10llu\n",
                    r->setting.c_str(), r->mttr_s, r->fg_mibs,
                    (unsigned long long)r->throttle_stalls,
                    (unsigned long long)r->zones_rebuilt);
    }
    std::printf("fg baseline (no rebuild): %.1f MiB/s\n", baseline);
    std::printf("Throttling trades MTTR (%.3fs -> %.3fs) for foreground "
                "throughput (%.1f -> %.1f MiB/s of %.1f healthy).\n",
                unthrottled.mttr_s, fixed.mttr_s, unthrottled.fg_mibs,
                fixed.fg_mibs, baseline);

    FILE *f = std::fopen("BENCH_rebuild_mttr.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_rebuild_mttr.json\n");
        return 1;
    }
    std::fprintf(f,
                 "{\n  \"config\": {\"num_devices\": %u, "
                 "\"zones_per_device\": %u, \"zone_cap_sectors\": %llu, "
                 "\"su_sectors\": %u, \"fill\": 0.5, "
                 "\"fg_qd\": 4, \"fg_block_sectors\": 64},\n"
                 "  \"fg_baseline_mibs\": %.2f,\n"
                 "  %s,\n"
                 "  \"points\": [\n",
                 scale.num_devices, scale.zones_per_device,
                 (unsigned long long)scale.zone_cap_sectors,
                 scale.su_sectors, baseline, meter.json("").c_str());
    const MttrRecord *recs[] = {&unthrottled, &fixed, &adaptive};
    for (size_t i = 0; i < 3; ++i) {
        const MttrRecord *r = recs[i];
        std::fprintf(
            f,
            "    {\"setting\": \"%s\", \"rate_sectors_per_sec\": %llu, "
            "\"adaptive\": %s, \"mttr_s\": %.4f, \"fg_mibs\": %.2f, "
            "\"throttle_stalls\": %llu, \"zones_rebuilt\": %llu, "
            "\"rebuilt_sectors\": %llu}%s\n",
            r->setting.c_str(), (unsigned long long)r->rate,
            r->adaptive ? "true" : "false", r->mttr_s, r->fg_mibs,
            (unsigned long long)r->throttle_stalls,
            (unsigned long long)r->zones_rebuilt,
            (unsigned long long)r->rebuilt_sectors,
            i + 1 < 3 ? "," : "");
    }
    std::fprintf(
        f,
        "  ],\n"
        "  \"tolerance\": {\n"
        "    \"mttr_s\": {\"rel\": 0.15},\n"
        "    \"fg_mibs\": {\"rel\": 0.15, \"abs\": 2},\n"
        "    \"throttle_stalls\": {\"rel\": 0.5, \"abs\": 20},\n"
        "    \"zones_rebuilt\": {\"abs\": 0},\n"
        "    \"rebuilt_sectors\": {\"rel\": 0.05},\n"
        "    \"fg_baseline_mibs\": {\"rel\": 0.10},\n"
        "    \"rate_sectors_per_sec\": {\"rel\": 0.25},\n"
        "    \"wall_ms\": {\"rel\": 10.0, \"abs\": 5000, \"warn\": true},\n"
        "    \"events_per_sec\": {\"rel\": 10.0, \"abs\": 1000, "
        "\"warn\": true},\n"
        "    \"events\": {\"rel\": 0.25, \"abs\": 1000, \"warn\": true},\n"
        "    \"alloc_count\": {\"rel\": 0.25, \"abs\": 1000, "
        "\"warn\": true},\n"
        "    \"alloc_bytes\": {\"rel\": 0.25, \"abs\": 65536, "
        "\"warn\": true},\n"
        "    \"copy_count\": {\"rel\": 0.25, \"abs\": 1000, "
        "\"warn\": true},\n"
        "    \"copy_bytes\": {\"rel\": 0.25, \"abs\": 65536, "
        "\"warn\": true}\n"
        "  }\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_rebuild_mttr.json (3 points)\n");
    return 0;
}
