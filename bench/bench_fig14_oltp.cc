/**
 * @file
 * Fig. 14: sysbench-style OLTP (read_only / write_only / read_write)
 * on the MyRocks-style table layer over the LSM store, RAIZN vs
 * mdraid. The paper runs 8 tables x 10M rows with 64/128 sysbench
 * threads; we run a scaled row count with a serialized transaction
 * stream (thread counts noted in EXPERIMENTS.md) and report TPS,
 * average latency, and p95 latency.
 */
#include <cstdio>

#include "bench_util.h"
#include "common/logging.h"
#include "env/block_env.h"
#include "env/zoned_env.h"
#include "oltp/sysbench.h"

using namespace raizn;
using namespace raizn::bench;

namespace {

struct Harness {
    RaiznArray rz;
    MdArray md;
    std::unique_ptr<Env> env;
    std::unique_ptr<Db> db;
    std::unique_ptr<OltpDatabase> oltp;
    EventLoop *loop = nullptr;

    void
    build(bool zoned)
    {
        BenchScale scale;
        scale.zones_per_device = 24;
        scale.zone_cap_sectors = 1536;
        scale.data_mode = DataMode::kStore;
        DbOptions opt;
        opt.memtable_bytes = 4 * kMiB;
        // OLTP commits are durable: fsync the WAL on every write, as
        // MySQL's redo/binlog settings do.
        opt.sync_wal = true;
        if (zoned) {
            rz = make_raizn_array(scale);
            loop = rz.loop.get();
            env = std::make_unique<ZonedEnv>(loop, rz.vol.get());
        } else {
            md = make_mdraid_array(scale);
            loop = md.loop.get();
            env = std::make_unique<BlockEnv>(loop, md.vol.get());
        }
        auto d = Db::open(env.get(), opt);
        if (!d.is_ok())
            RAIZN_PANIC("db open failed");
        db = std::move(d).value();
        OltpDatabase::Config cfg;
        cfg.tables = 8;
        cfg.rows_per_table = 20000; // paper: 10M, scaled
        oltp = std::make_unique<OltpDatabase>(db.get(), cfg);
        Status st = oltp->prepare();
        if (!st)
            RAIZN_PANIC("prepare failed: %s", st.to_string().c_str());
    }
};

} // namespace

int
main()
{
    print_header("Fig 14: sysbench OLTP, RAIZN vs mdraid");
    std::printf("%-18s %10s %10s %8s %10s %10s %10s %10s\n", "workload",
                "md_tps", "rz_tps", "rz/md", "md_avg_ms", "rz_avg_ms",
                "md_p95_ms", "rz_p95_ms");
    const OltpWorkload workloads[] = {OltpWorkload::kReadOnly,
                                      OltpWorkload::kWriteOnly,
                                      OltpWorkload::kReadWrite};
    const uint64_t txns[] = {150, 600, 120};
    for (size_t i = 0; i < 3; ++i) {
        // Fresh arrays + database reset per workload, as in the paper.
        Harness md_h, rz_h;
        md_h.build(false);
        rz_h.build(true);
        auto mdr = run_sysbench(md_h.loop, md_h.oltp.get(), workloads[i],
                                txns[i]);
        auto rzr = run_sysbench(rz_h.loop, rz_h.oltp.get(), workloads[i],
                                txns[i]);
        std::printf(
            "%-18s %10.1f %10.1f %8.2f %10.2f %10.2f %10.2f %10.2f\n",
            to_string(workloads[i]), mdr.tps(), rzr.tps(),
            rzr.tps() / mdr.tps(), mdr.latency.mean() / 1e6,
            rzr.latency.mean() / 1e6,
            static_cast<double>(mdr.latency.p95()) / 1e6,
            static_cast<double>(rzr.latency.p95()) / 1e6);
    }
    std::printf("\nPaper shape: RAIZN within error of (or better than) "
                "mdraid on TPS, average and p95 latency across all "
                "three OLTP mixes.\n");
    return 0;
}
