/**
 * @file
 * Fig. 7: mdraid throughput (sequential read, sequential write,
 * random read) vs block size, one series per stripe-unit ("chunk")
 * size from 8 KiB to 128 KiB. Paper observation 1: 64 KiB chunks
 * maximize random read throughput without significantly hurting
 * sequential read/write.
 */
#include <cstdio>

#include "bench_util.h"

using namespace raizn;
using namespace raizn::bench;

int
main()
{
    print_header("Fig 7: mdraid throughput vs block size per chunk size");
    for (const char *wl : {"seqread", "write", "randread"}) {
        std::printf("\n-- mdraid %s (MiB/s) --\n%-6s", wl, "bs");
        for (uint32_t su : kSuSweep)
            std::printf(" %9s", (block_label(su) + "-chunk").c_str());
        std::printf("\n");
        for (uint32_t bs : kBlockSweep) {
            std::printf("%-6s", block_label(bs).c_str());
            for (uint32_t su : kSuSweep) {
                BenchScale scale;
                scale.su_sectors = su;
                auto arr = make_mdraid_array(scale);
                MdTarget target(arr.vol.get());
                double mibs = 0;
                if (std::string(wl) == "write") {
                    mibs = run_seq(arr.loop.get(), &target,
                                   RwMode::kSeqWrite, bs, 0)
                               .mibs;
                } else {
                    // Prime, then read (paper: 1 TiB priming, scaled).
                    prime_target(arr.loop.get(), &target,
                                 target.capacity());
                    if (std::string(wl) == "seqread") {
                        mibs = run_seq(arr.loop.get(), &target,
                                       RwMode::kSeqRead, bs, 0)
                                   .mibs;
                    } else {
                        mibs = run_rand_read(arr.loop.get(), &target, bs)
                                   .mibs;
                    }
                }
                std::printf(" %9.0f", mibs);
            }
            std::printf("\n");
        }
    }
    std::printf("\nPaper shape: 16K chunks win large seq reads; 64K "
                "chunks win random reads without hurting writes much.\n");
    return 0;
}
