/**
 * @file
 * Ablation: stripe-buffer provisioning (§5.1). The paper pre-allocates
 * 8 stripe buffers per open logical zone so in-flight partial stripes
 * never block. This bench varies the buffer count and measures how
 * often a buffer must be recycled while its stripe is still the most
 * recent (a proxy for the blocking the paper avoids), plus the memory
 * cost, under a multi-zone small-write workload.
 */
#include <cstdio>

#include "bench_util.h"

using namespace raizn;
using namespace raizn::bench;

int
main()
{
    print_header("Ablation: stripe buffers per open zone");
    std::printf("%-9s %14s %14s %16s\n", "buffers", "recycles",
                "pp_logs", "buffer_mem_KiB");
    for (uint32_t nbuf : {1u, 2u, 4u, 8u, 16u}) {
        BenchScale scale;
        scale.data_mode = DataMode::kStore;
        scale.zones_per_device = 11; // 8 logical zones
        scale.zone_cap_sectors = 1024;
        auto arr = [&] {
            RaiznArray a;
            a.loop = std::make_unique<EventLoop>();
            std::vector<BlockDevice *> ptrs;
            for (uint32_t i = 0; i < scale.num_devices; ++i) {
                ZnsDeviceConfig cfg;
                cfg.nzones = scale.zones_per_device;
                cfg.zone_size = scale.zone_cap_sectors;
                cfg.data_mode = scale.data_mode;
                a.devs.push_back(
                    std::make_unique<ZnsDevice>(a.loop.get(), cfg));
                ptrs.push_back(a.devs.back().get());
            }
            RaiznConfig rcfg;
            rcfg.stripe_buffers_per_zone = nbuf;
            auto res = RaiznVolume::create(a.loop.get(), ptrs, rcfg);
            a.vol = std::move(res).value();
            return a;
        }();

        // Interleaved small writes across 4 open zones: many stripes
        // in flight per zone.
        RaiznTarget target(arr.vol.get());
        WorkloadRunner runner(arr.loop.get(), &target);
        std::vector<JobSpec> jobs;
        for (uint32_t z = 0; z < 4; ++z) {
            JobSpec s;
            s.mode = RwMode::kSeqWrite;
            s.block_sectors = 4;
            s.queue_depth = 16;
            s.region_start = z * arr.vol->zone_capacity();
            // Half a zone: zones stay open, buffers stay allocated.
            s.region_len = arr.vol->zone_capacity() / 2;
            s.seed = z;
            jobs.push_back(s);
        }
        runner.run(jobs);
        auto fp = arr.vol->memory_footprint();
        std::printf("%-9u %14llu %14llu %16zu\n", nbuf,
                    (unsigned long long)arr.vol->stats()
                        .stripe_buffer_recycles,
                    (unsigned long long)arr.vol->stats()
                        .partial_parity_logs,
                    fp.stripe_buffers / kKiB);
    }
    std::printf("\nShape: a stripe buffer is evicted (recycled) once "
                "the write stream moves `buffers` stripes past it, so "
                "recycles fall linearly with the buffer count; with "
                "enough buffers to cover the in-flight write window "
                "(the paper picks 8), an incomplete stripe is never "
                "evicted and write processing never blocks, at a "
                "fixed memory cost per open zone.\n");
    return 0;
}
