/**
 * @file
 * Fig. 9: RAIZN vs mdraid with 64 KiB stripe units: throughput,
 * median latency, and 99.9th percentile latency across block sizes
 * for the three §6.1 workloads. Paper observation 2: comparable
 * overall; mdraid wins small (4-64 KiB) reads/writes, RAIZN matches
 * or wins at large block sizes.
 */
#include <cstdio>
#include <string>

#include "bench_util.h"

using namespace raizn;
using namespace raizn::bench;

int
main()
{
    print_header("Fig 9: RAIZN vs mdraid (64KiB stripe units)");
    for (const char *wl : {"seqread", "write", "randread"}) {
        std::printf("\n-- %s --\n", wl);
        std::printf("%-6s %12s %12s %10s %10s %12s %12s\n", "bs",
                    "md_MiBs", "rz_MiBs", "md_p50us", "rz_p50us",
                    "md_p999us", "rz_p999us");
        for (uint32_t bs : kBlockSweep) {
            WorkloadPoint md, rz;
            {
                BenchScale scale;
                auto arr = make_mdraid_array(scale);
                MdTarget target(arr.vol.get());
                if (std::string(wl) == "write") {
                    md = run_seq(arr.loop.get(), &target,
                                 RwMode::kSeqWrite, bs, 0);
                } else {
                    prime_target(arr.loop.get(), &target,
                                 target.capacity());
                    md = std::string(wl) == "seqread"
                        ? run_seq(arr.loop.get(), &target,
                                  RwMode::kSeqRead, bs, 0)
                        : run_rand_read(arr.loop.get(), &target, bs);
                }
            }
            {
                BenchScale scale;
                auto arr = make_raizn_array(scale);
                RaiznTarget target(arr.vol.get());
                uint64_t zc = arr.vol->zone_capacity();
                if (std::string(wl) == "write") {
                    rz = run_seq(arr.loop.get(), &target,
                                 RwMode::kSeqWrite, bs, zc);
                } else {
                    prime_target(arr.loop.get(), &target,
                                 target.capacity());
                    rz = std::string(wl) == "seqread"
                        ? run_seq(arr.loop.get(), &target,
                                  RwMode::kSeqRead, bs, zc)
                        : run_rand_read(arr.loop.get(), &target, bs);
                }
            }
            std::printf("%-6s %12.0f %12.0f %10.0f %10.0f %12.0f %12.0f\n",
                        block_label(bs).c_str(), md.mibs, rz.mibs,
                        md.p50_us, rz.p50_us, md.p999_us, rz.p999_us);
        }
    }
    std::printf("\nPaper shape: mdraid ahead on 4-64K writes (RAIZN "
                "pays the parity-log header); parity at large blocks; "
                "tail latencies comparable.\n");
    return 0;
}
