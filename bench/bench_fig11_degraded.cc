/**
 * @file
 * Fig. 11: degraded performance. After priming, the first device is
 * removed without replacement; sequential and random read throughput
 * and latency are measured on both systems. Paper: comparable, RAIZN
 * slightly worse at 4 KiB and better at larger sizes.
 */
#include <cstdio>
#include <string>

#include "bench_util.h"

using namespace raizn;
using namespace raizn::bench;

int
main()
{
    print_header("Fig 11: degraded (1 failed device) read performance");
    for (const char *wl : {"seqread", "randread"}) {
        std::printf("\n-- degraded %s --\n", wl);
        std::printf("%-6s %12s %12s %10s %10s %12s %12s\n", "bs",
                    "md_MiBs", "rz_MiBs", "md_p50us", "rz_p50us",
                    "md_p999us", "rz_p999us");
        for (uint32_t bs : kBlockSweep) {
            WorkloadPoint md, rz;
            {
                BenchScale scale;
                auto arr = make_mdraid_array(scale);
                MdTarget target(arr.vol.get());
                prime_target(arr.loop.get(), &target, target.capacity());
                arr.vol->mark_device_failed(0);
                md = std::string(wl) == "seqread"
                    ? run_seq(arr.loop.get(), &target, RwMode::kSeqRead,
                              bs, 0)
                    : run_rand_read(arr.loop.get(), &target, bs);
            }
            {
                BenchScale scale;
                auto arr = make_raizn_array(scale);
                RaiznTarget target(arr.vol.get());
                prime_target(arr.loop.get(), &target, target.capacity());
                arr.vol->mark_device_failed(0);
                rz = std::string(wl) == "seqread"
                    ? run_seq(arr.loop.get(), &target, RwMode::kSeqRead,
                              bs, arr.vol->zone_capacity())
                    : run_rand_read(arr.loop.get(), &target, bs);
            }
            std::printf("%-6s %12.0f %12.0f %10.0f %10.0f %12.0f %12.0f\n",
                        block_label(bs).c_str(), md.mibs, rz.mibs,
                        md.p50_us, rz.p50_us, md.p999_us, rz.p999_us);
        }
    }
    std::printf("\nPaper shape: degraded performance of the two systems "
                "is comparable; RAIZN slightly behind at 4 KiB, ahead at "
                "larger IO sizes.\n");
    return 0;
}
