/**
 * @file
 * Table 1: persistent location, storage per update, and memory
 * footprint of each RAIZN metadata type, reproduced from a live array
 * configured like the paper's (5 devices, 64 KiB stripe units; zone
 * capacity scaled, with the paper's 1077 MiB figure computed
 * analytically alongside).
 */
#include <cstdio>

#include "bench_util.h"

using namespace raizn;
using namespace raizn::bench;

int
main()
{
    print_header("Table 1: RAIZN metadata location and size");

    BenchScale scale;
    scale.data_mode = DataMode::kStore;
    scale.zones_per_device = 11; // 8 logical zones
    scale.zone_cap_sectors = 2048; // 8 MiB (scaled from 1077 MiB)
    auto arr = make_raizn_array(scale);
    RaiznTarget target(arr.vol.get());

    // Touch the array so per-open-zone structures exist: open one zone
    // with a partial stripe (forces a stripe buffer + parity log).
    WorkloadRunner runner(arr.loop.get(), &target);
    JobSpec s;
    s.mode = RwMode::kSeqWrite;
    s.block_sectors = 4;
    s.queue_depth = 1;
    s.io_limit = 5;
    s.region_len = arr.vol->zone_capacity();
    runner.run({s});

    auto fp = arr.vol->memory_footprint();
    const RaiznConfig &cfg = arr.vol->layout().config();

    std::printf("%-24s %-22s %-26s %s\n", "Metadata type",
                "Persistent location", "Storage per update",
                "Memory footprint");
    std::printf("%-24s %-22s %-26s %s\n", "Remapped stripe unit",
                "affected device only", "4 KiB hdr + 64 KiB SU",
                "4 KiB + 64 KiB per entry");
    std::printf("%-24s %-22s %-26s %s\n", "Zone reset log",
                "two devices (rotated)", "4 KiB", "-");
    std::printf("%-24s %-22s %-26s 8.05 B/zone (measured %.2f)\n",
                "Generation counters", "all devices", "4 KiB",
                static_cast<double>(fp.gen_counters) /
                    arr.vol->num_zones());
    std::printf("%-24s %-22s %-26s %s\n", "Partial parity",
                "device with parity", "4 KiB hdr + <=64 KiB", "-");
    std::printf("%-24s %-22s %-26s %zu B\n", "Superblock", "all devices",
                "4 KiB", fp.superblock);
    uint64_t su_bytes = static_cast<uint64_t>(cfg.su_sectors) *
        kSectorSize;
    std::printf("%-24s %-22s %-26s %llu KiB x %u per open zone\n",
                "Stripe buffers", "-", "-",
                (unsigned long long)(cfg.data_units() * su_bytes / kKiB),
                cfg.stripe_buffers_per_zone);
    // Persistence bitmap at the paper's geometry: one bit per stripe
    // unit of a 1077 MiB physical zone -> ~2 KiB (Table 1).
    uint64_t paper_zone_cap = 1077 * kMiB / kSectorSize;
    uint64_t paper_sus = paper_zone_cap / cfg.su_sectors;
    std::printf("%-24s %-22s %-26s %.1f KiB per logical zone "
                "(paper geometry)\n",
                "Persistence bitmaps", "-", "-",
                static_cast<double>(paper_sus) / 8 / kKiB);
    std::printf("%-24s %-22s %-26s 64 B per zone per device\n",
                "Physical zone desc.", "-", "-");
    std::printf("%-24s %-22s %-26s 64 B per logical zone\n",
                "Logical zone desc.", "-", "-");

    std::printf("\nLive array measurements (scaled geometry):\n");
    std::printf("  gen counters        : %zu B\n", fp.gen_counters);
    std::printf("  stripe buffers      : %zu B (1 open zone)\n",
                fp.stripe_buffers);
    std::printf("  persistence bitmaps : %zu B\n",
                fp.persistence_bitmaps);
    std::printf("  zone descriptors    : %zu B\n", fp.zone_descriptors);
    std::printf("  partial parity logs : %llu written\n",
                (unsigned long long)arr.vol->stats().partial_parity_logs);
    std::printf("\nPaper: total metadata < 100 MiB, fully cached in "
                "memory; valid persistent metadata typically "
                "192 KiB-4096 KiB.\n");
    return 0;
}
