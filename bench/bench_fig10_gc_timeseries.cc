/**
 * @file
 * Fig. 10: full-device overwrite timeseries. Workload 1: five
 * concurrent threads each sequentially write 20% of the address
 * space (mixing lifetimes inside the conventional SSDs' erase
 * blocks). Workload 2: one thread sequentially overwrites the entire
 * address space. mdraid collapses when the conventional SSDs exhaust
 * their over-provisioning and start garbage collecting; RAIZN stays
 * flat because ZNS devices do no device-side GC. Points A-D mark
 * 20/40/60/80% of the overwrite.
 */
#include <cstdio>
#include <string>

#include "bench_util.h"

using namespace raizn;
using namespace raizn::bench;

namespace {

constexpr uint32_t kBs = 64; // 256 KiB writes

struct Series {
    std::vector<Sampler::Sample> samples;
    Tick interval;
    Tick phase2_start;
    std::vector<Tick> points; // A-D
};

void
phase1(EventLoop *loop, IoTarget *target, uint64_t align, Sampler *s)
{
    WorkloadRunner runner(loop, target);
    auto jobs = seq_jobs(RwMode::kSeqWrite, kBs, 5, 16,
                         target->capacity(), align);
    runner.run(jobs, s);
}

Series
run_mdraid()
{
    BenchScale scale;
    auto arr = make_mdraid_array(scale);
    MdTarget target(arr.vol.get());
    Sampler sampler(100 * kNsPerMs);
    Series out;
    phase1(arr.loop.get(), &target, 0, &sampler);
    out.phase2_start = arr.loop->now();
    // Workload 2: single-thread full overwrite, recording A-D.
    WorkloadRunner runner(arr.loop.get(), &target);
    uint64_t cap = target.capacity() / kBs * kBs;
    for (int fifth = 0; fifth < 5; ++fifth) {
        JobSpec s;
        s.mode = RwMode::kSeqWrite;
        s.block_sectors = kBs;
        s.queue_depth = 16;
        s.region_start = cap / 5 * static_cast<uint64_t>(fifth);
        s.region_len = cap / 5;
        runner.run({s}, &sampler);
        if (fifth < 4)
            out.points.push_back(arr.loop->now());
    }
    out.samples = sampler.samples();
    out.interval = sampler.interval();
    return out;
}

Series
run_raizn()
{
    BenchScale scale;
    auto arr = make_raizn_array(scale);
    RaiznTarget target(arr.vol.get());
    Sampler sampler(100 * kNsPerMs);
    Series out;
    phase1(arr.loop.get(), &target, arr.vol->zone_capacity(), &sampler);
    out.phase2_start = arr.loop->now();
    // Workload 2 on a zoned volume: reset each zone, then rewrite it.
    WorkloadRunner runner(arr.loop.get(), &target);
    uint32_t zones = arr.vol->num_zones();
    for (uint32_t z = 0; z < zones; ++z) {
        bool done = false;
        arr.vol->reset_zone(z, [&](IoResult) { done = true; });
        arr.loop->run_until_pred([&] { return done; });
        JobSpec s;
        s.mode = RwMode::kSeqWrite;
        s.block_sectors = kBs;
        s.queue_depth = 16;
        s.region_start = arr.vol->layout().zone_start_lba(z);
        s.region_len = arr.vol->zone_capacity();
        runner.run({s}, &sampler);
        if (z > 0 && z % (zones / 5) == 0 && out.points.size() < 4)
            out.points.push_back(arr.loop->now());
    }
    out.samples = sampler.samples();
    out.interval = sampler.interval();
    return out;
}

void
print_series(const char *name, const Series &s)
{
    std::printf("\n-- %s (one row per %.1fs of virtual time) --\n", name,
                static_cast<double>(s.interval) / kNsPerSec);
    std::printf("%8s %12s %10s %10s %s\n", "t_s", "MiB/s", "p50_us",
                "p999_us", "mark");
    for (const auto &sample : s.samples) {
        std::string mark;
        if (sample.t <= s.phase2_start &&
            s.phase2_start < sample.t + s.interval) {
            mark += " <-- overwrite starts";
        }
        char pt = 'A';
        for (Tick p : s.points) {
            if (sample.t <= p && p < sample.t + s.interval) {
                mark += std::string(" <-- ") + pt;
            }
            pt++;
        }
        std::printf("%8.1f %12.0f %10.0f %10.0f%s\n",
                    static_cast<double>(sample.t) / kNsPerSec,
                    sample.throughput_mibs(s.interval),
                    static_cast<double>(sample.latency.p50()) / 1e3,
                    static_cast<double>(sample.latency.p999()) / 1e3,
                    mark.c_str());
    }
    // Summary: min/max steady throughput before and after.
    double before = 0, worst = 1e18;
    uint64_t nb = 0;
    // Skip the trailing two samples: the final partial interval only
    // contains the workload's drain.
    size_t usable = s.samples.size() > 2 ? s.samples.size() - 2 : 0;
    for (size_t i = 0; i < usable; ++i) {
        const auto &sample = s.samples[i];
        double mibs = sample.throughput_mibs(s.interval);
        if (sample.t < s.phase2_start) {
            before += mibs;
            nb++;
        } else if (mibs > 0 && mibs < worst) {
            worst = mibs;
        }
    }
    if (nb)
        before /= static_cast<double>(nb);
    std::printf("   fill-phase avg %.0f MiB/s, worst overwrite sample "
                "%.0f MiB/s (%.0f%% drop)\n",
                before, worst, 100.0 * (1.0 - worst / before));
}

} // namespace

int
main()
{
    print_header("Fig 10: device-GC timeseries, full overwrite");
    Series md = run_mdraid();
    print_series("mdraid (conventional SSDs)", md);
    Series rz = run_raizn();
    print_series("RAIZN (ZNS SSDs)", rz);
    std::printf("\nPaper shape: mdraid throughput drops up to 93%% and "
                "tail latency rises ~14x once on-device GC starts, "
                "recovering after point D; RAIZN stays flat.\n");
    return 0;
}
