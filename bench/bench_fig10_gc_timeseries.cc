/**
 * @file
 * Fig. 10: full-device overwrite timeseries. Workload 1: five
 * concurrent threads each sequentially write 20% of the address
 * space (mixing lifetimes inside the conventional SSDs' erase
 * blocks). Workload 2: one thread sequentially overwrites the entire
 * address space. mdraid collapses when the conventional SSDs exhaust
 * their over-provisioning and start garbage collecting; RAIZN stays
 * flat because ZNS devices do no device-side GC. Points A-D mark
 * 20/40/60/80% of the overwrite.
 *
 * Both runs are instrumented with the telemetry timeline: every
 * registry metric (volume counters with derived rates, per-device FTL
 * occupancy/GC gauges, zone census, utilization) is sampled per
 * interval, exportable as CSV via --timeseries-out, and fed to an
 * anomaly detector watching the volume write rate. The run
 * self-checks the paper's claim: the mdraid series must trip a
 * `throughput_collapse` event inside the overwrite phase, and the
 * RAIZN series must trip none. Emits BENCH_fig10_collapse.json for
 * the CI perf-regression gate.
 *
 *   bench_fig10_gc_timeseries [--smoke] [--timeseries-out f.csv]
 *                             [--timeseries-interval-ms N]
 */
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "obs/ledger.h"

using namespace raizn;
using namespace raizn::bench;

namespace {

constexpr uint32_t kBs = 64; // 256 KiB writes

struct Series {
    std::vector<Sampler::Sample> samples;
    Tick interval = 0;
    Tick phase2_start = 0;
    Tick end = 0;
    std::vector<Tick> points; // A-D

    // Telemetry summary (filled from the run's anomaly detector and
    // the sampler series; the JSON baseline is written from these).
    uint64_t collapse_events = 0;
    uint64_t recovered_events = 0;
    double first_collapse_s = -1; ///< virtual seconds; -1 = none
    double fill_avg_mibs = 0;
    double worst_mibs = 0;
    double drop_pct = 0;
};

void
phase1(EventLoop *loop, IoTarget *target, uint64_t align, Sampler *s)
{
    WorkloadRunner runner(loop, target);
    auto jobs = seq_jobs(RwMode::kSeqWrite, kBs, 5, 16,
                         target->capacity(), align);
    runner.run(jobs, s);
}

/// Collapse rule on the volume's write rate; warmup absorbs the
/// ramp-in at the head of the fill phase.
obs::AnomalyConfig
collapse_config(const char *rate_series)
{
    obs::AnomalyConfig cfg;
    obs::CollapseRule rule;
    rule.series = rate_series;
    cfg.collapse.push_back(rule);
    return cfg;
}

void
summarize_anomalies(const obs::AnomalyDetector &det, Series *out)
{
    out->collapse_events =
        det.count(obs::AnomalyEvent::Type::kThroughputCollapse);
    out->recovered_events =
        det.count(obs::AnomalyEvent::Type::kThroughputRecovered);
    const obs::AnomalyEvent *first =
        det.first(obs::AnomalyEvent::Type::kThroughputCollapse);
    if (first != nullptr) {
        out->first_collapse_s =
            static_cast<double>(first->t) / kNsPerSec;
    }
    if (!det.events().empty())
        std::printf("%s", det.dump().c_str());
}

Series
run_mdraid(const ObsOptions &oo, const BenchScale &scale)
{
    auto arr = make_mdraid_array(scale);
    obs::MetricsRegistry reg;
    arr.vol->attach_observability(&reg, nullptr);
    // Byte-provenance columns: per-cause byte rates + WAF/RAF gauges
    // ride along in every timeseries CSV row.
    obs::IoLedger ledger;
    arr.vol->attach_ledger(&ledger);
    ledger.link_metrics(&reg);
    auto tl = make_timeline(oo, arr.loop.get(), &reg);
    arr.vol->install_timeline(tl.get());
    ledger.install_probe(tl.get());
    obs::AnomalyDetector det(
        collapse_config("mdraid.sectors_written.rate"));
    tl->set_detector(&det);
    tl->start();

    MdTarget target(arr.vol.get());
    Sampler sampler(100 * kNsPerMs);
    Series out;
    phase1(arr.loop.get(), &target, 0, &sampler);
    out.phase2_start = arr.loop->now();
    // Workload 2: single-thread full overwrite, recording A-D.
    WorkloadRunner runner(arr.loop.get(), &target);
    uint64_t cap = target.capacity() / kBs * kBs;
    for (int fifth = 0; fifth < 5; ++fifth) {
        JobSpec s;
        s.mode = RwMode::kSeqWrite;
        s.block_sectors = kBs;
        s.queue_depth = 16;
        s.region_start = cap / 5 * static_cast<uint64_t>(fifth);
        s.region_len = cap / 5;
        runner.run({s}, &sampler);
        if (fifth < 4)
            out.points.push_back(arr.loop->now());
    }
    out.end = arr.loop->now();
    out.samples = sampler.samples();
    out.interval = sampler.interval();
    finish_timeline(oo, tl.get(), "mdraid");
    summarize_anomalies(det, &out);
    return out;
}

Series
run_raizn(const ObsOptions &oo, const BenchScale &scale)
{
    auto arr = make_raizn_array(scale);
    obs::MetricsRegistry reg;
    arr.vol->attach_observability(&reg, nullptr);
    // Same byte-provenance columns as the mdraid series, so the two
    // CSVs line up cause-for-cause.
    obs::IoLedger ledger;
    arr.vol->attach_ledger(&ledger);
    ledger.link_metrics(&reg);
    auto tl = make_timeline(oo, arr.loop.get(), &reg);
    arr.vol->install_timeline(tl.get());
    ledger.install_probe(tl.get());
    obs::AnomalyDetector det(
        collapse_config("raizn.sectors_written.rate"));
    tl->set_detector(&det);
    tl->start();

    RaiznTarget target(arr.vol.get());
    Sampler sampler(100 * kNsPerMs);
    Series out;
    phase1(arr.loop.get(), &target, arr.vol->zone_capacity(), &sampler);
    out.phase2_start = arr.loop->now();
    // Workload 2 on a zoned volume: reset each zone, then rewrite it.
    WorkloadRunner runner(arr.loop.get(), &target);
    uint32_t zones = arr.vol->num_zones();
    for (uint32_t z = 0; z < zones; ++z) {
        bool done = false;
        arr.vol->reset_zone(z, [&](IoResult) { done = true; });
        arr.loop->run_until_pred([&] { return done; });
        JobSpec s;
        s.mode = RwMode::kSeqWrite;
        s.block_sectors = kBs;
        s.queue_depth = 16;
        s.region_start = arr.vol->layout().zone_start_lba(z);
        s.region_len = arr.vol->zone_capacity();
        runner.run({s}, &sampler);
        if (z > 0 && z % (zones / 5) == 0 && out.points.size() < 4)
            out.points.push_back(arr.loop->now());
    }
    out.end = arr.loop->now();
    out.samples = sampler.samples();
    out.interval = sampler.interval();
    finish_timeline(oo, tl.get(), "raizn");
    summarize_anomalies(det, &out);
    return out;
}

void
print_series(const char *name, Series &s)
{
    std::printf("\n-- %s (one row per %.1fs of virtual time) --\n", name,
                static_cast<double>(s.interval) / kNsPerSec);
    std::printf("%8s %12s %10s %10s %s\n", "t_s", "MiB/s", "p50_us",
                "p999_us", "mark");
    for (const auto &sample : s.samples) {
        std::string mark;
        if (sample.t <= s.phase2_start &&
            s.phase2_start < sample.t + s.interval) {
            mark += " <-- overwrite starts";
        }
        char pt = 'A';
        for (Tick p : s.points) {
            if (sample.t <= p && p < sample.t + s.interval) {
                mark += std::string(" <-- ") + pt;
            }
            pt++;
        }
        std::printf("%8.1f %12.0f %10.0f %10.0f%s\n",
                    static_cast<double>(sample.t) / kNsPerSec,
                    sample.throughput_mibs(s.interval),
                    static_cast<double>(sample.latency.p50()) / 1e3,
                    static_cast<double>(sample.latency.p999()) / 1e3,
                    mark.c_str());
    }
    // Summary: min/max steady throughput before and after.
    double before = 0, worst = 1e18;
    uint64_t nb = 0;
    // Skip the trailing two samples: the final partial interval only
    // contains the workload's drain.
    size_t usable = s.samples.size() > 2 ? s.samples.size() - 2 : 0;
    for (size_t i = 0; i < usable; ++i) {
        const auto &sample = s.samples[i];
        double mibs = sample.throughput_mibs(s.interval);
        if (sample.t < s.phase2_start) {
            before += mibs;
            nb++;
        } else if (mibs > 0 && mibs < worst) {
            worst = mibs;
        }
    }
    if (nb)
        before /= static_cast<double>(nb);
    s.fill_avg_mibs = before;
    s.worst_mibs = worst < 1e18 ? worst : 0;
    s.drop_pct =
        before > 0 ? 100.0 * (1.0 - s.worst_mibs / before) : 0;
    std::printf("   fill-phase avg %.0f MiB/s, worst overwrite sample "
                "%.0f MiB/s (%.0f%% drop)\n",
                s.fill_avg_mibs, s.worst_mibs, s.drop_pct);
}

void
write_json(const BenchScale &scale, bool smoke, const HostMeter &meter,
           const Series &md, const Series &rz, FILE *f)
{
    std::fprintf(f,
                 "{\n  \"config\": {\"num_devices\": %u, "
                 "\"zones_per_device\": %u, \"zone_cap_sectors\": %llu, "
                 "\"su_sectors\": %u, \"block_sectors\": %u, "
                 "\"smoke\": %s},\n"
                 "  %s,\n",
                 scale.num_devices, scale.zones_per_device,
                 (unsigned long long)scale.zone_cap_sectors,
                 scale.su_sectors, kBs, smoke ? "true" : "false",
                 meter.json("").c_str());
    const struct {
        const char *name;
        const Series *s;
    } runs[] = {{"mdraid", &md}, {"raizn", &rz}};
    for (const auto &r : runs) {
        std::fprintf(
            f,
            "  \"%s\": {\"fill_avg_mibs\": %.1f, "
            "\"worst_overwrite_mibs\": %.1f, \"drop_pct\": %.1f, "
            "\"collapse_events\": %llu, \"recovered_events\": %llu, "
            "\"first_collapse_s\": %.2f},\n",
            r.name, r.s->fill_avg_mibs, r.s->worst_mibs, r.s->drop_pct,
            (unsigned long long)r.s->collapse_events,
            (unsigned long long)r.s->recovered_events,
            r.s->first_collapse_s);
    }
    // Collapse/recovery counts gate exactly; analog measurements get
    // bands sized to deterministic-sim drift from future code changes.
    std::fprintf(
        f,
        "  \"tolerance\": {\n"
        "    \"fill_avg_mibs\": {\"rel\": 0.10},\n"
        "    \"worst_overwrite_mibs\": {\"rel\": 0.25, \"abs\": 3},\n"
        "    \"drop_pct\": {\"abs\": 8},\n"
        "    \"collapse_events\": {\"abs\": 0},\n"
        "    \"recovered_events\": {\"abs\": 1},\n"
        "    \"first_collapse_s\": {\"rel\": 0.25, \"abs\": 1},\n"
        "    \"wall_ms\": {\"rel\": 10.0, \"abs\": 5000, \"warn\": true},\n"
        "    \"events_per_sec\": {\"rel\": 10.0, \"abs\": 1000, "
        "\"warn\": true},\n"
        "    \"events\": {\"rel\": 0.25, \"abs\": 1000, \"warn\": true},\n"
        "    \"alloc_count\": {\"rel\": 0.25, \"abs\": 1000, "
        "\"warn\": true},\n"
        "    \"alloc_bytes\": {\"rel\": 0.25, \"abs\": 65536, "
        "\"warn\": true},\n"
        "    \"copy_count\": {\"rel\": 0.25, \"abs\": 1000, "
        "\"warn\": true},\n"
        "    \"copy_bytes\": {\"rel\": 0.25, \"abs\": 65536, "
        "\"warn\": true}\n"
        "  }\n}\n");
}

} // namespace

int
main(int argc, char **argv)
{
    ObsOptions oo;
    if (!parse_obs_args(argc, argv, &oo))
        return 2;
    BenchScale scale;
    if (oo.smoke)
        scale.zones_per_device = 12;
    HostMeter meter;

    print_header("Fig 10: device-GC timeseries, full overwrite");
    Series md = run_mdraid(oo, scale);
    print_series("mdraid (conventional SSDs)", md);
    Series rz = run_raizn(oo, scale);
    print_series("RAIZN (ZNS SSDs)", rz);
    std::printf("\nPaper shape: mdraid throughput drops up to 93%% and "
                "tail latency rises ~14x once on-device GC starts, "
                "recovering after point D; RAIZN stays flat.\n");

    FILE *f = std::fopen("BENCH_fig10_collapse.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_fig10_collapse.json\n");
        return 1;
    }
    write_json(scale, oo.smoke, meter, md, rz, f);
    std::fclose(f);
    std::printf("wrote BENCH_fig10_collapse.json\n");

    // Self-check of the paper's claim, as detected (not eyeballed)
    // anomaly events.
    int rc = 0;
    double p2 = static_cast<double>(md.phase2_start) / kNsPerSec;
    if (md.collapse_events == 0) {
        std::fprintf(stderr, "FAIL: mdraid OP-exhaustion collapse not "
                             "detected\n");
        rc = 1;
    } else if (md.first_collapse_s < p2) {
        std::fprintf(stderr,
                     "FAIL: mdraid collapse detected at %.2fs, before "
                     "the overwrite phase began (%.2fs)\n",
                     md.first_collapse_s, p2);
        rc = 1;
    }
    if (rz.collapse_events != 0) {
        std::fprintf(stderr,
                     "FAIL: RAIZN series tripped %llu collapse events; "
                     "the detector is too trigger-happy\n",
                     (unsigned long long)rz.collapse_events);
        rc = 1;
    }
    if (rc == 0) {
        std::printf("self-check OK: mdraid collapse detected at %.2fs "
                    "(overwrite began %.2fs), RAIZN emitted no "
                    "events.\n",
                    md.first_collapse_s, p2);
    }
    return rc;
}
