/**
 * @file
 * Ablation: cost of partial-parity logging (§5.1). For each write
 * size, measures RAIZN's metadata write amplification — the extra
 * sectors written for parity-log headers and deltas — and compares
 * against (a) a hypothetical design that logs data+parity (what a
 * journal would write) and (b) mdraid's read-modify-write preread
 * traffic for the same workload. Explains Fig. 9's small-write gap.
 */
#include <cstdio>

#include "bench_util.h"

using namespace raizn;
using namespace raizn::bench;

int
main()
{
    print_header("Ablation: partial parity logging cost per write size");
    std::printf("%-6s %12s %12s %12s %12s %12s %12s\n", "bs",
                "data_sect", "pp_logs", "pp_sect", "raizn_WA",
                "journal_WA", "md_rmw_rd");
    for (uint32_t bs : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
        uint64_t data_sectors, pp_logs, pp_sectors;
        {
            BenchScale scale;
            auto arr = make_raizn_array(scale);
            RaiznTarget target(arr.vol.get());
            WorkloadRunner runner(arr.loop.get(), &target);
            auto jobs = seq_jobs(RwMode::kSeqWrite, bs, 4, 16,
                                 arr.vol->capacity(),
                                 arr.vol->zone_capacity());
            for (auto &j : jobs)
                j.io_limit = 1000;
            runner.run(jobs);
            const VolumeStats &st = arr.vol->stats();
            data_sectors = st.sectors_written;
            pp_logs = st.partial_parity_logs;
            pp_sectors = st.partial_parity_sectors + pp_logs; // + header
        }
        uint64_t md_rmw;
        {
            BenchScale scale;
            auto arr = make_mdraid_array(scale);
            MdTarget target(arr.vol.get());
            WorkloadRunner runner(arr.loop.get(), &target);
            auto jobs =
                seq_jobs(RwMode::kSeqWrite, bs, 4, 16,
                         arr.vol->capacity(), 0);
            for (auto &j : jobs)
                j.io_limit = 1000;
            runner.run(jobs);
            md_rmw = arr.vol->stats().rmw_reads;
        }
        // RAIZN WA: (data + parity(1/D amortized) + pp) / data. The
        // full parity is 1/4 of data for complete stripes; partial
        // parity adds header+delta per non-aligned write.
        double raizn_wa =
            static_cast<double>(data_sectors + data_sectors / 4 +
                                pp_sectors) /
            static_cast<double>(data_sectors);
        // Journal alternative: every partial write logs data AND
        // parity (mdraid journal behaviour): delta becomes data+delta.
        double journal_wa =
            static_cast<double>(data_sectors + data_sectors / 4 +
                                pp_sectors + data_sectors) /
            static_cast<double>(data_sectors);
        std::printf("%-6s %12llu %12llu %12llu %12.2f %12.2f %12llu\n",
                    block_label(bs).c_str(),
                    (unsigned long long)data_sectors,
                    (unsigned long long)pp_logs,
                    (unsigned long long)pp_sectors, raizn_wa, journal_wa,
                    (unsigned long long)md_rmw);
    }
    std::printf("\nShape: the 4 KiB-write parity-log header dominates "
                "(3x+ amplification), shrinking as writes approach the "
                "64 KiB stripe unit; logging only the parity delta "
                "halves the journal alternative's overhead. mdraid "
                "avoids log writes but pays RMW prereads on cache "
                "misses.\n");
    return 0;
}
