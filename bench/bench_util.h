/**
 * @file
 * Shared helpers for the figure/table reproduction benches: standard
 * block-size sweeps, array construction at bench scale, and aligned
 * table printing.
 */
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "wkld/runner.h"
#include "wkld/setup.h"
#include "wkld/target.h"

namespace raizn::bench {

/// Paper sweep: 4 KiB .. 1 MiB block sizes (in sectors).
inline const std::vector<uint32_t> kBlockSweep = {1, 4, 16, 64, 256};

/// Stripe-unit sweep of Figs. 7/8: 8..128 KiB (in sectors).
inline const std::vector<uint32_t> kSuSweep = {2, 4, 8, 16, 32};

inline std::string
block_label(uint32_t sectors)
{
    uint64_t bytes = static_cast<uint64_t>(sectors) * kSectorSize;
    if (bytes >= kMiB)
        return std::to_string(bytes / kMiB) + "M";
    return std::to_string(bytes / kKiB) + "K";
}

inline void
print_header(const char *title)
{
    std::printf("\n==== %s ====\n", title);
}

/// io budget per configuration: enough for steady state, cheap to run.
inline constexpr uint64_t kIosPerJob = 1500;

/// Runs the paper's three §6.1 microbenchmark workloads on a target
/// and returns (throughput MiB/s, p50 us, p99.9 us).
struct WorkloadPoint {
    double mibs = 0;
    double p50_us = 0;
    double p999_us = 0;
};

inline WorkloadPoint
run_seq(EventLoop *loop, IoTarget *target, RwMode mode, uint32_t bs,
        uint64_t zone_align)
{
    WorkloadRunner runner(loop, target);
    auto jobs = seq_jobs(mode, bs, 8, 64, target->capacity(), zone_align);
    for (auto &j : jobs)
        j.io_limit = kIosPerJob;
    auto res = runner.run_merged(jobs);
    return {res.throughput_mibs(),
            static_cast<double>(res.latency.p50()) / 1e3,
            static_cast<double>(res.latency.p999()) / 1e3};
}

inline WorkloadPoint
run_rand_read(EventLoop *loop, IoTarget *target, uint32_t bs)
{
    WorkloadRunner runner(loop, target);
    JobSpec s = rand_read_job(bs, 256, target->capacity());
    s.io_limit = 8 * kIosPerJob;
    auto res = runner.run_merged({s});
    return {res.throughput_mibs(),
            static_cast<double>(res.latency.p50()) / 1e3,
            static_cast<double>(res.latency.p999()) / 1e3};
}

} // namespace raizn::bench
