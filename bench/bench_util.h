/**
 * @file
 * Shared helpers for the figure/table reproduction benches: standard
 * block-size sweeps, array construction at bench scale, and aligned
 * table printing.
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "obs/anomaly.h"
#include "obs/metrics.h"
#include "obs/prof/prof.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "wkld/runner.h"
#include "wkld/setup.h"
#include "wkld/target.h"

namespace raizn::bench {

/// Observability flags shared by the benches: --metrics-out <path>
/// writes the registry JSON, --trace-out <path> the Chrome trace,
/// --timeseries-out <path> per-interval CSV rows of every metric
/// (--timeseries-interval-ms sets the sampling period), and --smoke
/// bounds the run for ctest.
struct ObsOptions {
    std::string metrics_out;
    std::string trace_out;
    std::string timeseries_out;
    std::string prof_out;  ///< host profiler JSON summary
    std::string flame_out; ///< collapsed-stack flamegraph (folded)
    uint64_t timeseries_interval_ms = 100;
    bool smoke = false;
};

/**
 * Consumes the observability flags from argv; returns false (and
 * prints usage) on an unrecognized argument so benches without flags
 * of their own can pass argc/argv straight through.
 */
inline bool
parse_obs_args(int argc, char **argv, ObsOptions *out)
{
    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        if (a == "--metrics-out" && i + 1 < argc) {
            out->metrics_out = argv[++i];
        } else if (a == "--trace-out" && i + 1 < argc) {
            out->trace_out = argv[++i];
        } else if (a == "--timeseries-out" && i + 1 < argc) {
            out->timeseries_out = argv[++i];
        } else if (a == "--timeseries-interval-ms" && i + 1 < argc) {
            out->timeseries_interval_ms =
                std::strtoull(argv[++i], nullptr, 10);
            if (out->timeseries_interval_ms == 0)
                out->timeseries_interval_ms = 100;
        } else if (a == "--prof-out" && i + 1 < argc) {
            out->prof_out = argv[++i];
        } else if (a == "--flame-out" && i + 1 < argc) {
            out->flame_out = argv[++i];
        } else if (a == "--smoke") {
            out->smoke = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--metrics-out m.json] "
                         "[--trace-out t.json] "
                         "[--timeseries-out t.csv] "
                         "[--timeseries-interval-ms N] "
                         "[--prof-out p.json] [--flame-out f.folded] "
                         "[--smoke]\n",
                         argv[0]);
            return false;
        }
    }
    return true;
}

/// Inserts ".tag" before the path's extension ("a/b.csv", "md" ->
/// "a/b.md.csv"), so one --timeseries-out flag can name several runs.
inline std::string
path_with_tag(const std::string &path, const std::string &tag)
{
    size_t slash = path.find_last_of('/');
    size_t dot = path.find_last_of('.');
    if (dot == std::string::npos ||
        (slash != std::string::npos && dot < slash)) {
        return path + "." + tag;
    }
    return path.substr(0, dot) + "." + tag + path.substr(dot);
}

/// Builds a Timeline for one bench run's loop at the configured
/// interval (caller wires probes/detector and calls start()).
inline std::unique_ptr<obs::Timeline>
make_timeline(const ObsOptions &oo, EventLoop *loop,
              obs::MetricsRegistry *reg)
{
    obs::TimelineConfig cfg;
    cfg.interval = oo.timeseries_interval_ms * kNsPerMs;
    // Benches keep every row: 1<<16 rows outlives any bench run.
    cfg.capacity = 1 << 16;
    return std::make_unique<obs::Timeline>(loop, reg, cfg);
}

/// Flushes the final partial interval and writes the CSV when
/// --timeseries-out was given (with `tag` when non-empty).
inline void
finish_timeline(const ObsOptions &oo, obs::Timeline *tl,
                const std::string &tag = "")
{
    tl->sample_now();
    tl->stop();
    if (oo.timeseries_out.empty())
        return;
    std::string path = tag.empty()
        ? oo.timeseries_out
        : path_with_tag(oo.timeseries_out, tag);
    Status s = tl->write_csv(path);
    std::printf("timeseries csv: %s (%zu rows x %zu cols)%s\n",
                path.c_str(), tl->size(), tl->columns().size(),
                s.is_ok() ? "" : (" FAILED: " + s.to_string()).c_str());
}

/// Registry + trace ring for one instrumented bench pass, plus the
/// export step (stage table to stdout, JSON files when requested).
struct BenchObs {
    ObsOptions opts;
    obs::MetricsRegistry registry;
    obs::TraceRecorder trace{1 << 16};

    /**
     * Prints the per-stage latency table and writes the JSON outputs.
     * `num_devices` names the device tracks in the Chrome trace.
     */
    void
    finish(uint32_t num_devices)
    {
        std::printf("\n-- per-stage latency breakdown --\n%s",
                    trace.stage_breakdown().c_str());
        if (!opts.metrics_out.empty()) {
            Status s = registry.write_json(opts.metrics_out);
            std::printf("metrics json: %s%s\n", opts.metrics_out.c_str(),
                        s.is_ok() ? "" : (" FAILED: " + s.to_string())
                                             .c_str());
        }
        if (!opts.trace_out.empty()) {
            Status s = trace.write_chrome_json(opts.trace_out,
                                               num_devices);
            std::printf("chrome trace: %s (open in chrome://tracing or "
                        "ui.perfetto.dev)%s\n",
                        opts.trace_out.c_str(),
                        s.is_ok() ? "" : (" FAILED: " + s.to_string())
                                             .c_str());
        }
    }

    /**
     * Coverage of `total_stage` requests: for each traced request that
     * has a `total_stage` span, the fraction of its wall time covered
     * by its other spans. Returns the minimum across sampled requests
     * (worst case), or 0 when none were traced; `*n_out` gets the
     * sample count and `*mean_out` the average when non-null.
     */
    double
    write_coverage(const char *total_stage, size_t *n_out = nullptr,
                   double *mean_out = nullptr) const
    {
        std::vector<uint64_t> reqs;
        for (const obs::TraceSpan &s : trace.spans()) {
            if (std::strcmp(s.stage, total_stage) == 0)
                reqs.push_back(s.req);
        }
        double worst = reqs.empty() ? 0.0 : 1.0, sum = 0.0;
        for (uint64_t r : reqs) {
            double c = trace.request_coverage(r, total_stage);
            worst = std::min(worst, c);
            sum += c;
        }
        if (n_out != nullptr)
            *n_out = reqs.size();
        if (mean_out != nullptr && !reqs.empty())
            *mean_out = sum / static_cast<double>(reqs.size());
        return worst;
    }
};

/// True when the caller asked for any host-profiler output.
inline bool
prof_requested(const ObsOptions &oo)
{
    return !oo.prof_out.empty() || !oo.flame_out.empty();
}

/**
 * Ends the profiler window, prints the top-10 self-time table, and
 * writes the JSON summary / folded flamegraph files that were
 * requested. No-op if the profiler was never enabled.
 */
inline void
finish_prof(const ObsOptions &oo)
{
    if (!prof::enabled() && prof::wall_ns() == 0)
        return;
    prof::disable();
    std::printf("\n-- host profile: top scopes by self time "
                "(wall %.1f ms, %.0f events/s, coverage %.1f%%) --\n%s",
                static_cast<double>(prof::wall_ns()) * 1e-6,
                prof::events_per_sec(), prof::coverage() * 100.0,
                prof::table(10).c_str());
    if (!oo.prof_out.empty() &&
        prof::write_file(oo.prof_out, prof::summary_json()))
        std::printf("prof json: %s\n", oo.prof_out.c_str());
    if (!oo.flame_out.empty() &&
        prof::write_file(oo.flame_out, prof::folded()))
        std::printf("flamegraph (folded): %s (feed to flamegraph.pl or "
                    "speedscope)\n",
                    oo.flame_out.c_str());
}

/**
 * Wall-clock + hot-path counter snapshot for the `host` block of a
 * BENCH_*.json. Reads the profiler's unconditional counters, so it
 * works whether or not scope timing is enabled.
 */
struct HostMeter {
    uint64_t t0_ns = 0;
    uint64_t ev0 = 0, alloc0 = 0, alloc_bytes0 = 0;
    uint64_t copy0 = 0, copy_bytes0 = 0;

    HostMeter() { restart(); }

    void
    restart()
    {
        t0_ns = prof::host_now_ns();
        ev0 = prof::g_events_dispatched;
        alloc0 = prof::g_alloc_count;
        alloc_bytes0 = prof::g_alloc_bytes;
        copy0 = prof::g_copy_count;
        copy_bytes0 = prof::g_copy_bytes;
    }

    double
    wall_ms() const
    {
        return static_cast<double>(prof::host_now_ns() - t0_ns) * 1e-6;
    }

    double
    events_per_sec() const
    {
        double s = static_cast<double>(prof::host_now_ns() - t0_ns) * 1e-9;
        if (s <= 0.0)
            return 0.0;
        return static_cast<double>(prof::g_events_dispatched - ev0) / s;
    }

    /**
     * Renders the `host` JSON object (no trailing comma/newline), e.g.
     *   "host": {"wall_ms": 812.4, "events_per_sec": 1.2e6, ...}
     * Bench writers embed it next to their existing fields; bench-gate
     * bands for these fields are wide and report-only (see
     * tools/bench_gate.py "warn" bands).
     */
    std::string
    json(const char *indent) const
    {
        char buf[512];
        std::snprintf(
            buf, sizeof(buf),
            "%s\"host\": {\"wall_ms\": %.3f, \"events_per_sec\": %.1f, "
            "\"events\": %llu, \"alloc_count\": %llu, "
            "\"alloc_bytes\": %llu, \"copy_count\": %llu, "
            "\"copy_bytes\": %llu}",
            indent, wall_ms(), events_per_sec(),
            static_cast<unsigned long long>(prof::g_events_dispatched -
                                            ev0),
            static_cast<unsigned long long>(prof::g_alloc_count - alloc0),
            static_cast<unsigned long long>(prof::g_alloc_bytes -
                                            alloc_bytes0),
            static_cast<unsigned long long>(prof::g_copy_count - copy0),
            static_cast<unsigned long long>(prof::g_copy_bytes -
                                            copy_bytes0));
        return buf;
    }
};

/// Paper sweep: 4 KiB .. 1 MiB block sizes (in sectors).
inline const std::vector<uint32_t> kBlockSweep = {1, 4, 16, 64, 256};

/// Stripe-unit sweep of Figs. 7/8: 8..128 KiB (in sectors).
inline const std::vector<uint32_t> kSuSweep = {2, 4, 8, 16, 32};

inline std::string
block_label(uint32_t sectors)
{
    uint64_t bytes = static_cast<uint64_t>(sectors) * kSectorSize;
    if (bytes >= kMiB)
        return std::to_string(bytes / kMiB) + "M";
    return std::to_string(bytes / kKiB) + "K";
}

inline void
print_header(const char *title)
{
    std::printf("\n==== %s ====\n", title);
}

/// io budget per configuration: enough for steady state, cheap to run.
inline constexpr uint64_t kIosPerJob = 1500;

/// Runs the paper's three §6.1 microbenchmark workloads on a target
/// and returns (throughput MiB/s, p50 us, p99.9 us).
struct WorkloadPoint {
    double mibs = 0;
    double p50_us = 0;
    double p999_us = 0;
};

inline WorkloadPoint
run_seq(EventLoop *loop, IoTarget *target, RwMode mode, uint32_t bs,
        uint64_t zone_align)
{
    WorkloadRunner runner(loop, target);
    auto jobs = seq_jobs(mode, bs, 8, 64, target->capacity(), zone_align);
    for (auto &j : jobs)
        j.io_limit = kIosPerJob;
    auto res = runner.run_merged(jobs);
    return {res.throughput_mibs(),
            static_cast<double>(res.latency.p50()) / 1e3,
            static_cast<double>(res.latency.p999()) / 1e3};
}

inline WorkloadPoint
run_rand_read(EventLoop *loop, IoTarget *target, uint32_t bs)
{
    WorkloadRunner runner(loop, target);
    JobSpec s = rand_read_job(bs, 256, target->capacity());
    s.io_limit = 8 * kIosPerJob;
    auto res = runner.run_merged({s});
    return {res.throughput_mibs(),
            static_cast<double>(res.latency.p50()) / 1e3,
            static_cast<double>(res.latency.p999()) / 1e3};
}

} // namespace raizn::bench
