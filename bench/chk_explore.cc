/**
 * @file
 * Crash-point exploration CLI. Drives the deterministic crash-point
 * explorer (src/chk/) from the command line: exhaustive enumeration of
 * every completion boundary, seeded random sweeps over larger
 * workloads, or replay of specific crash points when triaging a
 * failure. Every failing schedule is printed with the exact arguments
 * that reproduce it.
 *
 *   chk_explore explore  [--workload W] [--policy P] [--degraded]
 *   chk_explore sweep    [--runs N] [--seed S] [--workload W]
 *   chk_explore replay   --points 12,13,40 [--workload W]
 *   chk_explore --smoke       # bounded mode for ctest (<30s)
 *
 * Workloads: canonical (default), degraded[:dev], random[:seed[:nops]].
 * Policies: drop (default), keep, random, divergent.
 */
#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "chk/explorer.h"
#include "obs/prof/prof.h"

using namespace raizn::chk;

namespace {

int
usage(const char *argv0)
{
    fprintf(stderr,
            "usage: %s [explore|sweep|replay] [options]\n"
            "  --engine raizn|raid0|raid1|raid5|raid6|raid10|auto\n"
            "                    array implementation to explore\n"
            "                    (default raizn, the paper's volume)\n"
            "  --workload canonical|degraded[:dev]|random[:seed[:nops]]\n"
            "  --policy drop|keep|random|divergent\n"
            "  --degraded        also re-read degraded after each mount\n"
            "  --runs N          sweep: number of sampled crash points\n"
            "  --seed S          sweep: RNG seed\n"
            "  --points a,b,c    replay: explicit crash points\n"
            "  --fault skip-pp   plant the skip-partial-parity bug\n"
            "  --err-rate R      inject transient IO errors at rate R\n"
            "  --bitflip-rate R  flip one bit of read payloads at rate R\n"
            "  --fault-seed S    seed for the fault schedule\n"
            "  --slow-dev D      make device D 8x slower (fail-slow)\n"
            "  --dump-on-failure DIR  write a triage bundle per\n"
            "                    failing point to DIR/point_<N>/:\n"
            "                    trace.json, metrics.json,\n"
            "                    timeline.csv, prof.json, ledger.json\n"
            "  --trace-on-failure DIR  alias for --dump-on-failure\n"
            "  --phase workload|rebuild[:dev]\n"
            "                    rebuild: run the workload, fail :dev\n"
            "                    (default 1), cut power during the\n"
            "                    in-flight rebuild, resume after mount\n"
            "  --rebuild-rate R  throttle the rebuild to R sectors/s\n"
            "  --smoke           bounded exhaustive+sweep for ctest\n"
            "  --prof            host-profile the run; prints the\n"
            "                    top-10 self-time scopes afterwards\n"
            "  --prof-out F      write the profile summary JSON to F\n"
            "  --flame-out F     write a collapsed-stack flamegraph\n"
            "                    (folded format) to F\n",
            argv0);
    return 2;
}

ChkWorkload
parse_workload(const std::string &spec, const ChkGeom &g,
               bool allow_fail_dev, bool *ok)
{
    *ok = true;
    if (spec.empty() || spec == "canonical")
        return canonical_workload(g);
    if (spec.rfind("degraded", 0) == 0) {
        uint32_t dev = 1;
        if (spec.size() > 9 && spec[8] == ':')
            dev = static_cast<uint32_t>(strtoul(spec.c_str() + 9, nullptr, 0));
        if (dev >= g.num_devices) {
            fprintf(stderr, "degraded:%u: device out of range (0-%u)\n",
                    dev, g.num_devices - 1);
            *ok = false;
            return {};
        }
        return degraded_workload(g, dev);
    }
    if (spec.rfind("random", 0) == 0) {
        uint64_t seed = 1;
        uint32_t nops = 12;
        if (spec.size() > 7 && spec[6] == ':') {
            char *end = nullptr;
            seed = strtoull(spec.c_str() + 7, &end, 0);
            if (end && *end == ':')
                nops = static_cast<uint32_t>(strtoul(end + 1, nullptr, 0));
        }
        return random_workload(g, seed, nops, allow_fail_dev);
    }
    *ok = false;
    return {};
}

void
print_report(const char *mode, const ChkReport &rep,
             const std::string &repro_args)
{
    printf("%s: boundaries=%llu runs=%llu failures=%zu\n", mode,
           (unsigned long long)rep.boundaries, (unsigned long long)rep.runs,
           rep.failures.size());
    for (const ChkFailure &f : rep.failures) {
        printf("  FAIL crash_point=%llu [%s] %s\n",
               (unsigned long long)f.crash_point, f.invariant.c_str(),
               f.detail.c_str());
        printf("    replay: chk_explore replay --points %llu%s\n",
               (unsigned long long)f.crash_point, repro_args.c_str());
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string mode = "explore";
    std::string wl_spec = "canonical";
    std::string policy = "drop";
    bool degraded = false, smoke = false;
    uint64_t runs = 64, seed = 1;
    std::vector<uint64_t> points;
    auto fault = raizn::RaiznVolume::DebugFault::kNone;
    double err_rate = 0.0, bitflip_rate = 0.0;
    uint64_t fault_seed = 0;
    int slow_dev = -1;
    std::string dump_dir;
    auto phase = ChkOptions::Phase::kWorkload;
    uint32_t rebuild_dev = 1;
    uint64_t rebuild_rate = 0;
    bool prof_on = false;
    std::string prof_out, flame_out;

    auto engine = raizn::RaidMode::kRaizn;

    int i = 1;
    if (i < argc && argv[i][0] != '-')
        mode = argv[i++];
    for (; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&]() -> const char * {
            return i + 1 < argc ? argv[++i] : "";
        };
        if (a == "--engine") {
            std::string e = next();
            if (!raizn::parse_raid_mode(e, &engine)) {
                fprintf(stderr, "unknown engine '%s'\n", e.c_str());
                return usage(argv[0]);
            }
            if (engine == raizn::RaidMode::kMdraid) {
                fprintf(stderr,
                        "mdraid runs over conventional devices — it has "
                        "no zones, so zone-granular crash exploration "
                        "does not apply; use the bench_fault_sweep "
                        "fault matrix instead\n");
                return 2;
            }
        } else if (a == "--workload") {
            wl_spec = next();
        } else if (a == "--policy") {
            policy = next();
        } else if (a == "--degraded") {
            degraded = true;
        } else if (a == "--runs") {
            runs = strtoull(next(), nullptr, 0);
        } else if (a == "--seed") {
            seed = strtoull(next(), nullptr, 0);
        } else if (a == "--points") {
            const char *p = next();
            while (*p) {
                points.push_back(strtoull(p, const_cast<char **>(&p), 0));
                if (*p == ',')
                    p++;
            }
        } else if (a == "--fault") {
            std::string f = next();
            if (f != "skip-pp")
                return usage(argv[0]);
            fault = raizn::RaiznVolume::DebugFault::kSkipPartialParityLog;
        } else if (a == "--err-rate") {
            err_rate = strtod(next(), nullptr);
        } else if (a == "--bitflip-rate") {
            bitflip_rate = strtod(next(), nullptr);
        } else if (a == "--fault-seed") {
            fault_seed = strtoull(next(), nullptr, 0);
        } else if (a == "--slow-dev") {
            slow_dev = static_cast<int>(strtol(next(), nullptr, 0));
        } else if (a == "--dump-on-failure" || a == "--trace-on-failure") {
            dump_dir = next();
            if (dump_dir.empty())
                return usage(argv[0]);
        } else if (a == "--phase") {
            std::string p = next();
            if (p == "workload") {
                phase = ChkOptions::Phase::kWorkload;
            } else if (p.rfind("rebuild", 0) == 0) {
                phase = ChkOptions::Phase::kRebuild;
                if (p.size() > 8 && p[7] == ':') {
                    rebuild_dev = static_cast<uint32_t>(
                        strtoul(p.c_str() + 8, nullptr, 0));
                }
            } else {
                return usage(argv[0]);
            }
        } else if (a == "--rebuild-rate") {
            rebuild_rate = strtoull(next(), nullptr, 0);
        } else if (a == "--smoke") {
            smoke = true;
        } else if (a == "--prof") {
            prof_on = true;
        } else if (a == "--prof-out") {
            prof_out = next();
            prof_on = true;
        } else if (a == "--flame-out") {
            flame_out = next();
            prof_on = true;
        } else {
            return usage(argv[0]);
        }
    }

    ChkConfig cfg;
    cfg.engine = engine;
    const bool is_raizn = engine == raizn::RaidMode::kRaizn;
    if (!is_raizn) {
        // Engine geometry: smaller stripe units and taller zones keep
        // every mode's canonical workload inside the smallest logical
        // zone capacity (RAID-1's, one device zone).
        cfg.su_sectors = 8;
        cfg.zone_cap = 256;
        if (engine == raizn::RaidMode::kRaid10)
            cfg.num_devices = 4; // mirror pairs need an even count
    }
    // Mid-workload device failures followed by a power cut are only in
    // contract for arrays whose acked writes stay reconstructable
    // across the crash: RAIZN (partial-parity log) and the mirror
    // modes (whole copies on the surviving members). Generic parity
    // modes lose the open stripe's parity with the cut.
    const bool fail_dev_in_contract = is_raizn ||
        engine == raizn::RaidMode::kRaid1 ||
        engine == raizn::RaidMode::kRaid10;
    if (phase == ChkOptions::Phase::kRebuild && !is_raizn) {
        fprintf(stderr,
                "--phase rebuild needs the raizn engine (persistent "
                "rebuild checkpoints)\n");
        return 2;
    }
    if (fault != raizn::RaiznVolume::DebugFault::kNone && !is_raizn) {
        fprintf(stderr, "--fault targets the raizn partial-parity log; "
                        "pick --engine raizn\n");
        return 2;
    }
    if (wl_spec.rfind("degraded", 0) == 0 && !fail_dev_in_contract) {
        fprintf(stderr,
                "the degraded workload is out of contract for engine "
                "'%s': its open-stripe parity is volatile, so degraded "
                "acks need not survive the cut (that write hole is what "
                "raizn's partial-parity log closes)\n",
                std::string(raizn::to_string(engine)).c_str());
        return 2;
    }
    bool ok = false;
    ChkWorkload wl =
        parse_workload(wl_spec, cfg.geom(), fail_dev_in_contract, &ok);
    if (!ok)
        return usage(argv[0]);

    ChkOptions opts;
    if (policy == "drop") {
        opts.policy = raizn::PowerLossSpec::Policy::kDropCache;
    } else if (policy == "keep") {
        opts.policy = raizn::PowerLossSpec::Policy::kKeepAll;
    } else if (policy == "random") {
        opts.policy = raizn::PowerLossSpec::Policy::kRandom;
        opts.loss_seed = seed;
    } else if (policy == "divergent") {
        opts.divergent_loss = true;
    } else {
        return usage(argv[0]);
    }
    opts.check_degraded = degraded;
    opts.fault = fault;
    if (err_rate > 0) {
        opts.faults.read_error_rate = err_rate;
        opts.faults.write_error_rate = err_rate;
    }
    opts.faults.bitflip_rate = bitflip_rate;
    if (fault_seed)
        opts.faults.seed = fault_seed;
    opts.fail_slow_dev = slow_dev;
    opts.phase = phase;
    opts.rebuild_dev = rebuild_dev;
    opts.rebuild_rate = rebuild_rate;
    if (!dump_dir.empty()) {
        if (mkdir(dump_dir.c_str(), 0755) != 0 && errno != EEXIST) {
            fprintf(stderr, "cannot create %s: %s\n", dump_dir.c_str(),
                    strerror(errno));
            return 2;
        }
        opts.dump_dir = dump_dir;
    }

    std::string engine_arg = is_raizn
        ? std::string()
        : " --engine " + std::string(raizn::to_string(engine));
    std::string repro =
        engine_arg + " --workload " + wl_spec + " --policy " + policy;
    if (fault != raizn::RaiznVolume::DebugFault::kNone)
        repro += " --fault skip-pp";
    if (degraded)
        repro += " --degraded";
    if (err_rate > 0) {
        char buf[64];
        snprintf(buf, sizeof(buf), " --err-rate %g", err_rate);
        repro += buf;
    }
    if (bitflip_rate > 0) {
        char buf[64];
        snprintf(buf, sizeof(buf), " --bitflip-rate %g", bitflip_rate);
        repro += buf;
    }
    if (fault_seed) {
        char buf[64];
        snprintf(buf, sizeof(buf), " --fault-seed %llu",
                 (unsigned long long)fault_seed);
        repro += buf;
    }
    if (slow_dev >= 0) {
        char buf[64];
        snprintf(buf, sizeof(buf), " --slow-dev %d", slow_dev);
        repro += buf;
    }
    if (phase == ChkOptions::Phase::kRebuild) {
        char buf[64];
        snprintf(buf, sizeof(buf), " --phase rebuild:%u", rebuild_dev);
        repro += buf;
    }
    if (rebuild_rate > 0) {
        char buf[64];
        snprintf(buf, sizeof(buf), " --rebuild-rate %llu",
                 (unsigned long long)rebuild_rate);
        repro += buf;
    }

    if (prof_on)
        raizn::prof::enable();

    int rc = 0;
    if (smoke && !is_raizn) {
        // Bounded per-mode budget for ctest: power cut at every
        // completion of the canonical workload, a seeded random sweep,
        // and — for the mirror modes, whose redundancy is whole copies
        // and therefore crash-safe — an exhaustive degraded pass with
        // post-mount degraded re-reads.
        {
            CrashPointExplorer ex(cfg, canonical_workload(cfg.geom()),
                                  opts);
            ChkReport rep = ex.explore_all();
            print_report("smoke-canonical", rep,
                         engine_arg + " --workload canonical --policy " +
                             policy);
            rc |= !rep.ok();
        }
        {
            CrashPointExplorer ex(
                cfg,
                random_workload(cfg.geom(), seed + 1, 14,
                                fail_dev_in_contract),
                opts);
            ChkReport rep = ex.sweep_random(16, seed);
            print_report("smoke-random", rep,
                         engine_arg + " --workload random:" +
                             std::to_string(seed + 1) + ":14 --policy " +
                             policy);
            rc |= !rep.ok();
        }
        if (fail_dev_in_contract) {
            ChkOptions dopts = opts;
            dopts.check_degraded = true;
            CrashPointExplorer ex(cfg, degraded_workload(cfg.geom(), 1),
                                  dopts);
            ChkReport rep = ex.explore_all();
            print_report("smoke-degraded", rep,
                         engine_arg +
                             " --workload degraded:1 --degraded "
                             "--policy " +
                             policy);
            rc |= !rep.ok();
        }
    } else if (smoke && phase == ChkOptions::Phase::kRebuild) {
        // Bounded rebuild-phase budget for ctest: power cut at every
        // completion of an unthrottled in-flight rebuild, plus a short
        // throttled sweep so the token-bucket path crosses the cut.
        std::string base =
            " --workload canonical --policy " + policy + " --phase rebuild";
        {
            CrashPointExplorer ex(cfg, canonical_workload(cfg.geom()),
                                  opts);
            ChkReport rep = ex.explore_all();
            print_report("smoke-rebuild", rep, base);
            rc |= !rep.ok();
        }
        {
            ChkOptions topts = opts;
            topts.rebuild_rate = 4096;
            CrashPointExplorer ex(cfg, canonical_workload(cfg.geom()),
                                  topts);
            ChkReport rep = ex.sweep_random(16, seed);
            print_report("smoke-rebuild-throttled", rep,
                         base + " --rebuild-rate 4096");
            rc |= !rep.ok();
        }
    } else if (smoke) {
        // Bounded budget for ctest: one exhaustive pass over the small
        // degraded workload plus a short sweep of the canonical one.
        {
            CrashPointExplorer ex(cfg, degraded_workload(cfg.geom(), 1),
                                  opts);
            ChkReport rep = ex.explore_all();
            print_report("smoke-degraded", rep,
                         " --workload degraded:1 --policy " + policy);
            rc |= !rep.ok();
        }
        {
            CrashPointExplorer ex(cfg, canonical_workload(cfg.geom()),
                                  opts);
            ChkReport rep = ex.sweep_random(24, seed);
            print_report("smoke-canonical", rep,
                         " --workload canonical --policy " + policy);
            rc |= !rep.ok();
        }
    } else if (mode == "explore") {
        CrashPointExplorer ex(cfg, wl, opts);
        ChkReport rep = ex.explore_all();
        print_report("explore", rep, repro);
        rc = !rep.ok();
    } else if (mode == "sweep") {
        CrashPointExplorer ex(cfg, wl, opts);
        ChkReport rep = ex.sweep_random(runs, seed);
        print_report("sweep", rep, repro);
        rc = !rep.ok();
    } else if (mode == "replay") {
        if (points.empty())
            return usage(argv[0]);
        CrashPointExplorer ex(cfg, wl, opts);
        ChkReport rep = ex.explore_points(points);
        print_report("replay", rep, repro);
        rc = !rep.ok();
    } else {
        return usage(argv[0]);
    }

    if (prof_on) {
        raizn::prof::disable();
        printf("\n-- host profile: wall %.1f ms, %.0f events/s, "
               "scope coverage %.1f%% --\n%s",
               static_cast<double>(raizn::prof::wall_ns()) * 1e-6,
               raizn::prof::events_per_sec(),
               raizn::prof::coverage() * 100,
               raizn::prof::table(10).c_str());
        if (!prof_out.empty())
            raizn::prof::write_file(prof_out,
                                    raizn::prof::summary_json());
        if (!flame_out.empty())
            raizn::prof::write_file(flame_out, raizn::prof::folded());
    }
    return rc;
}
