/**
 * @file
 * Fault sweep: RAIZN throughput and tail latency vs injected transient
 * error rate, from a healthy array through a fail-slow member to
 * degraded mode. Every device sits behind a FaultInjectingDevice with
 * a seeded schedule, so runs are reproducible. Emits
 * BENCH_fault_sweep.json with one record per (point, workload) for
 * plotting, and prints the volume's resilience counters per point.
 *
 * A second section sweeps the device-failure matrix across every
 * ZonedArray engine (raid0/1/5/6/10/auto and raizn): each mode runs a
 * sequential-write pass with 0..tolerance+1 members failed, and the
 * bench ASSERTS the mode-appropriate outcome — error-free IO at or
 * below the mode's fault tolerance, surfaced IO errors beyond it.
 *
 * --smoke runs neither sweep: it is the per-engine observability
 * self-check (ctest fault_sweep_smoke). Each generic ZonedEngine mode
 * runs a short instrumented write pass and the bench asserts that the
 * engine's stage spans cover >=95% of every sampled write's
 * "eng.write" wall time — the same bar the instrumented fig8 pass
 * holds the RAIZN volume to.
 */
#include <cstdio>
#include <string>
#include <vector>

#include "array/engine.h"
#include "array/raid_mode.h"
#include "bench_util.h"
#include "common/logging.h"
#include "fault/fault_device.h"

using namespace raizn;
using namespace raizn::bench;

namespace {

/// make_raizn_array with a fault decorator in front of every device.
struct FaultSweepArray {
    std::unique_ptr<EventLoop> loop;
    std::vector<std::unique_ptr<ZnsDevice>> devs;
    std::vector<std::unique_ptr<FaultInjectingDevice>> fdevs;
    std::unique_ptr<RaiznVolume> vol;
};

FaultSweepArray
make_faulty_array(const BenchScale &scale, double err_rate, int slow_dev)
{
    FaultSweepArray arr;
    arr.loop = std::make_unique<EventLoop>();
    std::vector<BlockDevice *> ptrs;
    for (uint32_t i = 0; i < scale.num_devices; ++i) {
        ZnsDeviceConfig cfg;
        cfg.nzones = scale.zones_per_device;
        cfg.zone_size = scale.zone_cap_sectors;
        cfg.zone_capacity = scale.zone_cap_sectors;
        cfg.data_mode = scale.data_mode;
        cfg.timing = TimingParams::zns();
        cfg.name = "zns" + std::to_string(i);
        arr.devs.push_back(
            std::make_unique<ZnsDevice>(arr.loop.get(), cfg));
        FaultConfig fc;
        fc.seed = 0xbe9c4 + i;
        fc.read_error_rate = err_rate;
        fc.write_error_rate = err_rate;
        if (static_cast<int>(i) == slow_dev)
            fc.latency_multiplier = 8.0;
        arr.fdevs.push_back(std::make_unique<FaultInjectingDevice>(
            arr.loop.get(), arr.devs.back().get(), fc));
        ptrs.push_back(arr.fdevs.back().get());
    }
    RaiznConfig rcfg;
    rcfg.num_devices = scale.num_devices;
    rcfg.su_sectors = scale.su_sectors;
    auto res = RaiznVolume::create(arr.loop.get(), ptrs, rcfg);
    if (!res.is_ok())
        RAIZN_PANIC("RAIZN create failed: %s",
                    res.status().to_string().c_str());
    arr.vol = std::move(res).value();
    return arr;
}

struct SweepPoint {
    std::string label;
    double err_rate;
    int slow_dev = -1; ///< device with an 8x latency multiplier
    bool degraded = false; ///< device 0 failed before the workload
};

struct Record {
    SweepPoint point;
    std::string mode;
    double mibs;
    double p99_us;
    uint64_t io_retries;
    uint64_t io_timeouts;
    uint64_t dev_errors;
};

Record
run_point(const SweepPoint &pt, const std::string &mode,
          BenchObs *obs = nullptr)
{
    constexpr uint32_t kBs = 64; // 256 KiB blocks
    BenchScale scale;
    auto arr = make_faulty_array(scale, pt.err_rate, pt.slow_dev);
    if (obs != nullptr) {
        // Instrumented point: volume + fault-injector counters feed
        // the registry, stage spans feed the trace ring.
        arr.vol->attach_observability(&obs->registry, &obs->trace);
        for (uint32_t i = 0; i < arr.fdevs.size(); ++i) {
            obs::link_stats(obs->registry,
                            "fault.dev" + std::to_string(i),
                            arr.fdevs[i]->fault_stats());
        }
    }
    RaiznTarget target(arr.vol.get());
    uint64_t zone_cap = arr.vol->zone_capacity();

    double mibs = 0, p99_us = 0;
    if (mode == "seqwrite") {
        if (pt.degraded)
            arr.vol->mark_device_failed(0);
        WorkloadRunner runner(arr.loop.get(), &target);
        auto jobs = seq_jobs(RwMode::kSeqWrite, kBs, 8, 64,
                             target.capacity(), zone_cap);
        for (auto &j : jobs)
            j.io_limit = kIosPerJob;
        auto res = runner.run_merged(jobs);
        mibs = res.throughput_mibs();
        p99_us = static_cast<double>(res.latency.p99()) / 1e3;
    } else { // randread
        prime_target(arr.loop.get(), &target, target.capacity());
        if (pt.degraded)
            arr.vol->mark_device_failed(0);
        WorkloadRunner runner(arr.loop.get(), &target);
        JobSpec s = rand_read_job(kBs, 256, target.capacity());
        s.io_limit = 8 * kIosPerJob;
        auto res = runner.run_merged({s});
        mibs = res.throughput_mibs();
        p99_us = static_cast<double>(res.latency.p99()) / 1e3;
    }

    const VolumeStats &st = arr.vol->stats();
    std::printf("  %-10s %-9s %8.0f MiB/s  p99 %7.0f us  %s\n",
                pt.label.c_str(), mode.c_str(), mibs, p99_us,
                st.dump().c_str());
    if (obs != nullptr) {
        // Export before the array (and the linked counters) dies.
        std::printf("  instrumented point: %s %s\n", pt.label.c_str(),
                    mode.c_str());
        obs->finish(arr.vol->num_devices());
    }
    return {pt,        mode,          mibs,         p99_us,
            st.io_retries, st.io_timeouts, st.dev_errors};
}

// ---------------------------------------------------------------------
// Cross-engine failure matrix
// ---------------------------------------------------------------------

struct EngineArray {
    std::unique_ptr<EventLoop> loop;
    std::vector<std::unique_ptr<ZnsDevice>> devs;
    std::unique_ptr<ZonedEngine> eng;
};

EngineArray
make_engine_array(RaidMode mode, const BenchScale &scale)
{
    EngineArray arr;
    arr.loop = std::make_unique<EventLoop>();
    // Mirror pairs need an even member count.
    uint32_t ndev = mode == RaidMode::kRaid10 ? scale.num_devices & ~1u
                                              : scale.num_devices;
    std::vector<BlockDevice *> ptrs;
    for (uint32_t i = 0; i < ndev; ++i) {
        ZnsDeviceConfig cfg;
        cfg.nzones = scale.zones_per_device;
        cfg.zone_size = scale.zone_cap_sectors;
        cfg.zone_capacity = scale.zone_cap_sectors;
        cfg.data_mode = scale.data_mode;
        cfg.timing = TimingParams::zns();
        cfg.name = "zns" + std::to_string(i);
        arr.devs.push_back(
            std::make_unique<ZnsDevice>(arr.loop.get(), cfg));
        ptrs.push_back(arr.devs.back().get());
    }
    EngineConfig ecfg;
    ecfg.mode = mode;
    ecfg.su_sectors = scale.su_sectors;
    auto res = ZonedEngine::create(arr.loop.get(), ptrs, ecfg);
    if (!res.is_ok())
        RAIZN_PANIC("%s create failed: %s",
                    std::string(to_string(mode)).c_str(),
                    res.status().to_string().c_str());
    arr.eng = std::move(res).value();
    return arr;
}

struct MatrixRecord {
    std::string engine;
    uint32_t nfail;
    bool survived;
    double mibs;
    uint64_t errors;
};

/// One (engine, failure-count) cell: seqwrite with `nfail` members
/// down. Panics when the observed outcome contradicts the mode's
/// fault tolerance, making the sweep a pass/fail resilience test.
MatrixRecord
run_matrix_point(RaidMode mode, uint32_t nfail)
{
    constexpr uint32_t kBs = 64;
    BenchScale scale;
    FaultSweepArray rarr;
    EngineArray earr;
    ZonedArray *za = nullptr;
    EventLoop *loop = nullptr;
    if (mode == RaidMode::kRaizn) {
        rarr = make_faulty_array(scale, 0.0, -1);
        za = rarr.vol.get();
        loop = rarr.loop.get();
    } else {
        earr = make_engine_array(mode, scale);
        za = earr.eng.get();
        loop = earr.loop.get();
    }
    for (uint32_t d = 0; d < nfail; ++d)
        za->mark_device_failed(d);

    ZonedArrayTarget target(za);
    WorkloadRunner runner(loop, &target);
    auto jobs = seq_jobs(RwMode::kSeqWrite, kBs, 4, 64, target.capacity(),
                         za->zone_capacity());
    for (auto &j : jobs)
        j.io_limit = kIosPerJob / 4; // outcome matters, not steady state
    auto res = runner.run_merged(jobs);

    const bool survived = res.errors == 0 && res.bytes > 0;
    const bool expect = nfail <= fault_tolerance(mode);
    std::printf("  %-7s nfail=%u  %8.0f MiB/s  errors=%-6llu %s\n",
                std::string(to_string(mode)).c_str(), nfail,
                res.throughput_mibs(), (unsigned long long)res.errors,
                survived ? "survived" : "degraded-out");
    if (survived != expect)
        RAIZN_PANIC("%s with %u member(s) failed: expected %s, got %s",
                    std::string(to_string(mode)).c_str(), nfail,
                    expect ? "error-free IO" : "surfaced IO errors",
                    survived ? "error-free IO" : "surfaced IO errors");
    return {std::string(to_string(mode)), nfail, survived,
            res.throughput_mibs(), res.errors};
}

/// --smoke: per-engine trace-coverage self-check. A short sequential
/// write pass per generic mode, with the engine's observability
/// attached; every sampled request must be >=95% accounted for by its
/// chunk/parity/WAL sub-spans or a hot path is missing its span.
int
engine_coverage_smoke(const ObsOptions &oo)
{
    print_header("Smoke: eng.write span coverage per ZonedEngine mode");
    prof::enable();
    int rc = 0;
    for (RaidMode mode :
         {RaidMode::kRaid0, RaidMode::kRaid1, RaidMode::kRaid5,
          RaidMode::kRaid6, RaidMode::kRaid10, RaidMode::kAuto}) {
        PROF_SCOPE("bench.fault_sweep.smoke");
        BenchScale scale;
        BenchObs obs;
        auto arr = make_engine_array(mode, scale);
        arr.eng->attach_observability(&obs.registry, &obs.trace);
        ZonedArrayTarget target(arr.eng.get());
        WorkloadRunner runner(arr.loop.get(), &target);
        auto jobs = seq_jobs(RwMode::kSeqWrite, 64, 4, 64,
                             target.capacity(), arr.eng->zone_capacity());
        for (auto &j : jobs)
            j.io_limit = kIosPerJob / 4;
        runner.run_merged(jobs);

        size_t n = 0;
        double mean = 0;
        double worst = obs.write_coverage("eng.write", &n, &mean);
        std::printf("  %-7s coverage min=%.1f%% mean=%.1f%% over %zu "
                    "writes\n", std::string(to_string(mode)).c_str(),
                    worst * 100, mean * 100, n);
        if (n == 0 || worst < 0.95) {
            std::fprintf(stderr,
                         "FAIL: %s eng.write span coverage %.1f%% below "
                         "95%% (n=%zu)\n",
                         std::string(to_string(mode)).c_str(),
                         worst * 100, n);
            rc = 1;
        }
    }
    finish_prof(oo);
    return rc;
}

} // namespace

int
main(int argc, char **argv)
{
    // `--matrix <mode>`: run only that engine's failure-matrix cells
    // (still asserted) and write BENCH_fault_matrix_<mode>.json — the
    // per-mode CI shard artifact.
    if (argc >= 3 && std::string(argv[1]) == "--matrix") {
        RaidMode mode;
        if (!parse_raid_mode(argv[2], &mode) ||
            mode == RaidMode::kMdraid) {
            std::fprintf(stderr, "unknown engine mode '%s'\n", argv[2]);
            return 2;
        }
        print_header("Failure matrix (single engine)");
        std::vector<MatrixRecord> matrix;
        for (uint32_t nfail = 0; nfail <= fault_tolerance(mode) + 1;
             ++nfail)
            matrix.push_back(run_matrix_point(mode, nfail));
        std::string path = "BENCH_fault_matrix_" +
            std::string(to_string(mode)) + ".json";
        FILE *mf = std::fopen(path.c_str(), "w");
        if (!mf) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            return 1;
        }
        std::fprintf(mf, "{\n  \"mode_matrix\": [\n");
        for (size_t i = 0; i < matrix.size(); ++i) {
            const MatrixRecord &m = matrix[i];
            std::fprintf(mf,
                         "    {\"engine\": \"%s\", "
                         "\"case\": \"nfail=%u\", \"survived\": %s, "
                         "\"mibs\": %.1f, \"errors\": %llu}%s\n",
                         m.engine.c_str(), m.nfail,
                         m.survived ? "true" : "false", m.mibs,
                         (unsigned long long)m.errors,
                         i + 1 < matrix.size() ? "," : "");
        }
        std::fprintf(mf,
                     "  ],\n"
                     "  \"tolerance\": {\n"
                     "    \"mibs\": {\"rel\": 0.10, \"abs\": 1},\n"
                     "    \"errors\": {\"rel\": 0.50, \"abs\": 20}\n"
                     "  }\n}\n");
        std::fclose(mf);
        std::printf("\nwrote %s (%zu records)\n", path.c_str(),
                    matrix.size());
        return 0;
    }

    ObsOptions oo;
    if (!parse_obs_args(argc, argv, &oo))
        return 2;
    if (oo.smoke)
        return engine_coverage_smoke(oo);
    print_header("Fault sweep: throughput/p99 vs injected error rate");
    HostMeter meter;

    std::vector<SweepPoint> points;
    for (double r : {0.0, 1e-4, 1e-3, 5e-3, 1e-2}) {
        char label[32];
        std::snprintf(label, sizeof(label), "err=%g", r);
        points.push_back({label, r, -1, false});
    }
    points.push_back({"fail-slow", 1e-3, /*slow_dev=*/2, false});
    points.push_back({"degraded", 1e-3, -1, /*degraded=*/true});

    // The err=1e-3 seqwrite point doubles as the instrumented run:
    // retries and error handling show up as extra device spans in its
    // stage breakdown.
    BenchObs obs;
    obs.opts = oo;
    std::vector<Record> records;
    for (const auto &pt : points) {
        for (const char *mode : {"seqwrite", "randread"}) {
            bool instrument = pt.err_rate == 1e-3 && pt.slow_dev < 0 &&
                !pt.degraded && std::string(mode) == "seqwrite";
            records.push_back(
                run_point(pt, mode, instrument ? &obs : nullptr));
        }
    }

    print_header("Failure matrix: outcome vs failed members, per engine");
    std::vector<MatrixRecord> matrix;
    for (RaidMode mode :
         {RaidMode::kRaid0, RaidMode::kRaid1, RaidMode::kRaid5,
          RaidMode::kRaid6, RaidMode::kRaid10, RaidMode::kAuto,
          RaidMode::kRaizn}) {
        for (uint32_t nfail = 0; nfail <= fault_tolerance(mode) + 1;
             ++nfail)
            matrix.push_back(run_matrix_point(mode, nfail));
    }

    FILE *f = std::fopen("BENCH_fault_sweep.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_fault_sweep.json\n");
        return 1;
    }
    BenchScale scale;
    std::fprintf(f,
                 "{\n  \"config\": {\"num_devices\": %u, "
                 "\"zones_per_device\": %u, \"zone_cap_sectors\": %llu, "
                 "\"su_sectors\": %u, \"block_sectors\": 64},\n"
                 "  %s,\n"
                 "  \"points\": [\n",
                 scale.num_devices, scale.zones_per_device,
                 (unsigned long long)scale.zone_cap_sectors,
                 scale.su_sectors, meter.json("").c_str());
    for (size_t i = 0; i < records.size(); ++i) {
        const Record &r = records[i];
        std::fprintf(
            f,
            "    {\"label\": \"%s\", \"err_rate\": %g, "
            "\"slow_dev\": %d, \"degraded\": %s, \"mode\": \"%s\", "
            "\"mibs\": %.1f, \"p99_us\": %.1f, \"io_retries\": %llu, "
            "\"io_timeouts\": %llu, \"dev_errors\": %llu}%s\n",
            r.point.label.c_str(), r.point.err_rate, r.point.slow_dev,
            r.point.degraded ? "true" : "false", r.mode.c_str(), r.mibs,
            r.p99_us, (unsigned long long)r.io_retries,
            (unsigned long long)r.io_timeouts,
            (unsigned long long)r.dev_errors,
            i + 1 < records.size() ? "," : "");
    }
    // The matrix's identity is (engine, case); `survived` is the
    // asserted outcome and must match the baseline exactly.
    std::fprintf(f, "  ],\n  \"mode_matrix\": [\n");
    for (size_t i = 0; i < matrix.size(); ++i) {
        const MatrixRecord &m = matrix[i];
        std::fprintf(f,
                     "    {\"engine\": \"%s\", \"case\": \"nfail=%u\", "
                     "\"survived\": %s, \"mibs\": %.1f, "
                     "\"errors\": %llu}%s\n",
                     m.engine.c_str(), m.nfail,
                     m.survived ? "true" : "false", m.mibs,
                     (unsigned long long)m.errors,
                     i + 1 < matrix.size() ? "," : "");
    }
    // Injected faults perturb tail latency and retry counts more than
    // throughput, so those fields get the widest bands. Host-clock
    // fields are machine-dependent: their bands are wide and
    // report-only (warn), a wall-clock regression baseline rather
    // than a hard gate. The event/alloc/copy counters only move when
    // the code changes, but still warn-only so a legitimate
    // refactor's drift reads as a prompt to regenerate, not a CI red.
    std::fprintf(
        f,
        "  ],\n"
        "  \"tolerance\": {\n"
        "    \"mibs\": {\"rel\": 0.10, \"abs\": 1},\n"
        "    \"p99_us\": {\"rel\": 0.20, \"abs\": 10},\n"
        "    \"io_retries\": {\"rel\": 0.30, \"abs\": 5},\n"
        "    \"io_timeouts\": {\"rel\": 0.30, \"abs\": 3},\n"
        "    \"dev_errors\": {\"rel\": 0.30, \"abs\": 5},\n"
        "    \"errors\": {\"rel\": 0.50, \"abs\": 20},\n"
        "    \"wall_ms\": {\"rel\": 10.0, \"abs\": 5000, \"warn\": true},\n"
        "    \"events_per_sec\": {\"rel\": 10.0, \"abs\": 1000, "
        "\"warn\": true},\n"
        "    \"events\": {\"rel\": 0.25, \"abs\": 1000, \"warn\": true},\n"
        "    \"alloc_count\": {\"rel\": 0.25, \"abs\": 1000, "
        "\"warn\": true},\n"
        "    \"alloc_bytes\": {\"rel\": 0.25, \"abs\": 65536, "
        "\"warn\": true},\n"
        "    \"copy_count\": {\"rel\": 0.25, \"abs\": 1000, "
        "\"warn\": true},\n"
        "    \"copy_bytes\": {\"rel\": 0.25, \"abs\": 65536, "
        "\"warn\": true}\n"
        "  }\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_fault_sweep.json (%zu records)\n",
                records.size());
    return 0;
}
