/**
 * @file
 * Where do the bytes go? Write/read-amplification accounting from the
 * byte-provenance ledger, per volume type (RAIZN, mdraid, and every
 * generic ZonedEngine mode) and per lifecycle phase:
 *
 *   healthy  — fig8-style sequential write + random read
 *   degraded — one member failed, zones recycled, same workload
 *   rebuild  — failed member replaced and rebuilt/resynced
 *
 * After each phase the bench snapshots the ledger's cumulative WAF/RAF
 * and per-cause amplification components (milli units, exact integers)
 * and runs the conservation audit — any device byte that reached a
 * member without a cause tag fails the bench. Emits BENCH_waf.json
 * under exact (abs=0) bench-gate bands: amplification in this
 * deterministic simulation is a property of the data path, so any
 * drift is a behavior change that must be acknowledged by
 * regenerating the baseline. Also writes per-volume breakdown and
 * zone-churn heatmap CSVs for the CI artifacts.
 *
 * --smoke runs the RAIZN healthy phase only (ctest waf_smoke): audit
 * plus the paper's qualitative claim that RAIZN pays a partial-parity
 * log premium mdraid does not have.
 */
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "array/engine.h"
#include "array/raid_mode.h"
#include "bench_util.h"
#include "common/logging.h"
#include "obs/ledger.h"

using namespace raizn;
using namespace raizn::bench;

namespace {

/// Per-cause WAF components reported as JSON fields. scrub/zone_mgmt
/// move no write bytes in these phases; untagged is audited to zero.
constexpr obs::Cause kCauseCols[] = {
    obs::Cause::kUserData, obs::Cause::kParity,
    obs::Cause::kPpLog,    obs::Cause::kWalMd,
    obs::Cause::kRelocation, obs::Cause::kRebuild,
    obs::Cause::kResync,   obs::Cause::kGc,
};
constexpr size_t kNumCols = sizeof(kCauseCols) / sizeof(kCauseCols[0]);

struct WafPoint {
    std::string volume;
    std::string phase;
    long long waf_milli = 0;
    long long raf_milli = 0;
    long long comp_milli[kNumCols] = {};
    unsigned long long untagged_ops = 0;
};

long long
milli(double v)
{
    return std::llround(v * 1000.0);
}

/// One array under test behind the shared ZonedArray interface, with
/// whatever owns it kept alive alongside.
struct VolRun {
    RaiznArray ra;
    MdArray ma;
    struct {
        std::unique_ptr<EventLoop> loop;
        std::vector<std::unique_ptr<ZnsDevice>> devs;
        std::unique_ptr<ZonedEngine> eng;
    } ea;
    ZonedArray *arr = nullptr;
    EventLoop *loop = nullptr;
    std::unique_ptr<IoTarget> target;
    uint64_t zone_align = 0; ///< 0 for the conventional md stack
    std::function<void()> replace_victim;
};

VolRun
make_vol(const std::string &name, uint32_t victim)
{
    BenchScale scale;
    VolRun v;
    if (name == "raizn") {
        v.ra = make_raizn_array(scale);
        v.arr = v.ra.vol.get();
        v.loop = v.ra.loop.get();
        v.target = std::make_unique<RaiznTarget>(v.ra.vol.get());
        v.zone_align = v.ra.vol->zone_capacity();
        ZnsDevice *d = v.ra.devs[victim].get();
        v.replace_victim = [d] { d->replace(); };
        return v;
    }
    if (name == "mdraid") {
        v.ma = make_mdraid_array(scale);
        v.arr = v.ma.vol.get();
        v.loop = v.ma.loop.get();
        v.target = std::make_unique<MdTarget>(v.ma.vol.get());
        v.zone_align = 0;
        ConvDevice *d = v.ma.devs[victim].get();
        v.replace_victim = [d] { d->replace(); };
        return v;
    }
    RaidMode mode = RaidMode::kAuto;
    if (name == "raid0")
        mode = RaidMode::kRaid0;
    else if (name == "raid1")
        mode = RaidMode::kRaid1;
    else if (name == "raid5")
        mode = RaidMode::kRaid5;
    else if (name == "raid6")
        mode = RaidMode::kRaid6;
    else if (name == "raid10")
        mode = RaidMode::kRaid10;
    v.ea.loop = std::make_unique<EventLoop>();
    // Mirror pairs need an even member count.
    uint32_t ndev = mode == RaidMode::kRaid10 ? scale.num_devices & ~1u
                                              : scale.num_devices;
    std::vector<BlockDevice *> ptrs;
    for (uint32_t i = 0; i < ndev; ++i) {
        ZnsDeviceConfig cfg;
        cfg.nzones = scale.zones_per_device;
        cfg.zone_size = scale.zone_cap_sectors;
        cfg.zone_capacity = scale.zone_cap_sectors;
        cfg.data_mode = scale.data_mode;
        cfg.timing = TimingParams::zns();
        cfg.name = "zns" + std::to_string(i);
        v.ea.devs.push_back(
            std::make_unique<ZnsDevice>(v.ea.loop.get(), cfg));
        ptrs.push_back(v.ea.devs.back().get());
    }
    EngineConfig ecfg;
    ecfg.mode = mode;
    ecfg.su_sectors = scale.su_sectors;
    auto res = ZonedEngine::create(v.ea.loop.get(), ptrs, ecfg);
    if (!res.is_ok())
        RAIZN_PANIC("%s create failed: %s", name.c_str(),
                    res.status().to_string().c_str());
    v.ea.eng = std::move(res).value();
    v.arr = v.ea.eng.get();
    v.loop = v.ea.loop.get();
    v.target = std::make_unique<ZonedArrayTarget>(v.ea.eng.get());
    v.zone_align = v.ea.eng->zone_capacity();
    ZnsDevice *d = v.ea.devs[victim].get();
    v.replace_victim = [d] { d->replace(); };
    return v;
}

/// Sequential-write pass at 4 jobs (not fig8's 8): the generic engine
/// modes keep one physical zone active per in-flight logical zone on
/// every member, and 8 jobs straddling zone boundaries (plus the
/// journal zone) overrun the paper's 14-active-zone device limit.
/// Amplification ratios are what this bench measures and they do not
/// depend on the job count.
WorkloadPoint
run_seq_write(EventLoop *loop, IoTarget *target, uint32_t bs,
              uint64_t zone_align)
{
    WorkloadRunner runner(loop, target);
    auto jobs = seq_jobs(RwMode::kSeqWrite, bs, 4, 64,
                         target->capacity(), zone_align);
    for (auto &j : jobs)
        j.io_limit = kIosPerJob;
    auto res = runner.run_merged(jobs);
    return {res.throughput_mibs(),
            static_cast<double>(res.latency.p50()) / 1e3,
            static_cast<double>(res.latency.p999()) / 1e3};
}

/// Random reads bounded to the span the sequential-write pass
/// actually wrote (the first seq job's prefix): reads of never-written
/// stripes are an error on the participant-gated engine modes (and
/// would escalate into device failures), not a workload.
WorkloadPoint
run_rand_read_written(EventLoop *loop, IoTarget *target, uint32_t bs)
{
    WorkloadRunner runner(loop, target);
    JobSpec s = rand_read_job(bs, 256, kIosPerJob * bs);
    s.io_limit = 8 * kIosPerJob;
    auto res = runner.run_merged({s});
    return {res.throughput_mibs(),
            static_cast<double>(res.latency.p50()) / 1e3,
            static_cast<double>(res.latency.p999()) / 1e3};
}

/// Recycles every logical zone so a second sequential-write pass has
/// fresh write pointers (and the heatmap gets real churn). No-op for
/// the conventional md stack.
void
reset_all_zones(EventLoop *loop, IoTarget *target, uint64_t zone_align)
{
    if (!target->zoned() || zone_align == 0)
        return;
    uint64_t nzones = target->capacity() / zone_align;
    uint64_t done = 0;
    for (uint64_t z = 0; z < nzones; ++z)
        target->reset_zone_at(z * zone_align,
                              [&done](IoResult) { ++done; });
    loop->run_until_pred([&] { return done == nzones; });
}

/// Snapshots one (volume, phase) point and runs the conservation
/// audit. Returns false (and prints the violations) on audit failure.
bool
snap_phase(const std::string &volume, const std::string &phase,
           const obs::IoLedger &ledger, std::vector<WafPoint> *out)
{
    obs::LedgerAudit audit = ledger.audit();
    if (!audit.ok()) {
        std::fprintf(stderr,
                     "FAIL: %s/%s ledger conservation audit:\n%s",
                     volume.c_str(), phase.c_str(),
                     audit.summary().c_str());
        return false;
    }
    WafPoint p;
    p.volume = volume;
    p.phase = phase;
    p.waf_milli = milli(ledger.waf());
    p.raf_milli = milli(ledger.raf());
    for (size_t i = 0; i < kNumCols; ++i)
        p.comp_milli[i] = milli(ledger.waf_component(kCauseCols[i]));
    p.untagged_ops = ledger.untagged_ops();
    std::printf("  %-8s %-8s waf=%.3f raf=%.3f (pp_log %.3f, parity "
                "%.3f, wal_md %.3f, rebuild %.3f, resync %.3f)\n",
                volume.c_str(), phase.c_str(),
                static_cast<double>(p.waf_milli) / 1000.0,
                static_cast<double>(p.raf_milli) / 1000.0,
                static_cast<double>(p.comp_milli[2]) / 1000.0,
                static_cast<double>(p.comp_milli[1]) / 1000.0,
                static_cast<double>(p.comp_milli[3]) / 1000.0,
                static_cast<double>(p.comp_milli[5]) / 1000.0,
                static_cast<double>(p.comp_milli[6]) / 1000.0);
    out->push_back(std::move(p));
    return true;
}

/// Runs healthy -> degraded -> rebuild for one volume type, appending
/// one point per phase. raid0 has no redundancy: healthy only.
bool
run_volume(const std::string &name, std::vector<WafPoint> *out,
           bool write_csvs)
{
    constexpr uint32_t kBs = 16; // 64 KiB, fig8's default block
    constexpr uint32_t kVictim = 1;
    obs::IoLedger ledger;
    VolRun v = make_vol(name, kVictim);
    v.arr->attach_ledger(&ledger);

    run_seq_write(v.loop, v.target.get(), kBs, v.zone_align);
    run_rand_read_written(v.loop, v.target.get(), kBs);
    if (!snap_phase(name, "healthy", ledger, out))
        return false;

    if (v.arr->fault_tolerance() > 0) {
        v.arr->mark_device_failed(kVictim);
        reset_all_zones(v.loop, v.target.get(), v.zone_align);
        run_seq_write(v.loop, v.target.get(), kBs, v.zone_align);
        run_rand_read_written(v.loop, v.target.get(), kBs);
        if (!snap_phase(name, "degraded", ledger, out))
            return false;

        v.replace_victim();
        Status st;
        bool done = false;
        v.arr->rebuild_device(kVictim, nullptr, [&](Status s) {
            st = s;
            done = true;
        });
        v.loop->run_until_pred([&] { return done; });
        if (!st.is_ok()) {
            std::fprintf(stderr, "FAIL: %s rebuild: %s\n", name.c_str(),
                         st.to_string().c_str());
            return false;
        }
        if (!snap_phase(name, "rebuild", ledger, out))
            return false;
    }

    if (write_csvs) {
        std::string b = "waf_breakdown_" + name + ".csv";
        std::string h = "waf_heatmap_" + name + ".csv";
        Status sb = ledger.write_breakdown_csv(b);
        Status sh = ledger.write_heatmap_csv(h);
        if (!sb.is_ok() || !sh.is_ok()) {
            std::fprintf(stderr, "FAIL: csv export: %s / %s\n",
                         sb.to_string().c_str(),
                         sh.to_string().c_str());
            return false;
        }
    }
    return true;
}

const WafPoint *
find_point(const std::vector<WafPoint> &pts, const std::string &vol,
           const std::string &phase)
{
    for (const WafPoint &p : pts) {
        if (p.volume == vol && p.phase == phase)
            return &p;
    }
    return nullptr;
}

/// Paper sanity: RAIZN's breakdown must show the partial-parity-log
/// premium (plus parity) that mdraid does not pay, and mdraid must
/// still show its parity and resync components.
bool
check_story(const std::vector<WafPoint> &pts)
{
    const WafPoint *rz = find_point(pts, "raizn", "healthy");
    const WafPoint *md = find_point(pts, "mdraid", "healthy");
    if (rz == nullptr || md == nullptr) {
        std::fprintf(stderr, "FAIL: missing raizn/mdraid points\n");
        return false;
    }
    // comp_milli columns: 1 = parity, 2 = pp_log.
    if (rz->comp_milli[2] <= 0 || rz->comp_milli[1] <= 0) {
        std::fprintf(stderr, "FAIL: raizn pp_log/parity components "
                             "empty — provenance tags missing\n");
        return false;
    }
    if (md->comp_milli[2] != 0) {
        std::fprintf(stderr, "FAIL: mdraid shows pp_log bytes — "
                             "taxonomy crossed volumes\n");
        return false;
    }
    if (md->comp_milli[1] <= 0) {
        std::fprintf(stderr, "FAIL: mdraid parity component empty\n");
        return false;
    }
    return true;
}

int
write_json(const std::vector<WafPoint> &pts, const HostMeter &meter)
{
    FILE *f = std::fopen("BENCH_waf.json", "w");
    if (!f) {
        std::fprintf(stderr, "cannot write BENCH_waf.json\n");
        return 1;
    }
    BenchScale scale;
    std::fprintf(f,
                 "{\n  \"config\": {\"num_devices\": %u, "
                 "\"zones_per_device\": %u, \"zone_cap_sectors\": %llu, "
                 "\"su_sectors\": %u, \"block_sectors\": 16},\n"
                 "  %s,\n"
                 "  \"points\": [\n",
                 scale.num_devices, scale.zones_per_device,
                 (unsigned long long)scale.zone_cap_sectors,
                 scale.su_sectors, meter.json("").c_str());
    for (size_t i = 0; i < pts.size(); ++i) {
        const WafPoint &p = pts[i];
        std::fprintf(f,
                     "    {\"volume\": \"%s\", \"phase\": \"%s\", "
                     "\"waf_milli\": %lld, \"raf_milli\": %lld",
                     p.volume.c_str(), p.phase.c_str(), p.waf_milli,
                     p.raf_milli);
        for (size_t c = 0; c < kNumCols; ++c)
            std::fprintf(f, ", \"%s_milli\": %lld",
                         obs::cause_name(kCauseCols[c]),
                         p.comp_milli[c]);
        std::fprintf(f, ", \"untagged_ops\": %llu}%s\n", p.untagged_ops,
                     i + 1 < pts.size() ? "," : "");
    }
    // The simulation is deterministic, so every amplification figure
    // is exact: abs=0 bands make any drift a hard gate failure that
    // forces a conscious baseline regeneration. Host-clock fields
    // stay warn-only as everywhere else.
    std::fprintf(f, "  ],\n  \"tolerance\": {\n"
                    "    \"waf_milli\": {\"abs\": 0},\n"
                    "    \"raf_milli\": {\"abs\": 0},\n");
    for (size_t c = 0; c < kNumCols; ++c)
        std::fprintf(f, "    \"%s_milli\": {\"abs\": 0},\n",
                     obs::cause_name(kCauseCols[c]));
    std::fprintf(
        f,
        "    \"untagged_ops\": {\"abs\": 0},\n"
        "    \"wall_ms\": {\"rel\": 10.0, \"abs\": 5000, "
        "\"warn\": true},\n"
        "    \"events_per_sec\": {\"rel\": 10.0, \"abs\": 1000, "
        "\"warn\": true},\n"
        "    \"events\": {\"rel\": 0.25, \"abs\": 1000, "
        "\"warn\": true},\n"
        "    \"alloc_count\": {\"rel\": 0.25, \"abs\": 1000, "
        "\"warn\": true},\n"
        "    \"alloc_bytes\": {\"rel\": 0.25, \"abs\": 65536, "
        "\"warn\": true},\n"
        "    \"copy_count\": {\"rel\": 0.25, \"abs\": 1000, "
        "\"warn\": true},\n"
        "    \"copy_bytes\": {\"rel\": 0.25, \"abs\": 65536, "
        "\"warn\": true}\n"
        "  }\n}\n");
    std::fclose(f);
    std::printf("\nwrote BENCH_waf.json (%zu points)\n", pts.size());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ObsOptions oo;
    if (!parse_obs_args(argc, argv, &oo))
        return 2;

    std::vector<WafPoint> pts;
    if (oo.smoke) {
        print_header("WAF smoke: RAIZN + mdraid healthy phase");
        // Smoke keeps the qualitative cross-volume check (RAIZN pays
        // pp_log, mdraid does not) without the full phase matrix.
        obs::IoLedger rl;
        {
            BenchScale scale;
            auto arr = make_raizn_array(scale);
            arr.vol->attach_ledger(&rl);
            RaiznTarget target(arr.vol.get());
            run_seq_write(arr.loop.get(), &target, 16,
                          arr.vol->zone_capacity());
            run_rand_read_written(arr.loop.get(), &target, 16);
            if (!snap_phase("raizn", "healthy", rl, &pts))
                return 1;
        }
        obs::IoLedger ml;
        {
            BenchScale scale;
            auto arr = make_mdraid_array(scale);
            arr.vol->attach_ledger(&ml);
            MdTarget target(arr.vol.get());
            run_seq_write(arr.loop.get(), &target, 16, 0);
            run_rand_read_written(arr.loop.get(), &target, 16);
            if (!snap_phase("mdraid", "healthy", ml, &pts))
                return 1;
        }
        if (!check_story(pts))
            return 1;
        std::printf("waf smoke: conservation + provenance story ok\n");
        return 0;
    }

    print_header("Where do the bytes go? WAF/RAF per volume and phase");
    HostMeter meter;
    for (const char *name : {"raizn", "mdraid", "raid0", "raid1",
                             "raid5", "raid6", "raid10", "auto"}) {
        if (!run_volume(name, &pts, /*write_csvs=*/true))
            return 1;
    }
    if (!check_story(pts))
        return 1;
    std::printf("\nconservation audit ok for all %zu points; breakdown "
                "+ heatmap CSVs: waf_breakdown_<vol>.csv / "
                "waf_heatmap_<vol>.csv\n",
                pts.size());
    return write_json(pts, meter);
}
