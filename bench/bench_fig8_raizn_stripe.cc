/**
 * @file
 * Fig. 8: RAIZN throughput (sequential read, sequential write, random
 * read) vs block size, one series per stripe-unit size 8..128 KiB.
 * Paper observation 1: 64 KiB stripe units perform best overall for
 * RAIZN (only 4 KiB sequential reads prefer smaller units).
 */
#include <cstdio>

#include "bench_util.h"

using namespace raizn;
using namespace raizn::bench;

int
main()
{
    print_header("Fig 8: RAIZN throughput vs block size per SU size");
    for (const char *wl : {"seqread", "write", "randread"}) {
        std::printf("\n-- RAIZN %s (MiB/s) --\n%-6s", wl, "bs");
        for (uint32_t su : kSuSweep)
            std::printf(" %9s", (block_label(su) + "-su").c_str());
        std::printf("\n");
        for (uint32_t bs : kBlockSweep) {
            std::printf("%-6s", block_label(bs).c_str());
            for (uint32_t su : kSuSweep) {
                BenchScale scale;
                scale.su_sectors = su;
                auto arr = make_raizn_array(scale);
                RaiznTarget target(arr.vol.get());
                uint64_t zone_cap = arr.vol->zone_capacity();
                double mibs = 0;
                if (std::string(wl) == "write") {
                    mibs = run_seq(arr.loop.get(), &target,
                                   RwMode::kSeqWrite, bs, zone_cap)
                               .mibs;
                } else {
                    prime_target(arr.loop.get(), &target,
                                 target.capacity());
                    if (std::string(wl) == "seqread") {
                        mibs = run_seq(arr.loop.get(), &target,
                                       RwMode::kSeqRead, bs, zone_cap)
                                   .mibs;
                    } else {
                        mibs = run_rand_read(arr.loop.get(), &target, bs)
                                   .mibs;
                    }
                }
                std::printf(" %9.0f", mibs);
            }
            std::printf("\n");
        }
    }
    std::printf("\nPaper shape: 64 KiB stripe units best everywhere "
                "except 4 KiB sequential reads.\n");
    return 0;
}
