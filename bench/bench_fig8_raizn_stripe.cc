/**
 * @file
 * Fig. 8: RAIZN throughput (sequential read, sequential write, random
 * read) vs block size, one series per stripe-unit size 8..128 KiB.
 * Paper observation 1: 64 KiB stripe units perform best overall for
 * RAIZN (only 4 KiB sequential reads prefer smaller units).
 *
 * Also the reference producer for the observability layer: an
 * instrumented pass at the paper's default stripe-unit size records
 * every write stage (data, parity, partial-parity log, FUA flushes,
 * device commands), prints the per-stage latency breakdown, and — via
 * --metrics-out / --trace-out / --timeseries-out — exports the
 * metrics registry, a Chrome trace, and the per-interval telemetry
 * CSV. --smoke skips the full sweep (ctest obs_smoke budget).
 */
#include <cstdio>

#include "bench_util.h"
#include "obs/ledger.h"

using namespace raizn;
using namespace raizn::bench;

namespace {

void
full_sweep()
{
    print_header("Fig 8: RAIZN throughput vs block size per SU size");
    for (const char *wl : {"seqread", "write", "randread"}) {
        std::printf("\n-- RAIZN %s (MiB/s) --\n%-6s", wl, "bs");
        for (uint32_t su : kSuSweep)
            std::printf(" %9s", (block_label(su) + "-su").c_str());
        std::printf("\n");
        for (uint32_t bs : kBlockSweep) {
            std::printf("%-6s", block_label(bs).c_str());
            for (uint32_t su : kSuSweep) {
                BenchScale scale;
                scale.su_sectors = su;
                auto arr = make_raizn_array(scale);
                RaiznTarget target(arr.vol.get());
                uint64_t zone_cap = arr.vol->zone_capacity();
                double mibs = 0;
                if (std::string(wl) == "write") {
                    mibs = run_seq(arr.loop.get(), &target,
                                   RwMode::kSeqWrite, bs, zone_cap)
                               .mibs;
                } else {
                    prime_target(arr.loop.get(), &target,
                                 target.capacity());
                    if (std::string(wl) == "seqread") {
                        mibs = run_seq(arr.loop.get(), &target,
                                       RwMode::kSeqRead, bs, zone_cap)
                                   .mibs;
                    } else {
                        mibs = run_rand_read(arr.loop.get(), &target, bs)
                                   .mibs;
                    }
                }
                std::printf(" %9.0f", mibs);
            }
            std::printf("\n");
        }
    }
    std::printf("\nPaper shape: 64 KiB stripe units best everywhere "
                "except 4 KiB sequential reads.\n");
}

int
instrumented_pass(const ObsOptions &oo)
{
    print_header("Instrumented pass: 64 KiB SU, sequential write + "
                 "random read");
    // The instrumented pass always runs with the host profiler on: it
    // is both the CI coverage self-check and the artifact producer for
    // --prof-out / --flame-out.
    prof::enable();
    WorkloadPoint wr, rd;
    BenchObs obs;
    obs.opts = oo;
    uint32_t num_devices = 0;
    // Outlive the metrics export below: the registry holds pointers
    // linked into the volume's stats structs and the ledger's cause
    // aggregates.
    RaiznArray arr;
    obs::IoLedger ledger;
    {
        PROF_SCOPE("bench.fig8.instrumented");
        BenchScale scale;
        scale.su_sectors = 16; // 64 KiB, the paper's default
        arr = make_raizn_array(scale);
        arr.vol->attach_observability(&obs.registry, &obs.trace);
        arr.vol->attach_ledger(&ledger);
        ledger.link_metrics(&obs.registry);
        auto tl = make_timeline(oo, arr.loop.get(), &obs.registry);
        arr.vol->install_timeline(tl.get());
        ledger.install_probe(tl.get());
        tl->start();
        RaiznTarget target(arr.vol.get());
        uint64_t zone_cap = arr.vol->zone_capacity();
        num_devices = arr.vol->num_devices();

        wr = run_seq(arr.loop.get(), &target, RwMode::kSeqWrite, 16,
                     zone_cap);
        rd = run_rand_read(arr.loop.get(), &target, 16);
        finish_timeline(oo, tl.get());
    }
    double prof_cov = prof::coverage();
    finish_prof(oo);
    std::printf("seq write 64K: %.0f MiB/s p50=%.1fus p99.9=%.1fus\n",
                wr.mibs, wr.p50_us, wr.p999_us);
    std::printf("rand read 64K: %.0f MiB/s p50=%.1fus p99.9=%.1fus\n",
                rd.mibs, rd.p50_us, rd.p999_us);

    size_t n = 0;
    double mean = 0;
    double worst = obs.write_coverage("raizn.write", &n, &mean);
    std::printf("\ntrace coverage of write wall time: min=%.1f%% "
                "mean=%.1f%% over %zu sampled writes\n", worst * 100,
                mean * 100, n);
    std::printf("\n-- where do the bytes go? --\n%s",
                ledger.breakdown_table().c_str());
    ledger.refresh_gauges();
    obs.finish(num_devices);

    // Conservation audit: every device byte must be attributed to
    // exactly one cause; an untagged or double-counted sub-IO fails
    // the smoke test here.
    obs::LedgerAudit audit = ledger.audit();
    if (!audit.ok()) {
        std::fprintf(stderr, "FAIL: ledger conservation audit:\n%s",
                     audit.summary().c_str());
        return 1;
    }
    std::printf("ledger conservation audit: ok (waf=%.3f raf=%.3f)\n",
                ledger.waf(), ledger.raf());

    // Self-check for CI: every sampled write must be ≥95% accounted
    // for by its stage spans, else the trace is lying about where
    // time goes.
    if (n == 0 || worst < 0.95) {
        std::fprintf(stderr, "FAIL: write span coverage %.1f%% below "
                             "95%% (n=%zu)\n", worst * 100, n);
        return 1;
    }
    // Same bar for the host profiler: ≥95% of the measured wall time
    // must land in named scopes, else a hot path is uninstrumented.
    if (prof_cov < 0.95) {
        std::fprintf(stderr, "FAIL: host profile scope coverage %.1f%% "
                             "below 95%%\n", prof_cov * 100);
        return 1;
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    ObsOptions oo;
    if (!parse_obs_args(argc, argv, &oo))
        return 2;
    if (!oo.smoke)
        full_sweep();
    return instrumented_pass(oo);
}
