/**
 * @file
 * Unit tests for time-series telemetry (src/obs/timeline) and SLO /
 * anomaly detection (src/obs/anomaly): sampler cadence on the virtual
 * clock, counter rate derivation, windowed latency percentiles, ring
 * wraparound, gauge probes, and detector true/false-positive behavior
 * on synthetic and simulated series.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "obs/anomaly.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "sim/event_loop.h"

namespace raizn::obs {
namespace {

/// Schedules `n` ticks `spacing` apart, each running `fn(i)`.
template <typename Fn>
void
drive(EventLoop &loop, uint64_t n, Tick spacing, Fn fn)
{
    for (uint64_t i = 0; i < n; ++i)
        loop.schedule_after((i + 1) * spacing, [fn, i] { fn(i); });
    loop.run();
}

TEST(Timeline, SamplerCadenceFollowsVirtualClock)
{
    EventLoop loop;
    MetricsRegistry reg;
    TimelineConfig cfg;
    cfg.interval = 1000;
    Timeline tl(&loop, &reg, cfg);
    tl.start();

    // 10 events 500 ns apart → virtual time reaches 5000 ns: rows at
    // the 1000/2000/3000/4000/5000 boundaries.
    drive(loop, 10, 500, [](uint64_t) {});
    tl.sample_now(); // no-op: the last event landed on a boundary

    ASSERT_EQ(tl.size(), 5u);
    Tick expect = 1000;
    for (const TimelineRow &row : tl.rows()) {
        EXPECT_EQ(row.t, expect);
        expect += 1000;
    }
}

TEST(Timeline, SparseEventsStillStampBoundaries)
{
    EventLoop loop;
    MetricsRegistry reg;
    TimelineConfig cfg;
    cfg.interval = 1000;
    Timeline tl(&loop, &reg, cfg);
    tl.start();

    // One event at t=3500: several intervals elapsed unobserved. The
    // row is stamped at the last crossed boundary (3000), not 3500.
    loop.schedule_after(3500, [] {});
    loop.run();
    ASSERT_EQ(tl.size(), 1u);
    EXPECT_EQ(tl.rows().front().t, 3000u);
}

TEST(Timeline, CounterRateDerivation)
{
    EventLoop loop;
    MetricsRegistry reg;
    Counter *c = reg.counter("test.ops");
    TimelineConfig cfg;
    cfg.interval = 1000 * kNsPerMs; // 0.1 s
    Timeline tl(&loop, &reg, cfg);
    tl.start();

    // 400 increments spread over 4 one-second intervals → 100 per
    // interval = 100 ops/s.
    drive(loop, 400, cfg.interval / 100, [c](uint64_t) { c->inc(); });
    tl.sample_now();

    int vi = tl.column_index("test.ops");
    int ri = tl.column_index("test.ops.rate");
    ASSERT_GE(vi, 0);
    ASSERT_GE(ri, 0);
    ASSERT_EQ(tl.size(), 4u);
    double cum = 0;
    for (const TimelineRow &row : tl.rows()) {
        cum += 100;
        EXPECT_DOUBLE_EQ(row.values[vi], cum);
        EXPECT_NEAR(row.values[ri], 100.0, 1e-6) << "ops per second";
    }
}

TEST(Timeline, GaugeProbeRefreshesBeforeEachRow)
{
    EventLoop loop;
    MetricsRegistry reg;
    Gauge *g = reg.gauge("test.depth");
    TimelineConfig cfg;
    cfg.interval = 1000;
    Timeline tl(&loop, &reg, cfg);
    uint64_t probe_runs = 0;
    tl.add_probe([&] { g->set(++probe_runs * 7); });
    tl.start();

    drive(loop, 3, 1000, [](uint64_t) {});
    ASSERT_EQ(tl.size(), 3u);
    EXPECT_EQ(probe_runs, 3u);
    std::vector<double> s = tl.series("test.depth");
    ASSERT_EQ(s.size(), 3u);
    EXPECT_DOUBLE_EQ(s[0], 7.0);
    EXPECT_DOUBLE_EQ(s[2], 21.0);
}

TEST(Timeline, WindowedLatencyPercentiles)
{
    EventLoop loop;
    MetricsRegistry reg;
    LatencyMetric *lat = reg.latency("test.lat_ns");
    TimelineConfig cfg;
    cfg.interval = 1000;
    Timeline tl(&loop, &reg, cfg);
    tl.start();

    // Interval 1: 10 fast samples. Interval 2: 10 slow samples. The
    // windowed p50 must track the interval, not the cumulative mix.
    drive(loop, 20, 100, [lat](uint64_t i) {
        lat->record(i < 10 ? 1000 : 1000000);
    });
    tl.sample_now();

    int n = tl.column_index("test.lat_ns.win_n");
    int p50 = tl.column_index("test.lat_ns.win_p50_ns");
    ASSERT_GE(n, 0);
    ASSERT_GE(p50, 0);
    ASSERT_EQ(tl.size(), 2u);
    const TimelineRow &r0 = tl.rows()[0];
    const TimelineRow &r1 = tl.rows()[1];
    EXPECT_DOUBLE_EQ(r0.values[n], 10.0);
    EXPECT_DOUBLE_EQ(r1.values[n], 10.0);
    EXPECT_LT(r0.values[p50], 10000.0);
    EXPECT_GT(r1.values[p50], 100000.0)
        << "second window must not be diluted by the first";
}

TEST(Timeline, RingWraparoundKeepsNewestRows)
{
    EventLoop loop;
    MetricsRegistry reg;
    TimelineConfig cfg;
    cfg.interval = 1000;
    cfg.capacity = 4;
    Timeline tl(&loop, &reg, cfg);
    tl.start();

    drive(loop, 10, 1000, [](uint64_t) {});
    EXPECT_EQ(tl.size(), 4u);
    EXPECT_EQ(tl.dropped(), 6u);
    // Oldest surviving row is boundary 7; newest is 10.
    EXPECT_EQ(tl.rows().front().t, 7000u);
    EXPECT_EQ(tl.rows().back().t, 10000u);
}

TEST(Timeline, CsvAndJsonShape)
{
    EventLoop loop;
    MetricsRegistry reg;
    Counter *c = reg.counter("test.ops");
    TimelineConfig cfg;
    cfg.interval = 1000;
    Timeline tl(&loop, &reg, cfg);
    tl.start();
    drive(loop, 2, 1000, [c](uint64_t) { c->inc(); });

    std::string csv = tl.to_csv();
    EXPECT_EQ(csv.compare(0, 12, "t_s,host_ns,"), 0) << csv;
    EXPECT_NE(csv.find("test.ops.rate"), std::string::npos);
    // Header plus one line per row.
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);

    std::string json = tl.to_json();
    EXPECT_NE(json.find("\"interval_ns\": 1000"), std::string::npos);
    EXPECT_NE(json.find("\"columns\": [\"t_ns\", \"host_ns\""),
              std::string::npos);
    EXPECT_NE(json.find("\"rows\""), std::string::npos);

    // host_ns is monotonic non-decreasing across rows.
    uint64_t prev = 0;
    for (const TimelineRow &r : tl.rows()) {
        EXPECT_GE(r.host_ns, prev);
        prev = r.host_ns;
    }
}

TEST(Timeline, StopDisarmsSampler)
{
    EventLoop loop;
    MetricsRegistry reg;
    TimelineConfig cfg;
    cfg.interval = 1000;
    Timeline tl(&loop, &reg, cfg);
    tl.start();
    drive(loop, 2, 1000, [](uint64_t) {});
    EXPECT_EQ(tl.size(), 2u);
    tl.stop();
    drive(loop, 2, 1000, [](uint64_t) {});
    EXPECT_EQ(tl.size(), 2u) << "rows recorded after stop()";
}

// ---------------------------------------------------------------------
// Anomaly detection on synthetic rows (direct observe() calls).

std::vector<std::string>
one_col(const std::string &name)
{
    return {name};
}

TEST(Anomaly, CollapseTruePositive)
{
    AnomalyConfig cfg;
    CollapseRule rule;
    rule.series = "tput";
    cfg.collapse.push_back(rule);
    AnomalyDetector det(cfg);
    auto cols = one_col("tput");

    // Steady 1000/s for 10 rows, then a collapse to 100/s.
    Tick t = 0;
    for (int i = 0; i < 10; ++i)
        det.observe(cols, t += 1000, {1000.0});
    EXPECT_EQ(det.count(AnomalyEvent::Type::kThroughputCollapse), 0u);
    det.observe(cols, t += 1000, {100.0});
    ASSERT_EQ(det.count(AnomalyEvent::Type::kThroughputCollapse), 1u);
    const AnomalyEvent *ev =
        det.first(AnomalyEvent::Type::kThroughputCollapse);
    ASSERT_NE(ev, nullptr);
    EXPECT_EQ(ev->series, "tput");
    EXPECT_EQ(ev->t, t);
    EXPECT_DOUBLE_EQ(ev->value, 100.0);
    EXPECT_NEAR(ev->reference, 1000.0, 1.0);

    // Sustained collapse: no repeat events (EWMA frozen while tripped).
    for (int i = 0; i < 10; ++i)
        det.observe(cols, t += 1000, {100.0});
    EXPECT_EQ(det.count(AnomalyEvent::Type::kThroughputCollapse), 1u);

    // Recovery re-arms and is itself reported.
    det.observe(cols, t += 1000, {950.0});
    EXPECT_EQ(det.count(AnomalyEvent::Type::kThroughputRecovered), 1u);
}

TEST(Anomaly, CollapseFalsePositiveSteadyAndNoisyLoad)
{
    AnomalyConfig cfg;
    CollapseRule rule;
    rule.series = "tput";
    cfg.collapse.push_back(rule);
    AnomalyDetector det(cfg);
    auto cols = one_col("tput");

    // Steady load with ±20% deterministic jitter never dips below
    // half the EWMA: zero events.
    Tick t = 0;
    for (int i = 0; i < 100; ++i) {
        double v = 1000.0 + ((i * 37) % 400) - 200.0;
        det.observe(cols, t += 1000, {v});
    }
    EXPECT_TRUE(det.events().empty()) << det.dump();
}

TEST(Anomaly, CollapseWarmupAndMinReferenceSuppressEarlyTrips)
{
    AnomalyConfig cfg;
    CollapseRule rule;
    rule.series = "tput";
    rule.warmup_samples = 5;
    rule.min_reference = 500.0;
    cfg.collapse.push_back(rule);
    AnomalyDetector det(cfg);
    auto cols = one_col("tput");

    // A drop inside the warmup window is absorbed, not reported.
    Tick t = 0;
    det.observe(cols, t += 1000, {1000.0});
    det.observe(cols, t += 1000, {10.0});
    EXPECT_TRUE(det.events().empty());

    // A series whose level never reaches min_reference cannot trip
    // (idle volumes are not "collapsed").
    AnomalyDetector det2(cfg);
    for (int i = 0; i < 20; ++i)
        det2.observe(cols, t += 1000, {i % 2 ? 40.0 : 2.0});
    EXPECT_TRUE(det2.events().empty()) << det2.dump();
}

TEST(Anomaly, LatencyBurnRequiresConsecutiveBreaches)
{
    AnomalyConfig cfg;
    LatencyBurnRule rule;
    rule.series = "p99";
    rule.budget_ns = 1000.0;
    rule.consecutive = 3;
    cfg.latency_burn.push_back(rule);
    AnomalyDetector det(cfg);
    auto cols = one_col("p99");

    // Two breaches, a dip, two breaches: streak resets, no event.
    Tick t = 0;
    for (double v : {1500.0, 1500.0, 500.0, 1500.0, 1500.0})
        det.observe(cols, t += 1000, {v});
    EXPECT_EQ(det.count(AnomalyEvent::Type::kLatencyBurn), 0u);

    // Third consecutive breach trips exactly once per episode.
    det.observe(cols, t += 1000, {2000.0});
    EXPECT_EQ(det.count(AnomalyEvent::Type::kLatencyBurn), 1u);
    det.observe(cols, t += 1000, {2000.0});
    EXPECT_EQ(det.count(AnomalyEvent::Type::kLatencyBurn), 1u);

    // Back under budget re-arms for the next episode.
    det.observe(cols, t += 1000, {100.0});
    for (int i = 0; i < 3; ++i)
        det.observe(cols, t += 1000, {5000.0});
    EXPECT_EQ(det.count(AnomalyEvent::Type::kLatencyBurn), 2u);
}

TEST(Anomaly, StallNeedsInflightWork)
{
    AnomalyConfig cfg;
    StallRule rule;
    rule.progress_series = "rate";
    rule.inflight_series = "pending";
    rule.consecutive = 3;
    cfg.stall.push_back(rule);
    AnomalyDetector det(cfg);
    std::vector<std::string> cols = {"rate", "pending"};

    // Zero progress with zero in-flight is idle, not a stall.
    Tick t = 0;
    for (int i = 0; i < 10; ++i)
        det.observe(cols, t += 1000, {0.0, 0.0});
    EXPECT_EQ(det.count(AnomalyEvent::Type::kStall), 0u);

    // Zero progress with queued work trips after `consecutive` rows.
    det.observe(cols, t += 1000, {0.0, 4.0});
    det.observe(cols, t += 1000, {0.0, 4.0});
    EXPECT_EQ(det.count(AnomalyEvent::Type::kStall), 0u);
    det.observe(cols, t += 1000, {0.0, 4.0});
    ASSERT_EQ(det.count(AnomalyEvent::Type::kStall), 1u);
    EXPECT_DOUBLE_EQ(det.first(AnomalyEvent::Type::kStall)->value, 4.0);
}

TEST(Anomaly, MissingSeriesIsIgnoredNotFatal)
{
    AnomalyConfig cfg;
    CollapseRule rule;
    rule.series = "no.such.column";
    cfg.collapse.push_back(rule);
    AnomalyDetector det(cfg);
    auto cols = one_col("tput");
    Tick t = 0;
    for (int i = 0; i < 10; ++i)
        det.observe(cols, t += 1000, {1000.0});
    EXPECT_TRUE(det.events().empty());
}

TEST(Anomaly, JsonExportShape)
{
    AnomalyConfig cfg;
    CollapseRule rule;
    rule.series = "tput";
    cfg.collapse.push_back(rule);
    AnomalyDetector det(cfg);
    auto cols = one_col("tput");
    Tick t = 0;
    for (int i = 0; i < 10; ++i)
        det.observe(cols, t += 1000, {1000.0});
    det.observe(cols, t += 1000, {1.0});
    std::string json = det.to_json();
    EXPECT_NE(json.find("\"throughput_collapse\""), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"series\": \"tput\""), std::string::npos);
    EXPECT_NE(json.find("\"t_ns\":"), std::string::npos);
}

// ---------------------------------------------------------------------
// End-to-end: a timeline wired to a detector catches a simulated
// throughput collapse (true positive) and stays silent on steady load
// (false-positive check).

TEST(TimelineAnomaly, DetectsSimulatedCollapseEndToEnd)
{
    EventLoop loop;
    MetricsRegistry reg;
    Counter *work = reg.counter("sim.work");
    AnomalyConfig acfg;
    CollapseRule rule;
    rule.series = "sim.work.rate";
    acfg.collapse.push_back(rule);
    AnomalyDetector det(acfg);
    TimelineConfig cfg;
    cfg.interval = 1000;
    Timeline tl(&loop, &reg, cfg);
    tl.set_detector(&det);
    tl.start();

    // 20 intervals of 10 ops each, then 20 intervals of 1 op each.
    drive(loop, 40 * 10, 100, [work](uint64_t i) {
        if (i < 200 || i % 10 == 0)
            work->inc();
    });
    tl.sample_now();

    ASSERT_EQ(det.count(AnomalyEvent::Type::kThroughputCollapse), 1u)
        << det.dump();
    const AnomalyEvent *ev =
        det.first(AnomalyEvent::Type::kThroughputCollapse);
    EXPECT_GT(ev->t, 20000u) << "collapse detected before it happened";
}

TEST(TimelineAnomaly, SteadyLoadEmitsNoEvents)
{
    EventLoop loop;
    MetricsRegistry reg;
    Counter *work = reg.counter("sim.work");
    AnomalyConfig acfg;
    CollapseRule rule;
    rule.series = "sim.work.rate";
    acfg.collapse.push_back(rule);
    AnomalyDetector det(acfg);
    TimelineConfig cfg;
    cfg.interval = 1000;
    Timeline tl(&loop, &reg, cfg);
    tl.set_detector(&det);
    tl.start();

    drive(loop, 400, 100, [work](uint64_t) { work->inc(); });
    tl.sample_now();
    EXPECT_TRUE(det.events().empty()) << det.dump();
}

} // namespace
} // namespace raizn::obs
