/**
 * @file
 * Crash-consistency tests: power loss at adversarial points, stripe
 * holes (Fig. 1), partial zone resets (§5.2), FUA durability (§5.3),
 * partial parity recovery (§5.1), and randomized power-cut sweeps
 * verifying the ZNS readability invariant end to end.
 */
#include <gtest/gtest.h>

#include "raizn_test_util.h"

namespace raizn {
namespace {

class CrashTest : public ::testing::Test
{
  protected:
    void SetUp() override { arr_.make(); }
    TestArray arr_;
};

PowerLossSpec
drop_all()
{
    return {PowerLossSpec::Policy::kDropCache, 1};
}

TEST_F(CrashTest, UnflushedDataMayVanishButVolumeIsConsistent)
{
    arr_.write_pattern(0, 64, 1);
    ASSERT_TRUE(arr_.crash_and_remount(drop_all()).is_ok());
    // Nothing was flushed: the zone rolls back to empty.
    auto zi = arr_.vol->zone_info(0).value();
    EXPECT_EQ(zi.wp, 0u);
    // And it is immediately writable again.
    arr_.write_pattern(0, 16, 2);
    arr_.expect_pattern(0, 16, 2);
}

TEST_F(CrashTest, FlushedDataSurvives)
{
    arr_.write_pattern(0, 100, 1);
    ASSERT_TRUE(arr_.flush().status.is_ok());
    arr_.write_pattern(100, 50, 2); // unflushed tail
    ASSERT_TRUE(arr_.crash_and_remount(drop_all()).is_ok());
    EXPECT_GE(arr_.vol->zone_info(0).value().wp, 100u);
    arr_.expect_pattern(0, 100, 1);
}

TEST_F(CrashTest, FuaWriteSurvivesPowerLoss)
{
    arr_.write_pattern(0, 32, 1); // plain writes
    WriteFlags fua;
    fua.fua = true;
    arr_.write_pattern(32, 8, 2, fua);
    ASSERT_TRUE(arr_.crash_and_remount(drop_all()).is_ok());
    // The FUA write and *everything before it in the zone* must be
    // readable (§5.3: no stripe hole below a completed FUA write).
    EXPECT_GE(arr_.vol->zone_info(0).value().wp, 40u);
    arr_.expect_pattern(0, 32, 1);
    arr_.expect_pattern(32, 8, 2);
}

TEST_F(CrashTest, PreflushWritePersistsPriorData)
{
    arr_.write_pattern(0, 16, 1);
    arr_.write_pattern(512, 16, 7); // zone 1, unflushed
    WriteFlags pf;
    pf.preflush = true;
    arr_.write_pattern(16, 4, 2, pf);
    ASSERT_TRUE(arr_.crash_and_remount(drop_all()).is_ok());
    // The preflush persisted zone 1's data as well.
    arr_.expect_pattern(512, 16, 7);
    arr_.expect_pattern(0, 16, 1);
}

TEST_F(CrashTest, PartialStripeWriteRecoveredFromPartialParity)
{
    // Write a partial stripe with FUA so data + partial parity are
    // durable, then lose one device's data sectors (simulated by
    // power loss dropping only what was not FUA'd) — actually verify
    // the partial parity path by failing a device after remount.
    WriteFlags fua;
    fua.fua = true;
    arr_.write_pattern(0, 20, 1, fua); // 1.25 stripe units
    ASSERT_TRUE(arr_.crash_and_remount(drop_all()).is_ok());
    arr_.expect_pattern(0, 20, 1);
    // Degraded read of the partial stripe reconstructs from the
    // partial parity log.
    uint32_t d0 = arr_.vol->layout().data_dev(0, 0, 0);
    arr_.vol->mark_device_failed(d0);
    arr_.expect_pattern(0, 20, 1);
    EXPECT_GT(arr_.vol->stats().degraded_reads, 0u);
}

TEST_F(CrashTest, ZoneResetLogCompletesPartialReset)
{
    // Fill a zone, flush, then reset — but power off right after the
    // reset WAL is durable and only some devices completed the reset.
    arr_.write_pattern(0, 128, 1);
    ASSERT_TRUE(arr_.flush().status.is_ok());

    // Issue the reset but cut power before its completion callback.
    bool done = false;
    arr_.vol->reset_zone(0, [&](IoResult) { done = true; });
    // Run only a few events: WAL append + some device resets.
    arr_.loop->run_events(6);
    // Manually reset a subset of devices to force the partial state.
    // (The reset may or may not have reached the devices yet.)
    submit_sync(*arr_.loop, *arr_.devs[0], IoRequest::zone_reset(0));
    ASSERT_TRUE(arr_.crash_and_remount(drop_all()).is_ok());
    (void)done;
    // The zone must be fully reset on every device (reset log replay).
    auto zi = arr_.vol->zone_info(0).value();
    EXPECT_EQ(zi.wp, 0u) << "partial reset must complete on mount";
    for (uint32_t d = 0; d < 5; ++d) {
        auto pz = arr_.devs[d]->zone_info(0);
        EXPECT_EQ(pz.value().written(), 0u) << "device " << d;
    }
    // Zone usable again.
    arr_.write_pattern(0, 16, 9);
    arr_.expect_pattern(0, 16, 9);
}

TEST_F(CrashTest, ResetWithoutLogPersistedKeepsData)
{
    // If power is lost before the reset WAL persists, the zone must
    // retain its original data (the reset never "happened").
    arr_.write_pattern(0, 64, 5);
    ASSERT_TRUE(arr_.flush().status.is_ok());
    arr_.vol->reset_zone(0, [](IoResult) {});
    // Cut power immediately: no events processed after the call, so
    // neither the WAL nor any device reset got through.
    ASSERT_TRUE(arr_.crash_and_remount(drop_all()).is_ok());
    EXPECT_EQ(arr_.vol->zone_info(0).value().wp, 64u);
    arr_.expect_pattern(0, 64, 5);
}

TEST_F(CrashTest, StripeHoleRepairedInPlace)
{
    // Create a stripe hole: write a full stripe, flush only 4 of 5
    // devices, crash. The missing stripe unit is reconstructable from
    // parity and must be repaired in place at mount.
    arr_.write_pattern(0, 64, 3);
    // Flush devices selectively: drop device d0's cache only.
    uint32_t d0 = arr_.vol->layout().data_dev(0, 0, 0);
    for (uint32_t d = 0; d < 5; ++d) {
        if (d != d0) {
            ASSERT_TRUE(submit_sync(*arr_.loop, *arr_.devs[d],
                                    IoRequest::flush())
                            .status.is_ok());
        }
    }
    ASSERT_TRUE(arr_.crash_and_remount(drop_all()).is_ok());
    EXPECT_EQ(arr_.vol->zone_info(0).value().wp, 64u);
    arr_.expect_pattern(0, 64, 3);
    EXPECT_GT(arr_.vol->stats().holes_repaired_in_place, 0u);
}

TEST_F(CrashTest, UnrecoverableHoleRollsBackAndRemaps)
{
    // Lose two devices' worth of a stripe (data + its parity/partial
    // parity): the stripe cannot be rebuilt, the logical write pointer
    // must roll back, and later writes must be relocated around the
    // burned sectors.
    arr_.write_pattern(0, 64, 3); // full stripe 0
    ASSERT_TRUE(arr_.flush().status.is_ok()); // stripe 0 durable
    arr_.write_pattern(64, 64, 4); // full stripe 1
    // Persist stripe 1 on SOME devices only: drop the caches of its
    // parity device (losing parity AND the partial parity log) and one
    // of its data devices.
    const Layout &l = arr_.vol->layout();
    uint32_t pdev = l.parity_dev(0, 1);
    uint32_t ddev = l.data_dev(0, 1, 1);
    for (uint32_t d = 0; d < 5; ++d) {
        if (d != pdev && d != ddev) {
            ASSERT_TRUE(submit_sync(*arr_.loop, *arr_.devs[d],
                                    IoRequest::flush())
                            .status.is_ok());
        }
    }
    ASSERT_TRUE(arr_.crash_and_remount(drop_all()).is_ok());

    // Stripe 0 must survive intact; stripe 1 rolled back (partially).
    uint64_t wp = arr_.vol->zone_info(0).value().wp;
    EXPECT_GE(wp, 64u);
    EXPECT_LT(wp, 128u);
    arr_.expect_pattern(0, 64, 3);
    EXPECT_GT(arr_.vol->stats().holes_remapped, 0u);

    // The zone keeps working: writes from the rolled-back wp land in
    // relocated stripe units where the PBAs are burned.
    uint32_t todo = static_cast<uint32_t>(128 - wp);
    arr_.write_pattern(wp, todo, 9);
    arr_.expect_pattern(wp, todo, 9);
    EXPECT_GT(arr_.vol->stats().relocated_writes, 0u);

    // Relocated data survives another clean remount.
    ASSERT_TRUE(arr_.remount().is_ok());
    arr_.expect_pattern(wp, todo, 9);
    arr_.expect_pattern(0, 64, 3);
}

TEST_F(CrashTest, DivergentDeviceCachesRecoverConsistently)
{
    // Each device survives power loss differently — some keep their
    // volatile cache, some drop it, some keep a random prefix. The
    // volume must still recover to a consistent state where the
    // flushed prefix is intact and readable.
    arr_.write_pattern(0, 64, 1); // stripe 0
    ASSERT_TRUE(arr_.flush().status.is_ok());
    arr_.write_pattern(64, 40, 2); // partial stripe 1, unflushed

    std::vector<PowerLossSpec> specs = {
        {PowerLossSpec::Policy::kDropCache, 1},
        {PowerLossSpec::Policy::kKeepAll, 2},
        {PowerLossSpec::Policy::kRandom, 3},
        {PowerLossSpec::Policy::kKeepAll, 4},
        {PowerLossSpec::Policy::kDropCache, 5},
    };
    ASSERT_TRUE(arr_.crash_and_remount(specs).is_ok());
    auto zi = arr_.vol->zone_info(0).value();
    uint64_t fill = zi.wp - zi.start;
    EXPECT_GE(fill, 64u) << "flushed stripe must survive divergence";
    arr_.expect_pattern(0, 64, 1);
    // Whatever survived of the unflushed tail must read back exactly.
    if (fill > 64) {
        auto r = arr_.read(64, static_cast<uint32_t>(fill - 64));
        ASSERT_TRUE(r.status.is_ok());
        auto want = pattern_data(40, 2);
        want.resize(r.data.size());
        EXPECT_EQ(r.data, want);
    }
    // And the zone accepts new writes at the recovered wp.
    arr_.write_pattern(zi.start + fill, 8, 7);
    arr_.expect_pattern(zi.start + fill, 8, 7);
}

TEST_F(CrashTest, TornWriteLowerLbasReadable)
{
    // A torn multi-sector write: lower-order LBAs remain readable
    // while the tail is rolled back (§5.2).
    arr_.write_pattern(0, 16, 1);
    ASSERT_TRUE(arr_.flush().status.is_ok());
    arr_.write_pattern(16, 16, 2); // torn by the crash
    ASSERT_TRUE(
        arr_.crash_and_remount({PowerLossSpec::Policy::kRandom, 42})
            .is_ok());
    uint64_t wp = arr_.vol->zone_info(0).value().wp;
    EXPECT_GE(wp, 16u);
    arr_.expect_pattern(0, 16, 1);
    if (wp > 16) {
        // Whatever survived of the second write is its prefix.
        auto r = arr_.read(16, static_cast<uint32_t>(wp - 16));
        ASSERT_TRUE(r.status.is_ok());
        auto full = pattern_data(16, 2);
        full.resize(r.data.size());
        EXPECT_EQ(r.data, full);
    }
}

TEST_F(CrashTest, GenerationCountersInvalidateStaleMetadata)
{
    // Partial parity logged for generation 0 of zone 0 must not be
    // applied after the zone is reset (generation 1) and rewritten.
    arr_.write_pattern(0, 8, 1); // logs partial parity, gen 0
    ASSERT_TRUE(arr_.flush().status.is_ok());
    ASSERT_TRUE(arr_.reset_zone(0).status.is_ok());
    arr_.write_pattern(0, 8, 2); // gen 1 data
    ASSERT_TRUE(arr_.flush().status.is_ok());
    ASSERT_TRUE(arr_.crash_and_remount(drop_all()).is_ok());
    arr_.expect_pattern(0, 8, 2);
    // Degraded read reconstructs using only generation-1 parity.
    arr_.vol->mark_device_failed(arr_.vol->layout().data_dev(0, 0, 0));
    arr_.expect_pattern(0, 8, 2);
}

TEST_F(CrashTest, RepeatedCrashesStayConsistent)
{
    // Crash -> remount -> write -> crash ... several times; flushed
    // data must always survive at its recorded location, and the
    // volume must stay mountable.
    struct Piece {
        uint64_t lba;
        uint32_t n;
        uint64_t pattern;
    };
    std::vector<Piece> flushed;
    for (int round = 0; round < 5; ++round) {
        uint64_t wp = arr_.vol->zone_info(0).value().wp;
        uint32_t n = 12 + static_cast<uint32_t>(round) * 4;
        if (wp + n + 4 > arr_.vol->zone_capacity())
            break;
        uint64_t pattern = 1000 + static_cast<uint64_t>(round);
        arr_.write_pattern(wp, n, pattern);
        ASSERT_TRUE(arr_.flush().status.is_ok());
        flushed.push_back({wp, n, pattern});
        // Unflushed filler that may be torn by the crash.
        arr_.write_pattern(wp + n, 4, 999);
        ASSERT_TRUE(
            arr_.crash_and_remount(
                    {PowerLossSpec::Policy::kRandom,
                     static_cast<uint64_t>(round) + 10})
                .is_ok());
        EXPECT_GE(arr_.vol->zone_info(0).value().wp, wp + n);
        for (const Piece &p : flushed)
            arr_.expect_pattern(p.lba, p.n, p.pattern);
    }
    EXPECT_GE(flushed.size(), 3u);
}

TEST_F(CrashTest, RandomizedPowerCutSweep)
{
    // Property test: for many seeds, write a random workload with
    // occasional flushes, cut power randomly, remount, and check the
    // ZNS invariant: every sector below each zone's write pointer is
    // readable and matches the last acknowledged write, and all
    // flushed data survives.
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        TestArray arr;
        arr.make();
        Rng rng(seed);
        // Track what we wrote: per zone, list of (offset, len, seed).
        struct Piece {
            uint64_t lba;
            uint32_t n;
            uint64_t pattern;
        };
        std::vector<Piece> pieces;
        uint64_t flushed_upto = 0; // wp of zone 0 at last flush
        uint64_t wp = 0;
        uint64_t cap = arr.vol->zone_capacity();
        int ops = 3 + static_cast<int>(rng.next_below(12));
        for (int i = 0; i < ops && wp < cap; ++i) {
            uint32_t n = static_cast<uint32_t>(rng.next_range(1, 40));
            n = static_cast<uint32_t>(
                std::min<uint64_t>(n, cap - wp));
            uint64_t pat = seed * 1000 + static_cast<uint64_t>(i);
            arr.write_pattern(wp, n, pat);
            pieces.push_back({wp, n, pat});
            wp += n;
            if (rng.next_bool(0.3)) {
                ASSERT_TRUE(arr.flush().status.is_ok());
                flushed_upto = wp;
            }
        }
        ASSERT_TRUE(arr.crash_and_remount(
                           {PowerLossSpec::Policy::kRandom, seed * 7})
                        .is_ok())
            << "seed " << seed;
        uint64_t new_wp = arr.vol->zone_info(0).value().wp;
        EXPECT_GE(new_wp, flushed_upto) << "flushed data lost, seed "
                                        << seed;
        // Every sector below the new wp matches what was written.
        for (const Piece &p : pieces) {
            if (p.lba >= new_wp)
                break;
            uint32_t n = static_cast<uint32_t>(
                std::min<uint64_t>(p.n, new_wp - p.lba));
            auto r = arr.read(p.lba, n);
            ASSERT_TRUE(r.status.is_ok())
                << "seed " << seed << " lba " << p.lba;
            auto expect = pattern_data(p.n, p.pattern);
            expect.resize(static_cast<size_t>(n) * kSectorSize);
            EXPECT_EQ(r.data, expect)
                << "seed " << seed << " lba " << p.lba;
        }
        // The volume accepts new writes at the recovered wp.
        if (new_wp < cap) {
            uint32_t n = static_cast<uint32_t>(
                std::min<uint64_t>(8, cap - new_wp));
            arr.write_pattern(new_wp, n, 424242);
            arr.expect_pattern(new_wp, n, 424242);
        }
    }
}

} // namespace
} // namespace raizn
