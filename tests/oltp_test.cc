/**
 * @file
 * Tests for the OLTP layer: table population, transaction mixes, and
 * result accounting.
 */
#include <gtest/gtest.h>

#include "env/zoned_env.h"
#include "oltp/sysbench.h"
#include "wkld/setup.h"

namespace raizn {
namespace {

class OltpTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        BenchScale scale;
        scale.zones_per_device = 12;
        scale.zone_cap_sectors = 1024;
        scale.data_mode = DataMode::kStore;
        arr_ = make_raizn_array(scale);
        env_ = std::make_unique<ZonedEnv>(arr_.loop.get(),
                                          arr_.vol.get());
        DbOptions opt;
        opt.memtable_bytes = 512 * kKiB;
        auto db = Db::open(env_.get(), opt);
        ASSERT_TRUE(db.is_ok());
        db_ = std::move(db).value();

        OltpDatabase::Config cfg;
        cfg.tables = 2;
        cfg.rows_per_table = 500;
        oltp_ = std::make_unique<OltpDatabase>(db_.get(), cfg);
        ASSERT_TRUE(oltp_->prepare().is_ok());
    }

    RaiznArray arr_;
    std::unique_ptr<ZonedEnv> env_;
    std::unique_ptr<Db> db_;
    std::unique_ptr<OltpDatabase> oltp_;
};

TEST_F(OltpTest, PreparePopulatesAllRows)
{
    auto v = db_->get(OltpDatabase::row_key(0, 0));
    ASSERT_TRUE(v.is_ok());
    EXPECT_EQ(v.value().size(), 180u);
    v = db_->get(OltpDatabase::row_key(1, 499));
    ASSERT_TRUE(v.is_ok());
    EXPECT_EQ(db_->get(OltpDatabase::row_key(1, 500)).status().code(),
              StatusCode::kNotFound);
}

TEST_F(OltpTest, ReadOnlyTransactions)
{
    auto res = run_sysbench(arr_.loop.get(), oltp_.get(),
                            OltpWorkload::kReadOnly, 20);
    EXPECT_EQ(res.transactions, 20u);
    EXPECT_EQ(res.errors, 0u);
    EXPECT_GT(res.tps(), 0.0);
    EXPECT_GT(res.latency.p95(), 0u);
}

TEST_F(OltpTest, WriteOnlyTransactions)
{
    auto res = run_sysbench(arr_.loop.get(), oltp_.get(),
                            OltpWorkload::kWriteOnly, 50);
    EXPECT_EQ(res.transactions, 50u);
    EXPECT_EQ(res.errors, 0u);
    // Updates are visible.
    EXPECT_GT(db_->stats().puts, 2u * 500u); // prepare + updates
}

TEST_F(OltpTest, ReadWriteMix)
{
    auto res = run_sysbench(arr_.loop.get(), oltp_.get(),
                            OltpWorkload::kReadWrite, 10);
    EXPECT_EQ(res.transactions, 10u);
    EXPECT_EQ(res.errors, 0u);
}

TEST_F(OltpTest, DeterministicAcrossSeeds)
{
    auto a = run_sysbench(arr_.loop.get(), oltp_.get(),
                          OltpWorkload::kReadOnly, 5, 99);
    auto b = run_sysbench(arr_.loop.get(), oltp_.get(),
                          OltpWorkload::kReadOnly, 5, 99);
    EXPECT_EQ(a.transactions, b.transactions);
}

} // namespace
} // namespace raizn
