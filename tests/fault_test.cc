/**
 * @file
 * Device-failure tests: degraded reads/writes (§4.2), degraded mount,
 * and zone-by-zone rebuild of a replaced device including the
 * rebuild-only-valid-data property behind Fig. 12.
 */
#include <gtest/gtest.h>

#include "raizn_test_util.h"

namespace raizn {
namespace {

class FaultTest : public ::testing::Test
{
  protected:
    void SetUp() override { arr_.make(); }
    TestArray arr_;
};

TEST_F(FaultTest, DegradedReadReconstructsFromParity)
{
    arr_.write_pattern(0, 128, 1); // two full stripes
    uint32_t victim = arr_.vol->layout().data_dev(0, 0, 0);
    arr_.vol->mark_device_failed(victim);
    EXPECT_EQ(arr_.vol->failed_device(), static_cast<int>(victim));
    EXPECT_TRUE(arr_.vol->degraded());
    arr_.expect_pattern(0, 128, 1);
    EXPECT_GT(arr_.vol->stats().degraded_reads, 0u);
    EXPECT_GT(arr_.vol->stats().reconstructed_sectors, 0u);
}

TEST_F(FaultTest, DegradedReadOfParityDeviceIsFree)
{
    arr_.write_pattern(0, 64, 2);
    // Failing the parity device of stripe 0 does not affect data reads
    // of stripe 0 at all.
    uint32_t pdev = arr_.vol->layout().parity_dev(0, 0);
    arr_.vol->mark_device_failed(pdev);
    arr_.expect_pattern(0, 64, 2);
}

TEST_F(FaultTest, DegradedWritesOmitFailedDevice)
{
    uint32_t victim = arr_.vol->layout().data_dev(0, 0, 0);
    arr_.vol->mark_device_failed(victim);
    arr_.write_pattern(0, 64, 3);
    // Reads reconstruct the omitted stripe unit from parity.
    arr_.expect_pattern(0, 64, 3);
}

TEST_F(FaultTest, DegradedPartialStripeUsesStripeBufferOrPp)
{
    uint32_t victim = arr_.vol->layout().data_dev(0, 0, 0);
    arr_.vol->mark_device_failed(victim);
    arr_.write_pattern(0, 8, 4); // partial stripe, degraded
    arr_.expect_pattern(0, 8, 4);
}

TEST_F(FaultTest, IoErrorTriggersFailureDetection)
{
    arr_.write_pattern(0, 64, 5);
    // Fail the device at the device level without telling the volume.
    uint32_t victim = arr_.vol->layout().data_dev(0, 0, 0);
    arr_.devs[victim]->fail();
    // The next read hits an IO error and transparently reconstructs.
    arr_.expect_pattern(0, 64, 5);
    EXPECT_EQ(arr_.vol->failed_device(), static_cast<int>(victim));
}

TEST_F(FaultTest, SecondFailureMakesVolumeReadOnly)
{
    arr_.write_pattern(0, 16, 1);
    arr_.vol->mark_device_failed(0);
    arr_.vol->mark_device_failed(1);
    EXPECT_TRUE(arr_.vol->read_only());
    auto r = arr_.write(16, pattern_data(4, 2));
    EXPECT_EQ(r.status.code(), StatusCode::kReadOnly);
}

TEST_F(FaultTest, DegradedMountAfterCrash)
{
    arr_.write_pattern(0, 128, 6);
    ASSERT_TRUE(arr_.flush().status.is_ok());
    // Device dies; then the host reboots.
    uint32_t victim = arr_.vol->layout().data_dev(0, 0, 0);
    arr_.devs[victim]->fail();
    ASSERT_TRUE(
        arr_.crash_and_remount({PowerLossSpec::Policy::kDropCache, 3})
            .is_ok());
    EXPECT_EQ(arr_.vol->failed_device(), static_cast<int>(victim));
    arr_.expect_pattern(0, 128, 6);
}

TEST_F(FaultTest, CrashWhileDegradedKeepsFuaAckedWrites)
{
    // The array is already degraded when the power fails. FUA-acked
    // partial-stripe writes whose data unit lives on the failed device
    // exist durably only as partial-parity log records (§5.1); after
    // the crash they must be reconstructed, while the unacked volatile
    // tail may roll back.
    uint32_t victim = arr_.vol->layout().data_dev(0, 0, 0);
    arr_.devs[victim]->fail();
    arr_.vol->mark_device_failed(victim);
    WriteFlags fua;
    fua.fua = true;
    arr_.write_pattern(0, 16, 1, fua);  // unit 0: on the failed device
    arr_.write_pattern(16, 8, 2, fua);  // half of unit 1
    arr_.write_pattern(24, 24, 3);      // volatile tail, never acked
                                        // durable
    ASSERT_TRUE(
        arr_.crash_and_remount({PowerLossSpec::Policy::kDropCache, 7})
            .is_ok());
    EXPECT_EQ(arr_.vol->failed_device(), static_cast<int>(victim));
    auto zi = arr_.vol->zone_info(0).value();
    ASSERT_GE(zi.wp - zi.start, 24u);
    arr_.expect_pattern(0, 16, 1);
    arr_.expect_pattern(16, 8, 2);
    // The recovered zone stays usable degraded: appendable at its wp.
    uint64_t fill = zi.wp - zi.start;
    arr_.write_pattern(zi.start + fill, 8, 4, fua);
    arr_.expect_pattern(zi.start + fill, 8, 4);
}

TEST_F(FaultTest, RebuildRestoresRedundancy)
{
    arr_.write_pattern(0, 128, 7); // zone 0: two stripes
    arr_.write_pattern(512, 40, 8); // zone 1: partial
    ASSERT_TRUE(arr_.flush().status.is_ok());

    uint32_t victim = arr_.vol->layout().data_dev(0, 0, 0);
    arr_.vol->mark_device_failed(victim);
    arr_.devs[victim]->replace();
    ASSERT_TRUE(arr_.rebuild(victim).is_ok());
    EXPECT_EQ(arr_.vol->failed_device(), -1);
    EXPECT_GT(arr_.vol->stats().zones_rebuilt, 0u);

    // All data readable without reconstruction.
    uint64_t degraded_before = arr_.vol->stats().degraded_reads;
    arr_.expect_pattern(0, 128, 7);
    arr_.expect_pattern(512, 40, 8);
    EXPECT_EQ(arr_.vol->stats().degraded_reads, degraded_before);

    // Redundancy is restored: fail a DIFFERENT device and reconstruct.
    uint32_t second = (victim + 1) % 5;
    arr_.vol->mark_device_failed(second);
    arr_.expect_pattern(0, 128, 7);
    arr_.expect_pattern(512, 40, 8);
}

TEST_F(FaultTest, RebuildOnlyTouchesValidData)
{
    // Write into only 1 of 5 zones: rebuild must not write more than
    // that zone's worth of data to the replacement (Fig. 12 property).
    arr_.write_pattern(0, 256, 9); // half of zone 0
    ASSERT_TRUE(arr_.flush().status.is_ok());
    uint32_t victim = arr_.vol->layout().parity_dev(0, 0);
    arr_.vol->mark_device_failed(victim);
    arr_.devs[victim]->replace();
    ASSERT_TRUE(arr_.rebuild(victim).is_ok());
    // Replacement received ~64 sectors of stripe data (256 logical /
    // 4 data units = 64 per device) plus metadata, not the whole disk.
    uint64_t written = arr_.devs[victim]->stats().sectors_written;
    EXPECT_LT(written, 256u);
    EXPECT_GE(written, 64u);
    EXPECT_EQ(arr_.vol->stats().zones_rebuilt, 1u);
}

TEST_F(FaultTest, RebuildSkipsEmptyZones)
{
    arr_.write_pattern(0, 64, 10);
    ASSERT_TRUE(arr_.flush().status.is_ok());
    uint32_t victim = 2;
    arr_.vol->mark_device_failed(victim);
    arr_.devs[victim]->replace();
    uint64_t zones_done = 0, zones_total = 0;
    Status st;
    bool done = false;
    arr_.vol->rebuild_device(
        victim,
        [&](uint64_t d, uint64_t t) {
            zones_done = d;
            zones_total = t;
        },
        [&](Status s) {
            st = s;
            done = true;
        });
    arr_.loop->run_until_pred([&] { return done; });
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    EXPECT_EQ(zones_total, 1u) << "only 1 of 5 zones has data";
    EXPECT_EQ(zones_done, 1u);
}

TEST_F(FaultTest, WritesDuringRebuildServedDegraded)
{
    // Fill two zones so the rebuild takes multiple steps, then write
    // to a third zone mid-rebuild.
    arr_.write_pattern(0, 512, 11); // zone 0 full
    arr_.write_pattern(512, 512, 12); // zone 1 full
    ASSERT_TRUE(arr_.flush().status.is_ok());
    uint32_t victim = arr_.vol->layout().data_dev(0, 0, 1);
    arr_.vol->mark_device_failed(victim);
    arr_.devs[victim]->replace();

    bool rebuild_done = false;
    Status rebuild_st;
    arr_.vol->rebuild_device(victim, nullptr, [&](Status s) {
        rebuild_st = s;
        rebuild_done = true;
    });
    // Interleave: run a few events, then submit a write to zone 2.
    arr_.loop->run_events(10);
    bool wdone = false;
    IoResult wres;
    arr_.vol->write(2 * 512, pattern_data(16, 13), {},
                    [&](IoResult r) {
                        wres = std::move(r);
                        wdone = true;
                    });
    arr_.loop->run_until_pred([&] { return rebuild_done && wdone; });
    ASSERT_TRUE(rebuild_st.is_ok()) << rebuild_st.to_string();
    ASSERT_TRUE(wres.status.is_ok()) << wres.status.to_string();
    arr_.expect_pattern(2 * 512, 16, 13);
    arr_.expect_pattern(0, 512, 11);
    arr_.expect_pattern(512, 512, 12);
}

TEST_F(FaultTest, RebuildReplicatesMetadata)
{
    arr_.write_pattern(0, 64, 14);
    ASSERT_TRUE(arr_.flush().status.is_ok());
    uint32_t victim = 1;
    arr_.vol->mark_device_failed(victim);
    arr_.devs[victim]->replace();
    ASSERT_TRUE(arr_.rebuild(victim).is_ok());
    // After rebuild + clean remount, the array still mounts even if a
    // DIFFERENT device is missing — i.e. the replacement carries the
    // replicated metadata (superblock, gen counters).
    ASSERT_TRUE(arr_.remount().is_ok());
    arr_.devs[(victim + 1) % 5]->fail();
    ASSERT_TRUE(
        arr_.crash_and_remount({PowerLossSpec::Policy::kKeepAll, 0})
            .is_ok());
    arr_.expect_pattern(0, 64, 14);
}

TEST_F(FaultTest, DegradedReadsCostMoreDeviceWork)
{
    // Reconstruction reads D-1 data units plus parity for every
    // stripe unit on the failed device: aggregate device work rises,
    // which is what caps degraded throughput under load.
    arr_.write_pattern(0, 512, 15); // fills zone 0 (buffers released)
    auto device_sectors_read = [&]() {
        uint64_t total = 0;
        for (auto &d : arr_.devs)
            total += d->stats().sectors_read;
        return total;
    };
    uint64_t s0 = device_sectors_read();
    for (int i = 0; i < 32; ++i)
        arr_.read(static_cast<uint64_t>(i) * 16, 16);
    uint64_t healthy = device_sectors_read() - s0;
    arr_.vol->mark_device_failed(arr_.vol->layout().data_dev(0, 0, 0));
    s0 = device_sectors_read();
    for (int i = 0; i < 32; ++i)
        arr_.read(static_cast<uint64_t>(i) * 16, 16);
    uint64_t degraded = device_sectors_read() - s0;
    EXPECT_EQ(healthy, 512u);
    // The victim holds data units in 6 of 8 stripes (it is the parity
    // device for the other 2): 6*64 + 26*16 = 800 sectors.
    EXPECT_EQ(degraded, 800u);
}

} // namespace
} // namespace raizn
