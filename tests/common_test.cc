/**
 * @file
 * Unit tests for src/common: status, units, histogram, rng, crc32,
 * bitmap.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <map>

#include "common/bitmap.h"
#include "common/crc32.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"

namespace raizn {
namespace {

TEST(StatusTest, DefaultIsOk)
{
    Status s;
    EXPECT_TRUE(s.is_ok());
    EXPECT_TRUE(static_cast<bool>(s));
    EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(StatusTest, ErrorCarriesMessage)
{
    Status s(StatusCode::kIoError, "disk on fire");
    EXPECT_FALSE(s.is_ok());
    EXPECT_EQ(s.to_string(), "IO_ERROR: disk on fire");
    EXPECT_EQ(s, StatusCode::kIoError);
}

TEST(StatusTest, AllCodesHaveNames)
{
    for (int c = 0; c <= static_cast<int>(StatusCode::kNotSupported); ++c) {
        EXPECT_NE(to_string(static_cast<StatusCode>(c)), "UNKNOWN");
    }
}

TEST(ResultTest, ValueAndError)
{
    Result<int> ok(42);
    ASSERT_TRUE(ok.is_ok());
    EXPECT_EQ(ok.value(), 42);

    Result<int> err(Status(StatusCode::kNotFound, "nope"));
    ASSERT_FALSE(err.is_ok());
    EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
    EXPECT_EQ(err.value_or(-1), -1);
}

TEST(UnitsTest, Conversions)
{
    EXPECT_EQ(bytes_to_sectors(64 * kKiB), 16u);
    EXPECT_EQ(sectors_to_bytes(16), 64 * kKiB);
    EXPECT_EQ(round_up(5, 4), 8u);
    EXPECT_EQ(round_up(8, 4), 8u);
    EXPECT_EQ(div_ceil(9, 4), 3u);
    EXPECT_NEAR(mib_per_sec(kMiB, kNsPerSec), 1.0, 1e-9);
}

TEST(HistogramTest, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.5), 0u);
    EXPECT_EQ(h.min(), 0u);
}

TEST(HistogramTest, SingleValue)
{
    Histogram h;
    h.add(1000);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min(), 1000u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_EQ(h.p50(), 1000u);
    EXPECT_EQ(h.p999(), 1000u);
}

TEST(HistogramTest, PercentilesWithinBucketError)
{
    Histogram h;
    for (uint64_t v = 1; v <= 100000; ++v)
        h.add(v);
    // Buckets have <= ~1.6% relative width.
    EXPECT_NEAR(static_cast<double>(h.p50()), 50000.0, 50000 * 0.02);
    EXPECT_NEAR(static_cast<double>(h.p99()), 99000.0, 99000 * 0.02);
    EXPECT_NEAR(static_cast<double>(h.p999()), 99900.0, 99900 * 0.02);
    EXPECT_NEAR(h.mean(), 50000.5, 1.0);
}

TEST(HistogramTest, MergeMatchesCombined)
{
    Histogram a, b, c;
    Rng rng(7);
    for (int i = 0; i < 5000; ++i) {
        uint64_t v = rng.next_below(1u << 20);
        (i % 2 ? a : b).add(v);
        c.add(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), c.count());
    EXPECT_EQ(a.min(), c.min());
    EXPECT_EQ(a.max(), c.max());
    EXPECT_EQ(a.p50(), c.p50());
    EXPECT_EQ(a.p999(), c.p999());
}

TEST(HistogramTest, ClearResets)
{
    Histogram h;
    h.add(5);
    h.clear();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.max(), 0u);
}

TEST(RngTest, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, BoundsRespected)
{
    Rng rng(42);
    for (int i = 0; i < 10000; ++i) {
        EXPECT_LT(rng.next_below(17), 17u);
        uint64_t v = rng.next_range(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
        double d = rng.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(RngTest, UniformityRoughly)
{
    Rng rng(9);
    std::map<uint64_t, int> counts;
    constexpr int kDraws = 100000;
    for (int i = 0; i < kDraws; ++i)
        counts[rng.next_below(10)]++;
    for (auto &[v, n] : counts) {
        EXPECT_NEAR(n, kDraws / 10, kDraws / 10 * 0.1) << "value " << v;
    }
}

TEST(ZipfianTest, SkewsTowardHead)
{
    ZipfianGenerator zipf(1000, 0.99, 3);
    std::map<uint64_t, int> counts;
    for (int i = 0; i < 100000; ++i) {
        uint64_t v = zipf.next();
        ASSERT_LT(v, 1000u);
        counts[v]++;
    }
    // Item 0 must be the most popular and much hotter than the median.
    EXPECT_GT(counts[0], counts[500] * 10);
}

TEST(Crc32Test, KnownVector)
{
    // CRC32C("123456789") = 0xE3069283
    EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32Test, SeedChaining)
{
    const char *msg = "hello, zoned world";
    uint32_t whole = crc32c(msg, std::strlen(msg));
    uint32_t part = crc32c(msg, 5);
    part = crc32c(msg + 5, std::strlen(msg) - 5, part);
    EXPECT_EQ(whole, part);
}

TEST(Crc32Test, DetectsBitFlip)
{
    std::vector<uint8_t> buf(4096, 0xab);
    uint32_t before = crc32c(buf.data(), buf.size());
    buf[1234] ^= 0x01;
    EXPECT_NE(before, crc32c(buf.data(), buf.size()));
}

TEST(BitmapTest, SetTestClear)
{
    Bitmap bm(130);
    EXPECT_EQ(bm.size(), 130u);
    EXPECT_FALSE(bm.test(0));
    bm.set(0);
    bm.set(64);
    bm.set(129);
    EXPECT_TRUE(bm.test(0));
    EXPECT_TRUE(bm.test(64));
    EXPECT_TRUE(bm.test(129));
    EXPECT_EQ(bm.count_set(), 3u);
    bm.clear(64);
    EXPECT_FALSE(bm.test(64));
}

TEST(BitmapTest, RangeOps)
{
    Bitmap bm(256);
    bm.set_range(10, 20);
    EXPECT_TRUE(bm.all_set(10, 20));
    EXPECT_FALSE(bm.all_set(9, 20));
    EXPECT_FALSE(bm.all_set(10, 21));
    EXPECT_EQ(bm.find_first_clear(10), 20u);
    EXPECT_EQ(bm.find_first_clear(0), 0u);
    bm.clear_all();
    EXPECT_EQ(bm.count_set(), 0u);
}

} // namespace
} // namespace raizn
