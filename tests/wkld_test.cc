/**
 * @file
 * Tests for the workload layer: job generation, the runner's stop
 * conditions and accounting, the sampler, and the array factories.
 */
#include <gtest/gtest.h>

#include "wkld/runner.h"
#include "wkld/setup.h"
#include "wkld/target.h"

namespace raizn {
namespace {

TEST(WkldTest, SeqJobsPartitionCapacity)
{
    auto jobs = seq_jobs(RwMode::kSeqWrite, 16, 8, 64, 8192, 512);
    ASSERT_EQ(jobs.size(), 8u);
    for (uint32_t j = 0; j < 8; ++j) {
        EXPECT_EQ(jobs[j].region_start % 512, 0u) << "zone aligned";
        EXPECT_EQ(jobs[j].region_len, 1024u);
        EXPECT_EQ(jobs[j].region_start, j * 1024u);
    }
}

TEST(WkldTest, RunnerSeqWriteCoversRegion)
{
    BenchScale scale;
    scale.zones_per_device = 8;
    scale.zone_cap_sectors = 512;
    auto arr = make_raizn_array(scale);
    RaiznTarget target(arr.vol.get());
    WorkloadRunner runner(arr.loop.get(), &target);

    JobSpec s;
    s.mode = RwMode::kSeqWrite;
    s.block_sectors = 64;
    s.queue_depth = 8;
    s.region_len = arr.vol->zone_capacity(); // one logical zone
    auto res = runner.run_merged({s});
    EXPECT_EQ(res.errors, 0u);
    EXPECT_EQ(res.ios, arr.vol->zone_capacity() / 64);
    EXPECT_EQ(res.bytes, arr.vol->zone_capacity() * kSectorSize);
    EXPECT_GT(res.elapsed, 0u);
    EXPECT_GT(res.throughput_mibs(), 0.0);
    EXPECT_EQ(arr.vol->zone_info(0).value().wp,
              arr.vol->zone_capacity());
}

TEST(WkldTest, RunnerIoLimitStops)
{
    BenchScale scale;
    scale.zones_per_device = 8;
    scale.zone_cap_sectors = 512;
    auto arr = make_raizn_array(scale);
    RaiznTarget target(arr.vol.get());
    WorkloadRunner runner(arr.loop.get(), &target);
    prime_target(arr.loop.get(), &target, arr.vol->zone_capacity());

    JobSpec s = rand_read_job(16, 32, arr.vol->zone_capacity());
    s.io_limit = 500;
    auto res = runner.run_merged({s});
    EXPECT_EQ(res.ios, 500u);
    EXPECT_EQ(res.errors, 0u);
    EXPECT_GT(res.latency.p50(), 0u);
}

TEST(WkldTest, RunnerTimeLimitStops)
{
    BenchScale scale;
    scale.zones_per_device = 8;
    scale.zone_cap_sectors = 512;
    auto arr = make_raizn_array(scale);
    RaiznTarget target(arr.vol.get());
    prime_target(arr.loop.get(), &target, arr.vol->zone_capacity());
    WorkloadRunner runner(arr.loop.get(), &target);

    JobSpec s = rand_read_job(16, 16, arr.vol->zone_capacity());
    s.time_limit = 10 * kNsPerMs;
    auto res = runner.run_merged({s});
    EXPECT_GT(res.ios, 0u);
    EXPECT_GE(res.elapsed, 10 * kNsPerMs);
    EXPECT_LT(res.elapsed, 20 * kNsPerMs);
}

TEST(WkldTest, MultipleJobsAllComplete)
{
    BenchScale scale;
    scale.zones_per_device = 11; // 8 logical zones
    scale.zone_cap_sectors = 512;
    auto arr = make_raizn_array(scale);
    RaiznTarget target(arr.vol.get());
    WorkloadRunner runner(arr.loop.get(), &target);

    auto jobs = seq_jobs(RwMode::kSeqWrite, 64, 8, 8,
                         arr.vol->capacity(), arr.vol->zone_capacity());
    auto results = runner.run(jobs);
    ASSERT_EQ(results.size(), 8u);
    for (const auto &r : results) {
        EXPECT_EQ(r.errors, 0u);
        EXPECT_GT(r.ios, 0u);
    }
}

TEST(WkldTest, SamplerBucketsByInterval)
{
    Sampler sampler(kNsPerMs);
    sampler.record(500 * kNsPerUs, 4096, 10);
    sampler.record(1500 * kNsPerUs, 4096, 10);
    sampler.record(1600 * kNsPerUs, 8192, 20);
    ASSERT_EQ(sampler.samples().size(), 2u);
    EXPECT_EQ(sampler.samples()[0].ios, 1u);
    EXPECT_EQ(sampler.samples()[1].ios, 2u);
    EXPECT_EQ(sampler.samples()[1].bytes, 12288u);
}

TEST(WkldTest, MdArrayFactoryWorks)
{
    BenchScale scale;
    scale.zones_per_device = 8;
    scale.zone_cap_sectors = 512;
    auto arr = make_mdraid_array(scale);
    MdTarget target(arr.vol.get());
    WorkloadRunner runner(arr.loop.get(), &target);
    JobSpec s;
    s.mode = RwMode::kRandWrite; // allowed on block devices
    s.block_sectors = 16;
    s.queue_depth = 8;
    s.io_limit = 200;
    s.region_len = arr.vol->capacity();
    auto res = runner.run_merged({s});
    EXPECT_EQ(res.errors, 0u);
    EXPECT_EQ(res.ios, 200u);
}

TEST(WkldTest, ThroughputScalesWithBlockSizeOnReads)
{
    BenchScale scale;
    auto arr = make_raizn_array(scale);
    RaiznTarget target(arr.vol.get());
    prime_target(arr.loop.get(), &target, arr.vol->capacity());
    WorkloadRunner runner(arr.loop.get(), &target);

    auto tput = [&](uint32_t bs) {
        auto jobs = seq_jobs(RwMode::kSeqRead, bs, 8, 64,
                             arr.vol->capacity(),
                             arr.vol->zone_capacity());
        for (auto &j : jobs)
            j.io_limit = 2000 / 8;
        return runner.run_merged(jobs).throughput_mibs();
    };
    double small = tput(1); // 4 KiB
    double large = tput(256); // 1 MiB
    EXPECT_GT(large, small * 3)
        << "large sequential reads must be much faster";
    // Large reads approach the aggregate read bandwidth of D devices.
    EXPECT_GT(large, 4000.0);
}

} // namespace
} // namespace raizn
