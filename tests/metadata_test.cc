/**
 * @file
 * Unit tests for metadata encoding (Fig. 3), superblock, generation
 * counters, stripe buffers / parity math, persistence bitmap, and the
 * relocation map.
 */
#include <gtest/gtest.h>

#include "raizn/gen_counter.h"
#include "raizn/metadata.h"
#include "raizn/persist_bitmap.h"
#include "raizn/relocation.h"
#include "raizn/stripe_buffer.h"
#include "raizn/superblock.h"
#include "zns/block_device.h"

namespace raizn {
namespace {

TEST(MdEntryTest, HeaderRoundTrip)
{
    MdHeader h;
    h.type = MdType::kZoneResetLog;
    h.start_lba = 0x1122334455ull;
    h.end_lba = 0x66778899aaull;
    h.generation = 42;
    std::vector<uint8_t> inl = {1, 2, 3, 4};
    auto bytes = encode_md_entry(h, inl, {});
    ASSERT_EQ(bytes.size(), kSectorSize);

    auto res = decode_md_entry(bytes, 0);
    ASSERT_TRUE(res.is_ok()) << res.status().to_string();
    const MdEntry &e = res.value();
    EXPECT_EQ(e.header.type, MdType::kZoneResetLog);
    EXPECT_FALSE(e.header.checkpoint);
    EXPECT_EQ(e.header.start_lba, h.start_lba);
    EXPECT_EQ(e.header.end_lba, h.end_lba);
    EXPECT_EQ(e.header.generation, 42u);
    EXPECT_EQ(e.inline_data[0], 1);
    EXPECT_EQ(e.total_sectors, 1u);
}

TEST(MdEntryTest, CheckpointFlagRoundTrip)
{
    MdHeader h;
    h.type = MdType::kGenCounters;
    h.checkpoint = true;
    auto bytes = encode_md_entry(h, {}, {});
    auto res = decode_md_entry(bytes, 0);
    ASSERT_TRUE(res.is_ok());
    EXPECT_TRUE(res.value().header.checkpoint);
    EXPECT_EQ(res.value().header.type, MdType::kGenCounters);
}

TEST(MdEntryTest, PayloadRoundTrip)
{
    MdHeader h;
    h.type = MdType::kPartialParity;
    auto payload = pattern_data(3, 77);
    auto bytes = encode_md_entry(h, std::vector<uint8_t>(12, 0), payload);
    ASSERT_EQ(bytes.size(), 4 * kSectorSize);
    auto res = decode_md_entry(bytes, 0);
    ASSERT_TRUE(res.is_ok());
    EXPECT_EQ(res.value().total_sectors, 4u);
    EXPECT_EQ(res.value().payload, payload);
}

TEST(MdEntryTest, TornPayloadRejected)
{
    MdHeader h;
    h.type = MdType::kRelocatedSu;
    auto bytes = encode_md_entry(h, {}, pattern_data(4, 1));
    bytes.resize(2 * kSectorSize); // payload torn off
    auto res = decode_md_entry(bytes, 0);
    EXPECT_EQ(res.status().code(), StatusCode::kCorruption);
}

TEST(MdEntryTest, ScanStopsAtGarbage)
{
    MdHeader h;
    h.type = MdType::kSuperblock;
    std::vector<uint8_t> zone;
    for (int i = 0; i < 3; ++i) {
        h.generation = static_cast<uint64_t>(i);
        auto e = encode_md_entry(h, {}, {});
        zone.insert(zone.end(), e.begin(), e.end());
    }
    zone.resize(zone.size() + 2 * kSectorSize, 0); // unwritten tail
    auto entries = scan_md_zone(zone, 1000);
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].pba, 1000u);
    EXPECT_EQ(entries[1].pba, 1001u);
    EXPECT_EQ(entries[2].header.generation, 2u);
}

TEST(MdEntryTest, InlineRecordsRoundTrip)
{
    {
        auto inl = encode_zone_role({MdZoneRole::kParityLog, 7});
        MdHeader h;
        h.type = MdType::kZoneRole;
        auto e = decode_md_entry(encode_md_entry(h, inl, {}), 0);
        ASSERT_TRUE(e.is_ok());
        auto rec = decode_zone_role(e.value());
        ASSERT_TRUE(rec.is_ok());
        EXPECT_EQ(rec.value().role, MdZoneRole::kParityLog);
        EXPECT_EQ(rec.value().epoch, 7u);
    }
    {
        auto inl = encode_zone_reset({13});
        MdHeader h;
        h.type = MdType::kZoneResetLog;
        auto e = decode_md_entry(encode_md_entry(h, inl, {}), 0);
        auto rec = decode_zone_reset(e.value());
        ASSERT_TRUE(rec.is_ok());
        EXPECT_EQ(rec.value().logical_zone, 13u);
    }
    {
        auto inl = encode_zone_rebuild({3, 2, 1, 4, 999});
        MdHeader h;
        h.type = MdType::kZoneRebuildLog;
        auto e = decode_md_entry(encode_md_entry(h, inl, {}), 0);
        auto rec = decode_zone_rebuild(e.value());
        ASSERT_TRUE(rec.is_ok());
        EXPECT_EQ(rec.value().logical_zone, 3u);
        EXPECT_EQ(rec.value().dev, 2u);
        EXPECT_EQ(rec.value().phase, 1u);
        EXPECT_EQ(rec.value().swap_idx, 4u);
        EXPECT_EQ(rec.value().image_sectors, 999u);
    }
}

TEST(SuperblockTest, RoundTripAndCrc)
{
    Superblock sb;
    sb.array_uuid = 0xabcdef;
    RaiznConfig cfg;
    sb.from_config(cfg);
    sb.dev_id = 3;
    sb.seq = 9;
    auto enc = sb.encode();
    auto dec = Superblock::decode(enc);
    ASSERT_TRUE(dec.is_ok());
    EXPECT_EQ(dec.value().array_uuid, 0xabcdefu);
    EXPECT_EQ(dec.value().dev_id, 3u);
    EXPECT_EQ(dec.value().num_devices, cfg.num_devices);
    EXPECT_TRUE(dec.value().same_array(sb));

    enc[3] ^= 0xff; // corrupt
    EXPECT_EQ(Superblock::decode(enc).status().code(),
              StatusCode::kCorruption);
}

TEST(GenCounterTest, IncrementAndEncode)
{
    GenCounterTable t(1000);
    EXPECT_EQ(t.num_blocks(), 2u);
    t.increment(5);
    t.increment(5);
    t.increment(600);
    EXPECT_EQ(t.get(5), 2u);
    EXPECT_EQ(t.get(600), 1u);

    // Round-trip through an entry.
    MdEntry e;
    e.header = t.block_header(1, 7);
    e.inline_data = t.encode_block(1);
    GenCounterTable t2(1000);
    t2.apply_entry(e);
    EXPECT_EQ(t2.get(600), 1u);
    EXPECT_EQ(t2.get(5), 0u); // other block untouched
}

TEST(GenCounterTest, StaleEntriesIgnored)
{
    GenCounterTable t(100);
    t.increment(1);
    MdEntry newer;
    newer.header = t.block_header(0, 10);
    newer.inline_data = t.encode_block(0);

    t.increment(1); // now 2
    MdEntry stale;
    stale.header = t.block_header(0, 5);
    stale.inline_data = t.encode_block(0);

    GenCounterTable replay(100);
    replay.apply_entry(newer);
    replay.apply_entry(stale); // lower seq: ignored
    EXPECT_EQ(replay.get(1), 1u);
}

TEST(GenCounterTest, MemoryFootprintMatchesTable1)
{
    // Table 1: 8.05 bytes per logical zone.
    GenCounterTable t(508 * 4);
    double per_zone = static_cast<double>(t.memory_bytes()) / (508 * 4);
    EXPECT_NEAR(per_zone, 8.06, 0.1);
}

TEST(ParityMathTest, XorBytes)
{
    std::vector<uint8_t> a = {1, 2, 3, 4, 5, 6, 7, 8, 9};
    std::vector<uint8_t> b = {9, 8, 7, 6, 5, 4, 3, 2, 1};
    std::vector<uint8_t> c = a;
    xor_bytes(c.data(), b.data(), c.size());
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(c[i], a[i] ^ b[i]);
    xor_bytes(c.data(), b.data(), c.size());
    EXPECT_EQ(c, a) << "XOR twice is identity";
}

TEST(ParityMathTest, ByteRangeSingleUnit)
{
    uint64_t lo, hi;
    // Write sectors [2, 5) of a 16-sector unit: single-unit slice.
    parity_byte_range(2, 5, 16, &lo, &hi);
    EXPECT_EQ(lo, 2 * kSectorSize);
    EXPECT_EQ(hi, 5 * kSectorSize);
}

TEST(ParityMathTest, ByteRangeMultiUnit)
{
    uint64_t lo, hi;
    // Write crossing units touches the whole unit width.
    parity_byte_range(10, 20, 16, &lo, &hi);
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 16 * kSectorSize);
}

TEST(StripeBufferTest, FullParityIsXorOfUnits)
{
    StripeBuffer buf(4, 4, /*shadow=*/false);
    buf.assign(0);
    auto data = pattern_data(16, 3); // whole stripe
    buf.fill(0, data.data(), 16);
    ASSERT_TRUE(buf.complete());
    auto parity = buf.full_parity();
    ASSERT_EQ(parity.size(), 4u * kSectorSize);
    for (size_t j = 0; j < parity.size(); ++j) {
        uint8_t expect = 0;
        for (uint32_t k = 0; k < 4; ++k)
            expect ^= data[k * 4 * kSectorSize + j];
        ASSERT_EQ(parity[j], expect) << "byte " << j;
    }
}

TEST(StripeBufferTest, DeltaComposesToPrefixParity)
{
    // Fill a stripe in three uneven writes; XOR of the deltas must
    // equal the cumulative prefix parity.
    StripeBuffer buf(4, 4, false);
    buf.assign(7);
    auto data = pattern_data(16, 9);
    std::vector<std::pair<uint64_t, uint64_t>> writes = {
        {0, 3}, {3, 9}, {9, 14}};
    std::vector<uint8_t> acc(4 * kSectorSize, 0);
    for (auto [s, e] : writes) {
        buf.fill(s, data.data() + s * kSectorSize, e - s);
        uint64_t lo, hi;
        auto delta = buf.parity_delta(s, e, &lo, &hi);
        xor_bytes(acc.data() + lo * kSectorSize, delta.data(),
                  delta.size());
    }
    auto prefix = buf.prefix_parity();
    EXPECT_EQ(acc, prefix);
}

TEST(StripeBufferTest, PrefixParityZeroExtends)
{
    StripeBuffer buf(4, 4, false);
    buf.assign(0);
    auto data = pattern_data(6, 5); // 1.5 units
    buf.fill(0, data.data(), 6);
    auto parity = buf.prefix_parity();
    // Bytes beyond the second unit's fill come only from unit 0.
    for (size_t j = 2 * kSectorSize; j < 4 * kSectorSize; ++j)
        EXPECT_EQ(parity[j], data[j]);
    // Bytes in the overlap are the XOR of units 0 and 1.
    for (size_t j = 0; j < 2 * kSectorSize; ++j)
        EXPECT_EQ(parity[j], data[j] ^ data[4 * kSectorSize + j]);
}

TEST(StripeBufferTest, ShadowModeTracksFillOnly)
{
    StripeBuffer buf(4, 4, /*shadow=*/true);
    buf.assign(0);
    buf.fill(0, nullptr, 10);
    EXPECT_EQ(buf.filled(), 10u);
    EXPECT_FALSE(buf.complete());
    EXPECT_EQ(buf.memory_bytes(), 0u);
    uint64_t lo, hi;
    auto delta = buf.parity_delta(0, 10, &lo, &hi);
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 4u);
}

TEST(PersistBitmapTest, PrefixTracking)
{
    PersistBitmap pbm(16, 4);
    EXPECT_EQ(pbm.persisted_prefix_units(), 0u);
    // 1.5 units: only the fully covered unit counts — a half-persisted
    // unit's device still caches the tail, so its bit must stay clear
    // or a later FUA dependency flush would skip that device.
    pbm.mark_persisted_upto(6);
    EXPECT_EQ(pbm.persisted_prefix_units(), 1u);
    EXPECT_TRUE(pbm.prefix_persisted(1));
    EXPECT_FALSE(pbm.prefix_persisted(2));
    pbm.mark_unit(3); // out of order
    EXPECT_EQ(pbm.persisted_prefix_units(), 1u);
    pbm.mark_unit(2);
    EXPECT_EQ(pbm.persisted_prefix_units(), 1u);
    pbm.mark_unit(1);
    EXPECT_EQ(pbm.persisted_prefix_units(), 4u);
    pbm.clear();
    EXPECT_EQ(pbm.persisted_prefix_units(), 0u);
}

TEST(PersistBitmapTest, MemoryIsOneBitPerUnit)
{
    // Table 1: 2 KiB per logical zone for their geometry.
    PersistBitmap pbm(16384, 16);
    EXPECT_EQ(pbm.memory_bytes(), 2048u);
}

TEST(RelocationMapTest, FindAndDrop)
{
    RelocationMap map;
    map.insert({100, 16, 2, 5000, {}});
    map.insert({200, 8, 1, 6000, {}});
    EXPECT_EQ(map.size(), 2u);
    ASSERT_NE(map.find(100), nullptr);
    ASSERT_NE(map.find(115), nullptr);
    EXPECT_EQ(map.find(116), nullptr);
    EXPECT_EQ(map.find(99), nullptr);
    EXPECT_EQ(map.find(207)->dev, 1u);
    EXPECT_EQ(map.count_for_dev(2), 1u);
    map.drop_zone(0, 150);
    EXPECT_EQ(map.find(100), nullptr);
    ASSERT_NE(map.find(200), nullptr);
}

TEST(BurnedRangesTest, TrackPerDevZone)
{
    BurnedRanges b;
    EXPECT_EQ(b.burned_end(0, 0), 0u);
    b.set(0, 3, 100, 160);
    EXPECT_EQ(b.burned_end(0, 3), 160u);
    EXPECT_EQ(b.burned_end(1, 3), 0u);
    b.clear_dev_zone(0, 3);
    EXPECT_EQ(b.burned_end(0, 3), 0u);
    b.set(2, 1, 50, 80);
    b.clear_zone(5, 1);
    EXPECT_EQ(b.burned_end(2, 1), 0u);
    // No-op when end <= expected.
    b.set(0, 0, 100, 100);
    EXPECT_EQ(b.burned_end(0, 0), 0u);
}

} // namespace
} // namespace raizn
