/**
 * @file
 * Cross-engine conservation property for the byte-provenance ledger:
 * every volume kind (the paper's RaiznVolume, all six ZonedEngine
 * modes, and the mdraid baseline) is driven through healthy, degraded,
 * and rebuild phases with a ledger attached, and after each phase the
 * conservation audit must hold — every byte each member device counted
 * is attributed to exactly one cause, and no sub-I/O reached a device
 * untagged. This is the regression net for new issuing sites: adding a
 * device-level I/O without a Cause tag fails here for the mode that
 * issues it.
 */
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "array/engine.h"
#include "mdraid/md_volume.h"
#include "obs/ledger.h"
#include "raizn/volume.h"
#include "sim/event_loop.h"
#include "zns/conv_device.h"
#include "zns/zns_device.h"

namespace raizn {
namespace {

using obs::IoLedger;
using obs::LedgerAudit;

/// Any ZonedArray over member devices with the ledger attached.
/// The ledger member is declared first so it outlives the devices
/// that record into it during teardown-free operation.
struct Sut {
    std::string name;
    IoLedger ledger;
    std::unique_ptr<EventLoop> loop;
    std::vector<std::unique_ptr<ZnsDevice>> zdevs;
    std::vector<std::unique_ptr<ConvDevice>> cdevs;
    std::unique_ptr<ZonedArray> arr;

    std::vector<BlockDevice *>
    dev_ptrs() const
    {
        std::vector<BlockDevice *> ptrs;
        for (const auto &d : zdevs)
            ptrs.push_back(d.get());
        for (const auto &d : cdevs)
            ptrs.push_back(d.get());
        return ptrs;
    }

    void
    make_engine(RaidMode mode)
    {
        name = std::string(to_string(mode));
        loop = std::make_unique<EventLoop>();
        for (uint32_t i = 0; i < 4; ++i) {
            ZnsDeviceConfig dc;
            dc.nzones = 5;
            dc.zone_size = 64;
            dc.zone_capacity = 64;
            dc.atomic_write_sectors = 4;
            dc.data_mode = DataMode::kStore;
            dc.name = "zns" + std::to_string(i);
            zdevs.push_back(
                std::make_unique<ZnsDevice>(loop.get(), dc));
        }
        EngineConfig ec;
        ec.mode = mode;
        ec.su_sectors = 4;
        auto res = ZonedEngine::create(loop.get(), dev_ptrs(), ec);
        ASSERT_TRUE(res.is_ok())
            << name << ": " << res.status().to_string();
        arr = std::move(res).value();
        arr->attach_ledger(&ledger);
    }

    void
    make_raizn()
    {
        name = "raizn";
        loop = std::make_unique<EventLoop>();
        for (uint32_t i = 0; i < 4; ++i) {
            ZnsDeviceConfig dc;
            dc.nzones = 8;
            dc.zone_size = 128;
            dc.zone_capacity = 128;
            dc.atomic_write_sectors = 4;
            dc.data_mode = DataMode::kStore;
            dc.name = "zns" + std::to_string(i);
            zdevs.push_back(
                std::make_unique<ZnsDevice>(loop.get(), dc));
        }
        RaiznConfig rc;
        rc.num_devices = 4;
        rc.su_sectors = 4;
        auto res = RaiznVolume::create(loop.get(), dev_ptrs(), rc);
        ASSERT_TRUE(res.is_ok()) << res.status().to_string();
        arr = std::move(res).value();
        arr->attach_ledger(&ledger);
    }

    void
    make_mdraid()
    {
        name = "mdraid";
        loop = std::make_unique<EventLoop>();
        for (uint32_t i = 0; i < 4; ++i) {
            ConvDeviceConfig cc;
            cc.nsectors = 16 * kMiB / kSectorSize;
            cc.pages_per_block = 64;
            cc.name = "conv" + std::to_string(i);
            cdevs.push_back(
                std::make_unique<ConvDevice>(loop.get(), cc));
        }
        MdVolumeConfig mc;
        mc.chunk_sectors = 4;
        arr = std::make_unique<MdVolume>(loop.get(), dev_ptrs(),
                                         MdVolumeConfig(mc));
        arr->attach_ledger(&ledger);
    }

    // -- sync op wrappers --------------------------------------------
    IoResult
    write(uint64_t lba, uint32_t nsectors, uint64_t seed,
          WriteFlags flags = {})
    {
        IoResult out;
        bool done = false;
        arr->write(lba, pattern_data(nsectors, seed), flags,
                   [&](IoResult r) {
                       out = std::move(r);
                       done = true;
                   });
        loop->run_until_pred([&] { return done; });
        EXPECT_TRUE(done);
        return out;
    }

    IoResult
    read(uint64_t lba, uint32_t nsectors)
    {
        IoResult out;
        bool done = false;
        arr->read(lba, nsectors, [&](IoResult r) {
            out = std::move(r);
            done = true;
        });
        loop->run_until_pred([&] { return done; });
        EXPECT_TRUE(done);
        return out;
    }

    IoResult
    flush()
    {
        IoResult out;
        bool done = false;
        arr->flush([&](IoResult r) {
            out = std::move(r);
            done = true;
        });
        loop->run_until_pred([&] { return done; });
        return out;
    }

    IoResult
    zone_op(bool reset, uint32_t zone)
    {
        IoResult out;
        bool done = false;
        auto cb = [&](IoResult r) {
            out = std::move(r);
            done = true;
        };
        if (reset)
            arr->reset_zone(zone, cb);
        else
            arr->finish_zone(zone, cb);
        loop->run_until_pred([&] { return done; });
        return out;
    }

    uint64_t
    zone_start(uint32_t zone)
    {
        if (arr->zoned())
            return arr->zone_info(zone).value().start;
        return static_cast<uint64_t>(zone) * 64;
    }

    void
    expect_audit_ok(const char *phase)
    {
        LedgerAudit audit = ledger.audit();
        EXPECT_TRUE(audit.ok())
            << name << " " << phase << ":\n" << audit.summary();
    }

    /// Healthy traffic: sequential writes into two zones with FUA and
    /// preflush variants, a standalone flush, read-back, and (zoned
    /// kinds) a finish+reset cycle.
    void
    run_healthy()
    {
        ASSERT_TRUE(write(zone_start(0), 16, 1).status.is_ok()) << name;
        WriteFlags fua;
        fua.fua = true;
        ASSERT_TRUE(write(zone_start(0) + 16, 16, 2, fua).status.is_ok())
            << name;
        ASSERT_TRUE(write(zone_start(0) + 32, 16, 3).status.is_ok())
            << name;
        WriteFlags pre;
        pre.preflush = true;
        ASSERT_TRUE(write(zone_start(1), 8, 4, pre).status.is_ok())
            << name;
        ASSERT_TRUE(flush().status.is_ok()) << name;
        ASSERT_TRUE(read(zone_start(0), 48).status.is_ok()) << name;
        ASSERT_TRUE(read(zone_start(1), 8).status.is_ok()) << name;
        if (arr->zoned()) {
            ASSERT_TRUE(zone_op(false, 1).status.is_ok()) << name;
            ASSERT_TRUE(zone_op(true, 1).status.is_ok()) << name;
        }
        expect_audit_ok("healthy");
    }

    /// Degraded traffic: member 1 failed; writes land degraded and
    /// reads reconstruct from the survivors.
    void
    run_degraded()
    {
        arr->mark_device_failed(1);
        ASSERT_TRUE(write(zone_start(2), 16, 5).status.is_ok()) << name;
        ASSERT_TRUE(read(zone_start(0), 48).status.is_ok()) << name;
        ASSERT_TRUE(flush().status.is_ok()) << name;
        expect_audit_ok("degraded");
    }

    /// Rebuild onto a factory-fresh replacement (mdraid: resync); the
    /// device re-baselines the ledger via rebind on replace().
    void
    run_rebuild()
    {
        if (!zdevs.empty())
            zdevs[1]->replace();
        else
            cdevs[1]->replace();
        bool done = false;
        Status st;
        arr->rebuild_device(1, nullptr, [&](Status s) {
            st = s;
            done = true;
        });
        loop->run_until_pred([&] { return done; });
        ASSERT_TRUE(done) << name;
        EXPECT_TRUE(st.is_ok()) << name << ": " << st.to_string();
        EXPECT_LT(arr->failed_device(), 0) << name;
        expect_audit_ok("rebuild");
        // Post-rebuild reads come back clean and stay conserved.
        ASSERT_TRUE(read(zone_start(0), 48).status.is_ok()) << name;
        expect_audit_ok("post-rebuild read");
    }

    void
    run_all_phases()
    {
        run_healthy();
        if (::testing::Test::HasFatalFailure())
            return;
        if (arr->fault_tolerance() == 0)
            return; // raid0: healthy only
        run_degraded();
        if (::testing::Test::HasFatalFailure())
            return;
        run_rebuild();
    }
};

TEST(LedgerConservation, Raizn)
{
    Sut sut;
    sut.make_raizn();
    if (::testing::Test::HasFatalFailure())
        return;
    sut.run_all_phases();
}

TEST(LedgerConservation, Mdraid)
{
    Sut sut;
    sut.make_mdraid();
    sut.run_all_phases();
}

class LedgerConservationEngine
    : public ::testing::TestWithParam<RaidMode>
{
};

TEST_P(LedgerConservationEngine, AllPhasesConserved)
{
    Sut sut;
    sut.make_engine(GetParam());
    if (::testing::Test::HasFatalFailure())
        return;
    sut.run_all_phases();
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, LedgerConservationEngine,
    ::testing::Values(RaidMode::kRaid0, RaidMode::kRaid1,
                      RaidMode::kRaid5, RaidMode::kRaid6,
                      RaidMode::kRaid10, RaidMode::kAuto),
    [](const ::testing::TestParamInfo<RaidMode> &info) {
        return std::string(to_string(info.param));
    });

} // namespace
} // namespace raizn
