/**
 * @file
 * Parameterized property tests (TEST_P sweeps):
 *  - layout invariants across array widths and stripe-unit sizes,
 *  - write/read round trips across block-size patterns,
 *  - crash recovery invariants across power-loss seeds,
 *  - degraded-read correctness for every possible failed device.
 */
#include <gtest/gtest.h>

#include <tuple>

#include "raizn_test_util.h"

namespace raizn {
namespace {

// ---- Layout invariants over (num_devices, su_sectors) ----------------

class LayoutProperty
    : public ::testing::TestWithParam<std::tuple<uint32_t, uint32_t>>
{
};

TEST_P(LayoutProperty, EveryLbaMapsUniquely)
{
    auto [ndev, su] = GetParam();
    RaiznConfig cfg;
    cfg.num_devices = ndev;
    cfg.su_sectors = su;
    DeviceGeometry g;
    g.zoned = true;
    g.nzones = 6;
    g.zone_size = su * 8;
    g.zone_capacity = g.zone_size;
    g.nsectors = g.zone_size * g.nzones;
    Layout layout(cfg, g);

    // Every logical sector maps to a unique (device, pba), never on
    // the stripe's parity device, and within its physical zone.
    std::set<std::pair<uint32_t, uint64_t>> seen;
    for (uint64_t lba = 0; lba < layout.logical_capacity(); ++lba) {
        uint32_t dev;
        uint64_t pba;
        layout.map_sector(lba, &dev, &pba);
        ASSERT_TRUE(seen.insert({dev, pba}).second)
            << "collision at lba " << lba;
        uint32_t zone = layout.zone_of(lba);
        uint64_t off = lba - layout.zone_start_lba(zone);
        uint64_t stripe = off / layout.stripe_sectors();
        ASSERT_NE(dev, layout.parity_dev(zone, stripe));
        ASSERT_GE(pba, zone * g.zone_size);
        ASSERT_LT(pba, zone * g.zone_size + g.zone_capacity);
    }
}

TEST_P(LayoutProperty, ProgressInvertsExpectedFill)
{
    auto [ndev, su] = GetParam();
    RaiznConfig cfg;
    cfg.num_devices = ndev;
    cfg.su_sectors = su;
    DeviceGeometry g;
    g.zoned = true;
    g.nzones = 5;
    g.zone_size = su * 6;
    g.zone_capacity = g.zone_size;
    g.nsectors = g.zone_size * g.nzones;
    Layout layout(cfg, g);

    // For any logical fill L, the device holding the most data must
    // imply progress exactly L.
    for (uint64_t L = 0; L <= layout.logical_zone_cap(); ++L) {
        uint64_t max_progress = 0;
        for (uint32_t d = 0; d < ndev; ++d) {
            // Expected physical fill of device d at logical fill L.
            uint64_t fs = L / layout.stripe_sectors();
            uint64_t rem = L % layout.stripe_sectors();
            uint64_t e = fs * su;
            if (rem > 0) {
                int pos = layout.data_pos_of_dev(0, fs, d);
                if (pos >= 0) {
                    uint64_t start = static_cast<uint64_t>(pos) * su;
                    if (rem > start)
                        e += std::min<uint64_t>(su, rem - start);
                }
            }
            max_progress = std::max(
                max_progress, layout.progress_from_device(0, d, e));
        }
        ASSERT_EQ(max_progress, L) << "fill " << L;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, LayoutProperty,
    ::testing::Combine(::testing::Values(3u, 4u, 5u, 8u),
                       ::testing::Values(2u, 4u, 16u)));

// ---- Write/read round trips over block sizes --------------------------

class RoundTripProperty : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(RoundTripProperty, SequentialPatternSurvivesRemount)
{
    uint32_t bs = GetParam();
    TestArray arr;
    arr.make();
    uint64_t cap = arr.vol->zone_capacity();
    uint64_t lba = 0;
    uint64_t seed = 100;
    while (lba + bs <= cap / 2) {
        arr.write_pattern(lba, bs, seed + lba);
        lba += bs;
    }
    ASSERT_TRUE(arr.remount().is_ok());
    uint64_t check = 0;
    while (check + bs <= cap / 2) {
        arr.expect_pattern(check, bs, seed + check);
        check += bs;
    }
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, RoundTripProperty,
                         ::testing::Values(1u, 3u, 4u, 7u, 16u, 24u,
                                           64u));

// ---- Crash recovery across power-loss seeds ----------------------------

class CrashSeedProperty : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(CrashSeedProperty, FlushedPrefixAlwaysSurvives)
{
    uint64_t seed = GetParam();
    TestArray arr;
    arr.make();
    Rng rng(seed);
    uint64_t wp = 0;
    uint64_t flushed = 0;
    for (int op = 0; op < 8; ++op) {
        uint32_t n = static_cast<uint32_t>(rng.next_range(1, 24));
        if (wp + n > arr.vol->zone_capacity())
            break;
        arr.write_pattern(wp, n, seed * 100 + op);
        wp += n;
        if (rng.next_bool(0.5)) {
            ASSERT_TRUE(arr.flush().status.is_ok());
            flushed = wp;
        }
    }
    ASSERT_TRUE(arr.crash_and_remount(
                       {PowerLossSpec::Policy::kRandom, seed})
                    .is_ok());
    uint64_t new_wp = arr.vol->zone_info(0).value().wp;
    EXPECT_GE(new_wp, flushed);
    // Every surviving sector is readable without error.
    if (new_wp > 0) {
        auto r = arr.read(0, static_cast<uint32_t>(new_wp));
        EXPECT_TRUE(r.status.is_ok()) << r.status.to_string();
    }
    // Volume still writable at the recovered write pointer.
    if (new_wp + 4 <= arr.vol->zone_capacity()) {
        arr.write_pattern(new_wp, 4, 777);
        arr.expect_pattern(new_wp, 4, 777);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrashSeedProperty,
                         ::testing::Range<uint64_t>(1, 21));

// ---- Degraded reads for every failed device ---------------------------

class DegradedProperty : public ::testing::TestWithParam<uint32_t>
{
};

TEST_P(DegradedProperty, AnySingleDeviceLossIsTransparent)
{
    uint32_t victim = GetParam();
    TestArray arr;
    arr.make();
    // Mixed fill: full stripes plus a partial tail.
    arr.write_pattern(0, 128, 1);
    arr.write_pattern(128, 20, 2);
    arr.vol->mark_device_failed(victim);
    arr.expect_pattern(0, 128, 1);
    arr.expect_pattern(128, 20, 2);
    // Degraded writes too.
    arr.write_pattern(148, 40, 3);
    arr.expect_pattern(148, 40, 3);
}

INSTANTIATE_TEST_SUITE_P(Victims, DegradedProperty,
                         ::testing::Range(0u, 5u));

} // namespace
} // namespace raizn
