/**
 * @file
 * Integration tests for the RAIZN volume: logical ZNS semantics,
 * striping + parity correctness on the physical devices, partial
 * parity logging, FUA handling, zone resets, open-zone limits, and
 * metadata garbage collection.
 */
#include <gtest/gtest.h>

#include "raizn_test_util.h"

namespace raizn {
namespace {

class VolumeTest : public ::testing::Test
{
  protected:
    void SetUp() override { arr_.make(); }
    TestArray arr_;
};

TEST_F(VolumeTest, GeometryExposed)
{
    // 8 physical zones - 3 metadata = 5 logical zones; capacity
    // D(=4) * 128 sectors each.
    EXPECT_EQ(arr_.vol->num_zones(), 5u);
    EXPECT_EQ(arr_.vol->zone_capacity(), 4u * 128);
    EXPECT_EQ(arr_.vol->capacity(), 5u * 4 * 128);
    EXPECT_EQ(arr_.vol->max_open_zones(), 11u); // 14 - 3
    EXPECT_EQ(arr_.vol->failed_device(), -1);
}

TEST_F(VolumeTest, WriteReadRoundTripAligned)
{
    arr_.write_pattern(0, 64, 1); // one full stripe
    arr_.expect_pattern(0, 64, 1);
}

TEST_F(VolumeTest, WriteReadSmallSequential)
{
    // 4 KiB writes, each much smaller than the 64 KiB stripe unit.
    for (uint32_t i = 0; i < 32; ++i)
        arr_.write_pattern(i, 1, 100 + i);
    for (uint32_t i = 0; i < 32; ++i)
        arr_.expect_pattern(i, 1, 100 + i);
    // Reads spanning several of those writes also match.
    auto r = arr_.read(0, 32);
    ASSERT_TRUE(r.status.is_ok());
}

TEST_F(VolumeTest, WritesMustBeAtWritePointer)
{
    arr_.write_pattern(0, 8, 1);
    auto r = arr_.write(16, pattern_data(8, 2));
    EXPECT_EQ(r.status.code(), StatusCode::kWritePointerMismatch);
    // Overwrite attempt also fails.
    r = arr_.write(0, pattern_data(8, 3));
    EXPECT_EQ(r.status.code(), StatusCode::kWritePointerMismatch);
}

TEST_F(VolumeTest, ZoneBoundaryEnforced)
{
    uint64_t cap = arr_.vol->zone_capacity();
    auto r = arr_.write(cap - 4, pattern_data(8, 1));
    EXPECT_EQ(r.status.code(), StatusCode::kWritePointerMismatch);
    // Fill to 4 sectors before the end, then finish exactly.
    for (uint64_t lba = 0; lba + 64 <= cap - 4; lba += 64)
        arr_.write_pattern(lba, 64, lba);
    uint64_t wp = arr_.vol->zone_info(0).value().wp;
    if (wp < cap - 4)
        arr_.write_pattern(wp, static_cast<uint32_t>(cap - 4 - wp), 998);
    arr_.write_pattern(cap - 4, 4, 999); // exactly to the end: OK
    EXPECT_EQ(arr_.vol->zone_info(0).value().state,
              raizn::ZoneState::kFull);
    r = arr_.write(cap, pattern_data(4, 1));
    ASSERT_TRUE(r.status.is_ok()) << "zone 1 starts at cap";
}

TEST_F(VolumeTest, FullStripeParityOnDevices)
{
    // Write one full stripe and verify the parity stripe unit on the
    // physical parity device equals the XOR of the data units.
    auto data = pattern_data(64, 42);
    ASSERT_TRUE(arr_.write(0, data).status.is_ok());

    const Layout &l = arr_.vol->layout();
    uint32_t pdev = l.parity_dev(0, 0);
    auto pr = submit_sync(*arr_.loop, *arr_.devs[pdev],
                          IoRequest::read(0, 16));
    ASSERT_TRUE(pr.status.is_ok());
    std::vector<uint8_t> expect(16 * kSectorSize, 0);
    for (uint32_t k = 0; k < 4; ++k) {
        xor_bytes(expect.data(), data.data() + k * 16 * kSectorSize,
                  16 * kSectorSize);
    }
    EXPECT_EQ(pr.data, expect);
    EXPECT_EQ(arr_.vol->stats().full_parity_writes, 1u);
    EXPECT_EQ(arr_.vol->stats().partial_parity_logs, 0u);
}

TEST_F(VolumeTest, PartialWritesLogPartialParity)
{
    arr_.write_pattern(0, 4, 1); // much less than a stripe
    EXPECT_EQ(arr_.vol->stats().partial_parity_logs, 1u);
    EXPECT_EQ(arr_.vol->stats().full_parity_writes, 0u);
    arr_.write_pattern(4, 4, 2);
    EXPECT_EQ(arr_.vol->stats().partial_parity_logs, 2u);
    // Completing the stripe writes full parity and stops pp logging.
    arr_.write_pattern(8, 56, 3);
    EXPECT_EQ(arr_.vol->stats().full_parity_writes, 1u);
}

TEST_F(VolumeTest, WriteSpanningStripes)
{
    // 2.5 stripes in one request: two full parity writes, one partial
    // parity log.
    arr_.write_pattern(0, 160, 77);
    EXPECT_EQ(arr_.vol->stats().full_parity_writes, 2u);
    EXPECT_EQ(arr_.vol->stats().partial_parity_logs, 1u);
    arr_.expect_pattern(0, 160, 77);
}

TEST_F(VolumeTest, FuaWriteFlushesDependencies)
{
    arr_.write_pattern(0, 8, 1); // not persisted
    uint64_t before = arr_.vol->stats().fua_dependency_flushes;
    WriteFlags fua;
    fua.fua = true;
    arr_.write_pattern(8, 4, 2, fua);
    EXPECT_GT(arr_.vol->stats().fua_dependency_flushes, before)
        << "FUA must flush devices holding non-persisted stripe units";
    // A second FUA write immediately after needs fewer flushes (the
    // prefix is already durable).
    uint64_t mid = arr_.vol->stats().fua_dependency_flushes;
    arr_.write_pattern(12, 4, 3, fua);
    EXPECT_LE(arr_.vol->stats().fua_dependency_flushes - mid, mid - before);
}

TEST_F(VolumeTest, ZoneResetAllowsRewrite)
{
    arr_.write_pattern(0, 64, 1);
    ASSERT_TRUE(arr_.reset_zone(0).status.is_ok());
    auto zi = arr_.vol->zone_info(0).value();
    EXPECT_EQ(zi.state, raizn::ZoneState::kEmpty);
    EXPECT_EQ(zi.wp, 0u);
    arr_.write_pattern(0, 64, 2);
    arr_.expect_pattern(0, 64, 2);
    EXPECT_EQ(arr_.vol->stats().zone_resets, 1u);
    EXPECT_EQ(arr_.vol->gen_counters().get(0), 1u);
}

TEST_F(VolumeTest, ResetBlocksConcurrentIo)
{
    arr_.write_pattern(0, 16, 1);
    // Issue reset and a write without waiting: the write must queue
    // behind the reset and then fail WP validation (zone now empty, it
    // targeted lba 16) — i.e. it must NOT interleave with the reset.
    bool reset_done = false, write_done = false;
    IoResult write_result;
    arr_.vol->reset_zone(0, [&](IoResult) { reset_done = true; });
    arr_.vol->write(16, pattern_data(4, 2), {}, [&](IoResult r) {
        write_result = std::move(r);
        write_done = true;
    });
    arr_.loop->run_until_pred([&] { return reset_done && write_done; });
    EXPECT_TRUE(reset_done);
    EXPECT_EQ(write_result.status.code(),
              StatusCode::kWritePointerMismatch);
    // A write at the new wp (0) succeeds.
    arr_.write_pattern(0, 4, 3);
}

TEST_F(VolumeTest, ResetLogsWrittenBeforeReset)
{
    arr_.write_pattern(0, 16, 1);
    ASSERT_TRUE(arr_.reset_zone(0).status.is_ok());
    // Zone reset logs are persisted to two devices' general metadata
    // zones; verify via metadata write accounting.
    uint64_t md_writes = 0;
    for (uint32_t d = 0; d < 5; ++d)
        md_writes += arr_.vol->md_manager().md_sectors_written(d);
    EXPECT_GT(md_writes, 0u);
}

TEST_F(VolumeTest, OpenZoneLimitEnforced)
{
    // max_open_zones = 11, but only 5 logical zones exist; shrink the
    // limit by rebuilding an array with fewer device open slots.
    TestArray small;
    {
        ZnsDeviceConfig dc = TestArray::device_config(8, 128);
        dc.max_open_zones = 5; // logical limit = 2
        dc.max_active_zones = 8;
        small.loop = std::make_unique<EventLoop>();
        std::vector<BlockDevice *> ptrs;
        for (uint32_t i = 0; i < 5; ++i) {
            small.devs.push_back(
                std::make_unique<ZnsDevice>(small.loop.get(), dc));
            ptrs.push_back(small.devs.back().get());
        }
        auto res = RaiznVolume::create(small.loop.get(), ptrs,
                                       TestArray::array_config());
        ASSERT_TRUE(res.is_ok());
        small.vol = std::move(res).value();
    }
    EXPECT_EQ(small.vol->max_open_zones(), 2u);
    ASSERT_TRUE(small.write(0 * 512, pattern_data(4, 1)).status.is_ok());
    ASSERT_TRUE(small.write(1 * 512, pattern_data(4, 1)).status.is_ok());
    auto r = small.write(2 * 512, pattern_data(4, 1));
    EXPECT_EQ(r.status.code(), StatusCode::kTooManyOpenZones);
    // Resetting one frees a slot.
    ASSERT_TRUE(small.reset_zone(0).status.is_ok());
    EXPECT_TRUE(small.write(2 * 512, pattern_data(4, 1)).status.is_ok());
}

TEST_F(VolumeTest, FinishZoneMakesFull)
{
    arr_.write_pattern(0, 16, 1);
    ASSERT_TRUE(arr_.finish_zone(0).status.is_ok());
    auto zi = arr_.vol->zone_info(0).value();
    EXPECT_EQ(zi.state, raizn::ZoneState::kFull);
    auto r = arr_.write(16, pattern_data(4, 2));
    EXPECT_EQ(r.status.code(), StatusCode::kNoSpace);
    // Data before finish still readable; after reads zeros.
    arr_.expect_pattern(0, 16, 1);
    auto rd = arr_.read(16, 4);
    ASSERT_TRUE(rd.status.is_ok());
    for (uint8_t b : rd.data)
        EXPECT_EQ(b, 0);
}

TEST_F(VolumeTest, InvalidRequests)
{
    EXPECT_EQ(arr_.read(arr_.vol->capacity(), 1).status.code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(arr_.write(arr_.vol->capacity(), pattern_data(1, 1))
                  .status.code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(arr_.reset_zone(99).status.code(),
              StatusCode::kInvalidArgument);
    EXPECT_FALSE(arr_.vol->zone_info(99).is_ok());
}

TEST_F(VolumeTest, MetadataGcRecyclesZones)
{
    // Hammer partial-parity logging until the parity-log zone fills
    // and the manager must switch to a swap zone.
    uint64_t cap = arr_.vol->zone_capacity();
    uint64_t writes = 0;
    while (arr_.vol->md_manager().gc_runs() == 0 && writes < 4000) {
        for (uint64_t lba = 0; lba < cap && arr_.vol->md_manager().gc_runs() == 0;
             lba += 4) {
            arr_.write_pattern(lba, 4, lba);
            writes++;
        }
        if (arr_.vol->md_manager().gc_runs() == 0)
            ASSERT_TRUE(arr_.reset_zone(0).status.is_ok());
    }
    EXPECT_GT(arr_.vol->md_manager().gc_runs(), 0u)
        << "metadata GC never triggered after " << writes << " writes";
    // The volume still works after GC.
    arr_.loop->run();
    auto zi = arr_.vol->zone_info(0).value();
    if (zi.state == raizn::ZoneState::kEmpty) {
        arr_.write_pattern(0, 4, 12345);
        arr_.expect_pattern(0, 4, 12345);
    }
}

TEST_F(VolumeTest, StatsAccounting)
{
    arr_.write_pattern(0, 64, 1);
    arr_.write_pattern(64, 4, 2);
    arr_.read(0, 16);
    arr_.flush();
    const VolumeStats &st = arr_.vol->stats();
    EXPECT_EQ(st.logical_writes, 2u);
    EXPECT_EQ(st.sectors_written, 68u);
    EXPECT_EQ(st.logical_reads, 1u);
    EXPECT_EQ(st.sectors_read, 16u);
    EXPECT_EQ(st.flushes, 1u);
}

TEST_F(VolumeTest, MemoryFootprintReported)
{
    arr_.write_pattern(0, 64, 1);
    auto fp = arr_.vol->memory_footprint();
    EXPECT_GT(fp.gen_counters, 0u);
    EXPECT_GT(fp.stripe_buffers, 0u);
    EXPECT_GT(fp.zone_descriptors, 0u);
}

TEST_F(VolumeTest, CleanRemountPreservesData)
{
    arr_.write_pattern(0, 100, 1);
    arr_.write_pattern(512, 32, 2); // zone 1
    ASSERT_TRUE(arr_.remount().is_ok());
    arr_.expect_pattern(0, 100, 1);
    arr_.expect_pattern(512, 32, 2);
    // Write pointers restored.
    EXPECT_EQ(arr_.vol->zone_info(0).value().wp, 100u);
    EXPECT_EQ(arr_.vol->zone_info(1).value().wp, 512u + 32);
    // Zone remains appendable at the right position.
    arr_.write_pattern(100, 4, 3);
    arr_.expect_pattern(100, 4, 3);
}

TEST_F(VolumeTest, RemountBumpsGenerationOfEmptyZones)
{
    arr_.write_pattern(0, 16, 1);
    uint64_t gen_z3 = arr_.vol->gen_counters().get(3);
    ASSERT_TRUE(arr_.remount().is_ok());
    EXPECT_GT(arr_.vol->gen_counters().get(3), gen_z3);
}

} // namespace
} // namespace raizn
