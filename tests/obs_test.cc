/**
 * @file
 * Unit tests for the observability layer (src/obs): histogram
 * percentile edge cases, metrics-registry handle semantics and
 * external linkage, trace-ring wraparound, Chrome trace JSON shape
 * (golden file), stage breakdown, and request coverage math.
 */
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/histogram.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "raizn/throttle.h"
#include "raizn_test_util.h"

namespace raizn::obs {
namespace {

// ---------------------------------------------------------------------
// Histogram percentile edge cases (the registry exports these, so the
// corner behaviors are part of the metrics contract).

TEST(HistogramEdge, EmptyIsAllZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(0.0), 0u);
    EXPECT_EQ(h.p50(), 0u);
    EXPECT_EQ(h.p999(), 0u);
}

TEST(HistogramEdge, SingleSampleEveryPercentile)
{
    Histogram h;
    h.add(1000);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min(), 1000u);
    EXPECT_EQ(h.max(), 1000u);
    // Log-bucketed: every quantile lands in the sample's bucket, so
    // the answer is within the bucket's ~1.6% relative error.
    for (double q : {0.0, 0.5, 0.99, 1.0}) {
        EXPECT_NEAR(static_cast<double>(h.percentile(q)), 1000.0,
                    1000.0 * 0.02)
            << "q=" << q;
    }
}

TEST(HistogramEdge, MergeMatchesCombinedStream)
{
    Histogram a, b, both;
    for (uint64_t v = 1; v <= 1000; ++v) {
        (v % 2 ? a : b).add(v * 100);
        both.add(v * 100);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_EQ(a.min(), both.min());
    EXPECT_EQ(a.max(), both.max());
    EXPECT_DOUBLE_EQ(a.mean(), both.mean());
    for (double q : {0.1, 0.5, 0.95, 0.999})
        EXPECT_EQ(a.percentile(q), both.percentile(q)) << "q=" << q;
}

TEST(HistogramEdge, MergeIntoEmpty)
{
    Histogram a, b;
    b.add(42);
    a.merge(b);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_EQ(a.max(), 42u);
}

// ---------------------------------------------------------------------
// Window snapshots (the timeline's per-interval percentiles).

TEST(HistogramEdge, WindowOfEmptyHistogramIsEmpty)
{
    Histogram h;
    Histogram w = h.window();
    EXPECT_EQ(w.count(), 0u);
    EXPECT_EQ(w.min(), 0u);
    EXPECT_EQ(w.max(), 0u);
    EXPECT_EQ(w.p50(), 0u);
}

TEST(HistogramEdge, WindowSingleSampleHasExactMinMax)
{
    Histogram h;
    h.add(12345);
    Histogram w = h.window();
    EXPECT_EQ(w.count(), 1u);
    // Window min/max are tracked exactly, not bucket-rounded.
    EXPECT_EQ(w.min(), 12345u);
    EXPECT_EQ(w.max(), 12345u);
    // The cumulative view is untouched by taking a window.
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.min(), 12345u);
}

TEST(HistogramEdge, WindowResetsSoNextWindowIsIndependent)
{
    Histogram h;
    h.add(100);
    h.add(200);
    Histogram w1 = h.window();
    EXPECT_EQ(w1.count(), 2u);
    // Nothing recorded since: the next window is empty even though the
    // cumulative histogram is not.
    Histogram w2 = h.window();
    EXPECT_EQ(w2.count(), 0u);
    EXPECT_EQ(h.count(), 2u);

    h.add(1000000);
    Histogram w3 = h.window();
    EXPECT_EQ(w3.count(), 1u);
    EXPECT_EQ(w3.min(), 1000000u);
    EXPECT_EQ(w3.max(), 1000000u);
    EXPECT_GT(w3.p50(), 100000u)
        << "window percentiles must not mix in pre-window samples";
}

TEST(HistogramEdge, DeltaOfSnapshotsMatchesWindow)
{
    Histogram h;
    for (uint64_t v = 1; v <= 100; ++v)
        h.add(v * 10);
    Histogram prev = h; // timeline keeps a copy of the last snapshot
    for (uint64_t v = 1; v <= 50; ++v)
        h.add(v * 1000);
    Histogram d = Histogram::delta(h, prev);
    EXPECT_EQ(d.count(), 50u);
    // Bucket-bounded min/max still bracket the true values.
    EXPECT_LE(d.min(), 1000u);
    EXPECT_GE(d.max(), 50000u * 90 / 100);

    // A cleared/restarted source (count went backwards) falls back to
    // the current cumulative view instead of a bogus negative diff.
    Histogram fresh;
    fresh.add(7);
    Histogram d2 = Histogram::delta(fresh, prev);
    EXPECT_EQ(d2.count(), 1u);
}

// ---------------------------------------------------------------------
// Registry handle semantics.

TEST(MetricsRegistry, HandlesAreStableAndReused)
{
    MetricsRegistry reg;
    Counter *c1 = reg.counter("raizn.write.count");
    Counter *c2 = reg.counter("raizn.write.count");
    EXPECT_EQ(c1, c2) << "same name must return the same handle";
    EXPECT_EQ(reg.size(), 1u);

    c1->inc();
    c1->inc(4);
    EXPECT_EQ(c2->value(), 5u);

    LatencyMetric *l1 = reg.latency("raizn.write.total_ns");
    LatencyMetric *l2 = reg.latency("raizn.write.total_ns");
    EXPECT_EQ(l1, l2);
    EXPECT_EQ(reg.size(), 2u);

    // Handles stay valid as the registry grows (pointer stability).
    for (int i = 0; i < 100; ++i)
        reg.counter("filler." + std::to_string(i));
    c1->inc();
    EXPECT_EQ(reg.counter("raizn.write.count")->value(), 6u);
}

TEST(MetricsRegistry, LinkedCounterReadsThrough)
{
    MetricsRegistry reg;
    uint64_t field = 7;
    reg.link_counter("layer.field", &field);
    field = 123; // hot path mutates the plain struct field
    auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 1u);
    EXPECT_EQ(snap[0].name, "layer.field");
    EXPECT_EQ(snap[0].value, 123u);
}

struct TestStats {
    uint64_t alpha = 1;
    uint64_t beta = 2;

    template <typename Fn>
    void
    for_each_field(Fn fn) const
    {
        fn("alpha", alpha);
        fn("beta", beta);
    }
};

TEST(MetricsRegistry, LinkStatsAndRenderShareFieldList)
{
    TestStats s;
    EXPECT_EQ(render_stats(s), "alpha=1 beta=2");

    MetricsRegistry reg;
    link_stats(reg, "test", s);
    s.beta = 9;
    auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap[0].name, "test.alpha");
    EXPECT_EQ(snap[0].value, 1u);
    EXPECT_EQ(snap[1].name, "test.beta");
    EXPECT_EQ(snap[1].value, 9u);
}

TEST(MetricsRegistry, SnapshotSortedAndJsonShape)
{
    MetricsRegistry reg;
    reg.counter("z.last")->inc(3);
    reg.counter("a.first")->inc(1);
    reg.latency("m.lat_ns")->record(5000);
    auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 3u);
    EXPECT_EQ(snap[0].name, "a.first");
    EXPECT_EQ(snap[1].name, "m.lat_ns");
    EXPECT_EQ(snap[2].name, "z.last");

    std::string j = reg.to_json();
    EXPECT_NE(j.find("\"a.first\": 1"), std::string::npos) << j;
    EXPECT_NE(j.find("\"z.last\": 3"), std::string::npos) << j;
    EXPECT_NE(j.find("\"m.lat_ns\": {\"count\": 1"), std::string::npos)
        << j;
    EXPECT_NE(j.find("\"p99_ns\""), std::string::npos) << j;
}

TEST(MetricsRegistry, RenderKvEmpty)
{
    EXPECT_EQ(render_kv({}), "");
}

// ---------------------------------------------------------------------
// Trace ring.

TEST(TraceRecorder, RingWraparoundKeepsNewest)
{
    TraceRecorder tr(4);
    for (uint64_t i = 0; i < 7; ++i)
        tr.add_span("s", i, kTrackRequest, i * 10, i * 10 + 5);
    EXPECT_EQ(tr.size(), 4u);
    EXPECT_EQ(tr.capacity(), 4u);
    EXPECT_EQ(tr.dropped(), 3u);
    auto spans = tr.spans();
    ASSERT_EQ(spans.size(), 4u);
    // Oldest-first iteration over the surviving window: reqs 3..6.
    for (size_t i = 0; i < 4; ++i)
        EXPECT_EQ(spans[i].req, i + 3) << "slot " << i;

    tr.clear();
    EXPECT_EQ(tr.size(), 0u);
    EXPECT_EQ(tr.dropped(), 0u);
}

TEST(TraceRecorder, OpenSpanCutByCrashNeverEntersRing)
{
    TraceRecorder tr(16);
    uint64_t done = tr.begin_span("finished", 1, kTrackRequest, 100);
    uint64_t cut = tr.begin_span("cut", 1, kTrackDevBase, 150);
    tr.end_span(done, 200);
    (void)cut; // never ended: simulated power cut
    auto spans = tr.spans();
    ASSERT_EQ(spans.size(), 1u);
    EXPECT_STREQ(spans[0].stage, "finished");
    EXPECT_EQ(spans[0].start, 100u);
    EXPECT_EQ(spans[0].end, 200u);
    // Ending an unknown token is a no-op, not a crash.
    tr.end_span(999999, 300);
    EXPECT_EQ(tr.size(), 1u);
}

TEST(TraceRecorder, RequestIdsNeverZero)
{
    TraceRecorder tr(4);
    uint64_t a = tr.next_request_id();
    uint64_t b = tr.next_request_id();
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_NE(a, b);
}

// Golden file: the exact Chrome trace_event JSON for a tiny recorder.
// Catches accidental format drift — chrome://tracing and Perfetto both
// parse this shape.
TEST(TraceRecorder, ChromeJsonGolden)
{
    TraceRecorder tr(8);
    tr.add_span("raizn.write", 1, kTrackRequest, 1000, 3500);
    tr.add_span("write.data", 1, kTrackDevBase, 1500, 2500);
    tr.instant("power_cut", 0, kTrackMetadata, 4000);
    const char *want =
        "{\"traceEvents\":[\n"
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
        "\"args\":{\"name\":\"requests\"}},\n"
        "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,"
        "\"tid\":0,\"args\":{\"sort_index\":0}},\n"
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,"
        "\"args\":{\"name\":\"metadata\"}},\n"
        "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,"
        "\"tid\":1,\"args\":{\"sort_index\":1}},\n"
        "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":2,"
        "\"args\":{\"name\":\"dev0\"}},\n"
        "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,"
        "\"tid\":2,\"args\":{\"sort_index\":2}},\n"
        "{\"name\":\"raizn.write\",\"ph\":\"X\",\"pid\":1,\"tid\":0,"
        "\"ts\":1.000,\"dur\":2.500,\"args\":{\"req\":1}},\n"
        "{\"name\":\"write.data\",\"ph\":\"X\",\"pid\":1,\"tid\":2,"
        "\"ts\":1.500,\"dur\":1.000,\"args\":{\"req\":1}},\n"
        "{\"name\":\"power_cut\",\"ph\":\"i\",\"pid\":1,\"tid\":1,"
        "\"ts\":4.000,\"s\":\"t\",\"args\":{\"req\":0}}\n"
        "],\"displayTimeUnit\":\"ns\"}\n";
    EXPECT_EQ(tr.to_chrome_json(/*num_devices=*/1), want);
}

TEST(TraceRecorder, StageBreakdownSortsByTotalAndNotesDrops)
{
    TraceRecorder tr(4);
    tr.add_span("small", 1, kTrackRequest, 0, 1000);
    tr.add_span("big", 1, kTrackRequest, 0, 100000);
    tr.add_span("big", 2, kTrackRequest, 0, 100000);
    std::string bd = tr.stage_breakdown();
    size_t big = bd.find("big"), small = bd.find("small");
    ASSERT_NE(big, std::string::npos) << bd;
    ASSERT_NE(small, std::string::npos) << bd;
    EXPECT_LT(big, small) << "dominant stage must read first:\n" << bd;
    EXPECT_EQ(bd.find("ring wrapped"), std::string::npos);

    tr.add_span("extra", 3, kTrackRequest, 0, 10);
    tr.add_span("extra", 3, kTrackRequest, 0, 10); // forces wraparound
    EXPECT_NE(tr.stage_breakdown().find("ring wrapped"),
              std::string::npos);
}

TEST(TraceRecorder, RequestCoverageUnionsOverlaps)
{
    TraceRecorder tr(16);
    tr.add_span("total", 7, kTrackRequest, 0, 100);
    // Overlapping children [0,60) and [30,80): union covers 80/100.
    tr.add_span("child_a", 7, kTrackDevBase, 0, 60);
    tr.add_span("child_b", 7, kTrackDevBase + 1, 30, 80);
    // A different request's spans must not count.
    tr.add_span("child_a", 8, kTrackDevBase, 0, 100);
    EXPECT_DOUBLE_EQ(tr.request_coverage(7, "total"), 0.8);
    // Unknown request or missing total span: 0.
    EXPECT_DOUBLE_EQ(tr.request_coverage(99, "total"), 0.0);
    EXPECT_DOUBLE_EQ(tr.request_coverage(8, "total"), 0.0);
}

TEST(TraceRecorder, RequestCoverageClampsToWindow)
{
    TraceRecorder tr(16);
    tr.add_span("total", 1, kTrackRequest, 100, 200);
    // Child exceeds the window on both sides; only [100,200) counts.
    tr.add_span("child", 1, kTrackDevBase, 50, 400);
    EXPECT_DOUBLE_EQ(tr.request_coverage(1, "total"), 1.0);
}

// ---------------------------------------------------------------------
// Integration: a throttled rebuild's pump emits stage spans that
// survive into the Chrome export — the triage artifact for Fig. 12
// investigations.

TEST(TraceRecorder, ThrottledRebuildSpansReachChromeExport)
{
    TestArray arr;
    arr.make();
    MetricsRegistry reg;
    TraceRecorder trace;
    arr.vol->attach_observability(&reg, &trace);

    // Fill one logical zone so the rebuild has real work.
    const uint64_t ss = 64; // su 16 × 4 data units
    for (uint64_t s = 0; s < 8; ++s)
        arr.write_pattern(s * ss, static_cast<uint32_t>(ss), s + 1);
    arr.flush();

    RaiznVolume::LifecycleConfig lc;
    lc.auto_rebuild = false;
    lc.throttle.rate_sectors_per_sec = 100000;
    lc.throttle.burst_sectors = 32;
    arr.vol->set_lifecycle(std::move(lc));

    arr.vol->mark_device_failed(2);
    arr.devs[2]->replace();
    Status st = arr.rebuild(2);
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    EXPECT_GT(arr.vol->stats().rebuild_throttle_stalls, 0u)
        << "rebuild was not actually throttled";

    std::set<std::string> stages;
    for (const TraceSpan &sp : trace.spans())
        stages.insert(sp.stage);
    const char *want[] = {"rebuild.device", "rebuild.zone",
                          "rebuild.reconstruct", "rebuild.write"};
    for (const char *w : want)
        EXPECT_EQ(stages.count(w), 1u) << "missing span: " << w;

    std::string json = trace.to_chrome_json(arr.vol->num_devices());
    for (const char *w : want)
        EXPECT_NE(json.find(w), std::string::npos)
            << "span absent from Chrome export: " << w;
    EXPECT_NE(json.find("rebuild.checkpoint"), std::string::npos)
        << "checkpoint instants absent from Chrome export";
}

} // namespace
} // namespace raizn::obs
