/**
 * @file
 * Transient-fault injection and resilience tests: the fault-injecting
 * device decorator (determinism, one-shot injections), the volume's
 * retry/backoff and watchdog behavior, health-based failure
 * escalation, fail-slow detection, CRC-based corruption detection
 * with degraded-read fallback, and the scrubber's read-repair.
 */
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "fault/fault_device.h"
#include "raizn/volume.h"
#include "sim/event_loop.h"
#include "zns/zns_device.h"

namespace raizn {
namespace {

/// TestArray variant with a FaultInjectingDevice in front of every
/// ZnsDevice. `cfgs` has one FaultConfig per device.
struct FaultArray {
    std::unique_ptr<EventLoop> loop;
    std::vector<std::unique_ptr<ZnsDevice>> devs;
    std::vector<std::unique_ptr<FaultInjectingDevice>> fdevs;
    std::unique_ptr<RaiznVolume> vol;

    void
    make(const std::vector<FaultConfig> &cfgs, uint32_t su = 16,
         uint32_t nzones = 8, uint64_t zone_cap = 128)
    {
        uint32_t ndev = static_cast<uint32_t>(cfgs.size());
        loop = std::make_unique<EventLoop>();
        devs.clear();
        fdevs.clear();
        std::vector<BlockDevice *> ptrs;
        for (uint32_t i = 0; i < ndev; ++i) {
            ZnsDeviceConfig dc;
            dc.nzones = nzones;
            dc.zone_size = zone_cap;
            dc.zone_capacity = zone_cap;
            dc.max_open_zones = 14;
            dc.max_active_zones = 14;
            dc.atomic_write_sectors = 4;
            dc.data_mode = DataMode::kStore;
            dc.name = "zns" + std::to_string(i);
            devs.push_back(std::make_unique<ZnsDevice>(loop.get(), dc));
            fdevs.push_back(std::make_unique<FaultInjectingDevice>(
                loop.get(), devs.back().get(), cfgs[i]));
            ptrs.push_back(fdevs.back().get());
        }
        RaiznConfig rc;
        rc.num_devices = ndev;
        rc.su_sectors = su;
        auto res = RaiznVolume::create(loop.get(), ptrs, rc);
        ASSERT_TRUE(res.is_ok()) << res.status().to_string();
        vol = std::move(res).value();
    }

    IoResult
    write(uint64_t lba, std::vector<uint8_t> data, WriteFlags flags = {})
    {
        IoResult out;
        bool done = false;
        vol->write(lba, std::move(data), flags, [&](IoResult r) {
            out = std::move(r);
            done = true;
        });
        loop->run_until_pred([&] { return done; });
        EXPECT_TRUE(done);
        return out;
    }

    IoResult
    read(uint64_t lba, uint32_t nsectors)
    {
        IoResult out;
        bool done = false;
        vol->read(lba, nsectors, [&](IoResult r) {
            out = std::move(r);
            done = true;
        });
        loop->run_until_pred([&] { return done; });
        EXPECT_TRUE(done);
        return out;
    }

    IoResult
    flush()
    {
        IoResult out;
        bool done = false;
        vol->flush([&](IoResult r) {
            out = std::move(r);
            done = true;
        });
        loop->run_until_pred([&] { return done; });
        return out;
    }

    IoResult
    reset_zone(uint32_t zone)
    {
        IoResult out;
        bool done = false;
        vol->reset_zone(zone, [&](IoResult r) {
            out = std::move(r);
            done = true;
        });
        loop->run_until_pred([&] { return done; });
        return out;
    }

    IoResult
    finish_zone(uint32_t zone)
    {
        IoResult out;
        bool done = false;
        vol->finish_zone(zone, [&](IoResult r) {
            out = std::move(r);
            done = true;
        });
        loop->run_until_pred([&] { return done; });
        return out;
    }

    void
    write_pattern(uint64_t lba, uint32_t nsectors, uint64_t seed,
                  WriteFlags flags = {})
    {
        auto r = write(lba, pattern_data(nsectors, seed), flags);
        ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
    }

    void
    expect_pattern(uint64_t lba, uint32_t nsectors, uint64_t seed)
    {
        auto r = read(lba, nsectors);
        ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
        EXPECT_EQ(r.data, pattern_data(nsectors, seed))
            << "data mismatch at lba " << lba;
    }
};

std::vector<FaultConfig>
no_faults(uint32_t ndev = 5)
{
    return std::vector<FaultConfig>(ndev);
}

// ---- Decorator behavior ------------------------------------------------

TEST(FaultDeviceTest, SameSeedSameFaultSchedule)
{
    EventLoop loop;
    ZnsDeviceConfig dc;
    dc.nzones = 4;
    dc.zone_size = 64;
    dc.zone_capacity = 64;
    dc.data_mode = DataMode::kStore;

    FaultConfig fc;
    fc.seed = 42;
    fc.read_error_rate = 0.3;
    fc.bitflip_rate = 0.2;

    std::vector<std::vector<StatusCode>> outcomes;
    std::vector<FaultStats> fstats;
    for (int run = 0; run < 2; ++run) {
        ZnsDevice dev(&loop, dc);
        FaultInjectingDevice fdev(&loop, &dev, fc);
        auto w = submit_sync(loop, dev,
                             IoRequest::write(0, pattern_data(32, 7)));
        ASSERT_TRUE(w.status.is_ok());
        std::vector<StatusCode> codes;
        for (int i = 0; i < 64; ++i) {
            auto r = submit_sync(loop, fdev, IoRequest::read(0, 8));
            codes.push_back(r.status.code());
        }
        outcomes.push_back(std::move(codes));
        fstats.push_back(fdev.fault_stats());
    }
    EXPECT_EQ(outcomes[0], outcomes[1]);
    EXPECT_EQ(fstats[0].read_errors, fstats[1].read_errors);
    EXPECT_EQ(fstats[0].bitflips, fstats[1].bitflips);
    EXPECT_GT(fstats[0].read_errors, 0u);
    EXPECT_GT(fstats[0].bitflips, 0u);
}

TEST(FaultDeviceTest, InjectedErrorNeverReachesDevice)
{
    EventLoop loop;
    ZnsDeviceConfig dc;
    dc.nzones = 4;
    dc.zone_size = 64;
    dc.zone_capacity = 64;
    dc.data_mode = DataMode::kStore;
    ZnsDevice dev(&loop, dc);
    FaultInjectingDevice fdev(&loop, &dev, FaultConfig{});

    fdev.inject_once(IoOp::kWrite, FaultKind::kIoError);
    auto w = submit_sync(loop, fdev,
                         IoRequest::write(0, pattern_data(8, 1)));
    EXPECT_EQ(w.status.code(), StatusCode::kIoError);
    // The device never saw the command: wp is untouched, a resubmit
    // lands exactly where the failed attempt would have.
    auto zi = dev.zone_info(0);
    ASSERT_TRUE(zi.is_ok());
    EXPECT_EQ(zi.value().wp, 0u);
    auto w2 = submit_sync(loop, fdev,
                          IoRequest::write(0, pattern_data(8, 1)));
    EXPECT_TRUE(w2.status.is_ok());
}

TEST(FaultDeviceTest, TornWriteLeavesPrefixAndAdvancesWp)
{
    EventLoop loop;
    ZnsDeviceConfig dc;
    dc.nzones = 4;
    dc.zone_size = 64;
    dc.zone_capacity = 64;
    dc.data_mode = DataMode::kStore;
    ZnsDevice dev(&loop, dc);
    FaultInjectingDevice fdev(&loop, &dev, FaultConfig{});

    fdev.inject_once(IoOp::kWrite, FaultKind::kTornWrite);
    auto w = submit_sync(loop, fdev,
                         IoRequest::write(0, pattern_data(16, 3)));
    EXPECT_EQ(w.status.code(), StatusCode::kIoError);
    auto zi = dev.zone_info(0);
    ASSERT_TRUE(zi.is_ok());
    EXPECT_GT(zi.value().wp, 0u); // a prefix reached the media
    EXPECT_LT(zi.value().wp, 16u); // but not the whole payload
    EXPECT_EQ(fdev.fault_stats().torn_writes, 1u);
}

// ---- Volume resilience -------------------------------------------------

TEST(FaultVolumeTest, TransientErrorsAreRetriedTransparently)
{
    std::vector<FaultConfig> cfgs(5);
    for (uint32_t i = 0; i < 5; ++i) {
        cfgs[i].seed = 100 + i;
        cfgs[i].read_error_rate = 0.05;
        cfgs[i].write_error_rate = 0.05;
        cfgs[i].zone_error_rate = 0.02;
    }
    FaultArray a;
    a.make(cfgs);
    for (uint32_t i = 0; i < 16; ++i)
        a.write_pattern(i * 64, 64, 1000 + i);
    ASSERT_TRUE(a.flush().status.is_ok());
    for (uint32_t i = 0; i < 16; ++i)
        a.expect_pattern(i * 64, 64, 1000 + i);
    EXPECT_GT(a.vol->stats().io_retries, 0u);
    EXPECT_EQ(a.vol->failed_device(), -1);
}

TEST(FaultVolumeTest, TornWriteRecoveredViaWritePointerProbe)
{
    FaultArray a;
    a.make(no_faults());
    // Tear the first multi-sector data sub-IO of the next write.
    a.fdevs[1]->inject_once(IoOp::kWrite, FaultKind::kTornWrite);
    a.write_pattern(0, 64, 77);
    ASSERT_TRUE(a.flush().status.is_ok());
    a.expect_pattern(0, 64, 77);
    EXPECT_GT(a.vol->stats().io_retries, 0u);
    EXPECT_EQ(a.vol->failed_device(), -1);
}

TEST(FaultVolumeTest, StuckIoTripsWatchdogAndRetries)
{
    FaultArray a;
    a.make(no_faults());
    RaiznVolume::ResilienceConfig rc;
    rc.retry.io_deadline = 10 * kNsPerMs; // stuck delay is 50ms
    a.vol->set_resilience(rc);

    a.write_pattern(0, 64, 5);
    a.fdevs[2]->inject_once(IoOp::kRead, FaultKind::kStuck);
    a.expect_pattern(0, 64, 5);
    EXPECT_GT(a.vol->stats().io_timeouts, 0u);
    EXPECT_EQ(a.vol->failed_device(), -1);
}

TEST(FaultVolumeTest, PersistentReadErrorEscalatesAndReadsDegraded)
{
    FaultArray a;
    a.make(no_faults());
    a.write_pattern(0, 64, 9);
    ASSERT_TRUE(a.flush().status.is_ok());

    // Exhaust the whole retry budget (1 attempt + 3 retries) of one
    // read on device 2: health escalation must kick the member and
    // the read must complete from parity.
    for (int i = 0; i < 4; ++i)
        a.fdevs[2]->inject_once(IoOp::kRead, FaultKind::kIoError);
    a.expect_pattern(0, 64, 9);
    EXPECT_EQ(a.vol->failed_device(), 2);
    EXPECT_GT(a.vol->stats().degraded_reads, 0u);
    EXPECT_GT(a.vol->health().device(2).op_failures, 0u);
}

TEST(FaultVolumeTest, FailSlowDeviceIsDetected)
{
    std::vector<FaultConfig> cfgs(5);
    cfgs[3].latency_multiplier = 16.0; // one clearly slow member
    FaultArray a;
    a.make(cfgs);
    for (uint32_t i = 0; i < 12; ++i)
        a.write_pattern(i * 64, 64, 400 + i);
    ASSERT_TRUE(a.flush().status.is_ok());
    for (uint32_t i = 0; i < 12; ++i)
        a.expect_pattern(i * 64, 64, 400 + i);

    EXPECT_TRUE(a.vol->health().fail_slow(3));
    for (uint32_t d = 0; d < 5; ++d) {
        if (d != 3) {
            EXPECT_FALSE(a.vol->health().fail_slow(d)) << "dev " << d;
        }
    }
    // Advisory only: the slow device is not failed.
    EXPECT_EQ(a.vol->failed_device(), -1);
}

TEST(FaultVolumeTest, BitflipCaughtByChecksumAndServedFromParity)
{
    FaultArray a;
    a.make(no_faults());
    a.write_pattern(0, 256, 31);
    ASSERT_TRUE(a.flush().status.is_ok());

    // Flip one bit in the payload of the next read on every device:
    // whichever device serves the extent, the checksum catalog must
    // catch it and reconstruction must return the true data.
    for (auto &fd : a.fdevs)
        fd->inject_once(IoOp::kRead, FaultKind::kBitflip);
    a.expect_pattern(0, 256, 31);
    EXPECT_GT(a.vol->stats().crc_mismatches, 0u);
    EXPECT_GT(a.vol->stats().degraded_reads, 0u);
    EXPECT_EQ(a.vol->failed_device(), -1);
}

// ---- Scrub -------------------------------------------------------------

TEST(ScrubTest, RepairsAllInjectedSilentCorruptions)
{
    FaultArray a;
    a.make(no_faults());
    // Fill logical zone 0 (8 stripes of 64 sectors).
    for (uint32_t i = 0; i < 8; ++i)
        a.write_pattern(i * 64, 64, 2000 + i);
    ASSERT_TRUE(a.flush().status.is_ok());

    // Silently corrupt N distinct stripe units on the media, bypassing
    // the host entirely.
    const Layout &lay = a.vol->layout();
    struct Hit {
        uint64_t stripe;
        uint32_t unit;
    };
    std::vector<Hit> hits = {{0, 0}, {2, 1}, {4, 3}, {7, 2}};
    for (size_t i = 0; i < hits.size(); ++i) {
        uint32_t dev = lay.data_dev(0, hits[i].stripe, hits[i].unit);
        uint64_t pba = lay.slot_pba(0, hits[i].stripe);
        a.devs[dev]->corrupt(pba, 16, 0xbad0 + i);
    }

    RaiznVolume::ScrubReport rep;
    ASSERT_TRUE(a.vol->scrub_all(&rep).is_ok());
    EXPECT_EQ(rep.parity_mismatches, hits.size());
    EXPECT_EQ(rep.repaired_units, hits.size()); // 100% repaired
    EXPECT_EQ(rep.unrecoverable, 0u);
    EXPECT_EQ(a.vol->stats().read_repairs, hits.size());

    // A second pass finds nothing left to repair.
    RaiznVolume::ScrubReport rep2;
    ASSERT_TRUE(a.vol->scrub_all(&rep2).is_ok());
    EXPECT_EQ(rep2.parity_mismatches, 0u);
    EXPECT_EQ(rep2.repaired_units, 0u);

    // And every pattern reads back clean.
    for (uint32_t i = 0; i < 8; ++i)
        a.expect_pattern(i * 64, 64, 2000 + i);
}

TEST(ScrubTest, RepairsCorruptParity)
{
    FaultArray a;
    a.make(no_faults());
    for (uint32_t i = 0; i < 4; ++i)
        a.write_pattern(i * 64, 64, 3000 + i);
    ASSERT_TRUE(a.flush().status.is_ok());

    const Layout &lay = a.vol->layout();
    uint32_t pdev = lay.parity_dev(0, 1);
    a.devs[pdev]->corrupt(lay.slot_pba(0, 1), 16, 0xfeed);

    RaiznVolume::ScrubReport rep;
    ASSERT_TRUE(a.vol->scrub_all(&rep).is_ok());
    EXPECT_EQ(rep.parity_mismatches, 1u);
    EXPECT_EQ(rep.repaired_parity, 1u);
    EXPECT_EQ(rep.repaired_units, 0u);
    EXPECT_EQ(rep.unrecoverable, 0u);

    RaiznVolume::ScrubReport rep2;
    ASSERT_TRUE(a.vol->scrub_all(&rep2).is_ok());
    EXPECT_EQ(rep2.parity_mismatches, 0u);
    for (uint32_t i = 0; i < 4; ++i)
        a.expect_pattern(i * 64, 64, 3000 + i);
}

TEST(ScrubTest, BackgroundScrubberRepairsAndReports)
{
    FaultArray a;
    a.make(no_faults());
    for (uint32_t i = 0; i < 8; ++i)
        a.write_pattern(i * 64, 64, 5000 + i);
    ASSERT_TRUE(a.flush().status.is_ok());

    const Layout &lay = a.vol->layout();
    uint32_t dev = lay.data_dev(0, 3, 1);
    a.devs[dev]->corrupt(lay.slot_pba(0, 3), 16, 0xdead);

    uint64_t passes = 0;
    RaiznVolume::ScrubReport last;
    a.vol->start_scrubber(100 * kNsPerUs,
                          [&](const RaiznVolume::ScrubReport &r) {
                              passes++;
                              last = r;
                          });
    EXPECT_TRUE(a.vol->scrubber_running());
    a.loop->run_until_pred([&] { return passes >= 1; });
    a.vol->stop_scrubber();
    EXPECT_FALSE(a.vol->scrubber_running());

    EXPECT_GE(last.stripes_scanned, 8u);
    EXPECT_EQ(last.repaired_units, 1u);
    EXPECT_EQ(last.unrecoverable, 0u);
    for (uint32_t i = 0; i < 8; ++i)
        a.expect_pattern(i * 64, 64, 5000 + i);
}

// ---- Acceptance: mixed workload under a full fault schedule ------------

TEST(FaultVolumeTest, MixedWorkloadUnderSeededFaultsKeepsIntegrity)
{
    std::vector<FaultConfig> cfgs(5);
    for (uint32_t i = 0; i < 5; ++i) {
        cfgs[i].seed = 0xace0 + i;
        cfgs[i].read_error_rate = 0.005;
        cfgs[i].write_error_rate = 0.005;
        cfgs[i].zone_error_rate = 0.002;
        cfgs[i].torn_write_rate = 0.002;
        cfgs[i].bitflip_rate = 0.002;
    }
    // One fail-slow member with occasionally stuck commands.
    cfgs[4].latency_multiplier = 4.0;
    cfgs[4].stuck_rate = 0.02;

    FaultArray a;
    a.make(cfgs);
    RaiznVolume::ResilienceConfig rc;
    rc.retry.io_deadline = 10 * kNsPerMs;
    a.vol->set_resilience(rc);

    // Mixed workload: stripe-aligned and unaligned writes, FUA,
    // flushes, zone resets and finishes, interleaved reads.
    a.write_pattern(0, 64, 1);
    a.write_pattern(64, 24, 2);
    a.write_pattern(88, 40, 3);
    ASSERT_TRUE(a.flush().status.is_ok());
    a.expect_pattern(0, 64, 1);

    WriteFlags fua;
    fua.fua = true;
    uint64_t z1 = a.vol->layout().zone_start_lba(1);
    a.write_pattern(z1, 48, 4, fua);
    a.write_pattern(z1 + 48, 16, 5);
    a.expect_pattern(z1, 48, 4);

    uint64_t z2 = a.vol->layout().zone_start_lba(2);
    a.write_pattern(z2, 128, 6);
    ASSERT_TRUE(a.finish_zone(2).status.is_ok());

    // Zone 0's data is verified before its reset discards it.
    a.expect_pattern(64, 24, 2);
    a.expect_pattern(88, 40, 3);
    ASSERT_TRUE(a.reset_zone(0).status.is_ok());
    a.write_pattern(0, 32, 7);
    ASSERT_TRUE(a.flush().status.is_ok());

    // Zero integrity violations: every surviving range reads back
    // exactly as written.
    a.expect_pattern(0, 32, 7);
    a.expect_pattern(z1, 48, 4);
    a.expect_pattern(z1 + 48, 16, 5);
    a.expect_pattern(z2, 128, 6);

    // And a scrub pass confirms parity consistency end to end.
    RaiznVolume::ScrubReport rep;
    ASSERT_TRUE(a.vol->scrub_all(&rep).is_ok());
    EXPECT_EQ(rep.unrecoverable, 0u);
    EXPECT_EQ(rep.repaired_units, 0u);
}

} // namespace
} // namespace raizn
