/**
 * @file
 * Unit tests for RAIZN address translation (paper §4.1).
 */
#include <gtest/gtest.h>

#include <set>

#include "raizn/layout.h"

namespace raizn {
namespace {

Layout
make_layout(uint32_t ndev = 5, uint32_t su = 16, uint32_t md = 3)
{
    RaiznConfig cfg;
    cfg.num_devices = ndev;
    cfg.su_sectors = su;
    cfg.md_zones_per_device = md;
    DeviceGeometry g;
    g.zoned = true;
    g.nzones = 19;
    g.zone_size = 1024;
    g.zone_capacity = 1024;
    g.nsectors = g.zone_size * g.nzones;
    return Layout(cfg, g);
}

TEST(LayoutTest, GeometryDerivation)
{
    Layout l = make_layout();
    EXPECT_EQ(l.num_devices(), 5u);
    EXPECT_EQ(l.data_units(), 4u);
    EXPECT_EQ(l.stripe_sectors(), 64u);
    EXPECT_EQ(l.num_logical_zones(), 16u); // 19 - 3 metadata
    EXPECT_EQ(l.logical_zone_cap(), 4096u); // 4 * 1024
    EXPECT_EQ(l.logical_capacity(), 4096u * 16);
    EXPECT_EQ(l.stripes_per_zone(), 64u);
    EXPECT_EQ(l.first_md_zone(), 16u);
    EXPECT_EQ(l.md_zone_start(0), 16u * 1024);
}

TEST(LayoutTest, ParityRotatesEveryStripe)
{
    Layout l = make_layout();
    std::set<uint32_t> seen;
    for (uint64_t s = 0; s < 5; ++s)
        seen.insert(l.parity_dev(0, s));
    EXPECT_EQ(seen.size(), 5u) << "parity must rotate across devices";
    // And differs between zones for the same stripe (reset-log
    // rotation, §5.2).
    EXPECT_NE(l.parity_dev(0, 0), l.parity_dev(1, 0));
}

TEST(LayoutTest, DataDevsExcludeParityAndCoverRest)
{
    Layout l = make_layout();
    for (uint64_t s = 0; s < 10; ++s) {
        uint32_t p = l.parity_dev(2, s);
        std::set<uint32_t> devs;
        for (uint32_t k = 0; k < l.data_units(); ++k) {
            uint32_t d = l.data_dev(2, s, k);
            EXPECT_NE(d, p);
            devs.insert(d);
        }
        EXPECT_EQ(devs.size(), l.data_units());
    }
}

TEST(LayoutTest, DataPosRoundTrips)
{
    Layout l = make_layout();
    for (uint64_t s = 0; s < 8; ++s) {
        for (uint32_t k = 0; k < l.data_units(); ++k) {
            uint32_t d = l.data_dev(1, s, k);
            EXPECT_EQ(l.data_pos_of_dev(1, s, d), static_cast<int>(k));
        }
        EXPECT_EQ(l.data_pos_of_dev(1, s, l.parity_dev(1, s)), -1);
    }
}

TEST(LayoutTest, MapSectorArithmetic)
{
    Layout l = make_layout();
    // First sector of zone 0 lives at PBA 0 on the first data device
    // of stripe 0.
    uint32_t dev;
    uint64_t pba;
    l.map_sector(0, &dev, &pba);
    EXPECT_EQ(dev, l.data_dev(0, 0, 0));
    EXPECT_EQ(pba, 0u);

    // Sector su lands on the second data unit, same slot offset 0.
    l.map_sector(16, &dev, &pba);
    EXPECT_EQ(dev, l.data_dev(0, 0, 1));
    EXPECT_EQ(pba, 0u);

    // One full stripe later: slot advances by su on the devices.
    l.map_sector(64, &dev, &pba);
    EXPECT_EQ(dev, l.data_dev(0, 1, 0));
    EXPECT_EQ(pba, 16u);

    // Zone 1 maps into physical zone 1.
    l.map_sector(4096, &dev, &pba);
    EXPECT_EQ(dev, l.data_dev(1, 0, 0));
    EXPECT_EQ(pba, 1024u);
}

TEST(LayoutTest, MapRangeSplitsAtStripeUnits)
{
    Layout l = make_layout();
    // 40 sectors starting mid-unit: 8 + 16 + 16 split.
    auto exts = l.map_range(8, 40);
    ASSERT_EQ(exts.size(), 3u);
    EXPECT_EQ(exts[0].nsectors, 8u);
    EXPECT_EQ(exts[1].nsectors, 16u);
    EXPECT_EQ(exts[2].nsectors, 16u);
    EXPECT_EQ(exts[0].lba, 8u);
    EXPECT_EQ(exts[1].lba, 16u);
    EXPECT_EQ(exts[2].lba, 32u);
    // Consecutive units land on different devices.
    EXPECT_NE(exts[0].dev, exts[1].dev);
}

TEST(LayoutTest, MapRangeCoversWholeZone)
{
    Layout l = make_layout();
    auto exts = l.map_range(0, l.logical_zone_cap());
    uint64_t total = 0;
    for (const auto &e : exts)
        total += e.nsectors;
    EXPECT_EQ(total, l.logical_zone_cap());
    // Each device receives exactly zone_capacity data+0 parity sectors?
    // No: data extents only — per device, data sectors are
    // (D-1)/D... just verify extents never overlap per device.
    std::map<uint32_t, std::set<uint64_t>> used;
    for (const auto &e : exts) {
        for (uint32_t i = 0; i < e.nsectors; ++i) {
            EXPECT_TRUE(used[e.dev].insert(e.pba + i).second)
                << "overlapping extents on device " << e.dev;
        }
    }
}

TEST(LayoutTest, ProgressFromDevice)
{
    Layout l = make_layout();
    // No sectors -> no progress.
    EXPECT_EQ(l.progress_from_device(0, 0, 0), 0u);
    // First data device of stripe 0 with 4 sectors: logical fill 4.
    uint32_t d0 = l.data_dev(0, 0, 0);
    EXPECT_EQ(l.progress_from_device(0, d0, 4), 4u);
    // Full first slot: fill = su.
    EXPECT_EQ(l.progress_from_device(0, d0, 16), 16u);
    // Second data device with full slot: fill = 2*su.
    uint32_t d1 = l.data_dev(0, 0, 1);
    EXPECT_EQ(l.progress_from_device(0, d1, 16), 32u);
    // Parity present for stripe 0 implies the whole stripe.
    uint32_t p = l.parity_dev(0, 0);
    EXPECT_EQ(l.progress_from_device(0, p, 16), 64u);
}

TEST(LayoutTest, MinimumArrayThreeDevices)
{
    Layout l = make_layout(3);
    EXPECT_EQ(l.data_units(), 2u);
    EXPECT_EQ(l.stripe_sectors(), 32u);
    std::set<uint32_t> seen;
    for (uint64_t s = 0; s < 3; ++s)
        seen.insert(l.parity_dev(0, s));
    EXPECT_EQ(seen.size(), 3u);
}

} // namespace
} // namespace raizn
