/**
 * @file
 * Unit tests for the metadata zone manager: role bindings, appends,
 * swap-zone GC with checkpointing (Fig. 4), scan/replay ordering,
 * and swap borrowing.
 */
#include <gtest/gtest.h>

#include "raizn/layout.h"
#include "raizn/md_manager.h"
#include "sim/event_loop.h"
#include "zns/zns_device.h"

namespace raizn {
namespace {

class MdManagerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        cfg_.num_devices = 3;
        cfg_.su_sectors = 4;
        cfg_.md_zones_per_device = 4; // extra swap zone
        for (int i = 0; i < 3; ++i) {
            ZnsDeviceConfig dc;
            dc.nzones = 8;
            dc.zone_size = 32; // tiny zones: GC triggers fast
            devs_.push_back(std::make_unique<ZnsDevice>(&loop_, dc));
            ptrs_.push_back(devs_.back().get());
        }
        layout_ = std::make_unique<Layout>(cfg_, ptrs_[0]->geometry());
        md_ = std::make_unique<MdManager>(&loop_, layout_.get(), ptrs_);
        ASSERT_TRUE(md_->format().is_ok());
    }

    Status
    append_sync(uint32_t dev, MdZoneRole role, MdAppend app,
                bool durable = false)
    {
        Status out;
        bool done = false;
        md_->append(dev, role, std::move(app), durable, [&](Status s) {
            out = s;
            done = true;
        });
        loop_.run_until_pred([&] { return done; });
        return out;
    }

    static MdAppend
    reset_record(uint32_t zone, uint64_t gen)
    {
        MdAppend app;
        app.header.type = MdType::kZoneResetLog;
        app.header.generation = gen;
        app.inline_data = encode_zone_reset({zone});
        return app;
    }

    EventLoop loop_;
    RaiznConfig cfg_;
    std::vector<std::unique_ptr<ZnsDevice>> devs_;
    std::vector<BlockDevice *> ptrs_;
    std::unique_ptr<Layout> layout_;
    std::unique_ptr<MdManager> md_;
};

TEST_F(MdManagerTest, FormatBindsRoles)
{
    // Each device: md zone 0 = general, 1 = parity log (role records
    // consume 1 sector each).
    EXPECT_EQ(md_->active_zone_wp(0, MdZoneRole::kGeneral),
              layout_->md_zone_start(0) + 1);
    EXPECT_EQ(md_->active_zone_wp(0, MdZoneRole::kParityLog),
              layout_->md_zone_start(1) + 1);
}

TEST_F(MdManagerTest, AppendAdvancesWp)
{
    uint64_t before = md_->active_zone_wp(1, MdZoneRole::kGeneral);
    ASSERT_TRUE(append_sync(1, MdZoneRole::kGeneral,
                            reset_record(0, 0)).is_ok());
    EXPECT_EQ(md_->active_zone_wp(1, MdZoneRole::kGeneral), before + 1);
}

TEST_F(MdManagerTest, ScanReturnsAppendedEntries)
{
    ASSERT_TRUE(append_sync(0, MdZoneRole::kGeneral,
                            reset_record(3, 7), true)
                    .is_ok());
    auto logs = md_->scan();
    ASSERT_TRUE(logs.is_ok());
    bool found = false;
    for (const MdEntry &e : logs.value()[0].entries) {
        if (e.header.type == MdType::kZoneResetLog) {
            auto rec = decode_zone_reset(e);
            ASSERT_TRUE(rec.is_ok());
            EXPECT_EQ(rec.value().logical_zone, 3u);
            EXPECT_EQ(e.header.generation, 7u);
            found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(MdManagerTest, GcSwitchesToSwapZone)
{
    // Snapshot provider that checkpoints one marker record.
    md_->set_snapshot_provider([](uint32_t, MdZoneRole role) {
        std::vector<MdAppend> out;
        if (role == MdZoneRole::kGeneral) {
            MdAppend app;
            app.header.type = MdType::kZoneResetLog;
            app.header.generation = 42;
            app.inline_data = encode_zone_reset({9});
            out.push_back(std::move(app));
        }
        return out;
    });
    // Zone capacity is 32 sectors; role record took 1: fill it.
    for (int i = 0; i < 80; ++i) {
        ASSERT_TRUE(append_sync(0, MdZoneRole::kGeneral,
                                reset_record(1, static_cast<uint64_t>(i)))
                        .is_ok());
    }
    loop_.run();
    EXPECT_GT(md_->gc_runs(), 0u);
    // After GC, scan still yields the checkpointed marker plus recent
    // entries, flagged as checkpoint.
    auto logs = md_->scan();
    ASSERT_TRUE(logs.is_ok());
    bool checkpointed = false;
    size_t entries = 0;
    for (const MdEntry &e : logs.value()[0].entries) {
        entries++;
        if (e.header.checkpoint &&
            e.header.type == MdType::kZoneResetLog) {
            auto rec = decode_zone_reset(e);
            if (rec.is_ok() && rec.value().logical_zone == 9)
                checkpointed = true;
        }
    }
    EXPECT_TRUE(checkpointed) << "checkpoint entry missing";
    EXPECT_LT(entries, 80u) << "old zone should have been recycled";
}

TEST_F(MdManagerTest, GcIsolatedPerRole)
{
    // Filling the parity-log zone must not disturb the general zone.
    uint64_t general_wp = md_->active_zone_wp(0, MdZoneRole::kGeneral);
    for (int i = 0; i < 80; ++i) {
        MdAppend app;
        app.header.type = MdType::kPartialParity;
        app.header.start_lba = static_cast<uint64_t>(i);
        app.header.end_lba = static_cast<uint64_t>(i) + 1;
        app.inline_data.assign(12, 0);
        app.payload.assign(kSectorSize, 0xaa);
        ASSERT_TRUE(
            append_sync(0, MdZoneRole::kParityLog, std::move(app))
                .is_ok());
    }
    loop_.run();
    EXPECT_EQ(md_->active_zone_wp(0, MdZoneRole::kGeneral), general_wp);
}

TEST_F(MdManagerTest, BorrowAndReturnSwap)
{
    auto sw = md_->borrow_swap(2);
    ASSERT_TRUE(sw.is_ok());
    uint32_t idx = sw.value();
    EXPECT_GE(idx, 2u); // zones 0/1 hold the roles
    // Both remaining swaps borrowed -> exhausted.
    auto sw2 = md_->borrow_swap(2);
    ASSERT_TRUE(sw2.is_ok());
    EXPECT_FALSE(md_->borrow_swap(2).is_ok());
    md_->return_swap(2, idx);
    EXPECT_TRUE(md_->borrow_swap(2).is_ok());
}

TEST_F(MdManagerTest, FailedDeviceAppendsSucceedAsNoops)
{
    devs_[1]->fail();
    ASSERT_TRUE(append_sync(1, MdZoneRole::kGeneral,
                            reset_record(0, 0)).is_ok());
    auto logs = md_->scan();
    ASSERT_TRUE(logs.is_ok());
    EXPECT_FALSE(logs.value()[1].alive);
    EXPECT_TRUE(logs.value()[1].entries.empty());
}

TEST_F(MdManagerTest, ScanSurvivesPowerCutDuringGc)
{
    md_->set_snapshot_provider(
        [](uint32_t, MdZoneRole) { return std::vector<MdAppend>(); });
    for (int i = 0; i < 40; ++i) {
        ASSERT_TRUE(append_sync(0, MdZoneRole::kGeneral,
                                reset_record(1, static_cast<uint64_t>(i)))
                        .is_ok());
    }
    // Trigger appends near the GC boundary but cut power before the
    // old zone's reset can land.
    md_->append(0, MdZoneRole::kGeneral, reset_record(2, 99), false,
                [](Status) {});
    for (auto &d : devs_)
        d->power_cut({PowerLossSpec::Policy::kDropCache, 5});
    EventLoop loop2;
    for (auto &d : devs_)
        d->reattach(&loop2);
    MdManager md2(&loop2, layout_.get(), ptrs_);
    auto logs = md2.scan();
    ASSERT_TRUE(logs.is_ok()) << logs.status().to_string();
    // Whatever survived is parseable and the manager is appendable.
    Status out;
    bool done = false;
    md2.append(0, MdZoneRole::kGeneral, reset_record(3, 1), true,
               [&](Status s) {
                   out = s;
                   done = true;
               });
    loop2.run_until_pred([&] { return done; });
    EXPECT_TRUE(out.is_ok()) << out.to_string();
}

} // namespace
} // namespace raizn
