/**
 * @file
 * Unit tests for the conventional SSD emulation: block semantics,
 * FTL mapping, garbage collection onset and write amplification.
 */
#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/event_loop.h"
#include "zns/conv_device.h"

namespace raizn {
namespace {

ConvDeviceConfig
small_config()
{
    ConvDeviceConfig cfg;
    cfg.nsectors = 16 * kMiB / kSectorSize; // 4096 pages
    cfg.op_ratio = 0.10;
    cfg.pages_per_block = 64;
    cfg.gc_low_blocks = 3;
    cfg.gc_high_blocks = 6;
    return cfg;
}

class ConvDeviceTest : public ::testing::Test
{
  protected:
    ConvDeviceTest() : dev_(&loop_, small_config()) {}

    IoResult
    run(IoRequest req)
    {
        return submit_sync(loop_, dev_, std::move(req));
    }

    EventLoop loop_;
    ConvDevice dev_;
};

TEST_F(ConvDeviceTest, PayloadMustAgreeWithNsectors)
{
    IoRequest bad;
    bad.op = IoOp::kWrite;
    bad.slba = 0;
    bad.nsectors = 2;
    bad.data.assign(kSectorSize - 1, 0xcd);
    EXPECT_EQ(run(std::move(bad)).status.code(),
              StatusCode::kInvalidArgument);

    IoRequest wrong;
    wrong.op = IoOp::kWrite;
    wrong.slba = 0;
    wrong.nsectors = 8;
    wrong.data = pattern_data(4, 1);
    EXPECT_EQ(run(std::move(wrong)).status.code(),
              StatusCode::kInvalidArgument);

    // Timing-only (empty payload) and matching payloads still work.
    EXPECT_TRUE(run(IoRequest::write_len(0, 8)).status.is_ok());
    EXPECT_TRUE(run(IoRequest::write(0, pattern_data(8, 2))).status.is_ok());
}

TEST_F(ConvDeviceTest, RandomWritesAndOverwritesAllowed)
{
    ASSERT_TRUE(run(IoRequest::write(100, pattern_data(4, 1))).status);
    ASSERT_TRUE(run(IoRequest::write(50, pattern_data(4, 2))).status);
    // Overwrite is legal on a block device.
    ASSERT_TRUE(run(IoRequest::write(100, pattern_data(4, 3))).status);
    auto r = run(IoRequest::read(100, 4));
    EXPECT_EQ(r.data, pattern_data(4, 3));
    r = run(IoRequest::read(50, 4));
    EXPECT_EQ(r.data, pattern_data(4, 2));
}

TEST_F(ConvDeviceTest, OutOfRangeRejected)
{
    uint64_t n = dev_.geometry().nsectors;
    EXPECT_EQ(run(IoRequest::write_len(n - 1, 2)).status.code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(run(IoRequest::read(n, 1)).status.code(),
              StatusCode::kInvalidArgument);
}

TEST_F(ConvDeviceTest, ZoneOpsNotSupported)
{
    EXPECT_EQ(run(IoRequest::zone_reset(0)).status.code(),
              StatusCode::kNotSupported);
    EXPECT_FALSE(dev_.zone_info(0).is_ok());
}

TEST_F(ConvDeviceTest, NoGcBeforeFirstFill)
{
    // Write 50% of the device once: plenty of free blocks remain.
    uint64_t half = dev_.geometry().nsectors / 2;
    for (uint64_t lba = 0; lba < half; lba += 64)
        ASSERT_TRUE(run(IoRequest::write_len(lba, 64)).status.is_ok());
    EXPECT_EQ(dev_.stats().gc_page_copies, 0u);
    EXPECT_DOUBLE_EQ(dev_.ftl().write_amplification(), 1.0);
}

TEST_F(ConvDeviceTest, OverwriteTriggersGc)
{
    uint64_t n = dev_.geometry().nsectors;
    // Fill the device fully, then overwrite randomly at page
    // granularity; mixed-validity victims force GC copies (OP is 10%).
    for (uint64_t lba = 0; lba < n; lba += 64)
        ASSERT_TRUE(run(IoRequest::write_len(lba, 64)).status.is_ok());
    Rng rng(5);
    for (uint64_t i = 0; i < n; ++i) {
        uint64_t lba = rng.next_below(n);
        ASSERT_TRUE(run(IoRequest::write_len(lba, 1)).status.is_ok());
    }
    EXPECT_GT(dev_.stats().gc_page_copies, 0u);
    EXPECT_GT(dev_.stats().gc_erases, 0u);
    EXPECT_GT(dev_.ftl().write_amplification(), 1.0);
}

TEST_F(ConvDeviceTest, SequentialBlockAlignedOverwriteAvoidsCopies)
{
    // Whole-block invalidation leaves zero-valid victims: GC erases
    // without copying (write amp stays 1).
    uint64_t n = dev_.geometry().nsectors;
    for (int pass = 0; pass < 2; ++pass) {
        for (uint64_t lba = 0; lba < n; lba += 64)
            ASSERT_TRUE(run(IoRequest::write_len(lba, 64)).status.is_ok());
    }
    EXPECT_EQ(dev_.stats().gc_page_copies, 0u);
    EXPECT_DOUBLE_EQ(dev_.ftl().write_amplification(), 1.0);
}

TEST_F(ConvDeviceTest, SequentialOverwriteHasLowWriteAmp)
{
    // Pure sequential overwrite invalidates whole blocks: WA stays
    // near 1 even under GC.
    uint64_t n = dev_.geometry().nsectors;
    for (int pass = 0; pass < 3; ++pass) {
        for (uint64_t lba = 0; lba < n; lba += 64)
            ASSERT_TRUE(run(IoRequest::write_len(lba, 64)).status.is_ok());
    }
    EXPECT_LT(dev_.ftl().write_amplification(), 1.2);
}

TEST_F(ConvDeviceTest, InterleavedStreamsRaiseWriteAmp)
{
    // Mimic Fig. 10's first phase: 5 interleaved sequential streams mix
    // lifetimes within erase blocks, so overwriting one region later
    // must copy the other streams' still-valid pages.
    uint64_t n = dev_.geometry().nsectors;
    uint64_t region = n / 5;
    // Interleave 4-sector writes across the 5 regions.
    for (uint64_t off = 0; off < region; off += 4) {
        for (int t = 0; t < 5; ++t) {
            uint64_t lba = static_cast<uint64_t>(t) * region + off;
            ASSERT_TRUE(run(IoRequest::write_len(lba, 4)).status.is_ok());
        }
    }
    // Now overwrite region 0 twice sequentially.
    for (int pass = 0; pass < 2; ++pass) {
        for (uint64_t lba = 0; lba < region; lba += 4)
            ASSERT_TRUE(run(IoRequest::write_len(lba, 4)).status.is_ok());
    }
    EXPECT_GT(dev_.ftl().write_amplification(), 1.5);
}

TEST_F(ConvDeviceTest, GcSlowsDownUserWrites)
{
    ConvDeviceConfig cfg = small_config();
    cfg.data_mode = DataMode::kNone;
    ConvDevice dev(&loop_, cfg);
    uint64_t n = dev.geometry().nsectors;

    auto fill_pass = [&]() -> Tick {
        Tick start = loop_.now();
        for (uint64_t lba = 0; lba < n; lba += 64) {
            EXPECT_TRUE(submit_sync(loop_, dev,
                                    IoRequest::write_len(lba, 64))
                            .status.is_ok());
        }
        return loop_.now() - start;
    };
    // First pass fills the device with no GC; the page-granularity
    // random overwrite pass then pays heavy GC copies.
    Tick clean = fill_pass();
    Rng rng(11);
    Tick start = loop_.now();
    for (uint64_t i = 0; i < n; i += 4) {
        uint64_t lba = rng.next_below(n - 4);
        ASSERT_TRUE(submit_sync(loop_, dev, IoRequest::write_len(lba, 4))
                        .status.is_ok());
    }
    Tick dirty = loop_.now() - start;
    EXPECT_GT(dirty, clean * 2) << "GC regime must slow user writes";
}

TEST_F(ConvDeviceTest, TrimDropsMappings)
{
    ASSERT_TRUE(run(IoRequest::write_len(0, 64)).status.is_ok());
    EXPECT_TRUE(dev_.ftl().is_mapped(0));
    dev_.trim(0, 64);
    EXPECT_FALSE(dev_.ftl().is_mapped(0));
}

TEST_F(ConvDeviceTest, FailAndReplace)
{
    ASSERT_TRUE(run(IoRequest::write(0, pattern_data(4, 1))).status);
    dev_.fail();
    EXPECT_EQ(run(IoRequest::read(0, 4)).status.code(),
              StatusCode::kOffline);
    dev_.replace();
    auto r = run(IoRequest::read(0, 4));
    ASSERT_TRUE(r.status.is_ok());
    for (uint8_t b : r.data)
        EXPECT_EQ(b, 0);
}

} // namespace
} // namespace raizn
