/**
 * @file
 * Unit tests for the byte-provenance ledger (obs/ledger.h): the
 * WAF/RAF amplification math and its per-cause decomposition, the
 * breakdown/heatmap exports, the conservation audit's three violation
 * classes (untagged submit, unattributed device bytes, over-attributed
 * ledger bytes), and rebind semantics across a device swap. Cells are
 * driven both directly via record() (math tests) and through a real
 * ZnsDevice with set_ledger installed (audit tests), so the structural
 * tie between DeviceStats and ledger cells is covered from both ends.
 */
#include <gtest/gtest.h>

#include <string>

#include "obs/ledger.h"
#include "obs/metrics.h"
#include "sim/event_loop.h"
#include "zns/zns_device.h"

namespace raizn {
namespace {

using obs::Cause;
using obs::IoLedger;
using obs::LedgerAudit;

ZnsDeviceConfig
small_config(const std::string &name)
{
    ZnsDeviceConfig cfg;
    cfg.nzones = 4;
    cfg.zone_size = 64;
    cfg.zone_capacity = 64;
    cfg.atomic_write_sectors = 4;
    cfg.data_mode = DataMode::kStore;
    cfg.name = name;
    return cfg;
}

/// Ledger over one idle ZnsDevice: record() cells move, device
/// counters do not (the audit tests cover the coupled path).
struct LedgerFixture {
    EventLoop loop;
    ZnsDevice dev;
    IoLedger ledger;

    LedgerFixture() : dev(&loop, small_config("led0"))
    {
        ledger.attach_device(0, &dev);
    }
};

TEST(LedgerMath, WafDecomposesByCause)
{
    LedgerFixture f;
    // 100 user sectors acked; the device absorbed 100 user_data + 25
    // parity + 25 pp_log sectors => WAF 1.5, split 1.0/0.25/0.25.
    f.ledger.record(0, IoOp::kWrite, Cause::kUserData, 0, 100);
    f.ledger.record(0, IoOp::kWrite, Cause::kParity, 64, 25);
    f.ledger.record(0, IoOp::kAppend, Cause::kPpLog, 128, 25);
    f.ledger.note_user_write(100);

    EXPECT_DOUBLE_EQ(f.ledger.waf(), 1.5);
    EXPECT_DOUBLE_EQ(f.ledger.waf_component(Cause::kUserData), 1.0);
    EXPECT_DOUBLE_EQ(f.ledger.waf_component(Cause::kParity), 0.25);
    EXPECT_DOUBLE_EQ(f.ledger.waf_component(Cause::kPpLog), 0.25);
    EXPECT_DOUBLE_EQ(f.ledger.waf_component(Cause::kRebuild), 0.0);
    EXPECT_EQ(f.ledger.device_write_bytes(), 150u * kSectorSize);
    EXPECT_EQ(f.ledger.user_write_bytes(), 100u * kSectorSize);
}

TEST(LedgerMath, RafCountsDeviceReadsOverUserReads)
{
    LedgerFixture f;
    // 25 user sectors acked, 50 device sectors touched (degraded
    // reconstruction reads whole stripes) => RAF 2.0.
    f.ledger.record(0, IoOp::kRead, Cause::kUserData, 0, 50);
    f.ledger.note_user_read(25);

    EXPECT_DOUBLE_EQ(f.ledger.raf(), 2.0);
    EXPECT_EQ(f.ledger.device_read_bytes(), 50u * kSectorSize);
}

TEST(LedgerMath, ZeroDenominatorsGiveZeroNotNan)
{
    LedgerFixture f;
    f.ledger.record(0, IoOp::kWrite, Cause::kGc, 0, 8);
    EXPECT_DOUBLE_EQ(f.ledger.waf(), 0.0);
    EXPECT_DOUBLE_EQ(f.ledger.raf(), 0.0);
    EXPECT_DOUBLE_EQ(f.ledger.waf_component(Cause::kGc), 0.0);
}

TEST(LedgerExport, BreakdownCsvListsEachActiveCause)
{
    LedgerFixture f;
    f.ledger.record(0, IoOp::kWrite, Cause::kUserData, 0, 40);
    f.ledger.record(0, IoOp::kWrite, Cause::kParity, 64, 10);
    f.ledger.note_user_write(40);

    std::string csv = f.ledger.breakdown_csv();
    EXPECT_NE(csv.find("cause,write_bytes,read_bytes,ops,waf_component"),
              std::string::npos);
    EXPECT_NE(csv.find("user_data,"), std::string::npos);
    EXPECT_NE(csv.find("parity,"), std::string::npos);
    // Causes with no traffic stay out of the report.
    EXPECT_EQ(csv.find("rebuild,"), std::string::npos);

    std::string table = f.ledger.breakdown_table();
    EXPECT_NE(table.find("user_data"), std::string::npos);
    EXPECT_NE(table.find("parity"), std::string::npos);
}

TEST(LedgerExport, HeatmapPinsCellsToDeviceZoneAndCause)
{
    LedgerFixture f;
    // zone_size=64: slba 0 -> zone 0, slba 70 -> zone 1.
    f.ledger.record(0, IoOp::kWrite, Cause::kUserData, 0, 16);
    f.ledger.record(0, IoOp::kWrite, Cause::kParity, 70, 4);
    f.ledger.record(0, IoOp::kZoneReset, Cause::kZoneMgmt, 70, 0);

    std::string csv = f.ledger.heatmap_csv();
    EXPECT_NE(csv.find("dev,zone,cause,write_sectors,read_sectors,"
                       "write_ops,read_ops,flushes,zone_resets,"
                       "zone_mgmt_ops"),
              std::string::npos);
    EXPECT_NE(csv.find("0,0,user_data,16,0,1,0,0,0,0"),
              std::string::npos);
    EXPECT_NE(csv.find("0,1,parity,4,0,1,0,0,0,0"), std::string::npos);
    EXPECT_NE(csv.find("0,1,zone_mgmt,0,0,0,0,0,1,0"),
              std::string::npos);
    // Only non-empty cells are emitted: 3 data rows + header.
    size_t rows = 0;
    for (char c : csv)
        rows += c == '\n';
    EXPECT_EQ(rows, 4u);
}

TEST(LedgerAuditTest, CleanWhenDeviceRecordsThroughLedger)
{
    EventLoop loop;
    ZnsDevice dev(&loop, small_config("led0"));
    IoLedger ledger;
    ledger.attach_device(0, &dev);
    dev.set_ledger(&ledger, 0);

    IoRequest w = IoRequest::write(0, pattern_data(8, 1));
    w.cause = Cause::kUserData;
    ASSERT_TRUE(submit_sync(loop, dev, std::move(w)).status.is_ok());
    IoRequest fl = IoRequest::flush();
    fl.cause = Cause::kWalMd;
    ASSERT_TRUE(submit_sync(loop, dev, std::move(fl)).status.is_ok());

    LedgerAudit audit = ledger.audit();
    EXPECT_TRUE(audit.ok()) << audit.summary();
    EXPECT_EQ(ledger.cause_write_bytes(Cause::kUserData),
              8u * kSectorSize);
}

TEST(LedgerAuditTest, FlagsDeviceBytesTheLedgerNeverSaw)
{
    EventLoop loop;
    ZnsDevice dev(&loop, small_config("led0"));
    IoLedger ledger;
    ledger.attach_device(0, &dev);
    // No set_ledger: device counters move, cells stay empty.
    ASSERT_TRUE(
        submit_sync(loop, dev, IoRequest::write(0, pattern_data(8, 1)))
            .status.is_ok());

    LedgerAudit audit = ledger.audit();
    EXPECT_FALSE(audit.ok());
    EXPECT_NE(audit.summary().find("dev0"), std::string::npos);
}

TEST(LedgerAuditTest, FlagsOverAttributedBytes)
{
    LedgerFixture f;
    // Ledger claims 8 written sectors the idle device never counted.
    f.ledger.record(0, IoOp::kWrite, Cause::kUserData, 0, 8);
    EXPECT_FALSE(f.ledger.audit().ok());
}

TEST(LedgerAuditTest, FlagsUntaggedSubmitByStage)
{
    LedgerFixture f;
    f.ledger.note_untagged_submit("raizn.write.chunk");
    LedgerAudit audit = f.ledger.audit();
    EXPECT_FALSE(audit.ok());
    EXPECT_NE(audit.summary().find("raizn.write.chunk"),
              std::string::npos);
    EXPECT_EQ(f.ledger.untagged_ops(), 1u);
}

TEST(LedgerAuditTest, RebindKeepsCellsAndRebaselines)
{
    EventLoop loop;
    ZnsDevice dev(&loop, small_config("led0"));
    IoLedger ledger;
    ledger.attach_device(0, &dev);
    dev.set_ledger(&ledger, 0);
    IoRequest w = IoRequest::write(0, pattern_data(8, 1));
    w.cause = Cause::kUserData;
    ASSERT_TRUE(submit_sync(loop, dev, std::move(w)).status.is_ok());
    ASSERT_TRUE(ledger.audit().ok());

    // Factory-fresh swap: counters restart at zero; without the
    // rebind the audit would see a negative device delta.
    ZnsDevice fresh(&loop, small_config("led0b"));
    ledger.rebind_device(0, &fresh);
    fresh.set_ledger(&ledger, 0);
    LedgerAudit audit = ledger.audit();
    EXPECT_TRUE(audit.ok()) << audit.summary();
    // Lifetime attribution survives the swap.
    EXPECT_EQ(ledger.cause_write_bytes(Cause::kUserData),
              8u * kSectorSize);

    IoRequest w2 = IoRequest::write(0, pattern_data(4, 2));
    w2.cause = Cause::kRebuild;
    ASSERT_TRUE(submit_sync(loop, fresh, std::move(w2)).status.is_ok());
    EXPECT_TRUE(ledger.audit().ok());
    EXPECT_EQ(ledger.cause_write_bytes(Cause::kRebuild),
              4u * kSectorSize);
}

TEST(LedgerExport, JsonCarriesTotalsAndAuditState)
{
    LedgerFixture f;
    f.ledger.record(0, IoOp::kWrite, Cause::kUserData, 0, 8);
    std::string json = f.ledger.to_json();
    EXPECT_NE(json.find("\"waf\""), std::string::npos);
    EXPECT_NE(json.find("\"raf\""), std::string::npos);
    EXPECT_NE(json.find("\"causes\""), std::string::npos);
    // The over-attributed sectors above surface in the export too.
    EXPECT_NE(json.find("\"audit_ok\": false"), std::string::npos);
}

TEST(LedgerMetrics, GaugesAndCountersLinkIntoRegistry)
{
    LedgerFixture f;
    obs::MetricsRegistry reg;
    f.ledger.link_metrics(&reg);
    f.ledger.record(0, IoOp::kWrite, Cause::kUserData, 0, 100);
    f.ledger.record(0, IoOp::kWrite, Cause::kParity, 64, 50);
    f.ledger.note_user_write(100);
    f.ledger.refresh_gauges();

    std::string json = reg.to_json();
    EXPECT_NE(json.find("\"ledger.waf_milli\": 1500"),
              std::string::npos);
    EXPECT_NE(json.find("\"ledger.cause.parity.write_bytes\""),
              std::string::npos);
    EXPECT_NE(json.find("\"ledger.user.write_bytes\""),
              std::string::npos);
}

} // namespace
} // namespace raizn
