/**
 * @file
 * Unit tests for the emulated ZNS device: zone state machine, write
 * pointer rule, append, open/active limits, persistence + power loss,
 * failure injection.
 */
#include <gtest/gtest.h>

#include "sim/event_loop.h"
#include "zns/zns_device.h"

namespace raizn {
namespace {

ZnsDeviceConfig
small_config()
{
    ZnsDeviceConfig cfg;
    cfg.nzones = 8;
    cfg.zone_size = 64; // 256 KiB zones
    cfg.zone_capacity = 48; // capacity < size, like real devices
    cfg.max_open_zones = 3;
    cfg.max_active_zones = 4;
    cfg.atomic_write_sectors = 4;
    return cfg;
}

class ZnsDeviceTest : public ::testing::Test
{
  protected:
    ZnsDeviceTest() : dev_(&loop_, small_config()) {}

    IoResult
    run(IoRequest req)
    {
        return submit_sync(loop_, dev_, std::move(req));
    }

    EventLoop loop_;
    ZnsDevice dev_;
};

TEST_F(ZnsDeviceTest, GeometryDerivedFromConfig)
{
    const auto &g = dev_.geometry();
    EXPECT_TRUE(g.zoned);
    EXPECT_EQ(g.nzones, 8u);
    EXPECT_EQ(g.zone_size, 64u);
    EXPECT_EQ(g.zone_capacity, 48u);
    EXPECT_EQ(g.nsectors, 8u * 64u);
}

TEST_F(ZnsDeviceTest, PayloadMustAgreeWithNsectors)
{
    // Payload not a whole number of sectors.
    IoRequest bad;
    bad.op = IoOp::kWrite;
    bad.slba = 0;
    bad.nsectors = 2;
    bad.data.assign(kSectorSize + 100, 0xab);
    EXPECT_EQ(run(std::move(bad)).status.code(),
              StatusCode::kInvalidArgument);

    // Sector-aligned payload whose length disagrees with nsectors.
    IoRequest wrong;
    wrong.op = IoOp::kWrite;
    wrong.slba = 0;
    wrong.nsectors = 4;
    wrong.data = pattern_data(2, 1);
    EXPECT_EQ(run(std::move(wrong)).status.code(),
              StatusCode::kInvalidArgument);

    // Appends are validated the same way.
    IoRequest app;
    app.op = IoOp::kAppend;
    app.slba = 0;
    app.nsectors = 4;
    app.data = pattern_data(3, 1);
    EXPECT_EQ(run(std::move(app)).status.code(),
              StatusCode::kInvalidArgument);

    // Rejected commands leave the zone untouched; empty payloads
    // (timing-only) and matching payloads still work.
    auto zi = dev_.zone_info(0);
    ASSERT_TRUE(zi.is_ok());
    EXPECT_EQ(zi.value().wp, 0u);
    EXPECT_TRUE(run(IoRequest::write_len(0, 4)).status.is_ok());
    EXPECT_TRUE(run(IoRequest::write(4, pattern_data(4, 1))).status.is_ok());
}

TEST_F(ZnsDeviceTest, SequentialWriteAdvancesWp)
{
    auto r = run(IoRequest::write(0, pattern_data(4, 1)));
    ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
    auto zi = dev_.zone_info(0);
    ASSERT_TRUE(zi.is_ok());
    EXPECT_EQ(zi.value().wp, 4u);
    EXPECT_EQ(zi.value().state, ZoneState::kImplicitOpen);

    r = run(IoRequest::write(4, pattern_data(4, 2)));
    EXPECT_TRUE(r.status.is_ok());
    EXPECT_EQ(dev_.zone_info(0).value().wp, 8u);
}

TEST_F(ZnsDeviceTest, NonSequentialWriteRejected)
{
    ASSERT_TRUE(run(IoRequest::write(0, pattern_data(4, 1))).status);
    auto r = run(IoRequest::write(8, pattern_data(4, 2)));
    EXPECT_EQ(r.status.code(), StatusCode::kWritePointerMismatch);
    // Rewriting the start is also a WP mismatch (no overwrites).
    r = run(IoRequest::write(0, pattern_data(4, 3)));
    EXPECT_EQ(r.status.code(), StatusCode::kWritePointerMismatch);
}

TEST_F(ZnsDeviceTest, WriteBeyondCapacityRejected)
{
    // Zone capacity is 48; writing 48 fills it, 49 would cross.
    auto r = run(IoRequest::write_len(0, 49));
    EXPECT_EQ(r.status.code(), StatusCode::kZoneBoundary);
    r = run(IoRequest::write_len(0, 48));
    EXPECT_TRUE(r.status.is_ok());
    EXPECT_EQ(dev_.zone_info(0).value().state, ZoneState::kFull);
    // Full zone rejects further writes.
    r = run(IoRequest::write_len(48, 1));
    EXPECT_EQ(r.status.code(), StatusCode::kNoSpace);
}

TEST_F(ZnsDeviceTest, ReadBackMatchesWritten)
{
    auto payload = pattern_data(8, 99);
    ASSERT_TRUE(run(IoRequest::write(0, payload)).status);
    auto r = run(IoRequest::read(0, 8));
    ASSERT_TRUE(r.status.is_ok());
    EXPECT_EQ(r.data, payload);
}

TEST_F(ZnsDeviceTest, UnwrittenSectorsReadZero)
{
    ASSERT_TRUE(run(IoRequest::write(0, pattern_data(2, 5))).status);
    auto r = run(IoRequest::read(2, 4));
    ASSERT_TRUE(r.status.is_ok());
    for (uint8_t b : r.data)
        EXPECT_EQ(b, 0);
}

TEST_F(ZnsDeviceTest, AppendReturnsAssignedLba)
{
    auto r = run(IoRequest::append(64, pattern_data(4, 1)));
    ASSERT_TRUE(r.status.is_ok());
    EXPECT_EQ(r.lba, 64u);
    r = run(IoRequest::append(64, pattern_data(4, 2)));
    ASSERT_TRUE(r.status.is_ok());
    EXPECT_EQ(r.lba, 68u);
    EXPECT_EQ(dev_.zone_info(1).value().wp, 72u);
}

TEST_F(ZnsDeviceTest, AppendMustTargetZoneStart)
{
    auto r = run(IoRequest::append(70, pattern_data(4, 1)));
    EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
}

TEST_F(ZnsDeviceTest, ZoneResetReturnsToEmpty)
{
    ASSERT_TRUE(run(IoRequest::write(0, pattern_data(8, 1))).status);
    auto r = run(IoRequest::zone_reset(0));
    ASSERT_TRUE(r.status.is_ok());
    auto zi = dev_.zone_info(0).value();
    EXPECT_EQ(zi.state, ZoneState::kEmpty);
    EXPECT_EQ(zi.wp, 0u);
    // Data is gone.
    auto rd = run(IoRequest::read(0, 8));
    for (uint8_t b : rd.data)
        EXPECT_EQ(b, 0);
    // Zone is writable from the start again.
    EXPECT_TRUE(run(IoRequest::write(0, pattern_data(1, 2))).status);
}

TEST_F(ZnsDeviceTest, ZoneFinishMakesFull)
{
    ASSERT_TRUE(run(IoRequest::write_len(0, 4)).status);
    auto r = run(IoRequest::zone_finish(0));
    ASSERT_TRUE(r.status.is_ok());
    EXPECT_EQ(dev_.zone_info(0).value().state, ZoneState::kFull);
    EXPECT_EQ(run(IoRequest::write_len(4, 1)).status.code(),
              StatusCode::kNoSpace);
}

TEST_F(ZnsDeviceTest, OpenLimitAutoClosesImplicit)
{
    // max_open = 3; writing to 4 zones auto-closes the LRU one.
    for (uint32_t z = 0; z < 4; ++z) {
        ASSERT_TRUE(
            run(IoRequest::write_len(z * 64, 4)).status.is_ok());
    }
    EXPECT_EQ(dev_.open_zone_count(), 3u);
    EXPECT_EQ(dev_.active_zone_count(), 4u);
    EXPECT_EQ(dev_.zone_info(0).value().state, ZoneState::kClosed);
    // Writing to the closed zone re-opens it (evicting another).
    ASSERT_TRUE(run(IoRequest::write_len(4, 4)).status.is_ok());
    EXPECT_EQ(dev_.zone_info(0).value().state, ZoneState::kImplicitOpen);
}

TEST_F(ZnsDeviceTest, ActiveLimitRejectsNewZone)
{
    for (uint32_t z = 0; z < 4; ++z)
        ASSERT_TRUE(run(IoRequest::write_len(z * 64, 4)).status.is_ok());
    // 4 active zones = max_active; a 5th must be rejected.
    auto r = run(IoRequest::write_len(4 * 64, 4));
    EXPECT_EQ(r.status.code(), StatusCode::kTooManyOpenZones);
    // Resetting one frees an active slot.
    ASSERT_TRUE(run(IoRequest::zone_reset(0)).status.is_ok());
    EXPECT_TRUE(run(IoRequest::write_len(4 * 64, 4)).status.is_ok());
}

TEST_F(ZnsDeviceTest, OpenLimitAllExplicitRejectsWrite)
{
    // Explicitly opened zones cannot be auto-closed: once max_open
    // slots are all explicit, admitting another zone must fail rather
    // than evict one.
    for (uint32_t z = 0; z < 3; ++z) {
        IoRequest open{IoOp::kZoneOpen, z * 64, 0, false, false, {}};
        ASSERT_TRUE(run(std::move(open)).status.is_ok());
    }
    EXPECT_EQ(dev_.open_zone_count(), 3u);
    auto r = run(IoRequest::write_len(3 * 64, 4));
    EXPECT_EQ(r.status.code(), StatusCode::kTooManyOpenZones);
    // Closing one explicit zone frees a slot for the implicit open.
    IoRequest close{IoOp::kZoneClose, 0, 0, false, false, {}};
    ASSERT_TRUE(run(std::move(close)).status.is_ok());
    EXPECT_TRUE(run(IoRequest::write_len(3 * 64, 4)).status.is_ok());
}

TEST_F(ZnsDeviceTest, WriteStraddlingCapacityGapRejected)
{
    // zone_capacity (48) < zone_size (64): a write that fits inside
    // the zone's LBA span but crosses capacity must still be rejected,
    // and the [capacity, zone_size) gap reads back as zeros.
    ASSERT_TRUE(run(IoRequest::write_len(0, 44)).status.is_ok());
    auto r = run(IoRequest::write_len(44, 8)); // 44+8 = 52 <= 64, > 48
    EXPECT_EQ(r.status.code(), StatusCode::kZoneBoundary);
    // The rejected write must not have advanced the wp.
    EXPECT_EQ(dev_.zone_info(0).value().wp, 44u);
    ASSERT_TRUE(run(IoRequest::write_len(44, 4)).status.is_ok());
    EXPECT_EQ(dev_.zone_info(0).value().state, ZoneState::kFull);
    auto rd = run(IoRequest::read(50, 4));
    ASSERT_TRUE(rd.status.is_ok());
    for (uint8_t b : rd.data)
        EXPECT_EQ(b, 0);
}

TEST_F(ZnsDeviceTest, ResetOfEmptyZoneIsIdempotent)
{
    // Resetting a never-written zone succeeds without consuming an
    // active slot or disturbing zone accounting.
    auto r = run(IoRequest::zone_reset(2 * 64));
    ASSERT_TRUE(r.status.is_ok());
    auto zi = dev_.zone_info(2).value();
    EXPECT_EQ(zi.state, ZoneState::kEmpty);
    EXPECT_EQ(zi.wp, 2u * 64u);
    EXPECT_EQ(dev_.open_zone_count(), 0u);
    EXPECT_EQ(dev_.active_zone_count(), 0u);
    EXPECT_TRUE(run(IoRequest::zone_reset(2 * 64)).status.is_ok());
}

TEST_F(ZnsDeviceTest, PowerCutDropsVolatileCache)
{
    ASSERT_TRUE(run(IoRequest::write(0, pattern_data(8, 1))).status);
    dev_.power_cut({PowerLossSpec::Policy::kDropCache, 1});
    dev_.reattach(&loop_);
    EXPECT_EQ(dev_.zone_info(0).value().wp, 0u);
    EXPECT_EQ(dev_.zone_info(0).value().state, ZoneState::kEmpty);
}

TEST_F(ZnsDeviceTest, FlushMakesDataDurable)
{
    ASSERT_TRUE(run(IoRequest::write(0, pattern_data(8, 7))).status);
    ASSERT_TRUE(run(IoRequest::flush()).status);
    ASSERT_TRUE(run(IoRequest::write(8, pattern_data(4, 8))).status);
    dev_.power_cut({PowerLossSpec::Policy::kDropCache, 1});
    dev_.reattach(&loop_);
    auto zi = dev_.zone_info(0).value();
    EXPECT_EQ(zi.wp, 8u); // flushed prefix survives, tail lost
    auto r = run(IoRequest::read(0, 8));
    EXPECT_EQ(r.data, pattern_data(8, 7));
}

TEST_F(ZnsDeviceTest, FuaWriteDurableAtCompletion)
{
    ASSERT_TRUE(run(IoRequest::write(0, pattern_data(4, 1))).status);
    auto fua = IoRequest::write(4, pattern_data(4, 2), /*fua=*/true);
    ASSERT_TRUE(run(std::move(fua)).status);
    dev_.power_cut({PowerLossSpec::Policy::kDropCache, 1});
    dev_.reattach(&loop_);
    // FUA persists the write and (NAND program order) the zone prefix.
    EXPECT_EQ(dev_.zone_info(0).value().wp, 8u);
}

TEST_F(ZnsDeviceTest, PreflushPersistsOtherZones)
{
    ASSERT_TRUE(run(IoRequest::write(0, pattern_data(4, 1))).status);
    IoRequest req = IoRequest::write(64, pattern_data(4, 2));
    req.preflush = true;
    ASSERT_TRUE(run(std::move(req)).status);
    dev_.power_cut({PowerLossSpec::Policy::kDropCache, 1});
    dev_.reattach(&loop_);
    // Zone 0 was persisted by the preflush; zone 1's own write was not.
    EXPECT_EQ(dev_.zone_info(0).value().wp, 4u);
    EXPECT_EQ(dev_.zone_info(1).value().wp, 64u);
}

TEST_F(ZnsDeviceTest, RandomPowerLossKeepsPrefixAtAtomicGranularity)
{
    for (uint64_t seed = 1; seed <= 20; ++seed) {
        ZnsDevice dev(&loop_, small_config());
        ASSERT_TRUE(
            submit_sync(loop_, dev, IoRequest::write(0, pattern_data(4, 1)))
                .status.is_ok());
        ASSERT_TRUE(
            submit_sync(loop_, dev, IoRequest::flush()).status.is_ok());
        ASSERT_TRUE(submit_sync(loop_, dev,
                                IoRequest::write(4, pattern_data(12, 2)))
                        .status.is_ok());
        dev.power_cut({PowerLossSpec::Policy::kRandom, seed});
        dev.reattach(&loop_);
        uint64_t wp = dev.zone_info(0).value().wp;
        EXPECT_GE(wp, 4u) << "durable prefix must survive";
        EXPECT_LE(wp, 16u);
        EXPECT_EQ(wp % 4, 0u) << "survival at atomic granularity";
    }
}

TEST_F(ZnsDeviceTest, StaleCompletionsDropAfterPowerCut)
{
    // Submit a write but cut power before its completion fires.
    bool called = false;
    dev_.submit(IoRequest::write(0, pattern_data(4, 1)),
                [&](IoResult) { called = true; });
    dev_.power_cut({PowerLossSpec::Policy::kDropCache, 1});
    dev_.reattach(&loop_);
    loop_.run();
    EXPECT_FALSE(called) << "completion from before power cut leaked";
}

TEST_F(ZnsDeviceTest, FailedDeviceErrorsAllIo)
{
    dev_.fail();
    EXPECT_EQ(run(IoRequest::read(0, 1)).status.code(),
              StatusCode::kOffline);
    EXPECT_EQ(run(IoRequest::write_len(0, 1)).status.code(),
              StatusCode::kOffline);
    EXPECT_TRUE(dev_.failed());
}

TEST_F(ZnsDeviceTest, ReplaceRestoresFreshDevice)
{
    ASSERT_TRUE(run(IoRequest::write(0, pattern_data(8, 1))).status);
    dev_.fail();
    dev_.replace();
    EXPECT_FALSE(dev_.failed());
    auto zi = dev_.zone_info(0).value();
    EXPECT_EQ(zi.state, ZoneState::kEmpty);
    EXPECT_EQ(zi.wp, 0u);
}

TEST_F(ZnsDeviceTest, TimingLargeWritesApproachBandwidth)
{
    // Issue 64 MiB of 1 MiB writes at high queue depth and check the
    // simulated throughput is near the configured write bandwidth.
    ZnsDeviceConfig cfg;
    cfg.nzones = 8;
    cfg.zone_size = 1 * kGiB / kSectorSize / 8;
    cfg.data_mode = DataMode::kNone;
    ZnsDevice dev(&loop_, cfg);
    Tick start = loop_.now();
    int outstanding = 0;
    uint64_t lba = 0;
    constexpr uint32_t kIoSectors = 256; // 1 MiB
    for (int i = 0; i < 64; ++i) {
        dev.submit(IoRequest::write_len(lba, kIoSectors),
                   [&](IoResult r) {
                       ASSERT_TRUE(r.status.is_ok());
                       outstanding--;
                   });
        lba += kIoSectors;
        outstanding++;
    }
    loop_.run();
    EXPECT_EQ(outstanding, 0);
    double mibs = mib_per_sec(64 * kMiB, loop_.now() - start);
    EXPECT_GT(mibs, 700.0);
    EXPECT_LT(mibs, 1100.0);
}

TEST_F(ZnsDeviceTest, ReadsFasterThanWrites)
{
    ZnsDeviceConfig cfg;
    cfg.nzones = 4;
    cfg.zone_size = 65536;
    cfg.data_mode = DataMode::kNone;
    ZnsDevice dev(&loop_, cfg);
    // Fill one zone.
    for (int i = 0; i < 16; ++i) {
        ASSERT_TRUE(submit_sync(loop_, dev,
                                IoRequest::write_len(i * 256u, 256))
                        .status.is_ok());
    }
    auto timed = [&](IoOp op) {
        Tick start = loop_.now();
        int left = 16;
        for (int i = 0; i < 16; ++i) {
            IoRequest r;
            r.op = op;
            r.slba = static_cast<uint64_t>(i) * 256;
            r.nsectors = 256;
            dev.submit(std::move(r), [&](IoResult res) {
                ASSERT_TRUE(res.status.is_ok());
                left--;
            });
        }
        loop_.run();
        EXPECT_EQ(left, 0);
        return loop_.now() - start;
    };
    Tick read_time = timed(IoOp::kRead);
    // Second batch of writes goes to zone 1.
    Tick wstart = loop_.now();
    for (int i = 0; i < 16; ++i) {
        ASSERT_TRUE(
            submit_sync(loop_, dev,
                        IoRequest::write_len(65536 + i * 256u, 256))
                .status.is_ok());
    }
    Tick write_time = loop_.now() - wstart;
    EXPECT_LT(read_time, write_time);
}

} // namespace
} // namespace raizn
