/**
 * @file
 * Failure-lifecycle tests: health-driven automatic failover onto a hot
 * spare, crash-resumable checkpointed rebuild, token-bucket rebuild
 * throttling, and the mdraid auto-resync parity path.
 */
#include <gtest/gtest.h>

#include "mdraid/md_volume.h"
#include "raizn/throttle.h"
#include "raizn_test_util.h"
#include "zns/conv_device.h"

namespace raizn {
namespace {

class LifecycleTest : public ::testing::Test
{
  protected:
    void SetUp() override { arr_.make(); }

    /// A standby device with the same geometry as the array members.
    std::unique_ptr<ZnsDevice>
    make_spare()
    {
        ZnsDeviceConfig dc = TestArray::device_config();
        dc.name = "spare";
        return std::make_unique<ZnsDevice>(arr_.loop.get(), dc);
    }

    TestArray arr_;
};

TEST_F(LifecycleTest, AutoFailoverPromotesSpareAndRebuilds)
{
    arr_.write_pattern(0, 128, 1);
    arr_.write_pattern(512, 64, 2);
    ASSERT_TRUE(arr_.flush().status.is_ok());

    auto spare = make_spare();
    arr_.vol->set_spare(spare.get());
    bool done = false;
    Status st;
    uint32_t done_dev = ~0u;
    RaiznVolume::LifecycleConfig lc;
    lc.on_rebuild_done = [&](uint32_t dev, Status s) {
        done_dev = dev;
        st = s;
        done = true;
    };
    arr_.vol->set_lifecycle(std::move(lc));

    // The device dies at the device level; nobody tells the volume.
    // The next read hits persistent errors, the health monitor trips,
    // and failover + spare promotion + rebuild run with zero manual
    // calls — data stays readable the whole time.
    uint32_t victim = arr_.vol->layout().data_dev(0, 0, 0);
    arr_.devs[victim]->fail();
    arr_.expect_pattern(0, 128, 1);
    EXPECT_EQ(arr_.vol->failed_device(), static_cast<int>(victim));
    EXPECT_EQ(arr_.vol->stats().auto_failovers, 1u);

    // Mid-lifecycle reads are served (degraded or from rebuilt zones).
    arr_.expect_pattern(512, 64, 2);

    arr_.loop->run_until_pred([&] { return done; });
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    EXPECT_EQ(done_dev, victim);
    EXPECT_EQ(arr_.vol->failed_device(), -1);
    EXPECT_EQ(arr_.vol->stats().spares_promoted, 1u);
    EXPECT_FALSE(arr_.vol->has_spare()) << "spare consumed";
    EXPECT_GT(arr_.vol->stats().zones_rebuilt, 0u);

    // Redundancy restored onto the spare: reads need no reconstruction.
    uint64_t degraded_before = arr_.vol->stats().degraded_reads;
    arr_.expect_pattern(0, 128, 1);
    arr_.expect_pattern(512, 64, 2);
    EXPECT_EQ(arr_.vol->stats().degraded_reads, degraded_before);

    // And survives a second, different failure.
    arr_.vol->mark_device_failed((victim + 1) % 5);
    arr_.expect_pattern(0, 128, 1);
}

TEST_F(LifecycleTest, NoSpareStaysDegraded)
{
    arr_.write_pattern(0, 64, 3);
    uint32_t victim = arr_.vol->layout().data_dev(0, 0, 0);
    arr_.devs[victim]->fail();
    arr_.expect_pattern(0, 64, 3);
    EXPECT_EQ(arr_.vol->failed_device(), static_cast<int>(victim));
    // Nothing to promote: stays degraded, no failover counted.
    arr_.loop->run();
    EXPECT_EQ(arr_.vol->stats().auto_failovers, 0u);
    EXPECT_EQ(arr_.vol->failed_device(), static_cast<int>(victim));
    arr_.expect_pattern(0, 64, 3);
}

TEST_F(LifecycleTest, HealthCountersSurfaceInStats)
{
    arr_.write_pattern(0, 64, 4);
    uint32_t victim = arr_.vol->layout().data_dev(0, 0, 0);
    arr_.devs[victim]->fail();
    arr_.expect_pattern(0, 64, 4);
    const DeviceHealth &h = arr_.vol->health().device(victim);
    EXPECT_GT(h.op_failures, 0u);
    std::string dump = arr_.vol->stats().dump();
    EXPECT_NE(dump.find("auto_failovers"), std::string::npos);
    EXPECT_NE(dump.find("rebuild_checkpoints"), std::string::npos);
}

TEST_F(LifecycleTest, CheckpointResumeAfterPowerCut)
{
    // Three zones of data so the rebuild spans several checkpoints.
    arr_.write_pattern(0, 512, 5);
    arr_.write_pattern(512, 512, 6);
    arr_.write_pattern(1024, 512, 7);
    ASSERT_TRUE(arr_.flush().status.is_ok());

    uint32_t victim = 1;
    arr_.vol->mark_device_failed(victim);
    arr_.devs[victim]->replace();

    uint64_t zones_done = 0;
    bool done = false;
    Status st;
    arr_.vol->rebuild_device(
        victim, [&](uint64_t d, uint64_t) { zones_done = d; },
        [&](Status s) {
            st = s;
            done = true;
        });
    // Let two of three zones finish: the first zone's completion
    // checkpoint had a full zone's worth of rebuild IO to become
    // durable before the cut.
    arr_.loop->run_until_pred([&] { return zones_done >= 2 || done; });
    ASSERT_FALSE(done) << "rebuild finished before the cut";
    EXPECT_GT(arr_.vol->stats().rebuild_checkpoints, 1u);

    ASSERT_TRUE(
        arr_.crash_and_remount({PowerLossSpec::Policy::kDropCache, 11})
            .is_ok());
    ASSERT_TRUE(arr_.vol->has_pending_rebuild());
    EXPECT_EQ(arr_.vol->pending_rebuild_device(),
              static_cast<int>(victim));
    EXPECT_EQ(arr_.vol->failed_device(), static_cast<int>(victim));

    bool rdone = false;
    Status rst;
    arr_.vol->resume_rebuild(nullptr, [&](Status s) {
        rst = s;
        rdone = true;
    });
    arr_.loop->run_until_pred([&] { return rdone; });
    ASSERT_TRUE(rst.is_ok()) << rst.to_string();
    EXPECT_EQ(arr_.vol->failed_device(), -1);
    EXPECT_GE(arr_.vol->stats().rebuild_zones_resumed, 1u)
        << "resume re-rebuilt everything instead of using the checkpoint";

    arr_.expect_pattern(0, 512, 5);
    arr_.expect_pattern(512, 512, 6);
    arr_.expect_pattern(1024, 512, 7);

    // Redundancy is fully restored: lose a different device and read.
    arr_.vol->mark_device_failed((victim + 2) % 5);
    arr_.expect_pattern(0, 512, 5);
    arr_.expect_pattern(1024, 512, 7);
}

TEST_F(LifecycleTest, ResumeRebuildWithoutCheckpointIsRejected)
{
    bool done = false;
    Status st;
    arr_.vol->resume_rebuild(nullptr, [&](Status s) {
        st = s;
        done = true;
    });
    arr_.loop->run_until_pred([&] { return done; });
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST_F(LifecycleTest, BlankReplacementDetectedAtMount)
{
    // Power fails after the dead disk was swapped but before the
    // rebuild's first checkpoint became durable: the replacement
    // carries no superblock, and mount must treat it as the absent
    // device rather than trusting its empty zones.
    arr_.write_pattern(0, 256, 8);
    ASSERT_TRUE(arr_.flush().status.is_ok());
    uint32_t victim = 3;
    arr_.vol->mark_device_failed(victim);
    arr_.devs[victim]->replace();
    ASSERT_TRUE(
        arr_.crash_and_remount({PowerLossSpec::Policy::kDropCache, 13})
            .is_ok());
    EXPECT_EQ(arr_.vol->failed_device(), static_cast<int>(victim));
    EXPECT_FALSE(arr_.vol->has_pending_rebuild());
    arr_.expect_pattern(0, 256, 8);
    // A from-scratch rebuild completes and heals the array.
    ASSERT_TRUE(arr_.rebuild(victim).is_ok());
    EXPECT_EQ(arr_.vol->failed_device(), -1);
    arr_.expect_pattern(0, 256, 8);
}

TEST_F(LifecycleTest, ThrottleTokenBucket)
{
    EventLoop loop;
    RebuildThrottleConfig cfg;
    cfg.rate_sectors_per_sec = 1000;
    cfg.burst_sectors = 64;
    RebuildThrottle th(&loop, cfg);

    EXPECT_TRUE(th.try_acquire(64)); // full burst available
    EXPECT_FALSE(th.try_acquire(1)); // bucket empty
    EXPECT_EQ(th.stalls(), 1u);
    uint64_t wait = th.ns_until(10);
    EXPECT_GT(wait, 0u);
    EXPECT_LE(wait, 10 * kNsPerMs + 1);

    // Refill against virtual time: after 20ms, 20 tokens accrued.
    loop.schedule_after(20 * kNsPerMs, [] {});
    loop.run();
    EXPECT_TRUE(th.try_acquire(10));
    EXPECT_FALSE(th.try_acquire(64));
}

TEST_F(LifecycleTest, ThrottleAdaptiveBackoffAndRestore)
{
    EventLoop loop;
    RebuildThrottleConfig cfg;
    cfg.rate_sectors_per_sec = 1024;
    cfg.min_rate_sectors_per_sec = 128;
    cfg.adaptive = true;
    RebuildThrottle th(&loop, cfg);
    th.set_baseline_latency(1000.0);

    // Foreground latency 5x baseline: rate halves per sample down to
    // the floor.
    th.observe_foreground_latency(5000);
    EXPECT_EQ(th.current_rate(), 512u);
    th.observe_foreground_latency(5000);
    EXPECT_EQ(th.current_rate(), 256u);
    th.observe_foreground_latency(5000);
    EXPECT_EQ(th.current_rate(), 128u);
    th.observe_foreground_latency(5000);
    EXPECT_EQ(th.current_rate(), 128u) << "never below the floor";
    EXPECT_GE(th.backoffs(), 3u);

    // Latency recovers: the EWMA decays below restore_factor*baseline
    // and the rate doubles back up to the configured cap.
    for (int i = 0; i < 20; ++i)
        th.observe_foreground_latency(500);
    EXPECT_EQ(th.current_rate(), 1024u);
}

TEST_F(LifecycleTest, ThrottledRebuildStallsAndTakesLonger)
{
    auto run_rebuild = [](uint64_t rate) {
        TestArray a;
        a.make();
        a.write_pattern(0, 512, 9);
        a.write_pattern(512, 512, 10);
        EXPECT_TRUE(a.flush().status.is_ok());
        uint32_t victim = 2;
        a.vol->mark_device_failed(victim);
        a.devs[victim]->replace();
        RaiznVolume::LifecycleConfig lc;
        lc.throttle.rate_sectors_per_sec = rate;
        lc.throttle.burst_sectors = 32;
        a.vol->set_lifecycle(lc);
        Tick start = a.loop->now();
        Status st = a.rebuild(victim);
        EXPECT_TRUE(st.is_ok()) << st.to_string();
        struct Out {
            Tick elapsed;
            uint64_t stalls;
        };
        return Out{a.loop->now() - start,
                   a.vol->stats().rebuild_throttle_stalls};
    };
    auto fast = run_rebuild(0);
    auto slow = run_rebuild(10000);
    EXPECT_EQ(fast.stalls, 0u);
    EXPECT_GT(slow.stalls, 0u);
    EXPECT_GT(slow.elapsed, fast.elapsed);
}

TEST_F(LifecycleTest, MdVolumeAutoResyncPromotesSpare)
{
    EventLoop loop;
    std::vector<std::unique_ptr<ConvDevice>> devs;
    std::vector<BlockDevice *> ptrs;
    auto conv_cfg = [](const std::string &name) {
        ConvDeviceConfig cfg;
        cfg.nsectors = 4 * kMiB / kSectorSize;
        cfg.pages_per_block = 64;
        cfg.name = name;
        return cfg;
    };
    for (int i = 0; i < 5; ++i) {
        devs.push_back(std::make_unique<ConvDevice>(
            &loop, conv_cfg("conv" + std::to_string(i))));
        ptrs.push_back(devs.back().get());
    }
    auto spare =
        std::make_unique<ConvDevice>(&loop, conv_cfg("spare"));
    MdVolumeConfig mcfg;
    mcfg.chunk_sectors = 16;
    mcfg.stripe_cache_bytes = 128 * kKiB;
    MdVolume vol(&loop, ptrs, mcfg);
    vol.set_spare(spare.get());
    bool done = false;
    Status st;
    MdVolume::LifecycleConfig lc;
    lc.throttle.rate_sectors_per_sec = 0;
    lc.on_resync_done = [&](uint32_t, Status s) {
        st = s;
        done = true;
    };
    vol.set_lifecycle(std::move(lc));

    bool wdone = false;
    vol.write(0, pattern_data(64, 21), [&](IoResult r) {
        EXPECT_TRUE(r.status.is_ok());
        wdone = true;
    });
    loop.run_until_pred([&] { return wdone; });

    vol.mark_device_failed(0);
    EXPECT_EQ(vol.stats().auto_failovers, 1u);
    loop.run_until_pred([&] { return done; });
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    EXPECT_EQ(vol.failed_device(), -1);
    EXPECT_EQ(vol.stats().spares_promoted, 1u);
    EXPECT_FALSE(vol.has_spare());
    EXPECT_GT(vol.stats().resynced_sectors, 0u);

    bool rdone = false;
    vol.read(0, 64, [&](IoResult r) {
        EXPECT_TRUE(r.status.is_ok());
        EXPECT_EQ(r.data, pattern_data(64, 21));
        rdone = true;
    });
    loop.run_until_pred([&] { return rdone; });
}

TEST_F(LifecycleTest, MdVolumeThrottledResyncStalls)
{
    EventLoop loop;
    std::vector<std::unique_ptr<ConvDevice>> devs;
    std::vector<BlockDevice *> ptrs;
    for (int i = 0; i < 5; ++i) {
        ConvDeviceConfig cfg;
        cfg.nsectors = 2 * kMiB / kSectorSize;
        cfg.pages_per_block = 64;
        cfg.name = "conv" + std::to_string(i);
        devs.push_back(std::make_unique<ConvDevice>(&loop, cfg));
        ptrs.push_back(devs.back().get());
    }
    MdVolumeConfig mcfg;
    mcfg.chunk_sectors = 16;
    MdVolume vol(&loop, ptrs, mcfg);
    MdVolume::LifecycleConfig lc;
    lc.auto_resync = false;
    lc.throttle.rate_sectors_per_sec = 100000;
    lc.throttle.burst_sectors = 64;
    vol.set_lifecycle(std::move(lc));

    vol.mark_device_failed(0);
    devs[0]->replace();
    bool done = false;
    Status st;
    vol.resync_device(0, nullptr, [&](Status s) {
        st = s;
        done = true;
    });
    loop.run_until_pred([&] { return done; });
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    EXPECT_EQ(vol.failed_device(), -1);
    EXPECT_GT(vol.stats().resync_throttle_stalls, 0u);
}

} // namespace
} // namespace raizn
