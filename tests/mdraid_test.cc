/**
 * @file
 * Tests for the mdraid-like RAID-5 baseline: striping/parity math,
 * overwrites, stripe cache behaviour, RMW accounting, degraded mode,
 * and whole-device resync.
 */
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "fault/fault_device.h"
#include "mdraid/md_volume.h"
#include "raizn/stripe_buffer.h"
#include "sim/event_loop.h"
#include "zns/conv_device.h"

namespace raizn {
namespace {

class MdRaidTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        make(128 * kKiB);
    }

    void
    make(uint64_t cache_bytes)
    {
        loop_ = std::make_unique<EventLoop>();
        devs_.clear();
        std::vector<BlockDevice *> ptrs;
        for (int i = 0; i < 5; ++i) {
            ConvDeviceConfig cfg;
            cfg.nsectors = 16 * kMiB / kSectorSize;
            cfg.pages_per_block = 64;
            cfg.name = "conv" + std::to_string(i);
            devs_.push_back(
                std::make_unique<ConvDevice>(loop_.get(), cfg));
            ptrs.push_back(devs_.back().get());
        }
        MdVolumeConfig mcfg;
        mcfg.chunk_sectors = 16;
        mcfg.stripe_cache_bytes = cache_bytes;
        vol_ = std::make_unique<MdVolume>(loop_.get(), ptrs, mcfg);
    }

    IoResult
    write(uint64_t lba, std::vector<uint8_t> data)
    {
        IoResult out;
        bool done = false;
        vol_->write(lba, std::move(data), [&](IoResult r) {
            out = std::move(r);
            done = true;
        });
        loop_->run_until_pred([&] { return done; });
        return out;
    }

    IoResult
    read(uint64_t lba, uint32_t n)
    {
        IoResult out;
        bool done = false;
        vol_->read(lba, n, [&](IoResult r) {
            out = std::move(r);
            done = true;
        });
        loop_->run_until_pred([&] { return done; });
        return out;
    }

    /// Same array, but with a fault-injecting decorator in front of
    /// every member so tests can plant transient device errors.
    void
    make_faulty()
    {
        loop_ = std::make_unique<EventLoop>();
        devs_.clear();
        fdevs_.clear();
        std::vector<BlockDevice *> ptrs;
        for (int i = 0; i < 5; ++i) {
            ConvDeviceConfig cfg;
            cfg.nsectors = 16 * kMiB / kSectorSize;
            cfg.pages_per_block = 64;
            cfg.name = "conv" + std::to_string(i);
            devs_.push_back(
                std::make_unique<ConvDevice>(loop_.get(), cfg));
            fdevs_.push_back(std::make_unique<FaultInjectingDevice>(
                loop_.get(), devs_.back().get(), FaultConfig{}));
            ptrs.push_back(fdevs_.back().get());
        }
        MdVolumeConfig mcfg;
        mcfg.chunk_sectors = 16;
        mcfg.stripe_cache_bytes = 128 * kKiB;
        vol_ = std::make_unique<MdVolume>(loop_.get(), ptrs, mcfg);
    }

    std::unique_ptr<EventLoop> loop_;
    std::vector<std::unique_ptr<ConvDevice>> devs_;
    std::vector<std::unique_ptr<FaultInjectingDevice>> fdevs_;
    std::unique_ptr<MdVolume> vol_;
};

TEST_F(MdRaidTest, CapacityIsDMinusOne)
{
    EXPECT_EQ(vol_->capacity(),
              4ull * devs_[0]->geometry().nsectors / 16 * 16);
    EXPECT_EQ(vol_->stripe_sectors(), 64u);
}

TEST_F(MdRaidTest, RoundTripAndOverwrite)
{
    ASSERT_TRUE(write(0, pattern_data(64, 1)).status.is_ok());
    auto r = read(0, 64);
    EXPECT_EQ(r.data, pattern_data(64, 1));
    // Overwrite anywhere — this is a block device.
    ASSERT_TRUE(write(16, pattern_data(16, 2)).status.is_ok());
    r = read(16, 16);
    EXPECT_EQ(r.data, pattern_data(16, 2));
    r = read(0, 16);
    EXPECT_EQ(r.data, pattern_data(16, 1));
}

TEST_F(MdRaidTest, RandomOffsetsWork)
{
    ASSERT_TRUE(write(1000, pattern_data(8, 3)).status.is_ok());
    ASSERT_TRUE(write(37, pattern_data(3, 4)).status.is_ok());
    EXPECT_EQ(read(1000, 8).data, pattern_data(8, 3));
    EXPECT_EQ(read(37, 3).data, pattern_data(3, 4));
}

TEST_F(MdRaidTest, ParityOnDiskIsXorOfChunks)
{
    auto data = pattern_data(64, 9);
    ASSERT_TRUE(write(0, data).status.is_ok());
    uint32_t pdev = vol_->parity_dev(0);
    auto pr = submit_sync(*loop_, *devs_[pdev], IoRequest::read(0, 16));
    ASSERT_TRUE(pr.status.is_ok());
    std::vector<uint8_t> expect(16 * kSectorSize, 0);
    for (uint32_t k = 0; k < 4; ++k)
        xor_bytes(expect.data(), data.data() + k * 16 * kSectorSize,
                  expect.size());
    EXPECT_EQ(pr.data, expect);
}

TEST_F(MdRaidTest, PartialWriteKeepsParityConsistent)
{
    // Full stripe, then overwrite one chunk; parity must track it.
    ASSERT_TRUE(write(0, pattern_data(64, 1)).status.is_ok());
    ASSERT_TRUE(write(16, pattern_data(16, 2)).status.is_ok());
    // Verify via degraded reconstruction of the overwritten chunk.
    uint32_t victim = vol_->data_dev(0, 1);
    vol_->mark_device_failed(victim);
    EXPECT_EQ(read(16, 16).data, pattern_data(16, 2));
    EXPECT_GT(vol_->stats().degraded_reads, 0u);
}

TEST_F(MdRaidTest, StripeCacheAvoidsRmwReads)
{
    // Writing the stripe in pieces with a warm cache needs no RMW
    // prereads.
    ASSERT_TRUE(write(0, pattern_data(64, 1)).status.is_ok());
    uint64_t rmw0 = vol_->stats().rmw_reads;
    ASSERT_TRUE(write(0, pattern_data(8, 2)).status.is_ok());
    EXPECT_EQ(vol_->stats().rmw_reads, rmw0) << "cache hit: no prereads";
}

TEST_F(MdRaidTest, ColdPartialWriteDoesRmw)
{
    // Tiny cache (1 stripe) forces eviction; partial write to an
    // evicted stripe must preread.
    make(1); // capacity_bytes=1 -> 1 stripe
    ASSERT_TRUE(write(0, pattern_data(64, 1)).status.is_ok());
    ASSERT_TRUE(write(64, pattern_data(64, 2)).status.is_ok()); // evicts
    uint64_t rmw0 = vol_->stats().rmw_reads;
    ASSERT_TRUE(write(4, pattern_data(4, 3)).status.is_ok());
    EXPECT_GT(vol_->stats().rmw_reads, rmw0);
    // Parity still consistent after the RMW.
    uint32_t victim = vol_->data_dev(0, 0);
    vol_->mark_device_failed(victim);
    EXPECT_EQ(read(4, 4).data, pattern_data(4, 3));
    EXPECT_EQ(read(0, 4).data, pattern_data(4, 1));
}

TEST_F(MdRaidTest, DegradedWriteStillRecoverable)
{
    uint32_t victim = vol_->data_dev(0, 0);
    vol_->mark_device_failed(victim);
    ASSERT_TRUE(write(0, pattern_data(64, 5)).status.is_ok());
    // All data readable (the failed chunk reconstructs from parity).
    EXPECT_EQ(read(0, 64).data, pattern_data(64, 5));
}

TEST_F(MdRaidTest, ResyncRestoresRedundancyAndIsFullDevice)
{
    ASSERT_TRUE(write(0, pattern_data(64, 7)).status.is_ok());
    uint32_t victim = vol_->data_dev(0, 1);
    vol_->mark_device_failed(victim);
    devs_[victim]->replace();
    Status st;
    bool done = false;
    vol_->resync_device(victim, nullptr, [&](Status s) {
        st = s;
        done = true;
    });
    loop_->run_until_pred([&] { return done; });
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    EXPECT_EQ(vol_->failed_device(), -1);
    // md resyncs the whole device regardless of fill (Fig. 12).
    EXPECT_EQ(vol_->stats().resynced_sectors,
              devs_[victim]->geometry().nsectors / 16 * 16);
    // Data intact and redundancy restored.
    EXPECT_EQ(read(0, 64).data, pattern_data(64, 7));
    uint32_t second = (victim + 1) % 5;
    vol_->mark_device_failed(second);
    EXPECT_EQ(read(0, 64).data, pattern_data(64, 7));
}

TEST_F(MdRaidTest, ResyncRetriesTransientReadError)
{
    make_faulty();
    ASSERT_TRUE(write(0, pattern_data(64, 11)).status.is_ok());
    uint32_t victim = vol_->data_dev(0, 1);
    vol_->mark_device_failed(victim);
    devs_[victim]->replace();

    // The first resync source read on a surviving member fails once;
    // the retry layer must absorb it and resync must still succeed.
    uint32_t source = (victim + 1) % 5;
    fdevs_[source]->inject_once(IoOp::kRead, FaultKind::kIoError);

    Status st;
    bool done = false;
    vol_->resync_device(victim, nullptr, [&](Status s) {
        st = s;
        done = true;
    });
    loop_->run_until_pred([&] { return done; });
    ASSERT_TRUE(st.is_ok()) << st.to_string();
    EXPECT_EQ(vol_->failed_device(), -1);
    EXPECT_GT(vol_->stats().io_retries, 0u);
    EXPECT_EQ(fdevs_[source]->fault_stats().read_errors, 1u);

    // Redundancy really restored: drop another member and read.
    EXPECT_EQ(read(0, 64).data, pattern_data(64, 11));
    vol_->mark_device_failed(source);
    EXPECT_EQ(read(0, 64).data, pattern_data(64, 11));
}

TEST_F(MdRaidTest, WritebackRetriesTransientWriteError)
{
    make_faulty();
    // Plant a one-shot write error on a data member of stripe 0: the
    // stripe-cache writeback hits it, retries, and the write still
    // lands on every chunk (array stays healthy, parity consistent).
    uint32_t target = vol_->data_dev(0, 2);
    fdevs_[target]->inject_once(IoOp::kWrite, FaultKind::kIoError);
    ASSERT_TRUE(write(0, pattern_data(64, 13)).status.is_ok());
    EXPECT_GT(vol_->stats().io_retries, 0u);
    EXPECT_EQ(vol_->stats().dev_errors, 0u);
    EXPECT_EQ(vol_->failed_device(), -1);
    EXPECT_EQ(fdevs_[target]->fault_stats().write_errors, 1u);

    EXPECT_EQ(read(0, 64).data, pattern_data(64, 13));
    // The chunk behind the injected error is recoverable from parity.
    vol_->mark_device_failed(target);
    EXPECT_EQ(read(0, 64).data, pattern_data(64, 13));
}

TEST_F(MdRaidTest, GcSlowsMdraidOverTime)
{
    // Timing-only sanity at small scale: random overwrite churn after
    // a full fill must take longer per pass than the initial fill.
    loop_ = std::make_unique<EventLoop>();
    devs_.clear();
    std::vector<BlockDevice *> ptrs;
    for (int i = 0; i < 5; ++i) {
        ConvDeviceConfig cfg;
        cfg.nsectors = 16 * kMiB / kSectorSize;
        cfg.pages_per_block = 64;
        cfg.op_ratio = 0.08;
        cfg.data_mode = DataMode::kNone;
        devs_.push_back(std::make_unique<ConvDevice>(loop_.get(), cfg));
        ptrs.push_back(devs_.back().get());
    }
    MdVolumeConfig mcfg;
    vol_ = std::make_unique<MdVolume>(loop_.get(), ptrs, mcfg);

    auto seq_pass = [&]() -> Tick {
        Tick start = loop_->now();
        for (uint64_t lba = 0; lba + 64 <= vol_->capacity(); lba += 64) {
            bool done = false;
            vol_->write_len(lba, 64, [&](IoResult) { done = true; });
            loop_->run_until_pred([&] { return done; });
        }
        return loop_->now() - start;
    };
    Tick first = seq_pass();
    // Random single-chunk overwrites mix lifetimes inside erase blocks.
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        uint64_t lba = rng.next_below(vol_->capacity() / 16) * 16;
        bool done = false;
        vol_->write_len(lba, 16, [&](IoResult) { done = true; });
        loop_->run_until_pred([&] { return done; });
    }
    Tick churn = seq_pass();
    EXPECT_GT(churn, first) << "GC must slow the array";
}

} // namespace
} // namespace raizn
