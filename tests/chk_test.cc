/**
 * @file
 * Crash-point exploration suite: exhaustively enumerates power-cut
 * injection points for small workloads and checks the full §5
 * invariant set against the shadow model at every one — plus a
 * regression proving the oracle catches a deliberately broken
 * crash-consistency mechanism.
 */
#include <gtest/gtest.h>

#include "chk/explorer.h"

namespace raizn::chk {
namespace {

TEST(ChkExplorer, DeterministicReplay)
{
    ChkConfig cfg;
    ChkWorkload wl = canonical_workload(cfg.geom());
    ChkOptions opts;
    CrashPointExplorer a(cfg, wl, opts);
    CrashPointExplorer b(cfg, wl, opts);
    uint64_t ba = a.count_boundaries();
    uint64_t bb = b.count_boundaries();
    EXPECT_EQ(ba, bb);
    EXPECT_GT(ba, 0u);

    // Replaying the same crash point twice reaches identical schedules
    // (each run_one verifies its trace hash against the reference).
    auto r1 = a.explore_points({ba / 2, ba / 3});
    auto r2 = a.explore_points({ba / 2, ba / 3});
    EXPECT_TRUE(r1.ok()) << r1.summary();
    EXPECT_TRUE(r2.ok()) << r2.summary();
}

TEST(ChkExplorer, ExhaustiveCanonicalDropCache)
{
    ChkConfig cfg;
    ChkWorkload wl = canonical_workload(cfg.geom());
    ChkOptions opts;
    opts.policy = PowerLossSpec::Policy::kDropCache;
    CrashPointExplorer ex(cfg, wl, opts);
    ChkReport rep = ex.explore_all();
    // Acceptance: a >=3-stripe workload on a 5-device array exposes
    // hundreds of distinct completion boundaries.
    EXPECT_GE(rep.boundaries, 200u);
    EXPECT_EQ(rep.runs, rep.boundaries + 1);
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(ChkExplorer, ExhaustiveCanonicalKeepAll)
{
    ChkConfig cfg;
    ChkWorkload wl = canonical_workload(cfg.geom());
    ChkOptions opts;
    opts.policy = PowerLossSpec::Policy::kKeepAll;
    CrashPointExplorer ex(cfg, wl, opts);
    ChkReport rep = ex.explore_all();
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(ChkExplorer, ExhaustiveDegradedWorkload)
{
    ChkConfig cfg;
    ChkWorkload wl = degraded_workload(cfg.geom(), 2);
    ChkOptions opts;
    CrashPointExplorer ex(cfg, wl, opts);
    ChkReport rep = ex.explore_all();
    EXPECT_GT(rep.boundaries, 0u);
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(ChkExplorer, SweepRandomSurvival)
{
    ChkConfig cfg;
    ChkWorkload wl = canonical_workload(cfg.geom());
    ChkOptions opts;
    opts.policy = PowerLossSpec::Policy::kRandom;
    opts.check_degraded = true;
    CrashPointExplorer ex(cfg, wl, opts);
    ChkReport rep = ex.sweep_random(40, /*seed=*/7);
    EXPECT_EQ(rep.runs, 40u);
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(ChkExplorer, SweepDivergentDeviceSurvival)
{
    // §5.1: partial parity only matters when devices diverge — here
    // device 0 loses its volatile cache while the others keep theirs.
    ChkConfig cfg;
    ChkWorkload wl = canonical_workload(cfg.geom());
    ChkOptions opts;
    opts.divergent_loss = true;
    CrashPointExplorer ex(cfg, wl, opts);
    ChkReport rep = ex.sweep_random(60, /*seed=*/11);
    EXPECT_TRUE(rep.ok()) << rep.summary();
}

TEST(ChkExplorer, RandomWorkloadSweep)
{
    ChkConfig cfg;
    for (uint64_t seed : {1ull, 2ull}) {
        ChkWorkload wl = random_workload(cfg.geom(), seed, 12);
        ChkOptions opts;
        CrashPointExplorer ex(cfg, wl, opts);
        ChkReport rep = ex.sweep_random(25, seed);
        EXPECT_TRUE(rep.ok()) << "seed " << seed << ": " << rep.summary();
    }
}

// Regression: a deliberately introduced bug — skipping the durable
// partial-parity log append (§5.1) — must be caught by the oracle.
// The bug only bites when the array is already degraded: a FUA
// partial-stripe write acks (raising the durable floor), the power
// cut drops the cached data, and without a durable partial parity the
// degraded mount cannot reconstruct the failed device's unit, rolling
// the zone below its floor.
TEST(ChkOracle, CatchesSkippedPartialParityLog)
{
    ChkConfig cfg;
    ChkWorkload wl = degraded_workload(cfg.geom(), 1);

    ChkOptions broken;
    broken.fault = RaiznVolume::DebugFault::kSkipPartialParityLog;
    CrashPointExplorer bad(cfg, wl, broken);
    ChkReport rep = bad.explore_all();
    EXPECT_FALSE(rep.ok())
        << "oracle failed to catch the skipped partial-parity log";

    // The same workload with the mechanism intact is violation-free,
    // so the failures above are attributable to the injected bug.
    ChkOptions intact;
    CrashPointExplorer good(cfg, wl, intact);
    ChkReport clean = good.explore_all();
    EXPECT_TRUE(clean.ok()) << clean.summary();
}

} // namespace
} // namespace raizn::chk
