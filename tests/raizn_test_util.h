/**
 * @file
 * Shared fixture helpers for RAIZN volume tests: a small 5-device
 * array with data storage enabled, synchronous wrappers, and a
 * power-cut + remount harness.
 */
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "raizn/volume.h"
#include "sim/event_loop.h"
#include "zns/zns_device.h"

namespace raizn {

struct TestArray {
    std::unique_ptr<EventLoop> loop;
    std::vector<std::unique_ptr<ZnsDevice>> devs;
    std::unique_ptr<RaiznVolume> vol;

    static ZnsDeviceConfig
    device_config(uint32_t nzones = 8, uint64_t zone_cap = 128)
    {
        ZnsDeviceConfig cfg;
        cfg.nzones = nzones;
        cfg.zone_size = zone_cap;
        cfg.zone_capacity = zone_cap;
        cfg.max_open_zones = 14;
        cfg.max_active_zones = 14;
        cfg.atomic_write_sectors = 4;
        cfg.data_mode = DataMode::kStore;
        return cfg;
    }

    static RaiznConfig
    array_config(uint32_t ndev = 5, uint32_t su = 16)
    {
        RaiznConfig cfg;
        cfg.num_devices = ndev;
        cfg.su_sectors = su;
        cfg.md_zones_per_device = 3;
        cfg.stripe_buffers_per_zone = 8;
        return cfg;
    }

    /// Creates a fresh array (mkfs).
    void
    make(uint32_t ndev = 5, uint32_t su = 16, uint32_t nzones = 8,
         uint64_t zone_cap = 128)
    {
        loop = std::make_unique<EventLoop>();
        devs.clear();
        std::vector<BlockDevice *> ptrs;
        for (uint32_t i = 0; i < ndev; ++i) {
            ZnsDeviceConfig dc = device_config(nzones, zone_cap);
            dc.name = "zns" + std::to_string(i);
            devs.push_back(std::make_unique<ZnsDevice>(loop.get(), dc));
            ptrs.push_back(devs.back().get());
        }
        auto res =
            RaiznVolume::create(loop.get(), ptrs, array_config(ndev, su));
        ASSERT_TRUE(res.is_ok()) << res.status().to_string();
        vol = std::move(res).value();
    }

    /// Simulates power loss on every device, then remounts the array
    /// on a fresh event loop. Returns the mount status.
    Status
    crash_and_remount(PowerLossSpec spec)
    {
        for (auto &dev : devs)
            dev->power_cut(spec);
        vol.reset();
        loop = std::make_unique<EventLoop>();
        std::vector<BlockDevice *> ptrs;
        for (auto &dev : devs) {
            dev->reattach(loop.get());
            ptrs.push_back(dev.get());
        }
        auto res = RaiznVolume::mount(loop.get(), ptrs);
        if (!res.is_ok())
            return res.status();
        vol = std::move(res).value();
        return Status::ok();
    }

    /// Power loss with a distinct spec per device — volatile caches
    /// survive or vanish independently, the divergence that makes
    /// partial-parity logging necessary (§5.1). `specs` must have one
    /// entry per device.
    Status
    crash_and_remount(const std::vector<PowerLossSpec> &specs)
    {
        EXPECT_EQ(specs.size(), devs.size());
        for (size_t i = 0; i < devs.size(); ++i)
            devs[i]->power_cut(specs[i]);
        vol.reset();
        loop = std::make_unique<EventLoop>();
        std::vector<BlockDevice *> ptrs;
        for (auto &dev : devs) {
            dev->reattach(loop.get());
            ptrs.push_back(dev.get());
        }
        auto res = RaiznVolume::mount(loop.get(), ptrs);
        if (!res.is_ok())
            return res.status();
        vol = std::move(res).value();
        return Status::ok();
    }

    /// Clean remount (no power loss): flush, then remount.
    Status
    remount()
    {
        flush();
        return crash_and_remount(
            {PowerLossSpec::Policy::kKeepAll, 0});
    }

    // ---- Synchronous wrappers ----
    IoResult
    write(uint64_t lba, std::vector<uint8_t> data, WriteFlags flags = {})
    {
        IoResult out;
        bool done = false;
        vol->write(lba, std::move(data), flags, [&](IoResult r) {
            out = std::move(r);
            done = true;
        });
        loop->run_until_pred([&] { return done; });
        EXPECT_TRUE(done);
        return out;
    }

    IoResult
    read(uint64_t lba, uint32_t nsectors)
    {
        IoResult out;
        bool done = false;
        vol->read(lba, nsectors, [&](IoResult r) {
            out = std::move(r);
            done = true;
        });
        loop->run_until_pred([&] { return done; });
        EXPECT_TRUE(done);
        return out;
    }

    IoResult
    flush()
    {
        IoResult out;
        bool done = false;
        vol->flush([&](IoResult r) {
            out = std::move(r);
            done = true;
        });
        loop->run_until_pred([&] { return done; });
        return out;
    }

    IoResult
    reset_zone(uint32_t zone)
    {
        IoResult out;
        bool done = false;
        vol->reset_zone(zone, [&](IoResult r) {
            out = std::move(r);
            done = true;
        });
        loop->run_until_pred([&] { return done; });
        return out;
    }

    IoResult
    finish_zone(uint32_t zone)
    {
        IoResult out;
        bool done = false;
        vol->finish_zone(zone, [&](IoResult r) {
            out = std::move(r);
            done = true;
        });
        loop->run_until_pred([&] { return done; });
        return out;
    }

    Status
    rebuild(uint32_t dev)
    {
        Status out;
        bool done = false;
        vol->rebuild_device(
            dev, nullptr, [&](Status s) {
                out = s;
                done = true;
            });
        loop->run_until_pred([&] { return done; });
        return out;
    }

    /// Writes a seeded pattern and remembers nothing: callers use
    /// pattern_data(n, seed) to verify.
    void
    write_pattern(uint64_t lba, uint32_t nsectors, uint64_t seed,
                  WriteFlags flags = {})
    {
        auto r = write(lba, pattern_data(nsectors, seed), flags);
        ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
    }

    void
    expect_pattern(uint64_t lba, uint32_t nsectors, uint64_t seed)
    {
        auto r = read(lba, nsectors);
        ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
        EXPECT_EQ(r.data, pattern_data(nsectors, seed))
            << "data mismatch at lba " << lba;
    }
};

} // namespace raizn
