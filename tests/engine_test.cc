/**
 * @file
 * Unit tests for the generic multi-mode RAID engine (ZonedEngine):
 * GF(256) arithmetic, create-time validation, per-mode capacity math,
 * write/read roundtrips across every mode, crash durability of
 * flushed/FUA data with frozen-zone remount semantics, degraded reads
 * (including RAID-6 double failure and RAID-0 data loss), manual and
 * spare-driven rebuild, auto-mode kind decisions, scrubbing, journal
 * exhaustion, and metrics-registry linkage.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "array/engine.h"
#include "array/gf256.h"
#include "obs/metrics.h"
#include "sim/event_loop.h"
#include "zns/zns_device.h"

namespace raizn {
namespace {

/// The engine modes, iterated by the cross-mode cases below.
const RaidMode kEngineModes[] = {
    RaidMode::kRaid0,  RaidMode::kRaid1, RaidMode::kRaid5,
    RaidMode::kRaid6,  RaidMode::kRaid10, RaidMode::kAuto,
};

/// TestArray counterpart for ZonedEngine: owns the loop, the ZNS
/// members, and an engine in any mode; provides sync op wrappers and
/// power-cut/remount helpers.
struct EngineArray {
    std::unique_ptr<EventLoop> loop;
    std::vector<std::unique_ptr<ZnsDevice>> devs;
    std::unique_ptr<ZonedEngine> eng;
    EngineConfig cfg;
    uint32_t nzones = 5;
    uint64_t zone_cap = 64;

    ZnsDeviceConfig
    device_config(uint32_t i) const
    {
        ZnsDeviceConfig dc;
        dc.nzones = nzones;
        dc.zone_size = zone_cap;
        dc.zone_capacity = zone_cap;
        dc.max_open_zones = 14;
        dc.max_active_zones = 14;
        dc.atomic_write_sectors = 4;
        dc.data_mode = DataMode::kStore;
        dc.name = "zns" + std::to_string(i);
        return dc;
    }

    std::vector<BlockDevice *>
    dev_ptrs() const
    {
        std::vector<BlockDevice *> ptrs;
        for (const auto &d : devs)
            ptrs.push_back(d.get());
        return ptrs;
    }

    void
    make(RaidMode mode, uint32_t ndev = 4, uint32_t su = 4)
    {
        cfg = EngineConfig{};
        cfg.mode = mode;
        cfg.su_sectors = su;
        loop = std::make_unique<EventLoop>();
        devs.clear();
        for (uint32_t i = 0; i < ndev; ++i)
            devs.push_back(
                std::make_unique<ZnsDevice>(loop.get(), device_config(i)));
        auto res = ZonedEngine::create(loop.get(), dev_ptrs(), cfg);
        ASSERT_TRUE(res.is_ok()) << res.status().to_string();
        eng = std::move(res).value();
    }

    /// Cuts power on every member with `spec`, then remounts.
    void
    crash_and_remount(const PowerLossSpec &spec)
    {
        for (auto &d : devs)
            d->power_cut(spec);
        eng.reset();
        loop = std::make_unique<EventLoop>();
        for (auto &d : devs)
            d->reattach(loop.get());
        auto res = ZonedEngine::mount(loop.get(), dev_ptrs(), cfg);
        ASSERT_TRUE(res.is_ok()) << res.status().to_string();
        eng = std::move(res).value();
    }

    IoResult
    write(uint64_t lba, std::vector<uint8_t> data, WriteFlags flags = {})
    {
        IoResult out;
        bool done = false;
        eng->write(lba, std::move(data), flags, [&](IoResult r) {
            out = std::move(r);
            done = true;
        });
        loop->run_until_pred([&] { return done; });
        EXPECT_TRUE(done);
        return out;
    }

    IoResult
    read(uint64_t lba, uint32_t nsectors)
    {
        IoResult out;
        bool done = false;
        eng->read(lba, nsectors, [&](IoResult r) {
            out = std::move(r);
            done = true;
        });
        loop->run_until_pred([&] { return done; });
        EXPECT_TRUE(done);
        return out;
    }

    IoResult
    flush()
    {
        IoResult out;
        bool done = false;
        eng->flush([&](IoResult r) {
            out = std::move(r);
            done = true;
        });
        loop->run_until_pred([&] { return done; });
        return out;
    }

    IoResult
    reset_zone(uint32_t zone)
    {
        IoResult out;
        bool done = false;
        eng->reset_zone(zone, [&](IoResult r) {
            out = std::move(r);
            done = true;
        });
        loop->run_until_pred([&] { return done; });
        return out;
    }

    IoResult
    finish_zone(uint32_t zone)
    {
        IoResult out;
        bool done = false;
        eng->finish_zone(zone, [&](IoResult r) {
            out = std::move(r);
            done = true;
        });
        loop->run_until_pred([&] { return done; });
        return out;
    }

    Status
    rebuild(uint32_t dev)
    {
        Status out;
        bool done = false;
        eng->rebuild_device(dev, nullptr, [&](Status s) {
            out = s;
            done = true;
        });
        loop->run_until_pred([&] { return done; });
        EXPECT_TRUE(done);
        return out;
    }

    void
    write_pattern(uint64_t lba, uint32_t nsectors, uint64_t seed,
                  WriteFlags flags = {})
    {
        IoResult r = write(lba, pattern_data(nsectors, seed), flags);
        ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
    }

    /// Read-back check for a sub-range of an earlier write: compares
    /// [lba, lba+n) against the matching slice of the pattern written
    /// at `write_lba` with `write_n` sectors.
    void
    expect_pattern_slice(uint64_t write_lba, uint32_t write_n,
                         uint64_t seed, uint64_t lba, uint32_t n)
    {
        IoResult r = read(lba, n);
        ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
        std::vector<uint8_t> whole = pattern_data(write_n, seed);
        size_t off = static_cast<size_t>(lba - write_lba) * kSectorSize;
        ASSERT_EQ(static_cast<size_t>(n) * kSectorSize, r.data.size());
        EXPECT_EQ(0, std::memcmp(r.data.data(), whole.data() + off,
                                 r.data.size()))
            << "slice mismatch at lba " << lba;
    }

    void
    expect_pattern(uint64_t lba, uint32_t nsectors, uint64_t seed)
    {
        IoResult r = read(lba, nsectors);
        ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
        std::vector<uint8_t> want = pattern_data(nsectors, seed);
        ASSERT_EQ(r.data.size(), want.size());
        EXPECT_EQ(0, std::memcmp(r.data.data(), want.data(), want.size()))
            << "payload mismatch at lba " << lba;
    }
};

// ---------------------------------------------------------------------
// GF(256)
// ---------------------------------------------------------------------

TEST(Gf256, MulInvRoundtrip)
{
    for (int a = 1; a < 256; ++a) {
        uint8_t x = static_cast<uint8_t>(a);
        EXPECT_EQ(1, gf256::mul(x, gf256::inv(x))) << a;
    }
    EXPECT_EQ(0, gf256::mul(0, 37));
    EXPECT_EQ(gf256::mul(3, 7), gf256::mul(7, 3));
    // g^0 = 1, g^255 wraps to g^0.
    EXPECT_EQ(1, gf256::exp2(0));
    EXPECT_EQ(gf256::exp2(0), gf256::exp2(255));
    EXPECT_EQ(2, gf256::exp2(1));
}

TEST(Gf256, SolveTwoRecoversUnits)
{
    // Stripe of 4 data units, lose units 1 and 3; feed solve_two the
    // partial P/Q (parity XOR/accumulated with the surviving units).
    const size_t len = 64;
    std::vector<std::vector<uint8_t>> d(4, std::vector<uint8_t>(len));
    for (unsigned u = 0; u < 4; ++u)
        for (size_t i = 0; i < len; ++i)
            d[u][i] = static_cast<uint8_t>(u * 31 + i * 7 + 1);
    std::vector<uint8_t> p(len, 0), q(len, 0);
    for (unsigned u = 0; u < 4; ++u) {
        for (size_t i = 0; i < len; ++i)
            p[i] ^= d[u][i];
        gf256::accumulate(q.data(), d[u].data(), len, u);
    }
    // Partial parities: strip out the surviving units 0 and 2.
    std::vector<uint8_t> pp = p, qq = q;
    for (unsigned u : {0u, 2u}) {
        for (size_t i = 0; i < len; ++i)
            pp[i] ^= d[u][i];
        gf256::accumulate(qq.data(), d[u].data(), len, u);
    }
    std::vector<uint8_t> dx(len), dy(len);
    gf256::solve_two(dx.data(), dy.data(), pp.data(), qq.data(), len, 1, 3);
    EXPECT_EQ(0, std::memcmp(dx.data(), d[1].data(), len));
    EXPECT_EQ(0, std::memcmp(dy.data(), d[3].data(), len));
}

// ---------------------------------------------------------------------
// Creation / geometry
// ---------------------------------------------------------------------

TEST(EngineCreate, RejectsBadConfigs)
{
    EventLoop loop;
    std::vector<std::unique_ptr<ZnsDevice>> devs;
    std::vector<BlockDevice *> ptrs;
    for (uint32_t i = 0; i < 3; ++i) {
        ZnsDeviceConfig dc;
        dc.nzones = 5;
        dc.zone_size = 64;
        dc.zone_capacity = 64;
        dc.data_mode = DataMode::kStore;
        dc.name = "zns" + std::to_string(i);
        devs.push_back(std::make_unique<ZnsDevice>(&loop, dc));
        ptrs.push_back(devs.back().get());
    }
    struct Case {
        RaidMode mode;
        size_t ndev;
    };
    const Case bad[] = {
        {RaidMode::kRaid5, 2},  {RaidMode::kRaid6, 3},
        {RaidMode::kRaid10, 3}, {RaidMode::kAuto, 2},
        {RaidMode::kRaid0, 1},  {RaidMode::kRaizn, 3},
        {RaidMode::kMdraid, 3},
    };
    for (const Case &c : bad) {
        EngineConfig cfg;
        cfg.mode = c.mode;
        cfg.su_sectors = 4;
        std::vector<BlockDevice *> sub(ptrs.begin(),
                                       ptrs.begin() + c.ndev);
        auto res = ZonedEngine::create(&loop, sub, cfg);
        EXPECT_FALSE(res.is_ok())
            << "mode " << to_string(c.mode) << " ndev " << c.ndev;
        if (!res.is_ok()) {
            EXPECT_EQ(StatusCode::kInvalidArgument, res.status().code());
        }
    }
    // su_sectors == 0 is rejected too.
    EngineConfig cfg;
    cfg.mode = RaidMode::kRaid5;
    cfg.su_sectors = 0;
    EXPECT_FALSE(ZonedEngine::create(&loop, ptrs, cfg).is_ok());
}

TEST(EngineCreate, CapacityMathPerMode)
{
    // Z = 64, su = 4, N = 4 members, 5 phys zones (1 journal).
    struct Want {
        RaidMode mode;
        uint64_t zone_cap;
    };
    const Want wants[] = {
        {RaidMode::kRaid0, 256}, {RaidMode::kRaid1, 64},
        {RaidMode::kRaid5, 192}, {RaidMode::kRaid6, 128},
        {RaidMode::kRaid10, 128}, {RaidMode::kAuto, 60},
    };
    for (const Want &w : wants) {
        EngineArray a;
        a.make(w.mode);
        if (::testing::Test::HasFatalFailure())
            return;
        EXPECT_EQ(w.zone_cap, a.eng->zone_capacity())
            << to_string(w.mode);
        EXPECT_EQ(4u, a.eng->num_zones()) << to_string(w.mode);
        EXPECT_EQ(4 * w.zone_cap, a.eng->capacity()) << to_string(w.mode);
        EXPECT_EQ(w.mode, a.eng->mode());
    }
    // RAID-1 capacity is one member zone regardless of member count.
    EngineArray r1;
    r1.make(RaidMode::kRaid1, 2);
    EXPECT_EQ(64u, r1.eng->zone_capacity());
}

TEST(EngineCreate, ParityRotationCoversAllMembers)
{
    EngineArray a;
    a.make(RaidMode::kRaid5);
    std::vector<bool> seen(4, false);
    for (uint64_t s = 0; s < 4; ++s) {
        int p = a.eng->parity_dev(0, s);
        ASSERT_GE(p, 0);
        seen[static_cast<size_t>(p)] = true;
        // Data devs and parity dev partition the member set.
        for (uint32_t u = 0; u < a.eng->data_units(0); ++u)
            EXPECT_NE(static_cast<uint32_t>(p), a.eng->chunk_dev(0, s, u));
    }
    for (bool b : seen)
        EXPECT_TRUE(b);

    EngineArray a6;
    a6.make(RaidMode::kRaid6);
    for (uint64_t s = 0; s < 4; ++s) {
        int p = a6.eng->parity_dev(0, s);
        int q = a6.eng->q_dev(0, s);
        ASSERT_GE(p, 0);
        ASSERT_GE(q, 0);
        EXPECT_NE(p, q);
    }
}

// ---------------------------------------------------------------------
// Roundtrip across modes
// ---------------------------------------------------------------------

TEST(EngineIo, RoundtripAllModes)
{
    for (RaidMode mode : kEngineModes) {
        SCOPED_TRACE(std::string(to_string(mode)));
        EngineArray a;
        a.make(mode);
        if (::testing::Test::HasFatalFailure())
            return;
        const uint64_t cap = a.eng->zone_capacity();
        // Zone 0: sequential writes of varying sizes up to ~half cap.
        uint64_t off = 0;
        uint32_t sizes[] = {1, 4, 7, 12, 3};
        for (uint32_t n : sizes) {
            if (off + n > cap)
                break;
            a.write_pattern(off, n, /*seed=*/1000 + off);
            off += n;
        }
        // Zone 2 in parallel, exercising the rotation with a stripe-
        // crossing write.
        uint64_t z2 = 2 * cap;
        a.write_pattern(z2, 10, 7777);
        // Full-range and sub-range read-back.
        uint64_t o = 0;
        for (uint32_t n : sizes) {
            if (o + n > cap)
                break;
            a.expect_pattern(o, n, 1000 + o);
            o += n;
        }
        a.expect_pattern(z2, 10, 7777);
        a.expect_pattern_slice(z2, 10, 7777, z2 + 3, 4); // unaligned
        {
            // Sliced read inside the first write sequence: compare
            // against a reread of the same range.
            IoResult whole = a.read(0, static_cast<uint32_t>(off));
            ASSERT_TRUE(whole.status.is_ok());
            IoResult part = a.read(5, 9);
            ASSERT_TRUE(part.status.is_ok());
            EXPECT_EQ(0, std::memcmp(part.data.data(),
                                     whole.data.data() + 5 * kSectorSize,
                                     part.data.size()));
        }
        // Write-pointer mismatch and zone-boundary violations.
        IoResult bad = a.write(off + 2, pattern_data(1, 9));
        EXPECT_EQ(StatusCode::kWritePointerMismatch, bad.status.code());
        IoResult past = a.write(cap - 1, pattern_data(2, 9));
        EXPECT_FALSE(past.status.is_ok());
    }
}

TEST(EngineIo, ZoneLifecycle)
{
    EngineArray a;
    a.make(RaidMode::kRaid5);
    const uint64_t cap = a.eng->zone_capacity();
    a.write_pattern(cap, 8, 42); // zone 1
    auto zi = a.eng->zone_info(1);
    ASSERT_TRUE(zi.is_ok());
    EXPECT_EQ(8u, zi.value().written());
    // Finish: zone reports full, further writes bounce.
    ASSERT_TRUE(a.finish_zone(1).status.is_ok());
    zi = a.eng->zone_info(1);
    ASSERT_TRUE(zi.is_ok());
    EXPECT_TRUE(zi.value().full());
    EXPECT_TRUE(a.eng->zone_finished(1));
    EXPECT_EQ(StatusCode::kNoSpace,
              a.write(cap + 8, pattern_data(1, 1)).status.code());
    // The written prefix stays readable after finish.
    a.expect_pattern(cap, 8, 42);
    // Reset: empty again, gen bumped, writable from the start.
    uint64_t gen0 = a.eng->zone_gen(1);
    ASSERT_TRUE(a.reset_zone(1).status.is_ok());
    EXPECT_EQ(gen0 + 1, a.eng->zone_gen(1));
    zi = a.eng->zone_info(1);
    ASSERT_TRUE(zi.is_ok());
    EXPECT_TRUE(zi.value().empty());
    a.write_pattern(cap, 4, 43);
    a.expect_pattern(cap, 4, 43);
}

// ---------------------------------------------------------------------
// Crash durability + frozen-zone remount semantics
// ---------------------------------------------------------------------

TEST(EngineCrash, FlushedDataSurvivesPowerCutAllModes)
{
    for (RaidMode mode : kEngineModes) {
        SCOPED_TRACE(std::string(to_string(mode)));
        EngineArray a;
        a.make(mode);
        if (::testing::Test::HasFatalFailure())
            return;
        // 12 sectors (a full RAID-5 stripe at this geometry) plus a
        // 5-sector open-stripe tail, both flushed; then 7 unflushed.
        a.write_pattern(0, 12, 500);
        a.write_pattern(12, 5, 512);
        ASSERT_TRUE(a.flush().status.is_ok());
        a.write_pattern(17, 7, 517);
        a.crash_and_remount({PowerLossSpec::Policy::kDropCache, 0});
        if (::testing::Test::HasFatalFailure())
            return;
        auto zi = a.eng->zone_info(0);
        ASSERT_TRUE(zi.is_ok());
        // Acked flush = everything before it is a durability floor.
        EXPECT_GE(zi.value().written(), 17u);
        a.expect_pattern(0, 12, 500);
        a.expect_pattern(12, 5, 512);
        // Recovered non-empty zones are frozen until reset.
        EXPECT_TRUE(a.eng->zone_frozen(0));
        IoResult w = a.write(zi.value().written(), pattern_data(1, 9));
        EXPECT_EQ(StatusCode::kReadOnly, w.status.code());
        ASSERT_TRUE(a.reset_zone(0).status.is_ok());
        EXPECT_FALSE(a.eng->zone_frozen(0));
        a.write_pattern(0, 4, 600);
        a.expect_pattern(0, 4, 600);
    }
}

TEST(EngineCrash, FuaAckIsDurableAllModes)
{
    for (RaidMode mode : kEngineModes) {
        SCOPED_TRACE(std::string(to_string(mode)));
        EngineArray a;
        a.make(mode);
        if (::testing::Test::HasFatalFailure())
            return;
        WriteFlags fua;
        fua.fua = true;
        a.write_pattern(0, 6, 900, fua);
        EXPECT_GE(a.eng->stats().fua_dependency_flushes, 1u);
        a.crash_and_remount({PowerLossSpec::Policy::kDropCache, 0});
        if (::testing::Test::HasFatalFailure())
            return;
        auto zi = a.eng->zone_info(0);
        ASSERT_TRUE(zi.is_ok());
        EXPECT_GE(zi.value().written(), 6u);
        a.expect_pattern(0, 6, 900);
    }
}

TEST(EngineCrash, CleanRemountKeepsEverything)
{
    EngineArray a;
    a.make(RaidMode::kRaid6);
    const uint64_t cap = a.eng->zone_capacity();
    a.write_pattern(0, 20, 1);
    a.write_pattern(cap, 9, 2);
    ASSERT_TRUE(a.flush().status.is_ok());
    a.crash_and_remount({PowerLossSpec::Policy::kKeepAll, 0});
    a.expect_pattern(0, 20, 1);
    a.expect_pattern(cap, 9, 2);
    auto zi = a.eng->zone_info(0);
    ASSERT_TRUE(zi.is_ok());
    EXPECT_EQ(20u, zi.value().written());
}

TEST(EngineCrash, InterruptedResetRollsForwardAtMount)
{
    EngineArray a;
    a.make(RaidMode::kRaid5);
    a.write_pattern(0, 12, 3);
    ASSERT_TRUE(a.flush().status.is_ok());
    uint64_t gen0 = a.eng->zone_gen(0);
    ASSERT_TRUE(a.reset_zone(0).status.is_ok());
    // The reset-done record may or may not be durable yet; power-cut
    // and remount must converge on "zone 0 is reset" either way.
    a.crash_and_remount({PowerLossSpec::Policy::kKeepAll, 0});
    EXPECT_GE(a.eng->zone_gen(0), gen0);
    auto zi = a.eng->zone_info(0);
    ASSERT_TRUE(zi.is_ok());
    EXPECT_TRUE(zi.value().empty());
    a.write_pattern(0, 4, 4);
    a.expect_pattern(0, 4, 4);
}

// ---------------------------------------------------------------------
// Degraded operation
// ---------------------------------------------------------------------

TEST(EngineDegraded, RedundantModesServeReadsWithOneMemberDown)
{
    for (RaidMode mode : {RaidMode::kRaid1, RaidMode::kRaid5,
                          RaidMode::kRaid6, RaidMode::kRaid10,
                          RaidMode::kAuto}) {
        SCOPED_TRACE(std::string(to_string(mode)));
        EngineArray a;
        a.make(mode);
        if (::testing::Test::HasFatalFailure())
            return;
        a.write_pattern(0, 24, 10);
        ASSERT_TRUE(a.flush().status.is_ok());
        a.eng->mark_device_failed(1);
        EXPECT_TRUE(a.eng->degraded());
        EXPECT_EQ(1, a.eng->failed_device());
        a.expect_pattern(0, 24, 10);
        // Force reconstruction of a mid-range slice.
        a.expect_pattern_slice(0, 24, 10, 6, 7);
        EXPECT_FALSE(a.eng->data_loss());
        // Degraded writes keep flowing and stay readable.
        a.write_pattern(24, 8, 34);
        a.expect_pattern(24, 8, 34);
    }
}

TEST(EngineDegraded, Raid6SurvivesTwoFailures)
{
    EngineArray a;
    a.make(RaidMode::kRaid6);
    a.write_pattern(0, 24, 20);
    ASSERT_TRUE(a.flush().status.is_ok());
    a.eng->mark_device_failed(0);
    a.eng->mark_device_failed(2);
    EXPECT_FALSE(a.eng->data_loss());
    a.expect_pattern(0, 24, 20);
    EXPECT_GE(a.eng->stats().reconstructed_sectors, 1u);
    // A third failure exceeds the tolerance: IO errors out.
    a.eng->mark_device_failed(3);
    EXPECT_TRUE(a.eng->data_loss());
    EXPECT_FALSE(a.read(0, 24).status.is_ok());
    EXPECT_FALSE(a.write(24, pattern_data(4, 1)).status.is_ok());
}

TEST(EngineDegraded, Raid0SurfacesDataLoss)
{
    EngineArray a;
    a.make(RaidMode::kRaid0);
    a.write_pattern(0, 32, 30);
    ASSERT_TRUE(a.flush().status.is_ok());
    a.eng->mark_device_failed(1);
    EXPECT_TRUE(a.eng->data_loss());
    // Chunks on the lost member are gone; reads covering them fail.
    EXPECT_FALSE(a.read(0, 32).status.is_ok());
    EXPECT_FALSE(a.write(32, pattern_data(4, 1)).status.is_ok());
}

TEST(EngineDegraded, OpenStripeTailServesDegradedReads)
{
    // 5 sectors = an incomplete stripe: its parity is only in the tail
    // buffer, so a degraded read must be served from there.
    EngineArray a;
    a.make(RaidMode::kRaid5);
    a.write_pattern(0, 5, 40);
    a.eng->mark_device_failed(0);
    a.expect_pattern(0, 5, 40);
    EXPECT_GE(a.eng->stats().degraded_reads, 1u);
}

// ---------------------------------------------------------------------
// Rebuild
// ---------------------------------------------------------------------

TEST(EngineRebuild, Raid5RebuildRestoresRedundancy)
{
    EngineArray a;
    a.make(RaidMode::kRaid5);
    const uint64_t cap = a.eng->zone_capacity();
    a.write_pattern(0, 24, 50); // two full stripes
    a.write_pattern(cap, 17, 51); // stripe + open tail
    ASSERT_TRUE(a.finish_zone(2).status.is_ok()); // empty finished zone
    ASSERT_TRUE(a.flush().status.is_ok());
    a.eng->mark_device_failed(1);
    a.write_pattern(24, 12, 52); // degraded write
    // Physically swap the member for a factory-fresh one, then rebuild.
    a.devs[1]->replace();
    Status s = a.rebuild(1);
    ASSERT_TRUE(s.is_ok()) << s.to_string();
    EXPECT_FALSE(a.eng->degraded());
    EXPECT_GE(a.eng->stats().zones_rebuilt, 1u);
    // Prove the rebuilt member carries real data: fail another member
    // and read everything back through reconstruction paths that now
    // need member 1.
    a.eng->mark_device_failed(3);
    a.expect_pattern(0, 24, 50);
    a.expect_pattern(24, 12, 52);
    a.expect_pattern(cap, 17, 51);
    // New writes after rebuild land on the rebuilt member too.
    a.write_pattern(cap + 17, 7, 53);
    a.expect_pattern(cap + 17, 7, 53);
}

TEST(EngineRebuild, MirrorRebuildAndBusySemantics)
{
    EngineArray a;
    a.make(RaidMode::kRaid1, 2);
    a.write_pattern(0, 10, 60);
    ASSERT_TRUE(a.flush().status.is_ok());
    a.eng->mark_device_failed(0);
    a.write_pattern(10, 6, 61);
    a.devs[0]->replace();
    Status s = a.rebuild(0);
    ASSERT_TRUE(s.is_ok()) << s.to_string();
    a.eng->mark_device_failed(1);
    a.expect_pattern(0, 10, 60);
    a.expect_pattern(10, 6, 61);
}

TEST(EngineRebuild, SpareLifecycleAutoFailover)
{
    EngineArray a;
    a.make(RaidMode::kRaid5);
    a.write_pattern(0, 24, 70);
    ASSERT_TRUE(a.flush().status.is_ok());
    auto spare = std::make_unique<ZnsDevice>(a.loop.get(),
                                             a.device_config(9));
    a.eng->set_spare(spare.get());
    bool rebuilt = false;
    Status rs;
    ZonedEngine::LifecycleConfig lc;
    lc.auto_rebuild = true;
    lc.on_rebuild_done = [&](uint32_t dev, Status st) {
        EXPECT_EQ(2u, dev);
        rs = st;
        rebuilt = true;
    };
    a.eng->set_lifecycle(std::move(lc));
    a.eng->mark_device_failed(2);
    a.loop->run_until_pred([&] { return rebuilt; });
    ASSERT_TRUE(rebuilt);
    ASSERT_TRUE(rs.is_ok()) << rs.to_string();
    EXPECT_EQ(1u, a.eng->stats().auto_failovers);
    EXPECT_EQ(1u, a.eng->stats().spares_promoted);
    EXPECT_FALSE(a.eng->degraded());
    // The array is fully redundant again on the promoted spare.
    a.eng->mark_device_failed(0);
    a.expect_pattern(0, 24, 70);
}

// ---------------------------------------------------------------------
// Auto mode
// ---------------------------------------------------------------------

TEST(EngineAuto, KindFollowsResetGeneration)
{
    EngineArray a;
    a.make(RaidMode::kAuto);
    // Fresh zone, generation 0 < auto_hot_resets (2): parity.
    EXPECT_FALSE(a.eng->zone_kind_decided(0));
    a.write_pattern(0, 4, 80);
    EXPECT_TRUE(a.eng->zone_kind_decided(0));
    EXPECT_EQ(ZonedEngine::ZoneKind::kParity, a.eng->zone_kind(0));
    EXPECT_EQ(1u, a.eng->stats().auto_parity_zones);
    // Two resets make the zone "hot": mirrored from then on.
    ASSERT_TRUE(a.reset_zone(0).status.is_ok());
    a.write_pattern(0, 4, 81);
    ASSERT_TRUE(a.reset_zone(0).status.is_ok());
    EXPECT_EQ(2u, a.eng->zone_gen(0));
    a.write_pattern(0, 4, 82);
    EXPECT_EQ(ZonedEngine::ZoneKind::kMirror, a.eng->zone_kind(0));
    EXPECT_EQ(1u, a.eng->stats().auto_mirror_zones);
    a.expect_pattern(0, 4, 82);
    // The kind decision is journaled: it survives a clean remount.
    ASSERT_TRUE(a.flush().status.is_ok());
    a.crash_and_remount({PowerLossSpec::Policy::kKeepAll, 0});
    EXPECT_EQ(ZonedEngine::ZoneKind::kMirror, a.eng->zone_kind(0));
    a.expect_pattern(0, 4, 82);
    // An undecided cold zone stays parity after remount.
    ASSERT_TRUE(a.reset_zone(1).status.is_ok());
    a.write_pattern(a.eng->zone_capacity(), 4, 83);
    EXPECT_EQ(ZonedEngine::ZoneKind::kParity, a.eng->zone_kind(1));
}

// ---------------------------------------------------------------------
// Scrub
// ---------------------------------------------------------------------

TEST(EngineScrub, CleanArrayHasNoMismatches)
{
    for (RaidMode mode : kEngineModes) {
        SCOPED_TRACE(std::string(to_string(mode)));
        EngineArray a;
        a.make(mode);
        if (::testing::Test::HasFatalFailure())
            return;
        a.write_pattern(0, 24, 90);
        ASSERT_TRUE(a.flush().status.is_ok());
        ZonedArray::ScrubReport rep;
        Status s = a.eng->scrub_all(&rep);
        ASSERT_TRUE(s.is_ok()) << s.to_string();
        EXPECT_GE(rep.stripes_scanned, 1u);
        EXPECT_EQ(0u, rep.parity_mismatches);
        EXPECT_EQ(0u, rep.crc_mismatches);
        EXPECT_EQ(0u, rep.unrecoverable);
    }
}

TEST(EngineScrub, DetectsLatentCorruption)
{
    EngineArray a;
    a.make(RaidMode::kRaid5);
    a.write_pattern(0, 24, 91); // two settled stripes
    ASSERT_TRUE(a.flush().status.is_ok());
    // Corrupt one data chunk of stripe 0 on whichever member holds
    // unit 0 (physical zone 1, row 0).
    uint32_t victim = a.eng->chunk_dev(0, 0, 0);
    a.devs[victim]->corrupt(1 * 64, 4, 1234);
    ZonedArray::ScrubReport rep;
    Status s = a.eng->scrub_all(&rep);
    ASSERT_TRUE(s.is_ok()) << s.to_string();
    EXPECT_GE(rep.crc_mismatches + rep.parity_mismatches, 1u);
}

TEST(EngineScrub, ReadPathRepairsCorruptChunk)
{
    EngineArray a;
    a.make(RaidMode::kRaid5);
    a.write_pattern(0, 24, 92);
    ASSERT_TRUE(a.flush().status.is_ok());
    uint32_t victim = a.eng->chunk_dev(0, 0, 0);
    a.devs[victim]->corrupt(1 * 64, 4, 4321);
    // The read detects the bad CRC and re-serves from redundancy.
    a.expect_pattern(0, 24, 92);
    EXPECT_GE(a.eng->stats().crc_mismatches, 1u);
    EXPECT_GE(a.eng->stats().read_repairs, 1u);
}

// ---------------------------------------------------------------------
// Journal
// ---------------------------------------------------------------------

TEST(EngineWal, ResetCyclesConsumeSlotsUntilNoSpace)
{
    EngineArray a;
    a.make(RaidMode::kRaid5);
    EXPECT_EQ(64u, a.eng->wal_slots());
    EXPECT_EQ(0u, a.eng->wal_used());
    // Each non-empty reset journals an intent + a done record.
    bool saw_nospace = false;
    uint64_t last_seed = 0;
    for (int i = 0; i < 40 && !saw_nospace; ++i) {
        last_seed = 100 + static_cast<uint64_t>(i);
        a.write_pattern(0, 4, last_seed);
        IoResult r = a.reset_zone(0);
        if (!r.status.is_ok()) {
            EXPECT_EQ(StatusCode::kNoSpace, r.status.code());
            saw_nospace = true;
        }
    }
    EXPECT_TRUE(saw_nospace);
    EXPECT_LE(a.eng->wal_used(), a.eng->wal_slots());
    // The failed reset left the zone intact; reads keep working after
    // journal exhaustion.
    a.expect_pattern(0, 4, last_seed);
}

// ---------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------

TEST(EngineObs, StatsLinkIntoRegistryUnderModePrefix)
{
    EngineArray a;
    a.make(RaidMode::kRaid5);
    obs::MetricsRegistry reg;
    a.eng->attach_observability(&reg, nullptr);
    a.write_pattern(0, 12, 110);
    a.expect_pattern(0, 12, 110);
    ASSERT_TRUE(a.flush().status.is_ok());
    auto samples = reg.snapshot();
    uint64_t writes = 0, reads = 0;
    bool saw_dev = false, saw_lat = false;
    for (const auto &smp : samples) {
        if (smp.name == "raid5.logical_writes")
            writes = smp.value;
        if (smp.name == "raid5.logical_reads")
            reads = smp.value;
        if (smp.name.rfind("raid5.dev0.", 0) == 0)
            saw_dev = true;
        if (smp.name == "raid5.write.total_ns")
            saw_lat = true;
    }
    EXPECT_EQ(a.eng->stats().logical_writes, writes);
    EXPECT_EQ(a.eng->stats().logical_reads, reads);
    EXPECT_GE(writes, 1u);
    EXPECT_GE(reads, 1u);
    EXPECT_TRUE(saw_dev);
    EXPECT_TRUE(saw_lat);
}

} // namespace
} // namespace raizn
