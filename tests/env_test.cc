/**
 * @file
 * Tests for the storage environments: file round trips, padding
 * semantics, deletion + zone reclaim, and the zoned cleaner.
 */
#include <gtest/gtest.h>

#include "env/block_env.h"
#include "env/zoned_env.h"
#include "wkld/setup.h"

namespace raizn {
namespace {

std::vector<uint8_t>
bytes_of(const std::string &s)
{
    return std::vector<uint8_t>(s.begin(), s.end());
}

class ZonedEnvTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        BenchScale scale;
        scale.zones_per_device = 9; // 6 logical zones
        scale.zone_cap_sectors = 256; // 1 MiB zones
        scale.data_mode = DataMode::kStore;
        arr_ = make_raizn_array(scale);
        env_ = std::make_unique<ZonedEnv>(arr_.loop.get(),
                                          arr_.vol.get());
    }

    RaiznArray arr_;
    std::unique_ptr<ZonedEnv> env_;
};

TEST_F(ZonedEnvTest, WriteReadRoundTrip)
{
    auto f = env_->new_writable("a");
    ASSERT_TRUE(f.is_ok());
    ASSERT_TRUE(f.value()->append(bytes_of("hello ")).is_ok());
    ASSERT_TRUE(f.value()->append(bytes_of("zoned world")).is_ok());
    ASSERT_TRUE(f.value()->close().is_ok());
    EXPECT_EQ(env_->file_size("a").value(), 17u);

    auto r = env_->open_readable("a");
    ASSERT_TRUE(r.is_ok());
    auto data = r.value()->read(0, 17);
    ASSERT_TRUE(data.is_ok());
    EXPECT_EQ(std::string(data.value().begin(), data.value().end()),
              "hello zoned world");
    // Partial read at an offset.
    data = r.value()->read(6, 5);
    EXPECT_EQ(std::string(data.value().begin(), data.value().end()),
              "zoned");
}

TEST_F(ZonedEnvTest, LargeFileSpansZones)
{
    auto f = env_->new_writable("big");
    ASSERT_TRUE(f.is_ok());
    // 2.5 zones worth of data.
    std::vector<uint8_t> chunk(256 * kKiB);
    for (size_t i = 0; i < chunk.size(); ++i)
        chunk[i] = static_cast<uint8_t>(i * 7);
    size_t total = 0;
    while (total < 10 * kMiB) {
        ASSERT_TRUE(f.value()->append(chunk).is_ok());
        total += chunk.size();
    }
    ASSERT_TRUE(f.value()->close().is_ok());
    auto r = env_->open_readable("big");
    ASSERT_TRUE(r.is_ok());
    auto data = r.value()->read(5 * kMiB + 3, 1000);
    ASSERT_TRUE(data.is_ok());
    for (size_t i = 0; i < 1000; ++i) {
        size_t off = (5 * kMiB + 3 + i) % chunk.size();
        ASSERT_EQ(data.value()[i], chunk[off]) << i;
    }
}

TEST_F(ZonedEnvTest, SyncPadsButReadsStayCorrect)
{
    auto f = env_->new_writable("wal");
    ASSERT_TRUE(f.is_ok());
    // Repeated small append+sync, like a WAL: each sync pads to a
    // sector but the byte stream must read back seamlessly.
    std::string all;
    for (int i = 0; i < 10; ++i) {
        std::string rec = "record-" + std::to_string(i) + ";";
        ASSERT_TRUE(f.value()->append(bytes_of(rec)).is_ok());
        ASSERT_TRUE(f.value()->sync().is_ok());
        all += rec;
    }
    auto r = env_->open_readable("wal");
    auto data = r.value()->read(0, all.size());
    ASSERT_TRUE(data.is_ok());
    EXPECT_EQ(std::string(data.value().begin(), data.value().end()), all);
}

TEST_F(ZonedEnvTest, DeleteReclaimsDeadZones)
{
    // Fill two whole logical zones with one file, delete it: the dead
    // zones reset.
    auto f = env_->new_writable("dead");
    std::vector<uint8_t> mb(kMiB, 0xcd);
    uint64_t zone_bytes = arr_.vol->zone_capacity() * kSectorSize;
    for (uint64_t written = 0; written < 2 * zone_bytes + kMiB;
         written += mb.size()) {
        ASSERT_TRUE(f.value()->append(mb).is_ok());
    }
    ASSERT_TRUE(f.value()->close().is_ok());
    uint64_t resets_before = arr_.vol->stats().zone_resets;
    ASSERT_TRUE(env_->delete_file("dead").is_ok());
    EXPECT_GT(arr_.vol->stats().zone_resets, resets_before);
    EXPECT_FALSE(env_->file_exists("dead"));
}

TEST_F(ZonedEnvTest, CleanerRelocatesLiveData)
{
    // Interleave two files, delete one, then fill until the cleaner
    // must run; the survivor must stay intact.
    auto a = env_->new_writable("keep");
    auto b = env_->new_writable("kill");
    std::vector<uint8_t> ka(64 * kKiB, 0xaa), kb(64 * kKiB, 0xbb);
    for (int i = 0; i < 30; ++i) {
        ASSERT_TRUE(a.value()->append(ka).is_ok());
        ASSERT_TRUE(a.value()->sync().is_ok());
        ASSERT_TRUE(b.value()->append(kb).is_ok());
        ASSERT_TRUE(b.value()->sync().is_ok());
    }
    ASSERT_TRUE(a.value()->close().is_ok());
    ASSERT_TRUE(b.value()->close().is_ok());
    ASSERT_TRUE(env_->delete_file("kill").is_ok());

    // Fill remaining space to force cleaning.
    auto c = env_->new_writable("filler");
    std::vector<uint8_t> mb(256 * kKiB, 0x11);
    Status st;
    for (int i = 0; i < 40; ++i) {
        st = c.value()->append(mb);
        if (!st)
            break;
        st = c.value()->sync();
        if (!st)
            break;
    }
    ASSERT_TRUE(c.value()->close().is_ok());
    // The keep file reads back correctly even if relocated.
    auto r = env_->open_readable("keep");
    auto data = r.value()->read(10 * 64 * kKiB, 64 * kKiB);
    ASSERT_TRUE(data.is_ok());
    for (uint8_t v : data.value())
        ASSERT_EQ(v, 0xaa);
}

class BlockEnvTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        BenchScale scale;
        scale.zones_per_device = 9;
        scale.zone_cap_sectors = 256;
        scale.data_mode = DataMode::kStore;
        arr_ = make_mdraid_array(scale);
        env_ = std::make_unique<BlockEnv>(arr_.loop.get(),
                                          arr_.vol.get());
    }

    MdArray arr_;
    std::unique_ptr<BlockEnv> env_;
};

TEST_F(BlockEnvTest, WriteReadRoundTrip)
{
    auto f = env_->new_writable("x");
    ASSERT_TRUE(f.is_ok());
    ASSERT_TRUE(f.value()->append(bytes_of("block world")).is_ok());
    ASSERT_TRUE(f.value()->close().is_ok());
    auto r = env_->open_readable("x");
    auto data = r.value()->read(0, 11);
    ASSERT_TRUE(data.is_ok());
    EXPECT_EQ(std::string(data.value().begin(), data.value().end()),
              "block world");
}

TEST_F(BlockEnvTest, TailRewriteAcrossSyncs)
{
    auto f = env_->new_writable("wal");
    std::string all;
    for (int i = 0; i < 20; ++i) {
        std::string rec(100, static_cast<char>('a' + i % 26));
        ASSERT_TRUE(f.value()->append(bytes_of(rec)).is_ok());
        ASSERT_TRUE(f.value()->sync().is_ok());
        all += rec;
    }
    ASSERT_TRUE(f.value()->close().is_ok());
    EXPECT_EQ(env_->file_size("wal").value(), all.size());
    auto r = env_->open_readable("wal");
    auto data = r.value()->read(0, all.size());
    ASSERT_TRUE(data.is_ok());
    EXPECT_EQ(std::string(data.value().begin(), data.value().end()), all);
}

TEST_F(BlockEnvTest, DeleteFreesSpace)
{
    uint64_t before = env_->free_bytes();
    auto f = env_->new_writable("tmp");
    std::vector<uint8_t> mb(kMiB, 0x5a);
    ASSERT_TRUE(f.value()->append(mb).is_ok());
    ASSERT_TRUE(f.value()->close().is_ok());
    EXPECT_LT(env_->free_bytes(), before);
    ASSERT_TRUE(env_->delete_file("tmp").is_ok());
    EXPECT_EQ(env_->free_bytes(), before);
}

TEST_F(BlockEnvTest, ManyFilesListAndDelete)
{
    for (int i = 0; i < 10; ++i) {
        auto f = env_->new_writable("f" + std::to_string(i));
        ASSERT_TRUE(f.value()->append(bytes_of("data")).is_ok());
        ASSERT_TRUE(f.value()->close().is_ok());
    }
    EXPECT_EQ(env_->list_files().size(), 10u);
    for (int i = 0; i < 10; ++i)
        ASSERT_TRUE(env_->delete_file("f" + std::to_string(i)).is_ok());
    EXPECT_TRUE(env_->list_files().empty());
}

} // namespace
} // namespace raizn
