/**
 * @file
 * Cross-engine differential tests over the ZonedArray interface: one
 * seeded workload replayed against every zoned mode (the paper's
 * RaiznVolume plus each ZonedEngine level) must produce identical
 * logical semantics — the same per-op statuses, the same read-back
 * bytes, the same acked-write durability floor after a power cut, and
 * unchanged behavior under a mid-workload device failure for the
 * redundant modes. Also the regression for the hoisted resilience
 * wiring: RaiznVolume, MdVolume, and ZonedEngine all count retries
 * through the shared ZonedArray retrier into the metrics registry.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "array/engine.h"
#include "common/rng.h"
#include "fault/fault_device.h"
#include "mdraid/md_volume.h"
#include "obs/metrics.h"
#include "raizn/volume.h"
#include "sim/event_loop.h"
#include "zns/conv_device.h"
#include "zns/zns_device.h"

namespace raizn {
namespace {

// The workload touches zones [0, kZones) and never fills any zone past
// kFillCap sectors, so it replays identically on every geometry (the
// smallest zone capacity in the matrix is auto mode's 60 sectors).
constexpr uint32_t kZones = 3;
constexpr uint64_t kFillCap = 48;

// ---------------------------------------------------------------------
// System under test: any ZonedArray over power-cuttable ZNS members.
// ---------------------------------------------------------------------

struct Sut {
    std::string name;
    std::unique_ptr<EventLoop> loop;
    std::vector<std::unique_ptr<ZnsDevice>> devs;
    std::unique_ptr<ZonedArray> arr;
    bool is_engine = false;
    EngineConfig ecfg;

    static ZnsDeviceConfig
    dev_config(uint32_t i, uint32_t nzones, uint64_t zone_cap)
    {
        ZnsDeviceConfig dc;
        dc.nzones = nzones;
        dc.zone_size = zone_cap;
        dc.zone_capacity = zone_cap;
        dc.max_open_zones = 14;
        dc.max_active_zones = 14;
        dc.atomic_write_sectors = 4;
        dc.data_mode = DataMode::kStore;
        dc.name = "zns" + std::to_string(i);
        return dc;
    }

    std::vector<BlockDevice *>
    dev_ptrs() const
    {
        std::vector<BlockDevice *> ptrs;
        for (const auto &d : devs)
            ptrs.push_back(d.get());
        return ptrs;
    }

    void
    make_engine(RaidMode mode)
    {
        name = std::string(to_string(mode));
        is_engine = true;
        ecfg = EngineConfig{};
        ecfg.mode = mode;
        ecfg.su_sectors = 4;
        loop = std::make_unique<EventLoop>();
        for (uint32_t i = 0; i < 4; ++i)
            devs.push_back(std::make_unique<ZnsDevice>(
                loop.get(), dev_config(i, 5, 64)));
        auto res = ZonedEngine::create(loop.get(), dev_ptrs(), ecfg);
        ASSERT_TRUE(res.is_ok()) << name << ": " << res.status().to_string();
        arr = std::move(res).value();
    }

    void
    make_raizn()
    {
        name = "raizn";
        is_engine = false;
        loop = std::make_unique<EventLoop>();
        for (uint32_t i = 0; i < 4; ++i)
            devs.push_back(std::make_unique<ZnsDevice>(
                loop.get(), dev_config(i, 8, 128)));
        RaiznConfig rc;
        rc.num_devices = 4;
        rc.su_sectors = 16;
        auto res = RaiznVolume::create(loop.get(), dev_ptrs(), rc);
        ASSERT_TRUE(res.is_ok()) << res.status().to_string();
        arr = std::move(res).value();
    }

    /// Power-cuts every member with `spec` and remounts the array.
    void
    crash_and_remount(const PowerLossSpec &spec)
    {
        for (auto &d : devs)
            d->power_cut(spec);
        arr.reset();
        loop = std::make_unique<EventLoop>();
        for (auto &d : devs)
            d->reattach(loop.get());
        if (is_engine) {
            auto res = ZonedEngine::mount(loop.get(), dev_ptrs(), ecfg);
            ASSERT_TRUE(res.is_ok())
                << name << ": " << res.status().to_string();
            arr = std::move(res).value();
        } else {
            auto res = RaiznVolume::mount(loop.get(), dev_ptrs());
            ASSERT_TRUE(res.is_ok())
                << name << ": " << res.status().to_string();
            arr = std::move(res).value();
        }
    }

    // -- sync op wrappers --------------------------------------------
    IoResult
    write(uint64_t lba, std::vector<uint8_t> data, WriteFlags flags = {})
    {
        IoResult out;
        bool done = false;
        arr->write(lba, std::move(data), flags, [&](IoResult r) {
            out = std::move(r);
            done = true;
        });
        loop->run_until_pred([&] { return done; });
        EXPECT_TRUE(done);
        return out;
    }

    IoResult
    read(uint64_t lba, uint32_t nsectors)
    {
        IoResult out;
        bool done = false;
        arr->read(lba, nsectors, [&](IoResult r) {
            out = std::move(r);
            done = true;
        });
        loop->run_until_pred([&] { return done; });
        EXPECT_TRUE(done);
        return out;
    }

    IoResult
    flush()
    {
        IoResult out;
        bool done = false;
        arr->flush([&](IoResult r) {
            out = std::move(r);
            done = true;
        });
        loop->run_until_pred([&] { return done; });
        return out;
    }

    IoResult
    reset_zone(uint32_t zone)
    {
        IoResult out;
        bool done = false;
        arr->reset_zone(zone, [&](IoResult r) {
            out = std::move(r);
            done = true;
        });
        loop->run_until_pred([&] { return done; });
        return out;
    }

    IoResult
    finish_zone(uint32_t zone)
    {
        IoResult out;
        bool done = false;
        arr->finish_zone(zone, [&](IoResult r) {
            out = std::move(r);
            done = true;
        });
        loop->run_until_pred([&] { return done; });
        return out;
    }
};

// ---------------------------------------------------------------------
// Seeded workload, generated once, replayed on every mode.
// ---------------------------------------------------------------------

struct Op {
    enum Kind : uint8_t { kWrite, kRead, kFlush, kReset, kFinish };
    Kind kind;
    uint32_t zone = 0;
    uint64_t off = 0; ///< zone-relative sector offset
    uint32_t n = 0;
    uint64_t seed = 0; ///< payload seed (writes)
};

/// Builds a valid op sequence against a master shadow so every array
/// sees only ops it must accept.
std::vector<Op>
generate_workload(uint64_t seed, size_t nops)
{
    Rng rng(seed);
    std::vector<Op> ops;
    uint64_t wp[kZones] = {0, 0, 0};
    uint64_t gen[kZones] = {0, 0, 0};
    bool finished[kZones] = {false, false, false};
    while (ops.size() < nops) {
        uint32_t z = static_cast<uint32_t>(rng.next_below(kZones));
        double r = rng.next_double();
        if (r < 0.50) {
            if (finished[z] || wp[z] >= kFillCap)
                continue;
            uint32_t room = static_cast<uint32_t>(kFillCap - wp[z]);
            uint32_t n = static_cast<uint32_t>(
                rng.next_range(1, std::min<uint32_t>(6, room)));
            uint64_t pseed =
                (static_cast<uint64_t>(z) << 32) ^ (gen[z] << 16) ^ wp[z];
            ops.push_back({Op::kWrite, z, wp[z], n, pseed});
            wp[z] += n;
        } else if (r < 0.78) {
            if (wp[z] == 0)
                continue;
            uint64_t off = rng.next_below(wp[z]);
            uint32_t n = static_cast<uint32_t>(
                rng.next_range(1, wp[z] - off));
            ops.push_back({Op::kRead, z, off, n, 0});
        } else if (r < 0.86) {
            ops.push_back({Op::kFlush});
        } else if (r < 0.94) {
            if (wp[z] == 0 && !finished[z])
                continue;
            ops.push_back({Op::kReset, z});
            wp[z] = 0;
            ++gen[z];
            finished[z] = false;
        } else {
            if (finished[z])
                continue;
            ops.push_back({Op::kFinish, z});
            finished[z] = true;
        }
    }
    return ops;
}

/// Per-zone logical shadow maintained during replay.
struct Shadow {
    std::vector<uint8_t> bytes =
        std::vector<uint8_t>(kFillCap * kSectorSize, 0);
    uint64_t wp = 0;
};

/**
 * Replays `ops` on `sut`, asserting every op succeeds and every read
 * matches the shadow. When `fail_at` >= 0, member `fail_dev` is marked
 * failed before op `fail_at` — redundant modes must not change any
 * outcome. Returns the final written contents of each zone as read
 * back from the array.
 */
std::vector<std::vector<uint8_t>>
replay(Sut &sut, const std::vector<Op> &ops, int fail_at = -1,
       uint32_t fail_dev = 0)
{
    const uint64_t zcap = sut.arr->zone_capacity();
    EXPECT_GE(zcap, kFillCap) << sut.name;
    EXPECT_GE(sut.arr->num_zones(), kZones) << sut.name;
    Shadow shadow[kZones];
    for (size_t i = 0; i < ops.size(); ++i) {
        if (fail_at >= 0 && i == static_cast<size_t>(fail_at))
            sut.arr->mark_device_failed(fail_dev);
        const Op &op = ops[i];
        SCOPED_TRACE(sut.name + " op " + std::to_string(i));
        switch (op.kind) {
        case Op::kWrite: {
            std::vector<uint8_t> data = pattern_data(op.n, op.seed);
            std::memcpy(shadow[op.zone].bytes.data() +
                            op.off * kSectorSize,
                        data.data(), data.size());
            shadow[op.zone].wp = op.off + op.n;
            IoResult r =
                sut.write(op.zone * zcap + op.off, std::move(data));
            EXPECT_TRUE(r.status.is_ok()) << r.status.to_string();
            break;
        }
        case Op::kRead: {
            IoResult r = sut.read(op.zone * zcap + op.off, op.n);
            EXPECT_TRUE(r.status.is_ok()) << r.status.to_string();
            if (r.status.is_ok() &&
                r.data.size() == op.n * kSectorSize) {
                EXPECT_EQ(0, std::memcmp(r.data.data(),
                                         shadow[op.zone].bytes.data() +
                                             op.off * kSectorSize,
                                         r.data.size()));
            } else if (r.status.is_ok()) {
                ADD_FAILURE() << "short read: " << r.data.size();
            }
            break;
        }
        case Op::kFlush:
            EXPECT_TRUE(sut.flush().status.is_ok());
            break;
        case Op::kReset: {
            IoResult r = sut.reset_zone(op.zone);
            EXPECT_TRUE(r.status.is_ok()) << r.status.to_string();
            shadow[op.zone].wp = 0;
            std::fill(shadow[op.zone].bytes.begin(),
                      shadow[op.zone].bytes.end(), 0);
            break;
        }
        case Op::kFinish: {
            IoResult r = sut.finish_zone(op.zone);
            EXPECT_TRUE(r.status.is_ok()) << r.status.to_string();
            break;
        }
        }
    }
    // Final read-back of every zone's written prefix.
    std::vector<std::vector<uint8_t>> out(kZones);
    for (uint32_t z = 0; z < kZones; ++z) {
        uint64_t wp = shadow[z].wp;
        if (wp == 0)
            continue;
        IoResult r = sut.read(z * zcap, static_cast<uint32_t>(wp));
        EXPECT_TRUE(r.status.is_ok())
            << sut.name << " zone " << z << ": " << r.status.to_string();
        if (r.status.is_ok()) {
            EXPECT_EQ(0, std::memcmp(r.data.data(),
                                     shadow[z].bytes.data(),
                                     r.data.size()))
                << sut.name << " zone " << z;
            out[z] = std::move(r.data);
        }
    }
    return out;
}

// ---------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------

TEST(ZonedArrayDifferential, SameWorkloadSameSemanticsEveryMode)
{
    const std::vector<Op> ops = generate_workload(0xd1ff, 140);
    std::vector<std::vector<uint8_t>> reference;
    bool have_ref = false;
    const RaidMode modes[] = {
        RaidMode::kRaizn, RaidMode::kRaid0,  RaidMode::kRaid1,
        RaidMode::kRaid5, RaidMode::kRaid6,  RaidMode::kRaid10,
        RaidMode::kAuto,
    };
    for (RaidMode mode : modes) {
        Sut sut;
        if (mode == RaidMode::kRaizn)
            sut.make_raizn();
        else
            sut.make_engine(mode);
        if (::testing::Test::HasFatalFailure())
            return;
        auto final_state = replay(sut, ops);
        if (!have_ref) {
            reference = std::move(final_state);
            have_ref = true;
            continue;
        }
        // Byte-identical logical state across every mode.
        ASSERT_EQ(reference.size(), final_state.size());
        for (uint32_t z = 0; z < kZones; ++z)
            EXPECT_EQ(reference[z], final_state[z])
                << sut.name << " zone " << z;
    }
}

TEST(ZonedArrayDifferential, MidWorkloadFailureChangesNothing)
{
    const std::vector<Op> ops = generate_workload(0xfa11, 120);
    const RaidMode modes[] = {
        RaidMode::kRaizn, RaidMode::kRaid1, RaidMode::kRaid5,
        RaidMode::kRaid6, RaidMode::kRaid10, RaidMode::kAuto,
    };
    for (RaidMode mode : modes) {
        Sut sut;
        if (mode == RaidMode::kRaizn)
            sut.make_raizn();
        else
            sut.make_engine(mode);
        if (::testing::Test::HasFatalFailure())
            return;
        // Kill a member halfway through; every subsequent op must
        // succeed with the same results.
        replay(sut, ops, /*fail_at=*/static_cast<int>(ops.size() / 2),
               /*fail_dev=*/1);
        EXPECT_TRUE(sut.arr->degraded()) << sut.name;
    }
    // RAID-6 keeps the same contract with two members down.
    Sut r6;
    r6.make_engine(RaidMode::kRaid6);
    if (::testing::Test::HasFatalFailure())
        return;
    r6.arr->mark_device_failed(3);
    replay(r6, ops, /*fail_at=*/static_cast<int>(ops.size() / 2),
           /*fail_dev=*/1);
}

TEST(ZonedArrayDifferential, AckedWritesShareOneDurabilityFloor)
{
    // Same sequence on every mode: a flushed prefix, a FUA write, then
    // unflushed tail data; after an adversarial power cut, the acked
    // floor (17 sectors in zone 0, 6 in zone 1) must read back.
    const RaidMode modes[] = {
        RaidMode::kRaizn, RaidMode::kRaid0,  RaidMode::kRaid1,
        RaidMode::kRaid5, RaidMode::kRaid6,  RaidMode::kRaid10,
        RaidMode::kAuto,
    };
    for (RaidMode mode : modes) {
        Sut sut;
        if (mode == RaidMode::kRaizn)
            sut.make_raizn();
        else
            sut.make_engine(mode);
        if (::testing::Test::HasFatalFailure())
            return;
        SCOPED_TRACE(sut.name);
        const uint64_t zcap = sut.arr->zone_capacity();
        IoResult r = sut.write(0, pattern_data(17, 21));
        ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
        ASSERT_TRUE(sut.flush().status.is_ok());
        WriteFlags fua;
        fua.fua = true;
        r = sut.write(zcap, pattern_data(6, 22), fua);
        ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
        // Unflushed: allowed (but not required) to survive.
        r = sut.write(17, pattern_data(5, 23));
        ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
        sut.crash_and_remount({PowerLossSpec::Policy::kDropCache, 0});
        if (::testing::Test::HasFatalFailure())
            return;
        auto z0 = sut.arr->zone_info(0);
        auto z1 = sut.arr->zone_info(1);
        ASSERT_TRUE(z0.is_ok() && z1.is_ok());
        EXPECT_GE(z0.value().written(), 17u);
        EXPECT_GE(z1.value().written(), 6u);
        IoResult rb = sut.read(0, 17);
        ASSERT_TRUE(rb.status.is_ok()) << rb.status.to_string();
        std::vector<uint8_t> want = pattern_data(17, 21);
        EXPECT_EQ(0,
                  std::memcmp(rb.data.data(), want.data(), want.size()));
        rb = sut.read(zcap, 6);
        ASSERT_TRUE(rb.status.is_ok()) << rb.status.to_string();
        want = pattern_data(6, 22);
        EXPECT_EQ(0,
                  std::memcmp(rb.data.data(), want.data(), want.size()));
    }
}

// ---------------------------------------------------------------------
// Hoisted-resilience regression: every ZonedArray family counts device
// retries through the shared base wiring into the metrics registry.
// ---------------------------------------------------------------------

/// Runs one transient write error through `arr` and asserts the shared
/// retrier retried it and the registry mirrors the engine's counter.
void
expect_retry_accounted(
    EventLoop *loop, ZonedArray *arr,
    const std::vector<std::unique_ptr<FaultInjectingDevice>> &fdevs,
    const std::string &prefix, const uint64_t &io_retries_cell)
{
    obs::MetricsRegistry reg;
    arr->attach_observability(&reg, nullptr);
    // One-shot transient error on every member: whichever members the
    // write lands on, at least one command fails once and is retried.
    for (const auto &fd : fdevs)
        fd->inject_once(IoOp::kWrite, FaultKind::kIoError);
    IoResult out;
    bool done = false;
    arr->write(0, pattern_data(48, 77), WriteFlags{}, [&](IoResult r) {
        out = std::move(r);
        done = true;
    });
    loop->run_until_pred([&] { return done; });
    ASSERT_TRUE(done);
    EXPECT_TRUE(out.status.is_ok()) << out.status.to_string();
    EXPECT_GE(io_retries_cell, 1u) << prefix;
    bool found = false;
    for (const auto &smp : reg.snapshot()) {
        if (smp.name == prefix + ".io_retries") {
            found = true;
            EXPECT_EQ(io_retries_cell, smp.value) << prefix;
        }
    }
    EXPECT_TRUE(found) << prefix << ".io_retries missing from registry";
}

TEST(ZonedArrayObs, RetrierCountsFlowIntoRegistryForEveryFamily)
{
    // RaiznVolume over fault-wrapped ZNS members.
    {
        EventLoop loop;
        std::vector<std::unique_ptr<ZnsDevice>> devs;
        std::vector<std::unique_ptr<FaultInjectingDevice>> fdevs;
        std::vector<BlockDevice *> ptrs;
        for (uint32_t i = 0; i < 4; ++i) {
            devs.push_back(std::make_unique<ZnsDevice>(
                &loop, Sut::dev_config(i, 8, 128)));
            fdevs.push_back(std::make_unique<FaultInjectingDevice>(
                &loop, devs.back().get(), FaultConfig{}));
            ptrs.push_back(fdevs.back().get());
        }
        RaiznConfig rc;
        rc.num_devices = 4;
        rc.su_sectors = 16;
        auto res = RaiznVolume::create(&loop, ptrs, rc);
        ASSERT_TRUE(res.is_ok()) << res.status().to_string();
        auto vol = std::move(res).value();
        expect_retry_accounted(&loop, vol.get(), fdevs, "raizn",
                               vol->stats().io_retries);
    }
    // ZonedEngine (RAID-5) over fault-wrapped ZNS members.
    {
        EventLoop loop;
        std::vector<std::unique_ptr<ZnsDevice>> devs;
        std::vector<std::unique_ptr<FaultInjectingDevice>> fdevs;
        std::vector<BlockDevice *> ptrs;
        for (uint32_t i = 0; i < 4; ++i) {
            devs.push_back(std::make_unique<ZnsDevice>(
                &loop, Sut::dev_config(i, 5, 64)));
            fdevs.push_back(std::make_unique<FaultInjectingDevice>(
                &loop, devs.back().get(), FaultConfig{}));
            ptrs.push_back(fdevs.back().get());
        }
        EngineConfig cfg;
        cfg.mode = RaidMode::kRaid5;
        cfg.su_sectors = 4;
        auto res = ZonedEngine::create(&loop, ptrs, cfg);
        ASSERT_TRUE(res.is_ok()) << res.status().to_string();
        auto eng = std::move(res).value();
        expect_retry_accounted(&loop, eng.get(), fdevs, "raid5",
                               eng->stats().io_retries);
    }
    // MdVolume over fault-wrapped conventional members.
    {
        EventLoop loop;
        std::vector<std::unique_ptr<ConvDevice>> devs;
        std::vector<std::unique_ptr<FaultInjectingDevice>> fdevs;
        std::vector<BlockDevice *> ptrs;
        for (uint32_t i = 0; i < 4; ++i) {
            ConvDeviceConfig cc;
            cc.nsectors = 16 * kMiB / kSectorSize;
            cc.pages_per_block = 64;
            cc.name = "conv" + std::to_string(i);
            devs.push_back(std::make_unique<ConvDevice>(&loop, cc));
            fdevs.push_back(std::make_unique<FaultInjectingDevice>(
                &loop, devs.back().get(), FaultConfig{}));
            ptrs.push_back(fdevs.back().get());
        }
        MdVolumeConfig mc;
        mc.chunk_sectors = 16;
        auto vol =
            std::make_unique<MdVolume>(&loop, ptrs, MdVolumeConfig(mc));
        expect_retry_accounted(&loop, vol.get(), fdevs,
                               "mdraid", vol->stats().io_retries);
    }
}

} // namespace
} // namespace raizn
