/**
 * @file
 * Unit tests for the device service-time model: bandwidth saturation,
 * overhead domination at small blocks, flush/drain semantics, and
 * calibration against the paper's measured device throughput.
 */
#include <gtest/gtest.h>

#include "sim/event_loop.h"
#include "zns/timing_model.h"

namespace raizn {
namespace {

TEST(TimingModelTest, SequentialOpsQueuePerUnit)
{
    EventLoop loop;
    TimingParams p;
    p.units = 1;
    p.read_overhead = 10 * kNsPerUs;
    p.read_bw_mibs = 1024.0;
    TimingModel tm(loop, p);
    Tick t1 = tm.read_done(1);
    Tick t2 = tm.read_done(1);
    EXPECT_GT(t1, 0u);
    EXPECT_EQ(t2 - t1, t1) << "single unit serializes";
}

TEST(TimingModelTest, ParallelUnitsOverlap)
{
    EventLoop loop;
    TimingParams p;
    p.units = 4;
    TimingModel tm(loop, p);
    Tick t1 = tm.read_done(16);
    Tick t2 = tm.read_done(16);
    Tick t3 = tm.read_done(16);
    Tick t4 = tm.read_done(16);
    EXPECT_EQ(t1, t2);
    EXPECT_EQ(t3, t4);
    // Fifth op queues behind the first.
    Tick t5 = tm.read_done(16);
    EXPECT_GT(t5, t1);
}

TEST(TimingModelTest, WriteBandwidthCalibration)
{
    // Saturated large writes must hit the configured aggregate
    // bandwidth within 5%.
    EventLoop loop;
    TimingParams p = TimingParams::zns();
    TimingModel tm(loop, p);
    constexpr uint32_t kSectors = 256; // 1 MiB
    constexpr int kOps = 512;
    Tick last = 0;
    for (int i = 0; i < kOps; ++i)
        last = tm.write_done(kSectors);
    double mibs = mib_per_sec(static_cast<uint64_t>(kOps) * kSectors *
                                  kSectorSize,
                              last);
    EXPECT_NEAR(mibs, p.write_bw_mibs, p.write_bw_mibs * 0.05);
}

TEST(TimingModelTest, ReadBandwidthCalibration)
{
    EventLoop loop;
    TimingParams p = TimingParams::zns();
    TimingModel tm(loop, p);
    Tick last = 0;
    for (int i = 0; i < 512; ++i)
        last = tm.read_done(256);
    double mibs = mib_per_sec(512ull * 256 * kSectorSize, last);
    EXPECT_NEAR(mibs, p.read_bw_mibs, p.read_bw_mibs * 0.05);
}

TEST(TimingModelTest, SmallBlocksAreOverheadBound)
{
    EventLoop loop;
    TimingParams p = TimingParams::zns();
    TimingModel tm(loop, p);
    Tick last = 0;
    for (int i = 0; i < 2048; ++i)
        last = tm.read_done(1); // 4 KiB
    double mibs = mib_per_sec(2048ull * kSectorSize, last);
    // Far below aggregate bandwidth: IOPS-limited.
    EXPECT_LT(mibs, p.read_bw_mibs / 2);
    double iops = mibs * kMiB / kSectorSize;
    double expect_iops = static_cast<double>(p.units) /
        (static_cast<double>(p.read_overhead) / kNsPerSec +
         kSectorSize / (p.read_bw_mibs * kMiB / p.units));
    EXPECT_NEAR(iops, expect_iops, expect_iops * 0.05);
}

TEST(TimingModelTest, FlushWaitsForDrain)
{
    EventLoop loop;
    TimingParams p = TimingParams::zns();
    TimingModel tm(loop, p);
    Tick w = tm.write_done(256);
    Tick f = tm.flush_done();
    EXPECT_GE(f, w + p.flush_latency);
}

TEST(TimingModelTest, ConventionalPresetSlightlyFaster)
{
    TimingParams zns = TimingParams::zns();
    TimingParams conv = TimingParams::conventional();
    EXPECT_GT(conv.read_bw_mibs, zns.read_bw_mibs);
    EXPECT_GT(conv.write_bw_mibs, zns.write_bw_mibs);
    EXPECT_NEAR(zns.write_bw_mibs / conv.write_bw_mibs, 0.98, 0.01);
    EXPECT_NEAR(zns.read_bw_mibs / conv.read_bw_mibs, 0.96, 0.01);
}

TEST(TimingModelTest, InternalCopyOccupiesUnits)
{
    // GC copies delay subsequent host IO.
    EventLoop loop;
    TimingParams p;
    p.units = 2;
    TimingModel tm(loop, p);
    Tick before = tm.read_done(1);
    TimingModel tm2(loop, p);
    for (int i = 0; i < 8; ++i)
        tm2.internal_copy_done(64);
    Tick after = tm2.read_done(1);
    EXPECT_GT(after, before);
}

} // namespace
} // namespace raizn
