/**
 * @file
 * Host-side scoped profiler (src/obs/prof): nesting and self-vs-total
 * accounting on both clocks, folded flamegraph export, window
 * counters, and the zero-cost-when-disabled guarantee.
 *
 * The profiler is global, single-threaded state; every test starts by
 * disabling and resetting it so ordering cannot leak between tests.
 */
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "obs/prof/prof.h"

using namespace raizn;

namespace {

/// Spins the host clock forward by at least `ns` (tiny, test-only).
void
spin_for_ns(uint64_t ns)
{
    uint64_t t0 = prof::host_now_ns();
    while (prof::host_now_ns() - t0 < ns) {
    }
}

void
fresh()
{
    prof::disable();
    prof::reset();
}

TEST(Prof, DisabledScopesRecordNothing)
{
    fresh();
    prof::Site *site = prof::intern_site("test.disabled");
    {
        PROF_SCOPE("test.disabled");
        spin_for_ns(1000);
    }
    EXPECT_EQ(site->hits, 0u);
    EXPECT_EQ(site->host_total_ns, 0u);
    EXPECT_EQ(prof::wall_ns(), 0u);
    EXPECT_DOUBLE_EQ(prof::coverage(), 0.0);
}

TEST(Prof, InternIsIdempotentAndStable)
{
    fresh();
    prof::Site *a = prof::intern_site("test.intern");
    prof::Site *b = prof::intern_site("test.intern");
    EXPECT_EQ(a, b);
    EXPECT_EQ(a->name, "test.intern");
}

TEST(Prof, EventSiteNamesTags)
{
    fresh();
    static const char kTag[] = "mytag";
    prof::Site *s = prof::event_site(kTag);
    EXPECT_EQ(s->name, "sim.cb.mytag");
    EXPECT_EQ(prof::event_site(kTag), s) << "pointer-keyed cache";
    EXPECT_EQ(prof::event_site(nullptr)->name, "sim.cb.untagged");
}

TEST(Prof, SelfPlusChildrenEqualsTotal)
{
    fresh();
    prof::Site *outer = prof::intern_site("test.outer");
    prof::Site *inner = prof::intern_site("test.inner");

    prof::enable();
    {
        PROF_SCOPE("test.outer");
        spin_for_ns(200 * 1000);
        {
            PROF_SCOPE("test.inner");
            spin_for_ns(200 * 1000);
        }
        spin_for_ns(100 * 1000);
    }
    prof::disable();

    EXPECT_EQ(outer->hits, 1u);
    EXPECT_EQ(inner->hits, 1u);
    EXPECT_GT(inner->host_total_ns, 0u);
    EXPECT_GT(outer->host_total_ns, inner->host_total_ns);
    // Child elapsed time is accumulated into the parent frame from the
    // same clock reads that produced the child's total, so the
    // identity self = total - sum(children) holds exactly.
    EXPECT_EQ(outer->host_self_ns,
              outer->host_total_ns - inner->host_total_ns);
    // The leaf has no children: self == total.
    EXPECT_EQ(inner->host_self_ns, inner->host_total_ns);
}

TEST(Prof, VirtualClockAttribution)
{
    fresh();
    prof::Site *site = prof::intern_site("test.virt");

    prof::enable();
    prof::set_virtual_now(1000);
    {
        PROF_SCOPE("test.virt");
        prof::set_virtual_now(4500);
    }
    prof::disable();

    EXPECT_EQ(site->virt_total_ns, 3500u);
    EXPECT_EQ(site->virt_self_ns, 3500u);
}

TEST(Prof, HitsAccumulateAcrossInvocations)
{
    fresh();
    prof::Site *site = prof::intern_site("test.loop");
    prof::enable();
    for (int i = 0; i < 10; ++i) {
        PROF_SCOPE("test.loop");
    }
    prof::disable();
    EXPECT_EQ(site->hits, 10u);
}

TEST(Prof, CoverageOfOneTopLevelScope)
{
    fresh();
    prof::enable();
    {
        PROF_SCOPE("test.top");
        spin_for_ns(500 * 1000);
    }
    prof::disable();
    EXPECT_GT(prof::wall_ns(), 0u);
    // Only enable()/disable() themselves sit outside the scope.
    EXPECT_GT(prof::coverage(), 0.9);
    EXPECT_LE(prof::coverage(), 1.0 + 1e-9);
}

TEST(Prof, FoldedStacksReflectTheCallTree)
{
    fresh();
    prof::enable();
    {
        PROF_SCOPE("test.root");
        spin_for_ns(50 * 1000);
        {
            PROF_SCOPE("test.kid_a");
            spin_for_ns(50 * 1000);
        }
        {
            PROF_SCOPE("test.kid_b");
            spin_for_ns(50 * 1000);
        }
    }
    prof::disable();

    std::string folded = prof::folded();
    EXPECT_NE(folded.find("test.root "), std::string::npos) << folded;
    EXPECT_NE(folded.find("test.root;test.kid_a "), std::string::npos)
        << folded;
    EXPECT_NE(folded.find("test.root;test.kid_b "), std::string::npos)
        << folded;

    // Lines are lexicographically sorted and every value is a positive
    // integer number of self-nanoseconds.
    std::vector<std::string> lines;
    size_t pos = 0;
    while (pos < folded.size()) {
        size_t nl = folded.find('\n', pos);
        if (nl == std::string::npos)
            nl = folded.size();
        lines.push_back(folded.substr(pos, nl - pos));
        pos = nl + 1;
    }
    ASSERT_GE(lines.size(), 3u);
    for (size_t i = 1; i < lines.size(); ++i)
        EXPECT_LE(lines[i - 1], lines[i]) << "unsorted folded output";
    for (const std::string &line : lines) {
        size_t sp = line.rfind(' ');
        ASSERT_NE(sp, std::string::npos) << line;
        EXPECT_GT(strtoull(line.c_str() + sp + 1, nullptr, 10), 0u)
            << line;
    }
}

TEST(Prof, SameSiteUnderDifferentParentsKeepsPathsSeparate)
{
    fresh();
    prof::Site *shared = prof::intern_site("test.shared");
    prof::enable();
    {
        PROF_SCOPE("test.parent1");
        PROF_SCOPE("test.shared");
        spin_for_ns(20 * 1000);
    }
    {
        PROF_SCOPE("test.parent2");
        PROF_SCOPE("test.shared");
        spin_for_ns(20 * 1000);
    }
    prof::disable();

    EXPECT_EQ(shared->hits, 2u) << "site aggregates merge";
    std::string folded = prof::folded();
    EXPECT_NE(folded.find("test.parent1;test.shared "), std::string::npos)
        << folded;
    EXPECT_NE(folded.find("test.parent2;test.shared "), std::string::npos)
        << folded;
}

TEST(Prof, WindowCountersAreDeltas)
{
    fresh();
    prof::count_alloc(111); // before the window: must not show up
    prof::enable();
    prof::count_event();
    prof::count_event();
    prof::count_alloc(1024);
    prof::count_copy(4096);
    prof::disable();

    prof::WindowCounters wc = prof::window_counters();
    EXPECT_EQ(wc.events_dispatched, 2u);
    EXPECT_EQ(wc.alloc_count, 1u);
    EXPECT_EQ(wc.alloc_bytes, 1024u);
    EXPECT_EQ(wc.copy_count, 1u);
    EXPECT_EQ(wc.copy_bytes, 4096u);
}

TEST(Prof, SummaryJsonAndTableMentionHotScopes)
{
    fresh();
    prof::enable();
    {
        PROF_SCOPE("test.hot");
        spin_for_ns(100 * 1000);
    }
    prof::disable();

    std::string json = prof::summary_json();
    EXPECT_NE(json.find("\"wall_ns\""), std::string::npos);
    EXPECT_NE(json.find("\"coverage\""), std::string::npos);
    EXPECT_NE(json.find("\"events_per_sec\""), std::string::npos);
    EXPECT_NE(json.find("\"test.hot\""), std::string::npos);

    std::string tbl = prof::table(5);
    EXPECT_NE(tbl.find("test.hot"), std::string::npos);
}

TEST(Prof, QueueWaitAccumulates)
{
    fresh();
    prof::Site *s = prof::intern_site("test.qwait");
    prof::enable();
    prof::add_queue_wait(s, 100);
    prof::add_queue_wait(s, 250);
    prof::disable();
    EXPECT_EQ(s->queue_wait_ns, 350u);
}

/// The workload a disabled PROF_SCOPE rides along with: enough real
/// work (a 4 KiB xor pass) that one predicted branch is well under 1%.
uint64_t
work_pass(std::vector<uint8_t> &buf)
{
    uint64_t acc = 0;
    for (size_t i = 0; i < buf.size(); ++i) {
        buf[i] = static_cast<uint8_t>(buf[i] ^ (i * 31));
        acc += buf[i];
    }
    return acc;
}

uint64_t
run_plain(std::vector<uint8_t> &buf, int iters, uint64_t *sink)
{
    uint64_t t0 = prof::host_now_ns();
    for (int i = 0; i < iters; ++i)
        *sink += work_pass(buf);
    return prof::host_now_ns() - t0;
}

uint64_t
run_scoped(std::vector<uint8_t> &buf, int iters, uint64_t *sink)
{
    uint64_t t0 = prof::host_now_ns();
    for (int i = 0; i < iters; ++i) {
        PROF_SCOPE("test.overhead");
        *sink += work_pass(buf);
    }
    return prof::host_now_ns() - t0;
}

TEST(Prof, DisabledOverheadUnderOnePercent)
{
    fresh();
    ASSERT_FALSE(prof::enabled());

    constexpr int kIters = 2000;
    std::vector<uint8_t> buf(4096, 0x5a);
    uint64_t sink = 0;

    // Host timing is noisy; compare min-of-trials and allow a few
    // attempts so a scheduler hiccup cannot flake the guard. The claim
    // under test — one predicted branch per scope — leaves the two
    // loops within measurement noise of each other.
    bool passed = false;
    for (int attempt = 0; attempt < 5 && !passed; ++attempt) {
        uint64_t plain = UINT64_MAX, scoped = UINT64_MAX;
        for (int trial = 0; trial < 7; ++trial) {
            plain = std::min(plain, run_plain(buf, kIters, &sink));
            scoped = std::min(scoped, run_scoped(buf, kIters, &sink));
        }
        passed = static_cast<double>(scoped) <=
            static_cast<double>(plain) * 1.01;
    }
    EXPECT_TRUE(passed) << "disabled PROF_SCOPE cost exceeded 1%";
    EXPECT_NE(sink, 0u) << "work not optimised away";
    EXPECT_EQ(prof::intern_site("test.overhead")->hits, 0u);
}

} // namespace
