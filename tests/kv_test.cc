/**
 * @file
 * Tests for the LSM KV store: bloom filters, SSTables, puts/gets/
 * deletes, memtable flushes, compaction shape, and end-to-end
 * operation on both environments.
 */
#include <gtest/gtest.h>

#include "env/block_env.h"
#include "env/zoned_env.h"
#include "kv/bloom.h"
#include "kv/db.h"
#include "wkld/setup.h"

namespace raizn {
namespace {

TEST(BloomTest, NoFalseNegatives)
{
    std::vector<std::string> keys;
    for (int i = 0; i < 1000; ++i)
        keys.push_back("key" + std::to_string(i));
    auto filter = BloomFilter::build(keys);
    for (const auto &k : keys)
        EXPECT_TRUE(BloomFilter::may_contain(filter, k));
}

TEST(BloomTest, LowFalsePositiveRate)
{
    std::vector<std::string> keys;
    for (int i = 0; i < 1000; ++i)
        keys.push_back("key" + std::to_string(i));
    auto filter = BloomFilter::build(keys);
    int fp = 0;
    for (int i = 0; i < 10000; ++i) {
        if (BloomFilter::may_contain(filter,
                                     "absent" + std::to_string(i)))
            fp++;
    }
    EXPECT_LT(fp, 300) << "false positive rate too high";
}

class KvFixture : public ::testing::Test
{
  public:
    static std::string
    key(int i)
    {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "key%08d", i);
        return buf;
    }

  protected:
    void
    SetUp() override
    {
        BenchScale scale;
        scale.zones_per_device = 12;
        scale.zone_cap_sectors = 1024; // 4 MiB zones
        scale.data_mode = DataMode::kStore;
        arr_ = make_raizn_array(scale);
        env_ = std::make_unique<ZonedEnv>(arr_.loop.get(),
                                          arr_.vol.get());
        DbOptions opt;
        opt.memtable_bytes = 256 * kKiB;
        opt.target_file_bytes = 256 * kKiB;
        opt.l1_bytes = 1 * kMiB;
        auto db = Db::open(env_.get(), opt);
        ASSERT_TRUE(db.is_ok());
        db_ = std::move(db).value();
    }

    RaiznArray arr_;
    std::unique_ptr<ZonedEnv> env_;
    std::unique_ptr<Db> db_;
};

TEST(SstTest, WriteAndReadBack)
{
    BenchScale scale;
    scale.zones_per_device = 9;
    scale.zone_cap_sectors = 512;
    scale.data_mode = DataMode::kStore;
    auto arr = make_raizn_array(scale);
    ZonedEnv env(arr.loop.get(), arr.vol.get());

    std::vector<KvEntry> entries;
    for (int i = 0; i < 500; ++i)
        entries.emplace_back(KvFixture::key(i),
                             "value" + std::to_string(i));
    entries.emplace_back("zzz-deleted", std::nullopt);
    ASSERT_TRUE(SstWriter::write(&env, "test.sst", entries).is_ok());

    auto reader = SstReader::open(&env, "test.sst");
    ASSERT_TRUE(reader.is_ok());
    EXPECT_EQ(reader.value()->smallest(), KvFixture::key(0));
    EXPECT_EQ(reader.value()->largest(), "zzz-deleted");

    bool tomb = false;
    auto v = reader.value()->get(KvFixture::key(250), &tomb);
    ASSERT_TRUE(v.is_ok());
    EXPECT_EQ(v.value(), "value250");
    EXPECT_FALSE(tomb);

    v = reader.value()->get("zzz-deleted", &tomb);
    EXPECT_TRUE(tomb);

    v = reader.value()->get("nokey", &tomb);
    EXPECT_EQ(v.status().code(), StatusCode::kNotFound);

    auto all = reader.value()->load_all();
    ASSERT_TRUE(all.is_ok());
    EXPECT_EQ(all.value().size(), 501u);
}

TEST_F(KvFixture, PutGetRoundTrip)
{
    ASSERT_TRUE(db_->put("a", "1").is_ok());
    ASSERT_TRUE(db_->put("b", "2").is_ok());
    EXPECT_EQ(db_->get("a").value(), "1");
    EXPECT_EQ(db_->get("b").value(), "2");
    EXPECT_EQ(db_->get("c").status().code(), StatusCode::kNotFound);
}

TEST_F(KvFixture, OverwriteAndDelete)
{
    ASSERT_TRUE(db_->put("k", "v1").is_ok());
    ASSERT_TRUE(db_->put("k", "v2").is_ok());
    EXPECT_EQ(db_->get("k").value(), "v2");
    ASSERT_TRUE(db_->delete_key("k").is_ok());
    EXPECT_EQ(db_->get("k").status().code(), StatusCode::kNotFound);
}

TEST_F(KvFixture, SurvivesMemtableFlush)
{
    for (int i = 0; i < 500; ++i)
        ASSERT_TRUE(db_->put(key(i), std::string(1000, 'x')).is_ok());
    EXPECT_GT(db_->stats().memtable_flushes, 0u);
    for (int i = 0; i < 500; ++i) {
        auto v = db_->get(key(i));
        ASSERT_TRUE(v.is_ok()) << key(i) << ": "
                               << v.status().to_string();
        EXPECT_EQ(v.value().size(), 1000u);
    }
}

TEST_F(KvFixture, DeleteAcrossFlushIsTombstoned)
{
    ASSERT_TRUE(db_->put("gone", "soon").is_ok());
    ASSERT_TRUE(db_->flush_all().is_ok());
    ASSERT_TRUE(db_->delete_key("gone").is_ok());
    ASSERT_TRUE(db_->flush_all().is_ok());
    EXPECT_EQ(db_->get("gone").status().code(), StatusCode::kNotFound);
}

TEST_F(KvFixture, CompactionKeepsNewestValues)
{
    // Write the same keys repeatedly to force flushes + compactions.
    for (int round = 0; round < 6; ++round) {
        for (int i = 0; i < 300; ++i) {
            ASSERT_TRUE(
                db_->put(key(i), "round" + std::to_string(round) + "-" +
                                     std::to_string(i))
                    .is_ok());
        }
        ASSERT_TRUE(db_->flush_all().is_ok());
    }
    EXPECT_GT(db_->stats().compactions, 0u);
    for (int i = 0; i < 300; ++i) {
        auto v = db_->get(key(i));
        ASSERT_TRUE(v.is_ok());
        EXPECT_EQ(v.value(), "round5-" + std::to_string(i));
    }
    // L0 kept under control.
    EXPECT_LT(db_->level_file_counts()[0], 4u);
}

TEST_F(KvFixture, RandomWorkloadConsistency)
{
    // Property test: random puts/deletes mirrored into a std::map.
    Rng rng(7);
    std::map<std::string, std::string> model;
    for (int op = 0; op < 3000; ++op) {
        std::string k = key(static_cast<int>(rng.next_below(400)));
        if (rng.next_bool(0.8)) {
            std::string v = "v" + std::to_string(op);
            ASSERT_TRUE(db_->put(k, v).is_ok());
            model[k] = v;
        } else {
            ASSERT_TRUE(db_->delete_key(k).is_ok());
            model.erase(k);
        }
    }
    for (int i = 0; i < 400; ++i) {
        std::string k = key(i);
        auto v = db_->get(k);
        auto mit = model.find(k);
        if (mit == model.end()) {
            EXPECT_EQ(v.status().code(), StatusCode::kNotFound) << k;
        } else {
            ASSERT_TRUE(v.is_ok()) << k;
            EXPECT_EQ(v.value(), mit->second) << k;
        }
    }
}

TEST(KvOnBlockEnvTest, WorksOnMdraid)
{
    BenchScale scale;
    scale.zones_per_device = 12;
    scale.zone_cap_sectors = 1024;
    scale.data_mode = DataMode::kStore;
    auto arr = make_mdraid_array(scale);
    BlockEnv env(arr.loop.get(), arr.vol.get());
    DbOptions opt;
    opt.memtable_bytes = 256 * kKiB;
    auto db = Db::open(&env, opt);
    ASSERT_TRUE(db.is_ok());
    for (int i = 0; i < 1000; ++i) {
        ASSERT_TRUE(db.value()
                        ->put(KvFixture::key(i), std::string(500, 'y'))
                        .is_ok());
    }
    for (int i = 0; i < 1000; i += 37) {
        auto v = db.value()->get(KvFixture::key(i));
        ASSERT_TRUE(v.is_ok());
        EXPECT_EQ(v.value().size(), 500u);
    }
}

} // namespace
} // namespace raizn
