/**
 * @file
 * Unit tests for the discrete-event loop: ordering, determinism,
 * run modes.
 */
#include <gtest/gtest.h>

#include <vector>

#include "sim/event_loop.h"

namespace raizn {
namespace {

TEST(EventLoopTest, RunsInTimeOrder)
{
    EventLoop loop;
    std::vector<int> order;
    loop.schedule_at(30, [&] { order.push_back(3); });
    loop.schedule_at(10, [&] { order.push_back(1); });
    loop.schedule_at(20, [&] { order.push_back(2); });
    EXPECT_EQ(loop.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(loop.now(), 30u);
}

TEST(EventLoopTest, TiesBreakBySubmissionOrder)
{
    EventLoop loop;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        loop.schedule_at(100, [&order, i] { order.push_back(i); });
    loop.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventLoopTest, ScheduleAfterUsesNow)
{
    EventLoop loop;
    Tick fired = 0;
    loop.schedule_at(50, [&] {
        loop.schedule_after(25, [&] { fired = loop.now(); });
    });
    loop.run();
    EXPECT_EQ(fired, 75u);
}

TEST(EventLoopTest, PastSchedulesClampToNow)
{
    EventLoop loop;
    Tick fired = 0;
    loop.schedule_at(100, [&] {
        loop.schedule_at(10, [&] { fired = loop.now(); });
    });
    loop.run();
    EXPECT_EQ(fired, 100u);
}

TEST(EventLoopTest, RunUntilLeavesLaterEvents)
{
    EventLoop loop;
    int fired = 0;
    loop.schedule_at(10, [&] { fired++; });
    loop.schedule_at(20, [&] { fired++; });
    loop.schedule_at(30, [&] { fired++; });
    EXPECT_EQ(loop.run_until(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(loop.now(), 20u);
    EXPECT_EQ(loop.pending(), 1u);
    loop.run();
    EXPECT_EQ(fired, 3);
}

TEST(EventLoopTest, RunUntilAdvancesClockWhenIdle)
{
    EventLoop loop;
    loop.run_until(500);
    EXPECT_EQ(loop.now(), 500u);
}

TEST(EventLoopTest, RunUntilPred)
{
    EventLoop loop;
    int count = 0;
    for (int i = 1; i <= 5; ++i)
        loop.schedule_at(static_cast<Tick>(i) * 10, [&] { count++; });
    EXPECT_TRUE(loop.run_until_pred([&] { return count >= 3; }));
    EXPECT_EQ(count, 3);
    EXPECT_EQ(loop.now(), 30u);
    // Predicate that never fires drains the queue and returns false.
    EXPECT_FALSE(loop.run_until_pred([&] { return count >= 100; }));
    EXPECT_EQ(count, 5);
}

TEST(EventLoopTest, RunEventsCountsExactly)
{
    EventLoop loop;
    int count = 0;
    for (int i = 0; i < 5; ++i)
        loop.schedule_after(1, [&] { count++; });
    EXPECT_EQ(loop.run_events(2), 2u);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(loop.run_events(100), 3u);
}

TEST(EventLoopTest, CascadedEventsDeterministic)
{
    // Two identical runs produce identical event traces.
    auto trace = [](uint64_t seed) {
        EventLoop loop;
        std::vector<Tick> ticks;
        std::function<void(int)> step = [&](int depth) {
            ticks.push_back(loop.now());
            if (depth < 20)
                loop.schedule_after((seed + depth) % 7 + 1,
                                    [&step, depth] { step(depth + 1); });
        };
        loop.schedule_at(0, [&] { step(0); });
        loop.run();
        return ticks;
    };
    EXPECT_EQ(trace(3), trace(3));
}

} // namespace
} // namespace raizn
