/**
 * @file
 * Crash-point explorer. A run is: mkfs a fresh array, replay a
 * workload while tracing every device command completion, and inject a
 * power cut after the N-th completion; then remount and run the oracle.
 *
 * The simulation is deterministic (seeded RNG, sequence-tiebroken
 * event loop), so the N-th completion of a replay is the same physical
 * moment every time — verified by hashing the completion trace and
 * comparing each replay's prefix hash against the reference run.
 * Exhaustive mode enumerates every N in [0, boundaries]; sweep mode
 * samples N from a seeded RNG for larger workloads. A failing point is
 * reported with everything needed to replay it: (workload, options,
 * crash point N).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "array/raid_mode.h"
#include "chk/oracle.h"
#include "chk/workload.h"
#include "fault/fault_device.h"
#include "raizn/volume.h"
#include "zns/zns_device.h"

namespace raizn {
namespace obs {
class IoLedger;
class MetricsRegistry;
class Timeline;
class TraceRecorder;
} // namespace obs
} // namespace raizn

namespace raizn::chk {

/// Array shape for exploration runs (small: runs are O(boundaries^2)).
struct ChkConfig {
    uint32_t num_devices = 5;
    uint32_t su_sectors = 16;
    uint32_t nzones = 8; ///< physical zones per device (3 are metadata)
    uint64_t zone_cap = 128; ///< physical sectors per zone
    uint32_t atomic_write_sectors = 4;
    /**
     * Array implementation under test. kRaizn (default) explores the
     * paper's volume; the generic modes (raid0/1/5/6/10/auto) explore
     * a ZonedEngine, whose oracle enforces the engine's own contract:
     * core durability/readability on healthy arrays, settled-stripe
     * scrub consistency, and post-crash degraded re-reads for
     * mirror-kind zones only (parity tails are volatile by design —
     * the write hole RAIZN's partial-parity log closes). kMdraid is
     * rejected (no zones to crash-explore). The kRebuild phase needs
     * kRaizn (persistent rebuild checkpoints).
     */
    RaidMode engine = RaidMode::kRaizn;

    ChkGeom geom() const;
};

struct ChkOptions {
    PowerLossSpec::Policy policy = PowerLossSpec::Policy::kDropCache;
    uint64_t loss_seed = 1;
    /// Device 0 drops its volatile cache while the rest keep theirs —
    /// the divergent-survival case of §5.1.
    bool divergent_loss = false;
    bool check_parity = true;
    /// Also re-read all contents with device (N mod num_devices)
    /// marked failed after each healthy mount.
    bool check_degraded = false;
    /// Verify each replay followed the reference schedule exactly.
    bool verify_replay = true;
    RaiznVolume::DebugFault fault = RaiznVolume::DebugFault::kNone;
    /// Transient-fault schedule applied to every device during the
    /// workload phase (never during remount/recovery, so the oracle
    /// judges the volume's resilience, not the injector). The
    /// schedule is seeded per device and replays identically in the
    /// reference and crash runs, preserving the replay-hash check.
    FaultConfig faults;
    /// Device index given `fail_slow_mult`x latency (-1: none).
    int fail_slow_dev = -1;
    double fail_slow_mult = 8.0;
    /// When non-empty, every failing crash point dumps a triage
    /// bundle to `<dump_dir>/point_<N>/`: the pre-cut stage trace
    /// (trace.json), the metrics registry (metrics.json), the tail of
    /// a ring-buffered timeline (timeline.csv), a host-profile summary
    /// of the run (prof.json), and the byte-provenance ledger
    /// (ledger.json). Metrics/timeline/ledger are snapshotted at the
    /// power cut, so the bundle shows the array's state at the moment
    /// power was lost. Purely observational: none of the recorders
    /// alter scheduling, so replay hashes still match.
    std::string dump_dir;
    /// Crash phase. kWorkload (default) cuts power mid-workload.
    /// kRebuild runs the whole workload to completion untraced, fails
    /// `rebuild_dev`, swaps in a blank replacement and starts a
    /// rebuild; completions are counted — and power is cut — during
    /// the in-flight rebuild only. After remount, a pending rebuild
    /// checkpoint is resumed to completion before the oracle runs, and
    /// late cut points must prove they skipped checkpointed zones.
    enum class Phase { kWorkload, kRebuild };
    Phase phase = Phase::kWorkload;
    /// Device rebuilt in the kRebuild phase (mod num_devices).
    uint32_t rebuild_dev = 1;
    /// Rebuild throttle rate in the kRebuild phase (sectors per
    /// second; 0 leaves the rebuild unthrottled).
    uint64_t rebuild_rate = 0;
};

struct ChkReport {
    uint64_t boundaries = 0; ///< completion boundaries in the full run
    uint64_t runs = 0; ///< crash-injected runs performed
    std::vector<ChkFailure> failures;

    bool ok() const { return failures.empty(); }
    std::string summary() const;
};

class CrashPointExplorer
{
  public:
    CrashPointExplorer(ChkConfig cfg, ChkWorkload wl, ChkOptions opts);
    ~CrashPointExplorer();

    /// Crash-free reference run: counts boundaries, records the trace
    /// hash prefix for replay verification. Idempotent.
    uint64_t count_boundaries();

    /// Exhaustive: every crash point in [0, boundaries].
    ChkReport explore_all();

    /// Specific crash points (CLI replay of a failing point).
    ChkReport explore_points(const std::vector<uint64_t> &points);

    /// `nsamples` crash points drawn from a seeded RNG.
    ChkReport sweep_random(uint64_t nsamples, uint64_t seed);

  private:
    struct Array; ///< devices + loop + volume for one run

    void run_one(uint64_t crash_at, ChkReport *rep);
    /// Replays the workload until `crash_at` completions; fills in the
    /// array, shadow, and completion count. Returns false on a
    /// workload-level error (recorded in `rep`).
    bool drive(Array &arr, ShadowVolume &shadow, uint64_t crash_at,
               uint64_t *completions, uint64_t *final_hash,
               std::vector<uint64_t> *hash_prefix, ChkReport *rep);

    ChkConfig cfg_;
    ChkWorkload wl_;
    ChkOptions opts_;
    /// Per-run triage recorders when opts_.dump_dir is set; drive()
    /// attaches them to the volume for the pre-cut phase. Raw pointers
    /// into run_one()'s stack-owned objects; the timeline is created
    /// by drive() (it needs the run's event loop) and finalized by
    /// run_one() before that loop dies.
    obs::TraceRecorder *run_trace_ = nullptr;
    obs::MetricsRegistry *run_reg_ = nullptr;
    obs::IoLedger *run_ledger_ = nullptr;
    std::unique_ptr<obs::Timeline> run_tl_;
    bool counted_ = false;
    uint64_t boundaries_ = 0;
    std::vector<uint64_t> ref_hash_; ///< cumulative hash after n events
};

} // namespace raizn::chk
