#include "chk/explorer.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "array/engine.h"
#include "common/logging.h"
#include "common/rng.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/prof/prof.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "sim/event_loop.h"

namespace raizn::chk {

namespace {

constexpr uint64_t kFnvBasis = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

uint64_t
mix(uint64_t h, uint64_t v)
{
    h ^= v;
    return h * kFnvPrime;
}

uint64_t
hash_event(uint64_t h, uint32_t dev, const ZnsTraceEvent &ev)
{
    h = mix(h, dev);
    h = mix(h, static_cast<uint64_t>(ev.op));
    h = mix(h, ev.slba);
    h = mix(h, ev.lba);
    h = mix(h, ev.nsectors);
    h = mix(h, (ev.fua ? 1 : 0) | (ev.preflush ? 2 : 0) |
                   (ev.ok ? 4 : 0));
    h = mix(h, ev.tick);
    return h;
}

/// Sequential workload driver: op N+1 is issued from op N's ack, so
/// the shadow sees a serial history while each op's device sub-IOs
/// still interleave. Callbacks capture `this` raw; the driver outlives
/// the event loop, and abandoned post-crash events are never run.
struct Driver {
    const ChkWorkload *wl;
    ZonedArray *vol;
    EventLoop *loop;
    ShadowVolume *shadow;
    size_t next = 0;
    bool done = false;
    bool op_error = false;
    std::string detail;

    void
    fail_op(const ChkOp &op, const Status &st)
    {
        op_error = true;
        done = true;
        detail = strprintf("op %zu (%s): %s", next - 1,
                           to_string(op).c_str(),
                           st.to_string().c_str());
    }

    void
    issue()
    {
        if (next >= wl->size()) {
            done = true;
            return;
        }
        const ChkOp op = (*wl)[next++];
        switch (op.kind) {
          case OpKind::kWrite: {
            uint64_t lba = vol->zone_info(op.zone).value().start + op.off;
            std::vector<uint8_t> data =
                pattern_data(op.nsectors, op.seed);
            std::vector<uint64_t> snap;
            if (op.preflush)
                snap = shadow->wps();
            shadow->on_write_submitted(op.zone, op.off, data,
                                       op.nsectors);
            WriteFlags fl;
            fl.fua = op.fua;
            fl.preflush = op.preflush;
            uint64_t end_off = op.off + op.nsectors;
            vol->write(lba, std::move(data), fl,
                       [this, op, snap = std::move(snap),
                        end_off](IoResult r) {
                           if (!r.status.is_ok()) {
                               fail_op(op, r.status);
                               return;
                           }
                           if (op.preflush)
                               shadow->on_flush_acked(snap);
                           shadow->on_write_acked(op.zone, end_off,
                                                  op.fua);
                           issue();
                       });
            break;
          }
          case OpKind::kFlush: {
            std::vector<uint64_t> snap = shadow->wps();
            vol->flush([this, op, snap = std::move(snap)](IoResult r) {
                if (!r.status.is_ok()) {
                    fail_op(op, r.status);
                    return;
                }
                shadow->on_flush_acked(snap);
                issue();
            });
            break;
          }
          case OpKind::kResetZone: {
            shadow->on_reset_submitted(op.zone);
            vol->reset_zone(op.zone, [this, op](IoResult r) {
                if (!r.status.is_ok()) {
                    fail_op(op, r.status);
                    return;
                }
                shadow->on_reset_acked(op.zone);
                issue();
            });
            break;
          }
          case OpKind::kFinishZone: {
            shadow->on_finish_submitted(op.zone);
            vol->finish_zone(op.zone, [this, op](IoResult r) {
                if (!r.status.is_ok()) {
                    fail_op(op, r.status);
                    return;
                }
                shadow->on_finish_acked(op.zone);
                issue();
            });
            break;
          }
          case OpKind::kFailDevice: {
            vol->mark_device_failed(op.dev);
            // Step through the loop so the failure lands at a
            // deterministic schedule position.
            loop->schedule_after(1, [this] { issue(); });
            break;
          }
        }
    }
};

} // namespace

ChkGeom
ChkConfig::geom() const
{
    ChkGeom g;
    g.su_sectors = su_sectors;
    g.num_devices = num_devices;
    if (engine == RaidMode::kRaizn) {
        RaiznConfig rc;
        rc.num_devices = num_devices;
        rc.su_sectors = su_sectors;
        g.num_zones = nzones - rc.md_zones_per_device;
        g.zone_cap = static_cast<uint64_t>(rc.data_units()) * zone_cap;
        g.stripe_sectors =
            static_cast<uint64_t>(rc.data_units()) * su_sectors;
        return g;
    }
    // ZonedEngine: physical zone 0 is the journal, logical zone z maps
    // to physical zone z+1. Logical capacity mirrors the engine's own
    // per-mode math (whole stripe-unit rows times data units).
    g.num_zones = nzones - 1;
    const uint64_t z = zone_cap;
    const uint64_t su = su_sectors;
    const uint64_t n = num_devices;
    uint64_t units = 1;
    switch (engine) {
      case RaidMode::kRaid0:
        units = n;
        g.zone_cap = (z / su) * su * n;
        break;
      case RaidMode::kRaid1:
        units = 1;
        g.zone_cap = z;
        break;
      case RaidMode::kRaid5:
        units = n - 1;
        g.zone_cap = (z / su) * su * (n - 1);
        break;
      case RaidMode::kRaid6:
        units = n - 2;
        g.zone_cap = (z / su) * su * (n - 2);
        break;
      case RaidMode::kRaid10:
        units = n / 2;
        g.zone_cap = (z / su) * su * (n / 2);
        break;
      case RaidMode::kAuto:
        // Aligned down to the parity stripe so either per-zone kind
        // (mirror or parity) fits the same logical capacity.
        units = n - 1;
        g.zone_cap = (z / (su * (n - 1))) * su * (n - 1);
        break;
      default:
        g.zone_cap = 0;
        break;
    }
    g.stripe_sectors = su * units;
    return g;
}

std::string
ChkReport::summary() const
{
    std::string s = strprintf(
        "boundaries=%llu runs=%llu failures=%zu",
        (unsigned long long)boundaries, (unsigned long long)runs,
        failures.size());
    size_t show = std::min<size_t>(failures.size(), 5);
    for (size_t i = 0; i < show; ++i) {
        s += strprintf("\n  crash_point=%llu [%s] %s",
                       (unsigned long long)failures[i].crash_point,
                       failures[i].invariant.c_str(),
                       failures[i].detail.c_str());
    }
    if (failures.size() > show)
        s += strprintf("\n  ... and %zu more", failures.size() - show);
    return s;
}

struct CrashPointExplorer::Array {
    std::unique_ptr<EventLoop> loop;
    std::vector<std::unique_ptr<ZnsDevice>> devs;
    /// Fault decorators over `devs` (workload phase only; empty when
    /// no faults are configured).
    std::vector<std::unique_ptr<FaultInjectingDevice>> fdevs;
    std::unique_ptr<ZonedArray> vol;
    /// Typed views of `vol` — exactly one is non-null once created.
    RaiznVolume *rvol = nullptr;
    ZonedEngine *evol = nullptr;

    void
    set_vol(std::unique_ptr<RaiznVolume> v)
    {
        rvol = v.get();
        evol = nullptr;
        vol = std::move(v);
    }
    void
    set_vol(std::unique_ptr<ZonedEngine> v)
    {
        evol = v.get();
        rvol = nullptr;
        vol = std::move(v);
    }

    std::vector<ZnsDevice *>
    zns_ptrs() const
    {
        std::vector<ZnsDevice *> out;
        for (const auto &d : devs)
            out.push_back(d.get());
        return out;
    }
    std::vector<BlockDevice *>
    blk_ptrs() const
    {
        std::vector<BlockDevice *> out;
        for (const auto &d : devs)
            out.push_back(d.get());
        return out;
    }
};

CrashPointExplorer::CrashPointExplorer(ChkConfig cfg, ChkWorkload wl,
                                       ChkOptions opts)
    : cfg_(std::move(cfg)), wl_(std::move(wl)), opts_(std::move(opts))
{
}

CrashPointExplorer::~CrashPointExplorer() = default;

bool
CrashPointExplorer::drive(Array &arr, ShadowVolume &shadow,
                          uint64_t crash_at, uint64_t *completions,
                          uint64_t *final_hash,
                          std::vector<uint64_t> *hash_prefix,
                          ChkReport *rep)
{
    PROF_SCOPE("chk.drive");
    arr.loop = std::make_unique<EventLoop>();
    std::vector<BlockDevice *> ptrs;
    for (uint32_t i = 0; i < cfg_.num_devices; ++i) {
        ZnsDeviceConfig dc;
        dc.nzones = cfg_.nzones;
        dc.zone_size = cfg_.zone_cap;
        dc.zone_capacity = cfg_.zone_cap;
        dc.atomic_write_sectors = cfg_.atomic_write_sectors;
        dc.data_mode = DataMode::kStore;
        dc.name = "chk" + std::to_string(i);
        arr.devs.push_back(
            std::make_unique<ZnsDevice>(arr.loop.get(), dc));
        ptrs.push_back(arr.devs.back().get());
    }
    bool inject = opts_.faults.any() || opts_.fail_slow_dev >= 0;
    if (inject) {
        // The volume talks to fault decorators; traces and the
        // post-crash remount stay on the raw devices underneath.
        ptrs.clear();
        for (uint32_t i = 0; i < cfg_.num_devices; ++i) {
            FaultConfig fc = opts_.faults;
            fc.seed = opts_.faults.seed ^
                (0x9e3779b97f4a7c15ull * (i + 1));
            if (static_cast<int>(i) == opts_.fail_slow_dev)
                fc.latency_multiplier = opts_.fail_slow_mult;
            arr.fdevs.push_back(std::make_unique<FaultInjectingDevice>(
                arr.loop.get(), arr.devs[i].get(), fc));
            ptrs.push_back(arr.fdevs.back().get());
        }
    }
    if (cfg_.engine == RaidMode::kRaizn) {
        RaiznConfig rc;
        rc.num_devices = cfg_.num_devices;
        rc.su_sectors = cfg_.su_sectors;
        auto created = RaiznVolume::create(arr.loop.get(), ptrs, rc);
        if (!created.is_ok()) {
            rep->failures.push_back(
                {crash_at, "setup", created.status().to_string()});
            return false;
        }
        arr.set_vol(std::move(created).value());
        arr.rvol->set_debug_fault(opts_.fault);
    } else {
        if (opts_.phase == ChkOptions::Phase::kRebuild) {
            rep->failures.push_back(
                {crash_at, "setup",
                 "rebuild-phase exploration needs the raizn engine "
                 "(persistent rebuild checkpoints)"});
            return false;
        }
        if (opts_.fault != RaiznVolume::DebugFault::kNone) {
            rep->failures.push_back(
                {crash_at, "setup",
                 "debug faults are raizn-specific (partial-parity log)"});
            return false;
        }
        EngineConfig ec;
        ec.mode = cfg_.engine;
        ec.su_sectors = cfg_.su_sectors;
        auto created = ZonedEngine::create(arr.loop.get(), ptrs, ec);
        if (!created.is_ok()) {
            rep->failures.push_back(
                {crash_at, "setup", created.status().to_string()});
            return false;
        }
        arr.set_vol(std::move(created).value());
    }
    if (run_trace_ != nullptr || run_reg_ != nullptr)
        arr.vol->attach_observability(run_reg_, run_trace_);
    if (run_ledger_ != nullptr) {
        arr.vol->attach_ledger(run_ledger_);
        if (run_reg_ != nullptr)
            run_ledger_->link_metrics(run_reg_);
    }
    if (run_reg_ != nullptr) {
        // Ring-buffered tail of the run's telemetry. Exploration
        // workloads cover a few virtual milliseconds, so the sampling
        // period is far finer than the benches' 100ms default.
        obs::TimelineConfig tc;
        tc.interval = 50 * kNsPerUs;
        tc.capacity = 256;
        run_tl_ =
            std::make_unique<obs::Timeline>(arr.loop.get(), run_reg_, tc);
        if (run_ledger_ != nullptr)
            run_ledger_->install_probe(run_tl_.get());
        run_tl_->start();
    }
    if (inject) {
        ZonedArray::ResilienceConfig rcfg;
        if (opts_.faults.stuck_rate > 0 || opts_.fail_slow_dev >= 0) {
            // Serial workload => tiny queue depth: a 10ms deadline
            // catches stuck IOs without tripping on queueing.
            rcfg.retry.io_deadline = 10 * kNsPerMs;
        }
        arr.vol->set_resilience(rcfg);
    }

    // Trace every completion from here on; mkfs is excluded so crash
    // point 0 is "power cut before the workload's first completion".
    // In the rebuild phase the whole workload is excluded too: tracing
    // (and the crash point count) starts with the rebuild's first IO.
    uint64_t hash = kFnvBasis;
    if (hash_prefix)
        hash_prefix->assign(1, hash);
    auto install_traces = [&] {
        for (uint32_t d = 0; d < cfg_.num_devices; ++d) {
            arr.devs[d]->set_trace(
                [d, completions, &hash,
                 hash_prefix](const ZnsTraceEvent &ev) {
                    (*completions)++;
                    hash = hash_event(hash, d, ev);
                    if (hash_prefix)
                        hash_prefix->push_back(hash);
                });
        }
    };
    bool rebuild_phase = opts_.phase == ChkOptions::Phase::kRebuild;
    if (!rebuild_phase)
        install_traces();

    Driver drv;
    drv.wl = &wl_;
    drv.vol = arr.vol.get();
    drv.loop = arr.loop.get();
    drv.shadow = &shadow;
    drv.issue();
    if (!rebuild_phase) {
        arr.loop->run_until_pred(
            [&] { return *completions >= crash_at || drv.done; });
        if (!drv.op_error && *completions < crash_at) {
            // Workload acked; drain straggler completions (metadata
            // appends issued without waiting) up to the crash point.
            arr.loop->run_until_pred(
                [&] { return *completions >= crash_at; });
        }
    } else {
        arr.loop->run_until_pred([&] { return drv.done; });
        if (!drv.op_error) {
            // Quiesce stragglers so the traced window holds rebuild IO
            // only, then fail the target and rebuild onto a blank swap.
            arr.loop->run();
            uint32_t target = opts_.rebuild_dev % cfg_.num_devices;
            if (arr.vol->failed_device() >= 0 &&
                arr.vol->failed_device() != static_cast<int>(target)) {
                rep->failures.push_back(
                    {crash_at, "setup",
                     "rebuild phase needs a workload that leaves the "
                     "array healthy"});
                return false;
            }
            arr.vol->mark_device_failed(target);
            arr.devs[target]->replace();
            if (opts_.rebuild_rate > 0) {
                RaiznVolume::LifecycleConfig lc;
                lc.throttle.rate_sectors_per_sec = opts_.rebuild_rate;
                arr.rvol->set_lifecycle(lc);
            }
            install_traces();
            bool rb_done = false;
            Status rb_st;
            arr.vol->rebuild_device(target, nullptr, [&](Status s) {
                rb_st = s;
                rb_done = true;
            });
            arr.loop->run_until_pred(
                [&] { return *completions >= crash_at || rb_done; });
            if (rb_done && !rb_st.is_ok()) {
                rep->failures.push_back(
                    {crash_at, "rebuild", rb_st.to_string()});
                drv.op_error = true;
            } else if (rb_done && *completions < crash_at) {
                // Drain the trailing completion-checkpoint appends.
                arr.loop->run_until_pred(
                    [&] { return *completions >= crash_at; });
            }
        }
    }
    *final_hash = hash;
    for (uint32_t d = 0; d < cfg_.num_devices; ++d)
        arr.devs[d]->set_trace(nullptr);
    if (drv.op_error) {
        if (!drv.detail.empty())
            rep->failures.push_back({crash_at, "workload", drv.detail});
        return false;
    }
    return true;
}

uint64_t
CrashPointExplorer::count_boundaries()
{
    if (counted_)
        return boundaries_;
    ChkGeom g = cfg_.geom();
    ShadowVolume shadow(g.num_zones, g.zone_cap, true);
    Array arr;
    uint64_t completions = 0, hash = 0;
    ChkReport scratch;
    if (!drive(arr, shadow, UINT64_MAX, &completions, &hash, &ref_hash_,
               &scratch)) {
        LOG_ERROR("chk reference run failed: %s",
                  scratch.failures.back().detail.c_str());
        return 0;
    }
    boundaries_ = completions;
    counted_ = true;
    return boundaries_;
}

void
CrashPointExplorer::run_one(uint64_t crash_at, ChkReport *rep)
{
    const bool dumping = !opts_.dump_dir.empty();
    // Bundles carry a per-run host profile; when the CLI already
    // opened a whole-process window (--prof) it is snapshotted
    // cumulatively instead of being reset per run.
    const bool own_prof = dumping && !prof::enabled();
    if (own_prof)
        prof::enable();
    PROF_SCOPE("chk.run_one");
    ChkGeom g = cfg_.geom();
    ShadowVolume shadow(g.num_zones, g.zone_cap, true);

    // Triage recorders when dump_dir is set; a failure below dumps
    // the bundle. Declared before the array: the registry and ledger
    // are linked into volume/device state by raw pointer, so they must
    // outlive it (and their artifacts are snapshotted to strings while
    // the pre-cut objects are still alive). Spans still open at the
    // cut never entered the trace ring, so trace.json shows exactly
    // what had completed when power was lost.
    std::unique_ptr<obs::TraceRecorder> trace;
    std::unique_ptr<obs::MetricsRegistry> reg;
    std::unique_ptr<obs::IoLedger> ledger;
    struct {
        std::string metrics, timeline, ledger;
        bool taken = false;
    } snap;
    Array arr;
    uint64_t completions = 0, hash = 0;
    rep->runs++;

    size_t fails_before = rep->failures.size();
    if (dumping) {
        trace = std::make_unique<obs::TraceRecorder>(1u << 15);
        run_trace_ = trace.get();
        reg = std::make_unique<obs::MetricsRegistry>();
        run_reg_ = reg.get();
        ledger = std::make_unique<obs::IoLedger>();
        run_ledger_ = ledger.get();
    }
    // Snapshots the state-at-the-cut artifacts. Must run before the
    // pre-cut loop and volume die: the timeline's probe hangs off that
    // loop and the registry reads pointers into the volume's stats.
    auto snapshot = [&] {
        if (!dumping || snap.taken)
            return;
        snap.taken = true;
        if (run_tl_ != nullptr) {
            run_tl_->sample_now();
            run_tl_->stop();
            snap.timeline = run_tl_->to_csv();
        }
        ledger->refresh_gauges();
        snap.metrics = reg->to_json();
        snap.ledger = ledger->to_json();
    };
    auto dump_bundle = [&] {
        snapshot();
        run_trace_ = nullptr;
        run_reg_ = nullptr;
        run_ledger_ = nullptr;
        run_tl_.reset();
        if (own_prof)
            prof::disable();
        if (!dumping || rep->failures.size() == fails_before)
            return;
        std::string dir = opts_.dump_dir +
            strprintf("/point_%llu", (unsigned long long)crash_at);
        if (mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
            LOG_ERROR("chk: cannot create %s: %s", dir.c_str(),
                      strerror(errno));
            return;
        }
        Status s = trace->write_chrome_json(dir + "/trace.json",
                                            cfg_.num_devices);
        if (!s.is_ok())
            LOG_ERROR("chk: trace dump failed: %s",
                      s.to_string().c_str());
        prof::write_file(dir + "/metrics.json", snap.metrics);
        prof::write_file(dir + "/timeline.csv", snap.timeline);
        prof::write_file(dir + "/ledger.json", snap.ledger);
        prof::write_file(dir + "/prof.json", prof::summary_json());
        LOG_INFO("chk: wrote triage bundle %s (%zu trace spans)",
                 dir.c_str(), trace->size());
    };

    if (!drive(arr, shadow, crash_at, &completions, &hash, nullptr,
               rep)) {
        dump_bundle();
        return;
    }

    if (opts_.verify_replay && counted_ &&
        completions < ref_hash_.size() &&
        hash != ref_hash_[completions]) {
        rep->failures.push_back(
            {crash_at, "replay-hash",
             strprintf("schedule diverged from reference after %llu "
                       "completions",
                       (unsigned long long)completions)});
        dump_bundle();
        return;
    }

    // The pre-cut objects die below; capture the bundle artifacts now.
    snapshot();

    // Snapshot acknowledged generations, then cut power everywhere.
    std::vector<uint64_t> pre_gens;
    for (uint32_t z = 0; z < g.num_zones; ++z)
        pre_gens.push_back(arr.rvol ? arr.rvol->gen_counters().get(z)
                                    : arr.evol->zone_gen(z));
    arr.rvol = nullptr;
    arr.evol = nullptr;
    arr.vol.reset();
    for (uint32_t d = 0; d < cfg_.num_devices; ++d) {
        PowerLossSpec spec;
        if (opts_.divergent_loss) {
            spec.policy = d == 0 ? PowerLossSpec::Policy::kDropCache
                                 : PowerLossSpec::Policy::kKeepAll;
        } else {
            spec.policy = opts_.policy;
        }
        spec.seed = opts_.loss_seed ^ (crash_at * 0x9e3779b9u + d);
        arr.devs[d]->power_cut(spec);
    }
    arr.loop = std::make_unique<EventLoop>();
    for (auto &dev : arr.devs)
        dev->reattach(arr.loop.get());

    if (cfg_.engine == RaidMode::kRaizn) {
        auto mounted = RaiznVolume::mount(arr.loop.get(), arr.blk_ptrs());
        if (!mounted.is_ok()) {
            rep->failures.push_back(
                {crash_at, "mount", mounted.status().to_string()});
            dump_bundle();
            return;
        }
        arr.set_vol(std::move(mounted).value());
    } else {
        EngineConfig ec;
        ec.mode = cfg_.engine;
        ec.su_sectors = cfg_.su_sectors;
        auto mounted =
            ZonedEngine::mount(arr.loop.get(), arr.blk_ptrs(), ec);
        if (!mounted.is_ok()) {
            rep->failures.push_back(
                {crash_at, "mount", mounted.status().to_string()});
            dump_bundle();
            return;
        }
        arr.set_vol(std::move(mounted).value());
    }

    if (opts_.phase == ChkOptions::Phase::kRebuild) {
        PROF_SCOPE("chk.rebuild");
        // Drive the interrupted rebuild to completion: resume from the
        // persisted checkpoint when one survived the cut, restart from
        // scratch when the cut landed before checkpoint #0 was durable
        // (mount then flags the blank replacement as the absent
        // device). Either way the oracle judges a healed array.
        bool resumed = arr.rvol->has_pending_rebuild();
        Status rb_st;
        bool rb_done = true;
        if (resumed) {
            rb_done = false;
            arr.rvol->resume_rebuild(nullptr, [&](Status s) {
                rb_st = s;
                rb_done = true;
            });
        } else if (arr.vol->failed_device() >= 0) {
            rb_done = false;
            arr.vol->rebuild_device(
                static_cast<uint32_t>(arr.vol->failed_device()), nullptr,
                [&](Status s) {
                    rb_st = s;
                    rb_done = true;
                });
        }
        arr.loop->run_until_pred([&] { return rb_done; });
        if (!rb_st.is_ok()) {
            rep->failures.push_back({crash_at,
                                     resumed ? "rebuild-resume"
                                             : "rebuild-restart",
                                     rb_st.to_string()});
            dump_bundle();
            return;
        }
        if (arr.vol->failed_device() >= 0) {
            rep->failures.push_back(
                {crash_at, "rebuild-resume",
                 "volume still degraded after post-crash rebuild"});
            dump_bundle();
            return;
        }
        // Late cut points must have at least one durably checkpointed
        // zone to skip on resume — otherwise the checkpoint record is
        // not actually saving re-rebuild work (zone cursor stuck at 0).
        uint64_t total_zones = arr.rvol->stats().zones_rebuilt +
            arr.rvol->stats().rebuild_zones_resumed;
        if (resumed && counted_ && total_zones >= 2 &&
            crash_at >= boundaries_ - boundaries_ / 4 &&
            arr.rvol->stats().rebuild_zones_resumed == 0) {
            rep->failures.push_back(
                {crash_at, "rebuild-checkpoint",
                 strprintf("late cut (%llu of %llu completions) "
                           "resumed zero of %llu zones from the "
                           "checkpoint",
                           (unsigned long long)crash_at,
                           (unsigned long long)boundaries_,
                           (unsigned long long)total_zones)});
            dump_bundle();
            return;
        }
    }

    {
        PROF_SCOPE("chk.oracle");
        if (arr.rvol != nullptr) {
            OracleOptions oo;
            oo.check_parity = opts_.check_parity;
            oo.degrade_dev = opts_.check_degraded
                ? static_cast<int>(crash_at % cfg_.num_devices)
                : -1;
            check_invariants(*arr.loop, *arr.rvol, arr.zns_ptrs(),
                             shadow, pre_gens, oo, crash_at,
                             &rep->failures);
        } else {
            EngineOracleOptions eo;
            eo.check_scrub = opts_.check_parity;
            eo.degrade_dev = opts_.check_degraded
                ? static_cast<int>(crash_at % cfg_.num_devices)
                : -1;
            check_engine_invariants(*arr.loop, *arr.evol, shadow,
                                    pre_gens, eo, crash_at,
                                    &rep->failures);
        }
    }
    dump_bundle();
}

ChkReport
CrashPointExplorer::explore_all()
{
    ChkReport rep;
    rep.boundaries = count_boundaries();
    for (uint64_t n = 0; n <= rep.boundaries; ++n)
        run_one(n, &rep);
    return rep;
}

ChkReport
CrashPointExplorer::explore_points(const std::vector<uint64_t> &points)
{
    ChkReport rep;
    rep.boundaries = count_boundaries();
    for (uint64_t n : points)
        run_one(std::min(n, rep.boundaries), &rep);
    return rep;
}

ChkReport
CrashPointExplorer::sweep_random(uint64_t nsamples, uint64_t seed)
{
    ChkReport rep;
    rep.boundaries = count_boundaries();
    Rng rng(seed ^ 0xc4a5c85d68d3afe5ull);
    for (uint64_t i = 0; i < nsamples; ++i)
        run_one(rng.next_below(rep.boundaries + 1), &rep);
    return rep;
}

} // namespace raizn::chk
