/**
 * @file
 * Workload descriptions for the crash-point explorer: a small
 * imperative op list the driver replays sequentially against a
 * RaiznVolume. Sequential issue (op N+1 starts at op N's ack) keeps the
 * shadow model exact while the device sub-IOs of each op still fan out
 * concurrently — every device completion boundary inside an op remains
 * a distinct crash point.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace raizn::chk {

enum class OpKind : uint8_t {
    kWrite,
    kFlush,
    kResetZone,
    kFinishZone,
    kFailDevice, ///< hot-remove a device mid-workload (degraded paths)
};

struct ChkOp {
    OpKind kind = OpKind::kWrite;
    uint32_t zone = 0; ///< logical zone (write / reset / finish)
    uint64_t off = 0; ///< zone-relative start sector (write)
    uint32_t nsectors = 0; ///< write length
    bool fua = false;
    bool preflush = false;
    uint32_t dev = 0; ///< kFailDevice target
    uint64_t seed = 0; ///< payload pattern seed (write)
};

using ChkWorkload = std::vector<ChkOp>;

std::string to_string(const ChkOp &op);

/// Logical geometry the workload generators need.
struct ChkGeom {
    uint32_t num_zones = 0;
    uint64_t zone_cap = 0; ///< logical sectors per zone
    uint64_t stripe_sectors = 0; ///< data sectors per stripe
    uint32_t su_sectors = 0;
    uint32_t num_devices = 5;
};

/**
 * Canonical exhaustive-mode workload: several stripes of mixed-size
 * writes with FUA/PREFLUSH/flush boundaries, a second zone, a zone
 * reset with rewrite, and a zone finish — every §5 crash-consistency
 * mechanism is on some path.
 */
ChkWorkload canonical_workload(const ChkGeom &g);

/// Canonical workload prefixed by a device failure, so every crash
/// point is explored while the array runs degraded (§5.1 partial
/// parity is then the only recovery source for open stripes).
ChkWorkload degraded_workload(const ChkGeom &g, uint32_t fail_dev);

/// Seeded random workload of roughly `nops` valid sequential ops.
/// `allow_fail_dev` gates the (at most one) mid-workload device
/// failure; pass false for engines whose crash contract only covers
/// healthy arrays (generic parity modes keep tail parity in memory, so
/// degraded acks are not crash-durable — RAIZN's pp-log is what fixes
/// this).
ChkWorkload random_workload(const ChkGeom &g, uint64_t seed,
                            uint32_t nops, bool allow_fail_dev = true);

} // namespace raizn::chk
