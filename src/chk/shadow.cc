#include "chk/shadow.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/units.h"

namespace raizn::chk {

ShadowVolume::ShadowVolume(uint32_t num_zones, uint64_t zone_cap,
                           bool store_data)
    : zone_cap_(zone_cap), store_data_(store_data)
{
    zones_.resize(num_zones);
    if (store_data_) {
        for (ZoneShadow &zs : zones_)
            zs.image.assign(zone_cap_ * kSectorSize, 0);
    }
}

std::vector<uint64_t>
ShadowVolume::wps() const
{
    std::vector<uint64_t> out;
    out.reserve(zones_.size());
    for (const ZoneShadow &zs : zones_)
        out.push_back(zs.wp);
    return out;
}

void
ShadowVolume::on_write_submitted(uint32_t zone, uint64_t off,
                                 const std::vector<uint8_t> &data,
                                 uint32_t nsectors)
{
    ZoneShadow &zs = zones_[zone];
    assert(off == zs.wp && "driver must write sequentially");
    assert(off + nsectors <= zone_cap_);
    if (store_data_ && !data.empty()) {
        assert(data.size() ==
               static_cast<size_t>(nsectors) * kSectorSize);
        std::memcpy(zs.image.data() + off * kSectorSize, data.data(),
                    data.size());
    }
    zs.wp = off + nsectors;
}

void
ShadowVolume::on_reset_submitted(uint32_t zone)
{
    ZoneShadow &zs = zones_[zone];
    if (zs.wp == 0 && !zs.finish_pending) {
        // The volume short-circuits resets of empty zones: no WAL, no
        // device IO, nothing for a crash to interleave with.
        return;
    }
    assert(!zs.reset_pending);
    zs.reset_pending = true;
    zs.old_wp = zs.wp;
    zs.old_floor = zs.floor;
    zs.old_finish_pending = zs.finish_pending;
    zs.old_image = std::move(zs.image);
    zs.wp = 0;
    zs.floor = 0;
    zs.finish_pending = false;
    if (store_data_)
        zs.image.assign(zone_cap_ * kSectorSize, 0);
}

void
ShadowVolume::on_finish_submitted(uint32_t zone)
{
    zones_[zone].finish_pending = true;
}

void
ShadowVolume::on_write_acked(uint32_t zone, uint64_t end_off, bool fua)
{
    if (fua) {
        ZoneShadow &zs = zones_[zone];
        zs.floor = std::max(zs.floor, std::min(end_off, zs.wp));
    }
}

void
ShadowVolume::on_flush_acked(const std::vector<uint64_t> &wps_at_submit)
{
    for (size_t z = 0; z < zones_.size(); ++z) {
        ZoneShadow &zs = zones_[z];
        if (zs.reset_pending || wps_at_submit[z] > zs.wp) {
            // The zone was reset after the flush was submitted; the
            // snapshot refers to contents the reset discarded.
            continue;
        }
        zs.floor = std::max(zs.floor, wps_at_submit[z]);
    }
}

void
ShadowVolume::on_reset_acked(uint32_t zone)
{
    ZoneShadow &zs = zones_[zone];
    if (!zs.reset_pending)
        return; // empty-zone no-op reset
    zs.reset_pending = false;
    zs.old_image.clear();
}

void
ShadowVolume::on_finish_acked(uint32_t zone)
{
    ZoneShadow &zs = zones_[zone];
    zs.finish_pending = false;
    zs.wp = zone_cap_;
    zs.floor = zone_cap_;
}

} // namespace raizn::chk
