#include "chk/oracle.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "raizn/stripe_buffer.h"
#include "raizn/volume.h"
#include "sim/event_loop.h"
#include "zns/zns_device.h"

namespace raizn::chk {

namespace {

void
add(std::vector<ChkFailure> *out, uint64_t point, const char *invariant,
    std::string detail)
{
    out->push_back({point, invariant, std::move(detail)});
}

/// Synchronous logical read through the volume.
IoResult
vol_read(EventLoop &loop, RaiznVolume &vol, uint64_t lba, uint32_t n)
{
    IoResult res;
    bool done = false;
    vol.read(lba, n, [&](IoResult r) {
        res = std::move(r);
        done = true;
    });
    loop.run_until_pred([&] { return done; });
    return res;
}

/// First differing sector between `got` and the image prefix, or -1.
int64_t
first_mismatch(const std::vector<uint8_t> &got,
               const std::vector<uint8_t> &image, uint64_t nsectors)
{
    for (uint64_t s = 0; s < nsectors; ++s) {
        if (std::memcmp(got.data() + s * kSectorSize,
                        image.data() + s * kSectorSize, kSectorSize) != 0)
            return static_cast<int64_t>(s);
    }
    return -1;
}

/// Reads [start, start+fill) through the volume and compares against
/// the shadow image. Returns true when everything matched.
bool
check_zone_content(EventLoop &loop, RaiznVolume &vol, uint32_t z,
                   uint64_t start, uint64_t fill,
                   const std::vector<uint8_t> &image, const char *tag,
                   uint64_t point, std::vector<ChkFailure> *out)
{
    constexpr uint32_t kChunk = 128; // sectors per read
    for (uint64_t off = 0; off < fill; off += kChunk) {
        uint32_t n =
            static_cast<uint32_t>(std::min<uint64_t>(kChunk, fill - off));
        IoResult r = vol_read(loop, vol, start + off, n);
        if (!r.status.is_ok()) {
            add(out, point, tag,
                strprintf("zone %u read at off %llu failed: %s", z,
                          (unsigned long long)off,
                          r.status.to_string().c_str()));
            return false;
        }
        std::vector<uint8_t> want(
            image.begin() +
                static_cast<ptrdiff_t>(off * kSectorSize),
            image.begin() +
                static_cast<ptrdiff_t>((off + n) * kSectorSize));
        int64_t bad = first_mismatch(r.data, want, n);
        if (bad >= 0) {
            add(out, point, tag,
                strprintf("zone %u data mismatch at zone offset %llu", z,
                          (unsigned long long)(off + bad)));
            return false;
        }
    }
    return true;
}

} // namespace

void
check_invariants(EventLoop &loop, RaiznVolume &vol,
                 const std::vector<ZnsDevice *> &devs,
                 const ShadowVolume &shadow,
                 const std::vector<uint64_t> &pre_crash_gens,
                 const OracleOptions &opts, uint64_t crash_point,
                 std::vector<ChkFailure> *out)
{
    const uint64_t cap = shadow.zone_cap();
    std::vector<uint64_t> fills(shadow.num_zones(), 0);

    for (uint32_t z = 0; z < shadow.num_zones(); ++z) {
        auto zi = vol.zone_info(z);
        if (!zi.is_ok()) {
            add(out, crash_point, "wp-bounds",
                strprintf("zone_info(%u) failed: %s", z,
                          zi.status().to_string().c_str()));
            continue;
        }
        uint64_t off = zi.value().wp - zi.value().start;
        fills[z] = off;
        const ShadowVolume::ZoneShadow &zs = shadow.zone(z);

        // Generation counters never move backwards.
        if (vol.gen_counters().get(z) < pre_crash_gens[z]) {
            add(out, crash_point, "gen-monotonic",
                strprintf("zone %u generation %llu < pre-crash %llu", z,
                          (unsigned long long)vol.gen_counters().get(z),
                          (unsigned long long)pre_crash_gens[z]));
        }

        if (zs.reset_pending) {
            // Two allowed worlds: the reset won (empty zone) or the
            // reset WAL never became durable (old contents intact).
            uint64_t old_hi = zs.old_finish_pending ? cap : zs.old_wp;
            if (off == 0)
                continue;
            if (off < zs.old_floor || off > old_hi) {
                add(out, crash_point, "wp-bounds",
                    strprintf("zone %u recovered fill %llu outside "
                              "[%llu, %llu] (reset in flight)",
                              z, (unsigned long long)off,
                              (unsigned long long)zs.old_floor,
                              (unsigned long long)old_hi));
                continue;
            }
            check_zone_content(loop, vol, z, zi.value().start, off,
                               zs.old_image, "readability", crash_point,
                               out);
            continue;
        }

        uint64_t hi = zs.finish_pending ? cap : zs.wp;
        if (off < zs.floor) {
            add(out, crash_point, "durability",
                strprintf("zone %u recovered fill %llu below durable "
                          "floor %llu",
                          z, (unsigned long long)off,
                          (unsigned long long)zs.floor));
            continue;
        }
        if (off > hi) {
            add(out, crash_point, "wp-bounds",
                strprintf("zone %u recovered fill %llu above submitted "
                          "%llu",
                          z, (unsigned long long)off,
                          (unsigned long long)hi));
            continue;
        }
        check_zone_content(loop, vol, z, zi.value().start, off, zs.image,
                           "readability", crash_point, out);
    }

    // Parity of settled full stripes, checked raw against the devices.
    // Skipped when degraded (the failed device's units are unreadable)
    // and for stripes with relocated or burned units, whose semantic
    // correctness the degraded re-read covers instead.
    if (opts.check_parity && !vol.degraded()) {
        const Layout &lay = vol.layout();
        const uint32_t D = lay.data_units();
        const uint32_t su = lay.su();
        for (uint32_t z = 0; z < shadow.num_zones(); ++z) {
            uint64_t full_stripes = fills[z] / lay.stripe_sectors();
            for (uint64_t s = 0; s < full_stripes; ++s) {
                if (vol.stripe_displaced(z, s))
                    continue;
                uint64_t pba = lay.slot_pba(z, s);
                std::vector<uint8_t> acc(
                    static_cast<size_t>(su) * kSectorSize, 0);
                bool read_ok = true;
                for (uint32_t k = 0; k < D && read_ok; ++k) {
                    uint32_t d = lay.data_dev(z, s, k);
                    IoResult r = submit_sync(loop, *devs[d],
                                             IoRequest::read(pba, su));
                    read_ok = r.status.is_ok();
                    if (read_ok)
                        xor_bytes(acc.data(), r.data.data(), acc.size());
                }
                if (!read_ok)
                    continue;
                uint32_t pdev = lay.parity_dev(z, s);
                IoResult pr = submit_sync(loop, *devs[pdev],
                                          IoRequest::read(pba, su));
                if (!pr.status.is_ok())
                    continue;
                if (std::memcmp(acc.data(), pr.data.data(), acc.size()) !=
                    0) {
                    add(out, crash_point, "parity",
                        strprintf("zone %u stripe %llu parity mismatch",
                                  z, (unsigned long long)s));
                }
            }
        }
    }

    // Degraded re-read: mark one device failed and require every
    // readable sector to reconstruct to the same shadow value.
    if (opts.degrade_dev >= 0 && !vol.degraded() && !vol.read_only() &&
        !devs[static_cast<uint32_t>(opts.degrade_dev)]->failed()) {
        vol.mark_device_failed(static_cast<uint32_t>(opts.degrade_dev));
        for (uint32_t z = 0; z < shadow.num_zones(); ++z) {
            const ShadowVolume::ZoneShadow &zs = shadow.zone(z);
            const std::vector<uint8_t> &image =
                zs.reset_pending && fills[z] > 0 ? zs.old_image
                                                 : zs.image;
            if (image.empty())
                continue;
            check_zone_content(loop, vol, z, vol.zone_info(z).value().start,
                               fills[z], image, "degraded-read",
                               crash_point, out);
        }
    }
}

} // namespace raizn::chk
