#include "chk/oracle.h"

#include <algorithm>
#include <cstring>
#include <functional>

#include "array/engine.h"
#include "common/logging.h"
#include "raizn/stripe_buffer.h"
#include "raizn/volume.h"
#include "sim/event_loop.h"
#include "zns/zns_device.h"

namespace raizn::chk {

namespace {

void
add(std::vector<ChkFailure> *out, uint64_t point, const char *invariant,
    std::string detail)
{
    out->push_back({point, invariant, std::move(detail)});
}

/// Synchronous logical read through the array.
IoResult
vol_read(EventLoop &loop, ZonedArray &vol, uint64_t lba, uint32_t n)
{
    IoResult res;
    bool done = false;
    vol.read(lba, n, [&](IoResult r) {
        res = std::move(r);
        done = true;
    });
    loop.run_until_pred([&] { return done; });
    return res;
}

/// First differing sector between `got` and the image prefix, or -1.
int64_t
first_mismatch(const std::vector<uint8_t> &got,
               const std::vector<uint8_t> &image, uint64_t nsectors)
{
    for (uint64_t s = 0; s < nsectors; ++s) {
        if (std::memcmp(got.data() + s * kSectorSize,
                        image.data() + s * kSectorSize, kSectorSize) != 0)
            return static_cast<int64_t>(s);
    }
    return -1;
}

/// Reads [start, start+fill) through the array and compares against
/// the shadow image. Returns true when everything matched.
bool
check_zone_content(EventLoop &loop, ZonedArray &vol, uint32_t z,
                   uint64_t start, uint64_t fill,
                   const std::vector<uint8_t> &image, const char *tag,
                   uint64_t point, std::vector<ChkFailure> *out)
{
    constexpr uint32_t kChunk = 128; // sectors per read
    for (uint64_t off = 0; off < fill; off += kChunk) {
        uint32_t n =
            static_cast<uint32_t>(std::min<uint64_t>(kChunk, fill - off));
        IoResult r = vol_read(loop, vol, start + off, n);
        if (!r.status.is_ok()) {
            add(out, point, tag,
                strprintf("zone %u read at off %llu failed: %s", z,
                          (unsigned long long)off,
                          r.status.to_string().c_str()));
            return false;
        }
        std::vector<uint8_t> want(
            image.begin() +
                static_cast<ptrdiff_t>(off * kSectorSize),
            image.begin() +
                static_cast<ptrdiff_t>((off + n) * kSectorSize));
        int64_t bad = first_mismatch(r.data, want, n);
        if (bad >= 0) {
            add(out, point, tag,
                strprintf("zone %u data mismatch at zone offset %llu", z,
                          (unsigned long long)(off + bad)));
            return false;
        }
    }
    return true;
}

/**
 * Mode-independent core of the oracle: readability, durability floor,
 * wp bounds (with the two-world reset ambiguity), and generation
 * monotonicity — everything expressible through the ZonedArray
 * interface plus a per-zone generation getter. Fills `fills` with the
 * recovered per-zone fill for the mode-specific checks that follow.
 */
void
check_core(EventLoop &loop, ZonedArray &vol, const ShadowVolume &shadow,
           const std::vector<uint64_t> &pre_crash_gens,
           const std::function<uint64_t(uint32_t)> &gen_of,
           uint64_t crash_point, std::vector<ChkFailure> *out,
           std::vector<uint64_t> *fills)
{
    const uint64_t cap = shadow.zone_cap();

    for (uint32_t z = 0; z < shadow.num_zones(); ++z) {
        auto zi = vol.zone_info(z);
        if (!zi.is_ok()) {
            add(out, crash_point, "wp-bounds",
                strprintf("zone_info(%u) failed: %s", z,
                          zi.status().to_string().c_str()));
            continue;
        }
        uint64_t off = zi.value().wp - zi.value().start;
        (*fills)[z] = off;
        const ShadowVolume::ZoneShadow &zs = shadow.zone(z);

        // Generation counters never move backwards.
        if (gen_of(z) < pre_crash_gens[z]) {
            add(out, crash_point, "gen-monotonic",
                strprintf("zone %u generation %llu < pre-crash %llu", z,
                          (unsigned long long)gen_of(z),
                          (unsigned long long)pre_crash_gens[z]));
        }

        if (zs.reset_pending) {
            // Two allowed worlds: the reset won (empty zone) or the
            // reset WAL never became durable (old contents intact).
            uint64_t old_hi = zs.old_finish_pending ? cap : zs.old_wp;
            if (off == 0)
                continue;
            if (off < zs.old_floor || off > old_hi) {
                add(out, crash_point, "wp-bounds",
                    strprintf("zone %u recovered fill %llu outside "
                              "[%llu, %llu] (reset in flight)",
                              z, (unsigned long long)off,
                              (unsigned long long)zs.old_floor,
                              (unsigned long long)old_hi));
                continue;
            }
            check_zone_content(loop, vol, z, zi.value().start, off,
                               zs.old_image, "readability", crash_point,
                               out);
            continue;
        }

        uint64_t hi = zs.finish_pending ? cap : zs.wp;
        if (off < zs.floor) {
            add(out, crash_point, "durability",
                strprintf("zone %u recovered fill %llu below durable "
                          "floor %llu",
                          z, (unsigned long long)off,
                          (unsigned long long)zs.floor));
            continue;
        }
        if (off > hi) {
            add(out, crash_point, "wp-bounds",
                strprintf("zone %u recovered fill %llu above submitted "
                          "%llu",
                          z, (unsigned long long)off,
                          (unsigned long long)hi));
            continue;
        }
        check_zone_content(loop, vol, z, zi.value().start, off, zs.image,
                           "readability", crash_point, out);
    }
}

} // namespace

void
check_invariants(EventLoop &loop, RaiznVolume &vol,
                 const std::vector<ZnsDevice *> &devs,
                 const ShadowVolume &shadow,
                 const std::vector<uint64_t> &pre_crash_gens,
                 const OracleOptions &opts, uint64_t crash_point,
                 std::vector<ChkFailure> *out)
{
    std::vector<uint64_t> fills(shadow.num_zones(), 0);
    check_core(loop, vol, shadow, pre_crash_gens,
               [&vol](uint32_t z) { return vol.gen_counters().get(z); },
               crash_point, out, &fills);

    // Parity of settled full stripes, checked raw against the devices.
    // Skipped when degraded (the failed device's units are unreadable)
    // and for stripes with relocated or burned units, whose semantic
    // correctness the degraded re-read covers instead.
    if (opts.check_parity && !vol.degraded()) {
        const Layout &lay = vol.layout();
        const uint32_t D = lay.data_units();
        const uint32_t su = lay.su();
        for (uint32_t z = 0; z < shadow.num_zones(); ++z) {
            uint64_t full_stripes = fills[z] / lay.stripe_sectors();
            for (uint64_t s = 0; s < full_stripes; ++s) {
                if (vol.stripe_displaced(z, s))
                    continue;
                uint64_t pba = lay.slot_pba(z, s);
                std::vector<uint8_t> acc(
                    static_cast<size_t>(su) * kSectorSize, 0);
                bool read_ok = true;
                for (uint32_t k = 0; k < D && read_ok; ++k) {
                    uint32_t d = lay.data_dev(z, s, k);
                    IoRequest rd = IoRequest::read(pba, su);
                    rd.cause = obs::Cause::kScrub;
                    IoResult r =
                        submit_sync(loop, *devs[d], std::move(rd));
                    read_ok = r.status.is_ok();
                    if (read_ok)
                        xor_bytes(acc.data(), r.data.data(), acc.size());
                }
                if (!read_ok)
                    continue;
                uint32_t pdev = lay.parity_dev(z, s);
                IoRequest prd = IoRequest::read(pba, su);
                prd.cause = obs::Cause::kScrub;
                IoResult pr =
                    submit_sync(loop, *devs[pdev], std::move(prd));
                if (!pr.status.is_ok())
                    continue;
                if (std::memcmp(acc.data(), pr.data.data(), acc.size()) !=
                    0) {
                    add(out, crash_point, "parity",
                        strprintf("zone %u stripe %llu parity mismatch",
                                  z, (unsigned long long)s));
                }
            }
        }
    }

    // Degraded re-read: mark one device failed and require every
    // readable sector to reconstruct to the same shadow value.
    if (opts.degrade_dev >= 0 && !vol.degraded() && !vol.read_only() &&
        !devs[static_cast<uint32_t>(opts.degrade_dev)]->failed()) {
        vol.mark_device_failed(static_cast<uint32_t>(opts.degrade_dev));
        for (uint32_t z = 0; z < shadow.num_zones(); ++z) {
            const ShadowVolume::ZoneShadow &zs = shadow.zone(z);
            const std::vector<uint8_t> &image =
                zs.reset_pending && fills[z] > 0 ? zs.old_image
                                                 : zs.image;
            if (image.empty())
                continue;
            check_zone_content(loop, vol, z, vol.zone_info(z).value().start,
                               fills[z], image, "degraded-read",
                               crash_point, out);
        }
    }
}

void
check_engine_invariants(EventLoop &loop, ZonedEngine &eng,
                        const ShadowVolume &shadow,
                        const std::vector<uint64_t> &pre_crash_gens,
                        const EngineOracleOptions &opts,
                        uint64_t crash_point, std::vector<ChkFailure> *out)
{
    std::vector<uint64_t> fills(shadow.num_zones(), 0);
    check_core(loop, eng, shadow, pre_crash_gens,
               [&eng](uint32_t z) { return eng.zone_gen(z); },
               crash_point, out, &fills);

    // Mount contract: a zone recovered non-empty is frozen (read-only
    // until reset — members may disagree about the tail), an empty one
    // is writable.
    for (uint32_t z = 0; z < shadow.num_zones(); ++z) {
        if (eng.zone_frozen(z) != (fills[z] > 0)) {
            add(out, crash_point, "frozen",
                strprintf("zone %u recovered fill %llu but frozen=%d", z,
                          (unsigned long long)fills[z],
                          eng.zone_frozen(z) ? 1 : 0));
        }
    }

    // Settled-stripe consistency. Device rows are append-only and the
    // scrubber only consults rows below each member's recovered fill,
    // so everything it can see must agree: mirror copies identical,
    // on-media parity matching its data, every unit readable somewhere.
    if (opts.check_scrub && !eng.degraded()) {
        ZonedArray::ScrubReport rep;
        Status s = eng.scrub_all(&rep);
        if (!s.is_ok()) {
            add(out, crash_point, "scrub", s.to_string());
        } else if (rep.unrecoverable != 0 || rep.parity_mismatches != 0 ||
                   rep.crc_mismatches != 0) {
            add(out, crash_point, "scrub",
                strprintf("post-crash scrub found unrecoverable=%llu "
                          "parity_mismatches=%llu crc_mismatches=%llu",
                          (unsigned long long)rep.unrecoverable,
                          (unsigned long long)rep.parity_mismatches,
                          (unsigned long long)rep.crc_mismatches));
        }
    }

    // Degraded re-read of mirror-kind zones: every sector readable
    // without `degrade_dev` must reconstruct to the shadow value.
    // Parity-kind zones are skipped — their open-stripe parity died
    // with the crash (the write hole; RAIZN's partial-parity log is
    // the fix), so the engine only promises degraded reads of data
    // that survives on the remaining members' own rows.
    if (opts.degrade_dev >= 0 && !eng.degraded()) {
        const uint32_t down = static_cast<uint32_t>(opts.degrade_dev);
        bool marked = false;
        for (uint32_t z = 0; z < shadow.num_zones(); ++z) {
            ZonedEngine::ZoneKind k = eng.zone_kind(z);
            if (k != ZonedEngine::ZoneKind::kMirror &&
                k != ZonedEngine::ZoneKind::kMirrorPairs)
                continue;
            if (fills[z] == 0)
                continue;
            uint64_t df =
                std::min<uint64_t>(eng.degraded_fill(z, down), fills[z]);
            if (df == 0)
                continue;
            if (!marked) {
                eng.mark_device_failed(down);
                marked = true;
            }
            const ShadowVolume::ZoneShadow &zs = shadow.zone(z);
            const std::vector<uint8_t> &image =
                zs.reset_pending && fills[z] > 0 ? zs.old_image
                                                 : zs.image;
            if (image.empty())
                continue;
            check_zone_content(loop, eng, z,
                               eng.zone_info(z).value().start, df, image,
                               "degraded-read", crash_point, out);
        }
    }
}

} // namespace raizn::chk
