/**
 * @file
 * Post-crash invariant oracle. After the explorer injects a power cut
 * and remounts the array, the oracle compares the recovered volume
 * against the shadow model:
 *
 *  1. readability — every sector below the recovered write pointer
 *     reads back exactly the value the host submitted there;
 *  2. durability — the recovered write pointer is at or above the
 *     durable floor (flush / FUA / PREFLUSH acknowledgements);
 *  3. wp bounds — the recovered write pointer never exceeds what the
 *     host submitted (no invented data), with the documented two-world
 *     ambiguity while a zone reset is in flight;
 *  4. generation monotonicity — per-zone generation counters never go
 *     backwards across a crash;
 *  5. parity consistency — every full stripe below the write pointer
 *     whose units sit at their home placement XORs to its parity;
 *  6. degraded-read correctness — contents re-read with a device
 *     marked failed still match the shadow (reconstruction works).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "chk/shadow.h"

namespace raizn {
class EventLoop;
class RaiznVolume;
class ZnsDevice;
class ZonedEngine;
} // namespace raizn

namespace raizn::chk {

/// One invariant violation at one crash point.
struct ChkFailure {
    uint64_t crash_point = 0;
    std::string invariant;
    std::string detail;
};

struct OracleOptions {
    bool check_parity = true;
    /// Device to mark failed for the post-mount degraded re-read, or
    /// -1 to skip. Ignored when the array mounted degraded already
    /// (those reads reconstruct anyway).
    int degrade_dev = -1;
};

/**
 * Runs every applicable invariant check on a freshly mounted volume.
 * Appends one ChkFailure per violation. May mark a device failed
 * (degraded re-read); callers must not reuse the volume afterwards.
 */
void check_invariants(EventLoop &loop, RaiznVolume &vol,
                      const std::vector<ZnsDevice *> &devs,
                      const ShadowVolume &shadow,
                      const std::vector<uint64_t> &pre_crash_gens,
                      const OracleOptions &opts, uint64_t crash_point,
                      std::vector<ChkFailure> *out);

struct EngineOracleOptions {
    /// Run a scrub pass after the core checks and require settled
    /// stripes to be consistent (no unrecoverable units, no parity /
    /// mirror-copy / CRC mismatches). Media rows are append-only, so
    /// anything present below a recovered write pointer must agree.
    bool check_scrub = true;
    /// Device to mark failed for a post-mount degraded re-read, or -1
    /// to skip. Only mirror-kind zones are re-read, bounded by the
    /// engine's degraded_fill: parity-kind tails lose their in-memory
    /// parity at the cut (the classic write hole), so post-crash
    /// reconstruction there is exactly what the engine does NOT
    /// promise — and what the paper's partial-parity log adds.
    int degrade_dev = -1;
};

/**
 * Engine-mode counterpart of check_invariants: the core invariants
 * (readability, durability floor, wp bounds, generation monotonicity)
 * plus the engine-specific ones — every non-empty recovered zone is
 * frozen, settled stripes scrub clean, and mirror-kind zones serve
 * degraded re-reads. May mark a device failed; callers must not reuse
 * the engine afterwards.
 */
void check_engine_invariants(EventLoop &loop, ZonedEngine &eng,
                             const ShadowVolume &shadow,
                             const std::vector<uint64_t> &pre_crash_gens,
                             const EngineOracleOptions &opts,
                             uint64_t crash_point,
                             std::vector<ChkFailure> *out);

} // namespace raizn::chk
