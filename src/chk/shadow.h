/**
 * @file
 * Shadow model of the logical volume for crash-consistency checking.
 *
 * The driver mirrors every volume op into the shadow at two points:
 * submit (raising the upper bound on what a recovered write pointer may
 * show, and recording the payload image) and ack (raising the durable
 * floor the recovered write pointer must reach). After a crash and
 * remount, the oracle requires each zone's recovered fill to land in
 * [floor, wp] — with a second allowed world while a zone reset is in
 * flight — and its readable prefix to match the recorded image.
 *
 * Floor rules, derived from the volume's §5.3 semantics:
 *  - FUA write ack: the zone prefix up to the write's end is durable
 *    (device FUA plus dependency flushes of earlier stripe units).
 *  - flush ack: every zone's fill at flush submit is durable.
 *  - PREFLUSH write ack: every zone's fill at the write's submit is
 *    durable (the volume flushes all devices before the write).
 *  - zone finish ack: the whole zone is durable at capacity.
 *  - zone reset ack: the reset WAL was durable before any physical
 *    reset, so the pre-reset contents can never resurrect.
 */
#pragma once

#include <cstdint>
#include <vector>

namespace raizn::chk {

class ShadowVolume
{
  public:
    struct ZoneShadow {
        uint64_t wp = 0; ///< submitted fill (zone-relative sectors)
        uint64_t floor = 0; ///< durable lower bound on recovered fill
        bool finish_pending = false; ///< finish submitted, not acked
        std::vector<uint8_t> image; ///< submitted payload bytes

        // Pre-reset world, allowed until the reset acks: a crash while
        // the reset is in flight may recover either the old contents
        // (WAL not yet durable) or an empty zone.
        bool reset_pending = false;
        uint64_t old_wp = 0;
        uint64_t old_floor = 0;
        bool old_finish_pending = false;
        std::vector<uint8_t> old_image;
    };

    ShadowVolume(uint32_t num_zones, uint64_t zone_cap, bool store_data);

    uint32_t num_zones() const
    {
        return static_cast<uint32_t>(zones_.size());
    }
    uint64_t zone_cap() const { return zone_cap_; }
    const ZoneShadow &zone(uint32_t z) const { return zones_[z]; }

    /// Current submitted fills, for flush/preflush snapshots.
    std::vector<uint64_t> wps() const;

    // ---- submit-time hooks ----
    void on_write_submitted(uint32_t zone, uint64_t off,
                            const std::vector<uint8_t> &data,
                            uint32_t nsectors);
    void on_reset_submitted(uint32_t zone);
    void on_finish_submitted(uint32_t zone);

    // ---- ack-time hooks ----
    void on_write_acked(uint32_t zone, uint64_t end_off, bool fua);
    /// flush ack, or the implicit flush of a PREFLUSH write ack:
    /// `wps_at_submit` is the wps() snapshot taken at submit time.
    void on_flush_acked(const std::vector<uint64_t> &wps_at_submit);
    void on_reset_acked(uint32_t zone);
    void on_finish_acked(uint32_t zone);

  private:
    uint64_t zone_cap_;
    bool store_data_;
    std::vector<ZoneShadow> zones_;
};

} // namespace raizn::chk
