#include "chk/workload.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"

namespace raizn::chk {

std::string
to_string(const ChkOp &op)
{
    switch (op.kind) {
      case OpKind::kWrite:
        return strprintf("write z%u off=%llu n=%u%s%s", op.zone,
                         (unsigned long long)op.off, op.nsectors,
                         op.fua ? " fua" : "",
                         op.preflush ? " preflush" : "");
      case OpKind::kFlush:
        return "flush";
      case OpKind::kResetZone:
        return strprintf("reset z%u", op.zone);
      case OpKind::kFinishZone:
        return strprintf("finish z%u", op.zone);
      case OpKind::kFailDevice:
        return strprintf("fail dev%u", op.dev);
    }
    return "?";
}

namespace {

ChkOp
write_op(uint32_t zone, uint64_t off, uint32_t n, bool fua = false,
         bool preflush = false)
{
    ChkOp op;
    op.kind = OpKind::kWrite;
    op.zone = zone;
    op.off = off;
    op.nsectors = n;
    op.fua = fua;
    op.preflush = preflush;
    // Seed derived from placement so every write's payload is unique
    // and reproducible without workload-global state.
    op.seed = (static_cast<uint64_t>(zone) << 40) ^ (off << 8) ^ n;
    return op;
}

} // namespace

ChkWorkload
canonical_workload(const ChkGeom &g)
{
    const uint64_t ss = g.stripe_sectors;
    const uint32_t su = g.su_sectors;
    ChkWorkload wl;

    // Zone 0: three-plus stripes of mixed-size writes crossing every
    // stripe-unit and stripe boundary shape: sub-unit, unit-aligned,
    // unit-straddling, stripe-completing, and stripe-straddling.
    uint64_t off = 0;
    auto w0 = [&](uint32_t n, bool fua = false, bool preflush = false) {
        wl.push_back(write_op(0, off, n, fua, preflush));
        off += n;
    };
    w0(su);            // first unit
    w0(su / 2);        // half unit (partial parity path)
    w0(su / 2 + su);   // completes unit 2, fills unit 3 -> stripe 0 full
    wl.push_back({OpKind::kFlush});
    w0(su, /*fua=*/true); // stripe 1 opens with a FUA unit
    w0(2 * su);        // units straddle
    w0(su - 1);        // odd length, leaves 1-sector hole in the unit
    w0(1, /*fua=*/true); // completes stripe 1 with a durable point
    w0(static_cast<uint32_t>(ss), false, /*preflush=*/true); // stripe 2
    w0(su / 2);        // stripe 3 partially open at crash time

    // Zone 1: open a second zone so recovery handles several zones and
    // the flush snapshot spans zones.
    wl.push_back(write_op(1, 0, su + su / 2));
    wl.push_back({OpKind::kFlush});
    wl.push_back(write_op(1, su + su / 2, su / 2, /*fua=*/true));

    // Zone 1: reset (WAL + physical resets + gen bump) then rewrite,
    // exercising stale-metadata invalidation by generation (§4.3).
    {
        ChkOp op;
        op.kind = OpKind::kResetZone;
        op.zone = 1;
        wl.push_back(op);
    }
    wl.push_back(write_op(1, 0, su, /*fua=*/true));

    // Zone 2: small write then finish (wp jumps to capacity); the
    // finish must seal the open stripe's parity slot.
    wl.push_back(write_op(2, 0, su / 2));
    {
        ChkOp op;
        op.kind = OpKind::kFinishZone;
        op.zone = 2;
        wl.push_back(op);
    }

    // Zone 0 continued: push through stripes 3-5 with every boundary
    // shape again, now with recovery state (pp logs, gen bumps) from
    // the earlier ops in play.
    w0(su / 2);          // completes the stripe left open above
    w0(su, /*fua=*/true);
    w0(su / 2 + 3);      // odd straddle
    w0(su / 2 - 3);      // realigns to the unit boundary
    w0(su);
    wl.push_back({OpKind::kFlush});
    w0(static_cast<uint32_t>(ss)); // a whole stripe in one request
    w0(1);
    w0(su - 1, /*fua=*/true);
    wl.push_back({OpKind::kFlush});

    // Zone 3: an independent zone mixing preflush and FUA so the flush
    // snapshot spans three open zones.
    uint64_t off3 = 0;
    auto w3 = [&](uint32_t n, bool fua = false, bool preflush = false) {
        wl.push_back(write_op(3, off3, n, fua, preflush));
        off3 += n;
    };
    w3(su / 2);
    w3(su / 2, /*fua=*/true);
    wl.push_back({OpKind::kFlush});
    w3(static_cast<uint32_t>(ss), false, /*preflush=*/true);
    w3(2 * su + 3);
    wl.push_back({OpKind::kFlush});
    w3(su - 3);
    w3(su, /*fua=*/true); // FUA behind an odd-length volatile tail
    wl.push_back({OpKind::kFlush});
    w3(su / 2 + 1); // leave zone 3 mid-unit at crash time

    // Zone 1: a second reset cycle — reset of a short-lived rewrite —
    // so WAL replay sees two generations of the same zone.
    wl.push_back(write_op(1, su, su / 2));
    {
        ChkOp op;
        op.kind = OpKind::kResetZone;
        op.zone = 1;
        wl.push_back(op);
    }
    wl.push_back(write_op(1, 0, su, /*fua=*/true));
    wl.push_back({OpKind::kFlush});

    // Zone 4: finish with the tail stripe mid-unit, then crash points
    // fall inside the parity-seal + multi-device finish fan-out.
    wl.push_back(write_op(4, 0, su + su / 2, /*fua=*/true));
    {
        ChkOp op;
        op.kind = OpKind::kFinishZone;
        op.zone = 4;
        wl.push_back(op);
    }
    wl.push_back({OpKind::kFlush});
    return wl;
}

ChkWorkload
degraded_workload(const ChkGeom &g, uint32_t fail_dev)
{
    ChkWorkload wl;
    ChkOp fail;
    fail.kind = OpKind::kFailDevice;
    fail.dev = fail_dev;
    wl.push_back(fail);

    // Degraded partial-stripe writes with FUA acks: their durability
    // depends entirely on the partial-parity log when the failed
    // device holds a data unit of the open stripe.
    const uint32_t su = g.su_sectors;
    uint64_t off = 0;
    auto w0 = [&](uint32_t n, bool fua) {
        wl.push_back(write_op(0, off, n, fua));
        off += n;
    };
    w0(su, true);
    w0(su / 2, true);
    w0(su / 2 + su, false);
    wl.push_back({OpKind::kFlush});
    w0(su, true); // stripe 1 partially open, FUA-acked, degraded
    return wl;
}

ChkWorkload
random_workload(const ChkGeom &g, uint64_t seed, uint32_t nops,
                bool allow_fail_dev)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);
    ChkWorkload wl;
    std::vector<uint64_t> wp(g.num_zones, 0);
    std::vector<bool> full(g.num_zones, false);
    bool failed_one = !allow_fail_dev;

    while (wl.size() < nops) {
        double p = rng.next_double();
        if (p < 0.70) {
            // Sequential write to a random non-full zone.
            std::vector<uint32_t> cands;
            for (uint32_t z = 0; z < g.num_zones; ++z)
                if (!full[z] && wp[z] < g.zone_cap)
                    cands.push_back(z);
            if (cands.empty())
                continue;
            uint32_t z = cands[rng.next_below(cands.size())];
            uint64_t room = g.zone_cap - wp[z];
            uint32_t n = static_cast<uint32_t>(
                std::min<uint64_t>(room, rng.next_range(1, 2 * g.su_sectors)));
            ChkOp op = write_op(z, wp[z], n, rng.next_bool(0.25),
                                rng.next_bool(0.05));
            op.seed ^= seed;
            wl.push_back(op);
            wp[z] += n;
            if (wp[z] == g.zone_cap)
                full[z] = true;
        } else if (p < 0.80) {
            wl.push_back({OpKind::kFlush});
        } else if (p < 0.90) {
            // Reset a non-empty zone.
            std::vector<uint32_t> cands;
            for (uint32_t z = 0; z < g.num_zones; ++z)
                if (wp[z] > 0 || full[z])
                    cands.push_back(z);
            if (cands.empty())
                continue;
            uint32_t z = cands[rng.next_below(cands.size())];
            ChkOp op;
            op.kind = OpKind::kResetZone;
            op.zone = z;
            wl.push_back(op);
            wp[z] = 0;
            full[z] = false;
        } else if (p < 0.96) {
            // Finish a non-full zone.
            std::vector<uint32_t> cands;
            for (uint32_t z = 0; z < g.num_zones; ++z)
                if (!full[z])
                    cands.push_back(z);
            if (cands.empty())
                continue;
            uint32_t z = cands[rng.next_below(cands.size())];
            ChkOp op;
            op.kind = OpKind::kFinishZone;
            op.zone = z;
            wl.push_back(op);
            full[z] = true;
            wp[z] = g.zone_cap;
        } else if (!failed_one) {
            // At most one device failure per workload (single parity).
            ChkOp op;
            op.kind = OpKind::kFailDevice;
            op.dev = static_cast<uint32_t>(rng.next_below(g.num_devices));
            wl.push_back(op);
            failed_one = true;
        }
    }
    return wl;
}

} // namespace raizn::chk
