/**
 * @file
 * BlockEnv: simple extent-based file layer over a random-write block
 * volume (mdraid), standing in for a conventional filesystem. Extents
 * are allocated from a first-fit free list; tails can be rewritten in
 * place, so there is no pad waste and no cleaning.
 */
#pragma once

#include <map>

#include "env/env.h"
#include "mdraid/md_volume.h"

namespace raizn {

class BlockEnv : public Env
{
  public:
    BlockEnv(EventLoop *loop, MdVolume *vol);

    Result<std::unique_ptr<WritableFile>>
    new_writable(const std::string &name) override;
    Result<std::unique_ptr<ReadableFile>>
    open_readable(const std::string &name) override;
    Status delete_file(const std::string &name) override;
    bool file_exists(const std::string &name) const override;
    Result<uint64_t> file_size(const std::string &name) const override;
    std::vector<std::string> list_files() const override;
    uint64_t free_bytes() const override;
    const EnvStats &stats() const override { return stats_; }

    MdVolume *volume() const { return vol_; }

  private:
    friend class BlockWritableFile;
    friend class BlockReadableFile;

    struct Extent {
        uint64_t lba;
        uint64_t sectors;
    };
    struct FileMeta {
        std::vector<Extent> extents;
        uint64_t size_bytes = 0;
    };

    /// Allocates `sectors` (first fit, possibly split across extents).
    Result<std::vector<Extent>> allocate(uint64_t sectors);
    void release(const std::vector<Extent> &extents);
    /// Maps a file sector to its volume LBA and contiguous run length.
    void map_sector(const FileMeta &meta, uint64_t file_sector,
                    uint64_t *lba, uint64_t *run) const;
    Result<std::vector<uint8_t>> read_span(const FileMeta &meta,
                                           uint64_t offset,
                                           uint64_t length);
    Status sync_volume();

    EventLoop *loop_;
    MdVolume *vol_;
    std::map<std::string, FileMeta> files_;
    std::map<uint64_t, uint64_t> free_; ///< lba -> sectors, coalesced
    EnvStats stats_;
};

} // namespace raizn
