/**
 * @file
 * ZonedEnv: append-only file system over a RAIZN (or any zoned)
 * volume, in the spirit of ZenFS / zoned F2FS. Files are sequences of
 * extents inside zones; file data appends into the currently open
 * write zone; deleting files invalidates extents; zones whose live
 * data drops to zero reset for free, and a simple greedy cleaner
 * relocates the live remainder when space runs out.
 */
#pragma once

#include <map>
#include <unordered_map>

#include "env/env.h"
#include "raizn/volume.h"

namespace raizn {

class ZonedEnv : public Env
{
  public:
    ZonedEnv(EventLoop *loop, RaiznVolume *vol);

    Result<std::unique_ptr<WritableFile>>
    new_writable(const std::string &name) override;
    Result<std::unique_ptr<ReadableFile>>
    open_readable(const std::string &name) override;
    Status delete_file(const std::string &name) override;
    bool file_exists(const std::string &name) const override;
    Result<uint64_t> file_size(const std::string &name) const override;
    std::vector<std::string> list_files() const override;
    uint64_t free_bytes() const override;
    const EnvStats &stats() const override { return stats_; }

    RaiznVolume *volume() const { return vol_; }

  private:
    friend class ZonedWritableFile;
    friend class ZonedReadableFile;

    struct Extent {
        uint64_t lba; ///< volume LBA (sector)
        uint64_t sectors;
    };
    struct FileMeta {
        std::vector<Extent> extents;
        /// Valid byte count per extent (pad lives in the last sector
        /// of a spill's extent and is skipped on reads).
        std::vector<uint64_t> extent_valid;
        uint64_t size_bytes = 0;
        bool open_for_write = false;
    };
    struct ZoneMeta {
        uint64_t live_sectors = 0;
        bool open = false;
    };

    uint64_t extent_bytes(const FileMeta &meta, size_t idx) const;
    /// Appends sector-padded bytes for `file` (of which `valid_bytes`
    /// are real data), splitting across zones.
    Result<Extent> append_sectors(const std::string &file,
                                  const std::vector<uint8_t> &data,
                                  uint64_t valid_bytes);
    /// Appends raw sectors to the active zone (may short-write at the
    /// zone end); used by both the write path and the cleaner.
    Result<Extent> append_raw(const std::vector<uint8_t> &data);
    Status ensure_write_zone(uint64_t needed_sectors);
    Status clean_one_zone();
    void account_delete(const FileMeta &meta);
    Status sync_volume();

    EventLoop *loop_;
    RaiznVolume *vol_;
    std::map<std::string, FileMeta> files_;
    std::vector<ZoneMeta> zones_;
    int active_zone_ = -1;
    bool cleaning_ = false;
    EnvStats stats_;
};

} // namespace raizn
