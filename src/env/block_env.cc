#include "env/block_env.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/logging.h"
#include "sim/event_loop.h"

namespace raizn {

namespace {

IoResult
vol_sync(EventLoop *loop, const std::function<void(IoCallback)> &op)
{
    IoResult out;
    bool done = false;
    op([&](IoResult r) {
        out = std::move(r);
        done = true;
    });
    loop->run_until_pred([&] { return done; });
    return out;
}

} // namespace

class BlockWritableFile : public WritableFile
{
  public:
    BlockWritableFile(BlockEnv *env, std::string name)
        : env_(env), name_(std::move(name))
    {
    }

    ~BlockWritableFile() override { close(); }

    Status
    append(const std::vector<uint8_t> &data) override
    {
        if (closed_)
            return Status(StatusCode::kInvalidArgument, "closed");
        buffer_.insert(buffer_.end(), data.begin(), data.end());
        size_ += data.size();
        env_->stats_.bytes_appended += data.size();
        if (buffer_.size() >= 256 * kKiB)
            return spill();
        return Status::ok();
    }

    Status
    sync() override
    {
        Status st = spill();
        if (!st)
            return st;
        return env_->sync_volume();
    }

    Status
    close() override
    {
        if (closed_)
            return Status::ok();
        Status st = spill();
        closed_ = true;
        return st;
    }

    uint64_t size() const override { return size_; }

  private:
    Status
    spill()
    {
        if (buffer_.empty())
            return Status::ok();
        auto &meta = env_->files_[name_];
        // Rewrite the partial tail sector in place (block devices
        // allow overwrites), then append whole sectors.
        uint64_t tail_bytes = meta.size_bytes % kSectorSize;
        uint64_t write_off = meta.size_bytes - tail_bytes; // bytes
        std::vector<uint8_t> chunk;
        if (tail_bytes > 0) {
            auto old = env_->read_span(meta, write_off, tail_bytes);
            if (!old.is_ok())
                return old.status();
            chunk = std::move(old).value();
        }
        chunk.insert(chunk.end(), buffer_.begin(), buffer_.end());
        chunk.resize(round_up(chunk.size(), kSectorSize), 0);
        uint64_t need_sectors = chunk.size() / kSectorSize;
        uint64_t have_sectors = 0;
        for (const auto &e : meta.extents)
            have_sectors += e.sectors;
        uint64_t first_sector = write_off / kSectorSize;
        if (first_sector + need_sectors > have_sectors) {
            auto alloc = env_->allocate(first_sector + need_sectors -
                                        have_sectors);
            if (!alloc.is_ok())
                return alloc.status();
            for (const auto &e : alloc.value())
                meta.extents.push_back(e);
        }
        // Write chunk sectors through the extent map.
        uint64_t done = 0;
        while (done < need_sectors) {
            uint64_t lba, run;
            env_->map_sector(meta, first_sector + done, &lba, &run);
            run = std::min(run, need_sectors - done);
            std::vector<uint8_t> part(
                chunk.begin() + static_cast<ptrdiff_t>(done * kSectorSize),
                chunk.begin() +
                    static_cast<ptrdiff_t>((done + run) * kSectorSize));
            auto r = vol_sync(env_->loop_, [&](IoCallback cb) {
                env_->vol_->write(lba, std::move(part), std::move(cb));
            });
            if (!r.status.is_ok())
                return r.status;
            done += run;
        }
        meta.size_bytes += buffer_.size();
        buffer_.clear();
        return Status::ok();
    }

    BlockEnv *env_;
    std::string name_;
    std::vector<uint8_t> buffer_;
    uint64_t size_ = 0;
    bool closed_ = false;
};

class BlockReadableFile : public ReadableFile
{
  public:
    BlockReadableFile(BlockEnv *env, const BlockEnv::FileMeta *meta)
        : env_(env), meta_(meta)
    {
    }

    Result<std::vector<uint8_t>>
    read(uint64_t offset, uint64_t length) override
    {
        if (offset >= meta_->size_bytes)
            return Status(StatusCode::kInvalidArgument, "past EOF");
        length = std::min(length, meta_->size_bytes - offset);
        env_->stats_.bytes_read += length;
        return env_->read_span(*meta_, offset, length);
    }

    uint64_t size() const override { return meta_->size_bytes; }

  private:
    BlockEnv *env_;
    const BlockEnv::FileMeta *meta_;
};

BlockEnv::BlockEnv(EventLoop *loop, MdVolume *vol)
    : loop_(loop), vol_(vol)
{
    free_[0] = vol_->capacity();
}

void
BlockEnv::map_sector(const FileMeta &meta, uint64_t file_sector,
                     uint64_t *lba, uint64_t *run) const
{
    uint64_t off = 0;
    for (const Extent &e : meta.extents) {
        if (file_sector < off + e.sectors) {
            *lba = e.lba + (file_sector - off);
            *run = e.sectors - (file_sector - off);
            return;
        }
        off += e.sectors;
    }
    RAIZN_PANIC("file sector beyond extents");
}

Result<std::vector<uint8_t>>
BlockEnv::read_span(const FileMeta &meta, uint64_t offset,
                    uint64_t length)
{
    std::vector<uint8_t> out(length);
    uint64_t got = 0;
    while (got < length) {
        uint64_t byte_off = offset + got;
        uint64_t sector = byte_off / kSectorSize;
        uint64_t in_sector = byte_off % kSectorSize;
        uint64_t lba, run;
        map_sector(meta, sector, &lba, &run);
        uint64_t span_bytes =
            std::min(length - got, run * kSectorSize - in_sector);
        uint32_t nsectors = static_cast<uint32_t>(
            div_ceil(in_sector + span_bytes, kSectorSize));
        auto r = vol_sync(loop_, [&](IoCallback cb) {
            vol_->read(lba, nsectors, std::move(cb));
        });
        if (!r.status.is_ok())
            return r.status;
        if (!r.data.empty()) {
            std::memcpy(out.data() + got, r.data.data() + in_sector,
                        span_bytes);
        }
        got += span_bytes;
    }
    return out;
}

Result<std::vector<BlockEnv::Extent>>
BlockEnv::allocate(uint64_t sectors)
{
    // Allocate in 256-sector (1 MiB) granules to limit fragmentation.
    sectors = round_up(sectors, 256);
    std::vector<Extent> out;
    while (sectors > 0) {
        // First fit.
        auto best = free_.end();
        for (auto it = free_.begin(); it != free_.end(); ++it) {
            if (it->second > 0) {
                best = it;
                break;
            }
        }
        if (best == free_.end()) {
            release(out);
            return Status(StatusCode::kNoSpace, "env full");
        }
        uint64_t take = std::min(sectors, best->second);
        out.push_back(Extent{best->first, take});
        uint64_t new_lba = best->first + take;
        uint64_t new_len = best->second - take;
        free_.erase(best);
        if (new_len > 0)
            free_[new_lba] = new_len;
        sectors -= take;
    }
    return out;
}

void
BlockEnv::release(const std::vector<Extent> &extents)
{
    for (const Extent &e : extents) {
        free_[e.lba] = e.sectors;
        // Coalesce with neighbours.
        auto it = free_.find(e.lba);
        if (it != free_.begin()) {
            auto prev = std::prev(it);
            if (prev->first + prev->second == it->first) {
                prev->second += it->second;
                free_.erase(it);
                it = prev;
            }
        }
        auto next = std::next(it);
        if (next != free_.end() &&
            it->first + it->second == next->first) {
            it->second += next->second;
            free_.erase(next);
        }
    }
}

Status
BlockEnv::sync_volume()
{
    auto r = vol_sync(loop_, [&](IoCallback cb) {
        vol_->flush(std::move(cb));
    });
    return r.status;
}

Result<std::unique_ptr<WritableFile>>
BlockEnv::new_writable(const std::string &name)
{
    if (files_.count(name))
        delete_file(name);
    files_[name] = FileMeta{};
    stats_.files_created++;
    return std::unique_ptr<WritableFile>(
        new BlockWritableFile(this, name));
}

Result<std::unique_ptr<ReadableFile>>
BlockEnv::open_readable(const std::string &name)
{
    auto it = files_.find(name);
    if (it == files_.end())
        return Status(StatusCode::kNotFound, name);
    return std::unique_ptr<ReadableFile>(
        new BlockReadableFile(this, &it->second));
}

Status
BlockEnv::delete_file(const std::string &name)
{
    auto it = files_.find(name);
    if (it == files_.end())
        return Status(StatusCode::kNotFound, name);
    release(it->second.extents);
    files_.erase(it);
    stats_.files_deleted++;
    return Status::ok();
}

bool
BlockEnv::file_exists(const std::string &name) const
{
    return files_.count(name) > 0;
}

Result<uint64_t>
BlockEnv::file_size(const std::string &name) const
{
    auto it = files_.find(name);
    if (it == files_.end())
        return Status(StatusCode::kNotFound, name);
    return it->second.size_bytes;
}

std::vector<std::string>
BlockEnv::list_files() const
{
    std::vector<std::string> out;
    for (const auto &[name, meta] : files_)
        out.push_back(name);
    return out;
}

uint64_t
BlockEnv::free_bytes() const
{
    uint64_t sectors = 0;
    for (const auto &[lba, len] : free_)
        sectors += len;
    return sectors * kSectorSize;
}

} // namespace raizn
