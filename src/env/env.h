/**
 * @file
 * Storage environment abstraction between the KV store and the
 * volumes, standing in for the paper's F2FS layer. Two
 * implementations: ZonedEnv (append-only files over a RAIZN volume,
 * ZenFS/F2FS-style) and BlockEnv (extent allocator over mdraid).
 *
 * The interface is synchronous: each call drives the shared event
 * loop until its device IO completes, advancing virtual time. This
 * models a single-application host; concurrency inside the LSM is
 * approximated by interleaving operations (documented in DESIGN.md).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace raizn {

class EventLoop;

/// Append-only file handle.
class WritableFile
{
  public:
    virtual ~WritableFile() = default;
    virtual Status append(const std::vector<uint8_t> &data) = 0;
    /// Durably persists all appended data.
    virtual Status sync() = 0;
    virtual Status close() = 0;
    virtual uint64_t size() const = 0;
};

/// Random-access read handle.
class ReadableFile
{
  public:
    virtual ~ReadableFile() = default;
    virtual Result<std::vector<uint8_t>> read(uint64_t offset,
                                              uint64_t length) = 0;
    virtual uint64_t size() const = 0;
};

/// Environment statistics (for benches and GC accounting).
struct EnvStats {
    uint64_t files_created = 0;
    uint64_t files_deleted = 0;
    uint64_t bytes_appended = 0;
    uint64_t bytes_read = 0;
    uint64_t gc_relocated_bytes = 0; ///< zoned env cleaning traffic
    uint64_t zones_reclaimed = 0;

    /// Name/value enumeration — single source of truth for metrics-
    /// registry linkage (obs::link_stats) and rendering.
    template <typename Fn>
    void
    for_each_field(Fn fn) const
    {
        fn("files_created", files_created);
        fn("files_deleted", files_deleted);
        fn("bytes_appended", bytes_appended);
        fn("bytes_read", bytes_read);
        fn("gc_relocated_bytes", gc_relocated_bytes);
        fn("zones_reclaimed", zones_reclaimed);
    }
};

class Env
{
  public:
    virtual ~Env() = default;

    virtual Result<std::unique_ptr<WritableFile>>
    new_writable(const std::string &name) = 0;
    virtual Result<std::unique_ptr<ReadableFile>>
    open_readable(const std::string &name) = 0;
    virtual Status delete_file(const std::string &name) = 0;
    virtual bool file_exists(const std::string &name) const = 0;
    virtual Result<uint64_t> file_size(const std::string &name) const = 0;
    virtual std::vector<std::string> list_files() const = 0;
    /// Free capacity in bytes (after GC could run).
    virtual uint64_t free_bytes() const = 0;

    virtual const EnvStats &stats() const = 0;
};

} // namespace raizn
