#include "env/zoned_env.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "common/logging.h"
#include "sim/event_loop.h"

namespace raizn {

namespace {

/// Synchronously runs a volume op.
IoResult
vol_sync(EventLoop *loop, const std::function<void(IoCallback)> &op)
{
    IoResult out;
    bool done = false;
    op([&](IoResult r) {
        out = std::move(r);
        done = true;
    });
    loop->run_until_pred([&] { return done; });
    return out;
}

} // namespace

class ZonedWritableFile : public WritableFile
{
  public:
    ZonedWritableFile(ZonedEnv *env, std::string name)
        : env_(env), name_(std::move(name))
    {
    }

    ~ZonedWritableFile() override { close(); }

    Status
    append(const std::vector<uint8_t> &data) override
    {
        if (closed_)
            return Status(StatusCode::kInvalidArgument, "closed");
        buffer_.insert(buffer_.end(), data.begin(), data.end());
        size_ += data.size();
        env_->stats_.bytes_appended += data.size();
        // Spill full sectors opportunistically in large chunks.
        if (buffer_.size() >= 256 * kKiB)
            return spill(false);
        return Status::ok();
    }

    Status
    sync() override
    {
        Status st = spill(true);
        if (!st)
            return st;
        return env_->sync_volume();
    }

    Status
    close() override
    {
        if (closed_)
            return Status::ok();
        Status st = spill(true);
        closed_ = true;
        auto it = env_->files_.find(name_);
        if (it != env_->files_.end())
            it->second.open_for_write = false;
        return st;
    }

    uint64_t size() const override { return size_; }

  private:
    /// Writes buffered bytes out. `pad` forces the partial tail sector
    /// (ZNS cannot rewrite it later, so the pad is wasted space —
    /// exactly the cost a zoned WAL pays).
    Status
    spill(bool pad)
    {
        size_t whole = buffer_.size() / kSectorSize * kSectorSize;
        size_t take = pad ? buffer_.size() : whole;
        if (take == 0)
            return Status::ok();
        std::vector<uint8_t> chunk(round_up(take, kSectorSize), 0);
        std::memcpy(chunk.data(), buffer_.data(), take);
        auto res = env_->append_sectors(name_, chunk, take);
        if (!res.is_ok())
            return res.status();
        auto &meta = env_->files_[name_];
        meta.size_bytes += take;
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<ptrdiff_t>(take));
        return Status::ok();
    }

    ZonedEnv *env_;
    std::string name_;
    std::vector<uint8_t> buffer_;
    uint64_t size_ = 0;
    bool closed_ = false;
};

class ZonedReadableFile : public ReadableFile
{
  public:
    ZonedReadableFile(ZonedEnv *env, const ZonedEnv::FileMeta *meta)
        : env_(env), meta_(meta)
    {
    }

    Result<std::vector<uint8_t>>
    read(uint64_t offset, uint64_t length) override
    {
        if (offset + length > meta_->size_bytes) {
            if (offset >= meta_->size_bytes)
                return Status(StatusCode::kInvalidArgument, "past EOF");
            length = meta_->size_bytes - offset;
        }
        env_->stats_.bytes_read += length;
        std::vector<uint8_t> out(length);
        uint64_t got = 0;
        // Walk extents; each extent holds sectors*kSectorSize bytes of
        // the file's byte stream except trailing pad in its last
        // sector, which only exists at spill boundaries. We track the
        // byte length per extent in `extent_bytes` of the meta.
        uint64_t file_off = 0;
        for (size_t i = 0; i < meta_->extents.size() && got < length;
             ++i) {
            const auto &ext = meta_->extents[i];
            uint64_t ext_bytes = env_->extent_bytes(*meta_, i);
            if (offset + got >= file_off + ext_bytes) {
                file_off += ext_bytes;
                continue;
            }
            uint64_t in_ext = offset + got - file_off;
            uint64_t take =
                std::min(length - got, ext_bytes - in_ext);
            // Sector-aligned volume read covering [in_ext, in_ext+take).
            uint64_t first_sector = in_ext / kSectorSize;
            uint64_t last_sector =
                (in_ext + take + kSectorSize - 1) / kSectorSize;
            auto r = vol_sync(env_->loop_, [&](IoCallback cb) {
                env_->vol_->read(
                    ext.lba + first_sector,
                    static_cast<uint32_t>(last_sector - first_sector),
                    std::move(cb));
            });
            if (!r.status.is_ok())
                return r.status;
            if (!r.data.empty()) {
                std::memcpy(out.data() + got,
                            r.data.data() +
                                (in_ext - first_sector * kSectorSize),
                            take);
            }
            got += take;
            file_off += ext_bytes;
        }
        return out;
    }

    uint64_t size() const override { return meta_->size_bytes; }

  private:
    ZonedEnv *env_;
    const ZonedEnv::FileMeta *meta_;
};

ZonedEnv::ZonedEnv(EventLoop *loop, RaiznVolume *vol)
    : loop_(loop), vol_(vol)
{
    zones_.resize(vol_->num_zones());
}

uint64_t
ZonedEnv::extent_bytes(const FileMeta &meta, size_t idx) const
{
    // All extents carry sectors*kSectorSize bytes except where a spill
    // padded: we record the exact byte count in extent_valid_bytes.
    return meta.extent_valid[idx];
}

Status
ZonedEnv::sync_volume()
{
    auto r = vol_sync(loop_, [&](IoCallback cb) {
        vol_->flush(std::move(cb));
    });
    return r.status;
}

Status
ZonedEnv::ensure_write_zone(uint64_t needed_sectors)
{
    (void)needed_sectors;
    if (active_zone_ >= 0) {
        auto zi = vol_->zone_info(static_cast<uint32_t>(active_zone_));
        if (zi.is_ok() && zi.value().wp < zi.value().start +
            zi.value().capacity) {
            return Status::ok();
        }
        zones_[static_cast<size_t>(active_zone_)].open = false;
        active_zone_ = -1;
    }
    // Find an empty zone; keep one in reserve for the cleaner.
    int empty = -1, empties = 0;
    for (uint32_t z = 0; z < vol_->num_zones(); ++z) {
        auto zi = vol_->zone_info(z);
        if (zi.is_ok() && zi.value().empty()) {
            empties++;
            if (empty < 0)
                empty = static_cast<int>(z);
        }
    }
    if (empties <= 1 && !cleaning_) {
        Status st = clean_one_zone();
        if (!st)
            return st;
        for (uint32_t z = 0; z < vol_->num_zones(); ++z) {
            auto zi = vol_->zone_info(z);
            if (zi.is_ok() && zi.value().empty()) {
                empty = static_cast<int>(z);
                break;
            }
        }
    }
    if (empty < 0)
        return Status(StatusCode::kNoSpace, "no empty zone");
    active_zone_ = empty;
    zones_[static_cast<size_t>(empty)].open = true;
    return Status::ok();
}

Status
ZonedEnv::clean_one_zone()
{
    // Greedy victim: non-active zone with the least live data (but
    // some written data).
    int victim = -1;
    uint64_t best_live = UINT64_MAX;
    for (uint32_t z = 0; z < vol_->num_zones(); ++z) {
        if (static_cast<int>(z) == active_zone_)
            continue;
        auto zi = vol_->zone_info(z);
        if (!zi.is_ok() || zi.value().empty())
            continue;
        if (zones_[z].live_sectors < best_live) {
            best_live = zones_[z].live_sectors;
            victim = static_cast<int>(z);
        }
    }
    if (victim < 0)
        return Status(StatusCode::kNoSpace, "nothing to clean");
    uint32_t vz = static_cast<uint32_t>(victim);
    uint64_t zstart = vol_->layout().zone_start_lba(vz);
    uint64_t zend = zstart + vol_->zone_capacity();

    // Relocate live extents of every file that intersects the victim.
    cleaning_ = true;
    for (auto &[name, meta] : files_) {
        for (size_t i = 0; i < meta.extents.size(); ++i) {
            Extent ext = meta.extents[i];
            uint64_t valid = meta.extent_valid[i];
            if (ext.lba < zstart || ext.lba >= zend)
                continue;
            // Read the live bytes and append them elsewhere; the move
            // may split across zones.
            auto r = vol_sync(loop_, [&](IoCallback cb) {
                vol_->read(ext.lba, static_cast<uint32_t>(ext.sectors),
                           std::move(cb));
            });
            if (!r.status.is_ok()) {
                cleaning_ = false;
                return r.status;
            }
            std::vector<uint8_t> data = std::move(r.data);
            if (data.empty())
                data.assign(ext.sectors * kSectorSize, 0);
            stats_.gc_relocated_bytes += data.size();

            std::vector<Extent> repl;
            std::vector<uint64_t> repl_valid;
            uint64_t done = 0, bytes_left = valid;
            while (done < ext.sectors) {
                std::vector<uint8_t> part(
                    data.begin() +
                        static_cast<ptrdiff_t>(done * kSectorSize),
                    data.end());
                auto moved = append_raw(part);
                if (!moved.is_ok()) {
                    cleaning_ = false;
                    return moved.status();
                }
                uint64_t part_bytes = std::min(
                    bytes_left, moved.value().sectors * kSectorSize);
                repl.push_back(moved.value());
                repl_valid.push_back(part_bytes);
                done += moved.value().sectors;
                bytes_left -= part_bytes;
            }
            zones_[vz].live_sectors -= ext.sectors;
            meta.extents.erase(meta.extents.begin() +
                               static_cast<ptrdiff_t>(i));
            meta.extent_valid.erase(meta.extent_valid.begin() +
                                    static_cast<ptrdiff_t>(i));
            meta.extents.insert(meta.extents.begin() +
                                    static_cast<ptrdiff_t>(i),
                                repl.begin(), repl.end());
            meta.extent_valid.insert(meta.extent_valid.begin() +
                                         static_cast<ptrdiff_t>(i),
                                     repl_valid.begin(),
                                     repl_valid.end());
            i += repl.size() - 1;
        }
    }
    cleaning_ = false;
    assert(zones_[vz].live_sectors == 0);
    auto r = vol_sync(loop_, [&](IoCallback cb) {
        vol_->reset_zone(vz, std::move(cb));
    });
    if (!r.status.is_ok())
        return r.status;
    stats_.zones_reclaimed++;
    return Status::ok();
}

Result<ZonedEnv::Extent>
ZonedEnv::append_raw(const std::vector<uint8_t> &data)
{
    uint64_t sectors = data.size() / kSectorSize;
    Status st = ensure_write_zone(sectors);
    if (!st)
        return st;
    uint32_t z = static_cast<uint32_t>(active_zone_);
    auto zi = vol_->zone_info(z);
    uint64_t room =
        zi.value().start + zi.value().capacity - zi.value().wp;
    if (sectors > room) {
        // Caller splits; report how much fits via a short write.
        sectors = room;
    }
    uint64_t lba = zi.value().wp;
    std::vector<uint8_t> chunk(
        data.begin(),
        data.begin() + static_cast<ptrdiff_t>(sectors * kSectorSize));
    // Relocation writes issued by the cleaner are environment GC, not
    // new user data: the provenance ledger must keep them out of the
    // write-amplification denominator.
    WriteFlags wf;
    wf.origin =
        cleaning_ ? obs::Cause::kGc : obs::Cause::kUserData;
    auto r = vol_sync(loop_, [&](IoCallback cb) {
        vol_->write(lba, std::move(chunk), wf, std::move(cb));
    });
    if (!r.status.is_ok())
        return r.status;
    zones_[z].live_sectors += sectors;
    return Extent{lba, sectors};
}

Result<ZonedEnv::Extent>
ZonedEnv::append_sectors(const std::string &file,
                         const std::vector<uint8_t> &data,
                         uint64_t valid_bytes)
{
    FileMeta &meta = files_[file];
    uint64_t total = data.size() / kSectorSize;
    uint64_t done = 0;
    uint64_t bytes_left = valid_bytes;
    Extent first{0, 0};
    while (done < total) {
        std::vector<uint8_t> part(
            data.begin() + static_cast<ptrdiff_t>(done * kSectorSize),
            data.end());
        auto res = append_raw(part);
        if (!res.is_ok())
            return res.status();
        Extent ext = res.value();
        if (done == 0)
            first = ext;
        uint64_t ext_bytes =
            std::min(bytes_left, ext.sectors * kSectorSize);
        // Merge with the previous extent when physically contiguous
        // and the previous extent had no pad.
        if (!meta.extents.empty()) {
            Extent &prev = meta.extents.back();
            uint64_t prev_bytes = meta.extent_valid.back();
            bool same_zone = vol_->layout().zone_of(prev.lba) ==
                vol_->layout().zone_of(ext.lba + ext.sectors - 1);
            if (same_zone && prev.lba + prev.sectors == ext.lba &&
                prev_bytes == prev.sectors * kSectorSize) {
                prev.sectors += ext.sectors;
                meta.extent_valid.back() += ext_bytes;
                done += ext.sectors;
                bytes_left -= ext_bytes;
                continue;
            }
        }
        meta.extents.push_back(ext);
        meta.extent_valid.push_back(ext_bytes);
        done += ext.sectors;
        bytes_left -= ext_bytes;
    }
    return first;
}

Result<std::unique_ptr<WritableFile>>
ZonedEnv::new_writable(const std::string &name)
{
    if (files_.count(name))
        delete_file(name);
    FileMeta meta;
    meta.open_for_write = true;
    files_[name] = std::move(meta);
    stats_.files_created++;
    return std::unique_ptr<WritableFile>(
        new ZonedWritableFile(this, name));
}

Result<std::unique_ptr<ReadableFile>>
ZonedEnv::open_readable(const std::string &name)
{
    auto it = files_.find(name);
    if (it == files_.end())
        return Status(StatusCode::kNotFound, name);
    return std::unique_ptr<ReadableFile>(
        new ZonedReadableFile(this, &it->second));
}

void
ZonedEnv::account_delete(const FileMeta &meta)
{
    for (const Extent &ext : meta.extents) {
        uint32_t z = vol_->layout().zone_of(ext.lba);
        assert(zones_[z].live_sectors >= ext.sectors);
        zones_[z].live_sectors -= ext.sectors;
        // Fully dead, fully written zones reset for free.
        if (zones_[z].live_sectors == 0 &&
            static_cast<int>(z) != active_zone_) {
            auto zi = vol_->zone_info(z);
            if (zi.is_ok() && zi.value().full()) {
                vol_sync(loop_, [&](IoCallback cb) {
                    vol_->reset_zone(z, std::move(cb));
                });
                stats_.zones_reclaimed++;
            }
        }
    }
}

Status
ZonedEnv::delete_file(const std::string &name)
{
    auto it = files_.find(name);
    if (it == files_.end())
        return Status(StatusCode::kNotFound, name);
    account_delete(it->second);
    files_.erase(it);
    stats_.files_deleted++;
    return Status::ok();
}

bool
ZonedEnv::file_exists(const std::string &name) const
{
    return files_.count(name) > 0;
}

Result<uint64_t>
ZonedEnv::file_size(const std::string &name) const
{
    auto it = files_.find(name);
    if (it == files_.end())
        return Status(StatusCode::kNotFound, name);
    return it->second.size_bytes;
}

std::vector<std::string>
ZonedEnv::list_files() const
{
    std::vector<std::string> out;
    for (const auto &[name, meta] : files_)
        out.push_back(name);
    return out;
}

uint64_t
ZonedEnv::free_bytes() const
{
    uint64_t live = 0;
    for (const ZoneMeta &z : zones_)
        live += z.live_sectors;
    return (vol_->capacity() - live) * kSectorSize;
}

} // namespace raizn
