/**
 * @file
 * Time-series sampler: buckets completed IO into fixed virtual-time
 * intervals, producing the throughput/latency-over-time series of
 * Fig. 10.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "common/units.h"

namespace raizn {

class Sampler
{
  public:
    explicit Sampler(Tick interval = kNsPerSec) : interval_(interval) {}

    /// Records one completed IO at virtual time `now`.
    void record(Tick now, uint64_t bytes, Tick latency);

    struct Sample {
        Tick t; ///< interval start
        uint64_t ios = 0;
        uint64_t bytes = 0;
        Histogram latency;

        double
        throughput_mibs(Tick interval) const
        {
            return mib_per_sec(bytes, interval);
        }
    };

    const std::vector<Sample> &samples() const { return samples_; }
    Tick interval() const { return interval_; }

  private:
    Tick interval_;
    std::vector<Sample> samples_;
};

} // namespace raizn
