#include "wkld/job.h"

#include <vector>

namespace raizn {

JobResult
merge_results(const std::vector<JobResult> &results)
{
    JobResult out;
    for (const JobResult &r : results) {
        out.ios += r.ios;
        out.bytes += r.bytes;
        out.errors += r.errors;
        out.elapsed = std::max(out.elapsed, r.elapsed);
        out.latency.merge(r.latency);
    }
    return out;
}

} // namespace raizn
