#include "wkld/setup.h"

#include "common/logging.h"
#include "wkld/runner.h"
#include "wkld/target.h"

namespace raizn {

RaiznArray
make_raizn_array(const BenchScale &scale)
{
    RaiznArray arr;
    arr.loop = std::make_unique<EventLoop>();
    std::vector<BlockDevice *> ptrs;
    for (uint32_t i = 0; i < scale.num_devices; ++i) {
        ZnsDeviceConfig cfg;
        cfg.nzones = scale.zones_per_device;
        cfg.zone_size = scale.zone_cap_sectors;
        cfg.zone_capacity = scale.zone_cap_sectors;
        cfg.data_mode = scale.data_mode;
        cfg.timing = TimingParams::zns();
        cfg.name = "zns" + std::to_string(i);
        arr.devs.push_back(
            std::make_unique<ZnsDevice>(arr.loop.get(), cfg));
        ptrs.push_back(arr.devs.back().get());
    }
    RaiznConfig rcfg;
    rcfg.num_devices = scale.num_devices;
    rcfg.su_sectors = scale.su_sectors;
    auto res = RaiznVolume::create(arr.loop.get(), ptrs, rcfg);
    if (!res.is_ok())
        RAIZN_PANIC("RAIZN create failed: %s",
                    res.status().to_string().c_str());
    arr.vol = std::move(res).value();
    return arr;
}

MdArray
make_mdraid_array(const BenchScale &scale)
{
    MdArray arr;
    arr.loop = std::make_unique<EventLoop>();
    std::vector<BlockDevice *> ptrs;
    for (uint32_t i = 0; i < scale.num_devices; ++i) {
        ConvDeviceConfig cfg;
        cfg.nsectors = scale.device_sectors();
        cfg.data_mode = scale.data_mode;
        cfg.timing = TimingParams::conventional();
        cfg.op_ratio = 0.07;
        cfg.pages_per_block = 512; // 2 MiB erase blocks
        cfg.name = "conv" + std::to_string(i);
        arr.devs.push_back(
            std::make_unique<ConvDevice>(arr.loop.get(), cfg));
        ptrs.push_back(arr.devs.back().get());
    }
    MdVolumeConfig mcfg;
    mcfg.chunk_sectors = scale.su_sectors;
    arr.vol = std::make_unique<MdVolume>(arr.loop.get(), ptrs, mcfg);
    return arr;
}

Tick
prime_target(EventLoop *loop, IoTarget *target, uint64_t sectors)
{
    Tick start = loop->now();
    WorkloadRunner runner(loop, target);
    JobSpec s;
    s.mode = RwMode::kSeqWrite;
    s.block_sectors = 256; // 1 MiB
    s.queue_depth = 32;
    s.region_start = 0;
    s.region_len = sectors / s.block_sectors * s.block_sectors;
    runner.run({s});
    return loop->now() - start;
}

} // namespace raizn
