#include "wkld/sampler.h"

namespace raizn {

void
Sampler::record(Tick now, uint64_t bytes, Tick latency)
{
    size_t idx = static_cast<size_t>(now / interval_);
    while (samples_.size() <= idx) {
        Sample s;
        s.t = static_cast<Tick>(samples_.size()) * interval_;
        samples_.push_back(std::move(s));
    }
    Sample &s = samples_[idx];
    s.ios++;
    s.bytes += bytes;
    s.latency.add(latency);
}

} // namespace raizn
