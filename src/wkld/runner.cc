#include "wkld/runner.h"

#include <cassert>
#include <memory>

#include "common/rng.h"
#include "obs/prof/prof.h"
#include "sim/event_loop.h"

namespace raizn {

namespace {

/// Per-job driver: keeps queue_depth IOs outstanding until the stop
/// condition fires.
struct JobState {
    JobSpec spec;
    Rng rng;
    uint64_t next_off; ///< sequential position (sectors)
    uint64_t issued = 0;
    uint32_t outstanding = 0;
    bool stopped = false;
    bool finished = false;
    JobResult result;
    Tick start = 0;

    explicit JobState(const JobSpec &s)
        : spec(s), rng(s.seed), next_off(s.region_start)
    {
    }
};

} // namespace

WorkloadRunner::WorkloadRunner(EventLoop *loop, IoTarget *target)
    : loop_(loop), target_(target)
{
}

std::vector<JobResult>
WorkloadRunner::run(const std::vector<JobSpec> &jobs, Sampler *sampler)
{
    PROF_SCOPE("wkld.run");
    auto states = std::make_shared<std::vector<JobState>>();
    states->reserve(jobs.size());
    for (const JobSpec &s : jobs) {
        JobSpec spec = s;
        if (spec.region_len == 0)
            spec.region_len = target_->capacity() - spec.region_start;
        states->emplace_back(spec);
    }
    auto active = std::make_shared<size_t>(states->size());

    // One issuing function per job, kept alive by shared_ptr.
    auto issue = std::make_shared<std::function<void(JobState &)>>();
    *issue = [this, sampler, issue, active](JobState &job) {
        const JobSpec &s = job.spec;
        while (!job.stopped && job.outstanding < s.queue_depth) {
            // Stop conditions.
            if (s.io_limit && job.issued >= s.io_limit) {
                job.stopped = true;
                break;
            }
            if (s.time_limit && loop_->now() - job.start >= s.time_limit) {
                job.stopped = true;
                break;
            }
            uint64_t lba;
            switch (s.mode) {
              case RwMode::kSeqWrite:
              case RwMode::kSeqRead:
                if (job.next_off + s.block_sectors >
                    s.region_start + s.region_len) {
                    job.stopped = true;
                    break;
                }
                lba = job.next_off;
                job.next_off += s.block_sectors;
                break;
              case RwMode::kRandRead:
              case RwMode::kRandWrite: {
                uint64_t slots = s.region_len / s.block_sectors;
                if (slots == 0) {
                    job.stopped = true;
                    break;
                }
                if (s.align_random) {
                    lba = s.region_start +
                        job.rng.next_below(slots) * s.block_sectors;
                } else {
                    lba = s.region_start +
                        job.rng.next_below(s.region_len -
                                           s.block_sectors + 1);
                }
                break;
              }
            }
            if (job.stopped)
                break;

            job.issued++;
            job.outstanding++;
            Tick submit = loop_->now();
            auto cb = [this, sampler, issue, active, &job,
                       submit](IoResult r) {
                Tick lat = loop_->now() - submit;
                job.outstanding--;
                if (r.status.is_ok()) {
                    job.result.ios++;
                    job.result.bytes +=
                        static_cast<uint64_t>(job.spec.block_sectors) *
                        kSectorSize;
                    job.result.latency.add(lat);
                    if (sampler) {
                        sampler->record(
                            loop_->now(),
                            static_cast<uint64_t>(
                                job.spec.block_sectors) *
                                kSectorSize,
                            lat);
                    }
                } else {
                    job.result.errors++;
                }
                (*issue)(job);
                if (job.stopped && job.outstanding == 0 &&
                    !job.finished) {
                    job.finished = true;
                    job.result.elapsed = loop_->now() - job.start;
                    (*active)--;
                }
            };
            bool is_write = s.mode == RwMode::kSeqWrite ||
                s.mode == RwMode::kRandWrite;
            if (is_write)
                target_->write(lba, s.block_sectors, cb);
            else
                target_->read(lba, s.block_sectors, cb);
        }
        if (job.stopped && job.outstanding == 0 && !job.finished) {
            job.finished = true;
            job.result.elapsed = loop_->now() - job.start;
            (*active)--;
        }
    };

    for (JobState &job : *states) {
        job.start = loop_->now();
        (*issue)(job);
    }
    loop_->run_until_pred([&] { return *active == 0; });
    // Break the issue-function's self-reference cycle (it captures its
    // own shared_ptr so completions can re-enter it).
    *issue = [](JobState &) {};

    std::vector<JobResult> out;
    out.reserve(states->size());
    for (JobState &job : *states)
        out.push_back(std::move(job.result));
    return out;
}

JobResult
WorkloadRunner::run_merged(const std::vector<JobSpec> &jobs,
                           Sampler *sampler)
{
    return merge_results(run(jobs, sampler));
}

std::vector<JobSpec>
seq_jobs(RwMode mode, uint32_t block_sectors, uint32_t njobs, uint32_t qd,
         uint64_t capacity, uint64_t region_align)
{
    std::vector<JobSpec> out;
    if (region_align == 0)
        region_align = block_sectors;
    uint64_t per_job = capacity / njobs;
    // Align regions (zone capacity for zoned write targets).
    per_job = per_job / region_align * region_align;
    per_job = per_job / block_sectors * block_sectors;
    for (uint32_t j = 0; j < njobs; ++j) {
        JobSpec s;
        s.mode = mode;
        s.block_sectors = block_sectors;
        s.queue_depth = qd;
        s.region_start = static_cast<uint64_t>(j) * per_job;
        s.region_len = per_job;
        s.seed = 1000 + j;
        out.push_back(s);
    }
    return out;
}

JobSpec
rand_read_job(uint32_t block_sectors, uint32_t qd, uint64_t capacity,
              uint64_t seed)
{
    JobSpec s;
    s.mode = RwMode::kRandRead;
    s.block_sectors = block_sectors;
    s.queue_depth = qd;
    s.region_start = 0;
    s.region_len = capacity;
    s.seed = seed;
    return s;
}

} // namespace raizn
