/**
 * @file
 * Workload runner: drives N concurrent jobs against an IoTarget on the
 * event loop, keeping each job's queue depth full, and records
 * throughput + latency. Mirrors the fio configurations of §6.1
 * (e.g. 8 jobs x QD64 sequential, 1 job x QD256 random read).
 */
#pragma once

#include <functional>
#include <vector>

#include "wkld/job.h"
#include "wkld/sampler.h"
#include "wkld/target.h"

namespace raizn {

class EventLoop;

class WorkloadRunner
{
  public:
    WorkloadRunner(EventLoop *loop, IoTarget *target);

    /// Runs all jobs to completion (synchronously drains the loop).
    std::vector<JobResult> run(const std::vector<JobSpec> &jobs,
                               Sampler *sampler = nullptr);

    /// Convenience: one aggregated result.
    JobResult run_merged(const std::vector<JobSpec> &jobs,
                         Sampler *sampler = nullptr);

  private:
    EventLoop *loop_;
    IoTarget *target_;
};

/// Builds the paper's standard job sets. `region_align` aligns each
/// job's region (pass the logical zone capacity for zoned writes).
std::vector<JobSpec> seq_jobs(RwMode mode, uint32_t block_sectors,
                              uint32_t njobs, uint32_t qd,
                              uint64_t capacity,
                              uint64_t region_align = 0);
JobSpec rand_read_job(uint32_t block_sectors, uint32_t qd,
                      uint64_t capacity, uint64_t seed = 7);

} // namespace raizn
