/**
 * @file
 * Array factories shared by benches and examples: builds a RAIZN array
 * of emulated ZNS SSDs or an mdraid array of conventional SSDs at a
 * laptop-friendly scale (geometrically scaled from the paper's 5x 2TB
 * devices; timing parameters match the paper's measured devices).
 */
#pragma once

#include <memory>
#include <vector>

#include "mdraid/md_volume.h"
#include "raizn/volume.h"
#include "sim/event_loop.h"
#include "zns/conv_device.h"
#include "zns/zns_device.h"

namespace raizn {

/// Scaled array geometry knobs.
struct BenchScale {
    uint32_t num_devices = 5;
    uint32_t zones_per_device = 24;
    uint64_t zone_cap_sectors = 8192; ///< 32 MiB zones
    uint32_t su_sectors = 16; ///< 64 KiB stripe units / chunks
    DataMode data_mode = DataMode::kNone;

    uint64_t device_sectors() const
    {
        return static_cast<uint64_t>(zones_per_device) * zone_cap_sectors;
    }
};

/// A fully wired array; owns the loop, devices, and volume.
struct RaiznArray {
    std::unique_ptr<EventLoop> loop;
    std::vector<std::unique_ptr<ZnsDevice>> devs;
    std::unique_ptr<RaiznVolume> vol;
};

struct MdArray {
    std::unique_ptr<EventLoop> loop;
    std::vector<std::unique_ptr<ConvDevice>> devs;
    std::unique_ptr<MdVolume> vol;
};

RaiznArray make_raizn_array(const BenchScale &scale);
MdArray make_mdraid_array(const BenchScale &scale);

/// Sequentially fills `sectors` of the volume (priming, §6.1) using
/// large blocks; returns the virtual time taken.
Tick prime_target(EventLoop *loop, class IoTarget *target,
                  uint64_t sectors);

} // namespace raizn
