/**
 * @file
 * fio-style job specifications (§6.1): rw mode, block size, queue
 * depth, and target region per job.
 */
#pragma once

#include <cstdint>

#include "common/histogram.h"
#include "common/units.h"

namespace raizn {

enum class RwMode {
    kSeqWrite,
    kSeqRead,
    kRandRead,
    kRandWrite, ///< invalid for zoned targets
};

constexpr const char *
to_string(RwMode m)
{
    switch (m) {
      case RwMode::kSeqWrite: return "write";
      case RwMode::kSeqRead: return "read";
      case RwMode::kRandRead: return "randread";
      case RwMode::kRandWrite: return "randwrite";
    }
    return "?";
}

struct JobSpec {
    RwMode mode = RwMode::kSeqRead;
    uint32_t block_sectors = 1;
    uint32_t queue_depth = 1;
    /// Region this job operates on, in sectors.
    uint64_t region_start = 0;
    uint64_t region_len = 0;
    /// Stop conditions (first hit wins; 0 = unused). Sequential jobs
    /// also stop at the end of their region.
    uint64_t io_limit = 0;
    Tick time_limit = 0;
    uint64_t seed = 1;
    /// Random modes: restrict offsets to block-aligned positions.
    bool align_random = true;
};

struct JobResult {
    uint64_t ios = 0;
    uint64_t bytes = 0;
    uint64_t errors = 0;
    Tick elapsed = 0;
    Histogram latency;

    double
    throughput_mibs() const
    {
        return mib_per_sec(bytes, elapsed);
    }
    double
    iops() const
    {
        if (elapsed == 0)
            return 0;
        return static_cast<double>(ios) /
            (static_cast<double>(elapsed) / kNsPerSec);
    }
};

/// Merges per-job results into an aggregate.
JobResult merge_results(const std::vector<JobResult> &results);

} // namespace raizn
