/**
 * @file
 * Uniform IO target interface so the fio-like workload runner can
 * drive a RAIZN volume, an mdraid volume, or a raw device with the
 * same job specifications.
 */
#pragma once

#include <cstdint>

#include "array/zoned_array.h"
#include "mdraid/md_volume.h"
#include "raizn/volume.h"
#include "zns/block_device.h"

namespace raizn {

class IoTarget
{
  public:
    virtual ~IoTarget() = default;
    virtual uint64_t capacity() const = 0;
    virtual void read(uint64_t lba, uint32_t n, IoCallback cb) = 0;
    /// Sequential or random write depending on the target's semantics.
    virtual void write(uint64_t lba, uint32_t n, IoCallback cb) = 0;
    virtual void flush(IoCallback cb) = 0;
    /// True if the target requires sequential (zoned) writes.
    virtual bool zoned() const = 0;
    /// For zoned targets: resets the zone containing `lba`.
    virtual void reset_zone_at(uint64_t lba, IoCallback cb) = 0;
};

class RaiznTarget : public IoTarget
{
  public:
    explicit RaiznTarget(RaiznVolume *vol) : vol_(vol) {}
    uint64_t capacity() const override { return vol_->capacity(); }
    void
    read(uint64_t lba, uint32_t n, IoCallback cb) override
    {
        vol_->read(lba, n, std::move(cb));
    }
    void
    write(uint64_t lba, uint32_t n, IoCallback cb) override
    {
        vol_->write_len(lba, n, {}, std::move(cb));
    }
    void
    flush(IoCallback cb) override
    {
        vol_->flush(std::move(cb));
    }
    bool zoned() const override { return true; }
    void
    reset_zone_at(uint64_t lba, IoCallback cb) override
    {
        vol_->reset_zone(vol_->layout().zone_of(lba), std::move(cb));
    }
    RaiznVolume *volume() const { return vol_; }

  private:
    RaiznVolume *vol_;
};

/// Any ZonedArray implementation behind the shared interface — the
/// generic ZonedEngine modes as well as the RAIZN volume itself.
class ZonedArrayTarget : public IoTarget
{
  public:
    explicit ZonedArrayTarget(ZonedArray *arr) : arr_(arr) {}
    uint64_t capacity() const override { return arr_->capacity(); }
    void
    read(uint64_t lba, uint32_t n, IoCallback cb) override
    {
        arr_->read(lba, n, std::move(cb));
    }
    void
    write(uint64_t lba, uint32_t n, IoCallback cb) override
    {
        arr_->write_len(lba, n, {}, std::move(cb));
    }
    void
    flush(IoCallback cb) override
    {
        arr_->flush(std::move(cb));
    }
    bool zoned() const override { return true; }
    void
    reset_zone_at(uint64_t lba, IoCallback cb) override
    {
        arr_->reset_zone(static_cast<uint32_t>(lba / arr_->zone_capacity()),
                         std::move(cb));
    }
    ZonedArray *array() const { return arr_; }

  private:
    ZonedArray *arr_;
};

class MdTarget : public IoTarget
{
  public:
    explicit MdTarget(MdVolume *vol) : vol_(vol) {}
    uint64_t capacity() const override { return vol_->capacity(); }
    void
    read(uint64_t lba, uint32_t n, IoCallback cb) override
    {
        vol_->read(lba, n, std::move(cb));
    }
    void
    write(uint64_t lba, uint32_t n, IoCallback cb) override
    {
        vol_->write_len(lba, n, std::move(cb));
    }
    void
    flush(IoCallback cb) override
    {
        vol_->flush(std::move(cb));
    }
    bool zoned() const override { return false; }
    void
    reset_zone_at(uint64_t, IoCallback cb) override
    {
        IoResult r;
        cb(std::move(r));
    }
    MdVolume *volume() const { return vol_; }

  private:
    MdVolume *vol_;
};

/// Raw single-device target (§6.1 raw microbenchmarks).
class DeviceTarget : public IoTarget
{
  public:
    explicit DeviceTarget(BlockDevice *dev) : dev_(dev) {}
    uint64_t capacity() const override
    {
        const auto &g = dev_->geometry();
        return g.zoned ? g.zone_capacity * g.nzones : g.nsectors;
    }
    void
    read(uint64_t lba, uint32_t n, IoCallback cb) override
    {
        IoRequest req = IoRequest::read(to_pba(lba), n);
        req.cause = obs::Cause::kUserData;
        dev_->submit(std::move(req), std::move(cb));
    }
    void
    write(uint64_t lba, uint32_t n, IoCallback cb) override
    {
        IoRequest req = IoRequest::write_len(to_pba(lba), n);
        req.cause = obs::Cause::kUserData;
        dev_->submit(std::move(req), std::move(cb));
    }
    void
    flush(IoCallback cb) override
    {
        IoRequest req = IoRequest::flush();
        req.cause = obs::Cause::kUserData;
        dev_->submit(std::move(req), std::move(cb));
    }
    bool zoned() const override { return dev_->geometry().zoned; }
    void
    reset_zone_at(uint64_t lba, IoCallback cb) override
    {
        const auto &g = dev_->geometry();
        uint64_t zone = to_pba(lba) / g.zone_size;
        IoRequest req = IoRequest::zone_reset(zone * g.zone_size);
        req.cause = obs::Cause::kZoneMgmt;
        dev_->submit(std::move(req), std::move(cb));
    }

  private:
    /// Maps a dense "capacity" LBA onto the zoned address space.
    uint64_t
    to_pba(uint64_t lba) const
    {
        const auto &g = dev_->geometry();
        if (!g.zoned || g.zone_capacity == g.zone_size)
            return lba;
        uint64_t zone = lba / g.zone_capacity;
        return zone * g.zone_size + lba % g.zone_capacity;
    }

    BlockDevice *dev_;
};

} // namespace raizn
