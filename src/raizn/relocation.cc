#include "raizn/relocation.h"

#include <cassert>

namespace raizn {

void
RelocationMap::insert(Relocation rel)
{
    assert(rel.nsectors > 0);
    map_[rel.lba] = std::move(rel);
}

void
RelocationMap::drop_zone(uint64_t zone_start, uint64_t zone_end)
{
    auto it = map_.lower_bound(zone_start);
    while (it != map_.end() && it->first < zone_end)
        it = map_.erase(it);
}

const Relocation *
RelocationMap::find(uint64_t lba) const
{
    auto it = map_.upper_bound(lba);
    if (it == map_.begin())
        return nullptr;
    --it;
    const Relocation &rel = it->second;
    if (lba >= rel.lba && lba < rel.lba + rel.nsectors)
        return &rel;
    return nullptr;
}

size_t
RelocationMap::count_for_dev(uint32_t dev) const
{
    size_t n = 0;
    for (const auto &[lba, rel] : map_)
        n += (rel.dev == dev);
    return n;
}

std::vector<const Relocation *>
RelocationMap::all() const
{
    std::vector<const Relocation *> out;
    out.reserve(map_.size());
    for (const auto &[lba, rel] : map_)
        out.push_back(&rel);
    return out;
}

} // namespace raizn
