#include "raizn/superblock.h"

#include <cstring>

#include "common/crc32.h"

namespace raizn {

namespace {
constexpr size_t kEncodedSize = 8 + 4 * 6 + 8 + 4;
} // namespace

std::vector<uint8_t>
Superblock::encode() const
{
    std::vector<uint8_t> out(kEncodedSize, 0);
    size_t off = 0;
    auto put = [&](const void *p, size_t n) {
        std::memcpy(out.data() + off, p, n);
        off += n;
    };
    put(&array_uuid, 8);
    put(&num_devices, 4);
    put(&dev_id, 4);
    put(&su_sectors, 4);
    put(&md_zones_per_device, 4);
    put(&stripe_buffers_per_zone, 4);
    put(&relocation_threshold, 4);
    put(&seq, 8);
    uint32_t c = crc32c(out.data(), off);
    put(&c, 4);
    return out;
}

Result<Superblock>
Superblock::decode(const std::vector<uint8_t> &inl)
{
    if (inl.size() < kEncodedSize)
        return Status(StatusCode::kCorruption, "superblock too short");
    Superblock sb;
    size_t off = 0;
    auto take = [&](void *p, size_t n) {
        std::memcpy(p, inl.data() + off, n);
        off += n;
    };
    take(&sb.array_uuid, 8);
    take(&sb.num_devices, 4);
    take(&sb.dev_id, 4);
    take(&sb.su_sectors, 4);
    take(&sb.md_zones_per_device, 4);
    take(&sb.stripe_buffers_per_zone, 4);
    take(&sb.relocation_threshold, 4);
    take(&sb.seq, 8);
    take(&sb.crc, 4);
    if (crc32c(inl.data(), kEncodedSize - 4) != sb.crc)
        return Status(StatusCode::kCorruption, "superblock CRC mismatch");
    return sb;
}

void
Superblock::from_config(const RaiznConfig &cfg)
{
    num_devices = cfg.num_devices;
    su_sectors = cfg.su_sectors;
    md_zones_per_device = cfg.md_zones_per_device;
    stripe_buffers_per_zone = cfg.stripe_buffers_per_zone;
    relocation_threshold = cfg.relocation_threshold;
}

RaiznConfig
Superblock::to_config() const
{
    RaiznConfig cfg;
    cfg.num_devices = num_devices;
    cfg.su_sectors = su_sectors;
    cfg.md_zones_per_device = md_zones_per_device;
    cfg.stripe_buffers_per_zone = stripe_buffers_per_zone;
    cfg.relocation_threshold = relocation_threshold;
    return cfg;
}

bool
Superblock::same_array(const Superblock &other) const
{
    return array_uuid == other.array_uuid &&
        num_devices == other.num_devices &&
        su_sectors == other.su_sectors;
}

} // namespace raizn
