#include "raizn/metadata.h"

#include <cassert>
#include <cstring>

#include "common/logging.h"

namespace raizn {

namespace {

template <typename T>
void
put(std::vector<uint8_t> &buf, size_t off, T value)
{
    std::memcpy(buf.data() + off, &value, sizeof(T));
}

template <typename T>
T
get(const uint8_t *p)
{
    T value;
    std::memcpy(&value, p, sizeof(T));
    return value;
}

} // namespace

std::vector<uint8_t>
encode_md_entry(const MdHeader &header, const std::vector<uint8_t> &inl,
                const std::vector<uint8_t> &payload)
{
    assert(inl.size() <= kMdInlineBytes);
    assert(payload.size() % kSectorSize == 0);
    assert(payload.empty() || md_type_has_payload(header.type));

    std::vector<uint8_t> out(kSectorSize + payload.size(), 0);
    put<uint32_t>(out, 0, kMdMagic);
    uint32_t type = static_cast<uint32_t>(header.type);
    if (header.checkpoint)
        type |= kMdCheckpointFlag;
    put<uint32_t>(out, 4, type);
    put<uint64_t>(out, 8, header.start_lba);
    put<uint64_t>(out, 16, header.end_lba);
    put<uint64_t>(out, 24, header.generation);
    if (!inl.empty())
        std::memcpy(out.data() + 32, inl.data(), inl.size());
    if (md_type_has_payload(header.type)) {
        put<uint32_t>(out, 32,
                      static_cast<uint32_t>(payload.size() / kSectorSize));
    }
    if (!payload.empty())
        std::memcpy(out.data() + kSectorSize, payload.data(),
                    payload.size());
    return out;
}

Result<MdEntry>
decode_md_entry(const std::vector<uint8_t> &zone_bytes, uint64_t off)
{
    if (off + kSectorSize > zone_bytes.size())
        return Status(StatusCode::kNotFound, "end of log");
    const uint8_t *p = zone_bytes.data() + off;
    if (get<uint32_t>(p) != kMdMagic)
        return Status(StatusCode::kNotFound, "no magic");

    MdEntry entry;
    uint32_t raw_type = get<uint32_t>(p + 4);
    entry.header.checkpoint = (raw_type & kMdCheckpointFlag) != 0;
    raw_type &= ~kMdCheckpointFlag;
    if (raw_type < 1 ||
        raw_type > static_cast<uint32_t>(MdType::kRebuildCheckpoint)) {
        return Status(StatusCode::kCorruption, "bad metadata type");
    }
    entry.header.type = static_cast<MdType>(raw_type);
    entry.header.start_lba = get<uint64_t>(p + 8);
    entry.header.end_lba = get<uint64_t>(p + 16);
    entry.header.generation = get<uint64_t>(p + 24);
    entry.inline_data.assign(p + 32, p + kSectorSize);

    uint32_t payload_sectors = 0;
    if (md_type_has_payload(entry.header.type))
        payload_sectors = get<uint32_t>(p + 32);
    entry.total_sectors = 1 + payload_sectors;
    uint64_t need = off + static_cast<uint64_t>(entry.total_sectors) *
        kSectorSize;
    if (need > zone_bytes.size()) {
        // Header persisted but the payload was torn off by power loss:
        // the entry is unusable.
        return Status(StatusCode::kCorruption, "torn payload");
    }
    if (payload_sectors > 0) {
        entry.payload.assign(p + kSectorSize,
                             p + kSectorSize +
                                 static_cast<size_t>(payload_sectors) *
                                     kSectorSize);
    }
    return entry;
}

std::vector<MdEntry>
scan_md_zone(const std::vector<uint8_t> &zone_bytes, uint64_t base_pba)
{
    std::vector<MdEntry> out;
    uint64_t off = 0;
    while (off + kSectorSize <= zone_bytes.size()) {
        auto res = decode_md_entry(zone_bytes, off);
        if (!res.is_ok()) {
            if (res.status().code() == StatusCode::kCorruption) {
                LOG_WARN("discarding torn metadata entry at +%llu",
                         (unsigned long long)off);
            }
            break;
        }
        MdEntry entry = std::move(res).value();
        entry.pba = base_pba + off / kSectorSize;
        off += static_cast<uint64_t>(entry.total_sectors) * kSectorSize;
        out.push_back(std::move(entry));
    }
    return out;
}

// ---- Inline record layouts ------------------------------------------

std::vector<uint8_t>
encode_zone_role(const ZoneRoleRecord &rec)
{
    std::vector<uint8_t> out(12, 0);
    put<uint32_t>(out, 0, static_cast<uint32_t>(rec.role));
    put<uint64_t>(out, 4, rec.epoch);
    return out;
}

Result<ZoneRoleRecord>
decode_zone_role(const MdEntry &entry)
{
    if (entry.header.type != MdType::kZoneRole ||
        entry.inline_data.size() < 12) {
        return Status(StatusCode::kCorruption, "bad zone role record");
    }
    ZoneRoleRecord rec;
    rec.role = static_cast<MdZoneRole>(
        get<uint32_t>(entry.inline_data.data()));
    rec.epoch = get<uint64_t>(entry.inline_data.data() + 4);
    return rec;
}

std::vector<uint8_t>
encode_zone_reset(const ZoneResetRecord &rec)
{
    std::vector<uint8_t> out(4, 0);
    put<uint32_t>(out, 0, rec.logical_zone);
    return out;
}

Result<ZoneResetRecord>
decode_zone_reset(const MdEntry &entry)
{
    if (entry.header.type != MdType::kZoneResetLog ||
        entry.inline_data.size() < 4) {
        return Status(StatusCode::kCorruption, "bad reset record");
    }
    ZoneResetRecord rec;
    rec.logical_zone = get<uint32_t>(entry.inline_data.data());
    return rec;
}

std::vector<uint8_t>
encode_zone_rebuild(const ZoneRebuildRecord &rec)
{
    std::vector<uint8_t> out(24, 0);
    put<uint32_t>(out, 0, rec.logical_zone);
    put<uint32_t>(out, 4, rec.dev);
    put<uint32_t>(out, 8, rec.phase);
    put<uint32_t>(out, 12, rec.swap_idx);
    put<uint64_t>(out, 16, rec.image_sectors);
    return out;
}

Result<ZoneRebuildRecord>
decode_zone_rebuild(const MdEntry &entry)
{
    if (entry.header.type != MdType::kZoneRebuildLog ||
        entry.inline_data.size() < 24) {
        return Status(StatusCode::kCorruption, "bad rebuild record");
    }
    ZoneRebuildRecord rec;
    rec.logical_zone = get<uint32_t>(entry.inline_data.data());
    rec.dev = get<uint32_t>(entry.inline_data.data() + 4);
    rec.phase = get<uint32_t>(entry.inline_data.data() + 8);
    rec.swap_idx = get<uint32_t>(entry.inline_data.data() + 12);
    rec.image_sectors = get<uint64_t>(entry.inline_data.data() + 16);
    return rec;
}

std::vector<uint8_t>
encode_rebuild_checkpoint(const RebuildCheckpointRecord &rec)
{
    uint32_t nzones = static_cast<uint32_t>(rec.rebuilt.size());
    size_t bitmap_bytes = (nzones + 7) / 8;
    assert(20 + bitmap_bytes <= kMdInlineBytes);
    std::vector<uint8_t> out(20 + bitmap_bytes, 0);
    put<uint32_t>(out, 0, rec.dev);
    put<uint32_t>(out, 4, rec.state);
    put<uint32_t>(out, 8, rec.zones_done);
    put<uint32_t>(out, 12, rec.cur_zone);
    put<uint32_t>(out, 16, nzones);
    for (uint32_t z = 0; z < nzones; ++z) {
        if (rec.rebuilt[z])
            out[20 + z / 8] |= static_cast<uint8_t>(1u << (z % 8));
    }
    return out;
}

Result<RebuildCheckpointRecord>
decode_rebuild_checkpoint(const MdEntry &entry)
{
    if (entry.header.type != MdType::kRebuildCheckpoint ||
        entry.inline_data.size() < 20) {
        return Status(StatusCode::kCorruption,
                      "bad rebuild checkpoint record");
    }
    const uint8_t *p = entry.inline_data.data();
    RebuildCheckpointRecord rec;
    rec.dev = get<uint32_t>(p);
    rec.state = get<uint32_t>(p + 4);
    rec.zones_done = get<uint32_t>(p + 8);
    rec.cur_zone = get<uint32_t>(p + 12);
    uint32_t nzones = get<uint32_t>(p + 16);
    if (entry.inline_data.size() < 20 + (nzones + 7) / 8) {
        return Status(StatusCode::kCorruption,
                      "truncated rebuild checkpoint bitmap");
    }
    rec.rebuilt.assign(nzones, false);
    for (uint32_t z = 0; z < nzones; ++z)
        rec.rebuilt[z] = (p[20 + z / 8] >> (z % 8)) & 1u;
    return rec;
}

} // namespace raizn
