/**
 * @file
 * Mount-time recovery (paper §4.3 "zone descriptors", §5.1, §5.2):
 * metadata log replay with generation-counter validation, write-pointer
 * reconciliation, stripe-hole detection and repair, partial-zone-reset
 * completion, stripe-unit remapping, and relocation-threshold physical
 * zone rebuilds.
 */
#include <algorithm>
#include <cassert>
#include <cstring>
#include <set>

#include "common/logging.h"
#include "raizn/volume_impl.h"
#include "sim/event_loop.h"

namespace raizn {

namespace {

uint64_t
zs_key(uint32_t zone, uint64_t stripe)
{
    return (static_cast<uint64_t>(zone) << 32) | stripe;
}

} // namespace

/// Transient state shared by the recovery passes.
struct RaiznVolume::RecoveryCtx {
    /// Zone reset intents whose generation is still current.
    std::set<uint32_t> pending_resets;
    /// Physical zone rebuild WALs to resume (phase < 2).
    std::vector<ZoneRebuildRecord> pending_rebuilds;

    struct RelocCandidate {
        MdEntry entry;
        uint32_t dev;
    };
    std::vector<RelocCandidate> relocs;

    struct PpCandidate {
        MdEntry entry;
        uint32_t dev;
    };
    std::vector<PpCandidate> pps;
};

Result<std::unique_ptr<RaiznVolume>>
RaiznVolume::mount(EventLoop *loop, std::vector<BlockDevice *> devs)
{
    if (devs.empty())
        return Status(StatusCode::kInvalidArgument, "no devices");

    // Locate the newest superblock: metadata zones are the trailing
    // physical zones, so scan backwards on any live device. Track which
    // devices carry one at all: an alive device with no superblock is a
    // factory-fresh replacement whose rebuild never got its first
    // checkpoint durable, and must be treated as the absent device.
    Superblock best;
    bool found = false;
    std::vector<bool> has_sb(devs.size(), false);
    for (size_t di = 0; di < devs.size(); ++di) {
        BlockDevice *dev = devs[di];
        if (dev->failed())
            continue;
        const DeviceGeometry &g = dev->geometry();
        if (!g.zoned)
            return Status(StatusCode::kInvalidArgument, "not a ZNS device");
        uint32_t lo = g.nzones > 8 ? g.nzones - 8 : 0;
        for (uint32_t z = g.nzones; z-- > lo;) {
            auto zi = dev->zone_info(z);
            if (!zi.is_ok() || zi.value().written() == 0)
                continue;
            IoRequest rd =
                IoRequest::read(zi.value().start,
                                static_cast<uint32_t>(
                                    zi.value().written()));
            rd.cause = obs::Cause::kWalMd;
            auto img = submit_sync(*loop, *dev, std::move(rd));
            if (!img.status.is_ok())
                continue;
            for (const MdEntry &e :
                 scan_md_zone(img.data, zi.value().start)) {
                if (e.header.type != MdType::kSuperblock)
                    continue;
                auto sb = Superblock::decode(e.inline_data);
                if (sb.is_ok()) {
                    has_sb[di] = true;
                    if (!found || sb.value().seq >= best.seq) {
                        best = sb.value();
                        found = true;
                    }
                }
            }
        }
    }
    if (!found)
        return Status(StatusCode::kNotFound, "no RAIZN superblock");
    if (best.num_devices != devs.size())
        return Status(StatusCode::kInvalidArgument,
                      "device count mismatch with superblock");

    RaiznConfig cfg = best.to_config();
    auto vol = std::unique_ptr<RaiznVolume>(
        new RaiznVolume(loop, std::move(devs), cfg));
    vol->sb_ = best;
    for (uint32_t d = 0; d < vol->devs_.size(); ++d) {
        if (vol->devs_[d]->failed())
            vol->failed_dev_ = static_cast<int>(d);
    }
    for (uint32_t d = 0; d < vol->devs_.size(); ++d) {
        if (has_sb[d] || vol->devs_[d]->failed())
            continue;
        if (vol->failed_dev_ >= 0 &&
            vol->failed_dev_ != static_cast<int>(d)) {
            return Status(StatusCode::kIoError,
                          strprintf("device %u has no superblock and "
                                    "device %d is failed: two devices "
                                    "down",
                                    d, vol->failed_dev_));
        }
        LOG_WARN("device %u carries no superblock: treating as an "
                 "unrebuilt replacement (degraded mount)",
                 d);
        vol->failed_dev_ = static_cast<int>(d);
    }
    Status st = vol->run_recovery();
    if (!st)
        return st;
    return vol;
}

Status
RaiznVolume::run_recovery()
{
    auto logs = md_->scan();
    if (!logs.is_ok())
        return logs.status();

    RecoveryCtx rc;
    const std::vector<MdManager::DeviceLog> &devlogs = logs.value();

    // Rebuild checkpoint: the newest record (by update sequence) tells
    // whether a whole-device rebuild was in flight at the crash. An
    // in-progress record re-marks the target as the array's absent
    // device — its data zones are partially reconstructed and must not
    // be trusted — and arms resume_rebuild() with the zone bitmap.
    {
        RebuildCheckpointRecord newest;
        uint64_t newest_seq = 0;
        bool have = false;
        for (const auto &devlog : devlogs) {
            for (const MdEntry &e : devlog.entries) {
                if (e.header.type != MdType::kRebuildCheckpoint)
                    continue;
                gen_update_seq_ =
                    std::max(gen_update_seq_, e.header.generation + 1);
                auto rec = decode_rebuild_checkpoint(e);
                if (!rec.is_ok())
                    continue;
                if (!have || e.header.generation >= newest_seq) {
                    newest = std::move(rec.value());
                    newest_seq = e.header.generation;
                    have = true;
                }
            }
        }
        if (have &&
            newest.state == RebuildCheckpointRecord::kInProgress &&
            newest.dev < devs_.size()) {
            if (devs_[newest.dev]->failed()) {
                // The target itself is gone again: plain degraded
                // mount; the checkpoint is moot.
            } else if (failed_dev_ >= 0 &&
                       failed_dev_ != static_cast<int>(newest.dev)) {
                LOG_ERROR("rebuild checkpoint for dev %u but dev %d is "
                          "failed: two devices down",
                          newest.dev, failed_dev_);
            } else {
                failed_dev_ = static_cast<int>(newest.dev);
                pending_rebuild_dev_ = failed_dev_;
                ckpt_rebuilt_ = newest.rebuilt;
                LOG_INFO("rebuild of dev %u interrupted "
                         "(%u zones checkpointed); resume available",
                         newest.dev, newest.zones_done);
            }
        }
    }

    // Pass 1: generation counters must be current before anything else
    // can be validated.
    for (const auto &devlog : devlogs) {
        for (const MdEntry &e : devlog.entries) {
            if (e.header.type == MdType::kGenCounters) {
                gen_.apply_entry(e);
                gen_update_seq_ =
                    std::max(gen_update_seq_, e.header.generation + 1);
            }
        }
    }

    // Zones with current-generation partial-parity records: when the
    // array is degraded, such a zone may hold FUA-acked content whose
    // only durable trace is the pp log (its data unit lives on the
    // failed device), so it is not actually empty.
    std::set<uint32_t> pp_backed;
    if (failed_dev_ >= 0) {
        for (const auto &devlog : devlogs) {
            for (const MdEntry &e : devlog.entries) {
                if (e.header.type != MdType::kPartialParity)
                    continue;
                uint32_t z = layout_->zone_of(e.header.start_lba);
                if (z < zones_.size() &&
                    e.header.generation == gen_.get(z)) {
                    pp_backed.insert(z);
                }
            }
        }
    }

    // Empty logical zones increment their generation on every mount,
    // invalidating any stale metadata for them (§4.3). pp-backed
    // degraded zones are exempt: the bump would invalidate the very
    // records that prove their content.
    std::set<uint32_t> touched_blocks;
    for (uint32_t z = 0; z < zones_.size(); ++z) {
        if (pp_backed.count(z))
            continue;
        bool empty = true;
        for (uint32_t d = 0; d < devs_.size(); ++d) {
            if (dev_down(d))
                continue;
            auto zi = devs_[d]->zone_info(z);
            if (!zi.is_ok())
                return zi.status();
            empty &= zi.value().written() == 0 &&
                zi.value().state == raizn::ZoneState::kEmpty;
        }
        if (empty) {
            gen_.increment(z);
            touched_blocks.insert(gen_.block_of(z));
        }
    }

    Status st = replay_md_logs(rc, devlogs);
    if (!st)
        return st;

    // Resume interrupted physical-zone rebuilds before zone recovery.
    for (const ZoneRebuildRecord &rec : rc.pending_rebuilds) {
        st = rebuild_physical_zone(rec.dev, rec.logical_zone, &rec);
        if (!st)
            return st;
    }

    for (uint32_t z = 0; z < zones_.size(); ++z) {
        st = recover_logical_zone(z, rc);
        if (!st)
            return st;
        touched_blocks.insert(gen_.block_of(z));
    }

    // Relocation-threshold maintenance: physical zones with too many
    // remapped stripe units are rebuilt at initialization (§5.2).
    for (uint32_t d = 0; d < devs_.size(); ++d) {
        if (dev_down(d))
            continue;
        std::map<uint32_t, uint32_t> per_zone;
        for (const Relocation *rel : reloc_.all()) {
            if (rel->dev == d)
                per_zone[layout_->zone_of(rel->lba)]++;
        }
        for (auto &[zone, count] : per_zone) {
            if (count > cfg_.relocation_threshold) {
                st = rebuild_physical_zone(d, zone, nullptr);
                if (!st)
                    return st;
            }
        }
    }

    // Persist the refreshed generation counters and superblock.
    for (uint32_t b : touched_blocks)
        persist_gen_block(b);
    st = persist_superblocks();
    if (!st)
        return st;
    loop_->run(); // drain outstanding metadata writes
    return Status::ok();
}

Status
RaiznVolume::replay_md_logs(RecoveryCtx &rc,
                            const std::vector<MdManager::DeviceLog> &logs)
{
    // Track phase-2 rebuild records so relocations folded into the
    // rebuilt zone are not resurrected.
    for (uint32_t d = 0; d < logs.size(); ++d) {
        const auto &devlog = logs[d];
        std::vector<RecoveryCtx::RelocCandidate> dev_relocs;
        for (const MdEntry &e : devlog.entries) {
            switch (e.header.type) {
              case MdType::kSuperblock:
              case MdType::kGenCounters:
              case MdType::kZoneRole:
              case MdType::kRebuildCheckpoint:
                break; // handled elsewhere
              case MdType::kZoneResetLog: {
                auto rec = decode_zone_reset(e);
                if (!rec.is_ok())
                    break;
                uint32_t z = rec.value().logical_zone;
                if (z < zones_.size() &&
                    e.header.generation == gen_.get(z)) {
                    rc.pending_resets.insert(z);
                }
                break;
              }
              case MdType::kPartialParity: {
                uint32_t z = layout_->zone_of(e.header.start_lba);
                if (z < zones_.size() &&
                    e.header.generation == gen_.get(z)) {
                    rc.pps.push_back({e, d});
                }
                break;
              }
              case MdType::kRelocatedSu: {
                bool parity = e.inline_data.size() > 4 &&
                    e.inline_data[4] == 1;
                uint32_t z = parity
                    ? static_cast<uint32_t>(e.header.start_lba >> 32)
                    : layout_->zone_of(e.header.start_lba);
                if (z < zones_.size() &&
                    e.header.generation == gen_.get(z)) {
                    dev_relocs.push_back({e, d});
                }
                break;
              }
              case MdType::kZoneRebuildLog: {
                auto rec = decode_zone_rebuild(e);
                if (!rec.is_ok())
                    break;
                if (rec.value().phase >= 2) {
                    // Drop the relocations folded by this rebuild.
                    uint32_t z = rec.value().logical_zone;
                    std::erase_if(dev_relocs, [&](const auto &cand) {
                        bool parity = cand.entry.inline_data.size() > 4 &&
                            cand.entry.inline_data[4] == 1;
                        uint32_t cz = parity
                            ? static_cast<uint32_t>(
                                  cand.entry.header.start_lba >> 32)
                            : layout_->zone_of(
                                  cand.entry.header.start_lba);
                        return cz == z;
                    });
                } else {
                    rc.pending_rebuilds.push_back(rec.value());
                }
                break;
              }
            }
        }
        for (auto &cand : dev_relocs)
            rc.relocs.push_back(std::move(cand));
    }

    // Apply relocations (newest last wins per LBA).
    for (const auto &cand : rc.relocs) {
        const MdEntry &e = cand.entry;
        bool parity = e.inline_data.size() > 4 && e.inline_data[4] == 1;
        Relocation rel;
        rel.dev = cand.dev;
        rel.md_pba = e.pba + 1;
        if (store_data_)
            rel.cached = e.payload;
        if (parity) {
            rel.lba = e.header.start_lba; // zs_key
            rel.nsectors = cfg_.su_sectors;
            parity_reloc_[e.header.start_lba] = std::move(rel);
            uint32_t z = static_cast<uint32_t>(e.header.start_lba >> 32);
            zones_[z].has_reloc = true;
        } else {
            rel.lba = e.header.start_lba;
            rel.nsectors = static_cast<uint32_t>(e.header.end_lba -
                                                 e.header.start_lba);
            uint32_t z = layout_->zone_of(rel.lba);
            zones_[z].has_reloc = true;
            reloc_.insert(std::move(rel));
        }
    }

    // Build the partial-parity index. Checkpointed entries that overlap
    // a normal entry for the same stripe are discarded (§4.3).
    std::set<uint64_t> stripes_with_normal;
    for (const auto &cand : rc.pps) {
        if (cand.entry.header.checkpoint)
            continue;
        uint32_t z = layout_->zone_of(cand.entry.header.start_lba);
        uint64_t off = cand.entry.header.start_lba -
            layout_->zone_start_lba(z);
        stripes_with_normal.insert(
            zs_key(z, off / layout_->stripe_sectors()));
    }
    for (const auto &cand : rc.pps) {
        const MdEntry &e = cand.entry;
        uint32_t z = layout_->zone_of(e.header.start_lba);
        uint64_t off = e.header.start_lba - layout_->zone_start_lba(z);
        uint64_t stripe = off / layout_->stripe_sectors();
        uint64_t key = zs_key(z, stripe);
        if (e.header.checkpoint && stripes_with_normal.count(key))
            continue;
        PpRecord rec;
        rec.start_lba = e.header.start_lba;
        rec.end_lba = e.header.end_lba;
        uint32_t lo32 = 0;
        if (e.inline_data.size() >= 8)
            std::memcpy(&lo32, e.inline_data.data() + 4, 4);
        rec.lo_sector = lo32;
        if (store_data_)
            rec.delta = e.payload;
        // A record can be logged twice — the rebuild re-logs a zone's
        // folded tail parity, and a crash between re-log and resume
        // replays both copies. Folding identical deltas twice XORs
        // them away, so duplicates (same range, same lane) are
        // dropped, never folded.
        auto &recs = pp_index_[key];
        bool dup = std::any_of(
            recs.begin(), recs.end(), [&](const PpRecord &r) {
                return r.start_lba == rec.start_lba &&
                    r.end_lba == rec.end_lba &&
                    r.lo_sector == rec.lo_sector;
            });
        if (dup)
            continue;
        recs.push_back(std::move(rec));
    }
    // Order each stripe's records by start LBA ("in order", §5.1).
    for (auto &[key, recs] : pp_index_) {
        std::sort(recs.begin(), recs.end(),
                  [](const PpRecord &a, const PpRecord &b) {
                      return a.start_lba < b.start_lba;
                  });
    }
    return Status::ok();
}

Status
RaiznVolume::complete_partial_reset(uint32_t zone)
{
    stats_.partial_zone_resets_completed++;
    uint64_t phys_start =
        static_cast<uint64_t>(zone) * layout_->phys_zone_size();
    for (uint32_t d = 0; d < devs_.size(); ++d) {
        if (dev_down(d))
            continue;
        IoRequest rst = IoRequest::zone_reset(phys_start);
        rst.cause = obs::Cause::kWalMd;
        auto res = dev_sync(d, std::move(rst));
        if (!res.status.is_ok())
            return res.status;
    }
    gen_.increment(zone);
    return Status::ok();
}

Status
RaiznVolume::recover_logical_zone(uint32_t zone, RecoveryCtx &rc)
{
    LZone &lz = zones_[zone];
    std::vector<uint64_t> written(devs_.size(), 0);
    bool any_written = false;
    bool all_full = true;
    for (uint32_t d = 0; d < devs_.size(); ++d) {
        if (dev_down(d)) {
            all_full = false;
            continue;
        }
        auto zi = devs_[d]->zone_info(zone);
        if (!zi.is_ok())
            return zi.status();
        written[d] = zi.value().written();
        any_written |= written[d] > 0;
        all_full &= zi.value().state == raizn::ZoneState::kFull;
    }

    if (rc.pending_resets.count(zone)) {
        // A logged reset did not complete on every device: finish it
        // now (§5.2). The generation bump invalidates stale metadata.
        if (any_written) {
            Status st = complete_partial_reset(zone);
            if (!st)
                return st;
        } else {
            gen_.increment(zone);
        }
        lz.cond = raizn::ZoneState::kEmpty;
        lz.wp = lz.start;
        return Status::ok();
    }

    // A degraded zone empty on every live device may still hold
    // FUA-acked content reconstructable from the replayed pp log.
    bool pp_backed = false;
    if (failed_dev_ >= 0) {
        for (const auto &[key, recs] : pp_index_) {
            if (static_cast<uint32_t>(key >> 32) == zone && !recs.empty())
                pp_backed = true;
        }
    }

    if (!any_written && !pp_backed) {
        lz.cond = raizn::ZoneState::kEmpty;
        lz.wp = lz.start;
        return Status::ok();
    }

    if (all_full && failed_dev_ < 0) {
        lz.cond = raizn::ZoneState::kFull;
        lz.wp = lz.cap_end;
        lz.pbm.reset(layout_->logical_zone_cap() / cfg_.su_sectors,
                     cfg_.su_sectors);
        lz.pbm.mark_persisted_upto(lz.cap_end - lz.start);
        return Status::ok();
    }

    Status st = repair_or_remap(zone, std::move(written));
    if (!st)
        return st;

    lz.pbm.reset(layout_->logical_zone_cap() / cfg_.su_sectors,
                 cfg_.su_sectors);
    lz.pbm.mark_persisted_upto(lz.wp - lz.start);
    if (lz.wp == lz.start) {
        lz.cond = raizn::ZoneState::kEmpty;
    } else if (lz.wp == lz.cap_end) {
        lz.cond = raizn::ZoneState::kFull;
    } else {
        lz.cond = raizn::ZoneState::kClosed;
        st = rebuild_tail_buffer(zone);
        if (!st)
            return st;
    }
    return Status::ok();
}

Status
RaiznVolume::repair_or_remap(uint32_t zone, std::vector<uint64_t> written)
{
    LZone &lz = zones_[zone];
    const uint32_t su = cfg_.su_sectors;
    const uint64_t ss = layout_->stripe_sectors();
    const uint32_t D = cfg_.data_units();

    // Claimed logical fill: the most any device implies.
    uint64_t L = 0;
    for (uint32_t d = 0; d < devs_.size(); ++d) {
        if (dev_down(d))
            continue;
        L = std::max(L,
                     layout_->progress_from_device(zone, d, written[d]));
    }
    // The replayed partial-parity log can prove more progress than any
    // device write pointer: a FUA-acked degraded write whose data unit
    // lives on the failed device is durable only as a pp record (§5.1).
    // Claim that progress too; the stripe walk below rolls back any
    // part of the claim that cannot actually be reconstructed.
    for (const auto &[key, recs] : pp_index_) {
        if (static_cast<uint32_t>(key >> 32) != zone)
            continue;
        for (const PpRecord &rec : recs)
            L = std::max(L, rec.end_lba - lz.start);
    }
    L = std::min(L, layout_->logical_zone_cap());

    // Expected physical fill of device d for logical fill l.
    auto expected = [&](uint32_t d, uint64_t l) -> uint64_t {
        uint64_t fs = l / ss;
        uint64_t rem = l % ss;
        uint64_t e = fs * su;
        if (rem > 0) {
            int pos = layout_->data_pos_of_dev(zone, fs, d);
            if (pos >= 0) {
                uint64_t start = static_cast<uint64_t>(pos) * su;
                if (rem > start)
                    e += std::min<uint64_t>(su, rem - start);
            }
        }
        return e;
    };

    // Cumulative partial parity for a stripe, from the replayed index.
    auto partial_parity_for = [&](uint64_t stripe, uint64_t *cov_end)
        -> std::vector<uint8_t> {
        std::vector<uint8_t> parity(static_cast<size_t>(su) * kSectorSize,
                                    0);
        *cov_end = 0;
        auto it = pp_index_.find(zs_key(zone, stripe));
        if (it == pp_index_.end())
            return parity;
        for (const PpRecord &rec : it->second) {
            *cov_end = std::max(*cov_end, rec.end_lba);
            if (!rec.delta.empty()) {
                xor_bytes(parity.data() + rec.lo_sector * kSectorSize,
                          rec.delta.data(), rec.delta.size());
            }
        }
        return parity;
    };

    // Walk stripes covered by L and repair holes in place while
    // possible. F tracks the first unrecoverable logical offset.
    uint64_t F = L;
    uint64_t first_stripe = UINT64_MAX, last_stripe = 0;
    for (uint32_t d = 0; d < devs_.size(); ++d) {
        if (dev_down(d))
            continue;
        uint64_t e = expected(d, L);
        if (written[d] < e) {
            first_stripe = std::min(first_stripe, written[d] / su);
            last_stripe = std::max(last_stripe, (e - 1) / su);
        }
    }
    if (failed_dev_ >= 0) {
        // Every stripe holding failed-device data within L must prove
        // that unit reconstructable (durable parity or durable pp),
        // even when no live device has a hole — otherwise the fill is
        // rolled back to the unit, not discovered lost at read time.
        for (uint64_t s = 0; s * ss < L; ++s) {
            if (layout_->data_pos_of_dev(
                    zone, s, static_cast<uint32_t>(failed_dev_)) < 0) {
                continue;
            }
            uint64_t e = expected(static_cast<uint32_t>(failed_dev_), L);
            if (e <= s * su)
                continue;
            first_stripe = std::min(first_stripe, s);
            last_stripe = std::max(last_stripe, s);
        }
    }

    if (first_stripe != UINT64_MAX) {
        for (uint64_t s = first_stripe; s <= last_stripe && F == L; ++s) {
            // Identify missing pieces in stripe s.
            struct Piece {
                uint32_t dev;
                int pos; ///< -1 = parity
                uint64_t lo, hi; ///< sector range within the slot
            };
            std::vector<Piece> missing;
            uint64_t slot = s * su;
            for (uint32_t d = 0; d < devs_.size(); ++d) {
                if (dev_down(d))
                    continue;
                uint64_t e = std::min(expected(d, L), slot + su);
                if (e <= slot)
                    continue;
                uint64_t have = std::min(std::max(written[d], slot), e);
                if (have < e) {
                    missing.push_back({d,
                                       layout_->data_pos_of_dev(zone, s, d),
                                       have - slot, e - slot});
                }
            }
            // A failed device's data unit in this stripe is also
            // unavailable — but only the part below L; an unwritten
            // failed unit (tail stripe) holds nothing and must not
            // count against the single-parity budget.
            int failed_pos = failed_dev_ >= 0
                ? layout_->data_pos_of_dev(
                      zone, s, static_cast<uint32_t>(failed_dev_))
                : -1;
            uint64_t failed_hi = 0;
            if (failed_pos >= 0) {
                uint64_t e = std::min(
                    expected(static_cast<uint32_t>(failed_dev_), L),
                    slot + su);
                if (e > slot)
                    failed_hi = e - slot;
            }
            if (missing.empty() && failed_hi == 0)
                continue;

            int missing_data = 0;
            for (const Piece &p : missing)
                missing_data += (p.pos >= 0);
            // More than one unavailable data unit per stripe is
            // unrecoverable (single parity).
            uint32_t unavailable = static_cast<uint32_t>(missing_data) +
                (failed_hi > 0 ? 1 : 0);

            uint32_t pdev = layout_->parity_dev(zone, s);
            bool parity_present = !dev_down(pdev) &&
                written[pdev] >= slot + su;
            for (const Piece &p : missing)
                if (p.pos < 0)
                    parity_present = false;

            uint64_t cov_end = 0;
            std::vector<uint8_t> pparity;
            bool pp_usable = false;
            {
                pparity = partial_parity_for(s, &cov_end);
                uint64_t stripe_start_lba =
                    lz.start + s * ss;
                // Coverage must reach the end of every missing piece's
                // logical range.
                pp_usable = true;
                for (const Piece &p : missing) {
                    if (p.pos < 0)
                        continue;
                    uint64_t need = stripe_start_lba +
                        static_cast<uint64_t>(p.pos) * su + p.hi;
                    // pp covers logical range up to cov_end.
                    uint64_t logical_need = std::min(
                        need, stripe_start_lba + ss);
                    if (cov_end < logical_need)
                        pp_usable = false;
                }
                if (failed_hi > 0) {
                    // Reconstructing the failed unit needs pp coverage
                    // through its written extent as well.
                    uint64_t need = stripe_start_lba +
                        static_cast<uint64_t>(failed_pos) * su +
                        failed_hi;
                    if (cov_end < std::min(need, stripe_start_lba + ss))
                        pp_usable = false;
                }
                if (!store_data_)
                    pp_usable = pp_index_.count(zs_key(zone, s)) > 0;
                if (dev_down(pdev))
                    pp_usable = false; // pp lives on the parity device
            }

            bool recoverable;
            if (missing_data == 0 && failed_hi == 0) {
                // Only parity missing; rebuild it from the data units.
                recoverable = true;
            } else if (unavailable <= 1) {
                recoverable = parity_present || pp_usable;
            } else {
                recoverable = false;
            }

            if (!recoverable) {
                // First lost logical sector in this stripe, counting
                // the failed device's unit when it cannot be rebuilt.
                uint64_t f = L;
                for (const Piece &p : missing) {
                    if (p.pos < 0)
                        continue;
                    f = std::min(f, s * ss +
                                        static_cast<uint64_t>(p.pos) * su +
                                        p.lo);
                }
                if (failed_hi > 0 && !parity_present) {
                    // The failed unit is extractable from the pp
                    // accumulator only up to the log's coverage of it;
                    // anything beyond is lost with the device. A fully
                    // covered unit is not lost at all, even when the
                    // stripe rolls back for other missing pieces.
                    uint64_t ustart_lba = lz.start + s * ss +
                        static_cast<uint64_t>(failed_pos) * su;
                    uint64_t ppc = cov_end > ustart_lba
                        ? std::min<uint64_t>(failed_hi,
                                             cov_end - ustart_lba)
                        : 0;
                    if (dev_down(pdev))
                        ppc = 0; // pp lives on the parity device
                    if (!store_data_ &&
                        pp_index_.count(zs_key(zone, s)) > 0)
                        ppc = failed_hi;
                    if (ppc < failed_hi) {
                        f = std::min(
                            f, s * ss +
                                static_cast<uint64_t>(failed_pos) * su +
                                ppc);
                    }
                }
                F = std::min(F, f);
                break;
            }

            // Reconstruct and write each missing piece in place. Data
            // units first, then parity (which may depend on them).
            std::sort(missing.begin(), missing.end(),
                      [](const Piece &a, const Piece &b) {
                          return (a.pos < 0 ? 1 : 0) <
                              (b.pos < 0 ? 1 : 0);
                      });
            for (const Piece &p : missing) {
                uint64_t pba = static_cast<uint64_t>(zone) *
                        layout_->phys_zone_size() +
                    slot + p.lo;
                std::vector<uint8_t> content(
                    static_cast<size_t>(p.hi - p.lo) * kSectorSize, 0);
                if (store_data_) {
                    if (p.pos >= 0) {
                        // Missing data unit: XOR of parity (or partial
                        // parity) with the surviving data units.
                        std::vector<uint8_t> acc(content.size(), 0);
                        if (parity_present) {
                            IoRequest prd = IoRequest::read(
                                static_cast<uint64_t>(zone) *
                                        layout_->phys_zone_size() +
                                    slot + p.lo,
                                static_cast<uint32_t>(p.hi - p.lo));
                            prd.cause = obs::Cause::kWalMd;
                            auto r = dev_sync(pdev, std::move(prd));
                            if (!r.status.is_ok())
                                return r.status;
                            xor_bytes(acc.data(), r.data.data(),
                                      acc.size());
                        } else {
                            xor_bytes(acc.data(),
                                      pparity.data() + p.lo * kSectorSize,
                                      acc.size());
                        }
                        uint64_t stripe_lo_lba = lz.start + s * ss;
                        for (uint32_t k = 0; k < D; ++k) {
                            if (static_cast<int>(k) == p.pos)
                                continue;
                            uint32_t kd = layout_->data_dev(zone, s, k);
                            if (dev_down(kd))
                                continue;
                            // Only the portion this unit contributed to
                            // the (partial) parity.
                            uint64_t unit_avail = parity_present
                                ? su
                                : (cov_end > stripe_lo_lba +
                                           static_cast<uint64_t>(k) * su
                                       ? std::min<uint64_t>(
                                             su,
                                             cov_end -
                                                 (stripe_lo_lba +
                                                  static_cast<uint64_t>(
                                                      k) *
                                                      su))
                                       : 0);
                            uint64_t k_lo = p.lo, k_hi =
                                std::min(p.hi, unit_avail);
                            if (k_hi <= k_lo)
                                continue;
                            IoRequest krd = IoRequest::read(
                                static_cast<uint64_t>(zone) *
                                        layout_->phys_zone_size() +
                                    slot + k_lo,
                                static_cast<uint32_t>(k_hi - k_lo));
                            krd.cause = obs::Cause::kWalMd;
                            auto r = dev_sync(kd, std::move(krd));
                            if (!r.status.is_ok())
                                return r.status;
                            xor_bytes(acc.data(), r.data.data(),
                                      r.data.size());
                        }
                        content = std::move(acc);
                    } else {
                        // Missing parity: XOR of all data units. When
                        // the failed device holds a data unit of this
                        // stripe, that unit's content exists only in
                        // the pp accumulator — seed from it, and fold
                        // live units in only over the lanes the log
                        // does not already cover.
                        std::vector<uint8_t> acc(content.size(), 0);
                        uint64_t stripe_lo_lba = lz.start + s * ss;
                        bool use_pp = failed_pos >= 0;
                        if (use_pp) {
                            xor_bytes(acc.data(),
                                      pparity.data() + p.lo * kSectorSize,
                                      acc.size());
                        }
                        for (uint32_t k = 0; k < D; ++k) {
                            uint32_t kd = layout_->data_dev(zone, s, k);
                            if (dev_down(kd))
                                continue;
                            uint64_t k_lo = p.lo, k_hi = p.hi;
                            if (use_pp) {
                                uint64_t covered = cov_end >
                                        stripe_lo_lba +
                                            static_cast<uint64_t>(k) * su
                                    ? std::min<uint64_t>(
                                          su,
                                          cov_end -
                                              (stripe_lo_lba +
                                               static_cast<uint64_t>(k) *
                                                   su))
                                    : 0;
                                k_lo = std::max(k_lo, covered);
                            }
                            if (k_hi <= k_lo)
                                continue;
                            IoRequest krd = IoRequest::read(
                                static_cast<uint64_t>(zone) *
                                        layout_->phys_zone_size() +
                                    slot + k_lo,
                                static_cast<uint32_t>(k_hi - k_lo));
                            krd.cause = obs::Cause::kWalMd;
                            auto r = dev_sync(kd, std::move(krd));
                            if (!r.status.is_ok())
                                return r.status;
                            xor_bytes(acc.data() +
                                          (k_lo - p.lo) * kSectorSize,
                                      r.data.data(), r.data.size());
                        }
                        content = std::move(acc);
                    }
                }
                IoRequest pwr = IoRequest::write(pba, std::move(content));
                pwr.cause = obs::Cause::kWalMd;
                auto w = dev_sync(p.dev, std::move(pwr));
                if (!w.status.is_ok())
                    return w.status;
                written[p.dev] = slot + p.hi;
                stats_.holes_repaired_in_place++;
            }
        }
    }

    // A partial-parity record straddling the fill would poison
    // degraded reconstruction: its delta folds in lanes from
    // rolled-back sectors that no live device backs any more, and a
    // folded delta cannot be split. Roll the fill back to the record's
    // start (always a write boundary, so never below a durable ack)
    // whenever the tail stripe needs the pp log for a failed data unit.
    if (failed_dev_ >= 0) {
        bool moved = true;
        while (moved && F > 0) {
            moved = false;
            uint64_t s = (F - 1) / ss;
            int pos = layout_->data_pos_of_dev(
                zone, s, static_cast<uint32_t>(failed_dev_));
            if (pos < 0 ||
                s * ss + static_cast<uint64_t>(pos) * su >= F) {
                continue; // no failed data unit inside the fill
            }
            auto it = pp_index_.find(zs_key(zone, s));
            if (it == pp_index_.end())
                continue;
            for (const PpRecord &rec : it->second) {
                uint64_t rs = rec.start_lba - lz.start;
                uint64_t re = rec.end_lba - lz.start;
                if (rs < F && re > F) {
                    F = rs;
                    moved = true;
                }
            }
        }
    }

    if (F < L) {
        // Roll the logical fill back to hide unrecoverable sectors and
        // mark over-written physical tails as burned; future writes to
        // those PBAs relocate to the metadata zone (§5.2, Fig. 1).
        stats_.holes_remapped++;
        L = F;
        for (uint32_t d = 0; d < devs_.size(); ++d) {
            if (dev_down(d))
                continue;
            uint64_t e = expected(d, L);
            if (written[d] > e) {
                // Pad the device zone to a stripe-unit boundary so
                // later in-place writes stay aligned.
                uint64_t padded = round_up(written[d], su);
                if (padded > written[d]) {
                    uint64_t pba = static_cast<uint64_t>(zone) *
                            layout_->phys_zone_size() +
                        written[d];
                    std::vector<uint8_t> zeros;
                    if (store_data_) {
                        zeros.assign(
                            static_cast<size_t>(padded - written[d]) *
                                kSectorSize,
                            0);
                    }
                    IoRequest req;
                    req.op = IoOp::kWrite;
                    req.cause = obs::Cause::kWalMd;
                    req.slba = pba;
                    req.nsectors =
                        static_cast<uint32_t>(padded - written[d]);
                    req.data = std::move(zeros);
                    auto r = dev_sync(d, std::move(req));
                    if (!r.status.is_ok())
                        return r.status;
                }
                burned_.set(d, zone, e, padded);
            }
        }
    }

    // Drop pp records for writes entirely beyond the recovered fill:
    // they describe rolled-back data and would otherwise poison any
    // later degraded reconstruction of this zone's tail stripe. After
    // the roll-back above, no surviving record straddles L.
    for (auto it = pp_index_.lower_bound(zs_key(zone, 0));
         it != pp_index_.end() &&
         static_cast<uint32_t>(it->first >> 32) == zone;) {
        std::erase_if(it->second, [&](const PpRecord &rec) {
            return rec.start_lba - lz.start >= L;
        });
        if (it->second.empty())
            it = pp_index_.erase(it);
        else
            ++it;
    }

    lz.wp = lz.start + L;
    return Status::ok();
}

Status
RaiznVolume::rebuild_tail_buffer(uint32_t zone)
{
    LZone &lz = zones_[zone];
    uint64_t fill = lz.wp - lz.start;
    uint64_t in_stripe = fill % layout_->stripe_sectors();
    if (in_stripe == 0 || !store_data_)
        return Status::ok();
    uint64_t stripe = fill / layout_->stripe_sectors();
    uint64_t from = lz.start + stripe * layout_->stripe_sectors();

    Status st;
    std::vector<uint8_t> data;
    bool done = false;
    read(from, static_cast<uint32_t>(in_stripe), [&](IoResult r) {
        st = r.status;
        data = std::move(r.data);
        done = true;
    });
    loop_->run_until_pred([&] { return done; });
    if (!st)
        return st;

    StripeBuffer *buf = get_buffer(zone, stripe);
    std::vector<uint8_t> full(buf->stripe_sectors() * kSectorSize, 0);
    std::memcpy(full.data(), data.data(),
                std::min(full.size(), data.size()));
    buf->restore(stripe, std::move(full), in_stripe);
    return Status::ok();
}

Status
RaiznVolume::rebuild_physical_zone(uint32_t dev, uint32_t zone,
                                   const ZoneRebuildRecord *resume)
{
    if (dev_down(dev))
        return Status::ok();
    stats_.phys_zone_rebuilds++;
    LZone &lz = zones_[zone];
    uint64_t phys_start =
        static_cast<uint64_t>(zone) * layout_->phys_zone_size();

    auto log_phase = [&](uint32_t phase, uint32_t swap_idx,
                         uint64_t image) -> Status {
        MdAppend app;
        app.header.type = MdType::kZoneRebuildLog;
        app.header.start_lba = lz.start;
        app.header.end_lba = lz.cap_end;
        app.header.generation = gen_.get(zone);
        app.inline_data = encode_zone_rebuild(
            {zone, dev, phase, swap_idx, image});
        Status out;
        bool done = false;
        md_->append(dev, MdZoneRole::kGeneral, std::move(app), true,
                    [&](Status s) {
                        out = s;
                        done = true;
                    });
        loop_->run_until_pred([&] { return done; });
        return out;
    };

    uint32_t swap_idx = 0;
    uint64_t image_sectors = 0;

    if (resume != nullptr && resume->phase == 1) {
        // Crash after the image reached the swap zone: the data zone
        // may be partially reset/rewritten; redo reset + copy-back from
        // the swap image.
        swap_idx = resume->swap_idx;
        image_sectors = resume->image_sectors;
    } else {
        // Fresh rebuild (or crash before the image was durable; the
        // data zone is untouched, so restart from scratch).
        auto zi = devs_[dev]->zone_info(zone);
        if (!zi.is_ok())
            return zi.status();
        uint64_t valid = zi.value().written();
        image_sectors = valid;
        auto sw = md_->borrow_swap(dev);
        if (!sw.is_ok())
            return sw.status();
        swap_idx = sw.value();

        Status st = log_phase(0, swap_idx, image_sectors);
        if (!st)
            return st;

        // Build the merged image: device contents with relocated
        // stripe units folded back to their arithmetic position.
        std::vector<uint8_t> image;
        if (store_data_) {
            IoRequest rd = IoRequest::read(
                phys_start, static_cast<uint32_t>(valid));
            rd.cause = obs::Cause::kRelocation;
            auto r = dev_sync(dev, std::move(rd));
            if (!r.status.is_ok())
                return r.status;
            image = std::move(r.data);
            for (const Relocation *rel : reloc_.all()) {
                if (rel->dev != dev ||
                    layout_->zone_of(rel->lba) != zone ||
                    rel->cached.empty()) {
                    continue;
                }
                uint32_t rdev;
                uint64_t rpba;
                layout_->map_sector(rel->lba, &rdev, &rpba);
                if (rdev != dev)
                    continue;
                uint64_t off = (rpba - phys_start) * kSectorSize;
                if (off + rel->cached.size() <= image.size()) {
                    std::memcpy(image.data() + off, rel->cached.data(),
                                rel->cached.size());
                }
            }
        } else {
            image.assign(static_cast<size_t>(valid) * kSectorSize, 0);
        }

        // Copy the image into the swap zone (durable), then declare
        // phase 1.
        uint64_t swap_pba = layout_->md_zone_start(swap_idx);
        if (valid > 0) {
            IoRequest req;
            req.op = IoOp::kWrite;
            req.cause = obs::Cause::kRelocation;
            req.slba = swap_pba;
            req.nsectors = static_cast<uint32_t>(valid);
            req.fua = true;
            if (store_data_)
                req.data = image;
            auto r = dev_sync(dev, std::move(req));
            if (!r.status.is_ok())
                return r.status;
        }
        st = log_phase(1, swap_idx, image_sectors);
        if (!st)
            return st;
    }

    // Reset the data zone and copy the image back.
    IoRequest zrst = IoRequest::zone_reset(phys_start);
    zrst.cause = obs::Cause::kRelocation;
    auto r = dev_sync(dev, std::move(zrst));
    if (!r.status.is_ok())
        return r.status;
    if (image_sectors > 0) {
        uint64_t swap_pba = layout_->md_zone_start(swap_idx);
        IoRequest ird = IoRequest::read(
            swap_pba, static_cast<uint32_t>(image_sectors));
        ird.cause = obs::Cause::kRelocation;
        auto img = dev_sync(dev, std::move(ird));
        if (!img.status.is_ok())
            return img.status;
        IoRequest req;
        req.op = IoOp::kWrite;
        req.cause = obs::Cause::kRelocation;
        req.slba = phys_start;
        req.nsectors = static_cast<uint32_t>(image_sectors);
        req.fua = true;
        req.data = std::move(img.data);
        r = dev_sync(dev, std::move(req));
        if (!r.status.is_ok())
            return r.status;
    }
    Status st = log_phase(2, swap_idx, image_sectors);
    if (!st)
        return st;

    // Reset the swap zone and hand it back.
    IoRequest srst =
        IoRequest::zone_reset(layout_->md_zone_start(swap_idx));
    srst.cause = obs::Cause::kRelocation;
    r = dev_sync(dev, std::move(srst));
    if (!r.status.is_ok())
        return r.status;
    md_->return_swap(dev, swap_idx);

    // Drop the folded relocations and burned ranges.
    std::vector<uint64_t> to_drop;
    for (const Relocation *rel : reloc_.all()) {
        if (rel->dev == dev && layout_->zone_of(rel->lba) == zone) {
            uint32_t rdev;
            uint64_t rpba;
            layout_->map_sector(rel->lba, &rdev, &rpba);
            if (rdev == dev)
                to_drop.push_back(rel->lba);
        }
    }
    for (uint64_t lba : to_drop)
        reloc_.drop_zone(lba, lba + 1);
    burned_.clear_dev_zone(dev, zone);
    bool any_left = false;
    for (const Relocation *rel : reloc_.all()) {
        if (layout_->zone_of(rel->lba) == zone)
            any_left = true;
    }
    zones_[zone].has_reloc = any_left ||
        std::any_of(parity_reloc_.begin(), parity_reloc_.end(),
                    [zone](const auto &kv) {
                        return (kv.first >> 32) == zone;
                    });
    return Status::ok();
}

} // namespace raizn
