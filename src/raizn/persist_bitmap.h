/**
 * @file
 * Per-logical-zone persistence bitmap (paper §5.3, Fig. 6): one bit per
 * stripe unit, tracking which stripe units are known durable on their
 * device. FUA/preflushed writes complete only after every preceding
 * LBA in the zone is durable; the bitmap identifies which devices still
 * hold non-persisted stripe units and must be flushed.
 */
#pragma once

#include <cstdint>

#include "common/bitmap.h"

namespace raizn {

class PersistBitmap
{
  public:
    PersistBitmap() = default;
    PersistBitmap(uint64_t stripe_units_per_zone, uint32_t su_sectors)
        : su_sectors_(su_sectors), bits_(stripe_units_per_zone)
    {
    }

    void
    reset(uint64_t stripe_units_per_zone, uint32_t su_sectors)
    {
        su_sectors_ = su_sectors;
        bits_.resize(stripe_units_per_zone);
        prefix_ = 0;
    }

    /// Clears all persistence state (zone reset).
    void
    clear()
    {
        bits_.clear_all();
        prefix_ = 0;
    }

    /**
     * Marks everything up to zone offset `upto_sectors` durable. Only
     * fully covered stripe units are marked: a unit bit means "this
     * unit's device holds no volatile data for it", which stops being
     * true for a partially persisted unit the moment the zone is
     * extended into its remainder — marking it would let a later FUA
     * dependency flush (§5.3) skip a device still caching the tail.
     */
    void
    mark_persisted_upto(uint64_t upto_sectors)
    {
        uint64_t units = upto_sectors / su_sectors_;
        units = std::min<uint64_t>(units, bits_.size());
        bits_.set_range(0, units);
        advance_prefix();
    }

    /// Marks stripe-unit index `unit` durable.
    void
    mark_unit(uint64_t unit)
    {
        bits_.set(unit);
        advance_prefix();
    }

    bool
    unit_persisted(uint64_t unit) const
    {
        return bits_.test(unit);
    }

    /// All stripe units below `unit_count` durable?
    bool
    prefix_persisted(uint64_t unit_count) const
    {
        return persisted_prefix_units() >= unit_count;
    }

    /// Longest durable prefix, in stripe units.
    uint64_t persisted_prefix_units() const { return prefix_; }

    /// In-memory footprint (Table 1: 1 bit per stripe unit).
    size_t memory_bytes() const { return (bits_.size() + 7) / 8; }

  private:
    void
    advance_prefix()
    {
        while (prefix_ < bits_.size() && bits_.test(prefix_))
            prefix_++;
    }

    uint32_t su_sectors_ = 1;
    Bitmap bits_;
    uint64_t prefix_ = 0;
};

} // namespace raizn
