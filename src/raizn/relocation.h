/**
 * @file
 * Relocated stripe units (paper §5.2). When a partial stripe write
 * leaves unrecoverable, non-overwritable sectors on some device ("the
 * stripe hole" of Fig. 1), RAIZN hides them from the user by rolling
 * back the logical write pointer and redirecting future writes that
 * conflict with the burned physical range into the device's metadata
 * zone. The modified LBA→PBA mapping lives in a hashmap checked on
 * reads of flagged zones; entries are also cached in memory.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/units.h"

namespace raizn {

/// One relocated logical range: [lba, lba+nsectors) now lives at
/// `md_pba` on device `dev` (inside a metadata zone).
struct Relocation {
    uint64_t lba;
    uint32_t nsectors;
    uint32_t dev;
    uint64_t md_pba;
    std::vector<uint8_t> cached; ///< in-memory copy (may be empty)
};

class RelocationMap
{
  public:
    void clear() { map_.clear(); }

    /// Inserts or replaces the relocation for `rel.lba`.
    void insert(Relocation rel);

    /// Drops all relocations within logical zone [zone_start, zone_end)
    /// (called when the zone is reset).
    void drop_zone(uint64_t zone_start, uint64_t zone_end);

    /**
     * Finds the relocation covering logical sector `lba`, or nullptr.
     * A lookup hit means the read path must fetch from the metadata
     * zone (or the in-memory cache) instead of the arithmetic PBA.
     */
    const Relocation *find(uint64_t lba) const;

    /// Number of relocated ranges held for device `dev`.
    size_t count_for_dev(uint32_t dev) const;
    size_t size() const { return map_.size(); }
    bool empty() const { return map_.empty(); }

    /// All relocations, ordered by logical LBA.
    std::vector<const Relocation *> all() const;

  private:
    /// Keyed by start LBA; ranges never overlap.
    std::map<uint64_t, Relocation> map_;
};

/**
 * Per-(device, logical zone) record of "burned" physical sectors: PBAs
 * beyond the rolled-back logical fill that already contain stale data
 * and cannot be rewritten until the zone resets. Writes whose
 * arithmetic PBA falls below `burned_end` must be relocated.
 */
class BurnedRanges
{
  public:
    void
    set(uint32_t dev, uint32_t zone, uint64_t expected_pba,
        uint64_t burned_end)
    {
        if (burned_end > expected_pba)
            map_[key(dev, zone)] = {expected_pba, burned_end};
    }

    /// End of the burned PBA range for (dev, zone), or 0 if none.
    uint64_t
    burned_end(uint32_t dev, uint32_t zone) const
    {
        auto it = map_.find(key(dev, zone));
        return it == map_.end() ? 0 : it->second.second;
    }

    void
    clear_zone(uint32_t num_devices, uint32_t zone)
    {
        for (uint32_t d = 0; d < num_devices; ++d)
            map_.erase(key(d, zone));
    }

    void
    clear_dev_zone(uint32_t dev, uint32_t zone)
    {
        map_.erase(key(dev, zone));
    }

    bool empty() const { return map_.empty(); }

  private:
    static uint64_t
    key(uint32_t dev, uint32_t zone)
    {
        return (static_cast<uint64_t>(dev) << 32) | zone;
    }

    /// (expected_pba, burned_end) per key.
    std::unordered_map<uint64_t, std::pair<uint64_t, uint64_t>> map_;
};

} // namespace raizn
