/**
 * @file
 * RAIZN superblock: array identity and parameters, persisted to every
 * device's general metadata zone (Table 1: "All devices", 4 KiB per
 * update).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "raizn/config.h"

namespace raizn {

struct Superblock {
    uint64_t array_uuid = 0; ///< random identity chosen at mkfs
    uint32_t num_devices = 0;
    uint32_t dev_id = 0; ///< which member this copy belongs to
    uint32_t su_sectors = 0;
    uint32_t md_zones_per_device = 0;
    uint32_t stripe_buffers_per_zone = 0;
    uint32_t relocation_threshold = 0;
    uint64_t seq = 0; ///< bumped on every superblock update
    uint32_t crc = 0; ///< CRC32C over the fields above

    /// Serializes into the inline area of a metadata header.
    std::vector<uint8_t> encode() const;
    static Result<Superblock> decode(const std::vector<uint8_t> &inl);

    /// Populates array parameters from a config (identity left as-is).
    void from_config(const RaiznConfig &cfg);
    RaiznConfig to_config() const;

    /// True if the two copies describe the same array.
    bool same_array(const Superblock &other) const;
};

} // namespace raizn
