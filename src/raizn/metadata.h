/**
 * @file
 * On-disk metadata formats (paper §4.3, Fig. 3). Every persisted
 * metadata log entry starts with a 4 KiB header sector:
 *
 *   bytes 0-3   magic ("RZNM")
 *   bytes 4-7   metadata type (checkpoint flag in the top bit)
 *   bytes 8-15  start LBA
 *   bytes 16-23 end LBA
 *   bytes 24-31 generation counter of the containing logical zone
 *   bytes 32-.. inline metadata (up to 4064 bytes)
 *
 * Entries whose payload exceeds the inline area (partial parity,
 * relocated stripe units) append payload sectors after the header; for
 * those types the first 4 inline bytes hold the payload sector count.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace raizn {

inline constexpr uint32_t kMdMagic = 0x4d4e5a52; // "RZNM" little-endian
/// Flag OR'd into the type by the metadata garbage collector to mark
/// checkpointed (vs freshly logged) entries (§4.3, Fig. 4).
inline constexpr uint32_t kMdCheckpointFlag = 0x8000'0000u;
/// Inline payload capacity of a header sector.
inline constexpr uint32_t kMdInlineBytes = kSectorSize - 32;

enum class MdType : uint32_t {
    kSuperblock = 1,
    kGenCounters = 2,
    kZoneResetLog = 3,
    kPartialParity = 4,
    kRelocatedSu = 5,
    /// First entry of an activated metadata zone: binds the physical
    /// zone to a log role with an epoch for crash disambiguation.
    kZoneRole = 6,
    /// Write-ahead record for physical-zone rebuild (relocation GC).
    kZoneRebuildLog = 7,
    /// Progress checkpoint for a whole-device rebuild: which logical
    /// zones of the replacement device hold durable reconstructed data,
    /// so a crash mid-rebuild resumes instead of restarting.
    kRebuildCheckpoint = 8,
};

constexpr bool
md_type_has_payload(MdType t)
{
    return t == MdType::kPartialParity || t == MdType::kRelocatedSu;
}

/// Roles a reserved metadata physical zone can hold (§4.3).
enum class MdZoneRole : uint32_t {
    kGeneral = 0, ///< superblock, gen counters, reset logs, relocations
    kParityLog = 1, ///< partial parity only (isolated: updated often)
    kSwap = 2, ///< empty spare used by metadata GC
};

/// Decoded metadata header (fixed 32-byte prefix of the header sector).
struct MdHeader {
    MdType type = MdType::kSuperblock;
    bool checkpoint = false;
    uint64_t start_lba = 0;
    uint64_t end_lba = 0;
    uint64_t generation = 0;
};

/// One decoded log entry.
struct MdEntry {
    MdHeader header;
    std::vector<uint8_t> inline_data; ///< kMdInlineBytes bytes
    std::vector<uint8_t> payload; ///< trailing sectors, may be empty
    uint64_t pba = 0; ///< device LBA the entry starts at
    uint32_t total_sectors = 1; ///< header + payload sectors
};

/**
 * Serializes header + inline data (padded to the inline area) into one
 * 4 KiB header sector followed by `payload` rounded up to sectors.
 * For payload-bearing types the payload sector count is stamped into
 * the first 4 inline bytes automatically.
 */
std::vector<uint8_t> encode_md_entry(const MdHeader &header,
                                     const std::vector<uint8_t> &inl,
                                     const std::vector<uint8_t> &payload);

/**
 * Decodes the entry starting at byte offset `off` of `zone_bytes`
 * (the raw contents of a metadata zone read up to its write pointer).
 * Returns kNotFound when `off` does not hold a valid header (end of
 * log), kCorruption on a malformed entry.
 */
Result<MdEntry> decode_md_entry(const std::vector<uint8_t> &zone_bytes,
                                uint64_t off);

/**
 * Parses a whole metadata zone image into entries, stopping at the
 * first sector that is not a valid header. `base_pba` is the device
 * LBA of byte 0, recorded into each entry.
 */
std::vector<MdEntry> scan_md_zone(const std::vector<uint8_t> &zone_bytes,
                                  uint64_t base_pba);

// ---- Inline record layouts ------------------------------------------

/// kZoneRole inline record.
struct ZoneRoleRecord {
    MdZoneRole role;
    uint64_t epoch; ///< monotonically increasing per device
};

std::vector<uint8_t> encode_zone_role(const ZoneRoleRecord &rec);
Result<ZoneRoleRecord> decode_zone_role(const MdEntry &entry);

/// kZoneResetLog inline record: intent to reset `logical_zone` whose
/// pre-reset generation was `header.generation`.
struct ZoneResetRecord {
    uint32_t logical_zone;
};

std::vector<uint8_t> encode_zone_reset(const ZoneResetRecord &rec);
Result<ZoneResetRecord> decode_zone_reset(const MdEntry &entry);

/// kZoneRebuildLog inline record (physical zone rebuild WAL, §5.2).
struct ZoneRebuildRecord {
    uint32_t logical_zone;
    uint32_t dev;
    uint32_t phase; ///< 0 = started, 1 = copied-to-swap, 2 = done
    uint32_t swap_idx; ///< metadata swap zone holding the image
    uint64_t image_sectors; ///< valid sectors copied
};

std::vector<uint8_t> encode_zone_rebuild(const ZoneRebuildRecord &rec);
Result<ZoneRebuildRecord> decode_zone_rebuild(const MdEntry &entry);

/// kRebuildCheckpoint inline record. Appended durably to every
/// surviving device at rebuild start and after each completed zone;
/// `header.generation` carries the volume update sequence so the
/// newest record wins at replay. `state` == kDone supersedes any
/// in-progress record for the same device.
struct RebuildCheckpointRecord {
    enum State : uint32_t { kInProgress = 1, kDone = 2 };

    uint32_t dev = 0; ///< device slot being rebuilt
    uint32_t state = kInProgress;
    uint32_t zones_done = 0; ///< zone-order cursor (completed count)
    uint32_t cur_zone = ~0u; ///< logical zone in flight (~0u = none)
    /// One bit per logical zone: set when the zone's reconstructed
    /// content is fully durable on the replacement device.
    std::vector<bool> rebuilt;
};

std::vector<uint8_t>
encode_rebuild_checkpoint(const RebuildCheckpointRecord &rec);
Result<RebuildCheckpointRecord>
decode_rebuild_checkpoint(const MdEntry &entry);

} // namespace raizn
