/**
 * @file
 * Private definitions shared by volume.cc, recovery.cc, and rebuild.cc.
 * Not part of the public API.
 */
#pragma once

#include <deque>

#include "raizn/volume.h"

namespace raizn {

/// Logical zone descriptor (Table 1: 64 bytes per logical zone plus
/// stripe buffers and persistence bitmap while the zone is open).
struct RaiznVolume::LZone {
    raizn::ZoneState cond = raizn::ZoneState::kEmpty;
    uint64_t wp = 0; ///< absolute logical LBA of the next write
    uint64_t start = 0;
    uint64_t cap_end = 0;
    bool blocked = false; ///< zone reset in flight: IO queued (§5.2)
    bool has_reloc = false; ///< reads must consult the relocation map
    std::vector<std::unique_ptr<StripeBuffer>> buffers;
    PersistBitmap pbm;
    std::deque<std::function<void()>> waiters;
    /// Per-sector CRC32C catalog of the logical payload (data mode
    /// only; empty after a remount until the scrubber repopulates it).
    std::vector<uint32_t> crcs;
    std::vector<bool> crc_valid;

    uint64_t written() const { return wp - start; }
};

/// Tracks one logical write until every sub-IO (data, parity, partial
/// parity log, dependency flushes) has completed.
struct RaiznVolume::WriteCtx {
    uint32_t pending = 0;
    bool issued_all = false;
    Status status;
    WriteFlags flags;
    uint32_t zone = 0;
    uint64_t end_lba = 0; ///< logical end of the write
    uint32_t nsectors = 0; ///< logical length (acked-user-byte ledger)
    IoCallback cb;
    bool in_flush_phase = false;
    // Trace context (zero when tracing is detached).
    uint64_t req_id = 0;      ///< correlation id for all sub-IO spans
    uint64_t total_token = 0; ///< open "raizn.write" span
    Tick start_tick = 0;      ///< process_write entry (total latency)
};

} // namespace raizn
