/**
 * @file
 * RAIZN array configuration (paper §4, §6: 5 devices, 64 KiB stripe
 * units, 1 parity unit per stripe, >= 3 metadata zones per device,
 * 8 stripe buffers per open zone).
 */
#pragma once

#include <cstdint>

#include "common/units.h"

namespace raizn {

struct RaiznConfig {
    /// Total devices (D data + 1 parity per stripe). Minimum 3.
    uint32_t num_devices = 5;
    /// Stripe unit ("chunk") size in sectors. 16 = 64 KiB.
    uint32_t su_sectors = 16;
    /// Reserved metadata zones per device: one for partial parity logs,
    /// one general metadata zone, and at least one swap zone (§4.3).
    uint32_t md_zones_per_device = 3;
    /// Pre-allocated stripe buffers per open logical zone (§5.1).
    uint32_t stripe_buffers_per_zone = 8;
    /// Remapped stripe units per physical zone before RAIZN rebuilds
    /// that zone at initialization (§5.2).
    uint32_t relocation_threshold = 16;
    /// Generation counters per persisted 4 KiB metadata block (§4.3).
    static constexpr uint32_t kGenCountersPerBlock = 508;

    uint32_t data_units() const { return num_devices - 1; }

    bool
    valid() const
    {
        return num_devices >= 3 && su_sectors >= 1 &&
            md_zones_per_device >= 3 && stripe_buffers_per_zone >= 1;
    }
};

} // namespace raizn
