#include "raizn/md_manager.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "sim/event_loop.h"

namespace raizn {

MdManager::MdManager(EventLoop *loop, const Layout *layout,
                     std::vector<BlockDevice *> devs)
    : loop_(loop), layout_(layout), devs_(std::move(devs))
{
    dev_state_.resize(devs_.size());
    for (auto &st : dev_state_) {
        st.wp.assign(layout_->md_zones(), 0);
    }
}

std::vector<uint8_t>
MdManager::encode(const MdAppend &entry) const
{
    return encode_md_entry(entry.header, entry.inline_data, entry.payload);
}

obs::Cause
MdManager::cause_of(MdZoneRole role, MdType type)
{
    if (role == MdZoneRole::kParityLog)
        return obs::Cause::kPpLog;
    switch (type) {
      case MdType::kPartialParity:
        return obs::Cause::kPpLog;
      case MdType::kRelocatedSu:
        return obs::Cause::kRelocation;
      case MdType::kZoneRebuildLog:
      case MdType::kRebuildCheckpoint:
        return obs::Cause::kRebuild;
      default:
        return obs::Cause::kWalMd;
    }
}

Status
MdManager::format_device(uint32_t dev)
{
    DevState &st = dev_state_[dev];
    st = DevState{};
    st.wp.assign(layout_->md_zones(), 0);
    for (uint32_t i = 0; i < layout_->md_zones(); ++i) {
        IoRequest rst = IoRequest::zone_reset(md_zone_pba(i));
        rst.cause = obs::Cause::kWalMd;
        auto res = submit_sync(*loop_, *devs_[dev], std::move(rst));
        if (!res.status.is_ok())
            return res.status;
    }
    // Bind zone 0 = general log, zone 1 = parity log; the rest are
    // swap zones.
    for (uint32_t role = 0; role < kNumRoles; ++role) {
        MdAppend rec;
        rec.header.type = MdType::kZoneRole;
        rec.inline_data = encode_zone_role(
            {static_cast<MdZoneRole>(role), st.next_epoch});
        auto bytes = encode(rec);
        IoRequest app = IoRequest::append(md_zone_pba(role),
                                          std::move(bytes), /*fua=*/true);
        app.cause = obs::Cause::kWalMd;
        auto res = submit_sync(*loop_, *devs_[dev], std::move(app));
        if (!res.status.is_ok())
            return res.status;
        st.role_zone[role] = static_cast<int>(role);
        st.wp[role] = 1;
        st.sectors_written += 1;
    }
    st.next_epoch++;
    for (uint32_t i = kNumRoles; i < layout_->md_zones(); ++i)
        st.swap.push_back(i);
    return Status::ok();
}

Status
MdManager::format()
{
    for (uint32_t d = 0; d < devs_.size(); ++d) {
        Status st = format_device(d);
        if (!st)
            return st;
    }
    return Status::ok();
}

uint64_t
MdManager::active_zone_wp(uint32_t dev, MdZoneRole role) const
{
    const DevState &st = dev_state_[dev];
    int zi = st.role_zone[static_cast<uint32_t>(role)];
    assert(zi >= 0);
    return md_zone_pba(static_cast<uint32_t>(zi)) +
        st.wp[static_cast<uint32_t>(zi)];
}

void
MdManager::md_submit(uint32_t dev, IoRequest req, IoCallback cb)
{
    if (retrier_) {
        retrier_->submit(devs_[dev], dev, std::move(req), std::move(cb));
        return;
    }
    devs_[dev]->submit(std::move(req), std::move(cb));
}

void
MdManager::do_append(uint32_t dev, uint32_t zone_idx,
                     std::vector<uint8_t> bytes, bool durable,
                     obs::Cause cause, StatusCb cb)
{
    DevState &st = dev_state_[dev];
    uint64_t sectors = bytes.size() / kSectorSize;
    st.wp[zone_idx] += sectors;
    st.sectors_written += sectors;
    IoRequest req = IoRequest::append(md_zone_pba(zone_idx),
                                      std::move(bytes), durable);
    req.cause = cause;
    md_submit(dev, std::move(req),
              [cb = std::move(cb)](IoResult r) { cb(r.status); });
}

void
MdManager::gc_switch(uint32_t dev, MdZoneRole role, StatusCb done)
{
    DevState &st = dev_state_[dev];
    uint32_t role_idx = static_cast<uint32_t>(role);
    int old_zone = st.role_zone[role_idx];
    assert(old_zone >= 0);
    if (st.swap.empty())
        RAIZN_PANIC("metadata GC: no swap zone available");
    gc_runs_++;
    uint32_t new_zone = st.swap.front();
    st.swap.erase(st.swap.begin());
    assert(st.wp[new_zone] == 0);

    // 1. Bind the swap zone to the role with a fresh epoch; new log
    //    entries go there immediately (the caller appends right after).
    st.role_zone[role_idx] = static_cast<int>(new_zone);
    MdAppend rec;
    rec.header.type = MdType::kZoneRole;
    rec.inline_data = encode_zone_role({role, st.next_epoch++});

    // 2. Checkpoint valid in-memory metadata (entries flagged).
    std::vector<MdAppend> checkpoint;
    if (snapshot_)
        checkpoint = snapshot_(dev, role);

    auto remaining = std::make_shared<size_t>(1 + checkpoint.size());
    auto first_error = std::make_shared<Status>();
    uint32_t old_zone_u = static_cast<uint32_t>(old_zone);
    auto on_write = [this, dev, old_zone_u, remaining, first_error,
                     done = std::move(done)](Status s) {
        if (!s.is_ok() && first_error->is_ok())
            *first_error = s;
        if (--*remaining > 0)
            return;
        if (!first_error->is_ok()) {
            done(*first_error);
            return;
        }
        // 3. Checkpoint durable: recycle the old zone into the swap
        //    pool. (If power is lost before this reset, both zones are
        //    replayed at mount; duplicates are harmless.)
        IoRequest rst = IoRequest::zone_reset(md_zone_pba(old_zone_u));
        rst.cause = obs::Cause::kGc;
        md_submit(
            dev, std::move(rst),
            [this, dev, old_zone_u, done](IoResult r) {
                if (r.status.is_ok()) {
                    dev_state_[dev].wp[old_zone_u] = 0;
                    dev_state_[dev].swap.push_back(old_zone_u);
                }
                done(r.status);
            });
    };

    // Role record and checkpoint rewrites are metadata-GC traffic:
    // bytes moved to recycle a zone, not new logical metadata.
    do_append(dev, new_zone, encode(rec), /*durable=*/true,
              obs::Cause::kGc, on_write);
    for (auto &entry : checkpoint) {
        entry.header.checkpoint = true;
        uint64_t sectors = 1 + entry.payload.size() / kSectorSize;
        if (st.wp[new_zone] + sectors > md_zone_cap())
            RAIZN_PANIC("metadata checkpoint exceeds zone capacity");
        do_append(dev, new_zone, encode(entry), /*durable=*/true,
                  obs::Cause::kGc, on_write);
    }
}

void
MdManager::append(uint32_t dev, MdZoneRole role, MdAppend entry,
                  bool durable, StatusCb cb)
{
    assert(dev < devs_.size());
    assert(role == MdZoneRole::kGeneral || role == MdZoneRole::kParityLog);
    DevState &st = dev_state_[dev];
    uint32_t role_idx = static_cast<uint32_t>(role);
    if (devs_[dev]->failed() || st.role_zone[role_idx] < 0) {
        // Metadata on a failed device is moot (§4.3); report success so
        // degraded writes proceed. Same for a blank replacement whose
        // metadata zones were never formatted (degraded mount after a
        // crash between device swap and the first rebuild checkpoint):
        // rewrite_replicated_md re-creates everything during rebuild.
        loop_->schedule_after(1, [cb = std::move(cb)] { cb(Status::ok()); });
        return;
    }
    std::vector<uint8_t> bytes = encode(entry);
    uint64_t sectors = bytes.size() / kSectorSize;
    int zone_idx = st.role_zone[role_idx];
    assert(zone_idx >= 0);
    if (st.wp[static_cast<uint32_t>(zone_idx)] + sectors > md_zone_cap()) {
        // Out of space: switch to a swap zone, then append there.
        gc_switch(dev, role, [](Status s) {
            if (!s.is_ok())
                LOG_WARN("metadata GC failed: %s", s.to_string().c_str());
        });
        zone_idx = st.role_zone[role_idx];
        if (st.wp[static_cast<uint32_t>(zone_idx)] + sectors >
            md_zone_cap()) {
            RAIZN_PANIC("metadata entry larger than metadata zone");
        }
    }
    do_append(dev, static_cast<uint32_t>(zone_idx), std::move(bytes),
              durable, cause_of(role, entry.header.type), std::move(cb));
}

Result<uint32_t>
MdManager::borrow_swap(uint32_t dev)
{
    DevState &st = dev_state_[dev];
    if (st.swap.empty())
        return Status(StatusCode::kNoSpace, "no swap zone available");
    uint32_t idx = st.swap.front();
    st.swap.erase(st.swap.begin());
    return idx;
}

void
MdManager::return_swap(uint32_t dev, uint32_t idx)
{
    DevState &st = dev_state_[dev];
    st.wp[idx] = 0;
    st.swap.push_back(idx);
}

Result<std::vector<MdManager::DeviceLog>>
MdManager::scan()
{
    std::vector<DeviceLog> out(devs_.size());
    for (uint32_t d = 0; d < devs_.size(); ++d) {
        DevState &st = dev_state_[d];
        st = DevState{};
        st.wp.assign(layout_->md_zones(), 0);
        if (devs_[d]->failed())
            continue;
        out[d].alive = true;

        struct ZoneImage {
            uint32_t idx;
            std::vector<MdEntry> entries;
            bool has_role = false;
            ZoneRoleRecord role{};
        };
        std::vector<ZoneImage> images;
        for (uint32_t i = 0; i < layout_->md_zones(); ++i) {
            uint32_t phys_zone = layout_->first_md_zone() + i;
            auto zi = devs_[d]->zone_info(phys_zone);
            if (!zi.is_ok())
                return zi.status();
            uint64_t written = zi.value().written();
            st.wp[i] = written;
            ZoneImage img;
            img.idx = i;
            if (written > 0) {
                IoRequest rd = IoRequest::read(
                    md_zone_pba(i), static_cast<uint32_t>(written));
                rd.cause = obs::Cause::kWalMd;
                auto res = submit_sync(*loop_, *devs_[d], std::move(rd));
                if (!res.status.is_ok())
                    return res.status;
                img.entries = scan_md_zone(res.data, md_zone_pba(i));
            }
            if (!img.entries.empty() &&
                img.entries.front().header.type == MdType::kZoneRole) {
                auto role = decode_zone_role(img.entries.front());
                if (role.is_ok()) {
                    img.has_role = true;
                    img.role = role.value();
                }
            }
            images.push_back(std::move(img));
        }

        // Restore role bindings: highest epoch per role wins; zones
        // with no role record (or stale ones already reset) are swap.
        for (uint32_t role = 0; role < kNumRoles; ++role) {
            int best = -1;
            uint64_t best_epoch = 0;
            for (auto &img : images) {
                if (img.has_role &&
                    static_cast<uint32_t>(img.role.role) == role &&
                    img.role.epoch >= best_epoch) {
                    best_epoch = img.role.epoch;
                    best = static_cast<int>(img.idx);
                }
            }
            st.role_zone[role] = best;
            st.next_epoch = std::max(st.next_epoch, best_epoch + 1);
        }
        for (auto &img : images) {
            bool active = false;
            for (uint32_t role = 0; role < kNumRoles; ++role)
                active |= st.role_zone[role] == static_cast<int>(img.idx);
            if (!active && img.has_role) {
                // Stale zone from an interrupted GC: replay, then reset
                // it back into the swap pool.
                IoRequest rst =
                    IoRequest::zone_reset(md_zone_pba(img.idx));
                rst.cause = obs::Cause::kWalMd;
                auto res = submit_sync(*loop_, *devs_[d], std::move(rst));
                if (!res.status.is_ok())
                    return res.status;
                st.wp[img.idx] = 0;
            }
            if (!active)
                st.swap.push_back(img.idx);
        }

        // Emit entries in replay order: ascending role epoch, then
        // append order within the zone. Stale zones (lower epoch)
        // replay before the active zone's checkpoint entries.
        std::stable_sort(images.begin(), images.end(),
                         [](const ZoneImage &a, const ZoneImage &b) {
                             uint64_t ea = a.has_role ? a.role.epoch : 0;
                             uint64_t eb = b.has_role ? b.role.epoch : 0;
                             return ea < eb;
                         });
        for (auto &img : images) {
            for (auto &entry : img.entries) {
                if (entry.header.type == MdType::kZoneRole)
                    continue;
                out[d].entries.push_back(std::move(entry));
            }
        }
    }
    return out;
}

} // namespace raizn
