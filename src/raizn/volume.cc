#include "raizn/volume_impl.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>

#include "common/crc32.h"
#include "common/logging.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/prof/prof.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "sim/event_loop.h"
#include "zns/zns_device.h"

namespace raizn {

namespace {

/// Key for per-(zone, stripe) maps.
uint64_t
zs_key(uint32_t zone, uint64_t stripe)
{
    return (static_cast<uint64_t>(zone) << 32) | stripe;
}

uint64_t g_uuid_source = 0x5a4e5331; // deterministic array UUIDs

} // namespace

RaiznVolume::RaiznVolume(EventLoop *loop, std::vector<BlockDevice *> devs,
                         const RaiznConfig &cfg)
    : ZonedArray(loop, std::move(devs),
                 StatCells{&stats_.io_retries, &stats_.io_timeouts,
                           &stats_.dev_errors, &stats_.spares_promoted}),
      cfg_(cfg)
{
    layout_ = std::make_unique<Layout>(cfg_, devs_[0]->geometry());
    md_ = std::make_unique<MdManager>(loop_, layout_.get(), devs_);
    md_->set_snapshot_provider(
        [this](uint32_t dev, MdZoneRole role) {
            return snapshot_for_gc(dev, role);
        });
    gen_.reset(layout_->num_logical_zones());
    // Direct construction: LZone is move-only and the vector never
    // grows afterwards.
    zones_ = std::vector<LZone>(layout_->num_logical_zones());
    for (uint32_t z = 0; z < zones_.size(); ++z) {
        zones_[z].start = layout_->zone_start_lba(z);
        zones_[z].cap_end = zones_[z].start + layout_->logical_zone_cap();
        zones_[z].wp = zones_[z].start;
    }
    // The general and parity-log metadata zones on each device stay
    // open, and metadata GC transiently opens one more; expose the rest.
    uint32_t dev_open = devs_[0]->geometry().max_open_zones;
    max_open_zones_ = dev_open > 3 ? dev_open - 3 : 1;
    // Timing-only arrays skip data-plane byte handling everywhere.
    store_data_ = true;
    for (BlockDevice *d : devs_)
        store_data_ &= d->data_mode() == DataMode::kStore;

    md_->set_retrier(retrier_.get());
}

RaiznVolume::~RaiznVolume()
{
    scrub_running_ = false;
}

void
RaiznVolume::on_resilience_changed()
{
    md_->set_retrier(retrier_.get());
}

void
RaiznVolume::link_stats_hook(obs::MetricsRegistry &reg)
{
    obs::link_stats(reg, "raizn", stats_);
}

size_t
RaiznVolume::open_stripe_buffers() const
{
    size_t n = 0;
    for (const LZone &z : zones_)
        n += z.buffers.size();
    return n;
}

size_t
RaiznVolume::pp_backlog() const
{
    size_t n = 0;
    for (const auto &[key, records] : pp_index_)
        n += records.size();
    return n;
}

size_t
RaiznVolume::reloc_backlog() const
{
    return reloc_.size() + parity_reloc_.size();
}

void
RaiznVolume::install_timeline(obs::Timeline *tl)
{
    if (tl == nullptr || reg_ == nullptr)
        return;
    obs::Gauge *buffers = reg_->gauge("raizn.gauge.stripe_buffers");
    obs::Gauge *pp = reg_->gauge("raizn.gauge.pp_records");
    obs::Gauge *reloc = reg_->gauge("raizn.gauge.reloc_entries");
    obs::Gauge *open_zones = reg_->gauge("raizn.gauge.open_zones");
    std::vector<std::array<obs::Gauge *, 4>> census;
    for (uint32_t d = 0; d < devs_.size(); ++d) {
        std::string prefix = strprintf("zns.dev%u", d);
        census.push_back({reg_->gauge(prefix + ".zones_empty"),
                          reg_->gauge(prefix + ".zones_open"),
                          reg_->gauge(prefix + ".zones_closed"),
                          reg_->gauge(prefix + ".zones_full")});
    }
    tl->add_probe([this, buffers, pp, reloc, open_zones,
                   census = std::move(census)] {
        buffers->set(open_stripe_buffers());
        pp->set(pp_backlog());
        reloc->set(reloc_backlog());
        open_zones->set(open_zones_);
        // Re-resolve each sample: promote_spare can swap device
        // pointers mid-run, and a member may be a decorator that is
        // not a ZnsDevice (census gauges then stay at their last
        // value).
        for (uint32_t d = 0; d < devs_.size(); ++d) {
            auto *zd = dynamic_cast<ZnsDevice *>(devs_[d]);
            if (zd == nullptr)
                continue;
            ZnsDevice::ZoneCensus c = zd->zone_census();
            census[d][0]->set(c.empty);
            census[d][1]->set(c.open);
            census[d][2]->set(c.closed);
            census[d][3]->set(c.full);
        }
    });
}

void
RaiznVolume::note_written_crcs(uint32_t zone, uint64_t off,
                               const std::vector<uint8_t> &data,
                               uint32_t nsectors)
{
    if (!store_data_)
        return;
    LZone &lz = zones_[zone];
    if (lz.crcs.empty()) {
        lz.crcs.assign(layout_->logical_zone_cap(), 0);
        lz.crc_valid.assign(layout_->logical_zone_cap(), false);
    }
    for (uint32_t i = 0; i < nsectors; ++i) {
        if (data.empty()) {
            lz.crc_valid[off + i] = false;
            continue;
        }
        lz.crcs[off + i] = crc32c(
            data.data() + static_cast<size_t>(i) * kSectorSize,
            kSectorSize);
        lz.crc_valid[off + i] = true;
    }
}

bool
RaiznVolume::crc_range_ok(uint64_t lba, const uint8_t *bytes,
                          uint32_t nsectors) const
{
    if (!store_data_ || bytes == nullptr)
        return true;
    uint32_t zone = layout_->zone_of(lba);
    const LZone &lz = zones_[zone];
    if (lz.crc_valid.empty())
        return true;
    uint64_t off = lba - lz.start;
    for (uint32_t i = 0; i < nsectors; ++i) {
        if (off + i >= lz.crc_valid.size() || !lz.crc_valid[off + i])
            continue;
        if (crc32c(bytes + static_cast<size_t>(i) * kSectorSize,
                   kSectorSize) != lz.crcs[off + i]) {
            return false;
        }
    }
    return true;
}

std::string
VolumeStats::dump() const
{
    return obs::render_stats(*this);
}

IoResult
RaiznVolume::dev_sync(uint32_t dev, IoRequest req)
{
    return submit_sync(*loop_, *devs_[dev], std::move(req));
}

bool
RaiznVolume::dev_unavailable(uint32_t dev, uint32_t zone) const
{
    if (devs_[dev]->failed())
        return true;
    if (static_cast<int>(dev) != failed_dev_)
        return false;
    // Marked failed but replaced: zones already rebuilt are usable.
    return !(rebuilding_ && zone < zone_rebuilt_.size() &&
             zone_rebuilt_[zone]);
}

Result<std::unique_ptr<RaiznVolume>>
RaiznVolume::create(EventLoop *loop, std::vector<BlockDevice *> devs,
                    const RaiznConfig &cfg)
{
    if (!cfg.valid() || devs.size() != cfg.num_devices)
        return Status(StatusCode::kInvalidArgument, "bad array config");
    const DeviceGeometry &g0 = devs[0]->geometry();
    if (!g0.zoned)
        return Status(StatusCode::kInvalidArgument, "devices must be ZNS");
    for (BlockDevice *d : devs) {
        const DeviceGeometry &g = d->geometry();
        if (!g.zoned || g.zone_size != g0.zone_size ||
            g.zone_capacity != g0.zone_capacity ||
            g.nzones != g0.nzones) {
            return Status(StatusCode::kInvalidArgument,
                          "device geometries differ");
        }
    }
    if (g0.zone_capacity % cfg.su_sectors != 0) {
        return Status(StatusCode::kInvalidArgument,
                      "zone capacity not a multiple of the stripe unit");
    }

    auto vol = std::unique_ptr<RaiznVolume>(
        new RaiznVolume(loop, std::move(devs), cfg));
    Status st = vol->md_->format();
    if (!st)
        return st;
    vol->sb_.array_uuid = ++g_uuid_source;
    vol->sb_.from_config(cfg);
    vol->sb_.seq = 1;
    st = vol->persist_superblocks();
    if (!st)
        return st;
    return vol;
}

Status
RaiznVolume::persist_superblocks()
{
    sb_.seq++;
    uint32_t pending = 0;
    Status first;
    for (uint32_t d = 0; d < devs_.size(); ++d) {
        if (devs_[d]->failed())
            continue;
        Superblock copy = sb_;
        copy.dev_id = d;
        MdAppend app;
        app.header.type = MdType::kSuperblock;
        app.inline_data = copy.encode();
        pending++;
        md_->append(d, MdZoneRole::kGeneral, std::move(app),
                    /*durable=*/true, [&](Status s) {
                        if (!s.is_ok() && first.is_ok())
                            first = s;
                        pending--;
                    });
    }
    loop_->run_until_pred([&] { return pending == 0; });
    return first;
}

Result<ZoneInfo>
RaiznVolume::zone_info(uint32_t zone) const
{
    if (zone >= zones_.size())
        return Status(StatusCode::kInvalidArgument, "zone out of range");
    const LZone &lz = zones_[zone];
    ZoneInfo info;
    info.start = lz.start;
    info.capacity = layout_->logical_zone_cap();
    info.wp = lz.wp;
    info.state = lz.cond;
    return info;
}

// ---- Stripe buffers ---------------------------------------------------

StripeBuffer *
RaiznVolume::get_buffer(uint32_t zone, uint64_t stripe)
{
    LZone &lz = zones_[zone];
    if (lz.buffers.empty()) {
        for (uint32_t i = 0; i < cfg_.stripe_buffers_per_zone; ++i) {
            lz.buffers.push_back(std::make_unique<StripeBuffer>(
                cfg_.data_units(), cfg_.su_sectors, !store_data_));
        }
    }
    StripeBuffer *buf =
        lz.buffers[stripe % cfg_.stripe_buffers_per_zone].get();
    if (buf->stripe_no() != stripe) {
        if (buf->bound())
            stats_.stripe_buffer_recycles++;
        buf->assign(stripe);
    }
    return buf;
}

void
RaiznVolume::open_zone_state(uint32_t zone)
{
    LZone &lz = zones_[zone];
    if (lz.cond == raizn::ZoneState::kEmpty ||
        lz.cond == raizn::ZoneState::kClosed) {
        if (lz.cond == raizn::ZoneState::kEmpty) {
            lz.pbm.reset(layout_->logical_zone_cap() / cfg_.su_sectors,
                         cfg_.su_sectors);
        }
        lz.cond = raizn::ZoneState::kImplicitOpen;
        open_zones_++;
    }
}

void
RaiznVolume::drain_waiters(uint32_t zone)
{
    LZone &lz = zones_[zone];
    while (!lz.blocked && !lz.waiters.empty()) {
        auto fn = std::move(lz.waiters.front());
        lz.waiters.pop_front();
        fn();
    }
}

// ---- Write path -------------------------------------------------------

void
RaiznVolume::write(uint64_t lba, std::vector<uint8_t> data,
                   WriteFlags flags, IoCallback cb)
{
    uint32_t nsectors = static_cast<uint32_t>(data.size() / kSectorSize);
    write_internal(lba, std::move(data), nsectors, flags, std::move(cb));
}

void
RaiznVolume::write_internal(uint64_t lba, std::vector<uint8_t> data,
                            uint32_t nsectors, WriteFlags flags,
                            IoCallback cb)
{
    auto fail = [&](StatusCode code, const char *msg) {
        IoResult r;
        r.status = Status(code, msg);
        loop_->schedule_after(1,
                              [cb = std::move(cb), r = std::move(r)]() mutable {
                                  cb(std::move(r));
                              });
    };
    if (read_only_)
        return fail(StatusCode::kReadOnly, "volume is read-only");
    if (nsectors == 0 || lba + nsectors > capacity())
        return fail(StatusCode::kInvalidArgument, "write out of range");
    uint32_t zone = layout_->zone_of(lba);
    LZone &lz = zones_[zone];
    if (lz.blocked) {
        // Zone reset in flight: queue behind it (§5.2).
        lz.waiters.push_back([this, lba, data = std::move(data), nsectors,
                              flags, cb = std::move(cb)]() mutable {
            write_internal(lba, std::move(data), nsectors, flags,
                           std::move(cb));
        });
        return;
    }
    if (lz.cond == raizn::ZoneState::kFull)
        return fail(StatusCode::kNoSpace, "zone full");
    if (lba != lz.wp)
        return fail(StatusCode::kWritePointerMismatch,
                    "write not at zone write pointer");
    if (lba + nsectors > lz.cap_end)
        return fail(StatusCode::kZoneBoundary,
                    "write crosses zone capacity");
    if (lz.cond == raizn::ZoneState::kEmpty &&
        open_zones_ >= max_open_zones_) {
        return fail(StatusCode::kTooManyOpenZones,
                    "logical open zone limit");
    }

    if (flags.preflush) {
        // Persist all prior data on every device before this write.
        flush([this, lba, data = std::move(data), nsectors, flags,
               cb = std::move(cb)](IoResult r) mutable {
            if (!r.status.is_ok()) {
                cb(std::move(r));
                return;
            }
            WriteFlags f2 = flags;
            f2.preflush = false;
            process_write(lba, std::move(data), nsectors, f2,
                          std::move(cb));
        });
        return;
    }
    process_write(lba, std::move(data), nsectors, flags, std::move(cb));
}

void
RaiznVolume::process_write(uint64_t lba, std::vector<uint8_t> data,
                           uint32_t nsectors, WriteFlags flags,
                           IoCallback cb)
{
    PROF_SCOPE("raizn.write");
    uint32_t zone = layout_->zone_of(lba);
    LZone &lz = zones_[zone];
    open_zone_state(zone);
    lz.wp = lba + nsectors;

    stats_.logical_writes++;
    stats_.sectors_written += nsectors;
    if (flags.fua)
        stats_.fua_writes++;
    note_written_crcs(zone, lba - lz.start, data, nsectors);

    auto ctx = std::make_shared<WriteCtx>();
    ctx->flags = flags;
    ctx->zone = zone;
    ctx->end_lba = lba + nsectors;
    ctx->nsectors = nsectors;
    ctx->cb = std::move(cb);
    ctx->start_tick = loop_->now();
    if (trace_ != nullptr) {
        ctx->req_id = trace_->next_request_id();
        ctx->total_token = trace_->begin_span(
            "raizn.write", ctx->req_id, obs::kTrackRequest, loop_->now());
    }

    const uint64_t ss = layout_->stripe_sectors();
    const uint32_t su = cfg_.su_sectors;
    uint64_t off = lba - lz.start; // zone offset of write start
    uint64_t end = off + nsectors;
    uint64_t cur = off;

    while (cur < end) {
        uint64_t stripe = cur / ss;
        uint64_t stripe_lo = stripe * ss;
        uint64_t chunk_end = std::min<uint64_t>(end, stripe_lo + ss);
        StripeBuffer *buf = get_buffer(zone, stripe);
        const uint8_t *src = data.empty()
            ? nullptr
            : data.data() + (cur - off) * kSectorSize;
        buf->fill(cur - stripe_lo, src, chunk_end - cur);

        // Data sub-IOs, one per touched stripe unit.
        uint64_t piece = cur;
        while (piece < chunk_end) {
            uint64_t in_stripe = piece - stripe_lo;
            uint32_t k = static_cast<uint32_t>(in_stripe / su);
            uint64_t in_su = in_stripe % su;
            uint64_t piece_end =
                std::min<uint64_t>(chunk_end,
                                   stripe_lo + (k + 1ull) * su);
            uint32_t len = static_cast<uint32_t>(piece_end - piece);
            uint32_t dev = layout_->data_dev(zone, stripe, k);
            uint64_t pba = layout_->slot_pba(zone, stripe) + in_su;
            std::vector<uint8_t> bytes;
            if (!data.empty()) {
                const uint8_t *p = data.data() + (piece - off) * kSectorSize;
                prof::count_alloc(static_cast<uint64_t>(len) * kSectorSize);
                prof::count_copy(static_cast<uint64_t>(len) * kSectorSize);
                bytes.assign(p, p + static_cast<size_t>(len) * kSectorSize);
            }
            submit_data_subio(dev, zone, pba, std::move(bytes), len,
                              lz.start + piece, flags.fua, ctx);
            piece = piece_end;
        }

        if (buf->complete()) {
            // Full stripe: write final parity to the data zone.
            submit_parity_subio(zone, stripe, buf->full_parity(),
                                flags.fua, ctx);
            pp_index_.erase(zs_key(zone, stripe));
        } else {
            // Partial stripe: log the parity delta for exactly the
            // range this write affected (§5.1).
            uint64_t lo_sector, hi_sector;
            std::vector<uint8_t> delta = buf->parity_delta(
                cur - stripe_lo, chunk_end - stripe_lo, &lo_sector,
                &hi_sector);
            log_partial_parity(zone, stripe, lz.start + cur,
                               lz.start + chunk_end, std::move(delta),
                               lo_sector, ctx);
        }
        cur = chunk_end;
    }

    if (lz.wp == lz.cap_end) {
        lz.cond = raizn::ZoneState::kFull;
        open_zones_--;
        // Stripe buffers belong to open zones only (§5.1); the final
        // parity is already captured in the sub-IOs above.
        lz.buffers.clear();
    }

    ctx->issued_all = true;
    if (ctx->pending == 0)
        finish_write(ctx);
}

void
RaiznVolume::submit_data_subio(uint32_t dev, uint32_t zone, uint64_t pba,
                               std::vector<uint8_t> data, uint32_t nsectors,
                               uint64_t lba, bool fua,
                               std::shared_ptr<WriteCtx> ctx)
{
    if (dev_unavailable(dev, zone)) {
        // Degraded write: the stripe unit is simply omitted (§4.2).
        return;
    }
    if (pba < burned_.burned_end(dev, zone)) {
        // The arithmetic PBA holds stale pre-crash data that cannot be
        // overwritten: redirect to the metadata zone (§5.2, Fig. 1).
        relocate_write(dev, zone, lba, std::move(data), nsectors, ctx);
        return;
    }
    ctx->pending++;
    IoRequest req;
    req.op = IoOp::kWrite;
    req.slba = pba;
    req.nsectors = nsectors;
    req.fua = fua;
    req.data = std::move(data);
    req.trace_req = ctx->req_id;
    req.trace_stage = "write.data";
    req.cause = ctx->flags.origin;
    dev_submit(dev, std::move(req),
               [this, ctx, dev](IoResult r) {
                   if (!r.status.is_ok() &&
                       escalate_dev_error(dev, r.status)) {
                       // Degraded write: the device is failed, the
                       // stripe unit is omitted (§4.2).
                       subio_done(ctx, Status::ok());
                       return;
                   }
                   subio_done(ctx, r.status);
               });
}

void
RaiznVolume::submit_parity_subio(uint32_t zone, uint64_t stripe,
                                 std::vector<uint8_t> parity, bool fua,
                                 std::shared_ptr<WriteCtx> ctx)
{
    uint32_t dev = layout_->parity_dev(zone, stripe);
    uint64_t pba = layout_->slot_pba(zone, stripe);
    stats_.full_parity_writes++;
    if (dev_unavailable(dev, zone))
        return;
    if (pba < burned_.burned_end(dev, zone)) {
        // Parity slot burned: keep the parity in the metadata zone.
        ctx->pending++;
        MdAppend app;
        app.header.type = MdType::kRelocatedSu;
        app.header.start_lba = zs_key(zone, stripe); // parity key
        app.header.end_lba = app.header.start_lba;
        app.header.generation = gen_.get(zone);
        app.inline_data.assign(8, 0);
        app.inline_data[4] = 1; // parity marker
        if (!store_data_)
            parity.clear();
        std::vector<uint8_t> payload = parity;
        if (payload.empty()) {
            payload.assign(
                static_cast<size_t>(cfg_.su_sectors) * kSectorSize, 0);
        }
        uint64_t md_pba = md_->active_zone_wp(dev, MdZoneRole::kGeneral);
        Relocation rel;
        rel.lba = app.header.start_lba;
        rel.nsectors = cfg_.su_sectors;
        rel.dev = dev;
        rel.md_pba = md_pba + 1; // payload follows the header sector
        rel.cached = std::move(parity);
        parity_reloc_[zs_key(zone, stripe)] = std::move(rel);
        app.payload = std::move(payload);
        uint64_t tok = trace_ != nullptr
            ? trace_->begin_span("write.parity_reloc", ctx->req_id,
                                 obs::kTrackMetadata, loop_->now())
            : 0;
        md_->append(dev, MdZoneRole::kGeneral, std::move(app), false,
                    [this, ctx, tok](Status s) {
                        if (trace_ != nullptr && tok != 0)
                            trace_->end_span(tok, loop_->now());
                        subio_done(ctx, s);
                    });
        stats_.relocated_writes++;
        return;
    }
    if (!store_data_)
        parity.clear();
    ctx->pending++;
    IoRequest req;
    req.op = IoOp::kWrite;
    req.slba = pba;
    req.nsectors = cfg_.su_sectors;
    req.fua = fua;
    req.data = std::move(parity);
    req.trace_req = ctx->req_id;
    req.trace_stage = "write.parity";
    req.cause = obs::Cause::kParity;
    dev_submit(dev, std::move(req),
               [this, ctx, dev](IoResult r) {
                   if (!r.status.is_ok() &&
                       escalate_dev_error(dev, r.status)) {
                       subio_done(ctx, Status::ok());
                       return;
                   }
                   subio_done(ctx, r.status);
               });
}

MdAppend
RaiznVolume::make_pp_append(uint32_t zone, uint64_t stripe,
                            uint64_t start_lba, uint64_t end_lba,
                            uint64_t lo_sector,
                            std::vector<uint8_t> delta) const
{
    (void)stripe;
    MdAppend app;
    app.header.type = MdType::kPartialParity;
    app.header.start_lba = start_lba;
    app.header.end_lba = end_lba;
    app.header.generation = gen_.get(zone);
    app.inline_data.assign(12, 0);
    uint32_t lo32 = static_cast<uint32_t>(lo_sector);
    std::memcpy(app.inline_data.data() + 4, &lo32, 4);
    app.payload = std::move(delta);
    return app;
}

void
RaiznVolume::log_partial_parity(uint32_t zone, uint64_t stripe,
                                uint64_t start_lba, uint64_t end_lba,
                                std::vector<uint8_t> delta,
                                uint64_t lo_sector,
                                std::shared_ptr<WriteCtx> ctx)
{
    PROF_SCOPE("raizn.pp_log");
    stats_.partial_parity_logs++;
    stats_.partial_parity_sectors += delta.size() / kSectorSize;

    // Remember the delta in memory for degraded reconstruction of the
    // incomplete stripe.
    PpRecord rec;
    rec.start_lba = start_lba;
    rec.end_lba = end_lba;
    rec.lo_sector = lo_sector;
    if (store_data_)
        rec.delta = delta;
    pp_index_[zs_key(zone, stripe)].push_back(std::move(rec));

    if (debug_fault_ == DebugFault::kSkipPartialParityLog)
        return; // deliberate bug: in-memory index only, nothing durable

    uint32_t dev = layout_->parity_dev(zone, stripe);
    if (dev_unavailable(dev, zone))
        return; // degraded: partial parity is omitted with its device
    ctx->pending++;
    MdAppend app = make_pp_append(zone, stripe, start_lba, end_lba,
                                  lo_sector, std::move(delta));
    uint64_t tok = trace_ != nullptr
        ? trace_->begin_span("write.pp_log", ctx->req_id,
                             obs::kTrackMetadata, loop_->now())
        : 0;
    md_->append(dev, MdZoneRole::kParityLog, std::move(app),
                /*durable=*/ctx->flags.fua,
                [this, ctx, tok](Status s) {
                    if (trace_ != nullptr && tok != 0)
                        trace_->end_span(tok, loop_->now());
                    subio_done(ctx, s);
                });
}

void
RaiznVolume::relocate_write(uint32_t dev, uint32_t zone, uint64_t lba,
                            std::vector<uint8_t> data, uint32_t nsectors,
                            std::shared_ptr<WriteCtx> ctx)
{
    PROF_SCOPE("raizn.reloc");
    stats_.relocated_writes++;
    zones_[zone].has_reloc = true;
    ctx->pending++;

    MdAppend app;
    app.header.type = MdType::kRelocatedSu;
    app.header.start_lba = lba;
    app.header.end_lba = lba + nsectors;
    app.header.generation = gen_.get(zone);
    app.inline_data.assign(8, 0);
    std::vector<uint8_t> payload = data;
    if (payload.empty()) {
        payload.assign(static_cast<size_t>(nsectors) * kSectorSize, 0);
    }
    app.payload = std::move(payload);

    uint64_t md_pba = md_->active_zone_wp(dev, MdZoneRole::kGeneral);
    Relocation rel;
    rel.lba = lba;
    rel.nsectors = nsectors;
    rel.dev = dev;
    rel.md_pba = md_pba + 1;
    rel.cached = std::move(data); // relocations are cached (§5.2)
    reloc_.insert(std::move(rel));

    uint64_t tok = trace_ != nullptr
        ? trace_->begin_span("write.reloc", ctx->req_id,
                             obs::kTrackMetadata, loop_->now())
        : 0;
    md_->append(dev, MdZoneRole::kGeneral, std::move(app),
                /*durable=*/ctx->flags.fua,
                [this, ctx, tok](Status s) {
                    if (trace_ != nullptr && tok != 0)
                        trace_->end_span(tok, loop_->now());
                    subio_done(ctx, s);
                });
}

void
RaiznVolume::subio_done(std::shared_ptr<WriteCtx> ctx, Status status)
{
    if (!status.is_ok() && ctx->status.is_ok())
        ctx->status = status;
    assert(ctx->pending > 0);
    ctx->pending--;
    if (ctx->pending == 0 && ctx->issued_all)
        finish_write(ctx);
}

void
RaiznVolume::finish_write(std::shared_ptr<WriteCtx> ctx)
{
    if (ctx->in_flush_phase || !ctx->flags.fua || !ctx->status.is_ok()) {
        IoResult r;
        r.status = ctx->status;
        r.lba = ctx->end_lba;
        if (ctx->flags.fua && ctx->status.is_ok()) {
            zones_[ctx->zone].pbm.mark_persisted_upto(
                ctx->end_lba - zones_[ctx->zone].start);
        }
        if (trace_ != nullptr && ctx->total_token != 0) {
            trace_->end_span(ctx->total_token, loop_->now());
            ctx->total_token = 0;
        }
        uint64_t elapsed = loop_->now() - ctx->start_tick;
        if (write_lat_ != nullptr)
            write_lat_->record(elapsed);
        if (ledger_ != nullptr && ctx->status.is_ok() &&
            ctx->flags.origin == obs::Cause::kUserData)
            ledger_->note_user_write(ctx->nsectors);
        // Foreground write latency EWMA: the adaptive rebuild throttle
        // compares this against the pre-rebuild baseline.
        fg_write_ewma_ns_ = fg_write_ewma_ns_ == 0.0
            ? static_cast<double>(elapsed)
            : 0.2 * static_cast<double>(elapsed) + 0.8 * fg_write_ewma_ns_;
        if (throttle_ != nullptr && rebuilding_)
            throttle_->observe_foreground_latency(elapsed);
        auto cb = std::move(ctx->cb);
        cb(std::move(r));
        return;
    }
    start_fua_flush_phase(ctx);
}

void
RaiznVolume::start_fua_flush_phase(std::shared_ptr<WriteCtx> ctx)
{
    // FUA: every LBA preceding this write in the zone must be durable
    // before completion is reported (§5.3, Fig. 6). Find the devices
    // still holding non-persisted stripe units.
    ctx->in_flush_phase = true;
    LZone &lz = zones_[ctx->zone];
    uint64_t end_off = ctx->end_lba - lz.start;
    uint64_t end_units = div_ceil(end_off, cfg_.su_sectors);
    uint64_t first = lz.pbm.persisted_prefix_units();
    if (first >= end_units) {
        finish_write(ctx); // everything already durable
        return;
    }
    std::vector<bool> need(devs_.size(), false);
    const uint32_t D = cfg_.data_units();
    for (uint64_t u = first; u < end_units; ++u) {
        if (lz.pbm.unit_persisted(u))
            continue;
        uint64_t stripe = u / D;
        uint32_t k = static_cast<uint32_t>(u % D);
        need[layout_->data_dev(ctx->zone, stripe, k)] = true;
        // The stripe's parity (or partial parity log) lives on the
        // parity device; flush it too.
        need[layout_->parity_dev(ctx->zone, stripe)] = true;
    }
    for (uint32_t d = 0; d < devs_.size(); ++d) {
        if (!need[d] || static_cast<int>(d) == failed_dev_ ||
            devs_[d]->failed()) {
            continue;
        }
        ctx->pending++;
        stats_.fua_dependency_flushes++;
        IoRequest freq = IoRequest::flush();
        freq.trace_req = ctx->req_id;
        freq.trace_stage = "write.fua_flush";
        freq.cause = ctx->flags.origin;
        dev_submit(d, std::move(freq),
                   [this, ctx, d](IoResult r) {
                       if (!r.status.is_ok() &&
                           escalate_dev_error(d, r.status)) {
                           subio_done(ctx, Status::ok());
                           return;
                       }
                       subio_done(ctx, r.status);
                   });
    }
    if (ctx->pending == 0)
        finish_write(ctx);
}

void
RaiznVolume::flush(IoCallback cb)
{
    PROF_SCOPE("raizn.flush");
    stats_.flushes++;
    // Duplicate the flush to every array device (§5.3).
    auto pending = std::make_shared<uint32_t>(0);
    auto first = std::make_shared<Status>();
    // Snapshot write pointers: everything submitted before the flush
    // becomes durable at its completion.
    auto wps = std::make_shared<std::vector<uint64_t>>();
    for (const LZone &lz : zones_)
        wps->push_back(lz.wp - lz.start);
    auto done = [this, pending, first, wps,
                 cb = std::move(cb)](IoResult r) {
        if (!r.status.is_ok() && first->is_ok())
            *first = r.status;
        if (--*pending > 0)
            return;
        for (uint32_t z = 0; z < zones_.size(); ++z) {
            if ((*wps)[z] > 0)
                zones_[z].pbm.mark_persisted_upto((*wps)[z]);
        }
        IoResult out;
        out.status = *first;
        cb(std::move(out));
    };
    for (uint32_t d = 0; d < devs_.size(); ++d) {
        if (static_cast<int>(d) == failed_dev_ || devs_[d]->failed())
            continue;
        (*pending)++;
        IoRequest freq = IoRequest::flush();
        freq.cause = obs::Cause::kUserData;
        dev_submit(d, std::move(freq),
                   [this, done, d](IoResult r) mutable {
                       if (!r.status.is_ok() &&
                           escalate_dev_error(d, r.status)) {
                           r.status = Status::ok();
                       }
                       done(std::move(r));
                   });
    }
    if (*pending == 0) {
        // No live devices.
        (*pending)++;
        IoResult r;
        r.status = Status(StatusCode::kOffline, "no devices");
        loop_->schedule_after(1, [done, r]() mutable {
            done(std::move(r));
        });
    }
}

// ---- Zone management --------------------------------------------------

void
RaiznVolume::reset_zone(uint32_t zone, IoCallback cb)
{
    if (zone >= zones_.size()) {
        IoResult r;
        r.status = Status(StatusCode::kInvalidArgument, "bad zone");
        loop_->schedule_after(1, [cb = std::move(cb), r]() mutable {
            cb(std::move(r));
        });
        return;
    }
    LZone &lz = zones_[zone];
    if (lz.blocked) {
        lz.waiters.push_back([this, zone, cb = std::move(cb)]() mutable {
            reset_zone(zone, std::move(cb));
        });
        return;
    }
    if (lz.cond == raizn::ZoneState::kEmpty) {
        IoResult r;
        loop_->schedule_after(1, [cb = std::move(cb), r]() mutable {
            cb(std::move(r));
        });
        return;
    }
    stats_.zone_resets++;
    // Block all IO to the zone until every physical zone is reset
    // (§5.2). The reset pointer is the logical wp at receipt.
    lz.blocked = true;

    // 1. Log the reset intent durably on two devices: the one holding
    //    the zone's first stripe unit and the one holding the first
    //    stripe's parity (rotated per zone by the layout).
    uint32_t dev_a = layout_->data_dev(zone, 0, 0);
    uint32_t dev_b = layout_->parity_dev(zone, 0);
    auto wal_pending = std::make_shared<uint32_t>(0);
    auto do_resets = [this, zone, cb = std::move(cb)]() mutable {
        // 2. Reset every physical zone.
        auto pending = std::make_shared<uint32_t>(0);
        auto first = std::make_shared<Status>();
        auto on_reset = [this, zone, pending, first,
                         cb = std::move(cb)](IoResult r) mutable {
            if (!r.status.is_ok() && first->is_ok())
                *first = r.status;
            if (--*pending > 0)
                return;
            // 3. All physical zones reset: bump and persist the
            //    generation counter, clear in-memory state, unblock.
            LZone &lz = zones_[zone];
            gen_.increment(zone);
            persist_gen_block(gen_.block_of(zone));
            if (is_open(lz.cond))
                open_zones_--;
            lz.cond = raizn::ZoneState::kEmpty;
            lz.wp = lz.start;
            lz.pbm.clear();
            lz.crcs.clear();
            lz.crc_valid.clear();
            lz.buffers.clear();
            lz.has_reloc = false;
            reloc_.drop_zone(lz.start, lz.cap_end);
            burned_.clear_zone(static_cast<uint32_t>(devs_.size()), zone);
            auto it = pp_index_.lower_bound(zs_key(zone, 0));
            while (it != pp_index_.end() &&
                   it->first < zs_key(zone + 1, 0)) {
                it = pp_index_.erase(it);
            }
            auto pit = parity_reloc_.begin();
            while (pit != parity_reloc_.end()) {
                if ((pit->first >> 32) == zone)
                    pit = parity_reloc_.erase(pit);
                else
                    ++pit;
            }
            lz.blocked = false;
            drain_waiters(zone);
            IoResult out;
            out.status = *first;
            cb(std::move(out));
        };
        uint64_t phys_zone_start =
            static_cast<uint64_t>(zone) * layout_->phys_zone_size();
        for (uint32_t d = 0; d < devs_.size(); ++d) {
            if (static_cast<int>(d) == failed_dev_ || devs_[d]->failed())
                continue;
            (*pending)++;
            IoRequest rst = IoRequest::zone_reset(phys_zone_start);
            rst.cause = obs::Cause::kZoneMgmt;
            dev_submit(d, std::move(rst),
                       [this, on_reset, d](IoResult r) mutable {
                           if (!r.status.is_ok() &&
                               escalate_dev_error(d, r.status)) {
                               r.status = Status::ok();
                           }
                           on_reset(std::move(r));
                       });
        }
        if (*pending == 0) {
            IoResult r;
            r.status = Status(StatusCode::kOffline, "no devices");
            cb(std::move(r));
        }
    };

    auto on_wal = std::make_shared<std::function<void(Status)>>();
    *wal_pending = 0;
    std::vector<uint32_t> wal_devs;
    wal_devs.push_back(dev_a);
    if (dev_b != dev_a)
        wal_devs.push_back(dev_b);
    auto do_resets_shared =
        std::make_shared<std::function<void()>>(std::move(do_resets));
    *on_wal = [wal_pending, do_resets_shared](Status s) {
        if (!s.is_ok())
            LOG_WARN("reset WAL write failed: %s", s.to_string().c_str());
        if (--*wal_pending == 0)
            (*do_resets_shared)();
    };
    for (uint32_t d : wal_devs) {
        if (static_cast<int>(d) == failed_dev_ || devs_[d]->failed())
            continue;
        (*wal_pending)++;
    }
    if (*wal_pending == 0) {
        (*do_resets_shared)();
        return;
    }
    for (uint32_t d : wal_devs) {
        if (static_cast<int>(d) == failed_dev_ || devs_[d]->failed())
            continue;
        MdAppend app;
        app.header.type = MdType::kZoneResetLog;
        app.header.start_lba = zones_[zone].start;
        app.header.end_lba = zones_[zone].cap_end;
        app.header.generation = gen_.get(zone);
        app.inline_data = encode_zone_reset({zone});
        md_->append(d, MdZoneRole::kGeneral, std::move(app),
                    /*durable=*/true, *on_wal);
    }
}

void
RaiznVolume::persist_gen_block(uint32_t block)
{
    uint64_t seq = gen_update_seq_++;
    for (uint32_t d = 0; d < devs_.size(); ++d) {
        if (static_cast<int>(d) == failed_dev_ || devs_[d]->failed())
            continue;
        MdAppend app;
        app.header = gen_.block_header(block, seq);
        app.inline_data = gen_.encode_block(block);
        md_->append(d, MdZoneRole::kGeneral, std::move(app), false,
                    [](Status s) {
                        if (!s.is_ok()) {
                            LOG_WARN("gen counter persist failed: %s",
                                     s.to_string().c_str());
                        }
                    });
    }
}

void
RaiznVolume::finish_zone(uint32_t zone, IoCallback cb)
{
    LZone &lz = zones_[zone];
    if (lz.blocked) {
        lz.waiters.push_back([this, zone, cb = std::move(cb)]() mutable {
            finish_zone(zone, std::move(cb));
        });
        return;
    }
    auto pending = std::make_shared<uint32_t>(0);
    auto first = std::make_shared<Status>();
    auto done = [this, zone, pending, first,
                 cb = std::move(cb)](IoResult r) mutable {
        if (!r.status.is_ok() && first->is_ok())
            *first = r.status;
        if (--*pending > 0)
            return;
        LZone &lz = zones_[zone];
        if (is_open(lz.cond))
            open_zones_--;
        lz.cond = raizn::ZoneState::kFull;
        lz.pbm.mark_persisted_upto(lz.wp - lz.start);
        lz.wp = lz.cap_end;
        lz.buffers.clear();
        IoResult out;
        out.status = *first;
        cb(std::move(out));
    };
    uint64_t fill = lz.wp - lz.start;
    uint64_t in_stripe = fill % layout_->stripe_sectors();
    if (in_stripe > 0) {
        // Seal the open stripe before finishing: its parity slot must
        // hold the XOR of the written prefix (unwritten units read as
        // zeros once the zone is Full) so the parity invariant spans
        // the whole finished zone and a crash mid-finish reconstructs
        // zeros — not garbage XOR'd from an unwritten parity slot.
        uint64_t stripe = fill / layout_->stripe_sectors();
        uint64_t slot = layout_->slot_pba(zone, stripe);
        uint32_t pdev = layout_->parity_dev(zone, stripe);
        bool slot_writable = !dev_unavailable(pdev, zone) &&
            slot >= burned_.burned_end(pdev, zone);
        if (slot_writable) {
            // Relocations can leave the physical wp behind the slot;
            // such stripes are served via the relocation map instead.
            auto zi = devs_[pdev]->zone_info(zone);
            slot_writable = zi.is_ok() && zi.value().wp == slot;
        }
        if (slot_writable) {
            StripeBuffer *buf = get_buffer(zone, stripe);
            std::vector<uint8_t> parity;
            if (store_data_ && buf->stripe_no() == stripe)
                parity = buf->prefix_parity();
            stats_.full_parity_writes++;
            (*pending)++;
            IoRequest req;
            req.op = IoOp::kWrite;
            req.slba = slot;
            req.nsectors = cfg_.su_sectors;
            req.data = std::move(parity);
            req.cause = obs::Cause::kParity;
            dev_submit(pdev, std::move(req),
                       [this, done, pdev](IoResult r) mutable {
                           if (!r.status.is_ok() &&
                               escalate_dev_error(pdev, r.status)) {
                               r.status = Status::ok();
                           }
                           done(std::move(r));
                       });
        }
    }
    uint64_t phys_zone_start =
        static_cast<uint64_t>(zone) * layout_->phys_zone_size();
    for (uint32_t d = 0; d < devs_.size(); ++d) {
        if (static_cast<int>(d) == failed_dev_ || devs_[d]->failed())
            continue;
        (*pending)++;
        IoRequest fin = IoRequest::zone_finish(phys_zone_start);
        fin.cause = obs::Cause::kZoneMgmt;
        dev_submit(d, std::move(fin),
                   [this, done, d](IoResult r) mutable {
                       if (!r.status.is_ok() &&
                           escalate_dev_error(d, r.status)) {
                           r.status = Status::ok();
                       }
                       done(std::move(r));
                   });
    }
    if (*pending == 0) {
        IoResult r;
        r.status = Status(StatusCode::kOffline, "no devices");
        cb(std::move(r));
    }
}

// ---- Read path --------------------------------------------------------

void
RaiznVolume::read(uint64_t lba, uint32_t nsectors, IoCallback cb)
{
    PROF_SCOPE("raizn.read");
    if (nsectors == 0 || lba + nsectors > capacity()) {
        IoResult r;
        r.status = Status(StatusCode::kInvalidArgument, "read out of range");
        loop_->schedule_after(1, [cb = std::move(cb), r]() mutable {
            cb(std::move(r));
        });
        return;
    }
    uint32_t zone = layout_->zone_of(lba);
    LZone &lz = zones_[zone];
    if (lz.blocked) {
        lz.waiters.push_back([this, lba, nsectors,
                              cb = std::move(cb)]() mutable {
            read(lba, nsectors, std::move(cb));
        });
        return;
    }
    stats_.logical_reads++;
    stats_.sectors_read += nsectors;
    if (ledger_ != nullptr) {
        cb = [this, nsectors, inner = std::move(cb)](IoResult r) {
            if (r.status.is_ok())
                ledger_->note_user_read(nsectors);
            inner(std::move(r));
        };
    }
    uint64_t treq = 0;
    if (trace_ != nullptr || read_lat_ != nullptr) {
        uint64_t token = 0;
        if (trace_ != nullptr) {
            treq = trace_->next_request_id();
            token = trace_->begin_span("raizn.read", treq,
                                       obs::kTrackRequest, loop_->now());
        }
        Tick t0 = loop_->now();
        cb = [this, token, t0, inner = std::move(cb)](IoResult r) {
            Tick now = loop_->now();
            if (trace_ != nullptr && token != 0)
                trace_->end_span(token, now);
            if (read_lat_ != nullptr)
                read_lat_->record(now - t0);
            inner(std::move(r));
        };
    }
    if (failed_dev_ >= 0 || lz.has_reloc) {
        read_slow(lba, nsectors, treq, std::move(cb));
    } else {
        read_fast(lba, nsectors, treq, std::move(cb));
    }
}

void
RaiznVolume::read_fast(uint64_t lba, uint32_t nsectors, uint64_t treq,
                       IoCallback cb)
{
    auto extents = layout_->map_range(lba, nsectors);
    struct ReadCtx {
        uint32_t pending = 0;
        bool issued_all = false;
        Status status;
        std::vector<uint8_t> out;
        IoCallback cb;
        bool any_data = false;
    };
    auto ctx = std::make_shared<ReadCtx>();
    ctx->cb = std::move(cb);
    if (store_data_) {
        ctx->out.assign(static_cast<size_t>(nsectors) * kSectorSize, 0);
    }
    auto complete_one = [this, ctx, lba](uint64_t ext_lba, Status s,
                                         const std::vector<uint8_t> &data) {
        if (!s.is_ok() && ctx->status.is_ok())
            ctx->status = s;
        if (!data.empty() && !ctx->out.empty()) {
            size_t off = static_cast<size_t>(ext_lba - lba) * kSectorSize;
            std::memcpy(ctx->out.data() + off, data.data(),
                        std::min(data.size(), ctx->out.size() - off));
            ctx->any_data = true;
        }
        ctx->pending--;
        if (ctx->pending == 0 && ctx->issued_all) {
            IoResult r;
            r.status = ctx->status;
            r.data = std::move(ctx->out);
            auto cb2 = std::move(ctx->cb);
            cb2(std::move(r));
        }
        (void)this;
    };
    for (const auto &ext : extents) {
        ctx->pending++;
        IoRequest rreq = IoRequest::read(ext.pba, ext.nsectors);
        rreq.trace_req = treq;
        rreq.trace_stage = "read.data";
        rreq.cause = obs::Cause::kUserData;
        dev_submit(
            ext.dev, std::move(rreq),
            [this, ctx, ext, complete_one](IoResult r) {
                if (!r.status.is_ok()) {
                    // Retries exhausted or device died under us: if the
                    // health monitor escalates to a device failure, fall
                    // back to parity reconstruction.
                    if (escalate_dev_error(ext.dev, r.status)) {
                        read_extent_degraded(
                            ext, [ext, complete_one](
                                     Status s, std::vector<uint8_t> d) {
                                complete_one(ext.lba, s, d);
                            });
                        return;
                    }
                    complete_one(ext.lba, r.status, r.data);
                    return;
                }
                if (!r.data.empty() &&
                    !crc_range_ok(ext.lba, r.data.data(), ext.nsectors)) {
                    // Silent corruption: the payload disagrees with the
                    // CRC catalog. Serve the read via reconstruction.
                    stats_.crc_mismatches++;
                    read_extent_degraded(
                        ext, [ext, complete_one](Status s,
                                                 std::vector<uint8_t> d) {
                            complete_one(ext.lba, s, d);
                        });
                    return;
                }
                complete_one(ext.lba, r.status, r.data);
            });
    }
    ctx->issued_all = true;
    if (ctx->pending == 0) {
        IoResult r;
        r.status = ctx->status;
        r.data = std::move(ctx->out);
        auto cb2 = std::move(ctx->cb);
        loop_->schedule_after(1, [cb2 = std::move(cb2),
                                  r = std::move(r)]() mutable {
            cb2(std::move(r));
        });
    }
}

void
RaiznVolume::read_slow(uint64_t lba, uint32_t nsectors, uint64_t treq,
                       IoCallback cb)
{
    auto extents = layout_->map_range(lba, nsectors);
    struct ReadCtx {
        uint32_t pending = 0;
        bool issued_all = false;
        Status status;
        std::vector<uint8_t> out;
        IoCallback cb;
    };
    auto ctx = std::make_shared<ReadCtx>();
    ctx->cb = std::move(cb);
    if (store_data_)
        ctx->out.assign(static_cast<size_t>(nsectors) * kSectorSize, 0);

    auto complete_one = [ctx, lba](uint64_t ext_lba, Status s,
                                   const std::vector<uint8_t> &data) {
        if (!s.is_ok() && ctx->status.is_ok())
            ctx->status = s;
        if (!data.empty() && !ctx->out.empty()) {
            size_t off = static_cast<size_t>(ext_lba - lba) * kSectorSize;
            std::memcpy(ctx->out.data() + off, data.data(),
                        std::min(data.size(), ctx->out.size() - off));
        }
        ctx->pending--;
        if (ctx->pending == 0 && ctx->issued_all) {
            IoResult r;
            r.status = ctx->status;
            r.data = std::move(ctx->out);
            auto cb2 = std::move(ctx->cb);
            cb2(std::move(r));
        }
    };

    for (const auto &ext : extents) {
        // Split the extent into runs with uniform relocation state.
        uint64_t cur = ext.lba;
        uint64_t end = ext.lba + ext.nsectors;
        while (cur < end) {
            const Relocation *rel = reloc_.find(cur);
            uint64_t run_end = end;
            if (rel) {
                run_end = std::min(end, rel->lba + rel->nsectors);
            } else {
                // Run extends until the next relocation begins.
                for (uint64_t probe = cur; probe < end; ++probe) {
                    if (reloc_.find(probe)) {
                        run_end = probe;
                        break;
                    }
                }
            }
            uint32_t run_len = static_cast<uint32_t>(run_end - cur);
            PhysExtent sub = ext;
            sub.lba = cur;
            sub.nsectors = run_len;
            sub.pba = ext.pba + (cur - ext.lba);
            ctx->pending++;
            if (rel) {
                // Serve from the in-memory relocation cache (or the
                // metadata zone copy when not cached).
                uint64_t off_in_rel = cur - rel->lba;
                if (!rel->cached.empty()) {
                    std::vector<uint8_t> data(
                        rel->cached.begin() +
                            static_cast<ptrdiff_t>(off_in_rel * kSectorSize),
                        rel->cached.begin() +
                            static_cast<ptrdiff_t>((off_in_rel + run_len) *
                                                   kSectorSize));
                    uint64_t at = cur;
                    loop_->schedule_after(
                        kNsPerUs, [complete_one, at,
                                   data = std::move(data)]() mutable {
                            complete_one(at, Status::ok(), data);
                        });
                } else if (static_cast<int>(rel->dev) != failed_dev_ &&
                           !devs_[rel->dev]->failed()) {
                    uint64_t at = cur;
                    IoRequest rreq =
                        IoRequest::read(rel->md_pba + off_in_rel, run_len);
                    rreq.trace_req = treq;
                    rreq.trace_stage = "read.reloc";
                    rreq.cause = obs::Cause::kRelocation;
                    dev_submit(
                        rel->dev, std::move(rreq),
                        [this, complete_one, at,
                         rdev = rel->dev](IoResult r) {
                            if (!r.status.is_ok())
                                escalate_dev_error(rdev, r.status);
                            complete_one(at, r.status, r.data);
                        });
                } else {
                    uint64_t at = cur;
                    loop_->schedule_after(
                        kNsPerUs, [complete_one, at] {
                            complete_one(
                                at,
                                Status(StatusCode::kIoError,
                                       "relocated data on failed device"),
                                {});
                        });
                }
            } else if (static_cast<int>(sub.dev) == failed_dev_ ||
                       devs_[sub.dev]->failed()) {
                uint64_t at = cur;
                read_extent_degraded(
                    sub, [complete_one, at](Status s,
                                            std::vector<uint8_t> d) {
                        complete_one(at, s, d);
                    });
            } else {
                uint64_t at = cur;
                IoRequest rreq = IoRequest::read(sub.pba, sub.nsectors);
                rreq.trace_req = treq;
                rreq.trace_stage = "read.data";
                rreq.cause = obs::Cause::kUserData;
                dev_submit(
                    sub.dev, std::move(rreq),
                    [this, complete_one, at, sub](IoResult r) {
                        if (!r.status.is_ok()) {
                            if (escalate_dev_error(sub.dev, r.status)) {
                                read_extent_degraded(
                                    sub, [complete_one, at](
                                             Status s,
                                             std::vector<uint8_t> d) {
                                        complete_one(at, s, d);
                                    });
                                return;
                            }
                            complete_one(at, r.status, r.data);
                            return;
                        }
                        if (!r.data.empty() &&
                            !crc_range_ok(at, r.data.data(),
                                          sub.nsectors)) {
                            stats_.crc_mismatches++;
                            read_extent_degraded(
                                sub, [complete_one, at](
                                         Status s, std::vector<uint8_t> d) {
                                    complete_one(at, s, d);
                                });
                            return;
                        }
                        complete_one(at, r.status, r.data);
                    });
            }
            cur = run_end;
        }
    }
    ctx->issued_all = true;
    if (ctx->pending == 0) {
        IoResult r;
        r.status = ctx->status;
        r.data = std::move(ctx->out);
        auto cb2 = std::move(ctx->cb);
        loop_->schedule_after(1, [cb2 = std::move(cb2),
                                  r = std::move(r)]() mutable {
            cb2(std::move(r));
        });
    }
}

void
RaiznVolume::read_extent_degraded(
    const PhysExtent &ext,
    std::function<void(Status, std::vector<uint8_t>)> cb)
{
    stats_.degraded_reads++;
    uint32_t zone = layout_->zone_of(ext.lba);
    uint64_t off = ext.lba - layout_->zone_start_lba(zone);
    uint64_t stripe = off / layout_->stripe_sectors();
    uint64_t in_stripe = off % layout_->stripe_sectors();
    int pos = static_cast<int>(in_stripe / cfg_.su_sectors);
    uint64_t lo = in_stripe % cfg_.su_sectors;
    reconstruct_stripe_unit(zone, stripe, pos, lo, lo + ext.nsectors,
                            std::move(cb));
}

void
RaiznVolume::reconstruct_stripe_unit(
    uint32_t zone, uint64_t stripe, int pos, uint64_t lo, uint64_t hi,
    std::function<void(Status, std::vector<uint8_t>)> cb)
{
    stats_.reconstructed_sectors += hi - lo;
    const uint32_t D = cfg_.data_units();
    const uint32_t su = cfg_.su_sectors;
    LZone &lz = zones_[zone];

    // Fast path: the stripe's data is still in its stripe buffer.
    if (!lz.buffers.empty() && store_data_) {
        StripeBuffer *buf =
            lz.buffers[stripe % cfg_.stripe_buffers_per_zone].get();
        if (buf->stripe_no() == stripe) {
            std::vector<uint8_t> data;
            if (pos >= 0) {
                const uint8_t *unit =
                    buf->unit_data(static_cast<uint32_t>(pos));
                data.assign(unit + lo * kSectorSize,
                            unit + hi * kSectorSize);
            } else {
                std::vector<uint8_t> parity = buf->complete()
                    ? buf->full_parity()
                    : buf->prefix_parity();
                data.assign(parity.begin() +
                                static_cast<ptrdiff_t>(lo * kSectorSize),
                            parity.begin() +
                                static_cast<ptrdiff_t>(hi * kSectorSize));
            }
            loop_->schedule_after(kNsPerUs,
                                  [cb = std::move(cb),
                                   data = std::move(data)]() mutable {
                                      cb(Status::ok(), std::move(data));
                                  });
            return;
        }
    }

    // Which sources must be read: every live data unit of the stripe
    // plus the parity (complete stripe) or the logged partial parity.
    uint64_t zone_fill = lz.wp - lz.start;
    uint64_t stripe_end = (stripe + 1) * layout_->stripe_sectors();
    bool complete = zone_fill >= stripe_end ||
        lz.cond == raizn::ZoneState::kFull;

    struct RecCtx {
        uint32_t pending = 0;
        bool issued_all = false;
        Status status;
        std::vector<uint8_t> acc; ///< XOR accumulator
        std::function<void(Status, std::vector<uint8_t>)> cb;
    };
    auto ctx = std::make_shared<RecCtx>();
    ctx->cb = std::move(cb);
    ctx->acc.assign(static_cast<size_t>(hi - lo) * kSectorSize, 0);

    auto one_done = [this, ctx](Status s, const std::vector<uint8_t> &d) {
        if (!s.is_ok() && ctx->status.is_ok())
            ctx->status = s;
        if (!d.empty() && store_data_)
            xor_bytes(ctx->acc.data(), d.data(),
                      std::min(d.size(), ctx->acc.size()));
        ctx->pending--;
        if (ctx->pending == 0 && ctx->issued_all) {
            auto cb2 = std::move(ctx->cb);
            cb2(ctx->status, std::move(ctx->acc));
        }
    };

    // Surviving data units.
    uint64_t zs = layout_->zone_start_lba(zone);
    uint64_t stripe_base = stripe * layout_->stripe_sectors();
    // When reconstructing a data unit of an incomplete stripe, only the
    // prefix covered by the partial-parity records contributed to the
    // accumulator: after a crash the durable pp log can trail the
    // recovered zone fill, and XOR-ing a unit beyond that coverage
    // would fold in data the parity never saw.
    uint64_t pp_cov = 0;
    if (!complete && pos >= 0) {
        auto it = pp_index_.find(zs_key(zone, stripe));
        if (it != pp_index_.end()) {
            for (const PpRecord &rec : it->second)
                pp_cov = std::max(pp_cov, rec.end_lba - zs);
        }
    }
    for (uint32_t k = 0; k < D; ++k) {
        if (static_cast<int>(k) == pos)
            continue;
        uint32_t dev = layout_->data_dev(zone, stripe, k);
        // How much of unit k exists (zero beyond the zone fill)?
        uint64_t unit_start = stripe_base + static_cast<uint64_t>(k) * su;
        uint64_t fill_limit = pos >= 0 ? std::min(zone_fill, pp_cov)
                                       : zone_fill;
        if (unit_start + lo >= fill_limit && !complete)
            continue; // unit not written yet: contributes zeros
        uint64_t unit_hi = hi;
        if (!complete) {
            uint64_t avail = fill_limit > unit_start
                ? std::min<uint64_t>(su, fill_limit - unit_start)
                : 0;
            unit_hi = std::min(hi, std::max(lo, avail));
            if (unit_hi <= lo)
                continue;
        }
        uint64_t read_lba = zs + unit_start + lo;
        // Relocated? (burned slot redirected to metadata zone)
        const Relocation *rel = reloc_.find(read_lba);
        ctx->pending++;
        uint32_t len = static_cast<uint32_t>(unit_hi - lo);
        if (rel && !rel->cached.empty()) {
            uint64_t off_in_rel = read_lba - rel->lba;
            std::vector<uint8_t> d(
                rel->cached.begin() +
                    static_cast<ptrdiff_t>(off_in_rel * kSectorSize),
                rel->cached.begin() +
                    static_cast<ptrdiff_t>((off_in_rel + len) *
                                           kSectorSize));
            loop_->schedule_after(kNsPerUs,
                                  [one_done, d = std::move(d)] {
                                      one_done(Status::ok(), d);
                                  });
        } else if (static_cast<int>(dev) != failed_dev_ &&
                   !devs_[dev]->failed()) {
            uint64_t pba = layout_->slot_pba(zone, stripe) + lo;
            IoRequest rreq = IoRequest::read(pba, len);
            rreq.trace_stage = "read.reconstruct";
            rreq.cause = obs::Cause::kParity;
            dev_submit(dev, std::move(rreq),
                       [this, one_done, dev](IoResult r) {
                           if (!r.status.is_ok())
                               escalate_dev_error(dev, r.status);
                           one_done(r.status, r.data);
                       });
        } else {
            loop_->schedule_after(kNsPerUs, [one_done] {
                one_done(Status(StatusCode::kIoError,
                                "two devices unavailable"),
                         {});
            });
        }
    }

    if (pos >= 0) {
        // Reconstructing a data unit: fold in the parity.
        if (complete) {
            uint32_t pdev = layout_->parity_dev(zone, stripe);
            auto prel = parity_reloc_.find(zs_key(zone, stripe));
            ctx->pending++;
            if (prel != parity_reloc_.end() &&
                !prel->second.cached.empty()) {
                std::vector<uint8_t> d(
                    prel->second.cached.begin() +
                        static_cast<ptrdiff_t>(lo * kSectorSize),
                    prel->second.cached.begin() +
                        static_cast<ptrdiff_t>(hi * kSectorSize));
                loop_->schedule_after(kNsPerUs,
                                      [one_done, d = std::move(d)] {
                                          one_done(Status::ok(), d);
                                      });
            } else if (static_cast<int>(pdev) != failed_dev_ &&
                       !devs_[pdev]->failed()) {
                uint64_t pba = layout_->slot_pba(zone, stripe) + lo;
                IoRequest preq =
                    IoRequest::read(pba, static_cast<uint32_t>(hi - lo));
                preq.trace_stage = "read.reconstruct";
                preq.cause = obs::Cause::kParity;
                dev_submit(pdev, std::move(preq),
                           [this, one_done, pdev](IoResult r) {
                               if (!r.status.is_ok())
                                   escalate_dev_error(pdev, r.status);
                               one_done(r.status, r.data);
                           });
            } else {
                loop_->schedule_after(kNsPerUs, [one_done] {
                    one_done(Status(StatusCode::kIoError,
                                    "parity unavailable"),
                             {});
                });
            }
        } else {
            // Incomplete stripe: apply the cumulative partial parity
            // from the in-memory index (§5.1).
            auto it = pp_index_.find(zs_key(zone, stripe));
            if (it != pp_index_.end() && store_data_) {
                std::vector<uint8_t> parity(
                    static_cast<size_t>(su) * kSectorSize, 0);
                for (const PpRecord &rec : it->second) {
                    if (rec.delta.empty())
                        continue;
                    xor_bytes(parity.data() +
                                  rec.lo_sector * kSectorSize,
                              rec.delta.data(), rec.delta.size());
                }
                ctx->pending++;
                std::vector<uint8_t> d(
                    parity.begin() +
                        static_cast<ptrdiff_t>(lo * kSectorSize),
                    parity.begin() +
                        static_cast<ptrdiff_t>(hi * kSectorSize));
                loop_->schedule_after(kNsPerUs,
                                      [one_done, d = std::move(d)] {
                                          one_done(Status::ok(), d);
                                      });
            } else if (store_data_) {
                ctx->pending++;
                loop_->schedule_after(kNsPerUs, [one_done] {
                    one_done(Status(StatusCode::kIoError,
                                    "no partial parity for stripe"),
                             {});
                });
            }
        }
    }

    ctx->issued_all = true;
    if (ctx->pending == 0) {
        auto cb2 = std::move(ctx->cb);
        loop_->schedule_after(1, [cb2 = std::move(cb2), ctx]() mutable {
            cb2(ctx->status, std::move(ctx->acc));
        });
    }
}

// ---- Fault management --------------------------------------------------

void
RaiznVolume::mark_device_failed(uint32_t dev)
{
    if (dev >= devs_.size()) {
        LOG_ERROR("mark_device_failed: no device %u", dev);
        return;
    }
    if (failed_dev_ == static_cast<int>(dev))
        return;
    if (failed_dev_ >= 0) {
        LOG_ERROR("second device failure (dev %u): volume is read-only",
                  dev);
        read_only_ = true;
        return;
    }
    LOG_INFO("device %u marked failed; serving degraded", dev);
    failed_dev_ = static_cast<int>(dev);
    if (!devs_[dev]->failed())
        devs_[dev]->fail();
    maybe_start_auto_rebuild(dev);
}

void
RaiznVolume::on_health_event(uint32_t dev, HealthEvent ev)
{
    switch (ev) {
    case HealthEvent::kSuspect:
        stats_.health_suspects++;
        LOG_INFO("device %u health: suspect", dev);
        break;
    case HealthEvent::kFailSlow:
        stats_.fail_slow_detected++;
        LOG_WARN("device %u health: fail-slow (latency EWMA far above "
                 "peers)",
                 dev);
        break;
    case HealthEvent::kFailed:
        // The data path escalates through escalate_dev_error when a
        // command actually fails; this edge catches evidence that
        // accrued without a caller to observe it (e.g. metadata-path
        // retries) so the failover never waits for the next IO.
        if (failed_dev_ != static_cast<int>(dev))
            mark_device_failed(dev);
        break;
    }
}

void
RaiznVolume::promote_spare(uint32_t dev)
{
    promote_spare_base(dev);
    md_->replace_device(dev, devs_[dev]);
    LOG_INFO("hot spare promoted into slot %u", dev);
}

void
RaiznVolume::maybe_start_auto_rebuild(uint32_t dev)
{
    if (!lifecycle_.auto_rebuild || spare_ == nullptr || read_only_ ||
        failed_dev_ != static_cast<int>(dev)) {
        return;
    }
    if (spare_->failed() ||
        spare_->geometry().nzones != devs_[dev]->geometry().nzones) {
        LOG_ERROR("hot spare unusable; staying degraded");
        return;
    }
    stats_.auto_failovers++;
    // Defer off the error path: mark_device_failed can run deep inside
    // a sub-IO completion and the rebuild rewrites metadata
    // synchronously.
    loop_->schedule_after(1, [this, dev, alive = alive_] {
        if (!*alive || failed_dev_ != static_cast<int>(dev))
            return;
        promote_spare(dev);
        auto on_done = lifecycle_.on_rebuild_done;
        rebuild_device(dev, nullptr, [this, dev, on_done,
                                      alive = alive_](Status s) {
            if (!*alive)
                return;
            if (s.is_ok())
                LOG_INFO("automatic rebuild of slot %u complete", dev);
            else
                LOG_ERROR("automatic rebuild of slot %u failed: %s", dev,
                          s.to_string().c_str());
            if (on_done)
                on_done(dev, s);
        });
    });
}

// ---- Metadata GC snapshots ---------------------------------------------

std::vector<MdAppend>
RaiznVolume::snapshot_for_gc(uint32_t dev, MdZoneRole role)
{
    std::vector<MdAppend> out;
    if (role == MdZoneRole::kParityLog) {
        // Partial parity is recomputed by XOR'ing the stripe buffer of
        // each open logical zone (§4.3).
        for (uint32_t z = 0; z < zones_.size(); ++z) {
            LZone &lz = zones_[z];
            if (!is_open(lz.cond) || lz.buffers.empty())
                continue;
            uint64_t fill = lz.wp - lz.start;
            if (fill == 0 || fill % layout_->stripe_sectors() == 0)
                continue;
            uint64_t stripe = fill / layout_->stripe_sectors();
            if (layout_->parity_dev(z, stripe) != dev)
                continue;
            StripeBuffer *buf =
                lz.buffers[stripe % cfg_.stripe_buffers_per_zone].get();
            if (buf->stripe_no() != stripe)
                continue;
            uint64_t in_stripe = fill % layout_->stripe_sectors();
            std::vector<uint8_t> parity = buf->prefix_parity();
            uint64_t sectors =
                std::min<uint64_t>(cfg_.su_sectors, in_stripe);
            parity.resize(sectors * kSectorSize);
            MdAppend app = make_pp_append(
                z, stripe, lz.start + stripe * layout_->stripe_sectors(),
                lz.start + fill, 0, std::move(parity));
            out.push_back(std::move(app));
        }
        return out;
    }

    // General zone: superblock, generation counters, relocations,
    // nothing for reset logs (completed resets need no checkpoint;
    // pending ones re-log themselves).
    Superblock copy = sb_;
    copy.dev_id = dev;
    MdAppend sb_app;
    sb_app.header.type = MdType::kSuperblock;
    sb_app.inline_data = copy.encode();
    out.push_back(std::move(sb_app));

    // An in-flight device rebuild keeps its progress record alive
    // across metadata GC — dropping it would turn a crash during GC
    // into an unresumable rebuild.
    if (rebuilding_ && failed_dev_ >= 0 &&
        dev != static_cast<uint32_t>(failed_dev_)) {
        MdAppend app;
        app.header.type = MdType::kRebuildCheckpoint;
        app.header.generation = gen_update_seq_++;
        app.inline_data = encode_current_rebuild_checkpoint(
            static_cast<uint32_t>(failed_dev_),
            RebuildCheckpointRecord::kInProgress, ~0u);
        out.push_back(std::move(app));
    }

    for (uint32_t b = 0; b < gen_.num_blocks(); ++b) {
        MdAppend app;
        app.header = gen_.block_header(b, gen_update_seq_++);
        app.inline_data = gen_.encode_block(b);
        out.push_back(std::move(app));
    }

    for (const Relocation *rel : reloc_.all()) {
        if (rel->dev != dev)
            continue;
        MdAppend app;
        app.header.type = MdType::kRelocatedSu;
        app.header.start_lba = rel->lba;
        app.header.end_lba = rel->lba + rel->nsectors;
        app.header.generation = gen_.get(layout_->zone_of(rel->lba));
        app.inline_data.assign(8, 0);
        app.payload = rel->cached;
        if (app.payload.empty()) {
            app.payload.assign(
                static_cast<size_t>(rel->nsectors) * kSectorSize, 0);
        }
        out.push_back(std::move(app));
    }
    for (const auto &[key, rel] : parity_reloc_) {
        if (rel.dev != dev)
            continue;
        MdAppend app;
        app.header.type = MdType::kRelocatedSu;
        app.header.start_lba = key;
        app.header.end_lba = key;
        app.header.generation =
            gen_.get(static_cast<uint32_t>(key >> 32));
        app.inline_data.assign(8, 0);
        app.inline_data[4] = 1;
        app.payload = rel.cached;
        if (app.payload.empty()) {
            app.payload.assign(
                static_cast<size_t>(cfg_.su_sectors) * kSectorSize, 0);
        }
        out.push_back(std::move(app));
    }
    return out;
}

bool
RaiznVolume::stripe_displaced(uint32_t zone, uint64_t stripe) const
{
    if (parity_reloc_.count(zs_key(zone, stripe)))
        return true;
    // A burned physical range overlapping the stripe's slot means later
    // rewrites of the slot were redirected into metadata zones.
    uint64_t slot = layout_->slot_pba(zone, stripe);
    for (uint32_t d = 0; d < layout_->num_devices(); ++d) {
        if (slot < burned_.burned_end(d, zone))
            return true;
    }
    uint64_t lo = layout_->zone_start_lba(zone) +
        stripe * layout_->stripe_sectors();
    for (uint64_t lba = lo; lba < lo + layout_->stripe_sectors(); ++lba) {
        if (reloc_.find(lba))
            return true;
    }
    return false;
}

RaiznVolume::MemoryFootprint
RaiznVolume::memory_footprint() const
{
    MemoryFootprint fp{};
    fp.gen_counters = gen_.memory_bytes();
    fp.superblock = kSectorSize;
    for (const LZone &lz : zones_) {
        for (const auto &buf : lz.buffers)
            fp.stripe_buffers += buf->memory_bytes();
        fp.persistence_bitmaps += lz.pbm.memory_bytes();
    }
    // 64 bytes per logical zone descriptor plus 64 per physical zone
    // per device (Table 1).
    fp.zone_descriptors = zones_.size() * 64 +
        static_cast<size_t>(layout_->phys_geometry().nzones) *
            devs_.size() * 64;
    for (const Relocation *rel : reloc_.all())
        fp.relocations += sizeof(Relocation) + rel->cached.size();
    return fp;
}

} // namespace raizn
