#include "raizn/layout.h"

#include <cassert>

#include "common/logging.h"

namespace raizn {

Layout::Layout(const RaiznConfig &cfg, const DeviceGeometry &phys)
    : cfg_(cfg), phys_(phys)
{
    assert(cfg_.valid());
    assert(phys_.zoned);
    // Stripe units must tile physical zones exactly.
    assert(phys_.zone_capacity % cfg_.su_sectors == 0);
    assert(phys_.nzones > cfg_.md_zones_per_device);

    stripe_sectors_ =
        static_cast<uint64_t>(cfg_.data_units()) * cfg_.su_sectors;
    logical_zone_cap_ = cfg_.data_units() * phys_.zone_capacity;
    num_logical_zones_ = phys_.nzones - cfg_.md_zones_per_device;
}

uint32_t
Layout::parity_dev(uint32_t zone, uint64_t stripe) const
{
    // Rotate parity every stripe; offset by zone so that the device
    // holding stripe 0's parity (and the reset log) differs between
    // successive zones (§5.2).
    return static_cast<uint32_t>((zone + stripe) % cfg_.num_devices);
}

uint32_t
Layout::data_dev(uint32_t zone, uint64_t stripe, uint32_t k) const
{
    assert(k < cfg_.data_units());
    // Left-symmetric: data positions follow the parity device.
    return (parity_dev(zone, stripe) + 1 + k) % cfg_.num_devices;
}

int
Layout::data_pos_of_dev(uint32_t zone, uint64_t stripe,
                        uint32_t dev) const
{
    uint32_t p = parity_dev(zone, stripe);
    if (dev == p)
        return -1;
    return static_cast<int>(
        (dev + cfg_.num_devices - p - 1) % cfg_.num_devices);
}

void
Layout::map_sector(uint64_t lba, uint32_t *dev, uint64_t *pba) const
{
    uint32_t zone = zone_of(lba);
    uint64_t off = lba - zone_start_lba(zone);
    uint64_t stripe = off / stripe_sectors_;
    uint64_t in_stripe = off % stripe_sectors_;
    uint32_t k = static_cast<uint32_t>(in_stripe / cfg_.su_sectors);
    uint64_t in_su = in_stripe % cfg_.su_sectors;
    *dev = data_dev(zone, stripe, k);
    *pba = slot_pba(zone, stripe) + in_su;
}

std::vector<PhysExtent>
Layout::map_range(uint64_t lba, uint64_t n) const
{
    std::vector<PhysExtent> out;
    uint64_t cur = lba;
    uint64_t end = lba + n;
    while (cur < end) {
        uint32_t dev;
        uint64_t pba;
        map_sector(cur, &dev, &pba);
        // Extend to the end of this stripe unit (or the request).
        uint64_t in_su = pba % cfg_.su_sectors;
        uint64_t chunk = std::min<uint64_t>(end - cur,
                                            cfg_.su_sectors - in_su);
        // Never cross a logical zone boundary within one extent.
        uint64_t zone_end =
            zone_start_lba(zone_of(cur)) + logical_zone_cap_;
        chunk = std::min(chunk, zone_end - cur);
        out.push_back(PhysExtent{dev, pba, static_cast<uint32_t>(chunk),
                                 cur, false});
        cur += chunk;
    }
    return out;
}

uint64_t
Layout::progress_from_device(uint32_t zone, uint32_t dev,
                             uint64_t written) const
{
    if (written == 0)
        return 0;
    // Last stripe this device has any sectors for.
    uint64_t stripe = (written - 1) / cfg_.su_sectors;
    uint64_t in_slot = written - stripe * cfg_.su_sectors;
    uint64_t base = stripe * stripe_sectors_;
    int pos = data_pos_of_dev(zone, stripe, dev);
    if (pos < 0) {
        // Parity present implies the whole stripe was written.
        return base + stripe_sectors_;
    }
    return base + static_cast<uint64_t>(pos) * cfg_.su_sectors + in_slot;
}

} // namespace raizn
