#include "raizn/gen_counter.h"

#include <cassert>
#include <cstring>

namespace raizn {

GenCounterTable::GenCounterTable(uint32_t num_zones)
{
    reset(num_zones);
}

void
GenCounterTable::reset(uint32_t num_zones)
{
    num_zones_ = num_zones;
    counters_.assign(num_zones, 0);
    applied_seq_.assign(num_blocks(), 0);
}

bool
GenCounterTable::near_overflow() const
{
    for (uint64_t c : counters_) {
        if (c == UINT64_MAX)
            return true;
    }
    return false;
}

std::vector<uint8_t>
GenCounterTable::encode_block(uint32_t block) const
{
    assert(block < num_blocks());
    std::vector<uint8_t> out(kPerBlock * 8, 0);
    uint32_t first = block * kPerBlock;
    uint32_t count = std::min(kPerBlock, num_zones_ - first);
    std::memcpy(out.data(), counters_.data() + first,
                static_cast<size_t>(count) * 8);
    return out;
}

MdHeader
GenCounterTable::block_header(uint32_t block, uint64_t update_seq) const
{
    MdHeader h;
    h.type = MdType::kGenCounters;
    // start/end carry the zone-index range the block covers.
    h.start_lba = static_cast<uint64_t>(block) * kPerBlock;
    h.end_lba = std::min<uint64_t>(num_zones_,
                                   h.start_lba + kPerBlock);
    h.generation = update_seq;
    return h;
}

void
GenCounterTable::apply_entry(const MdEntry &entry)
{
    assert(entry.header.type == MdType::kGenCounters);
    uint32_t first = static_cast<uint32_t>(entry.header.start_lba);
    if (first % kPerBlock != 0 || first >= num_zones_)
        return; // malformed or for a different geometry
    uint32_t block = first / kPerBlock;
    if (entry.header.generation < applied_seq_[block])
        return; // older than what we already applied
    applied_seq_[block] = entry.header.generation;
    uint32_t count = std::min(kPerBlock, num_zones_ - first);
    size_t need = static_cast<size_t>(count) * 8;
    if (entry.inline_data.size() < need)
        return;
    std::memcpy(counters_.data() + first, entry.inline_data.data(), need);
}

size_t
GenCounterTable::memory_bytes() const
{
    // Counters plus the amortized 32-byte header per 508-counter block,
    // matching Table 1's 8.05 bytes per logical zone.
    return counters_.size() * 8 + num_blocks() * 32;
}

} // namespace raizn
