/**
 * @file
 * Per-logical-zone 64-bit generation counters (paper §4.3). A zone's
 * counter increments on every zone reset, and on every mount for empty
 * zones; metadata log entries carrying a stale generation are invalid.
 *
 * Counters persist in blocks of 508 per 4 KiB metadata entry, exactly
 * the in-memory layout; an update persists the whole 4 KiB block.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "raizn/metadata.h"

namespace raizn {

class GenCounterTable
{
  public:
    static constexpr uint32_t kPerBlock = 508;

    explicit GenCounterTable(uint32_t num_zones = 0);

    void reset(uint32_t num_zones);

    uint32_t num_zones() const { return num_zones_; }

    uint64_t get(uint32_t zone) const { return counters_[zone]; }
    void increment(uint32_t zone) { counters_[zone]++; }

    /// Would any counter overflow on the next increment? (§4.3: the
    /// volume degrades to read-only and requires maintenance.)
    bool near_overflow() const;

    uint32_t block_of(uint32_t zone) const { return zone / kPerBlock; }
    uint32_t num_blocks() const
    {
        return (num_zones_ + kPerBlock - 1) / kPerBlock;
    }

    /**
     * Encodes persisted block `block` as metadata inline bytes.
     * `update_seq` orders competing persisted copies at replay and is
     * stored in the header's generation field.
     */
    std::vector<uint8_t> encode_block(uint32_t block) const;
    MdHeader block_header(uint32_t block, uint64_t update_seq) const;

    /**
     * Applies a persisted gen-counter entry if its update sequence is
     * newer than what has been applied for that block.
     */
    void apply_entry(const MdEntry &entry);

    /// Memory footprint in bytes (Table 1: 8.05 B per logical zone).
    size_t memory_bytes() const;

  private:
    uint32_t num_zones_ = 0;
    std::vector<uint64_t> counters_;
    std::vector<uint64_t> applied_seq_; ///< per block, replay ordering
};

} // namespace raizn
