/**
 * @file
 * Device rebuild (paper §4.2, Fig. 12). When a failed device is
 * replaced, RAIZN rebuilds it zone by zone — active (open/closed)
 * zones first, then full zones — reconstructing only LBA ranges that
 * contain user data (everything between each zone's start and its
 * write pointer). Empty zones are skipped entirely, which is why
 * RAIZN's time-to-repair scales with the amount of valid data while
 * mdraid's resync is constant.
 *
 * The rebuild is crash-resumable: a checkpoint record (which logical
 * zones of the target hold durable reconstructed data) is appended to
 * every surviving device's general metadata log — once before the
 * first write touches the target, after every completed zone, and as
 * a terminal "done" record. Mount-time recovery finds the newest
 * record and, for an in-progress one, re-marks the target as the
 * array's absent device so resume_rebuild() can verify and skip the
 * checkpointed zones instead of restarting. The final write of every
 * rebuilt zone carries FUA, which under the sequential zone cache
 * model persists the whole zone, so a checkpointed zone is durable by
 * construction.
 *
 * Rebuild traffic optionally flows through a token-bucket throttle so
 * degraded foreground service keeps a configurable share of the
 * array; see raizn/throttle.h.
 */
#include <algorithm>
#include <cassert>
#include <map>

#include "common/logging.h"
#include "obs/trace.h"
#include "raizn/volume_impl.h"
#include "sim/event_loop.h"

namespace raizn {

namespace {

uint64_t
zs_key(uint32_t zone, uint64_t stripe)
{
    return (static_cast<uint64_t>(zone) << 32) | stripe;
}

struct RebuildJob {
    uint32_t dev = 0;
    std::vector<uint32_t> zone_order;
    size_t zone_i = 0;
    RaiznVolume::ProgressCb progress;
    StatusCb done;
    Status status;

    // Per-zone pipeline state.
    uint32_t zone = 0;
    uint64_t fill = 0; ///< zone offset of the logical write pointer
    uint64_t nstripes = 0;
    uint64_t next_issue = 0;
    uint64_t next_write = 0;
    std::map<uint64_t, std::pair<bool, std::vector<uint8_t>>> ready;
    uint32_t inflight_writes = 0;
    bool zone_active = false;
    /// Last stripe index with a non-empty unit on the target: its
    /// write carries FUA so the whole zone is durable on completion.
    uint64_t last_data_stripe = 0;
    /// A throttle wake-up is already scheduled.
    bool throttle_armed = false;

    // Trace correlation (0 = tracing detached).
    uint64_t trace_req = 0;   ///< request id shared by every sub-span
    uint64_t total_token = 0; ///< open "rebuild.device" span
    uint64_t zone_token = 0;  ///< open "rebuild.zone" span

    static constexpr uint64_t kWindow = 32;
};

} // namespace

Status
RaiznVolume::rewrite_replicated_md(uint32_t dev)
{
    // The replacement's metadata zones start empty: re-bind roles and
    // re-persist the replicated metadata (superblock, generation
    // counters). Non-replicated metadata that lived on the failed
    // device (its parity logs and relocated stripe units) is obsolete.
    Status st = md_->format_device(dev);
    if (!st)
        return st;

    Superblock copy = sb_;
    copy.dev_id = dev;
    MdAppend sb_app;
    sb_app.header.type = MdType::kSuperblock;
    sb_app.inline_data = copy.encode();
    bool done = false;
    Status out;
    md_->append(dev, MdZoneRole::kGeneral, std::move(sb_app), true,
                [&](Status s) {
                    out = s;
                    done = true;
                });
    loop_->run_until_pred([&] { return done; });
    if (!out)
        return out;

    for (uint32_t b = 0; b < gen_.num_blocks(); ++b) {
        MdAppend app;
        app.header = gen_.block_header(b, gen_update_seq_++);
        app.inline_data = gen_.encode_block(b);
        done = false;
        md_->append(dev, MdZoneRole::kGeneral, std::move(app), true,
                    [&](Status s) {
                        out = s;
                        done = true;
                    });
        loop_->run_until_pred([&] { return done; });
        if (!out)
            return out;
    }
    return Status::ok();
}

std::vector<uint8_t>
RaiznVolume::encode_current_rebuild_checkpoint(uint32_t dev,
                                               uint32_t state,
                                               uint32_t cur_zone) const
{
    RebuildCheckpointRecord rec;
    rec.dev = dev;
    rec.state = state;
    rec.cur_zone = cur_zone;
    rec.rebuilt.assign(zones_.size(), false);
    uint32_t done = 0;
    for (uint32_t z = 0; z < zones_.size(); ++z) {
        if (z < zone_rebuilt_.size() && zone_rebuilt_[z]) {
            rec.rebuilt[z] = true;
            done++;
        }
    }
    rec.zones_done = done;
    return encode_rebuild_checkpoint(rec);
}

void
RaiznVolume::persist_rebuild_checkpoint(uint32_t dev, uint32_t state,
                                        uint32_t cur_zone, bool wait)
{
    std::vector<uint8_t> bytes =
        encode_current_rebuild_checkpoint(dev, state, cur_zone);
    uint64_t seq = gen_update_seq_++;
    auto pending = std::make_shared<uint32_t>(0);
    for (uint32_t d = 0; d < devs_.size(); ++d) {
        if (devs_[d]->failed())
            continue;
        // While the rebuild is in progress the target's own log is not
        // yet trustworthy (it may not even be formatted); only the
        // terminal record goes everywhere.
        if (d == dev &&
            state == RebuildCheckpointRecord::kInProgress) {
            continue;
        }
        MdAppend app;
        app.header.type = MdType::kRebuildCheckpoint;
        app.header.generation = seq;
        app.inline_data = bytes;
        (*pending)++;
        md_->append(d, MdZoneRole::kGeneral, std::move(app),
                    /*durable=*/true, [pending](Status s) {
                        if (!s.is_ok()) {
                            LOG_WARN("rebuild checkpoint append failed: "
                                     "%s",
                                     s.to_string().c_str());
                        }
                        (*pending)--;
                    });
    }
    stats_.rebuild_checkpoints++;
    if (trace_ != nullptr) {
        trace_->instant("rebuild.checkpoint", 0, obs::kTrackMetadata,
                        loop_->now());
    }
    if (wait)
        loop_->run_until_pred([pending] { return *pending == 0; });
}

uint64_t
RaiznVolume::expected_phys_fill(uint32_t dev, uint32_t zone) const
{
    const LZone &lz = zones_[zone];
    const uint32_t su = cfg_.su_sectors;
    const uint64_t ss = layout_->stripe_sectors();
    uint64_t fill = lz.wp - lz.start;
    uint64_t fs = fill / ss;
    uint64_t rem = fill % ss;
    // One stripe unit (data or parity) per complete stripe, plus this
    // device's written share of the tail stripe.
    uint64_t e = fs * su;
    if (rem > 0) {
        int pos = layout_->data_pos_of_dev(zone, fs, dev);
        if (pos >= 0) {
            uint64_t start = static_cast<uint64_t>(pos) * su;
            if (rem > start)
                e += std::min<uint64_t>(su, rem - start);
        }
    }
    return e;
}

void
RaiznVolume::relog_tail_pp(uint32_t dev, uint32_t zone)
{
    LZone &lz = zones_[zone];
    uint64_t fill = lz.wp - lz.start;
    uint64_t in_stripe = fill % layout_->stripe_sectors();
    if (in_stripe == 0)
        return;
    uint64_t stripe = fill / layout_->stripe_sectors();
    if (layout_->parity_dev(zone, stripe) != dev)
        return;
    auto it = pp_index_.find(zs_key(zone, stripe));
    if (it == pp_index_.end() || it->second.empty())
        return;
    std::vector<uint8_t> parity(
        static_cast<size_t>(cfg_.su_sectors) * kSectorSize, 0);
    uint64_t end = 0;
    for (const PpRecord &rec : it->second) {
        end = std::max(end, rec.end_lba);
        if (!rec.delta.empty()) {
            xor_bytes(parity.data() + rec.lo_sector * kSectorSize,
                      rec.delta.data(), rec.delta.size());
        }
    }
    uint64_t sectors = std::min<uint64_t>(cfg_.su_sectors, in_stripe);
    parity.resize(sectors * kSectorSize);
    MdAppend app = make_pp_append(
        zone, stripe, lz.start + stripe * layout_->stripe_sectors(), end,
        0, std::move(parity));
    // Durable: this is the only copy — the original record died with
    // the old device, and a crash between here and the next flush must
    // not lose the tail stripe's reconstructability.
    md_->append(dev, MdZoneRole::kParityLog, std::move(app), true,
                [](Status s) {
                    if (!s.is_ok()) {
                        LOG_WARN("tail pp re-log failed: %s",
                                 s.to_string().c_str());
                    }
                });
}

void
RaiznVolume::rebuild_device(uint32_t dev, ProgressCb progress,
                            StatusCb done)
{
    rebuild_device_internal(dev, /*resume=*/false, std::move(progress),
                            std::move(done));
}

void
RaiznVolume::resume_rebuild(ProgressCb progress, StatusCb done)
{
    if (pending_rebuild_dev_ < 0) {
        loop_->schedule_after(1, [done = std::move(done)] {
            done(Status(StatusCode::kInvalidArgument,
                        "no checkpointed rebuild to resume"));
        });
        return;
    }
    uint32_t dev = static_cast<uint32_t>(pending_rebuild_dev_);
    pending_rebuild_dev_ = -1;
    rebuild_device_internal(dev, /*resume=*/true, std::move(progress),
                            std::move(done));
}

void
RaiznVolume::rebuild_device_internal(uint32_t dev, bool resume,
                                     ProgressCb progress, StatusCb done)
{
    if (failed_dev_ != static_cast<int>(dev) || devs_[dev]->failed()) {
        loop_->schedule_after(1, [done = std::move(done)] {
            done(Status(StatusCode::kInvalidArgument,
                        "device not failed+replaced"));
        });
        return;
    }

    rebuilding_ = true;
    zone_rebuilt_.assign(zones_.size(), false);
    for (uint32_t z = 0; z < zones_.size(); ++z) {
        if (zones_[z].cond == raizn::ZoneState::kEmpty)
            zone_rebuilt_[z] = true;
    }

    if (resume) {
        // Trust a checkpointed zone only when the target's physical
        // write pointer matches the fill the recovered logical zone
        // implies; everything else is reset and rebuilt from parity.
        for (uint32_t z = 0; z < zones_.size(); ++z) {
            if (zone_rebuilt_[z])
                continue;
            bool verified = false;
            if (z < ckpt_rebuilt_.size() && ckpt_rebuilt_[z]) {
                auto zi = devs_[dev]->zone_info(z);
                if (zi.is_ok() &&
                    zi.value().written() == expected_phys_fill(dev, z)) {
                    verified = true;
                }
            }
            if (verified) {
                zone_rebuilt_[z] = true;
                stats_.rebuild_zones_resumed++;
                continue;
            }
            auto zi = devs_[dev]->zone_info(z);
            if (zi.is_ok() && zi.value().written() > 0) {
                uint64_t phys =
                    static_cast<uint64_t>(z) * layout_->phys_zone_size();
                IoRequest rst = IoRequest::zone_reset(phys);
                rst.cause = obs::Cause::kRebuild;
                auto r = dev_sync(dev, std::move(rst));
                if (!r.status.is_ok()) {
                    Status st = r.status;
                    loop_->schedule_after(
                        1, [done = std::move(done), st] { done(st); });
                    rebuilding_ = false;
                    return;
                }
            }
        }
        ckpt_rebuilt_.clear();
    }

    // The checkpoint must be durable on the survivors before anything
    // is written to the target: a crash in between would otherwise
    // leave a half-written device that the next mount cannot tell from
    // a healthy one.
    persist_rebuild_checkpoint(dev, RebuildCheckpointRecord::kInProgress,
                               ~0u, /*wait=*/true);

    Status st = rewrite_replicated_md(dev);
    if (!st) {
        rebuilding_ = false;
        loop_->schedule_after(1, [done = std::move(done), st] {
            done(st);
        });
        return;
    }

    if (resume) {
        // Re-formatting the target's metadata zones wiped whatever the
        // pre-crash rebuild had logged there; regenerate it from the
        // recovered in-memory state.
        for (const Relocation *rel : reloc_.all()) {
            if (rel->dev != dev)
                continue;
            MdAppend app;
            app.header.type = MdType::kRelocatedSu;
            app.header.start_lba = rel->lba;
            app.header.end_lba = rel->lba + rel->nsectors;
            app.header.generation = gen_.get(layout_->zone_of(rel->lba));
            app.inline_data.assign(8, 0);
            app.payload = rel->cached;
            if (app.payload.empty()) {
                app.payload.assign(
                    static_cast<size_t>(rel->nsectors) * kSectorSize, 0);
            }
            md_->append(dev, MdZoneRole::kGeneral, std::move(app), true,
                        [](Status) {});
        }
        for (uint32_t z = 0; z < zones_.size(); ++z) {
            if (zone_rebuilt_[z] &&
                zones_[z].cond != raizn::ZoneState::kEmpty) {
                relog_tail_pp(dev, z);
            }
        }
    }

    // Throttled rebuild: rate-limit reconstruction traffic so degraded
    // foreground service keeps headroom. Baseline latency is the
    // foreground write EWMA observed before the rebuild load starts.
    throttle_.reset();
    if (lifecycle_.throttle.rate_sectors_per_sec > 0) {
        throttle_ = std::make_unique<RebuildThrottle>(
            loop_, lifecycle_.throttle);
        throttle_->set_baseline_latency(fg_write_ewma_ns_);
    }

    auto job = std::make_shared<RebuildJob>();
    job->dev = dev;
    job->progress = std::move(progress);
    job->done = std::move(done);
    if (trace_ != nullptr) {
        job->trace_req = trace_->next_request_id();
        job->total_token = trace_->begin_span(
            "rebuild.device", job->trace_req, obs::kTrackMetadata,
            loop_->now());
    }

    // Active (open/closed) zones first, then full zones; empty and
    // resume-verified zones need no work (§4.2).
    for (uint32_t z = 0; z < zones_.size(); ++z) {
        if (is_active(zones_[z].cond) && !zone_rebuilt_[z])
            job->zone_order.push_back(z);
    }
    for (uint32_t z = 0; z < zones_.size(); ++z) {
        if (zones_[z].cond == raizn::ZoneState::kFull && !zone_rebuilt_[z])
            job->zone_order.push_back(z);
    }

    // Kick off the per-zone pipeline.
    auto pump = std::make_shared<
        std::function<void(std::shared_ptr<RebuildJob>)>>();
    auto finished = std::make_shared<bool>(false);
    auto finish_job = [this, finished](std::shared_ptr<RebuildJob> job) {
        if (*finished)
            return;
        *finished = true;
        rebuilding_ = false;
        failed_dev_ = -1;
        throttle_.reset();
        // Relocations and burned ranges on the rebuilt device are
        // folded into the reconstructed data.
        std::vector<uint64_t> drop;
        for (const Relocation *rel : reloc_.all()) {
            if (rel->dev == job->dev)
                drop.push_back(rel->lba);
        }
        for (uint64_t lba : drop)
            reloc_.drop_zone(lba, lba + 1);
        for (uint32_t z = 0; z < zones_.size(); ++z)
            burned_.clear_dev_zone(job->dev, z);
        persist_rebuild_checkpoint(job->dev,
                                   RebuildCheckpointRecord::kDone, ~0u,
                                   /*wait=*/false);
        if (trace_ != nullptr && job->total_token != 0)
            trace_->end_span(job->total_token, loop_->now());
        auto done = std::move(job->done);
        done(job->status);
    };

    auto complete_zone = [this, pump,
                          finish_job](std::shared_ptr<RebuildJob> job) {
        LZone &lz = zones_[job->zone];
        if (trace_ != nullptr && job->zone_token != 0) {
            trace_->end_span(job->zone_token, loop_->now());
            job->zone_token = 0;
        }
        // Re-log partial parity for the tail stripe if this device is
        // its parity holder (the old device's parity log is gone).
        relog_tail_pp(job->dev, job->zone);
        zone_rebuilt_[job->zone] = true;
        stats_.zones_rebuilt++;
        persist_rebuild_checkpoint(job->dev,
                                   RebuildCheckpointRecord::kInProgress,
                                   ~0u, /*wait=*/false);
        lz.blocked = false;
        drain_waiters(job->zone);
        if (job->progress)
            job->progress(job->zone_i + 1, job->zone_order.size());
        job->zone_i++;
        job->zone_active = false;
        (*pump)(job);
    };

    *pump = [this, pump, complete_zone,
             finish_job](std::shared_ptr<RebuildJob> job) {
        if (!job->zone_active) {
            if (job->zone_i >= job->zone_order.size()) {
                finish_job(job);
                // Break the pump's self-reference cycle; any late
                // completion lands on a no-op.
                *pump = [](std::shared_ptr<RebuildJob>) {};
                return;
            }
            // Begin the next zone.
            job->zone = job->zone_order[job->zone_i];
            LZone &lz = zones_[job->zone];
            lz.blocked = true; // writes queue while this zone rebuilds
            job->fill = lz.wp - lz.start;
            job->nstripes =
                div_ceil(job->fill, layout_->stripe_sectors());
            job->next_issue = 0;
            job->next_write = 0;
            job->ready.clear();
            job->inflight_writes = 0;
            job->zone_active = true;
            if (trace_ != nullptr) {
                job->zone_token = trace_->begin_span(
                    "rebuild.zone", job->trace_req, obs::kTrackMetadata,
                    loop_->now());
            }
        }

        const uint32_t su = cfg_.su_sectors;
        const uint64_t ss = layout_->stripe_sectors();

        // Sectors this device holds in stripe s, given the zone fill.
        auto unit_len = [&](uint64_t s) -> uint64_t {
            int pos = layout_->data_pos_of_dev(job->zone, s, job->dev);
            if (pos < 0) // parity: present only for complete stripes
                return (s + 1) * ss <= job->fill ? su : 0;
            uint64_t start = s * ss + static_cast<uint64_t>(pos) * su;
            if (job->fill <= start)
                return 0;
            return std::min<uint64_t>(su, job->fill - start);
        };

        if (job->next_issue == 0 && job->next_write == 0) {
            // Zone start: find the last stripe this device contributes
            // to, so its write can carry FUA (persisting the zone).
            job->last_data_stripe = 0;
            for (uint64_t s = 0; s < job->nstripes; ++s) {
                if (unit_len(s) > 0)
                    job->last_data_stripe = s;
            }
        }

        // Issue reconstructions within the window, paced by the
        // throttle when one is configured.
        while (job->next_issue < job->nstripes &&
               job->next_issue < job->next_write + RebuildJob::kWindow) {
            uint64_t s = job->next_issue;
            uint64_t len = unit_len(s);
            if (len == 0) {
                job->next_issue++;
                job->ready[s] = {true, {}};
                continue;
            }
            if (throttle_ != nullptr && !throttle_->try_acquire(len)) {
                stats_.rebuild_throttle_stalls++;
                if (!job->throttle_armed) {
                    job->throttle_armed = true;
                    loop_->schedule_after(
                        throttle_->ns_until(len),
                        [pump, job, alive = alive_] {
                            if (!*alive)
                                return;
                            job->throttle_armed = false;
                            (*pump)(job);
                        });
                }
                break;
            }
            job->next_issue++;
            int pos = layout_->data_pos_of_dev(job->zone, s, job->dev);
            job->ready[s] = {false, {}};
            uint64_t rtok = trace_ != nullptr
                ? trace_->begin_span("rebuild.reconstruct",
                                     job->trace_req, obs::kTrackMetadata,
                                     loop_->now())
                : 0;
            reconstruct_stripe_unit(
                job->zone, s, pos, 0, len,
                [this, job, s, pump, rtok](Status st,
                                           std::vector<uint8_t> data) {
                    if (trace_ != nullptr && rtok != 0)
                        trace_->end_span(rtok, loop_->now());
                    if (!st.is_ok() && job->status.is_ok())
                        job->status = st;
                    job->ready[s] = {true, std::move(data)};
                    (*pump)(job);
                });
        }

        // Submit ready writes in strict stripe order (sequential zone).
        while (job->next_write < job->nstripes &&
               job->ready.count(job->next_write) &&
               job->ready[job->next_write].first) {
            uint64_t s = job->next_write++;
            auto content = std::move(job->ready[s].second);
            job->ready.erase(s);
            uint64_t len = unit_len(s);
            if (len == 0)
                continue;
            IoRequest req;
            req.op = IoOp::kWrite;
            req.cause = obs::Cause::kRebuild;
            req.slba = layout_->slot_pba(job->zone, s);
            req.nsectors = static_cast<uint32_t>(len);
            // The zone's final write is FUA: under the sequential zone
            // cache model it persists everything written before it, so
            // the checkpoint that follows never over-claims.
            req.fua = s == job->last_data_stripe;
            if (store_data_) {
                content.resize(static_cast<size_t>(len) * kSectorSize);
                req.data = std::move(content);
            }
            job->inflight_writes++;
            stats_.stripes_rebuilt++;
            // Target writes bypass dev_submit (no retry against a
            // fresh replacement), so the device-track span is explicit.
            uint64_t wtok = trace_ != nullptr
                ? trace_->begin_span("rebuild.write", job->trace_req,
                                     obs::kTrackDevBase + job->dev,
                                     loop_->now())
                : 0;
            devs_[job->dev]->submit(
                std::move(req), [this, job, pump, wtok](IoResult r) {
                    if (trace_ != nullptr && wtok != 0)
                        trace_->end_span(wtok, loop_->now());
                    if (!r.status.is_ok() && job->status.is_ok())
                        job->status = r.status;
                    job->inflight_writes--;
                    (*pump)(job);
                });
        }

        if (job->next_write >= job->nstripes &&
            job->inflight_writes == 0 && job->zone_active) {
            complete_zone(job);
        }
    };

    loop_->schedule_after(1, [pump, job] { (*pump)(job); });
}

} // namespace raizn
