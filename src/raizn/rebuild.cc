/**
 * @file
 * Device rebuild (paper §4.2, Fig. 12). When a failed device is
 * replaced, RAIZN rebuilds it zone by zone — active (open/closed)
 * zones first, then full zones — reconstructing only LBA ranges that
 * contain user data (everything between each zone's start and its
 * write pointer). Empty zones are skipped entirely, which is why
 * RAIZN's time-to-repair scales with the amount of valid data while
 * mdraid's resync is constant.
 */
#include <algorithm>
#include <cassert>
#include <map>

#include "common/logging.h"
#include "raizn/volume_impl.h"
#include "sim/event_loop.h"

namespace raizn {

namespace {

uint64_t
zs_key(uint32_t zone, uint64_t stripe)
{
    return (static_cast<uint64_t>(zone) << 32) | stripe;
}

struct RebuildJob {
    uint32_t dev = 0;
    std::vector<uint32_t> zone_order;
    size_t zone_i = 0;
    RaiznVolume::ProgressCb progress;
    StatusCb done;
    Status status;

    // Per-zone pipeline state.
    uint32_t zone = 0;
    uint64_t fill = 0; ///< zone offset of the logical write pointer
    uint64_t nstripes = 0;
    uint64_t next_issue = 0;
    uint64_t next_write = 0;
    std::map<uint64_t, std::pair<bool, std::vector<uint8_t>>> ready;
    uint32_t inflight_writes = 0;
    bool zone_active = false;

    static constexpr uint64_t kWindow = 32;
};

} // namespace

Status
RaiznVolume::rewrite_replicated_md(uint32_t dev)
{
    // The replacement's metadata zones start empty: re-bind roles and
    // re-persist the replicated metadata (superblock, generation
    // counters). Non-replicated metadata that lived on the failed
    // device (its parity logs and relocated stripe units) is obsolete.
    Status st = md_->format_device(dev);
    if (!st)
        return st;

    Superblock copy = sb_;
    copy.dev_id = dev;
    MdAppend sb_app;
    sb_app.header.type = MdType::kSuperblock;
    sb_app.inline_data = copy.encode();
    bool done = false;
    Status out;
    md_->append(dev, MdZoneRole::kGeneral, std::move(sb_app), true,
                [&](Status s) {
                    out = s;
                    done = true;
                });
    loop_->run_until_pred([&] { return done; });
    if (!out)
        return out;

    for (uint32_t b = 0; b < gen_.num_blocks(); ++b) {
        MdAppend app;
        app.header = gen_.block_header(b, gen_update_seq_++);
        app.inline_data = gen_.encode_block(b);
        done = false;
        md_->append(dev, MdZoneRole::kGeneral, std::move(app), true,
                    [&](Status s) {
                        out = s;
                        done = true;
                    });
        loop_->run_until_pred([&] { return done; });
        if (!out)
            return out;
    }
    return Status::ok();
}

void
RaiznVolume::rebuild_device(uint32_t dev, ProgressCb progress,
                            StatusCb done)
{
    if (failed_dev_ != static_cast<int>(dev) || devs_[dev]->failed()) {
        loop_->schedule_after(1, [done = std::move(done)] {
            done(Status(StatusCode::kInvalidArgument,
                        "device not failed+replaced"));
        });
        return;
    }

    Status st = rewrite_replicated_md(dev);
    if (!st) {
        loop_->schedule_after(1, [done = std::move(done), st] {
            done(st);
        });
        return;
    }

    rebuilding_ = true;
    zone_rebuilt_.assign(zones_.size(), false);

    auto job = std::make_shared<RebuildJob>();
    job->dev = dev;
    job->progress = std::move(progress);
    job->done = std::move(done);

    // Active (open/closed) zones first, then full zones; empty zones
    // need no work (§4.2).
    for (uint32_t z = 0; z < zones_.size(); ++z) {
        if (is_active(zones_[z].cond))
            job->zone_order.push_back(z);
        else if (zones_[z].cond == raizn::ZoneState::kEmpty)
            zone_rebuilt_[z] = true;
    }
    for (uint32_t z = 0; z < zones_.size(); ++z) {
        if (zones_[z].cond == raizn::ZoneState::kFull)
            job->zone_order.push_back(z);
    }

    // Kick off the per-zone pipeline.
    std::function<void(std::shared_ptr<RebuildJob>)> start_zone;
    auto pump = std::make_shared<
        std::function<void(std::shared_ptr<RebuildJob>)>>();
    auto finished = std::make_shared<bool>(false);
    auto finish_job = [this, finished](std::shared_ptr<RebuildJob> job) {
        if (*finished)
            return;
        *finished = true;
        rebuilding_ = false;
        failed_dev_ = -1;
        // Relocations and burned ranges on the rebuilt device are
        // folded into the reconstructed data.
        std::vector<uint64_t> drop;
        for (const Relocation *rel : reloc_.all()) {
            if (rel->dev == job->dev)
                drop.push_back(rel->lba);
        }
        for (uint64_t lba : drop)
            reloc_.drop_zone(lba, lba + 1);
        for (uint32_t z = 0; z < zones_.size(); ++z)
            burned_.clear_dev_zone(job->dev, z);
        auto done = std::move(job->done);
        done(job->status);
    };

    auto complete_zone = [this, pump,
                          finish_job](std::shared_ptr<RebuildJob> job) {
        LZone &lz = zones_[job->zone];
        // Re-log partial parity for the tail stripe if this device is
        // its parity holder (the old device's parity log is gone).
        uint64_t in_stripe = job->fill % layout_->stripe_sectors();
        if (in_stripe != 0) {
            uint64_t stripe = job->fill / layout_->stripe_sectors();
            if (layout_->parity_dev(job->zone, stripe) == job->dev) {
                auto it = pp_index_.find(zs_key(job->zone, stripe));
                if (it != pp_index_.end() && !it->second.empty()) {
                    std::vector<uint8_t> parity(
                        static_cast<size_t>(cfg_.su_sectors) * kSectorSize,
                        0);
                    uint64_t end = 0;
                    for (const PpRecord &rec : it->second) {
                        end = std::max(end, rec.end_lba);
                        if (!rec.delta.empty()) {
                            xor_bytes(parity.data() +
                                          rec.lo_sector * kSectorSize,
                                      rec.delta.data(), rec.delta.size());
                        }
                    }
                    uint64_t sectors = std::min<uint64_t>(
                        cfg_.su_sectors, in_stripe);
                    parity.resize(sectors * kSectorSize);
                    MdAppend app = make_pp_append(
                        job->zone, stripe,
                        lz.start + stripe * layout_->stripe_sectors(),
                        end, 0, std::move(parity));
                    md_->append(job->dev, MdZoneRole::kParityLog,
                                std::move(app), false, [](Status) {});
                }
            }
        }
        zone_rebuilt_[job->zone] = true;
        stats_.zones_rebuilt++;
        lz.blocked = false;
        drain_waiters(job->zone);
        if (job->progress)
            job->progress(job->zone_i + 1, job->zone_order.size());
        job->zone_i++;
        job->zone_active = false;
        (*pump)(job);
    };

    *pump = [this, pump, complete_zone,
             finish_job](std::shared_ptr<RebuildJob> job) {
        if (!job->zone_active) {
            if (job->zone_i >= job->zone_order.size()) {
                finish_job(job);
                // Break the pump's self-reference cycle; any late
                // completion lands on a no-op.
                *pump = [](std::shared_ptr<RebuildJob>) {};
                return;
            }
            // Begin the next zone.
            job->zone = job->zone_order[job->zone_i];
            LZone &lz = zones_[job->zone];
            lz.blocked = true; // writes queue while this zone rebuilds
            job->fill = lz.wp - lz.start;
            job->nstripes =
                div_ceil(job->fill, layout_->stripe_sectors());
            job->next_issue = 0;
            job->next_write = 0;
            job->ready.clear();
            job->inflight_writes = 0;
            job->zone_active = true;
        }

        const uint32_t su = cfg_.su_sectors;
        const uint64_t ss = layout_->stripe_sectors();

        // Sectors this device holds in stripe s, given the zone fill.
        auto unit_len = [&](uint64_t s) -> uint64_t {
            int pos = layout_->data_pos_of_dev(job->zone, s, job->dev);
            if (pos < 0) // parity: present only for complete stripes
                return (s + 1) * ss <= job->fill ? su : 0;
            uint64_t start = s * ss + static_cast<uint64_t>(pos) * su;
            if (job->fill <= start)
                return 0;
            return std::min<uint64_t>(su, job->fill - start);
        };

        // Issue reconstructions within the window.
        while (job->next_issue < job->nstripes &&
               job->next_issue < job->next_write + RebuildJob::kWindow) {
            uint64_t s = job->next_issue++;
            uint64_t len = unit_len(s);
            if (len == 0) {
                job->ready[s] = {true, {}};
                continue;
            }
            int pos = layout_->data_pos_of_dev(job->zone, s, job->dev);
            job->ready[s] = {false, {}};
            reconstruct_stripe_unit(
                job->zone, s, pos, 0, len,
                [this, job, s, pump](Status st,
                                     std::vector<uint8_t> data) {
                    if (!st.is_ok() && job->status.is_ok())
                        job->status = st;
                    job->ready[s] = {true, std::move(data)};
                    (*pump)(job);
                });
        }

        // Submit ready writes in strict stripe order (sequential zone).
        while (job->next_write < job->nstripes &&
               job->ready.count(job->next_write) &&
               job->ready[job->next_write].first) {
            uint64_t s = job->next_write++;
            auto content = std::move(job->ready[s].second);
            job->ready.erase(s);
            uint64_t len = unit_len(s);
            if (len == 0)
                continue;
            IoRequest req;
            req.op = IoOp::kWrite;
            req.slba = layout_->slot_pba(job->zone, s);
            req.nsectors = static_cast<uint32_t>(len);
            if (store_data_) {
                content.resize(static_cast<size_t>(len) * kSectorSize);
                req.data = std::move(content);
            }
            job->inflight_writes++;
            stats_.stripes_rebuilt++;
            devs_[job->dev]->submit(
                std::move(req), [this, job, pump](IoResult r) {
                    if (!r.status.is_ok() && job->status.is_ok())
                        job->status = r.status;
                    job->inflight_writes--;
                    (*pump)(job);
                });
        }

        if (job->next_write >= job->nstripes &&
            job->inflight_writes == 0 && job->zone_active) {
            complete_zone(job);
        }
    };

    loop_->schedule_after(1, [pump, job] { (*pump)(job); });
}

} // namespace raizn
