/**
 * @file
 * Metadata zone manager (paper §4.3). Each device reserves >= 3
 * physical zones for metadata: one bound to the general log role
 * (superblock, generation counters, reset logs, relocated stripe
 * units), one to the partial-parity log role (isolated because parity
 * logs are written on every non-stripe-aligned write), and the rest as
 * swap zones for metadata garbage collection.
 *
 * All metadata is written with zone appends. When an active log zone
 * fills, the manager designates a swap zone as the new log target,
 * writes a role record with a higher epoch, checkpoints the currently
 * valid in-memory metadata (entries flagged as checkpointed), and
 * resets the old zone back into the swap pool (Fig. 4).
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fault/retry.h"
#include "raizn/layout.h"
#include "raizn/metadata.h"
#include "zns/block_device.h"

namespace raizn {

class EventLoop;

/// One metadata entry ready to append.
struct MdAppend {
    MdHeader header;
    std::vector<uint8_t> inline_data;
    std::vector<uint8_t> payload;
};

using StatusCb = std::function<void(Status)>;

class MdManager
{
  public:
    /// Returns the checkpoint image of all currently valid in-memory
    /// metadata for (dev, role); invoked during metadata GC.
    using SnapshotProvider =
        std::function<std::vector<MdAppend>(uint32_t dev, MdZoneRole role)>;

    MdManager(EventLoop *loop, const Layout *layout,
              std::vector<BlockDevice *> devs);

    void set_snapshot_provider(SnapshotProvider provider)
    {
        snapshot_ = std::move(provider);
    }

    /// Routes metadata appends through the volume's retry layer so
    /// transient device errors are absorbed like any other sub-IO.
    /// Pass nullptr to submit directly. Non-owning; the caller keeps
    /// the retrier alive for the manager's lifetime.
    void set_retrier(IoRetrier *retrier) { retrier_ = retrier; }

    /// mkfs path: resets all metadata zones and binds initial roles.
    Status format();

    /// Spare promotion: swaps the device pointer for slot `dev` (the
    /// manager keeps its own device table). The caller formats the
    /// replacement's metadata zones separately via format_device().
    void replace_device(uint32_t dev, BlockDevice *replacement)
    {
        devs_[dev] = replacement;
    }

    /// Re-initializes one (replaced) device's metadata zones.
    Status format_device(uint32_t dev);

    /**
     * Appends one metadata entry to the `role` log of device `dev`.
     * `durable` forces FUA so the entry survives power loss at
     * completion (zone reset logs, rebuild WAL). Triggers metadata GC
     * transparently when the active zone is out of space.
     */
    void append(uint32_t dev, MdZoneRole role, MdAppend entry,
                bool durable, StatusCb cb);

    /// Per-device replay log recovered by scan().
    struct DeviceLog {
        bool alive = false;
        /// Entries in replay order (older role epoch first, then append
        /// order). Role records are filtered out.
        std::vector<MdEntry> entries;
    };

    /**
     * Mount path: reads every metadata zone on every live device,
     * restores role bindings and append positions, and returns the
     * replayable entries per device.
     */
    Result<std::vector<DeviceLog>> scan();

    /// Device LBA the next append to (dev, role) will land at
    /// (metadata-zone relative position is wp tracking only).
    uint64_t active_zone_wp(uint32_t dev, MdZoneRole role) const;

    /**
     * Lends an empty swap metadata zone (its index) to the caller for
     * a physical-zone rebuild; return it with return_swap once reset.
     */
    Result<uint32_t> borrow_swap(uint32_t dev);
    void return_swap(uint32_t dev, uint32_t idx);

    uint64_t gc_runs() const { return gc_runs_; }

    /**
     * Byte-provenance of one metadata append, from its log role and
     * entry type: partial parity → pp_log, relocated stripe units →
     * relocation, rebuild WAL/checkpoints → rebuild, everything else
     * (superblock, generation counters, reset WAL, role records) →
     * wal_md. Central so every append site agrees on the taxonomy.
     */
    static obs::Cause cause_of(MdZoneRole role, MdType type);
    /// Sectors of metadata appended since construction (per device).
    uint64_t md_sectors_written(uint32_t dev) const
    {
        return dev_state_[dev].sectors_written;
    }

    /// Frees in-memory space accounting after host data no longer
    /// references the zone (entries themselves are reclaimed by GC).
    const Layout &layout() const { return *layout_; }

  private:
    static constexpr uint32_t kNumRoles = 2; // general, parity log

    struct DevState {
        /// md-zone index (0-based) bound to each role; -1 = unbound.
        int role_zone[kNumRoles] = {-1, -1};
        uint64_t next_epoch = 1;
        std::vector<uint64_t> wp; ///< tracked sectors used per md zone
        std::vector<uint32_t> swap; ///< free md-zone indices
        uint64_t sectors_written = 0;
    };

    uint64_t md_zone_cap() const { return layout_->phys_zone_cap(); }
    uint64_t md_zone_pba(uint32_t idx) const
    {
        return layout_->md_zone_start(idx);
    }

    void do_append(uint32_t dev, uint32_t zone_idx,
                   std::vector<uint8_t> bytes, bool durable,
                   obs::Cause cause, StatusCb cb);
    /// Switches (dev, role) to a fresh swap zone and checkpoints.
    void gc_switch(uint32_t dev, MdZoneRole role, StatusCb done);
    std::vector<uint8_t> encode(const MdAppend &entry) const;

    /// Submits via the retrier when one is attached.
    void md_submit(uint32_t dev, IoRequest req, IoCallback cb);

    EventLoop *loop_;
    const Layout *layout_;
    std::vector<BlockDevice *> devs_;
    std::vector<DevState> dev_state_;
    SnapshotProvider snapshot_;
    IoRetrier *retrier_ = nullptr;
    uint64_t gc_runs_ = 0;
};

} // namespace raizn
