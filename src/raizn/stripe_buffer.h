/**
 * @file
 * Stripe buffers and parity math (paper §5.1). A stripe buffer caches
 * the data of one in-flight stripe so parity (full or partial) can be
 * computed without disk reads. Each open logical zone owns a fixed set
 * of buffers (8 by default), reused round-robin by stripe number.
 *
 * Buffers also operate in "shadow" mode when the underlying devices run
 * timing-only (DataMode::kNone): fill accounting is tracked, parity
 * buffers are produced zero-filled, and no bytes are copied.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/units.h"

namespace raizn {

/// XOR `n` bytes of `src` into `dst`.
void xor_bytes(uint8_t *dst, const uint8_t *src, size_t n);

/**
 * Affected parity byte range [lo, hi) for a write covering stripe
 * offsets [s, e) (in sectors, within one stripe of D stripe units of
 * `su` sectors each). Single-SU writes touch only their intra-SU
 * slice; multi-SU writes touch the whole unit width.
 */
void parity_byte_range(uint64_t s, uint64_t e, uint32_t su_sectors,
                       uint64_t *lo, uint64_t *hi);

class StripeBuffer
{
  public:
    StripeBuffer(uint32_t data_units, uint32_t su_sectors, bool shadow);

    /// Rebinds the buffer to a new stripe, clearing contents.
    void assign(uint64_t stripe_no);

    uint64_t stripe_no() const { return stripe_no_; }
    bool bound() const { return stripe_no_ != UINT64_MAX; }

    /// Copies `data` into the stripe at sector offset `off` (within the
    /// stripe). Writes are sequential, so fills extend the prefix.
    void fill(uint64_t off, const uint8_t *data, uint64_t nsectors);

    /// Sectors filled from the start of the stripe.
    uint64_t filled() const { return filled_; }
    bool complete() const { return filled_ == stripe_sectors_; }

    /// Full parity of the complete stripe: XOR of all D stripe units.
    std::vector<uint8_t> full_parity() const;

    /**
     * Parity delta contributed by the data at stripe offsets [s, e):
     * the bytes a partial-parity log entry must record. Returned buffer
     * covers sectors [lo_sector, hi_sector) of the parity unit, as
     * given by parity_byte_range rounded outward to sectors.
     */
    std::vector<uint8_t> parity_delta(uint64_t s, uint64_t e,
                                      uint64_t *lo_sector,
                                      uint64_t *hi_sector) const;

    /**
     * Cumulative partial parity of the filled prefix: XOR of all data
     * present so far, zero-extended. Used by the metadata GC checkpoint
     * and by degraded-mount stripe reconstruction.
     */
    std::vector<uint8_t> prefix_parity() const;

    /// Raw access to a stripe-unit's cached data (read-from-buffer path).
    const uint8_t *unit_data(uint32_t k) const;

    uint64_t stripe_sectors() const { return stripe_sectors_; }
    uint32_t su_sectors() const { return su_sectors_; }
    size_t memory_bytes() const { return data_.size(); }

    /// Overwrites buffer contents directly (degraded-mount rebuild).
    void restore(uint64_t stripe_no, std::vector<uint8_t> bytes,
                 uint64_t filled_sectors);
    const std::vector<uint8_t> &bytes() const { return data_; }

  private:
    uint32_t data_units_;
    uint32_t su_sectors_;
    uint64_t stripe_sectors_;
    bool shadow_;
    uint64_t stripe_no_ = UINT64_MAX;
    uint64_t filled_ = 0;
    std::vector<uint8_t> data_; ///< D * su sectors (empty in shadow mode)
};

} // namespace raizn
