/**
 * @file
 * RaiznVolume: the paper's contribution. A logical host-managed zoned
 * device striped with distributed parity (RAID-5-like) across ZNS
 * devices, tolerating one device failure and power loss at any point.
 *
 * Public surface mirrors the kernel-block-layer view of a zoned device:
 * read / sequential write (with FUA and PREFLUSH) / flush / zone reset /
 * zone finish / report zones — plus management entry points for device
 * failure and rebuild.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "array/zoned_array.h"
#include "fault/health.h"
#include "fault/retry.h"
#include "raizn/config.h"
#include "raizn/gen_counter.h"
#include "raizn/layout.h"
#include "raizn/md_manager.h"
#include "raizn/persist_bitmap.h"
#include "raizn/relocation.h"
#include "raizn/stripe_buffer.h"
#include "raizn/superblock.h"
#include "raizn/throttle.h"
#include "zns/block_device.h"

namespace raizn {

/// Counters exposed for tests, benches, and Table 1 accounting.
struct VolumeStats {
    uint64_t logical_reads = 0;
    uint64_t logical_writes = 0;
    uint64_t sectors_read = 0;
    uint64_t sectors_written = 0;
    uint64_t full_parity_writes = 0;
    uint64_t partial_parity_logs = 0;
    uint64_t partial_parity_sectors = 0;
    uint64_t relocated_writes = 0;
    uint64_t degraded_reads = 0;
    uint64_t reconstructed_sectors = 0;
    uint64_t zone_resets = 0;
    uint64_t flushes = 0;
    uint64_t fua_writes = 0;
    uint64_t fua_dependency_flushes = 0;
    uint64_t holes_repaired_in_place = 0;
    uint64_t holes_remapped = 0;
    uint64_t partial_zone_resets_completed = 0;
    uint64_t stripe_buffer_recycles = 0;
    uint64_t zones_rebuilt = 0;
    uint64_t stripes_rebuilt = 0;
    uint64_t phys_zone_rebuilds = 0;
    // Error-path counters (transient-fault resilience layer).
    uint64_t io_retries = 0; ///< device commands retried after backoff
    uint64_t io_timeouts = 0; ///< watchdog deadline expirations
    uint64_t dev_errors = 0; ///< persistent (post-retry) device errors
    uint64_t crc_mismatches = 0; ///< reads failing checksum validation
    uint64_t read_repairs = 0; ///< units/parity repaired from redundancy
    uint64_t scrubbed_stripes = 0; ///< stripes verified by the scrubber
    // Failure-lifecycle counters (automatic failover + rebuild).
    uint64_t health_suspects = 0; ///< suspect edges from the monitor
    uint64_t fail_slow_detected = 0; ///< advisory fail-slow verdicts
    uint64_t auto_failovers = 0; ///< health-driven failovers started
    uint64_t spares_promoted = 0; ///< hot spares swapped into a slot
    uint64_t rebuild_checkpoints = 0; ///< durable progress records
    uint64_t rebuild_zones_resumed = 0; ///< zones skipped after a crash
    uint64_t rebuild_throttle_stalls = 0; ///< rebuild IOs delayed

    /**
     * Enumerates every counter as (name, field). Single source of
     * truth for the names: dump() and the metrics-registry linkage
     * (obs::link_stats) both iterate this list.
     */
    template <typename Fn>
    void
    for_each_field(Fn fn) const
    {
        fn("logical_reads", logical_reads);
        fn("logical_writes", logical_writes);
        fn("sectors_read", sectors_read);
        fn("sectors_written", sectors_written);
        fn("full_parity_writes", full_parity_writes);
        fn("partial_parity_logs", partial_parity_logs);
        fn("partial_parity_sectors", partial_parity_sectors);
        fn("relocated_writes", relocated_writes);
        fn("degraded_reads", degraded_reads);
        fn("reconstructed_sectors", reconstructed_sectors);
        fn("zone_resets", zone_resets);
        fn("flushes", flushes);
        fn("fua_writes", fua_writes);
        fn("fua_dependency_flushes", fua_dependency_flushes);
        fn("holes_repaired_in_place", holes_repaired_in_place);
        fn("holes_remapped", holes_remapped);
        fn("partial_zone_resets_completed", partial_zone_resets_completed);
        fn("stripe_buffer_recycles", stripe_buffer_recycles);
        fn("zones_rebuilt", zones_rebuilt);
        fn("stripes_rebuilt", stripes_rebuilt);
        fn("phys_zone_rebuilds", phys_zone_rebuilds);
        fn("io_retries", io_retries);
        fn("io_timeouts", io_timeouts);
        fn("dev_errors", dev_errors);
        fn("crc_mismatches", crc_mismatches);
        fn("read_repairs", read_repairs);
        fn("scrubbed_stripes", scrubbed_stripes);
        fn("health_suspects", health_suspects);
        fn("fail_slow_detected", fail_slow_detected);
        fn("auto_failovers", auto_failovers);
        fn("spares_promoted", spares_promoted);
        fn("rebuild_checkpoints", rebuild_checkpoints);
        fn("rebuild_zones_resumed", rebuild_zones_resumed);
        fn("rebuild_throttle_stalls", rebuild_throttle_stalls);
    }

    /// One-line "key=value" rendering of every counter, for benches.
    std::string dump() const;
};

class RaiznVolume : public ZonedArray
{
  public:
    /**
     * mkfs: formats `devs` (resets metadata zones, writes role records
     * and superblocks) and returns a mounted volume. All devices must
     * share a zoned geometry compatible with `cfg`.
     */
    static Result<std::unique_ptr<RaiznVolume>>
    create(EventLoop *loop, std::vector<BlockDevice *> devs,
           const RaiznConfig &cfg);

    /**
     * Mounts an existing array: replays metadata logs, reconciles
     * write pointers, repairs stripe holes, completes interrupted zone
     * resets, and reconstructs in-memory state (§4.3, §5). Tolerates
     * one failed device (mounts degraded).
     */
    static Result<std::unique_ptr<RaiznVolume>>
    mount(EventLoop *loop, std::vector<BlockDevice *> devs);

    ~RaiznVolume() override;

    // ---- Geometry --------------------------------------------------
    const Layout &layout() const { return *layout_; }
    RaidMode mode() const override { return RaidMode::kRaizn; }
    uint32_t fault_tolerance() const override { return 1; }
    uint32_t num_zones() const override
    {
        return layout_->num_logical_zones();
    }
    uint64_t zone_capacity() const override
    {
        return layout_->logical_zone_cap();
    }
    uint64_t capacity() const override
    {
        return layout_->logical_capacity();
    }
    /// Open-zone budget exposed to the host: the device limit minus the
    /// metadata zones RAIZN itself keeps open.
    uint32_t max_open_zones() const { return max_open_zones_; }

    /// Report Zones for the logical device.
    Result<ZoneInfo> zone_info(uint32_t zone) const override;

    // ---- Data path -------------------------------------------------
    void read(uint64_t lba, uint32_t nsectors, IoCallback cb) override;

    /// Sequential zone write; `data` empty = timing-only.
    void write(uint64_t lba, std::vector<uint8_t> data, WriteFlags flags,
               IoCallback cb) override;
    void
    write_len(uint64_t lba, uint32_t nsectors, WriteFlags flags,
              IoCallback cb) override
    {
        write_internal(lba, {}, nsectors, flags, std::move(cb));
    }

    void flush(IoCallback cb) override;
    void reset_zone(uint32_t zone, IoCallback cb) override;
    void finish_zone(uint32_t zone, IoCallback cb) override;

    // ---- Failure lifecycle -----------------------------------------
    /**
     * Policy for the automatic failure lifecycle: when the health
     * monitor fails a device and a hot spare is attached, the volume
     * promotes the spare and rebuilds it in the background with no
     * caller intervention (healthy -> suspect -> failed -> rebuilding
     * -> healthy). Throttle settings bound the rebuild's impact on
     * degraded foreground service.
     */
    struct LifecycleConfig {
        bool auto_rebuild = true; ///< promote + rebuild on failure
        RebuildThrottleConfig throttle;
        /// Fired when an automatic rebuild finishes (or fails).
        std::function<void(uint32_t dev, Status s)> on_rebuild_done;
    };
    void set_lifecycle(LifecycleConfig lc) { lifecycle_ = std::move(lc); }
    const LifecycleConfig &lifecycle() const { return lifecycle_; }

    /**
     * True when mount found a durable rebuild checkpoint with state
     * in-progress: the crash interrupted a rebuild and the caller (or
     * an auto-rebuild lifecycle) should call resume_rebuild().
     */
    bool has_pending_rebuild() const { return pending_rebuild_dev_ >= 0; }
    int pending_rebuild_device() const { return pending_rebuild_dev_; }

    /**
     * Resumes a checkpointed rebuild after a crash: zones the
     * checkpoint marks complete are verified against the replacement
     * device's write pointers and skipped; everything else is rebuilt.
     */
    void resume_rebuild(ProgressCb progress, StatusCb done);

    /// Live rebuild rate view (null when no throttled rebuild runs).
    const RebuildThrottle *rebuild_throttle() const
    {
        return throttle_.get();
    }

    // ---- Scrubbing -------------------------------------------------
    /**
     * Synchronously scrubs every eligible stripe (complete, at its
     * home placement, all devices available): reads data + parity,
     * verifies the parity equation and per-sector checksums, and
     * read-repairs corrupted units from redundancy (repairs land in
     * the metadata zones like any relocated stripe unit). Drives the
     * event loop until the pass completes.
     */
    Status scrub_all(ScrubReport *report = nullptr) override;

    /**
     * Starts the background scrubber: one stripe every `interval`
     * ticks, `on_pass` fired after each complete pass. Opt-in — never
     * started automatically (benches drain the loop synchronously).
     */
    void start_scrubber(Tick interval,
                        std::function<void(const ScrubReport &)> on_pass =
                            nullptr);
    void stop_scrubber();
    bool scrubber_running() const { return scrub_running_; }

    /// Marks a device failed: reads reconstruct, writes omit it.
    void mark_device_failed(uint32_t dev) override;
    /// -1 when the array is healthy.
    int failed_device() const override { return failed_dev_; }
    bool read_only() const { return read_only_; }

    /**
     * Rebuilds a replaced device zone by zone, active zones first,
     * copying only LBA ranges that contain user data (§4.2). The
     * device must have been replaced (fresh) before calling. Writes
     * arriving during rebuild are served degraded for zones not yet
     * rebuilt.
     */
    void rebuild_device(uint32_t dev, ProgressCb progress,
                        StatusCb done) override;

    // ---- Observability ---------------------------------------------
    // attach_observability (inherited) links every VolumeStats counter
    // under "raizn.*", per-device DeviceStats + latency histograms
    // under "zns.dev<i>.*", and health counters under
    // "raizn.health.dev<i>.*". Trace spans: logical request on track 0,
    // metadata-manager appends on track 1, device commands on track
    // 2+i.

    // Point-in-time backlog views (timeline gauges).
    /// Stripe buffers currently held across open logical zones.
    size_t open_stripe_buffers() const;
    /// Partial-parity log records indexed for degraded reconstruction.
    size_t pp_backlog() const;
    /// Relocated data + parity extents currently tracked.
    size_t reloc_backlog() const;

    /**
     * Registers gauge-refresh probes on `tl`: stripe-buffer / pp-log /
     * relocation backlog occupancy and the open-zone count under
     * "raizn.gauge.*", plus a per-device zone-state census
     * ("zns.dev<i>.zones_{empty,open,closed,full}") for members that
     * are ZNS devices. Requires attach_observability(reg, ...) first
     * (the gauges live in that registry); call before tl->start().
     */
    void install_timeline(obs::Timeline *tl) override;

    // ---- Introspection ---------------------------------------------
    const VolumeStats &stats() const { return stats_; }
    const GenCounterTable &gen_counters() const { return gen_; }
    MdManager &md_manager() { return *md_; }

    /**
     * True when any sector of stripe `stripe` in logical zone `zone`
     * lives away from its home physical location (relocated data or
     * parity, or a burned range from hole rollback). Read-only; used by
     * the crash-point oracle to scope raw parity-XOR checks to stripes
     * stored at their home placement.
     */
    bool stripe_displaced(uint32_t zone, uint64_t stripe) const;

    /**
     * Deliberate bugs for oracle regression tests: each fault disables
     * one crash-consistency mechanism so tests can prove the checker
     * catches its absence. Never set outside tests.
     */
    enum class DebugFault {
        kNone,
        /// Skip the durable partial-parity log append (§5.1) while
        /// keeping the in-memory index — crashes while degraded lose
        /// the ability to reconstruct open stripes.
        kSkipPartialParityLog,
    };
    void set_debug_fault(DebugFault f) { debug_fault_ = f; }

    /// Memory footprint per metadata type (Table 1 reproduction).
    struct MemoryFootprint {
        size_t gen_counters;
        size_t superblock;
        size_t stripe_buffers;
        size_t persistence_bitmaps;
        size_t zone_descriptors;
        size_t relocations;
    };
    MemoryFootprint memory_footprint() const;

  private:
    struct LZone; ///< logical zone descriptor (name avoids ZoneState enum)
    struct WriteCtx;

    RaiznVolume(EventLoop *loop, std::vector<BlockDevice *> devs,
                const RaiznConfig &cfg);

    // volume.cc
    void write_internal(uint64_t lba, std::vector<uint8_t> data,
                        uint32_t nsectors, WriteFlags flags, IoCallback cb);
    void process_write(uint64_t lba, std::vector<uint8_t> data,
                       uint32_t nsectors, WriteFlags flags, IoCallback cb);
    void submit_data_subio(uint32_t dev, uint32_t zone, uint64_t pba,
                           std::vector<uint8_t> data, uint32_t nsectors,
                           uint64_t lba, bool fua,
                           std::shared_ptr<WriteCtx> ctx);
    void submit_parity_subio(uint32_t zone, uint64_t stripe,
                             std::vector<uint8_t> parity, bool fua,
                             std::shared_ptr<WriteCtx> ctx);
    void log_partial_parity(uint32_t zone, uint64_t stripe,
                            uint64_t start_lba, uint64_t end_lba,
                            std::vector<uint8_t> delta, uint64_t lo_sector,
                            std::shared_ptr<WriteCtx> ctx);
    void relocate_write(uint32_t dev, uint32_t zone, uint64_t lba,
                        std::vector<uint8_t> data, uint32_t nsectors,
                        std::shared_ptr<WriteCtx> ctx);
    void subio_done(std::shared_ptr<WriteCtx> ctx, Status status);
    void finish_write(std::shared_ptr<WriteCtx> ctx);
    void start_fua_flush_phase(std::shared_ptr<WriteCtx> ctx);
    StripeBuffer *get_buffer(uint32_t zone, uint64_t stripe);
    void open_zone_state(uint32_t zone);
    void drain_waiters(uint32_t zone);
    void persist_gen_block(uint32_t block);

    // read path (volume.cc); `treq` is the trace correlation id
    // (0 when tracing is detached).
    void read_fast(uint64_t lba, uint32_t nsectors, uint64_t treq,
                   IoCallback cb);
    void read_slow(uint64_t lba, uint32_t nsectors, uint64_t treq,
                   IoCallback cb);
    void read_extent_degraded(const PhysExtent &ext,
                              std::function<void(Status,
                                                 std::vector<uint8_t>)> cb);
    void reconstruct_stripe_unit(
        uint32_t zone, uint64_t stripe, int pos, uint64_t lo, uint64_t hi,
        std::function<void(Status, std::vector<uint8_t>)> cb);

    // recovery.cc
    struct RecoveryCtx;
    Status run_recovery();
    Status replay_md_logs(RecoveryCtx &rc,
                          const std::vector<MdManager::DeviceLog> &logs);
    Status recover_logical_zone(uint32_t zone, RecoveryCtx &rc);
    Status complete_partial_reset(uint32_t zone);
    Status repair_or_remap(uint32_t zone, std::vector<uint64_t> written);
    Status rebuild_tail_buffer(uint32_t zone);
    Status rebuild_physical_zone(uint32_t dev, uint32_t zone,
                                 const ZoneRebuildRecord *resume);
    Status persist_superblocks();

    // rebuild.cc
    Status rebuild_zone_sync(uint32_t dev, uint32_t zone);
    Status rewrite_replicated_md(uint32_t dev);
    void rebuild_device_internal(uint32_t dev, bool resume,
                                 ProgressCb progress, StatusCb done);
    /// Durably logs rebuild progress to every surviving device. `wait`
    /// drives the loop until the record is durable (rebuild start: the
    /// record must exist before the first write touches the target).
    void persist_rebuild_checkpoint(uint32_t dev, uint32_t state,
                                    uint32_t cur_zone, bool wait);
    /// Current checkpoint image (metadata-GC snapshot + persist).
    std::vector<uint8_t> encode_current_rebuild_checkpoint(
        uint32_t dev, uint32_t state, uint32_t cur_zone) const;
    /// Re-logs the folded tail-stripe partial parity of `zone` to the
    /// rebuild target when the target is its parity holder.
    void relog_tail_pp(uint32_t dev, uint32_t zone);
    /// Expected physical fill (sectors) of `dev`'s copy of `zone` for
    /// the current logical fill — the resume-verification yardstick.
    uint64_t expected_phys_fill(uint32_t dev, uint32_t zone) const;
    /// Promotes the attached spare into slot `dev` (device table, md
    /// manager, health history). The old pointer is abandoned.
    void promote_spare(uint32_t dev);
    /// Health-monitor escalation edges land here.
    void on_health_event(uint32_t dev, HealthEvent ev) override;
    void maybe_start_auto_rebuild(uint32_t dev);

    // scrub.cc
    void scrub_stripe(uint32_t zone, uint64_t stripe, ScrubReport *rep,
                      std::function<void()> done);
    void scrub_repair_unit(uint32_t zone, uint64_t stripe, uint32_t k,
                           std::vector<uint8_t> data);
    void scrub_repair_parity(uint32_t zone, uint64_t stripe,
                             std::vector<uint8_t> parity);
    std::vector<std::pair<uint32_t, uint64_t>> scrub_candidates() const;
    void arm_scrubber();
    void scrubber_step();

    // shared helpers
    /// True when (dev) cannot serve IO for `zone`: physically failed,
    /// or marked failed and the zone has not been rebuilt yet.
    bool dev_unavailable(uint32_t dev, uint32_t zone) const;
    /// True when `dev`'s data zones must be treated as absent during
    /// recovery: physically failed, or it is the rebuild target (a
    /// promoted spare is live but holds no trusted data yet).
    bool dev_down(uint32_t dev) const
    {
        return devs_[dev]->failed() || static_cast<int>(dev) == failed_dev_;
    }
    MdAppend make_pp_append(uint32_t zone, uint64_t stripe,
                            uint64_t start_lba, uint64_t end_lba,
                            uint64_t lo_sector,
                            std::vector<uint8_t> delta) const;
    std::vector<MdAppend> snapshot_for_gc(uint32_t dev, MdZoneRole role);
    bool data_mode_store() const { return store_data_; }
    IoResult dev_sync(uint32_t dev, IoRequest req);
    // dev_submit / escalate_dev_error are inherited from ZonedArray:
    // the data path routes through the retrier/watchdog; recovery,
    // rebuild, and metadata appends keep their direct paths.
    /// Records per-sector CRCs for a logical write (`off` is the zone-
    /// relative sector offset); empty data invalidates the range.
    void note_written_crcs(uint32_t zone, uint64_t off,
                           const std::vector<uint8_t> &data,
                           uint32_t nsectors);
    /// Verifies `nsectors` of payload read at logical `lba` against
    /// the CRC catalog; sectors without a recorded CRC pass.
    bool crc_range_ok(uint64_t lba, const uint8_t *bytes,
                      uint32_t nsectors) const;

    // ZonedArray hooks.
    std::string metric_prefix() const override { return "raizn"; }
    /// Historical namespace: per-device metrics predate the interface.
    std::string dev_metric_prefix() const override { return "zns"; }
    void link_stats_hook(obs::MetricsRegistry &reg) override;
    void on_resilience_changed() override;

    RaiznConfig cfg_;
    std::unique_ptr<Layout> layout_;
    std::unique_ptr<MdManager> md_;
    Superblock sb_;
    GenCounterTable gen_;
    uint64_t gen_update_seq_ = 1;

    std::vector<LZone> zones_;
    RelocationMap reloc_;
    BurnedRanges burned_;
    /// Parity stripe units displaced into metadata zones, keyed by
    /// (zone << 32 | stripe).
    std::unordered_map<uint64_t, Relocation> parity_reloc_;

    /// In-memory index of partial parity log entries per (zone,stripe):
    /// needed for degraded reconstruction of incomplete stripes.
    struct PpRecord {
        uint64_t start_lba;
        uint64_t end_lba;
        uint64_t lo_sector;
        std::vector<uint8_t> delta; ///< cached (empty in timing mode)
    };
    std::map<uint64_t, std::vector<PpRecord>> pp_index_;

    VolumeStats stats_;
    uint32_t max_open_zones_ = 0;
    uint32_t open_zones_ = 0;
    int failed_dev_ = -1;
    bool read_only_ = false;
    bool store_data_ = true;
    DebugFault debug_fault_ = DebugFault::kNone;
    bool rebuilding_ = false;
    std::vector<bool> zone_rebuilt_; ///< during rebuild_device

    // Failure lifecycle. (The spare and the resilience/observability
    // layers live in ZonedArray.)
    LifecycleConfig lifecycle_;
    std::unique_ptr<RebuildThrottle> throttle_;
    int pending_rebuild_dev_ = -1; ///< from a mount-time checkpoint
    std::vector<bool> ckpt_rebuilt_; ///< checkpointed zone bitmap
    double fg_write_ewma_ns_ = 0.0; ///< foreground write latency EWMA

    // Background scrubber state.
    bool scrub_running_ = false;
    Tick scrub_interval_ = 0;
    std::function<void(const ScrubReport &)> scrub_cb_;
    ScrubReport scrub_pass_;
    std::vector<std::pair<uint32_t, uint64_t>> scrub_queue_;
    size_t scrub_cursor_ = 0;
};

} // namespace raizn
