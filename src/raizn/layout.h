/**
 * @file
 * Arithmetic address translation between the RAIZN logical address
 * space and per-device physical addresses (paper §4.1).
 *
 * Data zones on each device are grouped into logical zones (logical
 * zone N = physical zone N on every device). Within a logical zone,
 * data is striped in stripe-unit granularity across the D data
 * positions of each stripe; the parity position rotates every stripe
 * (and is offset per zone so parity and reset-log load spread evenly).
 * The last `md_zones_per_device` physical zones of each device are
 * reserved for metadata.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "raizn/config.h"
#include "zns/block_device.h"

namespace raizn {

/// One physical extent of a logical range (read/write sub-IO target).
struct PhysExtent {
    uint32_t dev; ///< device index
    uint64_t pba; ///< physical start LBA on that device
    uint32_t nsectors;
    uint64_t lba; ///< logical start LBA this extent maps
    bool parity = false; ///< true for parity sub-IOs (write path only)
};

class Layout
{
  public:
    Layout(const RaiznConfig &cfg, const DeviceGeometry &phys);

    uint32_t num_devices() const { return cfg_.num_devices; }
    /// D: data stripe units per stripe.
    uint32_t data_units() const { return cfg_.data_units(); }
    uint32_t su() const { return cfg_.su_sectors; }
    /// Data sectors per stripe (D * su).
    uint64_t stripe_sectors() const { return stripe_sectors_; }

    uint32_t num_logical_zones() const { return num_logical_zones_; }
    /// Sectors per logical zone (D * physical zone capacity).
    uint64_t logical_zone_cap() const { return logical_zone_cap_; }
    /// Total logical capacity in sectors.
    uint64_t logical_capacity() const
    {
        return logical_zone_cap_ * num_logical_zones_;
    }
    uint64_t phys_zone_size() const { return phys_.zone_size; }
    uint64_t phys_zone_cap() const { return phys_.zone_capacity; }
    /// Stripes per logical zone.
    uint64_t stripes_per_zone() const
    {
        return phys_.zone_capacity / cfg_.su_sectors;
    }

    uint32_t zone_of(uint64_t lba) const
    {
        return static_cast<uint32_t>(lba / logical_zone_cap_);
    }
    uint64_t zone_start_lba(uint32_t zone) const
    {
        return static_cast<uint64_t>(zone) * logical_zone_cap_;
    }
    /// Stripe index within the zone for a logical zone offset.
    uint64_t stripe_of_offset(uint64_t zone_off) const
    {
        return zone_off / stripe_sectors_;
    }

    /// Device holding the parity stripe unit of (zone, stripe).
    uint32_t parity_dev(uint32_t zone, uint64_t stripe) const;
    /// Device holding data stripe-unit position k of (zone, stripe).
    uint32_t data_dev(uint32_t zone, uint64_t stripe, uint32_t k) const;
    /// Data stripe-unit position occupied by `dev`, or -1 if parity.
    int data_pos_of_dev(uint32_t zone, uint64_t stripe,
                        uint32_t dev) const;

    /// Physical start LBA of stripe `stripe`'s per-device slot in zone.
    uint64_t
    slot_pba(uint32_t zone, uint64_t stripe) const
    {
        return static_cast<uint64_t>(zone) * phys_.zone_size +
            stripe * cfg_.su_sectors;
    }

    /// Maps logical [lba, lba+n) to data-device physical extents.
    std::vector<PhysExtent> map_range(uint64_t lba, uint64_t n) const;

    /// Physical LBA on the data device for a single logical sector.
    void map_sector(uint64_t lba, uint32_t *dev, uint64_t *pba) const;

    /**
     * Logical zone offset implied by a device having `written` sectors
     * in its physical zone for this logical zone, assuming no holes:
     * used as the per-device progress estimate during recovery.
     */
    uint64_t progress_from_device(uint32_t zone, uint32_t dev,
                                  uint64_t written) const;

    /// First physical zone index reserved for metadata.
    uint32_t first_md_zone() const { return num_logical_zones_; }
    uint32_t md_zones() const { return cfg_.md_zones_per_device; }
    /// Physical start LBA of metadata zone `i` (0-based).
    uint64_t
    md_zone_start(uint32_t i) const
    {
        return static_cast<uint64_t>(num_logical_zones_ + i) *
            phys_.zone_size;
    }

    const RaiznConfig &config() const { return cfg_; }
    const DeviceGeometry &phys_geometry() const { return phys_; }

  private:
    RaiznConfig cfg_;
    DeviceGeometry phys_;
    uint64_t stripe_sectors_;
    uint64_t logical_zone_cap_;
    uint32_t num_logical_zones_;
};

} // namespace raizn
