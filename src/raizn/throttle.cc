#include "raizn/throttle.h"

#include <algorithm>

#include "sim/event_loop.h"

namespace raizn {

namespace {
constexpr double kSecNs = 1e9;
constexpr double kEwmaAlpha = 0.2;
} // namespace

RebuildThrottle::RebuildThrottle(EventLoop *loop, RebuildThrottleConfig cfg)
    : loop_(loop), cfg_(cfg), rate_(cfg.rate_sectors_per_sec),
      tokens_(static_cast<double>(cfg.burst_sectors)),
      last_refill_ns_(loop->now())
{
}

void
RebuildThrottle::refill()
{
    uint64_t now = loop_->now();
    if (now <= last_refill_ns_)
        return;
    double earned = static_cast<double>(now - last_refill_ns_) *
        static_cast<double>(rate_) / kSecNs;
    tokens_ = std::min(tokens_ + earned,
                       static_cast<double>(cfg_.burst_sectors));
    last_refill_ns_ = now;
}

bool
RebuildThrottle::try_acquire(uint64_t sectors)
{
    if (!enabled())
        return true;
    refill();
    if (tokens_ + 1e-9 < static_cast<double>(sectors)) {
        stalls_++;
        return false;
    }
    tokens_ -= static_cast<double>(sectors);
    return true;
}

uint64_t
RebuildThrottle::ns_until(uint64_t sectors) const
{
    if (!enabled())
        return 0;
    double deficit = static_cast<double>(sectors) - tokens_;
    if (deficit <= 0)
        return 0;
    return static_cast<uint64_t>(deficit * kSecNs /
                                 static_cast<double>(rate_)) + 1;
}

void
RebuildThrottle::observe_foreground_latency(uint64_t ns)
{
    ewma_ns_ = ewma_ns_ == 0.0
        ? static_cast<double>(ns)
        : kEwmaAlpha * static_cast<double>(ns) +
            (1.0 - kEwmaAlpha) * ewma_ns_;
    if (!cfg_.adaptive || !enabled() || baseline_ns_ <= 0.0)
        return;
    if (ewma_ns_ > cfg_.backoff_factor * baseline_ns_) {
        uint64_t next = std::max(rate_ / 2, cfg_.min_rate_sectors_per_sec);
        if (next < rate_) {
            rate_ = next;
            backoffs_++;
        }
    } else if (ewma_ns_ < cfg_.restore_factor * baseline_ns_ &&
               rate_ < cfg_.rate_sectors_per_sec) {
        rate_ = std::min(rate_ * 2, cfg_.rate_sectors_per_sec);
    }
}

} // namespace raizn
