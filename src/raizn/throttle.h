/**
 * @file
 * Token-bucket rate limiter for online rebuild/resync traffic
 * (Fig. 11/12 interplay). Rebuild I/O competes with degraded
 * foreground service; the bucket caps rebuild sector throughput, and
 * the adaptive mode additionally halves the rate whenever the
 * foreground latency EWMA rises above a configurable multiple of the
 * baseline captured at rebuild start, restoring it as latency recovers.
 *
 * Tokens are denominated in sectors and refill against the simulated
 * clock (EventLoop::now()), so behaviour is fully deterministic.
 */
#pragma once

#include <cstdint>

namespace raizn {

class EventLoop;

struct RebuildThrottleConfig {
    /// Steady-state rebuild budget in sectors per second. 0 disables
    /// throttling entirely (legacy full-speed rebuild).
    uint64_t rate_sectors_per_sec = 0;
    /// Bucket capacity: the largest burst the pump may issue at once.
    uint64_t burst_sectors = 256;
    /// When adapting, never drop below this rate (rebuild must finish).
    uint64_t min_rate_sectors_per_sec = 256;
    /// Enable latency-feedback adaptation.
    bool adaptive = false;
    /// Foreground latency EWMA above `backoff_factor * baseline` halves
    /// the rate; EWMA back under `restore_factor * baseline` doubles it
    /// (up to the configured cap).
    double backoff_factor = 2.0;
    double restore_factor = 1.25;
};

class RebuildThrottle {
  public:
    RebuildThrottle(EventLoop *loop, RebuildThrottleConfig cfg);

    bool enabled() const { return cfg_.rate_sectors_per_sec > 0; }

    /// Consumes `sectors` tokens if available (always succeeds when
    /// throttling is disabled). On failure the caller should sleep for
    /// ns_until(sectors) and retry.
    bool try_acquire(uint64_t sectors);

    /// Nanoseconds of refill needed before `sectors` tokens are
    /// available. 0 when they already are.
    uint64_t ns_until(uint64_t sectors) const;

    /// Feeds one foreground write latency sample; in adaptive mode this
    /// drives the backoff/restore state machine.
    void observe_foreground_latency(uint64_t ns);

    /// Baseline foreground latency (ns) the adaptive mode compares
    /// against; captured by the caller before rebuild load starts.
    void set_baseline_latency(double ns) { baseline_ns_ = ns; }

    uint64_t current_rate() const { return rate_; }
    uint64_t stalls() const { return stalls_; }
    uint64_t backoffs() const { return backoffs_; }
    double foreground_ewma_ns() const { return ewma_ns_; }

  private:
    void refill();

    EventLoop *loop_;
    RebuildThrottleConfig cfg_;
    uint64_t rate_; ///< current sectors/s (adaptive moves this)
    double tokens_;
    uint64_t last_refill_ns_ = 0;
    uint64_t stalls_ = 0;
    uint64_t backoffs_ = 0;
    double ewma_ns_ = 0.0;
    double baseline_ns_ = 0.0;
};

} // namespace raizn
