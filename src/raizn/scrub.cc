/**
 * @file
 * Background scrub with read-repair.
 *
 * The scrubber walks every stripe stored at its home placement, reads
 * all data units plus the parity, and verifies the parity equation
 * XOR(data units) == parity. A mismatch is localised with the
 * per-sector CRC catalog kept by the write path: the unit whose
 * checksums disagree with its on-device payload is reconstructed from
 * the surviving units and the parity, and the repair is persisted as a
 * relocated stripe unit in the metadata zones — the same mechanism the
 * write path uses for burned slots, so reads and recovery pick it up
 * with no extra machinery. When every data unit checks clean the
 * parity itself is the corrupt side and is rewritten (also via
 * relocation; the physical parity slot cannot be overwritten in
 * place on ZNS).
 *
 * Stripes whose generation changes or whose zone blocks mid-scrub are
 * silently skipped: a concurrent reset invalidates the read snapshot.
 */
#include "raizn/volume_impl.h"

#include <algorithm>
#include <cstring>

#include "common/crc32.h"
#include "common/logging.h"
#include "obs/trace.h"
#include "raizn/stripe_buffer.h"
#include "sim/event_loop.h"

namespace raizn {

namespace {

/// Key for per-(zone, stripe) maps (mirrors volume.cc).
uint64_t
zs_key(uint32_t zone, uint64_t stripe)
{
    return (static_cast<uint64_t>(zone) << 32) | stripe;
}

} // namespace

std::vector<std::pair<uint32_t, uint64_t>>
RaiznVolume::scrub_candidates() const
{
    std::vector<std::pair<uint32_t, uint64_t>> out;
    if (!store_data_ || read_only_)
        return out;
    const uint64_t ss = layout_->stripe_sectors();
    const uint32_t su = cfg_.su_sectors;
    for (uint32_t z = 0; z < zones_.size(); ++z) {
        const LZone &lz = zones_[z];
        if (lz.blocked || lz.written() == 0)
            continue;
        // Scrub only verifies healthy stripes: with a device down the
        // parity equation cannot be checked, let alone repaired.
        bool degraded = false;
        uint64_t min_wp = UINT64_MAX;
        for (uint32_t d = 0; d < devs_.size(); ++d) {
            if (dev_unavailable(d, z)) {
                degraded = true;
                break;
            }
            auto zi = devs_[d]->zone_info(z);
            if (!zi.is_ok()) {
                degraded = true;
                break;
            }
            min_wp = std::min(min_wp, zi.value().wp);
        }
        if (degraded)
            continue;
        uint64_t nstripes = (lz.written() + ss - 1) / ss;
        for (uint64_t s = 0; s < nstripes; ++s) {
            // Every unit of the stripe (data and parity) must be
            // physically written at its home slot on every device —
            // relocated or partially-written stripes are served from
            // the metadata zones and are not scrub's to verify.
            if (layout_->slot_pba(z, s) + su > min_wp)
                break;
            if (stripe_displaced(z, s))
                continue;
            out.emplace_back(z, s);
        }
    }
    return out;
}

void
RaiznVolume::scrub_stripe(uint32_t zone, uint64_t stripe, ScrubReport *rep,
                          std::function<void()> done)
{
    const uint32_t D = cfg_.data_units();
    const uint32_t su = cfg_.su_sectors;
    const uint64_t slot = layout_->slot_pba(zone, stripe);
    const uint64_t gen0 = gen_.get(zone);

    struct ScrubCtx {
        uint32_t remaining = 0;
        bool failed = false;
        std::vector<std::vector<uint8_t>> units;
        std::vector<uint8_t> parity;
        std::function<void()> done;
        uint64_t trace_req = 0;
        uint64_t token = 0; ///< open "scrub.stripe" span
    };
    auto ctx = std::make_shared<ScrubCtx>();
    ctx->remaining = D + 1;
    ctx->units.resize(D);
    ctx->done = std::move(done);
    if (trace_ != nullptr) {
        ctx->trace_req = trace_->next_request_id();
        ctx->token = trace_->begin_span("scrub.stripe", ctx->trace_req,
                                        obs::kTrackMetadata,
                                        loop_->now());
    }

    auto finish = [this, ctx, zone, stripe, rep, gen0, su, D] {
        if (trace_ != nullptr && ctx->token != 0) {
            trace_->end_span(ctx->token, loop_->now());
            ctx->token = 0;
        }
        if (gen_.get(zone) != gen0 || zones_[zone].blocked ||
            stripe_displaced(zone, stripe)) {
            // The zone was reset or the stripe moved under the scrub
            // reads; the snapshot is stale, skip without counting.
            auto d = std::move(ctx->done);
            d();
            return;
        }
        rep->stripes_scanned++;
        stats_.scrubbed_stripes++;
        if (ctx->failed) {
            rep->unrecoverable++;
            auto d = std::move(ctx->done);
            d();
            return;
        }
        const size_t unit_bytes = static_cast<size_t>(su) * kSectorSize;
        std::vector<uint8_t> acc(unit_bytes, 0);
        for (uint32_t k = 0; k < D; ++k)
            xor_bytes(acc.data(), ctx->units[k].data(), unit_bytes);
        LZone &lz = zones_[zone];
        const uint64_t stripe_off = stripe * layout_->stripe_sectors();
        if (std::memcmp(acc.data(), ctx->parity.data(), unit_bytes) == 0) {
            // Healthy stripe. Backfill checksums the catalog is
            // missing (it starts empty after a remount) so future
            // corruption here is localisable.
            for (uint32_t k = 0; k < D; ++k) {
                uint64_t off = stripe_off + static_cast<uint64_t>(k) * su;
                bool missing = lz.crc_valid.empty();
                if (!missing) {
                    for (uint32_t s = 0; s < su; ++s)
                        missing |= !lz.crc_valid[off + s];
                }
                if (missing)
                    note_written_crcs(zone, off, ctx->units[k], su);
            }
            auto d = std::move(ctx->done);
            d();
            return;
        }
        rep->parity_mismatches++;
        // Localise the corruption with the CRC catalog.
        bool have_catalog = !lz.crc_valid.empty();
        std::vector<uint32_t> bad;
        uint64_t covered = 0;
        if (have_catalog) {
            for (uint32_t k = 0; k < D; ++k) {
                uint64_t off = stripe_off + static_cast<uint64_t>(k) * su;
                bool unit_bad = false;
                for (uint32_t s = 0; s < su; ++s) {
                    if (!lz.crc_valid[off + s])
                        continue;
                    covered++;
                    uint32_t c = crc32c(
                        ctx->units[k].data() +
                            static_cast<size_t>(s) * kSectorSize,
                        kSectorSize);
                    if (c != lz.crcs[off + s])
                        unit_bad = true;
                }
                if (unit_bad)
                    bad.push_back(k);
            }
        }
        if (!have_catalog || covered == 0) {
            // No checksums to localise with: the mismatch is real but
            // the corrupt side is unknown.
            rep->unrecoverable++;
        } else if (bad.size() == 1) {
            uint32_t k = bad[0];
            rep->crc_mismatches++;
            stats_.crc_mismatches++;
            // Rebuild unit k from the survivors and the parity, then
            // double-check the reconstruction against the catalog
            // before trusting it.
            std::vector<uint8_t> rec(unit_bytes, 0);
            xor_bytes(rec.data(), ctx->parity.data(), unit_bytes);
            for (uint32_t j = 0; j < D; ++j) {
                if (j != k)
                    xor_bytes(rec.data(), ctx->units[j].data(), unit_bytes);
            }
            uint64_t off = stripe_off + static_cast<uint64_t>(k) * su;
            bool ok = true;
            for (uint32_t s = 0; s < su; ++s) {
                if (!lz.crc_valid[off + s])
                    continue;
                uint32_t c = crc32c(rec.data() +
                                        static_cast<size_t>(s) * kSectorSize,
                                    kSectorSize);
                if (c != lz.crcs[off + s])
                    ok = false;
            }
            if (ok) {
                scrub_repair_unit(zone, stripe, k, std::move(rec));
                rep->repaired_units++;
            } else {
                rep->unrecoverable++;
            }
        } else if (bad.empty()) {
            // Every data unit checks clean: the parity side is corrupt
            // — but only if the catalog covers the whole stripe, else
            // an uncovered sector could be the real culprit.
            if (covered == static_cast<uint64_t>(D) * su) {
                scrub_repair_parity(zone, stripe, std::move(acc));
                rep->repaired_parity++;
            } else {
                rep->unrecoverable++;
            }
        } else {
            // More than one unit disagrees with its checksums: single
            // parity cannot reconstruct two losses.
            rep->crc_mismatches += bad.size();
            stats_.crc_mismatches += bad.size();
            rep->unrecoverable++;
        }
        auto d = std::move(ctx->done);
        d();
    };

    const size_t want = static_cast<size_t>(su) * kSectorSize;
    auto one_done = [ctx, finish, want](std::vector<uint8_t> *into,
                                        IoResult r) {
        if (!r.status.is_ok() || r.data.size() != want)
            ctx->failed = true;
        else
            *into = std::move(r.data);
        if (--ctx->remaining == 0)
            finish();
    };

    for (uint32_t k = 0; k < D; ++k) {
        uint32_t dev = layout_->data_dev(zone, stripe, k);
        ctx->units[k].reserve(static_cast<size_t>(su) * kSectorSize);
        auto *into = &ctx->units[k];
        IoRequest rreq = IoRequest::read(slot, su);
        rreq.trace_req = ctx->trace_req;
        rreq.trace_stage = "scrub.read";
        rreq.cause = obs::Cause::kScrub;
        dev_submit(dev, std::move(rreq),
                   [one_done, into](IoResult r) {
                       one_done(into, std::move(r));
                   });
    }
    uint32_t pdev = layout_->parity_dev(zone, stripe);
    ctx->parity.reserve(static_cast<size_t>(su) * kSectorSize);
    IoRequest preq = IoRequest::read(slot, su);
    preq.trace_req = ctx->trace_req;
    preq.trace_stage = "scrub.read";
    preq.cause = obs::Cause::kScrub;
    dev_submit(pdev, std::move(preq),
               [one_done, ctx](IoResult r) {
                   one_done(&ctx->parity, std::move(r));
               });
}

void
RaiznVolume::scrub_repair_unit(uint32_t zone, uint64_t stripe, uint32_t k,
                               std::vector<uint8_t> data)
{
    // Persist the repair exactly like a relocated stripe unit: a
    // durable kRelocatedSu record in the home device's metadata zone.
    // The relocation map then shadows the corrupt physical slot for
    // every subsequent read, and recovery replays the record.
    stats_.read_repairs++;
    stats_.relocated_writes++;
    if (trace_ != nullptr) {
        trace_->instant("scrub.repair_unit", 0, obs::kTrackMetadata,
                        loop_->now());
    }
    zones_[zone].has_reloc = true;
    const uint32_t su = cfg_.su_sectors;
    uint32_t dev = layout_->data_dev(zone, stripe, k);
    uint64_t lba = layout_->zone_start_lba(zone) +
        stripe * layout_->stripe_sectors() +
        static_cast<uint64_t>(k) * su;

    // Refresh the catalog for the repaired range.
    note_written_crcs(zone, lba - zones_[zone].start, data, su);

    MdAppend app;
    app.header.type = MdType::kRelocatedSu;
    app.header.start_lba = lba;
    app.header.end_lba = lba + su;
    app.header.generation = gen_.get(zone);
    app.inline_data.assign(8, 0);
    app.payload = data;

    uint64_t md_pba = md_->active_zone_wp(dev, MdZoneRole::kGeneral);
    Relocation rel;
    rel.lba = lba;
    rel.nsectors = su;
    rel.dev = dev;
    rel.md_pba = md_pba + 1; // payload follows the header sector
    rel.cached = std::move(data);
    reloc_.insert(std::move(rel));

    md_->append(dev, MdZoneRole::kGeneral, std::move(app),
                /*durable=*/true, [](Status s) {
                    if (!s.is_ok()) {
                        LOG_WARN("scrub repair persist failed: %s",
                                 s.to_string().c_str());
                    }
                });
}

void
RaiznVolume::scrub_repair_parity(uint32_t zone, uint64_t stripe,
                                 std::vector<uint8_t> parity)
{
    // Mirror of the burned-parity-slot path in submit_parity_subio:
    // the recomputed parity lives in the metadata zone keyed by
    // (zone, stripe) and shadows the corrupt physical slot.
    stats_.read_repairs++;
    stats_.relocated_writes++;
    if (trace_ != nullptr) {
        trace_->instant("scrub.repair_parity", 0, obs::kTrackMetadata,
                        loop_->now());
    }
    uint32_t dev = layout_->parity_dev(zone, stripe);

    MdAppend app;
    app.header.type = MdType::kRelocatedSu;
    app.header.start_lba = zs_key(zone, stripe); // parity key
    app.header.end_lba = app.header.start_lba;
    app.header.generation = gen_.get(zone);
    app.inline_data.assign(8, 0);
    app.inline_data[4] = 1; // parity marker
    app.payload = parity;

    uint64_t md_pba = md_->active_zone_wp(dev, MdZoneRole::kGeneral);
    Relocation rel;
    rel.lba = app.header.start_lba;
    rel.nsectors = cfg_.su_sectors;
    rel.dev = dev;
    rel.md_pba = md_pba + 1;
    rel.cached = std::move(parity);
    parity_reloc_[zs_key(zone, stripe)] = std::move(rel);

    md_->append(dev, MdZoneRole::kGeneral, std::move(app),
                /*durable=*/true, [](Status s) {
                    if (!s.is_ok()) {
                        LOG_WARN("scrub parity persist failed: %s",
                                 s.to_string().c_str());
                    }
                });
}

Status
RaiznVolume::scrub_all(ScrubReport *report)
{
    ScrubReport local;
    ScrubReport *rep = report ? report : &local;
    *rep = ScrubReport{};
    auto stripes = scrub_candidates();
    if (stripes.empty())
        return Status::ok();

    // Chain the stripes sequentially: each completion kicks off the
    // next, and the event loop is driven until the chain ends.
    auto idx = std::make_shared<size_t>(0);
    auto finished = std::make_shared<bool>(false);
    auto step = std::make_shared<std::function<void()>>();
    *step = [this, idx, finished, step, rep,
             stripes = std::move(stripes)]() {
        if (*idx >= stripes.size()) {
            *finished = true;
            return;
        }
        auto [z, s] = stripes[(*idx)++];
        scrub_stripe(z, s, rep, [step] { (*step)(); });
    };
    (*step)();
    loop_->run_until_pred([&] { return *finished; });
    *step = nullptr; // break the self-reference cycle
    return Status::ok();
}

void
RaiznVolume::start_scrubber(Tick interval,
                            std::function<void(const ScrubReport &)> on_pass)
{
    stop_scrubber();
    scrub_running_ = true;
    scrub_interval_ = interval > 0 ? interval : 1;
    scrub_cb_ = std::move(on_pass);
    scrub_pass_ = ScrubReport{};
    scrub_queue_ = scrub_candidates();
    scrub_cursor_ = 0;
    arm_scrubber();
}

void
RaiznVolume::stop_scrubber()
{
    scrub_running_ = false;
    scrub_queue_.clear();
    scrub_cursor_ = 0;
    scrub_cb_ = nullptr;
}

void
RaiznVolume::arm_scrubber()
{
    loop_->schedule_after(scrub_interval_, [this, alive = alive_] {
        if (*alive && scrub_running_)
            scrubber_step();
    });
}

void
RaiznVolume::scrubber_step()
{
    if (scrub_cursor_ >= scrub_queue_.size()) {
        // Pass complete: report, then start the next pass over a fresh
        // candidate snapshot.
        if (scrub_cb_ && !scrub_queue_.empty())
            scrub_cb_(scrub_pass_);
        scrub_pass_ = ScrubReport{};
        scrub_queue_ = scrub_candidates();
        scrub_cursor_ = 0;
        if (scrub_queue_.empty()) {
            arm_scrubber(); // idle: poll again next interval
            return;
        }
    }
    auto [z, s] = scrub_queue_[scrub_cursor_++];
    scrub_stripe(z, s, &scrub_pass_, [this, alive = alive_] {
        if (*alive && scrub_running_)
            arm_scrubber();
    });
}

} // namespace raizn
