#include "raizn/stripe_buffer.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "obs/prof/prof.h"

namespace raizn {

void
xor_bytes(uint8_t *dst, const uint8_t *src, size_t n)
{
    // Word-wise main loop; compilers vectorize this readily.
    size_t words = n / 8;
    auto *d = reinterpret_cast<uint64_t *>(dst);
    auto *s = reinterpret_cast<const uint64_t *>(src);
    for (size_t i = 0; i < words; ++i)
        d[i] ^= s[i];
    for (size_t i = words * 8; i < n; ++i)
        dst[i] ^= src[i];
}

void
parity_byte_range(uint64_t s, uint64_t e, uint32_t su_sectors,
                  uint64_t *lo, uint64_t *hi)
{
    assert(s < e);
    uint64_t su_bytes = static_cast<uint64_t>(su_sectors) * kSectorSize;
    uint64_t sb = s * kSectorSize;
    uint64_t eb = e * kSectorSize;
    uint64_t k1 = sb / su_bytes;
    uint64_t k2 = (eb - 1) / su_bytes;
    if (k1 == k2) {
        *lo = sb - k1 * su_bytes;
        *hi = eb - k1 * su_bytes;
    } else {
        *lo = 0;
        *hi = su_bytes;
    }
}

StripeBuffer::StripeBuffer(uint32_t data_units, uint32_t su_sectors,
                           bool shadow)
    : data_units_(data_units), su_sectors_(su_sectors),
      stripe_sectors_(static_cast<uint64_t>(data_units) * su_sectors),
      shadow_(shadow)
{
    if (!shadow_)
        data_.assign(stripe_sectors_ * kSectorSize, 0);
}

void
StripeBuffer::assign(uint64_t stripe_no)
{
    stripe_no_ = stripe_no;
    filled_ = 0;
    if (!shadow_)
        std::fill(data_.begin(), data_.end(), 0);
}

void
StripeBuffer::fill(uint64_t off, const uint8_t *data, uint64_t nsectors)
{
    assert(bound());
    assert(off + nsectors <= stripe_sectors_);
    // Sequential zone writes always extend the prefix contiguously.
    assert(off == filled_);
    if (!shadow_ && data != nullptr) {
        std::memcpy(data_.data() + off * kSectorSize, data,
                    nsectors * kSectorSize);
        prof::count_copy(nsectors * kSectorSize);
    }
    filled_ = off + nsectors;
}

std::vector<uint8_t>
StripeBuffer::full_parity() const
{
    assert(complete());
    PROF_SCOPE("raizn.parity.full");
    uint64_t su_bytes = static_cast<uint64_t>(su_sectors_) * kSectorSize;
    prof::count_alloc(su_bytes);
    std::vector<uint8_t> parity(su_bytes, 0);
    if (shadow_)
        return parity;
    for (uint32_t k = 0; k < data_units_; ++k)
        xor_bytes(parity.data(), data_.data() + k * su_bytes, su_bytes);
    return parity;
}

std::vector<uint8_t>
StripeBuffer::parity_delta(uint64_t s, uint64_t e, uint64_t *lo_sector,
                           uint64_t *hi_sector) const
{
    assert(s < e && e <= filled_);
    PROF_SCOPE("raizn.parity.delta");
    uint64_t lo_b, hi_b;
    parity_byte_range(s, e, su_sectors_, &lo_b, &hi_b);
    *lo_sector = lo_b / kSectorSize;
    *hi_sector = div_ceil(hi_b, kSectorSize);
    size_t out_bytes = (*hi_sector - *lo_sector) * kSectorSize;
    prof::count_alloc(out_bytes);
    std::vector<uint8_t> delta(out_bytes, 0);
    if (shadow_)
        return delta;
    uint64_t su_bytes = static_cast<uint64_t>(su_sectors_) * kSectorSize;
    uint64_t sb = s * kSectorSize;
    uint64_t eb = e * kSectorSize;
    uint64_t base = *lo_sector * kSectorSize; // parity offset of delta[0]
    // XOR every written byte in [sb, eb) into its parity position.
    uint64_t k1 = sb / su_bytes;
    uint64_t k2 = (eb - 1) / su_bytes;
    for (uint64_t k = k1; k <= k2; ++k) {
        uint64_t unit_lo = std::max(sb, k * su_bytes);
        uint64_t unit_hi = std::min(eb, (k + 1) * su_bytes);
        uint64_t parity_off = unit_lo - k * su_bytes;
        assert(parity_off >= base);
        xor_bytes(delta.data() + (parity_off - base),
                  data_.data() + unit_lo, unit_hi - unit_lo);
    }
    return delta;
}

std::vector<uint8_t>
StripeBuffer::prefix_parity() const
{
    PROF_SCOPE("raizn.parity.prefix");
    uint64_t su_bytes = static_cast<uint64_t>(su_sectors_) * kSectorSize;
    prof::count_alloc(su_bytes);
    std::vector<uint8_t> parity(su_bytes, 0);
    if (shadow_ || filled_ == 0)
        return parity;
    uint64_t filled_bytes = filled_ * kSectorSize;
    for (uint32_t k = 0; k < data_units_; ++k) {
        uint64_t lo = static_cast<uint64_t>(k) * su_bytes;
        if (lo >= filled_bytes)
            break;
        uint64_t n = std::min(su_bytes, filled_bytes - lo);
        xor_bytes(parity.data(), data_.data() + lo, n);
    }
    return parity;
}

const uint8_t *
StripeBuffer::unit_data(uint32_t k) const
{
    assert(!shadow_ && k < data_units_);
    return data_.data() +
        static_cast<uint64_t>(k) * su_sectors_ * kSectorSize;
}

void
StripeBuffer::restore(uint64_t stripe_no, std::vector<uint8_t> bytes,
                      uint64_t filled_sectors)
{
    stripe_no_ = stripe_no;
    filled_ = filled_sectors;
    if (!shadow_) {
        assert(bytes.size() == data_.size());
        data_ = std::move(bytes);
    }
}

} // namespace raizn
