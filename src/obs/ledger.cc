#include "obs/ledger.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "common/units.h"
#include "obs/metrics.h"
#include "obs/timeline.h"
#include "zns/block_device.h"

namespace raizn::obs {

namespace {

void
append_f(std::string *out, const char *fmt, ...)
{
    char buf[512];
    va_list ap;
    va_start(ap, fmt);
    std::vsnprintf(buf, sizeof(buf), fmt, ap);
    va_end(ap);
    *out += buf;
}

Status
write_file(const std::string &path, const std::string &content)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return Status(StatusCode::kIoError, "cannot open " + path);
    size_t n = std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    if (n != content.size())
        return Status(StatusCode::kIoError, "short write to " + path);
    return Status::ok();
}

} // namespace

std::string
LedgerAudit::summary() const
{
    if (ok())
        return "conservation audit: ok";
    std::string out = "conservation audit: " +
        std::to_string(problems.size()) + " violation(s)\n";
    for (const std::string &p : problems)
        out += "  " + p + "\n";
    return out;
}

void
IoLedger::snapshot_baseline(DevLedger &d)
{
    const DeviceStats &s = d.bd->stats();
    d.base_sectors_written = s.sectors_written;
    d.base_sectors_read = s.sectors_read;
    d.base_write_ops = s.writes + s.appends;
    d.base_read_ops = s.reads;
    d.base_flushes = s.flushes;
    d.base_zone_resets = s.zone_resets;
    d.mark = d.total;
}

void
IoLedger::attach_device(uint32_t dev, const BlockDevice *bd)
{
    if (dev >= devs_.size())
        devs_.resize(dev + 1);
    DevLedger &d = devs_[dev];
    d.bd = bd;
    const DeviceGeometry &g = bd->geometry();
    d.zone_size = g.zoned ? g.zone_size : 0;
    d.nzones = g.zoned && g.nzones > 0 ? g.nzones : 1;
    d.cells.assign(static_cast<size_t>(d.nzones) * kNumCauses,
                   LedgerCell{});
    d.total = LedgerCell{};
    snapshot_baseline(d);
}

void
IoLedger::rebind_device(uint32_t dev, const BlockDevice *bd)
{
    if (dev >= devs_.size() || devs_[dev].bd == nullptr) {
        attach_device(dev, bd);
        return;
    }
    DevLedger &d = devs_[dev];
    d.bd = bd;
    snapshot_baseline(d);
}

LedgerCell &
IoLedger::cell(DevLedger &d, uint64_t slba, Cause c)
{
    uint32_t zone = d.zone_size != 0
        ? static_cast<uint32_t>(slba / d.zone_size)
        : 0;
    if (zone >= d.nzones)
        zone = d.nzones - 1;
    return d.cells[static_cast<size_t>(zone) * kNumCauses +
                   static_cast<uint32_t>(c)];
}

void
IoLedger::record(uint32_t dev, IoOp op, Cause cause, uint64_t slba,
                 uint32_t nsectors)
{
    if (dev >= devs_.size() || devs_[dev].bd == nullptr)
        return; // unattached device (e.g. a spare before promotion)
    DevLedger &d = devs_[dev];
    LedgerCell &c = cell(d, slba, cause);
    CauseAgg &a = agg_[static_cast<uint32_t>(cause)];
    a.ops += 1;
    switch (op) {
      case IoOp::kWrite:
      case IoOp::kAppend:
        c.write_ops += 1;
        c.write_sectors += nsectors;
        d.total.write_ops += 1;
        d.total.write_sectors += nsectors;
        a.write_bytes += static_cast<uint64_t>(nsectors) * kSectorSize;
        break;
      case IoOp::kRead:
        c.read_ops += 1;
        c.read_sectors += nsectors;
        d.total.read_ops += 1;
        d.total.read_sectors += nsectors;
        a.read_bytes += static_cast<uint64_t>(nsectors) * kSectorSize;
        break;
      case IoOp::kFlush:
        c.flushes += 1;
        d.total.flushes += 1;
        break;
      case IoOp::kZoneReset:
        c.zone_resets += 1;
        d.total.zone_resets += 1;
        break;
      case IoOp::kZoneFinish:
      case IoOp::kZoneOpen:
      case IoOp::kZoneClose:
        c.zone_mgmt_ops += 1;
        d.total.zone_mgmt_ops += 1;
        break;
    }
}

void
IoLedger::note_untagged_submit(const char *stage)
{
    untagged_submits_ += 1;
    untagged_stages_[stage != nullptr ? stage : "(unlabeled)"] += 1;
}

void
IoLedger::note_user_write(uint32_t nsectors)
{
    logical_.write_bytes += static_cast<uint64_t>(nsectors) * kSectorSize;
}

void
IoLedger::note_user_read(uint32_t nsectors)
{
    logical_.read_bytes += static_cast<uint64_t>(nsectors) * kSectorSize;
}

uint64_t
IoLedger::device_write_bytes() const
{
    uint64_t sum = 0;
    for (const CauseAgg &a : agg_)
        sum += a.write_bytes;
    return sum;
}

uint64_t
IoLedger::device_read_bytes() const
{
    uint64_t sum = 0;
    for (const CauseAgg &a : agg_)
        sum += a.read_bytes;
    return sum;
}

uint64_t
IoLedger::cause_write_bytes(Cause c) const
{
    return agg_[static_cast<uint32_t>(c)].write_bytes;
}

uint64_t
IoLedger::cause_read_bytes(Cause c) const
{
    return agg_[static_cast<uint32_t>(c)].read_bytes;
}

uint64_t
IoLedger::untagged_ops() const
{
    return agg_[static_cast<uint32_t>(Cause::kUntagged)].ops +
        untagged_submits_;
}

double
IoLedger::waf() const
{
    if (logical_.write_bytes == 0)
        return 0.0;
    return static_cast<double>(device_write_bytes()) /
        static_cast<double>(logical_.write_bytes);
}

double
IoLedger::raf() const
{
    if (logical_.read_bytes == 0)
        return 0.0;
    return static_cast<double>(device_read_bytes()) /
        static_cast<double>(logical_.read_bytes);
}

double
IoLedger::waf_component(Cause c) const
{
    if (logical_.write_bytes == 0)
        return 0.0;
    return static_cast<double>(cause_write_bytes(c)) /
        static_cast<double>(logical_.write_bytes);
}

std::string
IoLedger::breakdown_table() const
{
    std::string out;
    append_f(&out, "%-12s %14s %14s %10s %8s\n", "cause", "write_bytes",
             "read_bytes", "ops", "waf");
    uint64_t wtot = device_write_bytes(), rtot = device_read_bytes();
    for (uint32_t i = 0; i < kNumCauses; ++i) {
        const CauseAgg &a = agg_[i];
        if (a.write_bytes == 0 && a.read_bytes == 0 && a.ops == 0)
            continue;
        append_f(&out, "%-12s %14" PRIu64 " %14" PRIu64 " %10" PRIu64
                 " %8.3f\n",
                 cause_name(static_cast<Cause>(i)), a.write_bytes,
                 a.read_bytes, a.ops,
                 waf_component(static_cast<Cause>(i)));
    }
    append_f(&out, "%-12s %14" PRIu64 " %14" PRIu64 " %10s %8.3f\n",
             "total", wtot, rtot, "", waf());
    append_f(&out,
             "acked user bytes: write %" PRIu64 " read %" PRIu64
             "  WAF %.3f  RAF %.3f\n",
             logical_.write_bytes, logical_.read_bytes, waf(), raf());
    return out;
}

std::string
IoLedger::breakdown_csv() const
{
    std::string out = "cause,write_bytes,read_bytes,ops,waf_component\n";
    for (uint32_t i = 0; i < kNumCauses; ++i) {
        const CauseAgg &a = agg_[i];
        if (a.write_bytes == 0 && a.read_bytes == 0 && a.ops == 0)
            continue;
        append_f(&out, "%s,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%.6f\n",
                 cause_name(static_cast<Cause>(i)), a.write_bytes,
                 a.read_bytes, a.ops,
                 waf_component(static_cast<Cause>(i)));
    }
    append_f(&out, "total,%" PRIu64 ",%" PRIu64 ",,%.6f\n",
             device_write_bytes(), device_read_bytes(), waf());
    return out;
}

Status
IoLedger::write_breakdown_csv(const std::string &path) const
{
    return write_file(path, breakdown_csv());
}

std::string
IoLedger::heatmap_csv() const
{
    std::string out = "dev,zone,cause,write_sectors,read_sectors,"
                      "write_ops,read_ops,flushes,zone_resets,"
                      "zone_mgmt_ops\n";
    for (uint32_t dev = 0; dev < devs_.size(); ++dev) {
        const DevLedger &d = devs_[dev];
        if (d.bd == nullptr)
            continue;
        for (uint32_t z = 0; z < d.nzones; ++z) {
            for (uint32_t c = 0; c < kNumCauses; ++c) {
                const LedgerCell &cell =
                    d.cells[static_cast<size_t>(z) * kNumCauses + c];
                if (cell.empty())
                    continue;
                append_f(&out,
                         "%u,%u,%s,%" PRIu64 ",%" PRIu64 ",%" PRIu64
                         ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                         "\n",
                         dev, z, cause_name(static_cast<Cause>(c)),
                         cell.write_sectors, cell.read_sectors,
                         cell.write_ops, cell.read_ops, cell.flushes,
                         cell.zone_resets, cell.zone_mgmt_ops);
            }
        }
    }
    return out;
}

Status
IoLedger::write_heatmap_csv(const std::string &path) const
{
    return write_file(path, heatmap_csv());
}

std::string
IoLedger::to_json() const
{
    LedgerAudit a = audit();
    std::string out = "{\n";
    append_f(&out,
             "  \"user_write_bytes\": %" PRIu64
             ", \"user_read_bytes\": %" PRIu64 ",\n"
             "  \"device_write_bytes\": %" PRIu64
             ", \"device_read_bytes\": %" PRIu64 ",\n"
             "  \"waf\": %.6f, \"raf\": %.6f,\n"
             "  \"untagged_ops\": %" PRIu64 ", \"audit_ok\": %s,\n"
             "  \"causes\": {\n",
             logical_.write_bytes, logical_.read_bytes,
             device_write_bytes(), device_read_bytes(), waf(), raf(),
             untagged_ops(), a.ok() ? "true" : "false");
    bool first = true;
    for (uint32_t i = 0; i < kNumCauses; ++i) {
        const CauseAgg &agg = agg_[i];
        if (agg.write_bytes == 0 && agg.read_bytes == 0 && agg.ops == 0)
            continue;
        if (!first)
            out += ",\n";
        first = false;
        append_f(&out,
                 "    \"%s\": {\"write_bytes\": %" PRIu64
                 ", \"read_bytes\": %" PRIu64 ", \"ops\": %" PRIu64
                 ", \"waf_component\": %.6f}",
                 cause_name(static_cast<Cause>(i)), agg.write_bytes,
                 agg.read_bytes, agg.ops,
                 waf_component(static_cast<Cause>(i)));
    }
    out += "\n  }\n}\n";
    return out;
}

Status
IoLedger::write_json(const std::string &path) const
{
    return write_file(path, to_json());
}

LedgerAudit
IoLedger::audit() const
{
    LedgerAudit rep;
    uint64_t untagged = untagged_ops();
    if (untagged != 0) {
        rep.problems.push_back(
            "untagged sub-I/Os reached a device: " +
            std::to_string(untagged));
        for (const auto &[stage, n] : untagged_stages_) {
            rep.problems.push_back("untagged submits at stage " + stage +
                                   ": " + std::to_string(n));
        }
    }
    for (uint32_t dev = 0; dev < devs_.size(); ++dev) {
        const DevLedger &d = devs_[dev];
        if (d.bd == nullptr)
            continue;
        const DeviceStats &s = d.bd->stats();
        auto check = [&](const char *what, uint64_t dev_now,
                         uint64_t dev_base, uint64_t led_now,
                         uint64_t led_base) {
            uint64_t dev_delta = dev_now - dev_base;
            uint64_t led_delta = led_now - led_base;
            if (dev_delta != led_delta) {
                char buf[160];
                std::snprintf(buf, sizeof(buf),
                              "dev%u %s: device counted %" PRIu64
                              " but ledger attributed %" PRIu64,
                              dev, what, dev_delta, led_delta);
                rep.problems.push_back(buf);
            }
        };
        check("sectors_written", s.sectors_written,
              d.base_sectors_written, d.total.write_sectors,
              d.mark.write_sectors);
        check("sectors_read", s.sectors_read, d.base_sectors_read,
              d.total.read_sectors, d.mark.read_sectors);
        check("write_ops", s.writes + s.appends, d.base_write_ops,
              d.total.write_ops, d.mark.write_ops);
        check("read_ops", s.reads, d.base_read_ops, d.total.read_ops,
              d.mark.read_ops);
        check("flushes", s.flushes, d.base_flushes, d.total.flushes,
              d.mark.flushes);
        check("zone_resets", s.zone_resets, d.base_zone_resets,
              d.total.zone_resets, d.mark.zone_resets);
    }
    return rep;
}

void
IoLedger::link_metrics(MetricsRegistry *reg)
{
    for (uint32_t i = 1; i < kNumCauses; ++i) {
        std::string prefix =
            std::string("ledger.cause.") +
            cause_name(static_cast<Cause>(i));
        reg->link_counter(prefix + ".write_bytes", &agg_[i].write_bytes);
        reg->link_counter(prefix + ".read_bytes", &agg_[i].read_bytes);
        reg->link_counter(prefix + ".ops", &agg_[i].ops);
    }
    reg->link_counter("ledger.user.write_bytes", &logical_.write_bytes);
    reg->link_counter("ledger.user.read_bytes", &logical_.read_bytes);
    reg->link_counter("ledger.untagged.ops",
                      &agg_[static_cast<uint32_t>(Cause::kUntagged)].ops);
    waf_gauge_ = reg->gauge("ledger.waf_milli");
    raf_gauge_ = reg->gauge("ledger.raf_milli");
    refresh_gauges();
}

void
IoLedger::install_probe(Timeline *tl)
{
    tl->add_probe([this] { refresh_gauges(); });
}

void
IoLedger::refresh_gauges()
{
    waf_milli_ = static_cast<uint64_t>(waf() * 1000.0);
    raf_milli_ = static_cast<uint64_t>(raf() * 1000.0);
    if (waf_gauge_ != nullptr)
        waf_gauge_->set(waf_milli_);
    if (raf_gauge_ != nullptr)
        raf_gauge_->set(raf_milli_);
}

} // namespace raizn::obs
