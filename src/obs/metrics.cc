#include "obs/metrics.h"

#include <algorithm>

#include "common/logging.h"

namespace raizn::obs {

MetricsRegistry::Entry *
MetricsRegistry::find(const std::string &name)
{
    for (auto &e : entries_)
        if (e->name == name)
            return e.get();
    return nullptr;
}

MetricsRegistry::Entry *
MetricsRegistry::add(const std::string &name, MetricSample::Kind kind)
{
    entries_.push_back(std::make_unique<Entry>());
    Entry *e = entries_.back().get();
    e->name = name;
    e->kind = kind;
    return e;
}

Counter *
MetricsRegistry::counter(const std::string &name)
{
    Entry *e = find(name);
    if (e == nullptr) {
        e = add(name, MetricSample::Kind::kCounter);
        e->counter = std::make_unique<Counter>();
    }
    return e->counter.get();
}

Gauge *
MetricsRegistry::gauge(const std::string &name)
{
    Entry *e = find(name);
    if (e == nullptr) {
        e = add(name, MetricSample::Kind::kGauge);
        e->gauge = std::make_unique<Gauge>();
    }
    return e->gauge.get();
}

LatencyMetric *
MetricsRegistry::latency(const std::string &name)
{
    Entry *e = find(name);
    if (e == nullptr) {
        e = add(name, MetricSample::Kind::kLatency);
        e->latency = std::make_unique<LatencyMetric>();
    }
    return e->latency.get();
}

void
MetricsRegistry::link_counter(const std::string &name, const uint64_t *src)
{
    Entry *e = find(name);
    if (e == nullptr)
        e = add(name, MetricSample::Kind::kCounter);
    e->counter.reset();
    e->ext_value = src;
}

void
MetricsRegistry::link_histogram(const std::string &name, const Histogram *src)
{
    Entry *e = find(name);
    if (e == nullptr)
        e = add(name, MetricSample::Kind::kLatency);
    e->latency.reset();
    e->ext_hist = src;
}

std::vector<MetricSample>
MetricsRegistry::snapshot() const
{
    std::vector<MetricSample> out;
    out.reserve(entries_.size());
    for (const auto &e : entries_) {
        MetricSample s;
        s.name = e->name;
        s.kind = e->kind;
        switch (e->kind) {
        case MetricSample::Kind::kCounter:
            s.value = e->ext_value != nullptr ? *e->ext_value
                                              : e->counter->value();
            break;
        case MetricSample::Kind::kGauge:
            s.value = e->gauge->value();
            break;
        case MetricSample::Kind::kLatency:
            s.hist = e->ext_hist != nullptr ? e->ext_hist
                                            : &e->latency->histogram();
            break;
        }
        out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end(),
              [](const MetricSample &a, const MetricSample &b) {
                  return a.name < b.name;
              });
    return out;
}

std::string
MetricsRegistry::dump() const
{
    std::string out;
    for (const MetricSample &s : snapshot()) {
        if (s.kind == MetricSample::Kind::kLatency) {
            out += strprintf("%-40s %s\n", s.name.c_str(),
                             s.hist->summary_us().c_str());
        } else {
            out += strprintf("%-40s %llu\n", s.name.c_str(),
                             (unsigned long long)s.value);
        }
    }
    return out;
}

std::string
MetricsRegistry::to_json() const
{
    std::string out = "{\n";
    bool first = true;
    for (const MetricSample &s : snapshot()) {
        if (!first)
            out += ",\n";
        first = false;
        if (s.kind == MetricSample::Kind::kLatency) {
            const Histogram &h = *s.hist;
            out += strprintf(
                "  \"%s\": {\"count\": %llu, \"mean_ns\": %.1f, "
                "\"p50_ns\": %llu, \"p95_ns\": %llu, \"p99_ns\": %llu, "
                "\"p999_ns\": %llu, \"max_ns\": %llu}",
                s.name.c_str(), (unsigned long long)h.count(), h.mean(),
                (unsigned long long)h.p50(), (unsigned long long)h.p95(),
                (unsigned long long)h.p99(), (unsigned long long)h.p999(),
                (unsigned long long)h.max());
        } else {
            out += strprintf("  \"%s\": %llu", s.name.c_str(),
                             (unsigned long long)s.value);
        }
    }
    out += "\n}\n";
    return out;
}

Status
MetricsRegistry::write_json(const std::string &path) const
{
    FILE *f = fopen(path.c_str(), "w");
    if (f == nullptr)
        return Status(StatusCode::kIoError, "cannot open " + path);
    std::string j = to_json();
    size_t n = fwrite(j.data(), 1, j.size(), f);
    fclose(f);
    if (n != j.size())
        return Status(StatusCode::kIoError, "short write to " + path);
    return Status::ok();
}

std::string
render_kv(const std::vector<std::pair<const char *, uint64_t>> &kv)
{
    std::string out;
    for (const auto &[name, value] : kv)
        out += strprintf("%s=%llu ", name, (unsigned long long)value);
    if (!out.empty())
        out.pop_back();
    return out;
}

} // namespace raizn::obs
