#include "obs/timeline.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/anomaly.h"
#include "obs/prof/prof.h"
#include "sim/event_loop.h"

namespace raizn::obs {

Timeline::Timeline(EventLoop *loop, MetricsRegistry *reg,
                   TimelineConfig cfg)
    : loop_(loop), reg_(reg), cfg_(cfg)
{
}

Timeline::~Timeline()
{
    stop();
}

void
Timeline::start()
{
    if (running_)
        return;

    // The loop's own scheduling stats are part of every timeline: the
    // queue depth is the simulation-wide in-flight depth and the
    // schedule delay attributes each event's queue wait.
    link_stats(*reg_, "sim", loop_->stats());
    reg_->link_histogram("sim.sched_delay_ns", &loop_->sched_delay_hist());
    pending_gauge_ = reg_->gauge("sim.pending");

    sources_.clear();
    columns_.clear();
    for (const MetricSample &s : reg_->snapshot()) {
        Source src;
        src.name = s.name;
        src.kind = s.kind;
        switch (s.kind) {
        case MetricSample::Kind::kCounter:
            src.prev_value = static_cast<double>(s.value);
            columns_.push_back(s.name);
            columns_.push_back(s.name + ".rate");
            break;
        case MetricSample::Kind::kGauge:
            columns_.push_back(s.name);
            break;
        case MetricSample::Kind::kLatency:
            src.prev_hist = *s.hist;
            columns_.push_back(s.name + ".win_n");
            columns_.push_back(s.name + ".win_p50_ns");
            columns_.push_back(s.name + ".win_p99_ns");
            break;
        }
        sources_.push_back(std::move(src));
    }

    last_t_ = loop_->now();
    next_due_ = last_t_ + cfg_.interval;
    host_start_ns_ = prof::host_now_ns();
    running_ = true;
    loop_->set_probe([this](Tick now) { on_event(now); });
}

void
Timeline::stop()
{
    if (!running_)
        return;
    running_ = false;
    loop_->set_probe(nullptr);
}

void
Timeline::on_event(Tick now)
{
    if (now < next_due_)
        return;
    // Stamp the row at the last boundary the clock jumped across; the
    // rate denominator is the true elapsed time since the previous
    // row, so bursty virtual time cannot inflate rates.
    Tick boundary = next_due_ + (now - next_due_) / cfg_.interval *
        cfg_.interval;
    take_sample(boundary);
    next_due_ = boundary + cfg_.interval;
}

void
Timeline::sample_now()
{
    Tick now = loop_->now();
    if (now <= last_t_)
        return;
    take_sample(now);
    next_due_ = now + cfg_.interval;
}

void
Timeline::take_sample(Tick t)
{
    for (const ProbeFn &p : probes_)
        p();
    if (pending_gauge_ != nullptr)
        pending_gauge_->set(loop_->pending());

    double elapsed_s =
        static_cast<double>(t - last_t_) / static_cast<double>(kNsPerSec);

    TimelineRow row;
    row.t = t;
    // Virtual rows carry the host clock too, so a slow wall-clock
    // interval (a simulator hot spot) can be lined up against what the
    // simulated system was doing at the time.
    row.host_ns = prof::host_now_ns() - host_start_ns_;
    row.values.reserve(columns_.size());

    // snapshot() is name-sorted and sources_ was built from one, so a
    // single merge pass matches every source; metrics registered after
    // start() are skipped.
    std::vector<MetricSample> snap = reg_->snapshot();
    size_t si = 0;
    for (Source &src : sources_) {
        while (si < snap.size() && snap[si].name < src.name)
            si++;
        bool found = si < snap.size() && snap[si].name == src.name &&
            snap[si].kind == src.kind;
        switch (src.kind) {
        case MetricSample::Kind::kCounter: {
            double v = found ? static_cast<double>(snap[si].value) : 0;
            double rate =
                elapsed_s > 0 ? (v - src.prev_value) / elapsed_s : 0;
            row.values.push_back(v);
            row.values.push_back(rate);
            src.prev_value = v;
            break;
        }
        case MetricSample::Kind::kGauge:
            row.values.push_back(
                found ? static_cast<double>(snap[si].value) : 0);
            break;
        case MetricSample::Kind::kLatency: {
            if (found) {
                Histogram win =
                    Histogram::delta(*snap[si].hist, src.prev_hist);
                row.values.push_back(static_cast<double>(win.count()));
                row.values.push_back(static_cast<double>(win.p50()));
                row.values.push_back(static_cast<double>(win.p99()));
                src.prev_hist = *snap[si].hist;
            } else {
                row.values.insert(row.values.end(), 3, 0.0);
            }
            break;
        }
        }
    }
    last_t_ = t;

    if (detector_ != nullptr)
        detector_->observe(columns_, row.t, row.values);

    rows_.push_back(std::move(row));
    if (rows_.size() > cfg_.capacity) {
        rows_.pop_front();
        dropped_++;
    }
}

int
Timeline::column_index(const std::string &name) const
{
    auto it = std::find(columns_.begin(), columns_.end(), name);
    if (it == columns_.end())
        return -1;
    return static_cast<int>(it - columns_.begin());
}

std::vector<double>
Timeline::series(const std::string &name) const
{
    std::vector<double> out;
    int idx = column_index(name);
    if (idx < 0)
        return out;
    out.reserve(rows_.size());
    for (const TimelineRow &r : rows_)
        out.push_back(r.values[static_cast<size_t>(idx)]);
    return out;
}

namespace {

/// %.10g keeps counters exact (< 2^33 ns and typical counts) while
/// staying compact for rates.
std::string
fmt_value(double v)
{
    return strprintf("%.10g", v);
}

} // namespace

std::string
Timeline::to_csv() const
{
    std::string out = "t_s,host_ns";
    for (const std::string &c : columns_) {
        out += ',';
        out += c;
    }
    out += '\n';
    for (const TimelineRow &r : rows_) {
        out += strprintf("%.6f,%llu",
                         static_cast<double>(r.t) /
                             static_cast<double>(kNsPerSec),
                         (unsigned long long)r.host_ns);
        for (double v : r.values) {
            out += ',';
            out += fmt_value(v);
        }
        out += '\n';
    }
    return out;
}

std::string
Timeline::to_json() const
{
    std::string out = strprintf(
        "{\n  \"interval_ns\": %llu,\n  \"dropped\": %llu,\n"
        "  \"columns\": [\"t_ns\", \"host_ns\"",
        (unsigned long long)cfg_.interval, (unsigned long long)dropped_);
    for (const std::string &c : columns_)
        out += strprintf(", \"%s\"", c.c_str());
    out += "],\n  \"rows\": [\n";
    bool first = true;
    for (const TimelineRow &r : rows_) {
        if (!first)
            out += ",\n";
        first = false;
        out += strprintf("    [%llu, %llu", (unsigned long long)r.t,
                         (unsigned long long)r.host_ns);
        for (double v : r.values)
            out += ", " + fmt_value(v);
        out += "]";
    }
    out += "\n  ]\n}\n";
    return out;
}

namespace {

Status
write_file(const std::string &path, const std::string &content)
{
    FILE *f = fopen(path.c_str(), "w");
    if (f == nullptr)
        return Status(StatusCode::kIoError, "cannot open " + path);
    size_t n = fwrite(content.data(), 1, content.size(), f);
    fclose(f);
    if (n != content.size())
        return Status(StatusCode::kIoError, "short write to " + path);
    return Status::ok();
}

} // namespace

Status
Timeline::write_csv(const std::string &path) const
{
    return write_file(path, to_csv());
}

Status
Timeline::write_json(const std::string &path) const
{
    return write_file(path, to_json());
}

} // namespace raizn::obs
