/**
 * @file
 * Request-path tracing on the discrete-event clock.
 *
 * A TraceRecorder collects stage spans — user write, stripe-unit
 * fan-out, partial-parity log, full parity, metadata persistence,
 * per-device submit/complete — into a fixed-capacity ring buffer
 * (oldest events are overwritten, so a recorder attached for a whole
 * run keeps the most recent window: exactly what crash triage wants).
 *
 * Spans carry a request id so every sub-IO of one logical write can be
 * correlated, and a track id that maps to Chrome trace "threads":
 * track 0 is the logical request timeline, track 1 the metadata
 * manager, track 2+i device i. Export formats:
 *   - Chrome trace_event JSON (open in chrome://tracing or Perfetto),
 *   - a per-stage latency breakdown table (count / total / p50 / p99),
 *   - per-request span coverage (fraction of a request's wall time
 *     accounted for by its child spans).
 *
 * Tracing is purely observational: it never schedules events or
 * changes timing, so deterministic replay (src/chk) is unaffected.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "common/units.h"

namespace raizn::obs {

/// Well-known track ids (Chrome trace "tid"s).
enum TraceTrack : uint32_t {
    kTrackRequest = 0,  ///< logical user-visible requests
    kTrackMetadata = 1, ///< metadata manager / parity-log appends
    kTrackDevBase = 2,  ///< device i lives on track kTrackDevBase + i
};

/// A completed span: [start, end) on the virtual clock.
struct TraceSpan {
    const char *stage = nullptr; ///< static string, e.g. "write.parity"
    uint64_t req = 0;            ///< request correlation id (0 = none)
    uint32_t track = kTrackRequest;
    Tick start = 0;
    Tick end = 0;

    Tick duration() const { return end - start; }
};

class TraceRecorder
{
  public:
    /// `capacity` bounds the ring; older spans are overwritten.
    explicit TraceRecorder(size_t capacity = 65536);

    /// Allocates a fresh request correlation id (never returns 0).
    uint64_t next_request_id() { return ++next_req_; }

    /**
     * Opens a span; returns a token to pass to end_span. Open spans
     * live in a side table, so a span that never completes (e.g. cut
     * by a crash) simply never enters the ring.
     */
    uint64_t begin_span(const char *stage, uint64_t req, uint32_t track,
                        Tick now);
    void end_span(uint64_t token, Tick now);

    /// Records an already-measured span in one call.
    void add_span(const char *stage, uint64_t req, uint32_t track,
                  Tick start, Tick end);

    /// Zero-duration marker (Chrome "instant" event).
    void instant(const char *stage, uint64_t req, uint32_t track, Tick now);

    size_t size() const;
    size_t capacity() const { return capacity_; }
    /// Completed spans evicted by ring wraparound.
    uint64_t dropped() const { return dropped_; }
    void clear();

    /// Completed spans, oldest first.
    std::vector<TraceSpan> spans() const;

    /**
     * Chrome trace_event JSON: one "X" (complete) event per span with
     * ts/dur in microseconds of virtual time, plus "M" metadata events
     * naming the tracks. `num_devices` controls how many device tracks
     * get names.
     */
    std::string to_chrome_json(uint32_t num_devices = 0) const;
    Status write_chrome_json(const std::string &path,
                             uint32_t num_devices = 0) const;

    /**
     * Per-stage latency table: for each distinct stage name, count,
     * total time, and percentiles. Sorted by total time descending so
     * the dominant stage reads first.
     */
    std::string stage_breakdown() const;

    /**
     * Fraction of request `req`'s wall time covered by its other
     * spans, where wall time is the duration of the span named
     * `total_stage`. Overlapping child spans are unioned per track
     * group, then the union across the timeline is measured, so
     * concurrent device IOs aren't double-counted. Returns a value in
     * [0, 1]; 0 if the request or its total span isn't in the ring.
     */
    double request_coverage(uint64_t req, const char *total_stage) const;

  private:
    struct OpenSpan {
        uint64_t token;
        const char *stage;
        uint64_t req;
        uint32_t track;
        Tick start;
    };

    void push(const TraceSpan &s);

    size_t capacity_;
    std::vector<TraceSpan> ring_;
    size_t head_ = 0;   ///< next write position once the ring is full
    bool wrapped_ = false;
    uint64_t dropped_ = 0;
    uint64_t next_req_ = 0;
    uint64_t next_token_ = 0;
    std::vector<OpenSpan> open_;
};

} // namespace raizn::obs
