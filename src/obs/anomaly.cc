#include "obs/anomaly.h"

#include <cstdio>

#include "common/logging.h"

namespace raizn::obs {

const char *
AnomalyEvent::type_name(Type t)
{
    switch (t) {
      case Type::kThroughputCollapse: return "throughput_collapse";
      case Type::kThroughputRecovered: return "throughput_recovered";
      case Type::kLatencyBurn: return "latency_burn";
      case Type::kStall: return "stall";
    }
    return "?";
}

std::string
AnomalyEvent::to_string() const
{
    return strprintf("[%.3fs] %s series=%s value=%.1f reference=%.1f",
                     static_cast<double>(t) / 1e9, type_name(type),
                     series.c_str(), value, reference);
}

AnomalyDetector::AnomalyDetector(AnomalyConfig cfg) : cfg_(std::move(cfg))
{
    collapse_.resize(cfg_.collapse.size());
    burn_.resize(cfg_.latency_burn.size());
    stall_.resize(cfg_.stall.size());
}

int
AnomalyDetector::resolve(const std::vector<std::string> &columns,
                         const std::string &name)
{
    for (size_t i = 0; i < columns.size(); ++i)
        if (columns[i] == name)
            return static_cast<int>(i);
    return kMissing;
}

void
AnomalyDetector::emit(AnomalyEvent::Type type, const std::string &series,
                      Tick t, double value, double reference)
{
    if (events_.size() >= cfg_.max_events)
        return;
    AnomalyEvent ev;
    ev.type = type;
    ev.series = series;
    ev.t = t;
    ev.value = value;
    ev.reference = reference;
    events_.push_back(std::move(ev));
}

void
AnomalyDetector::observe(const std::vector<std::string> &columns, Tick t,
                         const std::vector<double> &values)
{
    for (size_t i = 0; i < cfg_.collapse.size(); ++i) {
        const CollapseRule &rule = cfg_.collapse[i];
        CollapseState &st = collapse_[i];
        if (st.col == kUnresolved)
            st.col = resolve(columns, rule.series);
        if (st.col < 0)
            continue;
        double v = values[static_cast<size_t>(st.col)];
        if (st.tripped) {
            // EWMA frozen: a sustained collapse must not decay the
            // baseline into looking normal.
            if (v >= rule.recover_frac * st.ewma) {
                st.tripped = false;
                emit(AnomalyEvent::Type::kThroughputRecovered,
                     rule.series, t, v, st.ewma);
                st.ewma = rule.ewma_alpha * v +
                    (1.0 - rule.ewma_alpha) * st.ewma;
                st.n++;
            }
            continue;
        }
        if (st.n >= rule.warmup_samples &&
            st.ewma >= rule.min_reference &&
            v < rule.collapse_frac * st.ewma) {
            st.tripped = true;
            emit(AnomalyEvent::Type::kThroughputCollapse, rule.series, t,
                 v, st.ewma);
            continue;
        }
        st.ewma = st.n == 0
            ? v
            : rule.ewma_alpha * v + (1.0 - rule.ewma_alpha) * st.ewma;
        st.n++;
    }

    for (size_t i = 0; i < cfg_.latency_burn.size(); ++i) {
        const LatencyBurnRule &rule = cfg_.latency_burn[i];
        BurnState &st = burn_[i];
        if (st.col == kUnresolved)
            st.col = resolve(columns, rule.series);
        if (st.col < 0)
            continue;
        double v = values[static_cast<size_t>(st.col)];
        if (v > rule.budget_ns) {
            st.streak++;
            if (st.streak >= rule.consecutive && !st.tripped) {
                st.tripped = true;
                emit(AnomalyEvent::Type::kLatencyBurn, rule.series, t, v,
                     rule.budget_ns);
            }
        } else {
            st.streak = 0;
            st.tripped = false;
        }
    }

    for (size_t i = 0; i < cfg_.stall.size(); ++i) {
        const StallRule &rule = cfg_.stall[i];
        StallState &st = stall_[i];
        if (st.progress_col == kUnresolved) {
            st.progress_col = resolve(columns, rule.progress_series);
            st.inflight_col = resolve(columns, rule.inflight_series);
        }
        if (st.progress_col < 0 || st.inflight_col < 0)
            continue;
        double progress = values[static_cast<size_t>(st.progress_col)];
        double inflight = values[static_cast<size_t>(st.inflight_col)];
        if (progress == 0 && inflight > 0) {
            st.streak++;
            if (st.streak >= rule.consecutive && !st.tripped) {
                st.tripped = true;
                emit(AnomalyEvent::Type::kStall, rule.progress_series, t,
                     inflight, 0);
            }
        } else {
            st.streak = 0;
            st.tripped = false;
        }
    }
}

size_t
AnomalyDetector::count(AnomalyEvent::Type type) const
{
    size_t n = 0;
    for (const AnomalyEvent &ev : events_)
        if (ev.type == type)
            n++;
    return n;
}

const AnomalyEvent *
AnomalyDetector::first(AnomalyEvent::Type type) const
{
    for (const AnomalyEvent &ev : events_)
        if (ev.type == type)
            return &ev;
    return nullptr;
}

std::string
AnomalyDetector::dump() const
{
    std::string out;
    for (const AnomalyEvent &ev : events_)
        out += ev.to_string() + "\n";
    return out;
}

std::string
AnomalyDetector::to_json() const
{
    std::string out = "{\n  \"events\": [\n";
    bool first_ev = true;
    for (const AnomalyEvent &ev : events_) {
        if (!first_ev)
            out += ",\n";
        first_ev = false;
        out += strprintf(
            "    {\"type\": \"%s\", \"series\": \"%s\", \"t_ns\": %llu, "
            "\"value\": %.3f, \"reference\": %.3f}",
            AnomalyEvent::type_name(ev.type), ev.series.c_str(),
            (unsigned long long)ev.t, ev.value, ev.reference);
    }
    out += "\n  ]\n}\n";
    return out;
}

Status
AnomalyDetector::write_json(const std::string &path) const
{
    FILE *f = fopen(path.c_str(), "w");
    if (f == nullptr)
        return Status(StatusCode::kIoError, "cannot open " + path);
    std::string j = to_json();
    size_t n = fwrite(j.data(), 1, j.size(), f);
    fclose(f);
    if (n != j.size())
        return Status(StatusCode::kIoError, "short write to " + path);
    return Status::ok();
}

} // namespace raizn::obs
