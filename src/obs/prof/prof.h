/**
 * @file
 * Host-side scoped profiler: deterministic, always compiled, zero cost
 * when disabled.
 *
 * The simulator's other observability layers (metrics, trace, timeline)
 * run on the *virtual* clock and explain what the simulated array did.
 * This layer answers the complementary question — where the simulator
 * process itself spends wall time — so optimisation work (SIMD parity,
 * zero-copy buffers, parallel simulation) starts from a measured
 * baseline instead of a guess.
 *
 * Usage:
 *
 *     void RaiznVolume::process_write(...) {
 *         PROF_SCOPE("raizn.write");
 *         ...
 *     }
 *
 * Each PROF_SCOPE names a call site. While the profiler is enabled
 * (prof::enable()), every scope entry/exit records dual-clock timing —
 * host std::chrono::steady_clock nanoseconds and virtual EventLoop
 * nanoseconds — into a call tree keyed by (parent node, site), giving
 * both per-site aggregates (hits, self/total on both clocks) and a
 * collapsed-stack flamegraph (`folded()`) consumable by flamegraph.pl
 * or speedscope.
 *
 * When disabled (the default), a PROF_SCOPE costs one predictable
 * branch on a global bool; no clock is read and no memory is touched.
 * A handful of unconditional counters (events dispatched, hot-path
 * allocations, memcpy bytes) are plain increments and stay live even
 * when timing is off so benches can always report them.
 *
 * Single-threaded by design: the profiler shares the simulator's
 * single-threaded discipline and takes no locks. All state is global
 * because the process hosts exactly one simulation at a time.
 */
#pragma once

#include <cstdint>
#include <string>

namespace raizn {
namespace prof {

/**
 * One named call site (or event-loop callback tag). Sites live forever
 * once interned; aggregates are cleared by reset(). `queue_wait_ns` is
 * host time between schedule and dispatch, attributed by the event
 * loop to the callback's tag site.
 */
struct Site {
    std::string name;
    uint64_t hits = 0;
    uint64_t host_total_ns = 0;
    uint64_t host_self_ns = 0;
    uint64_t virt_total_ns = 0;
    uint64_t virt_self_ns = 0;
    uint64_t queue_wait_ns = 0;
};

/// Master switch. Read inline by every PROF_SCOPE; flipped only by
/// enable()/disable().
extern bool g_enabled;

/// Virtual clock mirror: the EventLoop stores now() here before each
/// dispatch so scopes can stamp virtual time without a dependency on
/// the sim layer (prof sits *below* raizn_sim).
extern uint64_t g_virtual_now;

/// Unconditional hot-path counters (plain increments, never gated).
extern uint64_t g_events_dispatched;
extern uint64_t g_alloc_count;
extern uint64_t g_alloc_bytes;
extern uint64_t g_copy_count;
extern uint64_t g_copy_bytes;

inline bool enabled() { return g_enabled; }
inline void set_virtual_now(uint64_t t) { g_virtual_now = t; }
inline void count_event() { g_events_dispatched++; }

/// Records a hot-path buffer allocation of `bytes` bytes.
inline void
count_alloc(uint64_t bytes)
{
    g_alloc_count++;
    g_alloc_bytes += bytes;
}

/// Records a hot-path memcpy/assign of `bytes` bytes.
inline void
count_copy(uint64_t bytes)
{
    g_copy_count++;
    g_copy_bytes += bytes;
}

/// Host monotonic clock in ns (steady_clock).
uint64_t host_now_ns();

/**
 * Returns the unique Site for `name`, creating it on first use. Sites
 * are identified by string content; the returned pointer is stable for
 * the life of the process. PROF_SCOPE caches the result in a
 * function-local static so interning happens once per call site.
 */
Site *intern_site(const char *name);

/**
 * Site for an event-loop callback tag: interned as "sim.cb.<tag>"
 * ("sim.cb.untagged" for nullptr). Keyed by pointer identity — tags
 * must be string literals (or otherwise immortal) — so the per-dispatch
 * lookup is a pointer-hash, not a string hash.
 */
Site *event_site(const char *tag);

/// Adds host-clock queue wait (schedule -> dispatch) to a tag site.
inline void
add_queue_wait(Site *s, uint64_t host_ns)
{
    s->queue_wait_ns += host_ns;
}

/**
 * Starts a measurement window: clears the call tree and all site
 * aggregates, snapshots the unconditional counters, and turns scope
 * recording on. Must not be called with scopes live.
 */
void enable();

/// Ends the measurement window (idempotent). Scope objects already on
/// the stack finish recording normally.
void disable();

/// Clears the call tree, site aggregates, and window state. Sites
/// themselves (the name registry) persist.
void reset();

/// Host ns covered by the last enable()..disable() window (live value
/// while enabled). 0 before the first enable().
uint64_t wall_ns();

/**
 * Fraction of the measurement window attributed to top-level scopes:
 * sum of root-node host totals / wall_ns(). The fig8 instrumented pass
 * asserts this >= 0.95.
 */
double coverage();

/// Events dispatched / allocations / bytes during the current (or
/// last) measurement window — deltas of the unconditional counters.
struct WindowCounters {
    uint64_t events_dispatched = 0;
    uint64_t alloc_count = 0;
    uint64_t alloc_bytes = 0;
    uint64_t copy_count = 0;
    uint64_t copy_bytes = 0;
};
WindowCounters window_counters();

/// Events per second of host time over the measurement window.
double events_per_sec();

/**
 * Collapsed-stack flamegraph ("folded") export: one line per call-tree
 * path, `root;child;leaf <host_self_ns>`, lexicographically sorted so
 * the output is stable across runs with identical call structure.
 */
std::string folded();

/**
 * JSON summary: window wall/coverage/events-per-sec, window counters,
 * and per-site aggregate rows sorted by host self time (descending,
 * name as tie-break).
 */
std::string summary_json();

/// Human-readable top-N sites by host self time.
std::string table(size_t top_n);

/// Writes `text` to `path`; returns false (and logs) on failure.
bool write_file(const std::string &path, const std::string &text);

/**
 * RAII scope. Constructing with the profiler disabled is a single
 * branch; enabled, entry/exit each read both clocks and update the
 * call tree. Scopes must strictly nest (automatic with RAII).
 */
class Scope
{
  public:
    explicit Scope(Site *site)
    {
        if (g_enabled)
            enter(site);
    }
    ~Scope()
    {
        if (active_)
            leave();
    }
    Scope(const Scope &) = delete;
    Scope &operator=(const Scope &) = delete;

  private:
    void enter(Site *site);
    void leave();
    bool active_ = false;
};

} // namespace prof
} // namespace raizn

#define RAIZN_PROF_CONCAT2(a, b) a##b
#define RAIZN_PROF_CONCAT(a, b) RAIZN_PROF_CONCAT2(a, b)

/**
 * Names the enclosing block as a profiler scope. `name` must be a
 * string literal like "subsystem.op"; the site is interned once per
 * call site into a function-local static.
 */
#define PROF_SCOPE(name)                                                     \
    static ::raizn::prof::Site *RAIZN_PROF_CONCAT(prof_site_, __LINE__) =    \
        ::raizn::prof::intern_site(name);                                    \
    ::raizn::prof::Scope RAIZN_PROF_CONCAT(prof_scope_, __LINE__)(           \
        RAIZN_PROF_CONCAT(prof_site_, __LINE__))
