#include "obs/prof/prof.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace raizn {
namespace prof {

bool g_enabled = false;
uint64_t g_virtual_now = 0;
uint64_t g_events_dispatched = 0;
uint64_t g_alloc_count = 0;
uint64_t g_alloc_bytes = 0;
uint64_t g_copy_count = 0;
uint64_t g_copy_bytes = 0;

namespace {

/**
 * Call-tree node. Children of the same parent form a singly linked
 * list scanned linearly on entry — fan-out per parent is small (a few
 * distinct child sites), and first-encounter order makes the tree, and
 * therefore every export, deterministic for a deterministic run.
 */
struct Node {
    Site *site;
    uint32_t parent;       ///< node index; 0 is the synthetic root
    uint32_t first_child = 0;
    uint32_t next_sibling = 0;
    uint64_t hits = 0;
    uint64_t host_total_ns = 0;
    uint64_t host_self_ns = 0;
    uint64_t virt_total_ns = 0;
    uint64_t virt_self_ns = 0;
};

/// Live-scope shadow stack: child time accumulates here so self time
/// can be derived without walking the tree on exit.
struct Frame {
    uint32_t node;
    uint64_t t0_host;
    uint64_t t0_virt;
    uint64_t child_host = 0;
    uint64_t child_virt = 0;
};

struct State {
    /// Registry: content-keyed; values own the sites (stable address).
    std::unordered_map<std::string, std::unique_ptr<Site>> sites;
    /// Event-tag cache: literal-pointer keyed, "sim.cb.<tag>" sites.
    std::unordered_map<const void *, Site *> tag_sites;
    std::vector<Node> nodes;
    std::vector<Frame> stack;
    uint64_t window_start_host = 0;
    uint64_t window_wall_ns = 0;
    WindowCounters window_base;
    bool window_open = false;
};

State &
state()
{
    static State s;
    if (s.nodes.empty())
        s.nodes.push_back(Node{nullptr, 0}); // synthetic root, index 0
    return s;
}

WindowCounters
raw_counters()
{
    WindowCounters c;
    c.events_dispatched = g_events_dispatched;
    c.alloc_count = g_alloc_count;
    c.alloc_bytes = g_alloc_bytes;
    c.copy_count = g_copy_count;
    c.copy_bytes = g_copy_bytes;
    return c;
}

void
clear_aggregates(State &s)
{
    s.nodes.clear();
    s.nodes.push_back(Node{nullptr, 0});
    s.stack.clear();
    for (auto &kv : s.sites) {
        Site &site = *kv.second;
        site.hits = 0;
        site.host_total_ns = 0;
        site.host_self_ns = 0;
        site.virt_total_ns = 0;
        site.virt_self_ns = 0;
        site.queue_wait_ns = 0;
    }
}

/// Escapes a scope name for JSON (names are plain identifiers today,
/// but event tags are caller-supplied).
std::string
json_escape(const std::string &in)
{
    std::string out;
    out.reserve(in.size());
    for (char c : in) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

void
fold_walk(const State &s, uint32_t node, std::string prefix,
          std::vector<std::string> *lines)
{
    const Node &n = s.nodes[node];
    std::string path = prefix.empty()
        ? n.site->name
        : prefix + ";" + n.site->name;
    if (n.host_self_ns > 0 || n.first_child == 0) {
        lines->push_back(
            strprintf("%s %llu", path.c_str(),
                      static_cast<unsigned long long>(n.host_self_ns)));
    }
    for (uint32_t c = n.first_child; c != 0; c = s.nodes[c].next_sibling)
        fold_walk(s, c, path, lines);
}

std::vector<const Site *>
sites_by_self()
{
    State &s = state();
    std::vector<const Site *> v;
    v.reserve(s.sites.size());
    for (const auto &kv : s.sites)
        if (kv.second->hits > 0 || kv.second->queue_wait_ns > 0)
            v.push_back(kv.second.get());
    std::sort(v.begin(), v.end(), [](const Site *a, const Site *b) {
        if (a->host_self_ns != b->host_self_ns)
            return a->host_self_ns > b->host_self_ns;
        return a->name < b->name;
    });
    return v;
}

} // namespace

uint64_t
host_now_ns()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

Site *
intern_site(const char *name)
{
    State &s = state();
    auto it = s.sites.find(name);
    if (it != s.sites.end())
        return it->second.get();
    auto site = std::make_unique<Site>();
    site->name = name;
    Site *p = site.get();
    s.sites.emplace(site->name, std::move(site));
    return p;
}

Site *
event_site(const char *tag)
{
    State &s = state();
    const void *key = tag != nullptr ? static_cast<const void *>(tag)
                                     : static_cast<const void *>(&s);
    auto it = s.tag_sites.find(key);
    if (it != s.tag_sites.end())
        return it->second;
    std::string name =
        std::string("sim.cb.") + (tag != nullptr ? tag : "untagged");
    Site *site = intern_site(name.c_str());
    s.tag_sites.emplace(key, site);
    return site;
}

void
enable()
{
    State &s = state();
    assert(s.stack.empty() && "enable() with profiler scopes live");
    clear_aggregates(s);
    s.window_base = raw_counters();
    s.window_start_host = host_now_ns();
    s.window_wall_ns = 0;
    s.window_open = true;
    g_enabled = true;
}

void
disable()
{
    State &s = state();
    if (s.window_open) {
        s.window_wall_ns = host_now_ns() - s.window_start_host;
        s.window_open = false;
    }
    g_enabled = false;
}

void
reset()
{
    State &s = state();
    g_enabled = false;
    clear_aggregates(s);
    s.window_open = false;
    s.window_wall_ns = 0;
    s.window_start_host = 0;
    s.window_base = WindowCounters{};
}

uint64_t
wall_ns()
{
    const State &s = state();
    if (s.window_open)
        return host_now_ns() - s.window_start_host;
    return s.window_wall_ns;
}

double
coverage()
{
    const State &s = state();
    uint64_t wall = wall_ns();
    if (wall == 0)
        return 0.0;
    uint64_t covered = 0;
    const Node &root = s.nodes[0];
    for (uint32_t c = root.first_child; c != 0;
         c = s.nodes[c].next_sibling)
        covered += s.nodes[c].host_total_ns;
    return static_cast<double>(covered) / static_cast<double>(wall);
}

WindowCounters
window_counters()
{
    const State &s = state();
    WindowCounters now = raw_counters();
    WindowCounters d;
    d.events_dispatched =
        now.events_dispatched - s.window_base.events_dispatched;
    d.alloc_count = now.alloc_count - s.window_base.alloc_count;
    d.alloc_bytes = now.alloc_bytes - s.window_base.alloc_bytes;
    d.copy_count = now.copy_count - s.window_base.copy_count;
    d.copy_bytes = now.copy_bytes - s.window_base.copy_bytes;
    return d;
}

double
events_per_sec()
{
    uint64_t wall = wall_ns();
    if (wall == 0)
        return 0.0;
    return static_cast<double>(window_counters().events_dispatched) /
        (static_cast<double>(wall) * 1e-9);
}

void
Scope::enter(Site *site)
{
    State &s = state();
    uint32_t parent =
        s.stack.empty() ? 0u : s.stack.back().node;
    // Find or create the (parent, site) child node.
    uint32_t node = 0;
    uint32_t prev = 0;
    for (uint32_t c = s.nodes[parent].first_child; c != 0;
         c = s.nodes[c].next_sibling) {
        if (s.nodes[c].site == site) {
            node = c;
            break;
        }
        prev = c;
    }
    if (node == 0) {
        node = static_cast<uint32_t>(s.nodes.size());
        s.nodes.push_back(Node{site, parent});
        if (prev != 0)
            s.nodes[prev].next_sibling = node;
        else
            s.nodes[parent].first_child = node;
    }
    Frame f;
    f.node = node;
    f.t0_host = host_now_ns();
    f.t0_virt = g_virtual_now;
    s.stack.push_back(f);
    active_ = true;
}

void
Scope::leave()
{
    State &s = state();
    assert(!s.stack.empty());
    Frame f = s.stack.back();
    s.stack.pop_back();
    uint64_t host = host_now_ns() - f.t0_host;
    uint64_t virt = g_virtual_now - f.t0_virt;
    uint64_t host_self = host > f.child_host ? host - f.child_host : 0;
    uint64_t virt_self = virt > f.child_virt ? virt - f.child_virt : 0;

    Node &n = s.nodes[f.node];
    n.hits++;
    n.host_total_ns += host;
    n.host_self_ns += host_self;
    n.virt_total_ns += virt;
    n.virt_self_ns += virt_self;

    Site &site = *n.site;
    site.hits++;
    site.host_total_ns += host;
    site.host_self_ns += host_self;
    site.virt_total_ns += virt;
    site.virt_self_ns += virt_self;

    if (!s.stack.empty()) {
        s.stack.back().child_host += host;
        s.stack.back().child_virt += virt;
    }
}

std::string
folded()
{
    const State &s = state();
    std::vector<std::string> lines;
    const Node &root = s.nodes[0];
    for (uint32_t c = root.first_child; c != 0;
         c = s.nodes[c].next_sibling)
        fold_walk(s, c, "", &lines);
    std::sort(lines.begin(), lines.end());
    std::string out;
    for (const std::string &l : lines) {
        out += l;
        out += '\n';
    }
    return out;
}

std::string
summary_json()
{
    WindowCounters c = window_counters();
    std::string out = "{\n";
    out += strprintf("  \"wall_ns\": %llu,\n",
                     static_cast<unsigned long long>(wall_ns()));
    out += strprintf("  \"coverage\": %.4f,\n", coverage());
    out += strprintf("  \"events_per_sec\": %.1f,\n", events_per_sec());
    out += "  \"counters\": {\n";
    out += strprintf("    \"events_dispatched\": %llu,\n",
                     static_cast<unsigned long long>(c.events_dispatched));
    out += strprintf("    \"alloc_count\": %llu,\n",
                     static_cast<unsigned long long>(c.alloc_count));
    out += strprintf("    \"alloc_bytes\": %llu,\n",
                     static_cast<unsigned long long>(c.alloc_bytes));
    out += strprintf("    \"copy_count\": %llu,\n",
                     static_cast<unsigned long long>(c.copy_count));
    out += strprintf("    \"copy_bytes\": %llu\n",
                     static_cast<unsigned long long>(c.copy_bytes));
    out += "  },\n  \"scopes\": [\n";
    std::vector<const Site *> v = sites_by_self();
    for (size_t i = 0; i < v.size(); ++i) {
        const Site *p = v[i];
        out += strprintf(
            "    {\"name\": \"%s\", \"hits\": %llu, "
            "\"host_total_ns\": %llu, \"host_self_ns\": %llu, "
            "\"virt_total_ns\": %llu, \"virt_self_ns\": %llu, "
            "\"queue_wait_ns\": %llu}%s\n",
            json_escape(p->name).c_str(),
            static_cast<unsigned long long>(p->hits),
            static_cast<unsigned long long>(p->host_total_ns),
            static_cast<unsigned long long>(p->host_self_ns),
            static_cast<unsigned long long>(p->virt_total_ns),
            static_cast<unsigned long long>(p->virt_self_ns),
            static_cast<unsigned long long>(p->queue_wait_ns),
            i + 1 < v.size() ? "," : "");
    }
    out += "  ]\n}\n";
    return out;
}

std::string
table(size_t top_n)
{
    std::vector<const Site *> v = sites_by_self();
    if (v.size() > top_n)
        v.resize(top_n);
    std::string out = strprintf(
        "%-32s %10s %12s %12s %12s\n", "scope", "hits", "self_ms",
        "total_ms", "qwait_ms");
    for (const Site *p : v) {
        out += strprintf(
            "%-32s %10llu %12.3f %12.3f %12.3f\n", p->name.c_str(),
            static_cast<unsigned long long>(p->hits),
            static_cast<double>(p->host_self_ns) * 1e-6,
            static_cast<double>(p->host_total_ns) * 1e-6,
            static_cast<double>(p->queue_wait_ns) * 1e-6);
    }
    return out;
}

bool
write_file(const std::string &path, const std::string &text)
{
    FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        LOG_ERROR("prof: cannot open %s for writing", path.c_str());
        return false;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    return true;
}

} // namespace prof
} // namespace raizn
