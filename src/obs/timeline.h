/**
 * @file
 * Time-series telemetry on the virtual clock.
 *
 * A Timeline periodically snapshots every metric in a MetricsRegistry
 * into ring-buffered rows: gauges sample as-is, counters additionally
 * derive a per-second rate over the interval, and latency metrics
 * report *windowed* percentiles (p50/p99 of the samples recorded during
 * the interval, via Histogram::delta against the previous snapshot)
 * instead of cumulative-only numbers. This is what turns end-of-run
 * aggregates into the mid-run story the paper's figures tell: Fig. 10's
 * GC throughput collapse and Fig. 12's rebuild interference are both
 * visible only as time series.
 *
 * Sampling is lazy and purely observational: the Timeline installs an
 * EventLoop probe and emits a row whenever dispatched events cross an
 * interval boundary. It never schedules events, so it cannot keep the
 * loop alive, perturb deterministic replay, or change any completion
 * time. The cost is that a row is stamped at the boundary but read at
 * the first event at-or-after it; in a discrete-event simulation the
 * gap is one event's spacing. Callers flush the final partial interval
 * with sample_now() before exporting.
 *
 * Registered probes run immediately before each row is read — this is
 * where point-in-time gauges (queue depth, FTL free blocks, zone
 * census, stripe-buffer backlog) get refreshed.
 */
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "common/units.h"
#include "obs/metrics.h"

namespace raizn {
class EventLoop;
} // namespace raizn

namespace raizn::obs {

class AnomalyDetector;

struct TimelineConfig {
    Tick interval = 100 * kNsPerMs; ///< sampling period (virtual time)
    size_t capacity = 4096; ///< ring capacity in rows; older rows drop
};

/// One sample: the values of every column at virtual time `t`.
struct TimelineRow {
    Tick t = 0;
    uint64_t host_ns = 0; ///< host steady-clock ns since start()
    std::vector<double> values; ///< parallel to Timeline::columns()
};

class Timeline
{
  public:
    /// A gauge-refresh hook, run before each sample is read.
    using ProbeFn = std::function<void()>;

    Timeline(EventLoop *loop, MetricsRegistry *reg,
             TimelineConfig cfg = {});
    ~Timeline();
    Timeline(const Timeline &) = delete;
    Timeline &operator=(const Timeline &) = delete;

    void add_probe(ProbeFn probe) { probes_.push_back(std::move(probe)); }

    /// Attaches an anomaly detector fed each row as it is recorded.
    /// Non-owning; pass nullptr to detach.
    void set_detector(AnomalyDetector *det) { detector_ = det; }

    /**
     * Fixes the column set from the registry's current contents, links
     * the event loop's own scheduling stats ("sim.*" counters,
     * "sim.sched_delay_ns", a "sim.pending" in-flight gauge), and arms
     * the sampler. Metrics registered after start() are not sampled.
     */
    void start();

    /// Disarms the sampler (rows already recorded are kept).
    void stop();
    bool running() const { return running_; }

    /**
     * Records a row at loop->now() regardless of the interval boundary
     * (no-op if no time passed since the last row). Benches call this
     * once after the workload drains so the final partial interval is
     * not lost.
     */
    void sample_now();

    const TimelineConfig &config() const { return cfg_; }
    /// Column names, fixed at start(). Counters contribute "<name>"
    /// and "<name>.rate"; latency metrics "<name>.win_n",
    /// "<name>.win_p50_ns", "<name>.win_p99_ns"; gauges "<name>".
    const std::vector<std::string> &columns() const { return columns_; }
    /// Recorded rows, oldest first.
    const std::deque<TimelineRow> &rows() const { return rows_; }
    size_t size() const { return rows_.size(); }
    /// Rows evicted by ring wraparound.
    uint64_t dropped() const { return dropped_; }

    /// Index of a column by exact name, or -1.
    int column_index(const std::string &name) const;
    /// Values of one column across all recorded rows.
    std::vector<double> series(const std::string &name) const;

    /// CSV: "t_s,host_ns,<col>,..." header then one row per sample.
    std::string to_csv() const;
    Status write_csv(const std::string &path) const;

    /// JSON: {"interval_ns":..., "columns":[...],
    /// "rows":[[t_ns,host_ns,...]]}.
    std::string to_json() const;
    Status write_json(const std::string &path) const;

  private:
    /// Per-registry-metric sampling plan entry.
    struct Source {
        std::string name;
        MetricSample::Kind kind = MetricSample::Kind::kCounter;
        double prev_value = 0; ///< counters: value at the last row
        Histogram prev_hist; ///< latency: snapshot at the last row
    };

    void on_event(Tick now);
    void take_sample(Tick t);

    EventLoop *loop_;
    MetricsRegistry *reg_;
    TimelineConfig cfg_;
    std::vector<ProbeFn> probes_;
    AnomalyDetector *detector_ = nullptr;

    bool running_ = false;
    Tick next_due_ = 0;
    Tick last_t_ = 0; ///< time of the previous row (rate denominator)
    uint64_t host_start_ns_ = 0; ///< host clock at start()
    std::vector<Source> sources_;
    std::vector<std::string> columns_;
    std::deque<TimelineRow> rows_;
    uint64_t dropped_ = 0;
    Gauge *pending_gauge_ = nullptr; ///< "sim.pending"
};

} // namespace raizn::obs
