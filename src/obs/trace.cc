#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <map>

#include "common/logging.h"

namespace raizn::obs {

TraceRecorder::TraceRecorder(size_t capacity)
    : capacity_(capacity ? capacity : 1)
{
    ring_.reserve(std::min<size_t>(capacity_, 4096));
}

uint64_t
TraceRecorder::begin_span(const char *stage, uint64_t req, uint32_t track,
                          Tick now)
{
    uint64_t token = ++next_token_;
    open_.push_back(OpenSpan{token, stage, req, track, now});
    return token;
}

void
TraceRecorder::end_span(uint64_t token, Tick now)
{
    for (size_t i = 0; i < open_.size(); ++i) {
        if (open_[i].token != token)
            continue;
        const OpenSpan &o = open_[i];
        push(TraceSpan{o.stage, o.req, o.track, o.start, now});
        open_.erase(open_.begin() + i);
        return;
    }
}

void
TraceRecorder::add_span(const char *stage, uint64_t req, uint32_t track,
                        Tick start, Tick end)
{
    push(TraceSpan{stage, req, track, start, end});
}

void
TraceRecorder::instant(const char *stage, uint64_t req, uint32_t track,
                       Tick now)
{
    push(TraceSpan{stage, req, track, now, now});
}

void
TraceRecorder::push(const TraceSpan &s)
{
    if (ring_.size() < capacity_) {
        ring_.push_back(s);
        return;
    }
    ring_[head_] = s;
    head_ = (head_ + 1) % capacity_;
    wrapped_ = true;
    dropped_++;
}

size_t
TraceRecorder::size() const
{
    return ring_.size();
}

void
TraceRecorder::clear()
{
    ring_.clear();
    head_ = 0;
    wrapped_ = false;
    dropped_ = 0;
    open_.clear();
}

std::vector<TraceSpan>
TraceRecorder::spans() const
{
    if (!wrapped_)
        return ring_;
    std::vector<TraceSpan> out;
    out.reserve(ring_.size());
    for (size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % capacity_]);
    return out;
}

std::string
TraceRecorder::to_chrome_json(uint32_t num_devices) const
{
    // Chrome's trace viewer expects ts/dur in microseconds; the
    // virtual clock is nanoseconds, so export fractional ts.
    std::string out = "{\"traceEvents\":[\n";
    bool first = true;
    auto emit = [&out, &first](const std::string &ev) {
        if (!first)
            out += ",\n";
        first = false;
        out += ev;
    };
    auto track_name = [num_devices](uint32_t track) -> std::string {
        if (track == kTrackRequest)
            return "requests";
        if (track == kTrackMetadata)
            return "metadata";
        return strprintf("dev%u", track - kTrackDevBase);
    };
    uint32_t max_track = kTrackDevBase + (num_devices ? num_devices - 1 : 0);
    for (uint32_t t = 0; t <= max_track; ++t) {
        emit(strprintf("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                       "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                       t, track_name(t).c_str()));
        // sort_index keeps the request track on top in the viewer.
        emit(strprintf("{\"name\":\"thread_sort_index\",\"ph\":\"M\","
                       "\"pid\":1,\"tid\":%u,\"args\":{\"sort_index\":%u}}",
                       t, t));
    }
    for (const TraceSpan &s : spans()) {
        if (s.start == s.end) {
            emit(strprintf("{\"name\":\"%s\",\"ph\":\"i\",\"pid\":1,"
                           "\"tid\":%u,\"ts\":%.3f,\"s\":\"t\","
                           "\"args\":{\"req\":%llu}}",
                           s.stage, s.track, s.start / 1000.0,
                           (unsigned long long)s.req));
        } else {
            emit(strprintf("{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,"
                           "\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f,"
                           "\"args\":{\"req\":%llu}}",
                           s.stage, s.track, s.start / 1000.0,
                           s.duration() / 1000.0,
                           (unsigned long long)s.req));
        }
    }
    out += "\n],\"displayTimeUnit\":\"ns\"}\n";
    return out;
}

Status
TraceRecorder::write_chrome_json(const std::string &path,
                                 uint32_t num_devices) const
{
    FILE *f = fopen(path.c_str(), "w");
    if (f == nullptr)
        return Status(StatusCode::kIoError, "cannot open " + path);
    std::string j = to_chrome_json(num_devices);
    size_t n = fwrite(j.data(), 1, j.size(), f);
    fclose(f);
    if (n != j.size())
        return Status(StatusCode::kIoError, "short write to " + path);
    return Status::ok();
}

std::string
TraceRecorder::stage_breakdown() const
{
    struct Agg {
        Histogram hist;
        uint64_t total = 0;
    };
    // Keyed by stage string content (static strings may differ by
    // pointer across translation units).
    std::map<std::string, Agg> agg;
    for (const TraceSpan &s : spans()) {
        if (s.start == s.end)
            continue; // instants carry no duration
        Agg &a = agg[s.stage];
        a.hist.add(s.duration());
        a.total += s.duration();
    }
    std::vector<std::pair<std::string, const Agg *>> rows;
    rows.reserve(agg.size());
    for (const auto &[name, a] : agg)
        rows.emplace_back(name, &a);
    std::sort(rows.begin(), rows.end(), [](const auto &x, const auto &y) {
        return x.second->total > y.second->total;
    });

    std::string out = strprintf("%-24s %8s %12s %10s %10s %10s\n", "stage",
                                "count", "total_us", "mean_us", "p50_us",
                                "p99_us");
    for (const auto &[name, a] : rows) {
        out += strprintf("%-24s %8llu %12.1f %10.1f %10.1f %10.1f\n",
                         name.c_str(),
                         (unsigned long long)a->hist.count(),
                         a->total / 1000.0, a->hist.mean() / 1000.0,
                         a->hist.p50() / 1000.0, a->hist.p99() / 1000.0);
    }
    if (dropped_ > 0)
        out += strprintf("(ring wrapped: %llu older spans dropped)\n",
                         (unsigned long long)dropped_);
    return out;
}

double
TraceRecorder::request_coverage(uint64_t req, const char *total_stage) const
{
    std::string total_name = total_stage;
    Tick t_start = 0, t_end = 0;
    bool have_total = false;
    std::vector<std::pair<Tick, Tick>> ivs;
    for (const TraceSpan &s : spans()) {
        if (s.req != req || s.start == s.end)
            continue;
        if (!have_total && total_name == s.stage) {
            t_start = s.start;
            t_end = s.end;
            have_total = true;
        } else {
            ivs.emplace_back(s.start, s.end);
        }
    }
    if (!have_total || t_end <= t_start)
        return 0.0;
    // Clamp children to the total window and measure the union of the
    // merged intervals, so concurrent device IOs count once.
    for (auto &iv : ivs) {
        iv.first = std::max(iv.first, t_start);
        iv.second = std::min(iv.second, t_end);
    }
    std::sort(ivs.begin(), ivs.end());
    uint64_t covered = 0;
    Tick cur_s = 0, cur_e = 0;
    bool open = false;
    for (const auto &[s, e] : ivs) {
        if (e <= s)
            continue;
        if (!open) {
            cur_s = s;
            cur_e = e;
            open = true;
        } else if (s <= cur_e) {
            cur_e = std::max(cur_e, e);
        } else {
            covered += cur_e - cur_s;
            cur_s = s;
            cur_e = e;
        }
    }
    if (open)
        covered += cur_e - cur_s;
    return static_cast<double>(covered) / (t_end - t_start);
}

} // namespace raizn::obs
