/**
 * @file
 * SLO / anomaly detection over Timeline rows.
 *
 * Three rule families, each naming the column(s) it watches:
 *
 *  - Throughput collapse: an EWMA of the watched series establishes
 *    the "normal" level; a sample below collapse_frac x EWMA trips a
 *    `throughput_collapse` event. While tripped the EWMA is frozen (a
 *    sustained collapse must not become the new normal); recovery
 *    above recover_frac x EWMA emits `throughput_recovered` and
 *    resumes tracking. This is how Fig. 10's OP-exhaustion collapse is
 *    detected rather than eyeballed.
 *
 *  - Latency burn: the watched series (typically a windowed p99
 *    column) exceeding a budget for `consecutive` samples in a row
 *    emits `latency_burn` — once per episode, re-arming when the
 *    series drops back under budget.
 *
 *  - Stall: a progress series (a rate column) at zero while an
 *    in-flight gauge is non-zero for `consecutive` samples emits
 *    `stall` — work is queued but nothing completes.
 *
 * Events are structured (type, triggering series, virtual timestamp,
 * observed value, reference level) and exportable as JSON, so benches
 * and CI can assert on them instead of parsing stdout.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"

namespace raizn::obs {

struct AnomalyEvent {
    enum class Type {
        kThroughputCollapse,
        kThroughputRecovered,
        kLatencyBurn,
        kStall,
    };
    Type type = Type::kThroughputCollapse;
    std::string series; ///< triggering column
    Tick t = 0; ///< virtual time of the triggering row
    double value = 0; ///< observed value at the trigger
    double reference = 0; ///< EWMA / budget the value was judged against

    static const char *type_name(Type t);
    std::string to_string() const;
};

/// EWMA throughput-collapse detection on one column.
struct CollapseRule {
    std::string series; ///< e.g. "mdraid.sectors_written.rate"
    double ewma_alpha = 0.3; ///< weight of the newest sample
    double collapse_frac = 0.5; ///< trip below this fraction of EWMA
    double recover_frac = 0.8; ///< re-arm above this fraction of EWMA
    uint32_t warmup_samples = 5; ///< rows to absorb before judging
    double min_reference = 0; ///< never trip while EWMA is below this
};

/// Latency budget on one column (typically a windowed p99).
struct LatencyBurnRule {
    std::string series; ///< e.g. "raizn.write.total_ns.win_p99_ns"
    double budget_ns = 0;
    uint32_t consecutive = 3; ///< samples over budget before tripping
};

/// No-progress detection: rate pinned at zero with work in flight.
struct StallRule {
    std::string progress_series; ///< e.g. "raizn.sectors_written.rate"
    std::string inflight_series; ///< e.g. "sim.pending"
    uint32_t consecutive = 5;
};

struct AnomalyConfig {
    std::vector<CollapseRule> collapse;
    std::vector<LatencyBurnRule> latency_burn;
    std::vector<StallRule> stall;
    size_t max_events = 1024; ///< hard cap; later events are dropped
};

class AnomalyDetector
{
  public:
    explicit AnomalyDetector(AnomalyConfig cfg);

    /**
     * Feeds one timeline row. `columns` must be the row's column-name
     * vector (stable across calls — rule series resolve to indices on
     * first use). Called by Timeline when attached via set_detector;
     * tests may call it directly with synthetic rows.
     */
    void observe(const std::vector<std::string> &columns, Tick t,
                 const std::vector<double> &values);

    const std::vector<AnomalyEvent> &events() const { return events_; }
    size_t count(AnomalyEvent::Type type) const;
    /// First event of `type`, or nullptr.
    const AnomalyEvent *first(AnomalyEvent::Type type) const;

    /// One line per event, in detection order.
    std::string dump() const;
    /// {"events": [{type, series, t_ns, value, reference}, ...]}.
    std::string to_json() const;
    Status write_json(const std::string &path) const;

  private:
    static constexpr int kUnresolved = -2;
    static constexpr int kMissing = -1;

    struct CollapseState {
        int col = kUnresolved;
        double ewma = 0;
        uint32_t n = 0;
        bool tripped = false;
    };
    struct BurnState {
        int col = kUnresolved;
        uint32_t streak = 0;
        bool tripped = false;
    };
    struct StallState {
        int progress_col = kUnresolved;
        int inflight_col = kUnresolved;
        uint32_t streak = 0;
        bool tripped = false;
    };

    static int resolve(const std::vector<std::string> &columns,
                       const std::string &name);
    void emit(AnomalyEvent::Type type, const std::string &series, Tick t,
              double value, double reference);

    AnomalyConfig cfg_;
    std::vector<CollapseState> collapse_;
    std::vector<BurnState> burn_;
    std::vector<StallState> stall_;
    std::vector<AnomalyEvent> events_;
};

} // namespace raizn::obs
