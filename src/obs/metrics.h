/**
 * @file
 * Unified metrics registry: the one tree every layer reports through.
 *
 * A MetricsRegistry holds named counters, gauges, and Histogram-backed
 * latency metrics with hierarchical dot-separated names
 * ("raizn.write.parity_ns", "zns.dev0.read_ns", "fault.dev2.bitflips").
 * Handles are resolved once (by name) and then used as plain pointers,
 * so the hot path never performs a lookup; existing stats structs link
 * their fields in place, so migrated layers pay zero extra cost per
 * operation.
 *
 * Exports: a sorted human-readable dump(), a JSON object keyed by
 * metric name, and a shared "key=value" renderer that is the single
 * source of truth for the legacy VolumeStats / MdVolumeStats dump
 * formats.
 */
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"

namespace raizn::obs {

/// Monotonically increasing event count. Owned by the registry.
class Counter
{
  public:
    void inc(uint64_t delta = 1) { value_ += delta; }
    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/// Point-in-time value (queue depth, open zones, ...).
class Gauge
{
  public:
    void set(uint64_t v) { value_ = v; }
    uint64_t value() const { return value_; }

  private:
    uint64_t value_ = 0;
};

/// Latency distribution in nanoseconds, backed by the log-bucketed
/// Histogram (so percentiles, not just means — tail latency matters).
class LatencyMetric
{
  public:
    void record(uint64_t ns) { hist_.add(ns); }
    const Histogram &histogram() const { return hist_; }
    void reset() { hist_.clear(); }

  private:
    Histogram hist_;
};

/// One metric in a registry snapshot.
struct MetricSample {
    enum class Kind { kCounter, kGauge, kLatency };
    std::string name;
    Kind kind = Kind::kCounter;
    uint64_t value = 0; ///< counter/gauge value
    const Histogram *hist = nullptr; ///< latency metrics only
};

class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /**
     * Find-or-create: repeated calls with the same name return the
     * same handle, so layers can resolve once at attach time and keep
     * the pointer. Handles stay valid for the registry's lifetime.
     */
    Counter *counter(const std::string &name);
    Gauge *gauge(const std::string &name);
    LatencyMetric *latency(const std::string &name);

    /**
     * Links an externally owned counter field into the tree (reads
     * through the pointer at export time). This is how the legacy
     * stats structs migrate without changing their hot paths; `src`
     * must outlive the registry or be unlinked by re-linking the name.
     */
    void link_counter(const std::string &name, const uint64_t *src);
    /// Links an externally owned histogram (read-only).
    void link_histogram(const std::string &name, const Histogram *src);

    size_t size() const { return entries_.size(); }

    /// Name-sorted snapshot of every metric.
    std::vector<MetricSample> snapshot() const;

    /**
     * Human rendering: one "name=value" line per counter/gauge, one
     * summary line per latency metric, sorted by name so related
     * metrics group into their hierarchy.
     */
    std::string dump() const;

    /**
     * JSON object keyed by metric name. Counters/gauges render as
     * numbers; latency metrics as {count, mean_ns, p50_ns, p95_ns,
     * p99_ns, p999_ns, max_ns}.
     */
    std::string to_json() const;
    Status write_json(const std::string &path) const;

  private:
    struct Entry {
        std::string name;
        MetricSample::Kind kind;
        // Exactly one of the owned objects or external pointers is set.
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<LatencyMetric> latency;
        const uint64_t *ext_value = nullptr;
        const Histogram *ext_hist = nullptr;
    };

    Entry *find(const std::string &name);
    Entry *add(const std::string &name, MetricSample::Kind kind);

    /// Insertion order; snapshot() sorts by name. Deque-like stability
    /// is provided by the unique_ptr indirection inside each Entry.
    std::vector<std::unique_ptr<Entry>> entries_;
};

/// Renders "k1=v1 k2=v2 ..." — the shared legacy stats format.
std::string render_kv(const std::vector<std::pair<const char *, uint64_t>> &kv);

/**
 * Renders a stats struct through its for_each_field enumeration; the
 * field list in the struct is the single source of truth for both
 * this rendering and registry linkage.
 */
template <typename Stats>
std::string
render_stats(const Stats &s)
{
    std::vector<std::pair<const char *, uint64_t>> kv;
    s.for_each_field(
        [&kv](const char *name, const uint64_t &v) { kv.emplace_back(name, v); });
    return render_kv(kv);
}

/// Links every field of a stats struct under "<prefix>.<field>".
template <typename Stats>
void
link_stats(MetricsRegistry &reg, const std::string &prefix, const Stats &s)
{
    s.for_each_field([&reg, &prefix](const char *name, const uint64_t &v) {
        reg.link_counter(prefix + "." + name, &v);
    });
}

} // namespace raizn::obs
