/**
 * @file
 * Byte-provenance ledger: the single source of truth for *where device
 * bytes come from*. Devices record every counted command into a
 * (cause x device x zone) cell at the exact points where their
 * DeviceStats counters move, so ledger totals and device counters are
 * structurally tied together — which is what makes the conservation
 * audit meaningful: for every attached device,
 *
 *     delta(DeviceStats) == sum over causes of delta(ledger cells)
 *     and no cell sits in the kUntagged bucket.
 *
 * A violation means a sub-I/O reached a device without a cause tag
 * (new issuing site missed the taxonomy) or bypassed the recording
 * points (new device path), both of which should fail loudly rather
 * than skew the attribution.
 *
 * On top of the cells the ledger derives the paper's overhead story:
 * write/read amplification factors (total device bytes / acked user
 * bytes), a per-cause amplification breakdown, and per-zone lifetime
 * churn heatmaps (CSV/JSON). Per-cause byte totals link into a
 * MetricsRegistry as counters, so the Timeline derives per-cause byte
 * rates for free and the anomaly rules can watch them; install_probe
 * refreshes `ledger.waf_milli` / `ledger.raf_milli` gauges before
 * each row.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/cause.h"

namespace raizn {
class BlockDevice;
enum class IoOp : uint8_t;
} // namespace raizn

namespace raizn::obs {

class MetricsRegistry;
class Timeline;
class Gauge;

/// One (cause x device x zone) accumulation cell, in sectors/ops.
struct LedgerCell {
    uint64_t write_sectors = 0; ///< writes + appends
    uint64_t read_sectors = 0;
    uint64_t write_ops = 0;
    uint64_t read_ops = 0;
    uint64_t flushes = 0;
    uint64_t zone_resets = 0;
    uint64_t zone_mgmt_ops = 0; ///< finish/open/close

    bool
    empty() const
    {
        return write_sectors == 0 && read_sectors == 0 && write_ops == 0 &&
            read_ops == 0 && flushes == 0 && zone_resets == 0 &&
            zone_mgmt_ops == 0;
    }
};

/// Conservation-audit outcome; summary() renders the violations.
struct LedgerAudit {
    std::vector<std::string> problems;

    bool ok() const { return problems.empty(); }
    std::string summary() const;
};

class IoLedger
{
  public:
    IoLedger() = default;
    IoLedger(const IoLedger &) = delete;
    IoLedger &operator=(const IoLedger &) = delete;

    // ---- Device binding --------------------------------------------
    /**
     * Binds device slot `dev` to `bd`: sizes the zone axis from the
     * device geometry and snapshots its DeviceStats as the audit
     * baseline. Call before the device sees ledger-relevant traffic
     * (attaching later is fine for WAF — the audit only covers deltas
     * since the snapshot). Does NOT install the back-pointer; use
     * BlockDevice::set_ledger (or ZonedArray::attach_ledger, which
     * does both ends for every member).
     */
    void attach_device(uint32_t dev, const BlockDevice *bd);

    /**
     * Re-baselines slot `dev` after its counters restarted: a
     * factory-fresh replace() or a hot-spare promotion swapping in a
     * different BlockDevice. Ledger cells keep accumulating (lifetime
     * attribution survives the swap); only the audit marks move.
     */
    void rebind_device(uint32_t dev, const BlockDevice *bd);

    // ---- Hot-path recording (called by devices) --------------------
    /// Records one counted command. Must mirror the device's stats
    /// increments exactly: only validated commands, actual sector
    /// counts (e.g. the forwarded prefix of a torn write).
    void record(uint32_t dev, IoOp op, Cause cause, uint64_t slba,
                uint32_t nsectors);

    /// dev_submit funnel check: counts a request that reached the
    /// choke point untagged (the audit reports these by stage).
    void note_untagged_submit(const char *stage);

    // ---- Logical (acked user) byte accounting ----------------------
    /// Volume entry points call these as user ops ack successfully;
    /// the WAF/RAF denominators. GC-origin rewrites do not count.
    void note_user_write(uint32_t nsectors);
    void note_user_read(uint32_t nsectors);

    // ---- Derived views ---------------------------------------------
    uint64_t device_write_bytes() const; ///< all causes, all devices
    uint64_t device_read_bytes() const;
    uint64_t cause_write_bytes(Cause c) const;
    uint64_t cause_read_bytes(Cause c) const;
    uint64_t user_write_bytes() const { return logical_.write_bytes; }
    uint64_t user_read_bytes() const { return logical_.read_bytes; }
    uint64_t untagged_ops() const;

    /// Write-amplification factor: device write bytes / acked user
    /// write bytes (0 when no user writes acked yet).
    double waf() const;
    /// Read-amplification factor, same shape for reads.
    double raf() const;
    /// This cause's contribution to the WAF (cause bytes / user bytes).
    double waf_component(Cause c) const;

    /// Aligned per-cause table: bytes, share, amplification component.
    std::string breakdown_table() const;
    /// "cause,write_bytes,read_bytes,ops,waf_component" rows.
    std::string breakdown_csv() const;
    Status write_breakdown_csv(const std::string &path) const;

    /// Zone-churn heatmap: one row per non-empty (device, zone, cause)
    /// cell — pivot on (dev, zone) for lifetime churn, on zone_resets
    /// for the reset heatmap.
    std::string heatmap_csv() const;
    Status write_heatmap_csv(const std::string &path) const;

    /// Full export: totals, WAF/RAF, per-cause breakdown, audit state.
    std::string to_json() const;
    Status write_json(const std::string &path) const;

    // ---- Conservation audit ----------------------------------------
    /// Compares every attached device's DeviceStats delta (since
    /// attach/rebind) against the ledger's per-device cell deltas and
    /// checks the untagged bucket is empty.
    LedgerAudit audit() const;

    // ---- Observability wiring --------------------------------------
    /**
     * Links per-cause byte/op totals as counters under
     * "ledger.cause.<name>.*", the logical byte counters under
     * "ledger.user.*", "ledger.untagged.ops", and creates the
     * "ledger.waf_milli" / "ledger.raf_milli" gauges. Call before
     * Timeline::start() so the columns exist.
     */
    void link_metrics(MetricsRegistry *reg);

    /// Registers the gauge-refresh probe on `tl` (after link_metrics).
    void install_probe(Timeline *tl);

    /// Refreshes the WAF/RAF gauges now (probe body; also callable
    /// directly before a registry export).
    void refresh_gauges();

  private:
    /// Per-cause aggregate totals. Stable storage: link_metrics hands
    /// out pointers into these fields.
    struct CauseAgg {
        uint64_t write_bytes = 0;
        uint64_t read_bytes = 0;
        uint64_t ops = 0;
    };

    struct DevLedger {
        const BlockDevice *bd = nullptr;
        uint64_t zone_size = 0; ///< 0: single-zone axis (conventional)
        uint32_t nzones = 1;
        /// Dense cells, [zone * kNumCauses + cause].
        std::vector<LedgerCell> cells;
        /// Audit baseline: device counters at attach/rebind...
        uint64_t base_sectors_written = 0;
        uint64_t base_sectors_read = 0;
        uint64_t base_write_ops = 0; ///< writes + appends
        uint64_t base_read_ops = 0;
        uint64_t base_flushes = 0;
        uint64_t base_zone_resets = 0;
        /// ...and the ledger's own per-device totals at the same moment.
        LedgerCell mark;
        LedgerCell total; ///< running per-device sum across cells
    };

    LedgerCell &cell(DevLedger &d, uint64_t slba, Cause c);
    void snapshot_baseline(DevLedger &d);

    std::vector<DevLedger> devs_;
    CauseAgg agg_[kNumCauses];
    struct {
        uint64_t write_bytes = 0;
        uint64_t read_bytes = 0;
    } logical_;
    uint64_t untagged_submits_ = 0;
    /// Untagged-submit counts keyed by trace stage, so the audit can
    /// name the issuing site that missed the taxonomy.
    std::map<std::string, uint64_t> untagged_stages_;
    /// waf()/raf() in fixed-point milli units, refreshed by the probe
    /// (registry gauges are integers).
    uint64_t waf_milli_ = 0;
    uint64_t raf_milli_ = 0;
    Gauge *waf_gauge_ = nullptr;
    Gauge *raf_gauge_ = nullptr;
};

} // namespace raizn::obs
