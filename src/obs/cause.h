/**
 * @file
 * Byte-provenance cause taxonomy. Every device-level sub-I/O carries
 * exactly one Cause tag naming the host-side activity that issued it;
 * the IoLedger (obs/ledger.h) folds device traffic into per-cause
 * buckets so write/read amplification can be attributed instead of
 * merely measured. Standalone header (no deps) so the core device
 * interface can include it without pulling in the obs layer.
 *
 * Propagation rules (enforced by the conservation audit, DESIGN.md
 * §13): the issuing site sets the tag when it constructs the
 * IoRequest; intermediaries (retry layer, fault wrappers, chains)
 * preserve it; devices record it at the same points where DeviceStats
 * counters move. kUntagged is never valid at a device — it exists so
 * an unlabeled sub-I/O is loud, not silently misattributed.
 */
#pragma once

#include <cstdint>

namespace raizn::obs {

enum class Cause : uint8_t {
    kUntagged = 0, ///< bug marker: audit fails on any untagged I/O
    kUserData, ///< user payload bytes (and their flushes/reads)
    kParity, ///< parity/Q writes + reads issued to (re)compute them
    kPpLog, ///< RAIZN partial-parity log appends (§5.1)
    kWalMd, ///< WAL + metadata log + superblocks + mount/recovery I/O
    kRelocation, ///< degraded-slot relocation writes and their reads
    kRebuild, ///< rebuild of a replaced device
    kResync, ///< mdraid post-crash parity resync
    kScrub, ///< verification reads and scrub-initiated repairs
    kGc, ///< garbage collection (env cleaning, metadata-zone GC)
    kZoneMgmt, ///< zone reset/finish/open/close from the data path
    kNumCauses,
};

inline constexpr uint32_t kNumCauses =
    static_cast<uint32_t>(Cause::kNumCauses);

constexpr const char *
cause_name(Cause c)
{
    switch (c) {
      case Cause::kUntagged: return "untagged";
      case Cause::kUserData: return "user_data";
      case Cause::kParity: return "parity";
      case Cause::kPpLog: return "pp_log";
      case Cause::kWalMd: return "wal_md";
      case Cause::kRelocation: return "relocation";
      case Cause::kRebuild: return "rebuild";
      case Cause::kResync: return "resync";
      case Cause::kScrub: return "scrub";
      case Cause::kGc: return "gc";
      case Cause::kZoneMgmt: return "zone_mgmt";
      case Cause::kNumCauses: break;
    }
    return "?";
}

} // namespace raizn::obs
