/**
 * @file
 * Abstract asynchronous block/zoned device interface. Mirrors the subset
 * of the kernel block layer + NVMe ZNS command set that RAIZN uses:
 * read/write/append/flush plus zone management commands, with FUA and
 * PREFLUSH flags.
 *
 * Completions are delivered as events on the shared EventLoop, never
 * inline from submit(), matching asynchronous hardware.
 */
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "obs/cause.h"
#include "zns/zone.h"

namespace raizn {

namespace obs {
class IoLedger;
} // namespace obs

class EventLoop;

enum class IoOp : uint8_t {
    kRead,
    kWrite,
    kAppend, ///< zone append: slba = zone start, completion carries LBA
    kFlush, ///< persist the device's volatile write cache
    kZoneReset,
    kZoneFinish,
    kZoneOpen,
    kZoneClose,
};

constexpr std::string_view
to_string(IoOp op)
{
    switch (op) {
      case IoOp::kRead: return "READ";
      case IoOp::kWrite: return "WRITE";
      case IoOp::kAppend: return "APPEND";
      case IoOp::kFlush: return "FLUSH";
      case IoOp::kZoneReset: return "ZONE_RESET";
      case IoOp::kZoneFinish: return "ZONE_FINISH";
      case IoOp::kZoneOpen: return "ZONE_OPEN";
      case IoOp::kZoneClose: return "ZONE_CLOSE";
    }
    return "?";
}

/**
 * One device command. `data` is the payload for writes/appends; devices
 * in timing-only mode accept empty payloads for any length.
 */
struct IoRequest {
    IoOp op = IoOp::kRead;
    uint64_t slba = 0; ///< start LBA (zone start for append / zone mgmt)
    uint32_t nsectors = 0; ///< length; 0 is valid for flush / zone mgmt
    bool fua = false; ///< forced unit access: durable at completion
    bool preflush = false; ///< flush cache before executing this command
    std::vector<uint8_t> data; ///< write payload (nsectors * kSectorSize)
    // Trace context (obs/trace.h): correlation id of the logical
    // request this command serves, and a static stage label. Purely
    // observational — devices never read these.
    uint64_t trace_req = 0;
    const char *trace_stage = nullptr;
    // Byte-provenance tag (obs/cause.h): the host-side activity this
    // command serves. Issuing sites must set it; devices record it
    // into the IoLedger alongside their stats counters, and the
    // conservation audit fails on any command still kUntagged.
    obs::Cause cause = obs::Cause::kUntagged;

    static IoRequest
    read(uint64_t slba, uint32_t nsectors)
    {
        return {IoOp::kRead, slba, nsectors, false, false, {}};
    }
    static IoRequest
    write(uint64_t slba, std::vector<uint8_t> payload, bool fua = false)
    {
        IoRequest r;
        r.op = IoOp::kWrite;
        r.slba = slba;
        r.nsectors = static_cast<uint32_t>(payload.size() / kSectorSize);
        r.fua = fua;
        r.data = std::move(payload);
        return r;
    }
    /// Timing-only write carrying no payload bytes.
    static IoRequest
    write_len(uint64_t slba, uint32_t nsectors, bool fua = false)
    {
        return {IoOp::kWrite, slba, nsectors, fua, false, {}};
    }
    static IoRequest
    append(uint64_t zone_slba, std::vector<uint8_t> payload,
           bool fua = false)
    {
        IoRequest r;
        r.op = IoOp::kAppend;
        r.slba = zone_slba;
        r.nsectors = static_cast<uint32_t>(payload.size() / kSectorSize);
        r.fua = fua;
        r.data = std::move(payload);
        return r;
    }
    static IoRequest
    flush()
    {
        return {IoOp::kFlush, 0, 0, false, false, {}};
    }
    static IoRequest
    zone_reset(uint64_t zone_slba)
    {
        return {IoOp::kZoneReset, zone_slba, 0, false, false, {}};
    }
    static IoRequest
    zone_finish(uint64_t zone_slba)
    {
        return {IoOp::kZoneFinish, zone_slba, 0, false, false, {}};
    }
};

/// Completion record for one IoRequest.
struct IoResult {
    Status status;
    uint64_t lba = 0; ///< for kAppend: the LBA the data landed at
    std::vector<uint8_t> data; ///< for kRead in data mode: payload
    Tick submit_tick = 0;
    Tick complete_tick = 0;

    Tick latency() const { return complete_tick - submit_tick; }
};

using IoCallback = std::function<void(IoResult)>;

/// Whether a device stores payload bytes (correctness) or only tracks
/// geometry/timing (performance runs at scale).
enum class DataMode : uint8_t { kNone, kStore };

/// Static device shape.
struct DeviceGeometry {
    uint64_t nsectors = 0; ///< total addressable sectors
    bool zoned = false;
    uint64_t zone_size = 0; ///< LBA span per zone (sectors)
    uint64_t zone_capacity = 0; ///< writable sectors per zone
    uint32_t nzones = 0;
    uint32_t max_open_zones = 14; ///< paper's device limit
    uint32_t max_active_zones = 14;
    uint32_t max_append_sectors = 256; ///< 1 MiB
    uint32_t atomic_write_sectors = 16; ///< 64 KiB device-atomic writes

    uint64_t capacity_bytes() const { return nsectors * kSectorSize; }
};

/// Cumulative device counters (also used to account GC activity).
struct DeviceStats {
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t appends = 0;
    uint64_t flushes = 0;
    uint64_t zone_resets = 0;
    uint64_t sectors_read = 0;
    uint64_t sectors_written = 0;
    uint64_t gc_page_copies = 0; ///< FTL GC relocations (conventional)
    uint64_t gc_erases = 0;
    uint64_t errors = 0;
    /// Total service-unit busy time (ns of virtual time summed across
    /// the device's parallel units). Utilization over an interval is
    /// rate(busy_ns) / (units * 1e9); a fully saturated 8-unit device
    /// accrues 8 busy seconds per wall second.
    uint64_t busy_ns = 0;

    /// Name/value enumeration — single source of truth for metrics-
    /// registry linkage (obs::link_stats) and rendering.
    template <typename Fn>
    void
    for_each_field(Fn fn) const
    {
        fn("reads", reads);
        fn("writes", writes);
        fn("appends", appends);
        fn("flushes", flushes);
        fn("zone_resets", zone_resets);
        fn("sectors_read", sectors_read);
        fn("sectors_written", sectors_written);
        fn("gc_page_copies", gc_page_copies);
        fn("gc_erases", gc_erases);
        fn("errors", errors);
        fn("busy_ns", busy_ns);
    }
};

/**
 * Abstract asynchronous device. Implementations: ZnsDevice, ConvDevice.
 */
class BlockDevice
{
  public:
    virtual ~BlockDevice() = default;

    virtual const DeviceGeometry &geometry() const = 0;
    virtual const DeviceStats &stats() const = 0;

    /// Whether this device stores payload bytes or runs timing-only.
    virtual DataMode data_mode() const = 0;

    /// Queues a command; `cb` fires on the event loop at completion time.
    virtual void submit(IoRequest req, IoCallback cb) = 0;

    /// Report Zones (admin path, synchronous). Invalid for non-zoned.
    virtual Result<ZoneInfo> zone_info(uint32_t zone_index) const = 0;

    /// True once fail() was called (device no longer serves IO).
    virtual bool failed() const = 0;

    /// Simulates hot-removal: all inflight and future IO errors out.
    virtual void fail() = 0;

    /**
     * Installs the byte-provenance ledger this device reports into, as
     * array-member slot `dev_index`. Devices call
     * ledger->record(dev_index, ...) at exactly the points their
     * DeviceStats counters move. Virtual so wrappers
     * (FaultInjectingDevice) can forward to the wrapped device.
     */
    virtual void
    set_ledger(obs::IoLedger *ledger, uint32_t dev_index)
    {
        ledger_ = ledger;
        ledger_dev_ = dev_index;
    }

  protected:
    obs::IoLedger *ledger_ = nullptr;
    uint32_t ledger_dev_ = 0;
};

/**
 * Runs `req` synchronously by draining the event loop until the
 * completion fires. Test/tool helper; production paths stay async.
 */
IoResult submit_sync(EventLoop &loop, BlockDevice &dev, IoRequest req);

/// Fills `n` sectors with a deterministic pattern derived from `seed`.
std::vector<uint8_t> pattern_data(uint32_t nsectors, uint64_t seed);

} // namespace raizn
