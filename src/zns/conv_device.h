/**
 * @file
 * Emulated conventional (block-interface) SSD: random writes and
 * overwrites supported, with an internal page-mapped FTL whose garbage
 * collection competes with host IO for device time — the behaviour that
 * separates mdraid-on-conventional from RAIZN-on-ZNS in the paper.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "zns/block_device.h"
#include "zns/ftl.h"
#include "zns/timing_model.h"

namespace raizn {

struct ConvDeviceConfig {
    uint64_t nsectors = 1 * kGiB / kSectorSize;
    double op_ratio = 0.07;
    uint32_t pages_per_block = 512; ///< 2 MiB erase blocks
    uint32_t gc_low_blocks = 4;
    uint32_t gc_high_blocks = 8;
    DataMode data_mode = DataMode::kStore;
    TimingParams timing = TimingParams::conventional();
    std::string name = "convdev";
};

class ConvDevice : public BlockDevice
{
  public:
    ConvDevice(EventLoop *loop, ConvDeviceConfig config);

    const DeviceGeometry &geometry() const override { return geom_; }
    const DeviceStats &stats() const override { return stats_; }
    DataMode data_mode() const override { return config_.data_mode; }
    const std::string &name() const { return config_.name; }
    const Ftl &ftl() const { return *ftl_; }

    void submit(IoRequest req, IoCallback cb) override;

    Result<ZoneInfo> zone_info(uint32_t) const override
    {
        return Status(StatusCode::kNotSupported, "not a zoned device");
    }

    bool failed() const override { return failed_; }
    void fail() override { failed_ = true; }

    /// Host trim: deallocates the LBA range inside the FTL.
    void trim(uint64_t slba, uint64_t nsectors);

    /// See ZnsDevice::reattach.
    void reattach(EventLoop *loop);

    /// Replaces the device with a factory-fresh one (rebuild target).
    void replace();

  private:
    void complete(Tick when, IoCallback cb, IoResult result);

    EventLoop *loop_;
    ConvDeviceConfig config_;
    DeviceGeometry geom_;
    DeviceStats stats_;
    std::unique_ptr<TimingModel> timing_;
    std::unique_ptr<Ftl> ftl_;
    std::vector<uint8_t> data_; ///< lazily allocated in kStore mode
    uint64_t epoch_ = 0;
    bool failed_ = false;
};

} // namespace raizn
