#include "zns/block_device.h"

#include <cassert>

#include "common/rng.h"
#include "sim/event_loop.h"

namespace raizn {

IoResult
submit_sync(EventLoop &loop, BlockDevice &dev, IoRequest req)
{
    IoResult out;
    bool done = false;
    dev.submit(std::move(req), [&](IoResult r) {
        out = std::move(r);
        done = true;
    });
    loop.run_until_pred([&] { return done; });
    assert(done && "device dropped a completion");
    return out;
}

std::vector<uint8_t>
pattern_data(uint32_t nsectors, uint64_t seed)
{
    std::vector<uint8_t> out(static_cast<size_t>(nsectors) * kSectorSize);
    Rng rng(seed);
    // 64-bit pattern words; cheap and collision-resistant enough for
    // read-back verification.
    auto *words = reinterpret_cast<uint64_t *>(out.data());
    for (size_t i = 0; i < out.size() / 8; ++i)
        words[i] = rng.next();
    return out;
}

} // namespace raizn
